//! # hemu — hybrid-memory emulation for managed languages
//!
//! A from-scratch Rust reproduction of *"Emulating and Evaluating Hybrid
//! Memory for Managed Languages on NUMA Hardware"* (Akram, Sartor,
//! McKinley, Eeckhout; ISPASS 2019).
//!
//! The paper builds an emulation platform for hybrid DRAM–PCM memories on
//! a two-socket NUMA server: the local socket's memory plays DRAM, the
//! remote socket's plays PCM, and a modified JVM exposes the split to
//! write-rationing garbage collectors (the Kingsguard family) while
//! hardware counters report the writes arriving at the "PCM" socket.
//!
//! This crate is the facade over the workspace that reproduces the whole
//! system against a simulated machine:
//!
//! | Layer | Crate | What it models |
//! |---|---|---|
//! | experiments | [`core`] (`hemu-core`) | experiment runner, multiprogramming, write-rate monitor, PCM lifetime model |
//! | workloads | [`workloads`] (`hemu-workloads`) | 11 DaCapo models, Pjbb, GraphChi PR/CC/ALS in Java and C++ modes |
//! | managed runtime | [`heap`] (`hemu-heap`) | two-free-list heap layout, spaces, barriers, 8 collector configurations |
//! | manual runtime | [`malloc`] (`hemu-malloc`) | C/C++ size-class allocator |
//! | OS paging | [`os`] (`hemu-os`) | first-touch placement, hot/cold page migration |
//! | machine | [`machine`] (`hemu-machine`) | contexts, address spaces, timing |
//! | caches | [`cache`] (`hemu-cache`) | private L2s + shared inclusive 20 MB LLC, write-back |
//! | memory | [`numa`] (`hemu-numa`) | two sockets, page tables, `mbind`, controller counters |
//! | observability | [`obs`] (`hemu-obs`) | event tracer, metrics registry, JSON/CSV export |
//! | vocabulary | [`types`] (`hemu-types`) | addresses, sizes, clock, deterministic RNG |
//!
//! # Quickstart
//!
//! ```no_run
//! use hemu::core::Experiment;
//! use hemu::heap::CollectorKind;
//! use hemu::workloads::WorkloadSpec;
//!
//! // How many bytes does lusearch write to PCM under Kingsguard-writers,
//! // and at what rate?
//! let report = Experiment::new(WorkloadSpec::by_name("lusearch").unwrap())
//!     .collector(CollectorKind::KgW)
//!     .run()?;
//! println!("{report}");
//! # Ok::<(), hemu::types::HemuError>(())
//! ```
//!
//! Reproduce the paper's tables and figures with the harness binary:
//!
//! ```text
//! cargo run -p hemu-bench --bin repro --release -- all
//! ```

#![warn(missing_docs)]

pub use hemu_cache as cache;
pub use hemu_core as core;
pub use hemu_heap as heap;
pub use hemu_machine as machine;
pub use hemu_malloc as malloc;
pub use hemu_numa as numa;
pub use hemu_obs as obs;
pub use hemu_os as os;
pub use hemu_types as types;
pub use hemu_workloads as workloads;

pub use hemu_core::{Experiment, RunReport};
pub use hemu_heap::CollectorKind;
pub use hemu_workloads::{DatasetSize, Language, WorkloadSpec};
