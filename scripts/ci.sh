#!/bin/bash
# Hermetic CI gate: everything must build, test, and stay formatted with
# the network off. Run from anywhere; exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release, offline) =="
cargo build --workspace --release --offline

echo "== test (offline) =="
cargo test --workspace -q --offline

echo "== fmt check =="
cargo fmt --all --check

echo "CI OK"
