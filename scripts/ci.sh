#!/bin/bash
# Hermetic CI gate: everything must build, test, and stay formatted with
# the network off. Run from anywhere; exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release, offline) =="
cargo build --workspace --release --offline

echo "== test (offline) =="
cargo test --workspace -q --offline

echo "== fmt check =="
cargo fmt --all --check

echo "== clippy: no unwrap() in library code =="
cargo clippy --offline --lib \
  -p hemu-types -p hemu-obs -p hemu-fault -p hemu-numa -p hemu-cache \
  -p hemu-machine -p hemu-heap -p hemu-malloc -p hemu-workloads -p hemu-os \
  -p hemu-core -p hemu-tenant \
  -- -D clippy::unwrap_used

echo "== fault smoke: sweep survives transient faults (expect exit 0) =="
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
./target/release/repro fig3 --scale quick --faults smoke --endurance smoke \
  --run-deadline 300 --json-out "$smoke_dir/ok"
grep -q '"status":"ok"' "$smoke_dir/ok/runs.json"

echo "== fault smoke: forced OOM is recorded, sweep completes (expect exit 1) =="
if ./target/release/repro fig3 --scale quick \
  --faults 'oom_at=1,only=pr|PCM-Only' --json-out "$smoke_dir/oom"; then
  echo "forced-OOM sweep should have exited non-zero" >&2
  exit 1
fi
grep -q '"status":"failed"' "$smoke_dir/oom/runs.json"
grep -q 'forced-oom' "$smoke_dir/oom/runs.json"
grep -q '"status":"ok"' "$smoke_dir/oom/runs.json"

echo "== OS-paging smoke: GC-vs-OS sweep runs the hot/cold migrator (expect exit 0) =="
./target/release/repro os --scale quick --os-policy hot-cold --json-out "$smoke_dir/os"
grep -q '"collector":"OS-hot-cold"' "$smoke_dir/os/runs.json"
grep -q '"os_paging":{"policy":"OS-hot-cold"' "$smoke_dir/os/runs.json"

echo "== profiler smoke: --profile emits a valid Perfetto timeline + wear heatmap =="
./target/release/repro os --scale quick --os-policy hot-cold --profile \
  --timeline-out "$smoke_dir/timeline.json" --heatmap-out "$smoke_dir/heatmap.csv" \
  --json-out "$smoke_dir/prof"
python3 -m json.tool "$smoke_dir/timeline.json" > /dev/null
grep -q '"name":"iteration"' "$smoke_dir/timeline.json"
grep -q '"cat":"gc"' "$smoke_dir/timeline.json"
grep -q '"name":"os_epoch"' "$smoke_dir/timeline.json"
head -1 "$smoke_dir/heatmap.csv" | grep -q '^key,frame,writes,lines_touched,max_line_writes$'
grep -q '"provenance":{"pcm":{"by_cause":{"mutator":' "$smoke_dir/prof/runs.json"

echo "== access-path smoke: batched pipeline artifacts match the scalar engine =="
./target/release/repro fig3 --scale quick --access-path scalar \
  --json-out "$smoke_dir/ap-scalar"
./target/release/repro fig3 --scale quick --access-path batched \
  --json-out "$smoke_dir/ap-batched"
diff -r "$smoke_dir/ap-scalar" "$smoke_dir/ap-batched"

echo "== parallel smoke: intra-threads {1,2,4} x --jobs {1,4} artifacts are byte-identical =="
./target/release/repro fig3 --scale quick --jobs 1 --intra-threads 1 \
  --json-out "$smoke_dir/j1-t1" --trace-out "$smoke_dir/j1-t1-trace.jsonl"
for jobs in 1 4; do
  for intra in 1 2 4; do
    [ "$jobs$intra" = "11" ] && continue
    ./target/release/repro fig3 --scale quick --jobs "$jobs" --intra-threads "$intra" \
      --json-out "$smoke_dir/j$jobs-t$intra" \
      --trace-out "$smoke_dir/j$jobs-t$intra-trace.jsonl"
    diff -r "$smoke_dir/j1-t1" "$smoke_dir/j$jobs-t$intra"
    diff "$smoke_dir/j1-t1-trace.jsonl" "$smoke_dir/j$jobs-t$intra-trace.jsonl"
  done
done

echo "== chaos smoke: killed sweep resumes byte-identical (jobs 1 and 4) =="
./target/release/repro smoke --scale quick --jobs 2 --json-out "$smoke_dir/chaos-ref"
grep -q '"journal":"hemu-sweep-journal/1"' "$smoke_dir/chaos-ref/journal.jsonl"
for jobs in 1 4; do
  if ./target/release/repro smoke --scale quick --jobs "$jobs" \
    --chaos-kill-after 2 --json-out "$smoke_dir/chaos-j$jobs"; then
    echo "chaos-killed sweep should have exited non-zero" >&2
    exit 1
  fi
  test ! -e "$smoke_dir/chaos-j$jobs/runs.json"  # killed before finalization
  ./target/release/repro smoke --scale quick --jobs "$jobs" \
    --resume "$smoke_dir/chaos-j$jobs"
  diff -r "$smoke_dir/chaos-ref" "$smoke_dir/chaos-j$jobs"
done

echo "== torn-write gate: export code writes final artifacts only atomically =="
# Final artifacts must go through hemu_obs::write_atomic; a direct
# fs::write/File::create in export code is a torn-write hazard. Test
# modules (after #[cfg(test)], always last in these files) are exempt.
for f in crates/bench/src/harness.rs crates/bench/src/perf.rs \
         crates/bench/src/bin/repro.rs crates/bench/src/executor.rs \
         crates/obs/src/journal.rs crates/obs/src/artifact.rs; do
  if ! awk '/#\[cfg\(test\)\]/{exit} /fs::write\(|File::create\(/{bad=1; print FILENAME": "$0} END{exit bad}' "$f"; then
    echo "direct file write in export code ($f); use hemu_obs::write_atomic" >&2
    exit 1
  fi
done

echo "== submission smoke: deferred and scalar artifacts are byte-identical =="
for jobs in 1 4; do
  ./target/release/repro smoke --scale quick --jobs "$jobs" --submit scalar \
    --json-out "$smoke_dir/sub-scalar-j$jobs"
  ./target/release/repro smoke --scale quick --jobs "$jobs" --submit deferred \
    --json-out "$smoke_dir/sub-deferred-j$jobs"
  diff -r "$smoke_dir/sub-scalar-j$jobs" "$smoke_dir/sub-deferred-j$jobs"
done
# Deferral must also fall back cleanly when a fault plan is active.
./target/release/repro fig3 --scale quick --faults smoke --submit scalar \
  --run-deadline 300 --json-out "$smoke_dir/sub-scalar-faulted"
./target/release/repro fig3 --scale quick --faults smoke --submit deferred \
  --run-deadline 300 --json-out "$smoke_dir/sub-deferred-faulted"
diff -r "$smoke_dir/sub-scalar-faulted" "$smoke_dir/sub-deferred-faulted"

echo "== consolidation smoke: 2-tenant sweep with complete per-tenant attribution =="
./target/release/repro consolidate --scale quick --tenants 2 --jobs 2 \
  --json-out "$smoke_dir/consolidate"
grep -q '"consolidation":{' "$smoke_dir/consolidate/runs.json"
# Per-tenant write counters must sum exactly to the controller counters:
# any residue shows up as a non-zero unattributed count.
grep -q '"unattributed_pcm_lines":0' "$smoke_dir/consolidate/runs.json"
grep -q '"unattributed_dram_lines":0' "$smoke_dir/consolidate/runs.json"
if grep -E '"unattributed_(pcm|dram)_lines":[1-9]' "$smoke_dir/consolidate/runs.json"; then
  echo "consolidated run leaked unattributed writes" >&2
  exit 1
fi

echo "== perf gate: kernel + smoke-sweep throughput within 20% of the checked-in baseline =="
./target/release/repro --bench --jobs 4 --bench-out "$smoke_dir/bench.json" \
  --bench-baseline BENCH_results.json
grep -q '"schema":"hemu-bench-results/4"' "$smoke_dir/bench.json"
grep -q '"tenants":2' "$smoke_dir/bench.json"
grep -q '"runs_per_sec"' "$smoke_dir/bench.json"

echo "CI OK"
