#!/bin/bash
# Final deliverable sequence: run after the repro suite reaches table3.
set -x
cd /root/repo
./scripts/ci.sh 2>&1 | tee /root/repo/ci_output.txt | tail -5
cargo test --workspace 2>&1 | tee /root/repo/test_output.txt | tail -5
HEMU_SKIP_LARGE_GRAPHS=1 ./target/release/repro fig8 ablations > /root/repo/repro_fig8_ablations.txt 2>/dev/null
cargo bench --workspace 2>&1 | tee /root/repo/bench_output.txt | tail -5
