//! Whole-platform integration tests: the paper-shape invariants that must
//! hold for any reproduction of the system, checked on small benchmarks.

use hemu::core::Experiment;
use hemu::heap::CollectorKind;
use hemu::machine::MachineProfile;
use hemu::workloads::{Language, WorkloadSpec};

fn lu_fix() -> WorkloadSpec {
    WorkloadSpec::by_name("lu.Fix").expect("lu.Fix registered")
}

#[test]
fn write_rationing_reduces_pcm_writes_in_order() {
    // PCM-Only ≥ KG-N ≥ KG-W (Table II / Fig. 7 ordering).
    let base = Experiment::new(lu_fix()).run().unwrap();
    let kgn = Experiment::new(lu_fix())
        .collector(CollectorKind::KgN)
        .run()
        .unwrap();
    let kgw = Experiment::new(lu_fix())
        .collector(CollectorKind::KgW)
        .run()
        .unwrap();
    assert!(
        kgn.pcm_writes <= base.pcm_writes,
        "KG-N ({}) must not exceed PCM-Only ({})",
        kgn.pcm_writes,
        base.pcm_writes
    );
    assert!(
        kgw.pcm_writes < base.pcm_writes,
        "KG-W ({}) must beat PCM-Only ({})",
        kgw.pcm_writes,
        base.pcm_writes
    );
    assert!(
        kgw.pcm_writes <= kgn.pcm_writes,
        "KG-W ({}) must not exceed KG-N ({})",
        kgw.pcm_writes,
        kgn.pcm_writes
    );
}

#[test]
fn experiments_are_deterministic() {
    let a = Experiment::new(lu_fix())
        .collector(CollectorKind::KgN)
        .run()
        .unwrap();
    let b = Experiment::new(lu_fix())
        .collector(CollectorKind::KgN)
        .run()
        .unwrap();
    assert_eq!(a.pcm_writes, b.pcm_writes);
    assert_eq!(a.dram_writes, b.dram_writes);
    assert_eq!(a.elapsed_seconds, b.elapsed_seconds);
    let c = Experiment::new(lu_fix())
        .collector(CollectorKind::KgN)
        .seed(7)
        .run()
        .unwrap();
    assert_ne!(
        (a.pcm_writes, a.elapsed_seconds.to_bits()),
        (c.pcm_writes, c.elapsed_seconds.to_bits()),
        "different seeds should perturb the run"
    );
}

#[test]
fn multiprogramming_grows_pcm_writes_superlinearly_under_pcm_only() {
    // Fig. 4(a): the growth from 1 to 4 instances exceeds 4x for cache-
    // sensitive DaCapo workloads.
    let one = Experiment::new(lu_fix()).instances(1).run().unwrap();
    let four = Experiment::new(lu_fix()).instances(4).run().unwrap();
    let growth = four.pcm_writes.bytes() as f64 / one.pcm_writes.bytes().max(1) as f64;
    assert!(
        growth > 4.0,
        "expected super-linear growth, got {growth:.2}x"
    );
}

#[test]
fn kg_w_dampens_multiprogrammed_growth() {
    // Fig. 4(b): KG-W's growth is well below PCM-Only's. This is an
    // on-average claim in the paper; xalan shows the mechanism strongly
    // (its nursery writes dominate and KG-W moves them to DRAM), while a
    // few benchmarks show growth parity — which is why the figure reports
    // suite averages.
    let xalan = WorkloadSpec::by_name("xalan").expect("xalan registered");
    let p1 = Experiment::new(xalan).instances(1).run().unwrap();
    let p4 = Experiment::new(xalan).instances(4).run().unwrap();
    let w1 = Experiment::new(xalan)
        .collector(CollectorKind::KgW)
        .instances(1)
        .run()
        .unwrap();
    let w4 = Experiment::new(xalan)
        .collector(CollectorKind::KgW)
        .instances(4)
        .run()
        .unwrap();
    let pcm_only = p4.pcm_writes.bytes() as f64 / p1.pcm_writes.bytes().max(1) as f64;
    let kg_w = w4.pcm_writes.bytes() as f64 / w1.pcm_writes.bytes().max(1) as f64;
    assert!(
        kg_w < pcm_only,
        "KG-W growth ({kg_w:.2}x) must be below PCM-Only growth ({pcm_only:.2}x)"
    );
    // And in absolute terms KG-W stays far below PCM-Only at 4 instances.
    assert!(w4.pcm_writes.bytes() * 2 < p4.pcm_writes.bytes());
}

#[test]
fn java_writes_more_than_cpp_on_pcm_only() {
    // Fig. 3 for Connected Components.
    let cc = WorkloadSpec::by_name("cc").unwrap();
    let cpp = Experiment::new(cc.with_language(Language::Cpp))
        .run()
        .unwrap();
    let java = Experiment::new(cc).run().unwrap();
    assert!(
        java.pcm_writes > cpp.pcm_writes,
        "Java ({}) must write more than C++ ({})",
        java.pcm_writes,
        cpp.pcm_writes
    );
    // And the managed run reports GC statistics while the native one
    // reports allocator statistics.
    assert!(java.gc.is_some() && java.native.is_none());
    assert!(cpp.gc.is_none() && cpp.native.is_some());
}

#[test]
fn emulation_and_simulation_profiles_agree_on_the_trend() {
    // §V: both methodologies must rank the collectors identically.
    for profile in [MachineProfile::emulation(), MachineProfile::simulation()] {
        let base = Experiment::new(lu_fix()).profile(profile).run().unwrap();
        let kgw = Experiment::new(lu_fix())
            .profile(profile)
            .collector(CollectorKind::KgW)
            .run()
            .unwrap();
        let reduction = kgw.pcm_write_reduction_vs(&base);
        assert!(
            reduction > 30.0,
            "{}: KG-W should reduce PCM writes substantially, got {reduction:.0}%",
            profile.name
        );
    }
}

#[test]
fn monitor_integral_matches_the_counters() {
    let r = Experiment::new(lu_fix()).run().unwrap();
    // Integrate the sampled PCM write rate over time; it must equal the
    // total PCM writes to within a few percent.
    let mut prev_t = 0.0;
    let mut integral = 0.0;
    for s in &r.samples {
        integral += s.pcm_write_mbs * 1e6 * (s.t_seconds - prev_t);
        prev_t = s.t_seconds;
    }
    let total = r.pcm_writes.bytes() as f64;
    assert!(
        (integral - total).abs() <= total * 0.05 + 1e6,
        "monitor integral {integral:.0} vs counter {total:.0}"
    );
}

#[test]
fn pcm_only_reference_keeps_socket0_silent() {
    // §V's reference setup isolation: with all spaces and threads bound to
    // socket 1, socket 0 sees no application writes at all.
    let r = Experiment::new(lu_fix())
        .collector(CollectorKind::PcmOnly)
        .run()
        .unwrap();
    assert_eq!(
        r.dram_writes.bytes(),
        0,
        "PCM-Only run leaked writes to socket 0"
    );
    assert!(r.pcm_writes.bytes() > 0);
}

#[test]
fn write_rate_is_writes_over_virtual_time() {
    let r = Experiment::new(lu_fix()).run().unwrap();
    let expect = r.pcm_writes.bytes() as f64 / 1e6 / r.elapsed_seconds;
    assert!((r.pcm_write_rate_mbs - expect).abs() < 1e-6);
    assert!(r.elapsed_seconds > 0.0);
}
