//! The consolidated runner: a deterministic virtual-time slice scheduler
//! over N tenants sharing one emulated machine.

use crate::mix::Mix;
use hemu_core::{ConsolidationSummary, PageWear, RunArtifacts, RunReport, TenantShare};
use hemu_core::{ProvenanceSummary, WriteRateMonitor};
use hemu_fault::{EnduranceConfig, FaultPlan};
use hemu_heap::chunks::ChunkPolicy;
use hemu_heap::{CollectorKind, GcStats, ManagedHeap};
use hemu_machine::{CtxId, Machine, MachineProfile, ProcId};
use hemu_malloc::NativeHeap;
use hemu_obs::Tracer;
use hemu_os::OsPageManager;
use hemu_types::{
    AccessPath, ByteSize, HemuError, OsPagingConfig, Result, SocketId, SpaceTag, SubmitMode,
    WriteCause, CACHE_LINE, PAGE_SIZE,
};
use hemu_workloads::{Language, Memory, StepResult, Workload};

/// A configured consolidation run: `tenants` workloads from a [`Mix`]
/// roster, time-multiplexed onto the machine profile's hardware contexts
/// by a slice scheduler.
///
/// Mirrors [`hemu_core::Experiment`]'s fluent API and measurement
/// methodology (warm-up iteration, barrier, measured iteration), but
/// deliberately does *not* reject more tenants than hardware contexts —
/// over-subscription is the phenomenon under study. Tenant `i` runs on
/// context `i % contexts`, so densities past the context count share
/// contexts the way consolidated VMs share cores.
#[derive(Debug, Clone)]
pub struct ConsolidationRun {
    mix: Mix,
    tenants: usize,
    slice: u64,
    collector: CollectorKind,
    profile: MachineProfile,
    seed: u64,
    chunk_policy: ChunkPolicy,
    warmup: bool,
    monitor_interval: f64,
    track_wear: bool,
    profiling: bool,
    faults: Option<FaultPlan>,
    endurance: Option<EnduranceConfig>,
    os: Option<OsPagingConfig>,
    access_path: AccessPath,
    intra_threads: usize,
    submit_mode: SubmitMode,
}

impl ConsolidationRun {
    /// Creates a consolidation run with the defaults: PCM-Only collector,
    /// emulation profile, 64-step slices, seed 42.
    pub fn new(mix: Mix, tenants: usize) -> Self {
        ConsolidationRun {
            mix,
            tenants,
            slice: 64,
            collector: CollectorKind::PcmOnly,
            profile: MachineProfile::emulation(),
            seed: 42,
            chunk_policy: ChunkPolicy::TwoLists,
            warmup: true,
            monitor_interval: 0.01,
            track_wear: false,
            profiling: false,
            faults: None,
            endurance: None,
            os: None,
            access_path: AccessPath::default(),
            intra_threads: 1,
            submit_mode: SubmitMode::default(),
        }
    }

    /// The run's mix.
    pub fn mix(&self) -> Mix {
        self.mix
    }

    /// The run's tenant count (consolidation density).
    pub fn tenants(&self) -> usize {
        self.tenants
    }

    /// Sets the scheduler slice length in workload steps (clamped to at
    /// least 1). Slice boundaries are semantic flush points: deferred
    /// submissions drain before the next tenant runs.
    pub fn slice(mut self, steps: u64) -> Self {
        self.slice = steps.max(1);
        self
    }

    /// Sets the collector configuration every tenant's heap uses.
    pub fn collector(mut self, collector: CollectorKind) -> Self {
        self.collector = collector;
        self
    }

    /// Sets the machine profile (context count, LLC size, …).
    pub fn profile(mut self, profile: MachineProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Sets the base seed; tenant `i` runs with `seed + i`.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the chunk free-list policy.
    pub fn chunk_policy(mut self, policy: ChunkPolicy) -> Self {
        self.chunk_policy = policy;
        self
    }

    /// Disables the warm-up iteration (quick tests only).
    pub fn without_warmup(mut self) -> Self {
        self.warmup = false;
        self
    }

    /// Sets the write-rate monitor's sampling interval in virtual seconds.
    pub fn monitor_interval(mut self, seconds: f64) -> Self {
        self.monitor_interval = seconds;
        self
    }

    /// Enables per-line PCM wear tracking.
    pub fn track_wear(mut self) -> Self {
        self.track_wear = true;
        self
    }

    /// Enables the phase-and-provenance profiler (implies wear tracking).
    pub fn profiling(mut self) -> Self {
        self.profiling = true;
        self.track_wear = true;
        self
    }

    /// Installs a deterministic fault-injection plan (inert plans are
    /// dropped, exactly like [`hemu_core::Experiment::faults`]).
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = if plan.is_inert() { None } else { Some(plan) };
        self
    }

    /// Enables the PCM endurance model.
    pub fn endurance(mut self, cfg: EnduranceConfig) -> Self {
        self.endurance = Some(cfg);
        self
    }

    /// Hands page placement to an OS page manager (requires the PCM-Only
    /// collector, like single-tenant runs).
    pub fn os_paging(mut self, cfg: OsPagingConfig) -> Self {
        self.os = Some(cfg);
        self
    }

    /// Selects the machine's access-path implementation.
    pub fn access_path(mut self, path: AccessPath) -> Self {
        self.access_path = path;
        self
    }

    /// Sets the worker-thread count for intra-run batch resolution.
    pub fn intra_threads(mut self, threads: usize) -> Self {
        self.intra_threads = threads.max(1);
        self
    }

    /// Selects deferred vs immediate submission.
    pub fn submit_mode(mut self, mode: SubmitMode) -> Self {
        self.submit_mode = mode;
        self
    }

    /// Runs the consolidation to completion.
    ///
    /// # Errors
    ///
    /// Returns [`HemuError::InvalidConfig`] for inconsistent
    /// configurations (zero tenants, more than 255 — tenant identity must
    /// fit the packed submit metadata — or OS paging combined with a
    /// write-rationing collector), and propagates heap or machine
    /// exhaustion.
    pub fn run(&self) -> Result<RunReport> {
        self.run_traced(Tracer::disabled()).map(|a| a.report)
    }

    /// Runs the consolidation and returns the full artifact bundle.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ConsolidationRun::run`].
    pub fn run_full(&self) -> Result<RunArtifacts> {
        self.run_traced(Tracer::disabled())
    }

    /// Runs the consolidation with an explicit tracer — the general form
    /// behind [`ConsolidationRun::run`], for the bench harness.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ConsolidationRun::run`].
    pub fn run_traced(&self, tracer: Tracer) -> Result<RunArtifacts> {
        if self.tenants == 0 {
            return Err(HemuError::InvalidConfig("need at least one tenant".into()));
        }
        // Process and context ids ride in the packed submit metadata as
        // single bytes; 255 tenants is far past any useful density anyway.
        if self.tenants > 255 {
            return Err(HemuError::InvalidConfig(format!(
                "{} tenants exceed the 255-tenant attribution limit",
                self.tenants
            )));
        }
        if self.os.is_some() && self.collector != CollectorKind::PcmOnly {
            return Err(HemuError::InvalidConfig(
                "OS-managed placement replaces write-rationing: use the \
                 PCM-Only collector with an OS policy"
                    .into(),
            ));
        }

        let mut machine = Machine::new(self.profile);
        machine.set_access_path(self.access_path);
        machine.set_intra_threads(self.intra_threads);
        machine.set_submit_mode(self.submit_mode);
        let mut os_mgr = self.os.map(|cfg| OsPageManager::install(&mut machine, cfg));
        // Tenancy goes in before any allocation so even the first heap
        // metadata fault is owned by its tenant.
        machine.enable_tenancy(self.tenants);
        if self.track_wear || self.profiling {
            machine.enable_wear_tracking();
        }
        if self.profiling {
            machine.enable_profiling();
        }
        if let Some(cfg) = self.endurance {
            machine.enable_endurance(cfg);
        }
        if let Some(plan) = &self.faults {
            machine.install_faults(plan.clone());
        }

        let specs = self.mix.tenant_specs(self.tenants, self.seed)?;
        let mut tenants: Vec<(Box<dyn Workload>, Memory)> = Vec::new();
        let mut procs: Vec<ProcId> = Vec::new();
        for spec in &specs {
            if spec.workload.language == Language::Cpp && self.collector != CollectorKind::PcmOnly {
                return Err(HemuError::InvalidConfig(
                    "C++ workloads run on the PCM-Only reference system".into(),
                ));
            }
            let workload = spec.workload.instantiate(spec.seed);
            // Over-subscription by design: densities past the context
            // count wrap around and share contexts.
            let ctx = CtxId(spec.id % machine.contexts());
            let mem = match spec.workload.language {
                Language::Java => {
                    let cfg = self
                        .collector
                        .config(workload.base_nursery(), workload.heap_size());
                    let proc = machine.add_process(cfg.young_socket());
                    machine.set_proc_tenant(proc, spec.id as u16);
                    if let Some(os) = &os_mgr {
                        os.attach_process(&mut machine, proc);
                    }
                    procs.push(proc);
                    Memory::managed(ManagedHeap::with_chunk_policy(
                        &mut machine,
                        proc,
                        ctx,
                        cfg,
                        self.chunk_policy,
                    )?)
                }
                Language::Cpp => {
                    let proc = machine.add_process(SocketId::PCM);
                    machine.set_proc_tenant(proc, spec.id as u16);
                    if let Some(os) = &os_mgr {
                        os.attach_process(&mut machine, proc);
                    }
                    procs.push(proc);
                    Memory::native(NativeHeap::new(&mut machine, proc, ctx, SocketId::PCM))
                }
            };
            tenants.push((workload, mem));
        }

        // Warm-up iteration, then the barrier: all tenants start the
        // measured iteration at the same virtual instant (§IV).
        if self.warmup {
            run_slices(
                &mut machine,
                &mut tenants,
                self.slice,
                None,
                os_mgr.as_mut(),
            )?;
            machine.barrier();
            for (w, _) in &mut tenants {
                w.start_iteration();
            }
        }

        machine.sync_submissions()?;
        machine.set_tracer(tracer);
        // Resets controller counters, clocks, metrics — and the tenancy
        // write counts, while frame ownership survives: the tenants keep
        // their memory, the measurement interval restarts.
        machine.start_measured_iteration();
        let gc_before: Vec<Option<GcStats>> =
            tenants.iter().map(|(_, m)| m.gc_stats().copied()).collect();
        let faults_before: Vec<u64> = procs
            .iter()
            .map(|&p| machine.address_space(p).fault_count())
            .collect();
        let alloc_before: Vec<u64> = tenants.iter().map(|(_, m)| m.allocated_bytes()).collect();

        let mut monitor = WriteRateMonitor::new(self.monitor_interval);
        let spans = machine.spans();
        spans.begin("iteration", "run", hemu_types::Cycles::ZERO);
        run_slices(
            &mut machine,
            &mut tenants,
            self.slice,
            Some(&mut monitor),
            os_mgr.as_mut(),
        )?;
        spans.end(machine.elapsed());
        monitor.finish(&machine);

        // Per-tenant shares: write attribution from the tenancy tracker,
        // GC and fault deltas from the per-tenant snapshots.
        let mut per_tenant = Vec::with_capacity(self.tenants);
        let mut gc_total: Option<GcStats> = None;
        for (i, spec) in specs.iter().enumerate() {
            let (_, mem) = &tenants[i];
            let gc_delta = mem
                .gc_stats()
                .map(|now| diff_gc(now, gc_before[i].as_ref().unwrap_or(&GcStats::default())));
            if let Some(d) = &gc_delta {
                gc_total = Some(match gc_total {
                    Some(t) => add_gc(&t, d),
                    None => *d,
                });
            }
            let (pcm, dram) = machine
                .tenancy()
                .map(|t| (t.pcm_lines(i), t.dram_lines(i)))
                .unwrap_or((0, 0));
            per_tenant.push(TenantShare {
                id: i,
                workload: format!("{}", spec.workload),
                pcm_write_lines: pcm,
                dram_write_lines: dram,
                minor_gcs: gc_delta.as_ref().map_or(0, |g| g.minor_gcs),
                full_gcs: gc_delta.as_ref().map_or(0, |g| g.full_gcs),
                pause_cycles: gc_delta.as_ref().map_or(0, |g| g.pause_cycles),
                allocated_bytes: tenants[i].1.allocated_bytes() - alloc_before[i],
                page_faults: machine.address_space(procs[i]).fault_count() - faults_before[i],
            });
        }
        let (unattributed_pcm, unattributed_dram) = machine
            .tenancy()
            .map(|t| (t.unattributed_pcm(), t.unattributed_dram()))
            .unwrap_or((0, 0));

        // Publish the per-tenant GC/OS namespaces alongside the machine's
        // writes.tenant.* gauges; everything lands in the same metrics
        // export.
        {
            let m = &machine.obs().metrics;
            for t in &per_tenant {
                let id = t.id;
                m.gauge(&format!("gc.tenant.{id}.minor_gcs"))
                    .set(t.minor_gcs as f64);
                m.gauge(&format!("gc.tenant.{id}.full_gcs"))
                    .set(t.full_gcs as f64);
                m.gauge(&format!("gc.tenant.{id}.pause_cycles"))
                    .set(t.pause_cycles as f64);
                m.gauge(&format!("gc.tenant.{id}.allocated_bytes"))
                    .set(t.allocated_bytes as f64);
                m.gauge(&format!("os.tenant.{id}.page_faults"))
                    .set(t.page_faults as f64);
            }
        }
        machine.publish_metrics();

        let elapsed = machine.elapsed_seconds();
        let pcm_writes = machine.socket_writes(SocketId::PCM);
        let allocated: u64 = per_tenant.iter().map(|t| t.allocated_bytes).sum();
        let trace = machine.obs().tracer.drain();
        let gc_pause_histogram = machine
            .obs()
            .metrics
            .histogram_snapshot("gc.pause_cycles")
            .filter(|h| h.count > 0);
        let provenance = machine.profiling_enabled().then(|| {
            let m = &machine.obs().metrics;
            let spans = &machine.obs().spans;
            ProvenanceSummary {
                pcm_by_cause: WriteCause::ALL
                    .map(|c| m.counter_value(&format!("writes.by_cause.{}", c.name()))),
                pcm_by_space: SpaceTag::ALL
                    .map(|s| m.counter_value(&format!("writes.by_space.{}", s.name()))),
                dram_by_cause: WriteCause::ALL
                    .map(|c| m.counter_value(&format!("writes.dram.by_cause.{}", c.name()))),
                dram_by_space: SpaceTag::ALL
                    .map(|s| m.counter_value(&format!("writes.dram.by_space.{}", s.name()))),
                spans_recorded: spans.len() as u64 + spans.dropped(),
                spans_dropped: spans.dropped(),
            }
        });
        let heatmap = build_heatmap(&machine);

        let report = RunReport {
            workload: format!("{}@{}", self.mix, self.tenants),
            collector: if let Some(cfg) = self.os {
                cfg.policy.name().into()
            } else {
                self.collector.name().into()
            },
            profile: self.profile.name.into(),
            instances: self.tenants,
            pcm_writes,
            pcm_reads: machine.socket_reads(SocketId::PCM),
            dram_writes: machine.socket_writes(SocketId::DRAM),
            dram_reads: machine.socket_reads(SocketId::DRAM),
            elapsed_seconds: elapsed,
            pcm_write_rate_mbs: if elapsed > 0.0 {
                pcm_writes.bytes() as f64 / 1e6 / elapsed
            } else {
                0.0
            },
            allocated: ByteSize::new(allocated),
            gc: gc_total,
            native: None,
            machine: *machine.stats(),
            samples: monitor.into_samples(),
            wear: machine.memory().wear().map(|w| hemu_core::WearSummary {
                pcm_lines_touched: w.lines_touched() as u64,
                max_line_writes: w.max_line_writes(),
                levelling_efficiency: w
                    .levelling_efficiency(self.profile.numa.capacity_per_socket.bytes() / 64),
            }),
            endurance: self.endurance.map(|cfg| hemu_core::EnduranceSummary {
                budget_writes: cfg.budget_writes,
                failed_lines: machine.memory().failed_lines(),
                retired_pages: machine.memory().retired_pages(SocketId::PCM),
                remapped_pages: machine.pages_remapped(),
                effective_capacity: machine.memory().effective_capacity(SocketId::PCM),
            }),
            gc_pause_histogram,
            os_paging: os_mgr.as_ref().map(OsPageManager::stats),
            provenance,
            consolidation: Some(ConsolidationSummary {
                mix: self.mix.name().to_string(),
                tenants: self.tenants,
                contexts: machine.contexts(),
                slice: self.slice,
                unattributed_pcm_lines: unattributed_pcm,
                unattributed_dram_lines: unattributed_dram,
                per_tenant,
            }),
        };
        Ok(RunArtifacts {
            report,
            trace,
            spans: machine.obs().spans.snapshot(),
            heatmap,
            freq_hz: self.profile.freq_hz as f64,
            elapsed: machine.elapsed(),
        })
    }
}

/// The slice scheduler: each live tenant runs up to `slice` consecutive
/// workload steps, then yields. A slice boundary is a semantic flush
/// point — deferred submissions drain before the next tenant's slice — so
/// virtual time and counter state at every boundary are identical under
/// scalar and deferred submission. A full round over all tenants is a
/// monitor/OS poll edge, exactly like the single-tenant round-robin.
fn run_slices(
    machine: &mut Machine,
    tenants: &mut [(Box<dyn Workload>, Memory)],
    slice: u64,
    mut monitor: Option<&mut WriteRateMonitor>,
    mut os: Option<&mut OsPageManager>,
) -> Result<()> {
    let mut done = vec![false; tenants.len()];
    let mut remaining = tenants.len();
    // A generous runaway bound, shared across all tenants.
    let mut fuel: u64 = 50_000_000;
    while remaining > 0 {
        for (i, (w, mem)) in tenants.iter_mut().enumerate() {
            if done[i] {
                continue;
            }
            for _ in 0..slice {
                if w.step(machine, mem)? == StepResult::IterationDone {
                    done[i] = true;
                    remaining -= 1;
                    break;
                }
                fuel -= 1;
                if fuel == 0 {
                    return Err(HemuError::InvalidConfig(
                        "consolidated workloads did not terminate within the quantum budget".into(),
                    ));
                }
            }
            machine.sync_submissions()?;
        }
        if let Some(mon) = monitor.as_deref_mut() {
            mon.poll(machine);
        }
        if let Some(os) = os.as_deref_mut() {
            os.poll(machine)?;
        }
    }
    Ok(())
}

/// Per-frame wear heatmap rows, sorted by frame (mirrors the
/// single-tenant experiment's aggregation).
fn build_heatmap(machine: &Machine) -> Vec<PageWear> {
    let Some(wear) = machine.memory().wear() else {
        return Vec::new();
    };
    let lines_per_page = (PAGE_SIZE / CACHE_LINE) as u64;
    let mut pages: std::collections::BTreeMap<u64, PageWear> = std::collections::BTreeMap::new();
    for (line, count) in wear.histogram() {
        let frame = line.raw() / lines_per_page;
        let row = pages.entry(frame).or_insert(PageWear {
            frame,
            writes: 0,
            lines_touched: 0,
            max_line_writes: 0,
        });
        row.writes += count;
        row.lines_touched += 1;
        row.max_line_writes = row.max_line_writes.max(count);
    }
    pages.into_values().collect()
}

fn diff_gc(now: &GcStats, then: &GcStats) -> GcStats {
    GcStats {
        minor_gcs: now.minor_gcs - then.minor_gcs,
        observer_gcs: now.observer_gcs - then.observer_gcs,
        full_gcs: now.full_gcs - then.full_gcs,
        pause_cycles: now.pause_cycles - then.pause_cycles,
        allocated_bytes: now.allocated_bytes - then.allocated_bytes,
        allocated_objects: now.allocated_objects - then.allocated_objects,
        large_allocated_bytes: now.large_allocated_bytes - then.large_allocated_bytes,
        loo_nursery_large: now.loo_nursery_large - then.loo_nursery_large,
        copied_minor_bytes: now.copied_minor_bytes - then.copied_minor_bytes,
        copied_observer_bytes: now.copied_observer_bytes - then.copied_observer_bytes,
        promoted_dram_objects: now.promoted_dram_objects - then.promoted_dram_objects,
        promoted_pcm_objects: now.promoted_pcm_objects - then.promoted_pcm_objects,
        large_rescued: now.large_rescued - then.large_rescued,
        mark_writes: now.mark_writes - then.mark_writes,
        remset_entries: now.remset_entries - then.remset_entries,
        monitor_marks: now.monitor_marks - then.monitor_marks,
    }
}

fn add_gc(a: &GcStats, b: &GcStats) -> GcStats {
    GcStats {
        minor_gcs: a.minor_gcs + b.minor_gcs,
        observer_gcs: a.observer_gcs + b.observer_gcs,
        full_gcs: a.full_gcs + b.full_gcs,
        pause_cycles: a.pause_cycles + b.pause_cycles,
        allocated_bytes: a.allocated_bytes + b.allocated_bytes,
        allocated_objects: a.allocated_objects + b.allocated_objects,
        large_allocated_bytes: a.large_allocated_bytes + b.large_allocated_bytes,
        loo_nursery_large: a.loo_nursery_large + b.loo_nursery_large,
        copied_minor_bytes: a.copied_minor_bytes + b.copied_minor_bytes,
        copied_observer_bytes: a.copied_observer_bytes + b.copied_observer_bytes,
        promoted_dram_objects: a.promoted_dram_objects + b.promoted_dram_objects,
        promoted_pcm_objects: a.promoted_pcm_objects + b.promoted_pcm_objects,
        large_rescued: a.large_rescued + b.large_rescued,
        mark_writes: a.mark_writes + b.mark_writes,
        remset_entries: a.remset_entries + b.remset_entries,
        monitor_marks: a.monitor_marks + b.monitor_marks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_tenants_is_invalid() {
        let r = ConsolidationRun::new(Mix::Dacapo, 0).run();
        assert!(matches!(r, Err(HemuError::InvalidConfig(_))));
    }

    #[test]
    fn tenant_ids_must_fit_a_byte() {
        let r = ConsolidationRun::new(Mix::Dacapo, 256).run();
        assert!(matches!(r, Err(HemuError::InvalidConfig(_))));
    }

    #[test]
    fn os_paging_requires_pcm_only() {
        let r = ConsolidationRun::new(Mix::Dacapo, 2)
            .collector(CollectorKind::KgN)
            .os_paging(hemu_types::OsPagingConfig::default())
            .run();
        assert!(matches!(r, Err(HemuError::InvalidConfig(_))));
    }

    #[test]
    fn oversubscription_is_allowed() {
        // 6 tenants on a 4-context profile — the whole point of the
        // subsystem. Warm-up off keeps the test cheap.
        let profile = MachineProfile::emulation().with_contexts(4);
        let report = ConsolidationRun::new(Mix::Dacapo, 6)
            .profile(profile)
            .without_warmup()
            .run()
            .expect("oversubscribed run completes");
        let c = report.consolidation.expect("consolidation block");
        assert_eq!(c.tenants, 6);
        assert_eq!(c.contexts, 4);
        assert_eq!(c.per_tenant.len(), 6);
    }

    #[test]
    fn slice_is_clamped_to_one() {
        let r = ConsolidationRun::new(Mix::Pjbb, 1).slice(0);
        assert_eq!(r.slice, 1);
    }
}
