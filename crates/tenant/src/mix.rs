//! Workload-mix rosters and per-tenant workload assignment.

use hemu_types::{HemuError, Result};
use hemu_workloads::WorkloadSpec;

/// A named roster of workloads tenants are drawn from, round-robin: tenant
/// `i` runs `roster[i % roster.len()]` with seed `base_seed + i`, so a
/// density sweep only ever *adds* tenants — the first K tenants of an
/// N-tenant run are identical to the K-tenant run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mix {
    /// The cheap DaCapo trio (`avrora`, `fop`, `luindex`) — small heaps,
    /// so high densities stay tractable.
    Dacapo,
    /// Homogeneous `pjbb` tenants (the paper's server workload).
    Pjbb,
    /// The GraphChi analytics roster (`pr`, `cc`, `als`).
    Graphchi,
    /// A heterogeneous mix (`avrora`, `pjbb`, `pr`, `luindex`) — the
    /// realistic consolidation scenario.
    Mixed,
}

impl Mix {
    /// Every mix, in stable order.
    pub const ALL: [Mix; 4] = [Mix::Dacapo, Mix::Pjbb, Mix::Graphchi, Mix::Mixed];

    /// The mix's flag-value / display name.
    pub fn name(&self) -> &'static str {
        match self {
            Mix::Dacapo => "dacapo",
            Mix::Pjbb => "pjbb",
            Mix::Graphchi => "graphchi",
            Mix::Mixed => "mixed",
        }
    }

    /// Parses a `--mix` flag value.
    pub fn parse(s: &str) -> Option<Mix> {
        Mix::ALL.into_iter().find(|m| m.name() == s)
    }

    /// The workload names tenants cycle through.
    pub fn roster(&self) -> &'static [&'static str] {
        match self {
            Mix::Dacapo => &["avrora", "fop", "luindex"],
            Mix::Pjbb => &["pjbb"],
            Mix::Graphchi => &["pr", "cc", "als"],
            Mix::Mixed => &["avrora", "pjbb", "pr", "luindex"],
        }
    }

    /// Builds the tenant roster for a run of `tenants` tenants.
    ///
    /// # Errors
    ///
    /// Returns [`HemuError::InvalidConfig`] if a roster name does not
    /// resolve to a workload (a programming error surfaced as a config
    /// error rather than a panic).
    pub fn tenant_specs(&self, tenants: usize, base_seed: u64) -> Result<Vec<TenantSpec>> {
        let roster = self.roster();
        (0..tenants)
            .map(|id| {
                let name = roster[id % roster.len()];
                let workload = WorkloadSpec::by_name(name).ok_or_else(|| {
                    HemuError::InvalidConfig(format!("mix {} names unknown workload {name}", self))
                })?;
                Ok(TenantSpec {
                    id,
                    workload,
                    seed: base_seed.wrapping_add(id as u64),
                })
            })
            .collect()
    }
}

impl std::fmt::Display for Mix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One tenant's identity: which workload it runs and with what seed.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Tenant id (0-based; also the attribution index).
    pub id: usize,
    /// The workload this tenant runs.
    pub workload: WorkloadSpec,
    /// The tenant's private RNG seed (`base_seed + id`, so homogeneous
    /// mixes still diverge per tenant).
    pub seed: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_mix_roster_resolves() {
        for mix in Mix::ALL {
            let specs = mix.tenant_specs(8, 42).expect("roster resolves");
            assert_eq!(specs.len(), 8);
            // Round-robin assignment with distinct seeds.
            let roster = mix.roster();
            for s in &specs {
                assert_eq!(format!("{}", s.workload), roster[s.id % roster.len()]);
                assert_eq!(s.seed, 42 + s.id as u64);
            }
        }
    }

    #[test]
    fn density_sweeps_share_a_prefix() {
        let small = Mix::Mixed.tenant_specs(3, 7).expect("3 tenants");
        let large = Mix::Mixed.tenant_specs(9, 7).expect("9 tenants");
        for (a, b) in small.iter().zip(&large) {
            assert_eq!(a.seed, b.seed);
            assert_eq!(format!("{}", a.workload), format!("{}", b.workload));
        }
    }

    #[test]
    fn parse_round_trips_names() {
        for mix in Mix::ALL {
            assert_eq!(Mix::parse(mix.name()), Some(mix));
        }
        assert_eq!(Mix::parse("specjvm"), None);
    }
}
