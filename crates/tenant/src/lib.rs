//! Multi-tenant consolidation: co-scheduling N mutator tenants onto one
//! shared emulated machine.
//!
//! The paper's experiments run one workload (possibly multiple instances
//! of it) per machine. This crate asks the datacenter question instead:
//! what happens to per-tenant PCM write rates when *different* managed
//! workloads are consolidated onto the same sockets — sharing the
//! inclusive LLC, the QPI link and the PCM write budget? A
//! [`ConsolidationRun`] time-multiplexes N tenants (each its own process,
//! heap and workload, drawn from a [`Mix`] roster with a per-tenant RNG
//! seed) onto the machine's M hardware contexts with a deterministic
//! virtual-time slice scheduler, and attributes every memory-controller
//! line write to the tenant owning the written frame. Per-tenant counts
//! sum exactly to the global controller counters, so consolidation
//! reports compose with every other measurement axis.
//!
//! # Examples
//!
//! ```no_run
//! use hemu_tenant::{ConsolidationRun, Mix};
//!
//! let report = ConsolidationRun::new(Mix::Dacapo, 4).run()?;
//! let c = report.consolidation.expect("consolidated runs carry shares");
//! for t in &c.per_tenant {
//!     println!("tenant {} ({}): {} PCM line writes", t.id, t.workload, t.pcm_write_lines);
//! }
//! # Ok::<(), hemu_types::HemuError>(())
//! ```

#![warn(missing_docs)]

mod mix;
mod run;

pub use mix::{Mix, TenantSpec};
pub use run::ConsolidationRun;
