//! Attribution completeness: per-tenant write counters must sum *exactly*
//! to the global controller counters in every consolidation report —
//! the tenant analog of the provenance-completeness invariant.

use hemu_core::RunReport;
use hemu_obs::ToJson;
use hemu_tenant::{ConsolidationRun, Mix};
use hemu_types::{AccessPath, SubmitMode, CACHE_LINE};

fn assert_complete(report: &RunReport) {
    let c = report
        .consolidation
        .as_ref()
        .expect("consolidated runs carry a consolidation block");
    let line = CACHE_LINE as u64;
    assert_eq!(
        c.attributed_pcm_lines() + c.unattributed_pcm_lines,
        report.pcm_writes.bytes() / line,
        "per-tenant PCM lines + unattributed must equal the controller counter"
    );
    assert_eq!(
        c.attributed_dram_lines() + c.unattributed_dram_lines,
        report.dram_writes.bytes() / line,
        "per-tenant DRAM lines + unattributed must equal the controller counter"
    );
    // Every frame written during a well-formed consolidation run was
    // demand-faulted by some tenant, so nothing is unattributed and the
    // per-tenant sum is *exact* — the invariant the CI smoke greps for.
    assert_eq!(c.unattributed_pcm_lines, 0, "no orphan PCM writes");
    assert_eq!(c.unattributed_dram_lines, 0, "no orphan DRAM writes");
    // Shares are real, not a degenerate single-tenant attribution.
    let active = c
        .per_tenant
        .iter()
        .filter(|t| t.pcm_write_lines > 0)
        .count();
    assert!(active >= 2, "at least two tenants wrote PCM, got {active}");
}

#[test]
fn per_tenant_writes_sum_to_global_counters() {
    let report = ConsolidationRun::new(Mix::Mixed, 3)
        .run()
        .expect("3-tenant mixed run");
    assert_complete(&report);
    // The measured iteration actually wrote memory.
    assert!(report.pcm_writes.bytes() > 0);
}

#[test]
fn attribution_is_complete_under_oversubscription_and_deferred_submission() {
    let profile = hemu_machine::MachineProfile::emulation().with_contexts(2);
    for (path, mode) in [
        (AccessPath::Scalar, SubmitMode::Scalar),
        (AccessPath::Batched, SubmitMode::Deferred),
    ] {
        let report = ConsolidationRun::new(Mix::Dacapo, 5)
            .profile(profile)
            .without_warmup()
            .access_path(path)
            .submit_mode(mode)
            .run()
            .expect("oversubscribed run");
        assert_complete(&report);
    }
}

#[test]
fn consolidated_reports_are_deterministic_and_restorable() {
    let run = || {
        ConsolidationRun::new(Mix::Dacapo, 2)
            .without_warmup()
            .run()
            .expect("2-tenant run")
            .to_json()
    };
    let a = run();
    assert_eq!(a, run(), "same config, byte-identical report");
    // The consolidation block survives the strict restore round-trip.
    let restored = hemu_core::restore_run_report(&a).expect("restores");
    assert_eq!(restored.to_json(), a);
    assert!(restored.consolidation.is_some());
}
