//! A C/C++-style manually managed heap model.
//!
//! Fig. 3 of the paper compares the PCM writes of the C++ and Java
//! implementations of the GraphChi applications. The mechanisms that
//! differentiate the two are all allocator-level:
//!
//! * **no zero-initialisation** — `malloc` returns uninitialised storage,
//!   so allocation itself writes nothing (Java zeroes every object);
//! * **no copying** — objects never move, so there is no GC copy traffic;
//! * **scattered freshness** — a free-list allocator reuses holes all over
//!   the heap, so fresh allocation is not localised to a nursery region
//!   that a write-rationing collector could pin to DRAM;
//! * **explicit free** — memory returns to size-class free lists.
//!
//! The [`NativeHeap`] mirrors the managed heap's object API (allocate,
//! read/write data and pointer fields) so the same workload code can run on
//! either memory manager; the native version simply requires explicit
//! [`NativeHeap::free`].

#![warn(missing_docs)]

mod heap;

pub use heap::{NativeHeap, NativeObject, NativeStats};
