//! The native heap: size-class free lists over a flat region.

use hemu_machine::{CtxId, Machine, ProcId};
use hemu_types::{Addr, ByteSize, HemuError, MemoryAccess, Result, SocketId, PAGE_SIZE};

/// Start of the native heap region.
const NATIVE_START: Addr = Addr::new(0x2000_0000);
/// Maximum native heap reservation (1.5 GiB, like the managed layout).
const NATIVE_MAX: u64 = 0x6000_0000;
/// Allocator header before each object (size + bin bookkeeping).
const MALLOC_HEADER: u32 = 16;
/// Requests at or above this size are served page-aligned from the large
/// path.
const LARGE_REQUEST: u32 = 8 * 1024;

/// The size classes of the small path (bytes, including header).
const SIZE_CLASSES: [u32; 14] = [
    32, 48, 64, 96, 128, 192, 256, 384, 512, 1024, 2048, 4096, 6144, 8192,
];

fn class_for(total: u32) -> Option<usize> {
    SIZE_CLASSES.iter().position(|&c| c >= total)
}

/// Handle to a natively allocated object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NativeObject(u32);

impl NativeObject {
    /// Raw index, for diagnostics.
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Reconstructs a handle from [`NativeObject::raw`]. The value must
    /// have come from this heap.
    pub fn from_raw(raw: u32) -> Self {
        NativeObject(raw)
    }
}

#[derive(Debug, Clone)]
struct Slot {
    addr: Addr,
    /// Requested payload size.
    size: u32,
    /// Rounded block size actually occupied (for free-list recycling).
    block: u32,
    alive: bool,
}

/// Allocation statistics, comparable to what the paper measures with
/// Valgrind's memcheck (total allocation) and massif (peak heap).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NativeStats {
    /// Total bytes requested over the run.
    pub allocated_bytes: u64,
    /// Objects allocated.
    pub allocated_objects: u64,
    /// Bytes freed.
    pub freed_bytes: u64,
    /// Current bytes in use (payload).
    pub in_use: u64,
    /// Peak bytes in use.
    pub peak: u64,
}

impl hemu_obs::ToJson for NativeStats {
    fn write_json(&self, out: &mut String) {
        let mut obj = hemu_obs::json::JsonObject::new(out);
        obj.field("allocated_bytes", &self.allocated_bytes)
            .field("allocated_objects", &self.allocated_objects)
            .field("freed_bytes", &self.freed_bytes)
            .field("in_use", &self.in_use)
            .field("peak", &self.peak);
        obj.finish();
    }
}

/// A manually managed heap bound to one process and hardware context.
///
/// # Examples
///
/// ```
/// use hemu_malloc::NativeHeap;
/// use hemu_machine::{CtxId, Machine, MachineProfile};
/// use hemu_types::SocketId;
///
/// let mut m = Machine::new(MachineProfile::emulation());
/// let proc = m.add_process(SocketId::PCM);
/// let mut heap = NativeHeap::new(&mut m, proc, CtxId(0), SocketId::PCM);
/// let o = heap.alloc(&mut m, 100)?;
/// heap.write(&mut m, o, 0, 100)?;
/// heap.free(o);
/// # Ok::<(), hemu_types::HemuError>(())
/// ```
#[derive(Debug)]
pub struct NativeHeap {
    proc: ProcId,
    ctx: CtxId,
    slots: Vec<Slot>,
    free_ids: Vec<u32>,
    /// Per-size-class free lists of block addresses (LIFO).
    bins: Vec<Vec<Addr>>,
    /// Free page runs for the large path: (base, pages).
    large_free: Vec<(Addr, u64)>,
    wilderness: Addr,
    stats: NativeStats,
}

impl NativeHeap {
    /// Creates a native heap whose entire region is bound to `socket`
    /// (the C++ comparison runs are PCM-Only, i.e. socket 1).
    pub fn new(machine: &mut Machine, proc: ProcId, ctx: CtxId, socket: SocketId) -> Self {
        machine.mbind(proc, NATIVE_START, ByteSize::new(NATIVE_MAX), socket);
        NativeHeap {
            proc,
            ctx,
            slots: Vec::new(),
            free_ids: Vec::new(),
            bins: vec![Vec::new(); SIZE_CLASSES.len()],
            large_free: Vec::new(),
            wilderness: NATIVE_START,
            stats: NativeStats::default(),
        }
    }

    /// Allocation statistics.
    pub fn stats(&self) -> &NativeStats {
        &self.stats
    }

    /// The hardware context this heap's owner runs on.
    pub fn ctx(&self) -> CtxId {
        self.ctx
    }

    /// The process whose address space this heap lives in.
    pub fn proc(&self) -> ProcId {
        self.proc
    }

    /// Bytes between heap start and the wilderness cursor (address-space
    /// footprint).
    pub fn footprint(&self) -> ByteSize {
        ByteSize::new(self.wilderness.raw() - NATIVE_START.raw())
    }

    fn bump(&mut self, bytes: u64, align: u64) -> Result<Addr> {
        let base = self.wilderness.align_up(align);
        if base.raw() + bytes > NATIVE_START.raw() + NATIVE_MAX {
            return Err(HemuError::OutOfNativeMemory {
                requested: ByteSize::new(bytes),
            });
        }
        self.wilderness = base.offset(bytes);
        Ok(base)
    }

    /// Allocates `size` bytes. The storage is *not* zeroed: the only write
    /// is the allocator's own header/bookkeeping.
    ///
    /// # Errors
    ///
    /// Returns [`HemuError::OutOfNativeMemory`] when the region is
    /// exhausted.
    pub fn alloc(&mut self, machine: &mut Machine, size: u32) -> Result<NativeObject> {
        let total = size + MALLOC_HEADER;
        let (addr, block) = if total >= LARGE_REQUEST {
            let pages = ByteSize::new(total as u64).pages();
            let found = self
                .large_free
                .iter()
                .enumerate()
                .filter(|(_, &(_, n))| n >= pages)
                .min_by_key(|(_, &(base, _))| base)
                .map(|(i, _)| i);
            let base = if let Some(i) = found {
                let (base, n) = self.large_free[i];
                if n == pages {
                    self.large_free.swap_remove(i);
                } else {
                    self.large_free[i] = (base.offset(pages * PAGE_SIZE as u64), n - pages);
                }
                base
            } else {
                self.bump(pages * PAGE_SIZE as u64, PAGE_SIZE as u64)?
            };
            (base, (pages * PAGE_SIZE as u64) as u32)
        } else {
            let class = class_for(total).expect("small request must fit a size class");
            if let Some(a) = self.bins[class].pop() {
                (a, SIZE_CLASSES[class])
            } else {
                let a = self.bump(SIZE_CLASSES[class] as u64, 16)?;
                (a, SIZE_CLASSES[class])
            }
        };

        // malloc writes its boundary tag; the payload stays untouched.
        machine.submit(
            self.ctx,
            self.proc,
            MemoryAccess::write(addr, MALLOC_HEADER),
        )?;

        self.stats.allocated_bytes += size as u64;
        self.stats.allocated_objects += 1;
        self.stats.in_use += size as u64;
        self.stats.peak = self.stats.peak.max(self.stats.in_use);

        let slot = Slot {
            addr,
            size,
            block,
            alive: true,
        };
        let id = if let Some(i) = self.free_ids.pop() {
            self.slots[i as usize] = slot;
            i
        } else {
            self.slots.push(slot);
            self.slots.len() as u32 - 1
        };
        Ok(NativeObject(id))
    }

    /// Frees an object, returning its block to the matching free list.
    ///
    /// # Panics
    ///
    /// Panics on double free.
    pub fn free(&mut self, obj: NativeObject) {
        let slot = &mut self.slots[obj.0 as usize];
        assert!(slot.alive, "double free of native object {}", obj.0);
        slot.alive = false;
        self.stats.freed_bytes += slot.size as u64;
        self.stats.in_use -= slot.size as u64;
        let (addr, block) = (slot.addr, slot.block);
        if block as u64 % PAGE_SIZE as u64 == 0 && block >= LARGE_REQUEST {
            self.large_free
                .push((addr, block as u64 / PAGE_SIZE as u64));
        } else {
            let class = class_for(block).expect("block came from a size class");
            self.bins[class].push(addr);
        }
        self.free_ids.push(obj.0);
    }

    /// Whether `obj` is still allocated.
    pub fn is_live(&self, obj: NativeObject) -> bool {
        self.slots
            .get(obj.0 as usize)
            .map(|s| s.alive)
            .unwrap_or(false)
    }

    fn payload(&self, obj: NativeObject, offset: u32, len: u32) -> Addr {
        let slot = &self.slots[obj.0 as usize];
        debug_assert!(slot.alive, "use after free of native object {}", obj.0);
        assert!(offset + len <= slot.size, "access beyond object payload");
        slot.addr.offset(MALLOC_HEADER as u64 + offset as u64)
    }

    /// Writes `len` bytes at `offset` inside the object.
    ///
    /// # Errors
    ///
    /// Propagates machine memory exhaustion.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the payload, or on use-after-free in
    /// debug builds.
    pub fn write(
        &mut self,
        machine: &mut Machine,
        obj: NativeObject,
        offset: u32,
        len: u32,
    ) -> Result<()> {
        let addr = self.payload(obj, offset, len);
        machine.submit(self.ctx, self.proc, MemoryAccess::write(addr, len))
    }

    /// Reads `len` bytes at `offset` inside the object.
    ///
    /// # Errors
    ///
    /// Propagates machine memory exhaustion.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the payload, or on use-after-free in
    /// debug builds.
    pub fn read(
        &mut self,
        machine: &mut Machine,
        obj: NativeObject,
        offset: u32,
        len: u32,
    ) -> Result<()> {
        let addr = self.payload(obj, offset, len);
        machine.submit(self.ctx, self.proc, MemoryAccess::read(addr, len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hemu_machine::MachineProfile;

    fn setup() -> (Machine, NativeHeap) {
        let mut m = Machine::new(MachineProfile::emulation());
        let p = m.add_process(SocketId::PCM);
        let h = NativeHeap::new(&mut m, p, CtxId(0), SocketId::PCM);
        (m, h)
    }

    #[test]
    fn allocation_does_not_zero_payload() {
        let (mut m, mut h) = setup();
        let before = m.socket_writes(SocketId::PCM);
        let _o = h.alloc(&mut m, 4096).unwrap();
        m.flush_caches().unwrap();
        let after = m.socket_writes(SocketId::PCM);
        // Only the 16-byte header (one line) was written, not 4 KiB.
        assert!(after.bytes() - before.bytes() <= 64, "no zeroing in malloc");
    }

    #[test]
    fn free_recycles_same_block_lifo() {
        let (mut m, mut h) = setup();
        let a = h.alloc(&mut m, 100).unwrap();
        let addr_probe = h.payload(a, 0, 1);
        h.free(a);
        let b = h.alloc(&mut m, 100).unwrap();
        assert_eq!(h.payload(b, 0, 1), addr_probe, "LIFO free-list reuse");
    }

    #[test]
    fn different_size_classes_do_not_mix() {
        let (mut m, mut h) = setup();
        let a = h.alloc(&mut m, 100).unwrap(); // class 128
                                               // Probe before freeing: the free slot id gets recycled by the next
                                               // allocation, so `a` must not be dereferenced afterwards.
        let addr_probe = h.payload(a, 0, 1);
        h.free(a);
        let b = h.alloc(&mut m, 400).unwrap(); // class 512
        assert_ne!(
            h.payload(b, 0, 1),
            addr_probe,
            "freed 128-class block must not serve a 512-class request"
        );
    }

    #[test]
    fn large_allocations_are_page_aligned_and_recycled() {
        let (mut m, mut h) = setup();
        let a = h.alloc(&mut m, 100_000).unwrap();
        let pa = h.payload(a, 0, 1).offset(0);
        assert!(pa.raw() % PAGE_SIZE as u64 == MALLOC_HEADER as u64);
        h.free(a);
        let b = h.alloc(&mut m, 90_000).unwrap();
        assert_eq!(h.payload(b, 0, 1), pa, "freed large run is reused first");
    }

    #[test]
    fn stats_track_peak_and_in_use() {
        let (mut m, mut h) = setup();
        let a = h.alloc(&mut m, 1000).unwrap();
        let b = h.alloc(&mut m, 2000).unwrap();
        assert_eq!(h.stats().in_use, 3000);
        assert_eq!(h.stats().peak, 3000);
        h.free(a);
        assert_eq!(h.stats().in_use, 2000);
        let _c = h.alloc(&mut m, 500).unwrap();
        assert_eq!(h.stats().peak, 3000, "peak is sticky");
        let _ = b;
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let (mut m, mut h) = setup();
        let a = h.alloc(&mut m, 64).unwrap();
        h.free(a);
        h.free(a);
    }

    #[test]
    fn writes_land_on_the_bound_socket() {
        let (mut m, mut h) = setup();
        let o = h.alloc(&mut m, 1 << 20).unwrap();
        h.write(&mut m, o, 0, 1 << 20).unwrap();
        m.flush_caches().unwrap();
        assert!(m.socket_writes(SocketId::PCM).bytes() >= 1 << 20);
        assert_eq!(m.socket_writes(SocketId::DRAM).bytes(), 0);
    }

    #[test]
    fn footprint_grows_with_wilderness_only() {
        let (mut m, mut h) = setup();
        let a = h.alloc(&mut m, 100).unwrap();
        let fp = h.footprint();
        h.free(a);
        let _b = h.alloc(&mut m, 100).unwrap();
        assert_eq!(h.footprint(), fp, "recycling does not grow the footprint");
    }
}
