//! The multi-core hierarchy: private L2 per hardware context, one shared
//! inclusive LLC.

use crate::cache::{Cache, CacheConfig};
use hemu_types::{AccessKind, ByteSize, LineAddr};

/// Which level satisfied an access (drives the timing model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HitLevel {
    /// Private L2 hit.
    L2,
    /// Shared LLC hit.
    Llc,
    /// Missed everywhere; line filled from memory.
    Memory,
}

/// Everything the memory system must know about one access: where it hit,
/// which line (if any) was read from memory, and which dirty lines were
/// pushed out to memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierarchyOutcome {
    /// Level that satisfied the access.
    pub level: HitLevel,
    /// Line fetched from memory (always the accessed line, on LLC miss).
    pub memory_fill: Option<LineAddr>,
    /// Dirty lines written back to memory by this access (at most 2: an LLC
    /// victim plus an L2 victim that missed the LLC).
    pub memory_writebacks: Vec<LineAddr>,
}

/// Geometry of the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// Number of hardware contexts, each with a private L2.
    pub contexts: usize,
    /// Private L2 capacity (256 KiB on the paper's platform).
    pub l2_size: ByteSize,
    /// L2 associativity.
    pub l2_assoc: usize,
    /// Shared LLC capacity (20 MiB on the paper's platform).
    pub llc_size: ByteSize,
    /// LLC associativity.
    pub llc_assoc: usize,
}

impl HierarchyConfig {
    /// The paper's emulation platform: per-context 256 KiB 8-way L2s and a
    /// shared 20 MiB 20-way LLC.
    pub fn e5_2650l(contexts: usize) -> Self {
        HierarchyConfig {
            contexts,
            l2_size: ByteSize::from_kib(256),
            l2_assoc: 8,
            llc_size: ByteSize::from_mib(20),
            llc_assoc: 20,
        }
    }
}

/// Private L2s plus one shared, inclusive LLC.
///
/// Inclusion is enforced: when the LLC evicts a line, every L2 copy is
/// back-invalidated and any L2 dirtiness is merged into the write-back, so
/// no store is ever lost and no line is dirty in an L2 without the LLC
/// knowing it resides above.
/// The inclusion directory lives *inside* the LLC's set blocks: one
/// presence byte per LLC slot, bit `c & 7` set when context `c`'s L2 *may*
/// hold the slot's line. Maintained as a superset of true residency (bits
/// are set on every L2 fill but only cleared when the slot is reallocated),
/// so back-invalidation probes only the flagged L2s instead of all of them
/// — the unflagged ones provably miss. With more than 8 contexts bits
/// alias, which just means extra (harmless) probes.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    l2s: Vec<Cache>,
    llc: Cache,
}

impl Hierarchy {
    /// Builds the hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if `config.contexts` is zero or a cache geometry is invalid.
    pub fn new(config: HierarchyConfig) -> Self {
        assert!(config.contexts > 0, "need at least one hardware context");
        let l2cfg = CacheConfig::new("L2", config.l2_size, config.l2_assoc);
        let llc_cfg = CacheConfig::new("LLC", config.llc_size, config.llc_assoc);
        Hierarchy {
            l2s: (0..config.contexts).map(|_| Cache::new(l2cfg)).collect(),
            llc: Cache::new(llc_cfg),
        }
    }

    /// Number of hardware contexts.
    pub fn contexts(&self) -> usize {
        self.l2s.len()
    }

    /// The shared LLC (for stats inspection).
    pub fn llc(&self) -> &Cache {
        &self.llc
    }

    /// One context's private L2 (for stats inspection).
    ///
    /// # Panics
    ///
    /// Panics if `ctx` is out of range.
    pub fn l2(&self, ctx: usize) -> &Cache {
        &self.l2s[ctx]
    }

    /// Enables provenance-tag tracking on every cache in the hierarchy:
    /// tags passed to [`Hierarchy::access_into`] then travel with dirty
    /// lines through L2 eviction, LLC merging, and back-invalidation until
    /// the line reaches memory. Idempotent.
    pub fn enable_tags(&mut self) {
        for l2 in &mut self.l2s {
            l2.enable_tags();
        }
        self.llc.enable_tags();
    }

    /// Issues one line access from hardware context `ctx`.
    ///
    /// Convenience wrapper over [`Hierarchy::access_into`] that allocates
    /// a fresh write-back vector per call; the machine's hot path uses
    /// `access_into` with a reusable scratch buffer instead.
    ///
    /// # Panics
    ///
    /// Panics if `ctx` is out of range.
    pub fn access(&mut self, ctx: usize, line: LineAddr, kind: AccessKind) -> HierarchyOutcome {
        let mut writebacks = Vec::new();
        let (level, memory_fill) = self.access_into(ctx, line, kind, 0, &mut writebacks);
        HierarchyOutcome {
            level,
            memory_fill,
            memory_writebacks: writebacks.into_iter().map(|(line, _)| line).collect(),
        }
    }

    /// Prefetches the L2 and LLC set metadata `line` maps to into the
    /// host's cache (performance hint only; see [`Cache::prefetch_set`]).
    #[inline]
    pub(crate) fn prefetch(&self, ctx: usize, line: LineAddr) {
        self.l2s[ctx].prefetch_set(line);
        self.llc.prefetch_set(line);
    }

    /// Issues one line access from hardware context `ctx`, appending any
    /// memory write-backs — each with the provenance tag of the store that
    /// dirtied it — to `writebacks` (cleared first) instead of allocating
    /// a vector: the allocation-free form the machine's access fast path
    /// uses, passing the same scratch buffer every call. `wtag` is the
    /// provenance of this access when it is a write (ignored unless
    /// [`Hierarchy::enable_tags`] was called; pass 0 when untracked).
    ///
    /// Returns the level that satisfied the access and the line filled
    /// from memory, if any.
    ///
    /// # Panics
    ///
    /// Panics if `ctx` is out of range.
    pub fn access_into(
        &mut self,
        ctx: usize,
        line: LineAddr,
        kind: AccessKind,
        wtag: u8,
        writebacks: &mut Vec<(LineAddr, u8)>,
    ) -> (HitLevel, Option<LineAddr>) {
        writebacks.clear();

        // L2 probe.
        let l2r = self.l2s[ctx].access_tagged(line, kind, wtag);
        if l2r.hit {
            return (HitLevel::L2, None);
        }

        // The L2 displaced a line; a dirty one must merge into the LLC,
        // carrying the tag of its most recent store.
        if let Some(v) = l2r.victim {
            if v.dirty && !self.llc.mark_dirty_tagged(v.line, v.tag) {
                // Inclusion violated only transiently: the victim can have
                // been back-invalidated from the LLC by a concurrent set
                // conflict. Its data goes straight to memory.
                writebacks.push((v.line, v.tag));
            }
        }

        // LLC probe. The L2 will hold the written line dirty, so the LLC
        // access itself is a read-for-fill; dirtiness reaches the LLC later
        // via the L2 write-back path above.
        let llcr = self.llc.access(line, AccessKind::Read);
        let ctx_bit = 1u8 << (ctx & 7);
        if llcr.hit {
            // The accessed line just filled into ctx's L2; record it.
            self.llc.pres_or(line, llcr.way as usize, ctx_bit);
            return (HitLevel::Llc, None);
        }

        // The slot was reallocated: its presence byte describes the victim
        // (if any), then starts over with just the filling context.
        let present = self.llc.pres_replace(line, llcr.way as usize, ctx_bit);
        if let Some(v) = llcr.victim {
            // Inclusive LLC: evicting a line expels it from every L2. An
            // L2 copy holds newer data than the LLC's, so its tag (the
            // most recent store) wins. Only the L2s flagged in the
            // directory can hold the line; the rest provably miss.
            let mut dirty = v.dirty;
            let mut tag = v.tag;
            if self.l2s.len() <= 8 {
                let mut rem = present;
                while rem != 0 {
                    let c = rem.trailing_zeros() as usize;
                    rem &= rem - 1;
                    if let Some((l2_dirty, l2_tag)) = self.l2s[c].invalidate_tagged(v.line) {
                        if l2_dirty {
                            dirty = true;
                            tag = l2_tag;
                        }
                    }
                }
            } else {
                // Aliased presence bits: probe every context whose bit is
                // set (a superset of the true holders).
                for (c, l2) in self.l2s.iter_mut().enumerate() {
                    if present & (1 << (c & 7)) != 0 {
                        if let Some((l2_dirty, l2_tag)) = l2.invalidate_tagged(v.line) {
                            if l2_dirty {
                                dirty = true;
                                tag = l2_tag;
                            }
                        }
                    }
                }
            }
            if dirty {
                writebacks.push((v.line, tag));
            }
        }

        (HitLevel::Memory, Some(line))
    }

    /// Flushes every dirty line in the whole hierarchy to memory, calling
    /// `sink` once per line with the provenance tag of its last store (0
    /// when tag tracking is off). Used at measurement barriers so that
    /// stores still buffered in caches are attributed to the iteration
    /// that made them.
    pub fn flush<F: FnMut(LineAddr, u8)>(&mut self, mut sink: F) {
        // L2 dirty lines merge into the LLC copy (or go straight to memory
        // if inclusion was transiently broken).
        let mut l2_orphans = Vec::new();
        for l2 in &mut self.l2s {
            let llc = &mut self.llc;
            l2.flush_dirty_tagged(|line, tag| {
                if !llc.mark_dirty_tagged(line, tag) {
                    l2_orphans.push((line, tag));
                }
            });
        }
        for (line, tag) in l2_orphans {
            sink(line, tag);
        }
        self.llc.flush_dirty_tagged(&mut sink);
    }

    /// Resets statistics on every cache (contents are preserved).
    pub fn reset_stats(&mut self) {
        for l2 in &mut self.l2s {
            l2.reset_stats();
        }
        self.llc.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(contexts: usize) -> Hierarchy {
        // L2: 2 sets x 2 ways; LLC: 4 sets x 4 ways.
        Hierarchy::new(HierarchyConfig {
            contexts,
            l2_size: ByteSize::new(256),
            l2_assoc: 2,
            llc_size: ByteSize::new(1024),
            llc_assoc: 4,
        })
    }

    fn l(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    #[test]
    fn first_access_misses_to_memory() {
        let mut h = tiny(1);
        let o = h.access(0, l(0), AccessKind::Read);
        assert_eq!(o.level, HitLevel::Memory);
        assert_eq!(o.memory_fill, Some(l(0)));
        assert!(o.memory_writebacks.is_empty());
    }

    #[test]
    fn second_access_hits_l2() {
        let mut h = tiny(1);
        h.access(0, l(0), AccessKind::Read);
        let o = h.access(0, l(0), AccessKind::Write);
        assert_eq!(o.level, HitLevel::L2);
    }

    #[test]
    fn sibling_context_hits_llc() {
        let mut h = tiny(2);
        h.access(0, l(0), AccessKind::Read);
        let o = h.access(1, l(0), AccessKind::Read);
        assert_eq!(
            o.level,
            HitLevel::Llc,
            "fill left the line in the shared LLC"
        );
    }

    #[test]
    fn dirty_l2_eviction_merges_into_llc_not_memory() {
        let mut h = tiny(1);
        h.access(0, l(0), AccessKind::Write);
        // Evict line 0 from the (2-way) L2 set 0 with lines 2 and 4.
        h.access(0, l(2), AccessKind::Read);
        let o = h.access(0, l(4), AccessKind::Read);
        assert!(
            o.memory_writebacks.is_empty(),
            "dirty data is still buffered in the LLC"
        );
        assert_eq!(h.llc().is_dirty(l(0)), Some(true));
    }

    #[test]
    fn llc_eviction_of_dirty_line_writes_memory() {
        let mut h = tiny(1);
        h.access(0, l(0), AccessKind::Write);
        // LLC set 0 holds multiples of 4: fill ways with 0,4,8,12 then touch 16.
        for n in [4u64, 8, 12] {
            h.access(0, l(n), AccessKind::Read);
        }
        let o = h.access(0, l(16), AccessKind::Read);
        // Line 0's dirtiness lives in the L2 (never evicted from L2 yet);
        // inclusion back-invalidates it and must carry the dirty data out.
        assert_eq!(o.memory_writebacks, vec![l(0)]);
        assert!(
            !h.l2(0).contains(l(0)),
            "back-invalidation removed the L2 copy"
        );
    }

    #[test]
    fn clean_llc_eviction_is_silent() {
        let mut h = tiny(1);
        for n in [0u64, 4, 8, 12] {
            h.access(0, l(n), AccessKind::Read);
        }
        let o = h.access(0, l(16), AccessKind::Read);
        assert!(o.memory_writebacks.is_empty());
    }

    #[test]
    fn flush_emits_each_dirty_line_exactly_once() {
        let mut h = tiny(2);
        h.access(0, l(0), AccessKind::Write);
        h.access(1, l(1), AccessKind::Write);
        h.access(0, l(2), AccessKind::Read);
        let mut out = Vec::new();
        h.flush(|line, _| out.push(line));
        out.sort_by_key(|x| x.raw());
        assert_eq!(out, vec![l(0), l(1)]);
        let mut again = Vec::new();
        h.flush(|line, _| again.push(line));
        assert!(again.is_empty());
    }

    #[test]
    fn tags_flow_through_hierarchy_to_memory() {
        let mut h = tiny(1);
        h.enable_tags();
        let mut wbs = Vec::new();
        // Write line 0 with tag 7; the dirty line is back-invalidated out
        // of the L2 when LLC set 0 overflows, and the write-back must still
        // carry tag 7.
        h.access_into(0, l(0), AccessKind::Write, 7, &mut wbs);
        for n in [4u64, 8, 12] {
            h.access_into(0, l(n), AccessKind::Read, 0, &mut wbs);
        }
        h.access_into(0, l(16), AccessKind::Read, 0, &mut wbs);
        assert_eq!(wbs, vec![(l(0), 7)]);
        // Flush also reports tags: write line 20 with tag 3 and flush.
        h.access_into(0, l(20), AccessKind::Write, 3, &mut wbs);
        let mut flushed = Vec::new();
        h.flush(|line, tag| flushed.push((line, tag)));
        assert!(flushed.contains(&(l(20), 3)), "flush lost the tag");
    }

    #[test]
    fn repeated_writes_in_cache_produce_no_memory_traffic() {
        // The mechanism behind the paper's Finding 1: a nursery that fits in
        // the LLC absorbs nearly all its writes.
        let mut h = tiny(1);
        let mut mem_writes = 0;
        for _ in 0..50 {
            for n in 0..4u64 {
                let o = h.access(0, l(n), AccessKind::Write);
                mem_writes += o.memory_writebacks.len();
            }
        }
        assert_eq!(mem_writes, 0);
    }

    #[test]
    fn llc_contention_between_contexts_causes_writebacks() {
        // Two contexts each writing a working set that alone fits the LLC
        // but together overflows it: the multiprogramming mechanism of
        // Fig. 4 in miniature.
        let mut h = tiny(2);
        let mut mem_writes = 0;
        for round in 0..20 {
            for n in 0..10u64 {
                let o0 = h.access(0, l(n), AccessKind::Write);
                let o1 = h.access(1, l(n + 100), AccessKind::Write);
                if round > 0 {
                    mem_writes += o0.memory_writebacks.len() + o1.memory_writebacks.len();
                }
            }
        }
        assert!(mem_writes > 0, "combined working set must overflow the LLC");
    }
}
