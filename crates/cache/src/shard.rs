//! The set-sharded hierarchy: the batch pipeline's resolution engine.
//!
//! # Why sharding by low line bits is exact
//!
//! Both cache levels index sets with the *low* bits of the physical line
//! number (`line & (sets - 1)`), and the L2 set count divides the LLC set
//! count. Pick `NS = 2^k` with `k <= log2(l2_sets)`: every line whose low
//! `k` bits equal `s` — and, crucially, every side-effect line any access
//! to it can produce (its L2 victim, its LLC victim, the dirty-merge
//! target, the back-invalidation targets) — shares those same low bits,
//! because victims come from the same cache set as the accessed line.
//! Partitioning lines by `line & (NS - 1)` therefore splits the hierarchy
//! into `NS` fully independent sub-hierarchies that never exchange state.
//!
//! Each shard holds a [`Hierarchy`] with `1/NS`-th of each cache's
//! capacity and operates on `line >> k` (a bijection within the shard;
//! the full set index is `shard | sub_set << k`). LRU comparisons only
//! ever happen within one set, and a set lives in exactly one shard, so
//! per-set tick ordering — and with it every hit, victim, and write-back —
//! is bit-identical to the monolithic hierarchy. The reference-model suite
//! (`crates/cache/tests/reference_model.rs`) locks this in.
//!
//! # Why this is fast
//!
//! The monolithic hierarchy's tag/LRU arrays are several MiB; a random
//! access stream misses the *simulator's own* caches on nearly every probe.
//! One shard's arrays are `1/NS`-th that size (~100 KiB at the default
//! `NS = 64` for the paper's geometry) — draining a whole batch queue
//! against one shard keeps its metadata resident in the host's L2.
//!
//! # Deterministic intra-run parallelism
//!
//! Because shards share no state, a batch can be resolved by any number of
//! worker threads, each owning a disjoint range of shards, with no
//! synchronization beyond the scope join — and the outcome of every queued
//! access is *identical* at any thread count by construction. The merge
//! back into global submission order is the caller's job (the machine
//! walks its batch arrays and pops per-shard outcome cursors).

use crate::cache::Cache;
use crate::hierarchy::{Hierarchy, HierarchyConfig, HitLevel};
use crate::stats::CacheStats;
use hemu_types::{AccessKind, ByteSize, LineAddr};

/// Default shard-count exponent: `2^6 = 64` shards.
pub const DEFAULT_SHARD_BITS: u32 = 6;

/// Queues below this many total lines resolve inline even when worker
/// threads are requested; spawning a scope costs more than it saves.
const PARALLEL_MIN_LINES: usize = 8192;

/// How many queue entries ahead the resolver prefetches cache metadata.
/// Far enough to cover a host memory round-trip at a few dozen cycles per
/// resolved line, near enough that prefetched lines survive until use.
const PREFETCH_AHEAD: usize = 12;

/// One queued line access, packed struct-of-arrays style: the original
/// (unshifted) line plus a meta word holding context, kind, and tag.
#[derive(Debug, Clone, Copy)]
struct QueuedLine {
    line: u64,
    /// `ctx << 16 | wtag << 8 | is_write`.
    meta: u32,
}

/// One shard: a private sub-hierarchy plus its batch queue and outcome
/// buffers.
#[derive(Debug)]
struct Shard {
    hier: Hierarchy,
    /// The shard's own low line bits, OR-ed back into shifted victims.
    low: u64,
    queue: Vec<QueuedLine>,
    /// Per queued access: hit level (2 bits) | write-back count `<< 2`.
    out: Vec<u8>,
    /// Unshifted write-backs of the whole queue, in access order.
    wbs: Vec<(LineAddr, u8)>,
    /// Aggregate-mode per-context hit counts, `contexts * 3` wide,
    /// indexed `ctx * 3 + level_code`.
    counts: Vec<u64>,
    /// Aggregate-mode memory fills `(ctx, unshifted line)`, in access
    /// order.
    fills: Vec<(u32, u64)>,
    /// Merge cursors: next outcome / next write-back to hand out.
    cursor: usize,
    wb_cursor: usize,
    scratch: Vec<(LineAddr, u8)>,
}

impl Shard {
    /// Resolves the whole queue against this shard's sub-hierarchy.
    fn run_queue(&mut self, ns_bits: u32) {
        let Shard {
            hier,
            queue,
            out,
            wbs,
            scratch,
            low,
            ..
        } = self;
        out.clear();
        wbs.clear();
        for (i, q) in queue.iter().enumerate() {
            // The queue is known upfront, so hide the host-memory latency
            // of the tag/LRU probes by prefetching a fixed distance ahead.
            if let Some(next) = queue.get(i + PREFETCH_AHEAD) {
                hier.prefetch(
                    (next.meta >> 16) as usize,
                    LineAddr::new(next.line >> ns_bits),
                );
            }
            let ctx = (q.meta >> 16) as usize;
            let wtag = (q.meta >> 8) as u8;
            let kind = if q.meta & 1 == 1 {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            let shifted = LineAddr::new(q.line >> ns_bits);
            let (level, _fill) = hier.access_into(ctx, shifted, kind, wtag, scratch);
            debug_assert!(scratch.len() <= 2, "at most an LLC and an L2 victim");
            out.push(level_code(level) | (scratch.len() as u8) << 2);
            wbs.extend(
                scratch
                    .iter()
                    .map(|&(l, t)| (LineAddr::new(l.raw() << ns_bits | *low), t)),
            );
        }
    }

    /// [`Shard::run_queue`] for order-insensitive callers: resolves the
    /// whole queue in one pass, accumulating per-context hit counts and a
    /// memory-fill list instead of the per-access outcome codes, so the
    /// merge never has to re-walk the queue. Every cache-state mutation is
    /// identical to `run_queue` (same accesses, same order); only how the
    /// outcomes are reported differs.
    fn run_queue_aggregate(&mut self, ns_bits: u32) {
        let Shard {
            hier,
            queue,
            wbs,
            counts,
            fills,
            scratch,
            low,
            ..
        } = self;
        wbs.clear();
        fills.clear();
        counts.clear();
        counts.resize(hier.contexts() * 3, 0);
        for (i, q) in queue.iter().enumerate() {
            if let Some(next) = queue.get(i + PREFETCH_AHEAD) {
                hier.prefetch(
                    (next.meta >> 16) as usize,
                    LineAddr::new(next.line >> ns_bits),
                );
            }
            let ctx = (q.meta >> 16) as usize;
            let wtag = (q.meta >> 8) as u8;
            let kind = if q.meta & 1 == 1 {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            let shifted = LineAddr::new(q.line >> ns_bits);
            let (level, _fill) = hier.access_into(ctx, shifted, kind, wtag, scratch);
            debug_assert!(scratch.len() <= 2, "at most an LLC and an L2 victim");
            counts[ctx * 3 + level_code(level) as usize] += 1;
            if level == HitLevel::Memory {
                fills.push((ctx as u32, q.line));
            }
            wbs.extend(
                scratch
                    .iter()
                    .map(|&(l, t)| (LineAddr::new(l.raw() << ns_bits | *low), t)),
            );
        }
    }
}

#[inline]
const fn level_code(level: HitLevel) -> u8 {
    match level {
        HitLevel::L2 => 0,
        HitLevel::Llc => 1,
        HitLevel::Memory => 2,
    }
}

#[inline]
const fn code_level(code: u8) -> HitLevel {
    match code & 0b11 {
        0 => HitLevel::L2,
        1 => HitLevel::Llc,
        _ => HitLevel::Memory,
    }
}

/// The hierarchy partitioned into independent set shards, with a batch
/// queue per shard. Drop-in semantic replacement for [`Hierarchy`] (see
/// the module docs for the equivalence argument), plus the batch API:
/// [`ShardedHierarchy::begin_batch`] / [`ShardedHierarchy::enqueue`] /
/// [`ShardedHierarchy::resolve`] / [`ShardedHierarchy::next_outcome`].
#[derive(Debug)]
pub struct ShardedHierarchy {
    ns_bits: u32,
    shard_mask: u64,
    shards: Vec<Shard>,
    contexts: usize,
    queued: usize,
}

impl ShardedHierarchy {
    /// Builds the sharded hierarchy. `ns_bits` is clamped so the shard
    /// count never exceeds the smaller cache's set count (each shard must
    /// own at least one full set of each level).
    ///
    /// # Panics
    ///
    /// Panics if `config.contexts` is zero or a cache geometry is invalid
    /// (same contract as [`Hierarchy::new`]).
    pub fn new(config: HierarchyConfig, ns_bits: u32) -> Self {
        let l2_sets = (config.l2_size.bytes() as usize / 64 / config.l2_assoc).max(1);
        let llc_sets = (config.llc_size.bytes() as usize / 64 / config.llc_assoc).max(1);
        let ns_bits = ns_bits
            .min(l2_sets.trailing_zeros())
            .min(llc_sets.trailing_zeros());
        let ns = 1usize << ns_bits;
        let sub = HierarchyConfig {
            contexts: config.contexts,
            l2_size: ByteSize::new(config.l2_size.bytes() >> ns_bits),
            l2_assoc: config.l2_assoc,
            llc_size: ByteSize::new(config.llc_size.bytes() >> ns_bits),
            llc_assoc: config.llc_assoc,
        };
        ShardedHierarchy {
            ns_bits,
            shard_mask: (ns - 1) as u64,
            shards: (0..ns)
                .map(|s| Shard {
                    hier: Hierarchy::new(sub),
                    low: s as u64,
                    queue: Vec::new(),
                    out: Vec::new(),
                    wbs: Vec::new(),
                    counts: Vec::new(),
                    fills: Vec::new(),
                    cursor: 0,
                    wb_cursor: 0,
                    scratch: Vec::with_capacity(4),
                })
                .collect(),
            contexts: config.contexts,
            queued: 0,
        }
    }

    /// Number of hardware contexts.
    pub fn contexts(&self) -> usize {
        self.contexts
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Enables provenance-tag tracking on every shard. Idempotent.
    pub fn enable_tags(&mut self) {
        for s in &mut self.shards {
            s.hier.enable_tags();
        }
    }

    /// Resets statistics on every shard (contents are preserved).
    pub fn reset_stats(&mut self) {
        for s in &mut self.shards {
            s.hier.reset_stats();
        }
    }

    /// Issues one line access immediately (no batching) — the scalar-shaped
    /// entry point with [`Hierarchy::access_into`]'s exact contract, used
    /// for small accesses where pipeline setup isn't worth it.
    ///
    /// # Panics
    ///
    /// Panics if `ctx` is out of range.
    #[inline]
    pub fn access_into(
        &mut self,
        ctx: usize,
        line: LineAddr,
        kind: AccessKind,
        wtag: u8,
        writebacks: &mut Vec<(LineAddr, u8)>,
    ) -> (HitLevel, Option<LineAddr>) {
        let ns_bits = self.ns_bits;
        let shard = &mut self.shards[(line.raw() & self.shard_mask) as usize];
        let shifted = LineAddr::new(line.raw() >> ns_bits);
        let (level, fill) = shard.hier.access_into(ctx, shifted, kind, wtag, writebacks);
        for wb in writebacks.iter_mut() {
            wb.0 = LineAddr::new(wb.0.raw() << ns_bits | shard.low);
        }
        (level, fill.map(|_| line))
    }

    /// Starts a new batch: clears every shard's queue and outcome cursors.
    pub fn begin_batch(&mut self) {
        for s in &mut self.shards {
            s.queue.clear();
            s.out.clear();
            s.wbs.clear();
            s.counts.clear();
            s.fills.clear();
            s.cursor = 0;
            s.wb_cursor = 0;
        }
        self.queued = 0;
    }

    /// Queues one line access for the current batch.
    #[inline]
    pub fn enqueue(&mut self, ctx: usize, line: LineAddr, kind: AccessKind, wtag: u8) {
        debug_assert!(ctx < self.contexts);
        let meta = (ctx as u32) << 16 | (wtag as u32) << 8 | kind.is_write() as u32;
        self.shards[(line.raw() & self.shard_mask) as usize]
            .queue
            .push(QueuedLine {
                line: line.raw(),
                meta,
            });
        self.queued += 1;
    }

    /// Lines queued in the current batch.
    pub fn queued(&self) -> usize {
        self.queued
    }

    /// Resolves every queued access against its shard. With `threads > 1`
    /// (and a queue large enough to amortize spawning) shards are split
    /// across a scoped worker pool; each shard is still processed
    /// sequentially in enqueue order, so the outcome of every access is
    /// identical at any thread count.
    pub fn resolve(&mut self, threads: usize) {
        let ns_bits = self.ns_bits;
        let threads = threads.clamp(1, self.shards.len());
        if threads == 1 || self.queued < PARALLEL_MIN_LINES {
            for s in &mut self.shards {
                s.run_queue(ns_bits);
            }
            return;
        }
        let per = self.shards.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for chunk in self.shards.chunks_mut(per) {
                scope.spawn(move || {
                    for s in chunk {
                        s.run_queue(ns_bits);
                    }
                });
            }
        });
    }

    /// [`ShardedHierarchy::resolve`] for order-insensitive callers: each
    /// shard resolves its queue in a single pass that directly accumulates
    /// per-context hit counts, the memory-fill list, and the write-backs,
    /// so the merge reads aggregates instead of re-walking every queued
    /// access. Cache state after this call is bit-identical to `resolve`'s.
    /// Consume with [`ShardedHierarchy::drain_counts`] /
    /// [`ShardedHierarchy::drain_fills`] /
    /// [`ShardedHierarchy::drain_writebacks`]; not mixable with
    /// [`ShardedHierarchy::next_outcome`] or
    /// [`ShardedHierarchy::drain_lines`] within one batch.
    pub fn resolve_aggregate(&mut self, threads: usize) {
        let ns_bits = self.ns_bits;
        let threads = threads.clamp(1, self.shards.len());
        if threads == 1 || self.queued < PARALLEL_MIN_LINES {
            for s in &mut self.shards {
                s.run_queue_aggregate(ns_bits);
            }
            return;
        }
        let per = self.shards.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for chunk in self.shards.chunks_mut(per) {
                scope.spawn(move || {
                    for s in chunk {
                        s.run_queue_aggregate(ns_bits);
                    }
                });
            }
        });
    }

    /// Consumes the per-context hit-level counts of an aggregate-resolved
    /// batch: `visit(ctx, level, n)` once per (context, level) pair with a
    /// non-zero count, shard-major. The companion of
    /// [`ShardedHierarchy::resolve_aggregate`].
    pub fn drain_counts<F: FnMut(usize, HitLevel, u64)>(&mut self, mut visit: F) {
        for s in &mut self.shards {
            for (i, &n) in s.counts.iter().enumerate() {
                if n != 0 {
                    visit(i / 3, code_level((i % 3) as u8), n);
                }
            }
            s.cursor = s.queue.len();
        }
    }

    /// Consumes the memory fills of an aggregate-resolved batch:
    /// `visit(ctx, line)` per fill, shard-major in per-shard access order —
    /// the same order [`ShardedHierarchy::drain_lines`] would surface them.
    pub fn drain_fills<F: FnMut(usize, LineAddr)>(&mut self, mut visit: F) {
        for s in &mut self.shards {
            for &(ctx, line) in &s.fills {
                visit(ctx as usize, LineAddr::new(line));
            }
        }
    }

    /// Pops the outcome of the next queued access to `line`'s shard.
    ///
    /// Must be called exactly once per enqueued access, in an order that is
    /// per-shard FIFO; calling in global enqueue order satisfies that. The
    /// returned fill is the accessed line itself on a memory-level miss
    /// (the hierarchy's invariant), and the slice holds this access's
    /// write-backs with their provenance tags.
    ///
    /// # Panics
    ///
    /// Panics if the shard's queue outcomes are exhausted (i.e. the call
    /// sequence does not match the enqueue sequence).
    #[inline]
    pub fn next_outcome(
        &mut self,
        line: LineAddr,
    ) -> (HitLevel, Option<LineAddr>, &[(LineAddr, u8)]) {
        let shard = &mut self.shards[(line.raw() & self.shard_mask) as usize];
        let code = shard.out[shard.cursor];
        debug_assert_eq!(shard.queue[shard.cursor].line, line.raw());
        shard.cursor += 1;
        let n = (code >> 2) as usize;
        let wbs = &shard.wbs[shard.wb_cursor..shard.wb_cursor + n];
        shard.wb_cursor += n;
        let level = code_level(code);
        let fill = (level == HitLevel::Memory).then_some(line);
        (level, fill, wbs)
    }

    /// Consumes every resolved outcome of the current batch shard-major:
    /// `visit` sees each queued access's context, original (unshifted)
    /// line, and hit level, in per-shard enqueue order. This is the
    /// aggregate half of the merge for callers whose per-line bookkeeping
    /// is order-insensitive (pure counter sums): walking shard-major keeps
    /// each shard's queue and outcome arrays streaming instead of hopping
    /// between shards per line, and skips [`ShardedHierarchy::next_outcome`]'s
    /// cursor machinery entirely. Pair with
    /// [`ShardedHierarchy::drain_writebacks`]; not mixable with
    /// `next_outcome` within one batch.
    pub fn drain_lines<F: FnMut(usize, LineAddr, HitLevel)>(&mut self, mut visit: F) {
        for s in &mut self.shards {
            debug_assert_eq!(s.cursor, 0, "drain_lines after next_outcome");
            for (q, &code) in s.queue.iter().zip(s.out.iter()) {
                visit(
                    (q.meta >> 16) as usize,
                    LineAddr::new(q.line),
                    code_level(code),
                );
            }
            s.cursor = s.queue.len();
        }
    }

    /// Consumes every write-back of the current batch shard-major, with its
    /// provenance tag; the order-insensitive companion of
    /// [`ShardedHierarchy::drain_lines`].
    pub fn drain_writebacks<F: FnMut(LineAddr, u8)>(&mut self, mut visit: F) {
        for s in &mut self.shards {
            debug_assert_eq!(s.wb_cursor, 0, "drain_writebacks after next_outcome");
            for &(wb, tag) in &s.wbs {
                visit(wb, tag);
            }
            s.wb_cursor = s.wbs.len();
        }
    }

    /// Flushes every dirty line in every shard to memory, calling `sink`
    /// once per line with its provenance tag. Shards flush in index order,
    /// each with [`Hierarchy::flush`]'s own ordering — deterministic, but
    /// a different (equally valid) order than the monolithic hierarchy;
    /// only per-line sums are observable in reports.
    pub fn flush<F: FnMut(LineAddr, u8)>(&mut self, mut sink: F) {
        let ns_bits = self.ns_bits;
        for s in &mut self.shards {
            let low = s.low;
            s.hier
                .flush(|line, tag| sink(LineAddr::new(line.raw() << ns_bits | low), tag));
        }
    }

    /// Aggregate LLC statistics (field-wise sum over shards).
    pub fn llc_stats(&self) -> CacheStats {
        self.shards
            .iter()
            .map(|s| *s.hier.llc().stats())
            .fold(CacheStats::default(), |mut a, b| {
                a.hits += b.hits;
                a.misses += b.misses;
                a.evictions += b.evictions;
                a.writebacks += b.writebacks;
                a
            })
    }

    /// Aggregate statistics of one context's (sharded) private L2.
    pub fn l2_stats(&self, ctx: usize) -> CacheStats {
        self.shards.iter().map(|s| *s.hier.l2(ctx).stats()).fold(
            CacheStats::default(),
            |mut a, b| {
                a.hits += b.hits;
                a.misses += b.misses;
                a.evictions += b.evictions;
                a.writebacks += b.writebacks;
                a
            },
        )
    }

    /// Whether `line` is resident in the (sharded) LLC — test helper.
    pub fn llc_contains(&self, line: LineAddr) -> bool {
        self.shard_cache(line, |h| h.llc())
            .contains(self.shift(line))
    }

    /// The LLC dirty bit of `line`, if resident — test helper.
    pub fn llc_is_dirty(&self, line: LineAddr) -> Option<bool> {
        self.shard_cache(line, |h| h.llc())
            .is_dirty(self.shift(line))
    }

    /// Whether `line` is resident in `ctx`'s (sharded) L2 — test helper.
    pub fn l2_contains(&self, ctx: usize, line: LineAddr) -> bool {
        self.shard_cache(line, |h| h.l2(ctx))
            .contains(self.shift(line))
    }

    /// The L2 dirty bit of `line` in `ctx`'s cache, if resident — test
    /// helper.
    pub fn l2_is_dirty(&self, ctx: usize, line: LineAddr) -> Option<bool> {
        self.shard_cache(line, |h| h.l2(ctx))
            .is_dirty(self.shift(line))
    }

    #[inline]
    fn shift(&self, line: LineAddr) -> LineAddr {
        LineAddr::new(line.raw() >> self.ns_bits)
    }

    #[inline]
    fn shard_cache<'a, F: FnOnce(&'a Hierarchy) -> &'a Cache>(
        &'a self,
        line: LineAddr,
        pick: F,
    ) -> &'a Cache {
        pick(&self.shards[(line.raw() & self.shard_mask) as usize].hier)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> HierarchyConfig {
        // L2: 8 sets x 2 ways; LLC: 16 sets x 4 ways.
        HierarchyConfig {
            contexts: 2,
            l2_size: ByteSize::new(8 * 2 * 64),
            l2_assoc: 2,
            llc_size: ByteSize::new(16 * 4 * 64),
            llc_assoc: 4,
        }
    }

    #[test]
    fn ns_bits_clamps_to_smallest_level() {
        let s = ShardedHierarchy::new(config(), 10);
        assert_eq!(s.shard_count(), 8, "clamped to the 8-set L2");
        let s = ShardedHierarchy::new(config(), 2);
        assert_eq!(s.shard_count(), 4);
        let s = ShardedHierarchy::new(config(), 0);
        assert_eq!(s.shard_count(), 1);
    }

    #[test]
    fn scalar_path_matches_monolithic_hierarchy() {
        let mut mono = Hierarchy::new(config());
        let mut sharded = ShardedHierarchy::new(config(), 2);
        let mut wb_a = Vec::new();
        let mut wb_b = Vec::new();
        let mut state = 7u64;
        for i in 0..5000u64 {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            let line = LineAddr::new((state >> 20) % 256);
            let kind = if state & 1 == 1 {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            let ctx = (i % 2) as usize;
            let a = mono.access_into(ctx, line, kind, 0, &mut wb_a);
            let b = sharded.access_into(ctx, line, kind, 0, &mut wb_b);
            assert_eq!(a, b, "op {i}: level/fill diverged");
            assert_eq!(wb_a, wb_b, "op {i}: write-backs diverged");
        }
        assert_eq!(*mono.llc().stats(), sharded.llc_stats());
    }

    #[test]
    fn batch_outcomes_match_scalar_path_at_any_thread_count() {
        for threads in [1, 3] {
            let mut scalar = ShardedHierarchy::new(config(), 2);
            let mut batch = ShardedHierarchy::new(config(), 2);
            let mut stream = Vec::new();
            let mut state = 99u64;
            for i in 0..4000u64 {
                state = state
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1_442_695_040_888_963_407);
                let kind = if state & 1 == 1 {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                stream.push(((i % 2) as usize, LineAddr::new((state >> 20) % 256), kind));
            }
            let mut wb = Vec::new();
            for chunk in stream.chunks(257) {
                batch.begin_batch();
                for &(ctx, line, kind) in chunk {
                    batch.enqueue(ctx, line, kind, 0);
                }
                batch.resolve(threads);
                for &(ctx, line, kind) in chunk {
                    let (lv_s, fill_s) = scalar.access_into(ctx, line, kind, 0, &mut wb);
                    let (lv_b, fill_b, wbs_b) = batch.next_outcome(line);
                    assert_eq!((lv_s, fill_s), (lv_b, fill_b));
                    assert_eq!(wb.as_slice(), wbs_b);
                }
            }
            assert_eq!(scalar.llc_stats(), batch.llc_stats());
        }
    }

    #[test]
    fn drain_matches_next_outcome_aggregates() {
        let mut cursor = ShardedHierarchy::new(config(), 2);
        let mut drain = ShardedHierarchy::new(config(), 2);
        let mut stream = Vec::new();
        let mut state = 5u64;
        for i in 0..4000u64 {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            let kind = if state & 1 == 1 {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            stream.push(((i % 2) as usize, LineAddr::new((state >> 20) % 256), kind));
        }
        // Aggregates: per-(ctx, level) counts and per-line write-back sums.
        let mut levels_a = [[0u64; 3]; 2];
        let mut levels_b = [[0u64; 3]; 2];
        let mut wbs_a = std::collections::BTreeMap::new();
        let mut wbs_b = std::collections::BTreeMap::new();
        for chunk in stream.chunks(513) {
            for s in [&mut cursor, &mut drain] {
                s.begin_batch();
                for &(ctx, line, kind) in chunk {
                    s.enqueue(ctx, line, kind, 3);
                }
                s.resolve(1);
            }
            for &(ctx, line, _) in chunk {
                let (lv, _, wbs) = cursor.next_outcome(line);
                levels_a[ctx][level_code(lv) as usize] += 1;
                for &(wb, tag) in wbs {
                    *wbs_a.entry((wb.raw(), tag)).or_insert(0u64) += 1;
                }
            }
            drain.drain_lines(|ctx, _, lv| levels_b[ctx][level_code(lv) as usize] += 1);
            drain.drain_writebacks(|wb, tag| {
                *wbs_b.entry((wb.raw(), tag)).or_insert(0u64) += 1;
            });
        }
        assert_eq!(levels_a, levels_b);
        assert_eq!(wbs_a, wbs_b);
        assert_eq!(cursor.llc_stats(), drain.llc_stats());
    }

    #[test]
    fn aggregate_resolve_matches_cursor_merge() {
        let mut cursor = ShardedHierarchy::new(config(), 2);
        let mut agg = ShardedHierarchy::new(config(), 2);
        let mut stream = Vec::new();
        let mut state = 11u64;
        for i in 0..4000u64 {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            let kind = if state & 1 == 1 {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            stream.push(((i % 2) as usize, LineAddr::new((state >> 20) % 256), kind));
        }
        let mut levels_a = [[0u64; 3]; 2];
        let mut levels_b = [[0u64; 3]; 2];
        let mut fills_a = std::collections::BTreeMap::new();
        let mut fills_b = std::collections::BTreeMap::new();
        let mut wbs_a = std::collections::BTreeMap::new();
        let mut wbs_b = std::collections::BTreeMap::new();
        for chunk in stream.chunks(513) {
            for s in [&mut cursor, &mut agg] {
                s.begin_batch();
                for &(ctx, line, kind) in chunk {
                    s.enqueue(ctx, line, kind, 3);
                }
            }
            cursor.resolve(1);
            agg.resolve_aggregate(1);
            for &(ctx, line, _) in chunk {
                let (lv, fill, wbs) = cursor.next_outcome(line);
                levels_a[ctx][level_code(lv) as usize] += 1;
                if let Some(f) = fill {
                    *fills_a.entry((ctx, f.raw())).or_insert(0u64) += 1;
                }
                for &(wb, tag) in wbs {
                    *wbs_a.entry((wb.raw(), tag)).or_insert(0u64) += 1;
                }
            }
            agg.drain_counts(|ctx, lv, n| levels_b[ctx][level_code(lv) as usize] += n);
            agg.drain_fills(|ctx, f| {
                *fills_b.entry((ctx, f.raw())).or_insert(0u64) += 1;
            });
            agg.drain_writebacks(|wb, tag| {
                *wbs_b.entry((wb.raw(), tag)).or_insert(0u64) += 1;
            });
        }
        assert_eq!(levels_a, levels_b);
        assert_eq!(fills_a, fills_b);
        assert_eq!(wbs_a, wbs_b);
        assert_eq!(cursor.llc_stats(), agg.llc_stats());
        assert_eq!(cursor.l2_stats(0), agg.l2_stats(0));
    }

    #[test]
    fn flush_reaches_every_dirty_line_once() {
        let mut s = ShardedHierarchy::new(config(), 2);
        let mut wb = Vec::new();
        for n in [0u64, 3, 17, 64] {
            s.access_into(0, LineAddr::new(n), AccessKind::Write, 0, &mut wb);
        }
        let mut flushed = Vec::new();
        s.flush(|line, _| flushed.push(line.raw()));
        flushed.sort_unstable();
        assert_eq!(flushed, vec![0, 3, 17, 64]);
        let mut again = Vec::new();
        s.flush(|line, _| again.push(line));
        assert!(again.is_empty());
    }
}
