//! Write-back cache hierarchy simulator.
//!
//! The paper's two central cache phenomena are:
//!
//! 1. **A large shared LLC absorbs most nursery writes** (§V: with a 20 MB
//!    L3 the benefit of KG-N drops from 81 % to 4–8 % because nursery lines
//!    are overwritten in cache and rarely reach memory), and
//! 2. **multiprogrammed LLC interference causes super-linear growth in PCM
//!    writes** (§VI.B: four instances write 6.4× more, not 4×, because their
//!    combined nursery working sets no longer fit in the LLC).
//!
//! Both are write-back effects: a store only becomes a *memory* write when
//! the dirty line is evicted. This crate therefore models exactly the part
//! of the hierarchy that decides which stores reach memory: private per-core
//! L2 caches and one shared, inclusive LLC per socket of cores. (The paper's
//! simulator validation config is likewise "256 KB private L2 + shared
//! 20 MB L3"; L1s only filter latency, not write-backs, and are omitted.)
//!
//! Caches are physically indexed and tagged — required for multiprogrammed
//! workloads, where different processes' pages must not collide in the LLC
//! unless their *physical* frames collide.
//!
//! # Examples
//!
//! ```
//! use hemu_cache::{Cache, CacheConfig};
//! use hemu_types::{AccessKind, ByteSize, LineAddr};
//!
//! let mut c = Cache::new(CacheConfig::new("L2", ByteSize::from_kib(256), 8));
//! let r = c.access(LineAddr::new(7), AccessKind::Write);
//! assert!(!r.hit);
//! let r = c.access(LineAddr::new(7), AccessKind::Read);
//! assert!(r.hit);
//! ```

#![warn(missing_docs)]

mod cache;
mod hierarchy;
mod shard;
mod stats;

pub use cache::{AccessResult, Cache, CacheConfig, Victim};
pub use hierarchy::{Hierarchy, HierarchyConfig, HierarchyOutcome, HitLevel};
pub use shard::{ShardedHierarchy, DEFAULT_SHARD_BITS};
pub use stats::CacheStats;
