//! A single set-associative, write-back, write-allocate cache.

use crate::stats::CacheStats;
use hemu_types::{AccessKind, ByteSize, LineAddr, CACHE_LINE};

/// Geometry and identity of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Human-readable name for reports ("L2", "LLC").
    pub name: &'static str,
    /// Total capacity.
    pub size: ByteSize,
    /// Associativity (ways per set).
    pub assoc: usize,
}

impl CacheConfig {
    /// Creates a config.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero ways, more than 32 ways
    /// — per-set way metadata is packed into `u32` bitmasks — or capacity
    /// not a multiple of `assoc * CACHE_LINE`, or a non-power-of-two set
    /// count — the set index is computed by masking).
    pub fn new(name: &'static str, size: ByteSize, assoc: usize) -> Self {
        assert!(assoc > 0, "cache must have at least one way");
        assert!(assoc <= 32, "way metadata is packed into 32-bit masks");
        let lines = size.bytes() as usize / CACHE_LINE;
        assert!(
            lines % assoc == 0,
            "capacity {size} not divisible into {assoc}-way sets"
        );
        let sets = lines / assoc;
        assert!(
            sets.is_power_of_two(),
            "set count {sets} must be a power of two"
        );
        CacheConfig { name, size, assoc }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.size.bytes() as usize / CACHE_LINE / self.assoc
    }

    /// Total number of lines.
    pub fn lines(&self) -> usize {
        self.size.bytes() as usize / CACHE_LINE
    }
}

/// A line pushed out of the cache by an allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Victim {
    /// The physical line that was evicted.
    pub line: LineAddr,
    /// Whether it was dirty (must be written back to the next level).
    pub dirty: bool,
    /// Provenance tag of the last write to the line (raw
    /// [`hemu_types::WriteTag`] byte); 0 unless tag tracking is enabled.
    /// Meaningful only when `dirty`.
    pub tag: u8,
}

/// Result of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Whether the line was already resident.
    pub hit: bool,
    /// On a miss that displaced a valid line, that line.
    pub victim: Option<Victim>,
}

/// Packed per-set way metadata: bit `w` of each mask describes way `w`.
///
/// One `SetMeta` replaces `assoc` scattered `bool`s: validity and
/// dirtiness tests become single bit operations, an empty way is found
/// with one `trailing_zeros`, and "any dirty line in this set?" is one
/// compare against zero — the access fast path never walks a `Vec<bool>`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct SetMeta {
    /// Ways holding a valid line.
    valid: u32,
    /// Ways holding a dirty line (always a subset of `valid`).
    dirty: u32,
}

/// A set-associative, write-back, write-allocate cache with LRU replacement.
///
/// Tag arrays only — the simulator never stores data, it tracks which
/// physical lines are resident and dirty, which is all that is needed to
/// decide which stores become memory writes.
///
/// Derived geometry (set mask, associativity, full-set mask) is computed
/// once at construction and cached in the struct, so the per-access path
/// does no divisions; per-set valid/dirty state is packed into bitmask
/// words ([`SetMeta`]).
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// Cached geometry: `sets - 1`, for mask-based set indexing.
    set_mask: u64,
    /// Cached geometry: ways per set.
    assoc: usize,
    /// Cached geometry: `(1 << assoc) - 1`, the all-ways-valid mask.
    full_mask: u32,
    /// `sets * assoc` tags; validity lives in `meta`, so a slot's tag is
    /// meaningful only when its valid bit is set.
    tags: Vec<u64>,
    /// One packed valid/dirty word pair per set.
    meta: Vec<SetMeta>,
    /// `sets * assoc` LRU stamps (the tick of the last touch).
    lru: Vec<u64>,
    /// Optional per-slot provenance tags (raw [`hemu_types::WriteTag`]
    /// bytes): the cause/space of the last write to each resident line,
    /// carried with the line until its write-back. `None` (the default)
    /// costs nothing on the access path beyond one branch.
    prov: Option<Vec<u8>>,
    tick: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        let total = config.lines();
        let sets = config.sets();
        Cache {
            config,
            set_mask: (sets - 1) as u64,
            assoc: config.assoc,
            full_mask: if config.assoc == 32 {
                u32::MAX
            } else {
                (1u32 << config.assoc) - 1
            },
            tags: vec![0; total],
            meta: vec![SetMeta::default(); sets],
            lru: vec![0; total],
            prov: None,
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Enables per-line provenance tag tracking (one byte per slot). Tags
    /// recorded by tagged writes from then on travel with dirty lines and
    /// surface in [`Victim::tag`] and the flush sink. Idempotent.
    pub fn enable_tags(&mut self) {
        if self.prov.is_none() {
            self.prov = Some(vec![0; self.tags.len()]);
        }
    }

    /// Whether provenance tags are being tracked.
    pub fn tags_enabled(&self) -> bool {
        self.prov.is_some()
    }

    #[inline]
    fn store_tag(&mut self, slot: usize, tag: u8) {
        if let Some(p) = &mut self.prov {
            p[slot] = tag;
        }
    }

    #[inline]
    fn tag_at(&self, slot: usize) -> u8 {
        self.prov.as_ref().map_or(0, |p| p[slot])
    }

    /// The cache's geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets statistics (not contents).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Set index of a line (mask, no division — the mask is cached at
    /// construction).
    #[inline]
    fn set_of(&self, line: LineAddr) -> usize {
        (line.raw() & self.set_mask) as usize
    }

    /// The way holding `line`, if resident. Probes only valid ways, via
    /// the packed mask.
    #[inline]
    fn find_way(&self, line: LineAddr) -> Option<usize> {
        let set = self.set_of(line);
        let base = set * self.assoc;
        let tag = line.raw();
        let mut rem = self.meta[set].valid;
        while rem != 0 {
            let w = rem.trailing_zeros() as usize;
            rem &= rem - 1;
            if self.tags[base + w] == tag {
                return Some(w);
            }
        }
        None
    }

    /// Accesses `line`; on a write the resident line is marked dirty.
    ///
    /// Untagged convenience for [`Cache::access_tagged`] (tag 0).
    pub fn access(&mut self, line: LineAddr, kind: AccessKind) -> AccessResult {
        self.access_tagged(line, kind, 0)
    }

    /// Accesses `line`; on a write the resident line is marked dirty and
    /// stamped with the provenance `wtag` (ignored unless
    /// [`Cache::enable_tags`] was called).
    ///
    /// On a miss the line is allocated (write-allocate for both reads and
    /// writes) and the displaced valid line, if any, is returned — with
    /// the tag of its last write — so the caller can propagate the
    /// write-back.
    pub fn access_tagged(&mut self, line: LineAddr, kind: AccessKind, wtag: u8) -> AccessResult {
        self.tick += 1;
        let set = self.set_of(line);
        let base = set * self.assoc;
        let tag = line.raw();
        let meta = self.meta[set];

        // Probe the valid ways only.
        let mut rem = meta.valid;
        while rem != 0 {
            let w = rem.trailing_zeros() as usize;
            rem &= rem - 1;
            if self.tags[base + w] == tag {
                self.stats.hits += 1;
                self.lru[base + w] = self.tick;
                if kind.is_write() {
                    self.meta[set].dirty |= 1 << w;
                    self.store_tag(base + w, wtag);
                }
                return AccessResult {
                    hit: true,
                    victim: None,
                };
            }
        }

        // Miss: pick a way (first invalid way, else LRU), evict + allocate.
        self.stats.misses += 1;
        let (way, victim) = if meta.valid != self.full_mask {
            (
                (!meta.valid & self.full_mask).trailing_zeros() as usize,
                None,
            )
        } else {
            let mut victim_way = 0;
            let mut victim_lru = u64::MAX;
            for w in 0..self.assoc {
                let stamp = self.lru[base + w];
                if stamp < victim_lru {
                    victim_lru = stamp;
                    victim_way = w;
                }
            }
            let dirty = meta.dirty >> victim_way & 1 == 1;
            self.stats.evictions += 1;
            if dirty {
                self.stats.writebacks += 1;
            }
            (
                victim_way,
                Some(Victim {
                    line: LineAddr::new(self.tags[base + victim_way]),
                    dirty,
                    tag: self.tag_at(base + victim_way),
                }),
            )
        };
        let m = &mut self.meta[set];
        m.valid |= 1 << way;
        if kind.is_write() {
            m.dirty |= 1 << way;
        } else {
            m.dirty &= !(1 << way);
        }
        if kind.is_write() {
            self.store_tag(base + way, wtag);
        }
        self.tags[base + way] = tag;
        self.lru[base + way] = self.tick;
        AccessResult { hit: false, victim }
    }

    /// Returns `true` if `line` is resident.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.find_way(line).is_some()
    }

    /// Returns the dirty bit of `line` if resident.
    pub fn is_dirty(&self, line: LineAddr) -> Option<bool> {
        let set = self.set_of(line);
        self.find_way(line)
            .map(|w| self.meta[set].dirty >> w & 1 == 1)
    }

    /// Marks a resident line dirty without touching LRU state (used when a
    /// lower-level write-back lands in this cache).
    ///
    /// Untagged convenience for [`Cache::mark_dirty_tagged`] (tag 0).
    ///
    /// Returns `false` if the line was not resident.
    pub fn mark_dirty(&mut self, line: LineAddr) -> bool {
        self.mark_dirty_tagged(line, 0)
    }

    /// Marks a resident line dirty and stamps it with the provenance
    /// `wtag`, without touching LRU state.
    ///
    /// Returns `false` if the line was not resident.
    pub fn mark_dirty_tagged(&mut self, line: LineAddr, wtag: u8) -> bool {
        let set = self.set_of(line);
        match self.find_way(line) {
            Some(w) => {
                self.meta[set].dirty |= 1 << w;
                self.store_tag(set * self.assoc + w, wtag);
                true
            }
            None => false,
        }
    }

    /// Removes `line` if resident (inclusive-hierarchy back-invalidation),
    /// returning whether it was resident and whether it was dirty.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<bool> {
        self.invalidate_tagged(line).map(|(dirty, _)| dirty)
    }

    /// Removes `line` if resident, returning its dirtiness and the
    /// provenance tag of its last write.
    pub fn invalidate_tagged(&mut self, line: LineAddr) -> Option<(bool, u8)> {
        let set = self.set_of(line);
        let w = self.find_way(line)?;
        let wtag = self.tag_at(set * self.assoc + w);
        let m = &mut self.meta[set];
        let was_dirty = m.dirty >> w & 1 == 1;
        m.valid &= !(1 << w);
        m.dirty &= !(1 << w);
        Some((was_dirty, wtag))
    }

    /// Number of valid lines currently resident (O(sets); for tests).
    pub fn resident_lines(&self) -> usize {
        self.meta
            .iter()
            .map(|m| m.valid.count_ones() as usize)
            .sum()
    }

    /// Iterates over the resident lines and their dirty bits (O(capacity);
    /// for invariant checking and debugging).
    pub fn iter_resident(&self) -> impl Iterator<Item = (LineAddr, bool)> + '_ {
        (0..self.tags.len()).filter_map(move |i| {
            let (set, w) = (i / self.assoc, i % self.assoc);
            let m = self.meta[set];
            if m.valid >> w & 1 == 1 {
                Some((LineAddr::new(self.tags[i]), m.dirty >> w & 1 == 1))
            } else {
                None
            }
        })
    }

    /// Writes back and drops every dirty line, invoking `sink` for each
    /// (used at iteration barriers to flush residual dirty data).
    ///
    /// Untagged convenience for [`Cache::flush_dirty_tagged`].
    pub fn flush_dirty<F: FnMut(LineAddr)>(&mut self, mut sink: F) {
        self.flush_dirty_tagged(|line, _| sink(line));
    }

    /// Writes back and drops every dirty line, invoking `sink` with each
    /// line and the provenance tag of its last write.
    ///
    /// Sets with no dirty line are skipped with one mask test each.
    pub fn flush_dirty_tagged<F: FnMut(LineAddr, u8)>(&mut self, mut sink: F) {
        for set in 0..self.meta.len() {
            let mut rem = self.meta[set].dirty;
            if rem == 0 {
                continue;
            }
            let base = set * self.assoc;
            while rem != 0 {
                let w = rem.trailing_zeros() as usize;
                rem &= rem - 1;
                let wtag = self.tag_at(base + w);
                sink(LineAddr::new(self.tags[base + w]), wtag);
            }
            self.meta[set].dirty = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways = 4 lines of 64 B = 256 B.
        Cache::new(CacheConfig::new("T", ByteSize::new(256), 2))
    }

    /// Lines mapping to set 0 of the tiny cache (even line numbers).
    fn l(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(l(0), AccessKind::Read).hit);
        assert!(c.access(l(0), AccessKind::Read).hit);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn write_sets_dirty_read_does_not() {
        let mut c = tiny();
        c.access(l(0), AccessKind::Read);
        assert_eq!(c.is_dirty(l(0)), Some(false));
        c.access(l(0), AccessKind::Write);
        assert_eq!(c.is_dirty(l(0)), Some(true));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = tiny();
        // Set 0 holds even lines; fill its two ways.
        c.access(l(0), AccessKind::Read);
        c.access(l(2), AccessKind::Read);
        c.access(l(0), AccessKind::Read); // 2 is now LRU
        let r = c.access(l(4), AccessKind::Read);
        assert_eq!(
            r.victim,
            Some(Victim {
                line: l(2),
                dirty: false,
                tag: 0
            })
        );
        assert!(c.contains(l(0)));
        assert!(!c.contains(l(2)));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny();
        c.access(l(0), AccessKind::Write);
        c.access(l(2), AccessKind::Read);
        let r = c.access(l(4), AccessKind::Read); // evicts line 0 (LRU, dirty)
        assert_eq!(
            r.victim,
            Some(Victim {
                line: l(0),
                dirty: true,
                tag: 0
            })
        );
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn tags_travel_with_dirty_lines() {
        let mut c = tiny();
        c.enable_tags();
        c.access_tagged(l(0), AccessKind::Write, 7);
        c.access(l(2), AccessKind::Read);
        // Eviction surfaces the dirty victim's tag.
        let r = c.access(l(4), AccessKind::Read);
        assert_eq!(
            r.victim,
            Some(Victim {
                line: l(0),
                dirty: true,
                tag: 7
            })
        );
        // A later write overwrites the tag; flush reports the latest one.
        c.access_tagged(l(2), AccessKind::Write, 3);
        c.access_tagged(l(2), AccessKind::Write, 5);
        let mut flushed = Vec::new();
        c.flush_dirty_tagged(|line, tag| flushed.push((line, tag)));
        assert_eq!(flushed, vec![(l(2), 5)]);
        // mark_dirty_tagged and invalidate_tagged round-trip the tag.
        c.access(l(1), AccessKind::Read);
        assert!(c.mark_dirty_tagged(l(1), 9));
        assert_eq!(c.invalidate_tagged(l(1)), Some((true, 9)));
    }

    #[test]
    fn tags_are_zero_when_disabled() {
        let mut c = tiny();
        c.access_tagged(l(0), AccessKind::Write, 7);
        c.access(l(2), AccessKind::Read);
        let r = c.access(l(4), AccessKind::Read);
        assert_eq!(r.victim.map(|v| v.tag), Some(0), "no storage when off");
        assert!(!c.tags_enabled());
    }

    #[test]
    fn repeated_writes_to_cached_line_never_evict() {
        // The LLC-absorption effect in miniature: overwriting a resident
        // line generates no memory traffic at all.
        let mut c = tiny();
        c.access(l(0), AccessKind::Write);
        for _ in 0..100 {
            let r = c.access(l(0), AccessKind::Write);
            assert!(r.hit);
            assert!(r.victim.is_none());
        }
        assert_eq!(c.stats().writebacks, 0);
    }

    #[test]
    fn different_sets_do_not_conflict() {
        let mut c = tiny();
        c.access(l(0), AccessKind::Read); // set 0
        c.access(l(1), AccessKind::Read); // set 1
        c.access(l(3), AccessKind::Read); // set 1
        c.access(l(5), AccessKind::Read); // set 1: evicts 1 or 3, not 0
        assert!(c.contains(l(0)));
    }

    #[test]
    fn invalidate_returns_dirtiness() {
        let mut c = tiny();
        c.access(l(0), AccessKind::Write);
        assert_eq!(c.invalidate(l(0)), Some(true));
        assert_eq!(c.invalidate(l(0)), None);
        assert!(!c.contains(l(0)));
    }

    #[test]
    fn mark_dirty_requires_residency() {
        let mut c = tiny();
        assert!(!c.mark_dirty(l(0)));
        c.access(l(0), AccessKind::Read);
        assert!(c.mark_dirty(l(0)));
        assert_eq!(c.is_dirty(l(0)), Some(true));
    }

    #[test]
    fn flush_dirty_visits_each_dirty_line_once() {
        let mut c = tiny();
        c.access(l(0), AccessKind::Write);
        c.access(l(1), AccessKind::Read);
        c.access(l(2), AccessKind::Write);
        let mut flushed = Vec::new();
        c.flush_dirty(|line| flushed.push(line));
        flushed.sort_by_key(|x| x.raw());
        assert_eq!(flushed, vec![l(0), l(2)]);
        // Second flush finds nothing.
        let mut again = Vec::new();
        c.flush_dirty(|line| again.push(line));
        assert!(again.is_empty());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_rejected() {
        let _ = CacheConfig::new("bad", ByteSize::new(192), 1);
    }

    #[test]
    fn geometry_of_paper_llc() {
        let cfg = CacheConfig::new("LLC", ByteSize::from_mib(20), 20);
        assert_eq!(cfg.sets(), 16384);
        assert_eq!(cfg.lines(), 327_680);
    }
}
