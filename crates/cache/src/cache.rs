//! A single set-associative, write-back, write-allocate cache.
//!
//! # Set-block layout
//!
//! All per-set state lives in one contiguous, 64-byte-aligned **set
//! block**, sized so the paper's L2 geometry (8-way) is exactly one host
//! cache line and the LLC geometry (20-way) exactly two:
//!
//! ```text
//! word 0        valid mask (low 32) | dirty mask (high 32)
//! words 1-2     packed recency ranks: 6 bits per way (u128)
//! words 3..P    presence bytes, one per way (inclusion directory)
//! words P..     tags, two u32 per word
//! ```
//!
//! A probe therefore touches one or two host cache lines (and one TLB
//! entry) instead of walking three parallel arrays, and the LRU victim is
//! found by scanning a register, not memory. The ranks are an exact LRU
//! encoding: rank 0 is the most recently touched way, rank `assoc - 1`
//! the least; a touch increments every rank younger than the touched
//! way's in one SWAR step, so the ranks always form a permutation and
//! replacement decisions are bit-identical to stamp-based LRU.
//!
//! Tags store `line >> log2(sets)` (the set index is implied), packed as
//! `u32` — enough for any physical memory this simulator can represent;
//! the store path asserts it.

use crate::stats::CacheStats;
use hemu_types::{AccessKind, ByteSize, LineAddr, CACHE_LINE};

/// Geometry and identity of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Human-readable name for reports ("L2", "LLC").
    pub name: &'static str,
    /// Total capacity.
    pub size: ByteSize,
    /// Associativity (ways per set).
    pub assoc: usize,
}

impl CacheConfig {
    /// Creates a config.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero ways, more than 21 ways
    /// — per-set recency ranks are packed six bits per way into a `u128`
    /// — or capacity not a multiple of `assoc * CACHE_LINE`, or a
    /// non-power-of-two set count — the set index is computed by masking).
    pub fn new(name: &'static str, size: ByteSize, assoc: usize) -> Self {
        assert!(assoc > 0, "cache must have at least one way");
        assert!(
            assoc <= 21,
            "recency ranks are packed 6 bits per way into a u128"
        );
        let lines = size.bytes() as usize / CACHE_LINE;
        assert!(
            lines % assoc == 0,
            "capacity {size} not divisible into {assoc}-way sets"
        );
        let sets = lines / assoc;
        assert!(
            sets.is_power_of_two(),
            "set count {sets} must be a power of two"
        );
        CacheConfig { name, size, assoc }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.size.bytes() as usize / CACHE_LINE / self.assoc
    }

    /// Total number of lines.
    pub fn lines(&self) -> usize {
        self.size.bytes() as usize / CACHE_LINE
    }
}

/// A line pushed out of the cache by an allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Victim {
    /// The physical line that was evicted.
    pub line: LineAddr,
    /// Whether it was dirty (must be written back to the next level).
    pub dirty: bool,
    /// Provenance tag of the last write to the line (raw
    /// [`hemu_types::WriteTag`] byte); 0 unless tag tracking is enabled.
    /// Meaningful only when `dirty`.
    pub tag: u8,
}

/// Result of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Whether the line was already resident.
    pub hit: bool,
    /// The way the accessed line occupies after the access (its slot index
    /// is `set * assoc + way`); lets callers maintain per-slot side tables
    /// without re-probing.
    pub way: u8,
    /// On a miss that displaced a valid line, that line.
    pub victim: Option<Victim>,
}

/// One 64-byte-aligned slab of eight set-block words; blocks are a whole
/// number of slabs so every set starts on a host cache line.
#[repr(C, align(64))]
#[derive(Debug, Clone, Copy)]
struct SetSlab([u64; 8]);

/// Word offset of the valid/dirty masks inside a set block.
const VD: usize = 0;
/// Word offset of the low half of the packed recency ranks.
const ORDER_LO: usize = 1;
/// Word offset of the high half of the packed recency ranks.
const ORDER_HI: usize = 2;
/// Word offset of the first presence byte (inclusion directory).
const PRES: usize = 3;
/// Bits per packed recency-rank field.
const RANK_BITS: u32 = 6;
/// Mask of one recency-rank field.
const RANK_MASK: u128 = 0x3F;

/// A set-associative, write-back, write-allocate cache with LRU replacement.
///
/// Tag arrays only — the simulator never stores data, it tracks which
/// physical lines are resident and dirty, which is all that is needed to
/// decide which stores become memory writes. See the module docs for the
/// packed set-block layout the fast path runs against.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// Cached geometry: `sets - 1`, for mask-based set indexing.
    set_mask: u64,
    /// Cached geometry: ways per set.
    assoc: usize,
    /// Cached geometry: `(1 << assoc) - 1`, the all-ways-valid mask.
    full_mask: u32,
    /// Cached geometry: `log2(sets)`, for tag extraction.
    set_bits: u32,
    /// Words per set block (a multiple of 8, so blocks are slab-aligned).
    stride: usize,
    /// Word offset of the packed tags inside a block.
    tags_off: usize,
    /// SWAR broadcast constant: a 1 in every way's rank field.
    rank_ones: u128,
    /// SWAR borrow guard: the high bit of every way's rank field.
    rank_high: u128,
    /// `(assoc - 1) * rank_ones`: the LRU rank broadcast to every field.
    rank_target: u128,
    /// `r * rank_ones` for every rank `r`, so the touch path broadcasts a
    /// rank with one load instead of a 128-bit multiply.
    rank_bcast: [u128; 22],
    /// `sets * stride / 8` slabs of packed per-set state.
    arena: Vec<SetSlab>,
    /// Optional per-slot provenance tags (raw [`hemu_types::WriteTag`]
    /// bytes): the cause/space of the last write to each resident line,
    /// carried with the line until its write-back. `None` (the default)
    /// costs nothing on the access path beyond one branch.
    prov: Option<Vec<u8>>,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        let assoc = config.assoc;
        let tags_off = PRES + assoc.div_ceil(8);
        let stride = (tags_off + assoc.div_ceil(2)).next_multiple_of(8);
        let mut rank_ones = 0u128;
        for w in 0..assoc {
            rank_ones |= 1 << (RANK_BITS * w as u32);
        }
        let mut rank_bcast = [0u128; 22];
        for (r, b) in rank_bcast.iter_mut().enumerate() {
            *b = r as u128 * rank_ones;
        }
        let mut cache = Cache {
            config,
            set_mask: (sets - 1) as u64,
            assoc,
            full_mask: (1u32 << assoc) - 1,
            set_bits: sets.trailing_zeros(),
            stride,
            tags_off,
            rank_ones,
            rank_high: rank_ones << (RANK_BITS - 1),
            rank_target: (assoc - 1) as u128 * rank_ones,
            rank_bcast,
            arena: vec![SetSlab([0; 8]); sets * stride / 8],
            prov: None,
            stats: CacheStats::default(),
        };
        // Ranks must always form a permutation of 0..assoc; start each set
        // with way w at rank w (the first fills touch ways in index order,
        // which keeps the permutation consistent from the first access).
        let mut init = 0u128;
        for w in 0..assoc {
            init |= (w as u128) << (RANK_BITS * w as u32);
        }
        for set in 0..sets {
            cache.set_order(set * stride, init);
        }
        cache
    }

    /// The set-block words, viewed flat.
    #[inline]
    fn words(&self) -> &[u64] {
        // Safety: `SetSlab` is a `repr(C)` eight-u64 array with stronger
        // alignment, so the slab vector is exactly `len * 8` contiguous
        // initialized words.
        unsafe {
            std::slice::from_raw_parts(self.arena.as_ptr().cast::<u64>(), self.arena.len() * 8)
        }
    }

    /// The set-block words, viewed flat, mutably.
    #[inline]
    fn words_mut(&mut self) -> &mut [u64] {
        // Safety: as in `words`; the borrow of `self` is exclusive.
        unsafe {
            std::slice::from_raw_parts_mut(
                self.arena.as_mut_ptr().cast::<u64>(),
                self.arena.len() * 8,
            )
        }
    }

    /// Enables per-line provenance tag tracking (one byte per slot). Tags
    /// recorded by tagged writes from then on travel with dirty lines and
    /// surface in [`Victim::tag`] and the flush sink. Idempotent.
    pub fn enable_tags(&mut self) {
        if self.prov.is_none() {
            self.prov = Some(vec![0; self.config.lines()]);
        }
    }

    /// Whether provenance tags are being tracked.
    pub fn tags_enabled(&self) -> bool {
        self.prov.is_some()
    }

    #[inline]
    fn store_tag(&mut self, slot: usize, tag: u8) {
        if let Some(p) = &mut self.prov {
            p[slot] = tag;
        }
    }

    #[inline]
    fn prov_at(&self, slot: usize) -> u8 {
        self.prov.as_ref().map_or(0, |p| p[slot])
    }

    /// The cache's geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets statistics (not contents).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Set index of a line (mask, no division — the mask is cached at
    /// construction).
    #[inline]
    fn set_of(&self, line: LineAddr) -> usize {
        (line.raw() & self.set_mask) as usize
    }

    /// First word of `set`'s block.
    #[inline]
    fn base(&self, set: usize) -> usize {
        set * self.stride
    }

    /// One block word. Callers pass `base + offset` indices that are in
    /// bounds by construction (`base = set * stride` with `set < sets`,
    /// `offset < stride`), so the check is elided.
    #[inline]
    fn word(&self, i: usize) -> u64 {
        debug_assert!(i < self.arena.len() * 8);
        // Safety: see above; every caller's index is `set * stride + off`
        // with `set` masked to the set count and `off < stride`.
        unsafe { *self.words().get_unchecked(i) }
    }

    /// Mutable access to one block word (same bounds argument as `word`).
    #[inline]
    fn word_mut(&mut self, i: usize) -> &mut u64 {
        debug_assert!(i < self.arena.len() * 8);
        // Safety: as in `word`.
        unsafe { self.words_mut().get_unchecked_mut(i) }
    }

    /// The packed recency ranks of the block at `base`.
    #[inline]
    fn order_at(&self, base: usize) -> u128 {
        u128::from(self.word(base + ORDER_LO)) | u128::from(self.word(base + ORDER_HI)) << 64
    }

    #[inline]
    fn set_order(&mut self, base: usize, order: u128) {
        *self.word_mut(base + ORDER_LO) = order as u64;
        *self.word_mut(base + ORDER_HI) = (order >> 64) as u64;
    }

    /// The stored tag of way `w` in the block at `base`.
    #[inline]
    fn tag_at(&self, base: usize, w: usize) -> u32 {
        (self.word(base + self.tags_off + w / 2) >> ((w & 1) * 32)) as u32
    }

    #[inline]
    fn set_tag(&mut self, base: usize, w: usize, tag: u32) {
        let off = self.tags_off;
        let word = self.word_mut(base + off + w / 2);
        let shift = (w & 1) * 32;
        *word = (*word & !(0xFFFF_FFFFu64 << shift)) | u64::from(tag) << shift;
    }

    /// Reconstructs the full line number of way `w` in `set`.
    #[inline]
    fn line_of(&self, base: usize, set: usize, w: usize) -> LineAddr {
        LineAddr::new(u64::from(self.tag_at(base, w)) << self.set_bits | set as u64)
    }

    /// Marks way `w` most recently used: one SWAR step increments every
    /// rank younger than `w`'s and zeroes `w`'s, preserving the
    /// permutation — bit-identical ordering to stamp-based LRU.
    #[inline]
    fn touch(&mut self, base: usize, w: usize) {
        let o = self.order_at(base);
        let r = (o >> (RANK_BITS * w as u32) & RANK_MASK) as usize;
        // Per-field `f < r` via the borrow trick: fields are 6 bits but
        // values stay below 32, so the top bit of each field is spare. The
        // rank broadcast comes from a tiny table instead of a 128-bit
        // multiply.
        let diff = (o | self.rank_high).wrapping_sub(self.rank_bcast[r]);
        let inc = (!diff & self.rank_high) >> (RANK_BITS - 1);
        self.set_order(base, (o + inc) & !(RANK_MASK << (RANK_BITS * w as u32)));
    }

    /// `touch` specialized for filling the just-evicted LRU way: its rank
    /// is `assoc - 1`, so every other field is younger and the whole step
    /// collapses to one add (no field can carry: ranks stay below 21 and
    /// the victim's incremented field is masked to zero).
    #[inline]
    fn touch_evicted(&mut self, base: usize, w: usize) {
        let o = self.order_at(base);
        self.set_order(
            base,
            (o + self.rank_ones) & !(RANK_MASK << (RANK_BITS * w as u32)),
        );
    }

    /// The way with rank `assoc - 1` (least recently used), found
    /// branchlessly: XOR against the broadcast target zeroes exactly the
    /// matching field, SWAR zero-detection flags it, `trailing_zeros`
    /// names it. Only meaningful when the set is full, which is the only
    /// time it is consulted.
    #[inline]
    fn oldest_way(&self, base: usize) -> usize {
        let x = self.order_at(base) ^ self.rank_target;
        // Fields are < 32 (assoc <= 21), so XOR never sets a field's top
        // bit and the borrow trick detects the zero field exactly.
        let zero = !(x | self.rank_high).wrapping_sub(self.rank_ones) & self.rank_high;
        debug_assert!(zero != 0, "ranks must form a permutation of 0..assoc");
        zero.trailing_zeros() as usize / RANK_BITS as usize
    }

    /// Branchless probe of the block at `base`: compares every way's
    /// packed tag and returns the match bits (stale tags in invalid ways
    /// must be masked out by the caller).
    ///
    /// On x86_64 the packed-`u32` tag array is compared four ways per
    /// SSE2 vector op; a trailing odd tag word is compared scalar so the
    /// vector loads never cross the end of the block.
    #[inline]
    fn probe_mask(&self, base: usize, tag: u32) -> u32 {
        let words = self.assoc.div_ceil(2);
        let mut m = 0u32;
        #[cfg(target_arch = "x86_64")]
        {
            use core::arch::x86_64::{
                _mm_castsi128_ps, _mm_cmpeq_epi32, _mm_loadu_si128, _mm_movemask_ps, _mm_set1_epi32,
            };
            // Safety: SSE2 is part of the x86_64 baseline; the loads read
            // `words / 2 * 16` bytes starting at `base + tags_off`, all
            // inside this set's block (the tag area is `words * 8` bytes).
            unsafe {
                let p = self.words().as_ptr().add(base + self.tags_off);
                let needle = _mm_set1_epi32(tag as i32);
                for v in 0..words / 2 {
                    let eq = _mm_cmpeq_epi32(_mm_loadu_si128(p.add(v * 2).cast()), needle);
                    m |= (_mm_movemask_ps(_mm_castsi128_ps(eq)) as u32) << (4 * v);
                }
                if words & 1 == 1 {
                    let pair = *p.add(words - 1);
                    m |= u32::from(pair as u32 == tag) << (2 * (words - 1));
                    m |= u32::from((pair >> 32) as u32 == tag) << (2 * words - 1);
                }
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let pairs = &self.words()[base + self.tags_off..][..words];
            for (i, &pair) in pairs.iter().enumerate() {
                m |= u32::from(pair as u32 == tag) << (2 * i);
                m |= u32::from((pair >> 32) as u32 == tag) << (2 * i + 1);
            }
        }
        m
    }

    /// Splits a line into its (set, block base, packed tag) triple.
    ///
    /// # Panics
    ///
    /// Panics if the tag overflows the packed 32-bit storage — only
    /// possible for physical memories beyond anything this simulator
    /// models (e.g. 2^46 lines through the paper's LLC geometry).
    #[inline]
    fn locate(&self, line: LineAddr) -> (usize, usize, u32) {
        let set = self.set_of(line);
        let tag = line.raw() >> self.set_bits;
        assert!(
            tag <= u64::from(u32::MAX),
            "line {:#x}: tag overflows packed u32 tag storage",
            line.raw()
        );
        (set, self.base(set), tag as u32)
    }

    /// The way holding `line`, if resident.
    #[inline]
    fn find_way(&self, line: LineAddr) -> Option<usize> {
        let (_, base, tag) = self.locate(line);
        let valid = self.word(base + VD) as u32;
        let m = self.probe_mask(base, tag) & valid;
        (m != 0).then(|| m.trailing_zeros() as usize)
    }

    /// Prefetches the set block `line` maps to into the host's cache
    /// (no-op off x86_64). Purely a performance hint: the batch resolver
    /// calls this a few queue entries ahead so the probe's dependent loads
    /// don't stall on host memory; it never changes simulated state.
    #[inline]
    pub fn prefetch_set(&self, line: LineAddr) {
        #[cfg(target_arch = "x86_64")]
        {
            use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            let slab = self.set_of(line) * self.stride / 8;
            // Safety: `slab` is in bounds by construction and prefetch has
            // no memory effects; each slab is one 64-byte host line.
            unsafe {
                for i in 0..self.stride / 8 {
                    _mm_prefetch(
                        (self.arena.as_ptr().add(slab + i)).cast::<i8>(),
                        _MM_HINT_T0,
                    );
                }
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = line;
    }

    /// Accesses `line`; on a write the resident line is marked dirty.
    ///
    /// Untagged convenience for [`Cache::access_tagged`] (tag 0).
    pub fn access(&mut self, line: LineAddr, kind: AccessKind) -> AccessResult {
        self.access_tagged(line, kind, 0)
    }

    /// Accesses `line`; on a write the resident line is marked dirty and
    /// stamped with the provenance `wtag` (ignored unless
    /// [`Cache::enable_tags`] was called).
    ///
    /// On a miss the line is allocated (write-allocate for both reads and
    /// writes) and the displaced valid line, if any, is returned — with
    /// the tag of its last write — so the caller can propagate the
    /// write-back.
    pub fn access_tagged(&mut self, line: LineAddr, kind: AccessKind, wtag: u8) -> AccessResult {
        let (set, base, tag) = self.locate(line);
        let vd = self.word(base + VD);
        let (valid, dirty) = (vd as u32, (vd >> 32) as u32);

        let hit_mask = self.probe_mask(base, tag) & valid;
        if hit_mask != 0 {
            let w = hit_mask.trailing_zeros() as usize;
            self.stats.hits += 1;
            self.touch(base, w);
            if kind.is_write() {
                *self.word_mut(base + VD) = vd | 1u64 << (32 + w);
                self.store_tag(set * self.assoc + w, wtag);
            }
            return AccessResult {
                hit: true,
                way: w as u8,
                victim: None,
            };
        }

        // Miss: pick a way (first invalid way, else LRU), evict + allocate.
        self.stats.misses += 1;
        let (way, victim) = if valid != self.full_mask {
            let w = (!valid & self.full_mask).trailing_zeros() as usize;
            self.touch(base, w);
            (w, None)
        } else {
            let w = self.oldest_way(base);
            let was_dirty = dirty >> w & 1 == 1;
            self.stats.evictions += 1;
            if was_dirty {
                self.stats.writebacks += 1;
            }
            // The evicted way's rank is by definition the maximum, so the
            // recency update collapses to the cheap fused form.
            self.touch_evicted(base, w);
            (
                w,
                Some(Victim {
                    line: self.line_of(base, set, w),
                    dirty: was_dirty,
                    tag: self.prov_at(set * self.assoc + w),
                }),
            )
        };
        let new_valid = valid | 1 << way;
        let new_dirty = if kind.is_write() {
            dirty | 1 << way
        } else {
            dirty & !(1 << way)
        };
        *self.word_mut(base + VD) = u64::from(new_valid) | u64::from(new_dirty) << 32;
        if kind.is_write() {
            self.store_tag(set * self.assoc + way, wtag);
        }
        self.set_tag(base, way, tag);
        AccessResult {
            hit: false,
            way: way as u8,
            victim,
        }
    }

    /// The presence byte of way `way` in the set `line` maps to — the
    /// per-slot inclusion directory the hierarchy maintains (which private
    /// caches may hold this slot's line).
    #[cfg(test)]
    fn pres_at(&self, line: LineAddr, way: usize) -> u8 {
        let base = self.base(self.set_of(line));
        (self.word(base + PRES + way / 8) >> ((way & 7) * 8)) as u8
    }

    /// ORs `bits` into the presence byte of (`line`'s set, `way`).
    #[inline]
    pub(crate) fn pres_or(&mut self, line: LineAddr, way: usize, bits: u8) {
        let base = self.base(self.set_of(line));
        *self.word_mut(base + PRES + way / 8) |= u64::from(bits) << ((way & 7) * 8);
    }

    /// Replaces the presence byte of (`line`'s set, `way`) with `bits`,
    /// returning the previous value (the displaced line's presence).
    #[inline]
    pub(crate) fn pres_replace(&mut self, line: LineAddr, way: usize, bits: u8) -> u8 {
        let base = self.base(self.set_of(line));
        let word = self.word_mut(base + PRES + way / 8);
        let shift = (way & 7) * 8;
        let old = (*word >> shift) as u8;
        *word = (*word & !(0xFFu64 << shift)) | u64::from(bits) << shift;
        old
    }

    /// Returns `true` if `line` is resident.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.find_way(line).is_some()
    }

    /// Returns the dirty bit of `line` if resident.
    pub fn is_dirty(&self, line: LineAddr) -> Option<bool> {
        let base = self.base(self.set_of(line));
        self.find_way(line)
            .map(|w| (self.word(base + VD) >> 32) as u32 >> w & 1 == 1)
    }

    /// Marks a resident line dirty without touching LRU state (used when a
    /// lower-level write-back lands in this cache).
    ///
    /// Untagged convenience for [`Cache::mark_dirty_tagged`] (tag 0).
    ///
    /// Returns `false` if the line was not resident.
    pub fn mark_dirty(&mut self, line: LineAddr) -> bool {
        self.mark_dirty_tagged(line, 0)
    }

    /// Marks a resident line dirty and stamps it with the provenance
    /// `wtag`, without touching LRU state.
    ///
    /// Returns `false` if the line was not resident.
    pub fn mark_dirty_tagged(&mut self, line: LineAddr, wtag: u8) -> bool {
        let set = self.set_of(line);
        match self.find_way(line) {
            Some(w) => {
                let base = self.base(set);
                *self.word_mut(base + VD) |= 1u64 << (32 + w);
                self.store_tag(set * self.assoc + w, wtag);
                true
            }
            None => false,
        }
    }

    /// Removes `line` if resident (inclusive-hierarchy back-invalidation),
    /// returning whether it was resident and whether it was dirty.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<bool> {
        self.invalidate_tagged(line).map(|(dirty, _)| dirty)
    }

    /// Removes `line` if resident, returning its dirtiness and the
    /// provenance tag of its last write.
    pub fn invalidate_tagged(&mut self, line: LineAddr) -> Option<(bool, u8)> {
        let set = self.set_of(line);
        let w = self.find_way(line)?;
        let wtag = self.prov_at(set * self.assoc + w);
        let base = self.base(set);
        let vd = self.word(base + VD);
        let was_dirty = (vd >> 32) as u32 >> w & 1 == 1;
        *self.word_mut(base + VD) = vd & !(1u64 << w) & !(1u64 << (32 + w));
        Some((was_dirty, wtag))
    }

    /// Number of valid lines currently resident (O(sets); for tests).
    pub fn resident_lines(&self) -> usize {
        (0..self.config.sets())
            .map(|s| (self.words()[self.base(s) + VD] as u32).count_ones() as usize)
            .sum()
    }

    /// Iterates over the resident lines and their dirty bits (O(capacity);
    /// for invariant checking and debugging).
    pub fn iter_resident(&self) -> impl Iterator<Item = (LineAddr, bool)> + '_ {
        (0..self.config.sets()).flat_map(move |set| {
            let base = self.base(set);
            let vd = self.words()[base + VD];
            (0..self.assoc).filter_map(move |w| {
                if vd as u32 >> w & 1 == 1 {
                    Some((self.line_of(base, set, w), (vd >> 32) as u32 >> w & 1 == 1))
                } else {
                    None
                }
            })
        })
    }

    /// Writes back and drops every dirty line, invoking `sink` for each
    /// (used at iteration barriers to flush residual dirty data).
    ///
    /// Untagged convenience for [`Cache::flush_dirty_tagged`].
    pub fn flush_dirty<F: FnMut(LineAddr)>(&mut self, mut sink: F) {
        self.flush_dirty_tagged(|line, _| sink(line));
    }

    /// Writes back and drops every dirty line, invoking `sink` with each
    /// line and the provenance tag of its last write.
    ///
    /// Sets with no dirty line are skipped with one mask test each.
    pub fn flush_dirty_tagged<F: FnMut(LineAddr, u8)>(&mut self, mut sink: F) {
        for set in 0..self.config.sets() {
            let base = self.base(set);
            let vd = self.words()[base + VD];
            let mut rem = (vd >> 32) as u32;
            if rem == 0 {
                continue;
            }
            while rem != 0 {
                let w = rem.trailing_zeros() as usize;
                rem &= rem - 1;
                let wtag = self.prov_at(set * self.assoc + w);
                sink(self.line_of(base, set, w), wtag);
            }
            self.words_mut()[base + VD] = vd & 0xFFFF_FFFF;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways = 4 lines of 64 B = 256 B.
        Cache::new(CacheConfig::new("T", ByteSize::new(256), 2))
    }

    /// Lines mapping to set 0 of the tiny cache (even line numbers).
    fn l(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(l(0), AccessKind::Read).hit);
        assert!(c.access(l(0), AccessKind::Read).hit);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn write_sets_dirty_read_does_not() {
        let mut c = tiny();
        c.access(l(0), AccessKind::Read);
        assert_eq!(c.is_dirty(l(0)), Some(false));
        c.access(l(0), AccessKind::Write);
        assert_eq!(c.is_dirty(l(0)), Some(true));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = tiny();
        // Set 0 holds even lines; fill its two ways.
        c.access(l(0), AccessKind::Read);
        c.access(l(2), AccessKind::Read);
        c.access(l(0), AccessKind::Read); // 2 is now LRU
        let r = c.access(l(4), AccessKind::Read);
        assert_eq!(
            r.victim,
            Some(Victim {
                line: l(2),
                dirty: false,
                tag: 0
            })
        );
        assert!(c.contains(l(0)));
        assert!(!c.contains(l(2)));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny();
        c.access(l(0), AccessKind::Write);
        c.access(l(2), AccessKind::Read);
        let r = c.access(l(4), AccessKind::Read); // evicts line 0 (LRU, dirty)
        assert_eq!(
            r.victim,
            Some(Victim {
                line: l(0),
                dirty: true,
                tag: 0
            })
        );
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn tags_travel_with_dirty_lines() {
        let mut c = tiny();
        c.enable_tags();
        c.access_tagged(l(0), AccessKind::Write, 7);
        c.access(l(2), AccessKind::Read);
        // Eviction surfaces the dirty victim's tag.
        let r = c.access(l(4), AccessKind::Read);
        assert_eq!(
            r.victim,
            Some(Victim {
                line: l(0),
                dirty: true,
                tag: 7
            })
        );
        // A later write overwrites the tag; flush reports the latest one.
        c.access_tagged(l(2), AccessKind::Write, 3);
        c.access_tagged(l(2), AccessKind::Write, 5);
        let mut flushed = Vec::new();
        c.flush_dirty_tagged(|line, tag| flushed.push((line, tag)));
        assert_eq!(flushed, vec![(l(2), 5)]);
        // mark_dirty_tagged and invalidate_tagged round-trip the tag.
        c.access(l(1), AccessKind::Read);
        assert!(c.mark_dirty_tagged(l(1), 9));
        assert_eq!(c.invalidate_tagged(l(1)), Some((true, 9)));
    }

    #[test]
    fn tags_are_zero_when_disabled() {
        let mut c = tiny();
        c.access_tagged(l(0), AccessKind::Write, 7);
        c.access(l(2), AccessKind::Read);
        let r = c.access(l(4), AccessKind::Read);
        assert_eq!(r.victim.map(|v| v.tag), Some(0), "no storage when off");
        assert!(!c.tags_enabled());
    }

    #[test]
    fn repeated_writes_to_cached_line_never_evict() {
        // The LLC-absorption effect in miniature: overwriting a resident
        // line generates no memory traffic at all.
        let mut c = tiny();
        c.access(l(0), AccessKind::Write);
        for _ in 0..100 {
            let r = c.access(l(0), AccessKind::Write);
            assert!(r.hit);
            assert!(r.victim.is_none());
        }
        assert_eq!(c.stats().writebacks, 0);
    }

    #[test]
    fn different_sets_do_not_conflict() {
        let mut c = tiny();
        c.access(l(0), AccessKind::Read); // set 0
        c.access(l(1), AccessKind::Read); // set 1
        c.access(l(3), AccessKind::Read); // set 1
        c.access(l(5), AccessKind::Read); // set 1: evicts 1 or 3, not 0
        assert!(c.contains(l(0)));
    }

    #[test]
    fn invalidate_returns_dirtiness() {
        let mut c = tiny();
        c.access(l(0), AccessKind::Write);
        assert_eq!(c.invalidate(l(0)), Some(true));
        assert_eq!(c.invalidate(l(0)), None);
        assert!(!c.contains(l(0)));
    }

    #[test]
    fn mark_dirty_requires_residency() {
        let mut c = tiny();
        assert!(!c.mark_dirty(l(0)));
        c.access(l(0), AccessKind::Read);
        assert!(c.mark_dirty(l(0)));
        assert_eq!(c.is_dirty(l(0)), Some(true));
    }

    #[test]
    fn flush_dirty_visits_each_dirty_line_once() {
        let mut c = tiny();
        c.access(l(0), AccessKind::Write);
        c.access(l(1), AccessKind::Read);
        c.access(l(2), AccessKind::Write);
        let mut flushed = Vec::new();
        c.flush_dirty(|line| flushed.push(line));
        flushed.sort_by_key(|x| x.raw());
        assert_eq!(flushed, vec![l(0), l(2)]);
        // Second flush finds nothing.
        let mut again = Vec::new();
        c.flush_dirty(|line| again.push(line));
        assert!(again.is_empty());
    }

    #[test]
    fn invalidated_way_is_refilled_consistently() {
        // Invalidate a way mid-stream and keep going: ranks must stay a
        // valid permutation and LRU decisions must match the stamp model.
        let mut c = tiny();
        c.access(l(0), AccessKind::Read);
        c.access(l(2), AccessKind::Read);
        assert_eq!(c.invalidate(l(0)), Some(false));
        c.access(l(4), AccessKind::Read); // refills the invalid way
        assert!(c.contains(l(2)));
        assert!(c.contains(l(4)));
        // 2 is older than 4 now; a new line must evict 2.
        let r = c.access(l(6), AccessKind::Read);
        assert_eq!(r.victim.map(|v| v.line), Some(l(2)));
    }

    #[test]
    fn presence_bytes_round_trip() {
        let mut c = tiny();
        assert_eq!(c.pres_at(l(0), 1), 0);
        c.pres_or(l(0), 1, 0b101);
        assert_eq!(c.pres_at(l(0), 1), 0b101);
        assert_eq!(c.pres_replace(l(0), 1, 0b10), 0b101);
        assert_eq!(c.pres_at(l(0), 1), 0b10);
        // Other slots are untouched.
        assert_eq!(c.pres_at(l(0), 0), 0);
        assert_eq!(c.pres_at(l(1), 1), 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_rejected() {
        let _ = CacheConfig::new("bad", ByteSize::new(192), 1);
    }

    #[test]
    fn geometry_of_paper_llc() {
        let cfg = CacheConfig::new("LLC", ByteSize::from_mib(20), 20);
        assert_eq!(cfg.sets(), 16384);
        assert_eq!(cfg.lines(), 327_680);
    }
}
