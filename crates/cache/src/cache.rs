//! A single set-associative, write-back, write-allocate cache.

use crate::stats::CacheStats;
use hemu_types::{AccessKind, ByteSize, LineAddr, CACHE_LINE};

const INVALID: u64 = u64::MAX;

/// Geometry and identity of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Human-readable name for reports ("L2", "LLC").
    pub name: &'static str,
    /// Total capacity.
    pub size: ByteSize,
    /// Associativity (ways per set).
    pub assoc: usize,
}

impl CacheConfig {
    /// Creates a config.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero ways, or capacity not a
    /// multiple of `assoc * CACHE_LINE`, or a non-power-of-two set count —
    /// the set index is computed by masking).
    pub fn new(name: &'static str, size: ByteSize, assoc: usize) -> Self {
        assert!(assoc > 0, "cache must have at least one way");
        let lines = size.bytes() as usize / CACHE_LINE;
        assert!(
            lines % assoc == 0,
            "capacity {size} not divisible into {assoc}-way sets"
        );
        let sets = lines / assoc;
        assert!(
            sets.is_power_of_two(),
            "set count {sets} must be a power of two"
        );
        CacheConfig { name, size, assoc }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.size.bytes() as usize / CACHE_LINE / self.assoc
    }

    /// Total number of lines.
    pub fn lines(&self) -> usize {
        self.size.bytes() as usize / CACHE_LINE
    }
}

/// A line pushed out of the cache by an allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Victim {
    /// The physical line that was evicted.
    pub line: LineAddr,
    /// Whether it was dirty (must be written back to the next level).
    pub dirty: bool,
}

/// Result of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Whether the line was already resident.
    pub hit: bool,
    /// On a miss that displaced a valid line, that line.
    pub victim: Option<Victim>,
}

/// A set-associative, write-back, write-allocate cache with LRU replacement.
///
/// Tag arrays only — the simulator never stores data, it tracks which
/// physical lines are resident and dirty, which is all that is needed to
/// decide which stores become memory writes.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    set_mask: u64,
    /// `sets * assoc` entries; `INVALID` marks an empty way.
    tags: Vec<u64>,
    dirty: Vec<bool>,
    lru: Vec<u64>,
    tick: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        let total = config.lines();
        Cache {
            config,
            set_mask: (config.sets() - 1) as u64,
            tags: vec![INVALID; total],
            dirty: vec![false; total],
            lru: vec![0; total],
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache's geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets statistics (not contents).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    #[inline]
    fn set_range(&self, line: LineAddr) -> std::ops::Range<usize> {
        let set = (line.raw() & self.set_mask) as usize;
        let start = set * self.config.assoc;
        start..start + self.config.assoc
    }

    /// Accesses `line`; on a write the resident line is marked dirty.
    ///
    /// On a miss the line is allocated (write-allocate for both reads and
    /// writes) and the displaced valid line, if any, is returned so the
    /// caller can propagate the write-back.
    pub fn access(&mut self, line: LineAddr, kind: AccessKind) -> AccessResult {
        self.tick += 1;
        let range = self.set_range(line);
        let tag = line.raw();

        // Probe.
        let mut victim_way = range.start;
        let mut victim_lru = u64::MAX;
        for way in range.clone() {
            if self.tags[way] == tag {
                self.stats.hits += 1;
                self.lru[way] = self.tick;
                if kind.is_write() {
                    self.dirty[way] = true;
                }
                return AccessResult {
                    hit: true,
                    victim: None,
                };
            }
            if self.tags[way] == INVALID {
                // Prefer an invalid way; lru 0 beats every valid stamp.
                if victim_lru > 0 {
                    victim_lru = 0;
                    victim_way = way;
                }
            } else if self.lru[way] < victim_lru {
                victim_lru = self.lru[way];
                victim_way = way;
            }
        }

        // Miss: evict + allocate.
        self.stats.misses += 1;
        let victim = if self.tags[victim_way] != INVALID {
            self.stats.evictions += 1;
            let dirty = self.dirty[victim_way];
            if dirty {
                self.stats.writebacks += 1;
            }
            Some(Victim {
                line: LineAddr::new(self.tags[victim_way]),
                dirty,
            })
        } else {
            None
        };
        self.tags[victim_way] = tag;
        self.dirty[victim_way] = kind.is_write();
        self.lru[victim_way] = self.tick;
        AccessResult { hit: false, victim }
    }

    /// Returns `true` if `line` is resident.
    pub fn contains(&self, line: LineAddr) -> bool {
        let tag = line.raw();
        self.set_range(line).any(|w| self.tags[w] == tag)
    }

    /// Returns the dirty bit of `line` if resident.
    pub fn is_dirty(&self, line: LineAddr) -> Option<bool> {
        let tag = line.raw();
        self.set_range(line)
            .find(|&w| self.tags[w] == tag)
            .map(|w| self.dirty[w])
    }

    /// Marks a resident line dirty without touching LRU state (used when a
    /// lower-level write-back lands in this cache).
    ///
    /// Returns `false` if the line was not resident.
    pub fn mark_dirty(&mut self, line: LineAddr) -> bool {
        let tag = line.raw();
        if let Some(w) = self.set_range(line).find(|&w| self.tags[w] == tag) {
            self.dirty[w] = true;
            true
        } else {
            false
        }
    }

    /// Removes `line` if resident (inclusive-hierarchy back-invalidation),
    /// returning whether it was resident and whether it was dirty.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<bool> {
        let tag = line.raw();
        if let Some(w) = self.set_range(line).find(|&w| self.tags[w] == tag) {
            self.tags[w] = INVALID;
            let was_dirty = self.dirty[w];
            self.dirty[w] = false;
            Some(was_dirty)
        } else {
            None
        }
    }

    /// Number of valid lines currently resident (O(capacity); for tests).
    pub fn resident_lines(&self) -> usize {
        self.tags.iter().filter(|&&t| t != INVALID).count()
    }

    /// Iterates over the resident lines and their dirty bits (O(capacity);
    /// for invariant checking and debugging).
    pub fn iter_resident(&self) -> impl Iterator<Item = (LineAddr, bool)> + '_ {
        self.tags
            .iter()
            .zip(self.dirty.iter())
            .filter(|(&t, _)| t != INVALID)
            .map(|(&t, &d)| (LineAddr::new(t), d))
    }

    /// Writes back and drops every dirty line, invoking `sink` for each
    /// (used at iteration barriers to flush residual dirty data).
    pub fn flush_dirty<F: FnMut(LineAddr)>(&mut self, mut sink: F) {
        for w in 0..self.tags.len() {
            if self.tags[w] != INVALID && self.dirty[w] {
                sink(LineAddr::new(self.tags[w]));
                self.dirty[w] = false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways = 4 lines of 64 B = 256 B.
        Cache::new(CacheConfig::new("T", ByteSize::new(256), 2))
    }

    /// Lines mapping to set 0 of the tiny cache (even line numbers).
    fn l(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(l(0), AccessKind::Read).hit);
        assert!(c.access(l(0), AccessKind::Read).hit);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn write_sets_dirty_read_does_not() {
        let mut c = tiny();
        c.access(l(0), AccessKind::Read);
        assert_eq!(c.is_dirty(l(0)), Some(false));
        c.access(l(0), AccessKind::Write);
        assert_eq!(c.is_dirty(l(0)), Some(true));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = tiny();
        // Set 0 holds even lines; fill its two ways.
        c.access(l(0), AccessKind::Read);
        c.access(l(2), AccessKind::Read);
        c.access(l(0), AccessKind::Read); // 2 is now LRU
        let r = c.access(l(4), AccessKind::Read);
        assert_eq!(
            r.victim,
            Some(Victim {
                line: l(2),
                dirty: false
            })
        );
        assert!(c.contains(l(0)));
        assert!(!c.contains(l(2)));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny();
        c.access(l(0), AccessKind::Write);
        c.access(l(2), AccessKind::Read);
        let r = c.access(l(4), AccessKind::Read); // evicts line 0 (LRU, dirty)
        assert_eq!(
            r.victim,
            Some(Victim {
                line: l(0),
                dirty: true
            })
        );
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn repeated_writes_to_cached_line_never_evict() {
        // The LLC-absorption effect in miniature: overwriting a resident
        // line generates no memory traffic at all.
        let mut c = tiny();
        c.access(l(0), AccessKind::Write);
        for _ in 0..100 {
            let r = c.access(l(0), AccessKind::Write);
            assert!(r.hit);
            assert!(r.victim.is_none());
        }
        assert_eq!(c.stats().writebacks, 0);
    }

    #[test]
    fn different_sets_do_not_conflict() {
        let mut c = tiny();
        c.access(l(0), AccessKind::Read); // set 0
        c.access(l(1), AccessKind::Read); // set 1
        c.access(l(3), AccessKind::Read); // set 1
        c.access(l(5), AccessKind::Read); // set 1: evicts 1 or 3, not 0
        assert!(c.contains(l(0)));
    }

    #[test]
    fn invalidate_returns_dirtiness() {
        let mut c = tiny();
        c.access(l(0), AccessKind::Write);
        assert_eq!(c.invalidate(l(0)), Some(true));
        assert_eq!(c.invalidate(l(0)), None);
        assert!(!c.contains(l(0)));
    }

    #[test]
    fn mark_dirty_requires_residency() {
        let mut c = tiny();
        assert!(!c.mark_dirty(l(0)));
        c.access(l(0), AccessKind::Read);
        assert!(c.mark_dirty(l(0)));
        assert_eq!(c.is_dirty(l(0)), Some(true));
    }

    #[test]
    fn flush_dirty_visits_each_dirty_line_once() {
        let mut c = tiny();
        c.access(l(0), AccessKind::Write);
        c.access(l(1), AccessKind::Read);
        c.access(l(2), AccessKind::Write);
        let mut flushed = Vec::new();
        c.flush_dirty(|line| flushed.push(line));
        flushed.sort_by_key(|x| x.raw());
        assert_eq!(flushed, vec![l(0), l(2)]);
        // Second flush finds nothing.
        let mut again = Vec::new();
        c.flush_dirty(|line| again.push(line));
        assert!(again.is_empty());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_rejected() {
        let _ = CacheConfig::new("bad", ByteSize::new(192), 1);
    }

    #[test]
    fn geometry_of_paper_llc() {
        let cfg = CacheConfig::new("LLC", ByteSize::from_mib(20), 20);
        assert_eq!(cfg.sets(), 16384);
        assert_eq!(cfg.lines(), 327_680);
    }
}
