//! Per-cache hit/miss/write-back statistics.

use hemu_obs::json::{JsonObject, ToJson};
use std::fmt;

/// Counters kept by every cache in the hierarchy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that found their line resident.
    pub hits: u64,
    /// Accesses that missed and allocated a line.
    pub misses: u64,
    /// Valid lines evicted to make room.
    pub evictions: u64,
    /// Evicted lines that were dirty (write-backs to the next level).
    pub writebacks: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit ratio in `[0, 1]`; zero if there were no accesses.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Resets all counters.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

impl ToJson for CacheStats {
    fn write_json(&self, out: &mut String) {
        let mut obj = JsonObject::new(out);
        obj.field("hits", &self.hits)
            .field("misses", &self.misses)
            .field("evictions", &self.evictions)
            .field("writebacks", &self.writebacks)
            .field("hit_ratio", &self.hit_ratio());
        obj.finish();
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accesses, {:.1}% hits, {} evictions ({} dirty)",
            self.accesses(),
            self.hit_ratio() * 100.0,
            self.evictions,
            self.writebacks
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_ratio_handles_zero_accesses() {
        assert_eq!(CacheStats::default().hit_ratio(), 0.0);
    }

    #[test]
    fn hit_ratio_counts() {
        let s = CacheStats {
            hits: 3,
            misses: 1,
            evictions: 0,
            writebacks: 0,
        };
        assert!((s.hit_ratio() - 0.75).abs() < 1e-12);
        assert_eq!(s.accesses(), 4);
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut s = CacheStats {
            hits: 1,
            misses: 2,
            evictions: 3,
            writebacks: 4,
        };
        s.reset();
        assert_eq!(s, CacheStats::default());
    }
}
