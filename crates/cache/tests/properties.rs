//! Property-based tests for the cache hierarchy: conservation of dirty
//! data, the inclusion invariant, and agreement with a reference model.

use hemu_cache::{Cache, CacheConfig, Hierarchy, HierarchyConfig, HitLevel};
use hemu_types::{AccessKind, ByteSize, LineAddr};
use proptest::prelude::*;
use std::collections::HashSet;

fn tiny_hierarchy(contexts: usize) -> Hierarchy {
    Hierarchy::new(HierarchyConfig {
        contexts,
        l2_size: ByteSize::new(512),
        l2_assoc: 2,
        llc_size: ByteSize::new(4096),
        llc_assoc: 4,
    })
}

proptest! {
    /// No store is ever lost: after an arbitrary access stream, every line
    /// that was ever written is either still dirty somewhere in the
    /// hierarchy or has been written back to memory at least once.
    #[test]
    fn dirty_data_is_conserved(
        ops in prop::collection::vec((0usize..3, 0u64..64, prop::bool::ANY), 1..400)
    ) {
        let mut h = tiny_hierarchy(3);
        let mut written: HashSet<u64> = HashSet::new();
        let mut written_back: HashSet<u64> = HashSet::new();
        for (ctx, line, is_write) in ops {
            let kind = if is_write { AccessKind::Write } else { AccessKind::Read };
            if is_write {
                written.insert(line);
            }
            let out = h.access(ctx, LineAddr::new(line), kind);
            for wb in &out.memory_writebacks {
                written_back.insert(wb.raw());
            }
        }
        // Flush the rest.
        h.flush(|l, _| {
            written_back.insert(l.raw());
        });
        for line in written {
            prop_assert!(
                written_back.contains(&line),
                "line {line} was written but never reached memory"
            );
        }
    }

    /// Inclusion: every line resident in any L2 is also resident in the
    /// LLC, after any access stream.
    #[test]
    fn hierarchy_is_inclusive(
        ops in prop::collection::vec((0usize..3, 0u64..64, prop::bool::ANY), 1..400)
    ) {
        let mut h = tiny_hierarchy(3);
        for (ctx, line, is_write) in ops {
            let kind = if is_write { AccessKind::Write } else { AccessKind::Read };
            h.access(ctx, LineAddr::new(line), kind);
        }
        for ctx in 0..3 {
            for (line, _) in h.l2(ctx).iter_resident() {
                prop_assert!(
                    h.llc().contains(line),
                    "L2[{ctx}] holds {line} but the LLC does not (inclusion violated)"
                );
            }
        }
    }

    /// A single cache agrees with a reference model on residency: a line
    /// is resident iff it is among the `assoc` most recently used lines of
    /// its set.
    #[test]
    fn cache_matches_lru_reference(
        lines in prop::collection::vec(0u64..32, 1..200)
    ) {
        // 2 sets x 2 ways.
        let mut c = Cache::new(CacheConfig::new("t", ByteSize::new(256), 2));
        // Reference: per set, the LRU-ordered recency list.
        let mut recency: [Vec<u64>; 2] = [Vec::new(), Vec::new()];
        for &line in &lines {
            c.access(LineAddr::new(line), AccessKind::Read);
            let set = (line % 2) as usize;
            recency[set].retain(|&l| l != line);
            recency[set].push(line);
        }
        for set in 0..2 {
            let expect: HashSet<u64> =
                recency[set].iter().rev().take(2).copied().collect();
            for line in 0u64..32 {
                if line % 2 == set as u64 {
                    prop_assert_eq!(
                        c.contains(LineAddr::new(line)),
                        expect.contains(&line),
                        "line {} residency mismatch", line
                    );
                }
            }
        }
    }

    /// Total memory traffic equals misses: every miss fills exactly once
    /// from memory, and hits never touch memory.
    #[test]
    fn fills_equal_misses(
        ops in prop::collection::vec((0u64..128, prop::bool::ANY), 1..300)
    ) {
        let mut h = tiny_hierarchy(1);
        let mut fills = 0u64;
        let mut memory_level = 0u64;
        for (line, is_write) in ops {
            let kind = if is_write { AccessKind::Write } else { AccessKind::Read };
            let out = h.access(0, LineAddr::new(line), kind);
            if out.memory_fill.is_some() {
                fills += 1;
                prop_assert_eq!(out.memory_fill, Some(LineAddr::new(line)));
            }
            if out.level == HitLevel::Memory {
                memory_level += 1;
            }
        }
        prop_assert_eq!(fills, memory_level);
    }
}
