//! The packed-metadata cache against a naive reference model.
//!
//! `Cache` packs per-set valid/dirty state into `u32` bitmasks and probes
//! via `trailing_zeros`; this suite drives it with long seeded
//! pseudo-random access streams and checks, access by access, that it
//! behaves exactly like the obvious scattered-per-way implementation —
//! same hits, same victims, same victim dirtiness, same final statistics.
//! Packing changed the representation, never the replacement policy.
//!
//! Dependency-free (seeded LCG, no proptest) so it runs in the hermetic
//! tier-1 build.

use hemu_cache::{Cache, CacheConfig, Hierarchy, HierarchyConfig, HitLevel, ShardedHierarchy};
use hemu_types::{AccessKind, ByteSize, LineAddr, CACHE_LINE};

/// Naive set-associative LRU model: per way, `Option<(tag, dirty, tick)>`.
struct NaiveCache {
    sets: usize,
    assoc: usize,
    ways: Vec<Option<(u64, bool, u64)>>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    writebacks: u64,
}

impl NaiveCache {
    fn new(sets: usize, assoc: usize) -> Self {
        NaiveCache {
            sets,
            assoc,
            ways: vec![None; sets * assoc],
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            writebacks: 0,
        }
    }

    /// Returns `(hit, victim)` with the victim as `(line, dirty)`.
    fn access(&mut self, line: u64, is_write: bool) -> (bool, Option<(u64, bool)>) {
        self.tick += 1;
        let base = (line as usize % self.sets) * self.assoc;
        let set = &mut self.ways[base..base + self.assoc];

        if let Some(w) = set.iter().position(|s| s.map(|(t, _, _)| t) == Some(line)) {
            self.hits += 1;
            let (t, d, _) = set[w].expect("hit way is occupied");
            set[w] = Some((t, d || is_write, self.tick));
            return (true, None);
        }

        self.misses += 1;
        // First invalid way, else the stalest stamp (lowest way index
        // breaks ties — the strict `<` scan).
        let way = set.iter().position(|s| s.is_none()).unwrap_or_else(|| {
            let mut best = 0;
            for w in 1..set.len() {
                let stamp = |i: usize| set[i].map(|(_, _, s)| s).unwrap_or(0);
                if stamp(w) < stamp(best) {
                    best = w;
                }
            }
            best
        });
        let victim = set[way].map(|(t, d, _)| (t, d));
        if let Some((_, d)) = victim {
            self.evictions += 1;
            if d {
                self.writebacks += 1;
            }
        }
        set[way] = Some((line, is_write, self.tick));
        (false, victim)
    }
}

/// Drives both implementations with the same seeded stream and compares
/// every observable.
fn compare(seed: u64, sets: usize, assoc: usize, line_range: u64, ops: usize) {
    let size = ByteSize::new((sets * assoc * CACHE_LINE) as u64);
    let mut packed = Cache::new(CacheConfig::new("ref", size, assoc));
    let mut naive = NaiveCache::new(sets, assoc);

    let mut state = seed;
    for i in 0..ops {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        let line = (state >> 24) % line_range;
        let is_write = state & 1 == 1;
        let kind = if is_write {
            AccessKind::Write
        } else {
            AccessKind::Read
        };

        let got = packed.access(LineAddr::new(line), kind);
        let (want_hit, want_victim) = naive.access(line, is_write);

        assert_eq!(
            got.hit, want_hit,
            "op {i} (line {line}, write={is_write}): hit status diverged"
        );
        assert_eq!(
            got.victim.map(|v| (v.line.raw(), v.dirty)),
            want_victim,
            "op {i} (line {line}, write={is_write}): victim diverged"
        );
    }

    let s = packed.stats();
    assert_eq!(s.hits, naive.hits, "hit totals diverged");
    assert_eq!(s.misses, naive.misses, "miss totals diverged");
    assert_eq!(s.evictions, naive.evictions, "eviction totals diverged");
    assert_eq!(s.writebacks, naive.writebacks, "writeback totals diverged");
}

#[test]
fn packed_matches_naive_small_hot_set() {
    // Heavy reuse: mostly hits, occasional conflict evictions.
    compare(42, 4, 4, 24, 20_000);
}

#[test]
fn packed_matches_naive_thrashing() {
    // Working set far beyond capacity: constant eviction pressure.
    compare(7, 8, 2, 4096, 20_000);
}

#[test]
fn packed_matches_naive_max_assoc() {
    // 21 ways is the cap (6-bit recency ranks pack into a u128); an odd
    // associativity also exercises the half-filled final tag word.
    compare(1234, 2, 21, 256, 20_000);
}

#[test]
fn packed_matches_naive_direct_mapped() {
    compare(99, 16, 1, 64, 20_000);
}

/// Drives the monolithic scalar hierarchy (the executable specification)
/// and the sharded batch pipeline with the same seeded random stream and
/// checks, access by access, that every observable is bit-identical: hit
/// level, fill, write-back lines with their provenance tags, and — at the
/// end — aggregate statistics plus the valid/dirty state of every line the
/// stream could have touched. Run at 1 and 4 resolution threads, so the
/// property also covers the deterministic-parallelism claim.
fn compare_scalar_vs_batch(seed: u64, shard_bits: u32, threads: usize) {
    // Small enough that streams thrash both levels, large enough that
    // back-invalidation and dirty-merge paths fire. L2: 32 sets x 2 ways;
    // LLC: 64 sets x 4 ways; 3 contexts exercise cross-context aliasing.
    let config = HierarchyConfig {
        contexts: 3,
        l2_size: ByteSize::new(32 * 2 * 64),
        l2_assoc: 2,
        llc_size: ByteSize::new(64 * 4 * 64),
        llc_assoc: 4,
    };
    const LINE_RANGE: u64 = 1024;
    let mut scalar = Hierarchy::new(config);
    let mut batch = ShardedHierarchy::new(config, shard_bits);
    scalar.enable_tags();
    batch.enable_tags();

    let mut state = seed;
    let mut stream: Vec<(usize, LineAddr, AccessKind, u8)> = Vec::new();
    for i in 0..30_000u64 {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        let line = LineAddr::new((state >> 24) % LINE_RANGE);
        let kind = if state & 1 == 1 {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        let tag = (state >> 8) as u8;
        stream.push(((i % 3) as usize, line, kind, tag));
    }

    let mut wb = Vec::new();
    for (batch_no, chunk) in stream.chunks(1023).enumerate() {
        batch.begin_batch();
        for &(ctx, line, kind, tag) in chunk {
            batch.enqueue(ctx, line, kind, tag);
        }
        batch.resolve(threads);
        for (i, &(ctx, line, kind, tag)) in chunk.iter().enumerate() {
            let (lv_s, fill_s) = scalar.access_into(ctx, line, kind, tag, &mut wb);
            let (lv_b, fill_b, wbs_b) = batch.next_outcome(line);
            assert_eq!(
                (lv_s, fill_s),
                (lv_b, fill_b),
                "batch {batch_no} op {i}: hit level / fill diverged"
            );
            assert_eq!(
                wb.as_slice(),
                wbs_b,
                "batch {batch_no} op {i}: write-backs diverged"
            );
            assert_eq!(
                fill_s.is_some(),
                lv_s == HitLevel::Memory,
                "fills come exactly from memory-level misses"
            );
        }
    }

    // Final state: statistics and the residency/dirtiness of every
    // reachable line must agree between the two engines.
    assert_eq!(*scalar.llc().stats(), batch.llc_stats(), "LLC stats");
    for ctx in 0..3 {
        assert_eq!(
            *scalar.l2(ctx).stats(),
            batch.l2_stats(ctx),
            "L2 stats of ctx {ctx}"
        );
    }
    for raw in 0..LINE_RANGE {
        let line = LineAddr::new(raw);
        assert_eq!(
            scalar.llc().contains(line),
            batch.llc_contains(line),
            "LLC residency of line {raw}"
        );
        assert_eq!(
            scalar.llc().is_dirty(line),
            batch.llc_is_dirty(line),
            "LLC dirty bit of line {raw}"
        );
        for ctx in 0..3 {
            assert_eq!(
                scalar.l2(ctx).contains(line),
                batch.l2_contains(ctx, line),
                "L2 residency of line {raw} in ctx {ctx}"
            );
            assert_eq!(
                scalar.l2(ctx).is_dirty(line),
                batch.l2_is_dirty(ctx, line),
                "L2 dirty bit of line {raw} in ctx {ctx}"
            );
        }
    }
}

#[test]
fn batch_pipeline_matches_scalar_sequential() {
    compare_scalar_vs_batch(0xDEAD_BEEF, 3, 1);
}

#[test]
fn batch_pipeline_matches_scalar_parallel() {
    compare_scalar_vs_batch(0xDEAD_BEEF, 3, 4);
}

#[test]
fn batch_pipeline_matches_scalar_single_shard() {
    // One shard degenerates to the monolithic layout internally; the
    // pipeline mechanics (queueing, outcome cursors) must still be exact.
    compare_scalar_vs_batch(77, 0, 2);
}

/// Runs `stream` through a fresh sharded pipeline, split into batches by
/// the cycle of `chunks`, and returns every per-access outcome plus the
/// final aggregate observables. Used by the flush-boundary invariance
/// property below.
fn run_partitioned(
    stream: &[(usize, LineAddr, AccessKind, u8)],
    chunks: &[usize],
) -> (Vec<(HitLevel, bool, usize)>, Vec<u64>) {
    let config = HierarchyConfig {
        contexts: 3,
        l2_size: ByteSize::new(32 * 2 * 64),
        l2_assoc: 2,
        llc_size: ByteSize::new(64 * 4 * 64),
        llc_assoc: 4,
    };
    let mut h = ShardedHierarchy::new(config, 3);
    h.enable_tags();
    let mut outcomes = Vec::with_capacity(stream.len());
    let mut pos = 0usize;
    let mut which = 0usize;
    while pos < stream.len() {
        let take = chunks[which % chunks.len()].min(stream.len() - pos);
        which += 1;
        let chunk = &stream[pos..pos + take];
        pos += take;
        h.begin_batch();
        for &(ctx, line, kind, tag) in chunk {
            h.enqueue(ctx, line, kind, tag);
        }
        h.resolve(2);
        for &(_, line, _, _) in chunk {
            let (lv, fill, wbs) = h.next_outcome(line);
            outcomes.push((lv, fill.is_some(), wbs.len()));
        }
    }
    let mut state = Vec::new();
    let stats = h.llc_stats();
    state.extend([stats.hits, stats.misses, stats.evictions, stats.writebacks]);
    for ctx in 0..3 {
        let s = h.l2_stats(ctx);
        state.extend([s.hits, s.misses, s.evictions, s.writebacks]);
    }
    for raw in 0..1024u64 {
        let line = LineAddr::new(raw);
        // Dirty queries return Option<bool> (None = not resident); fold
        // the tri-state into 2 bits so the whole line is one word.
        let dirty = |d: Option<bool>| d.map_or(0u64, |b| 1 + b as u64);
        let mut bits = (h.llc_contains(line) as u64) | dirty(h.llc_is_dirty(line)) << 1;
        for ctx in 0..3 {
            bits |= (h.l2_contains(ctx, line) as u64) << (3 + 3 * ctx);
            bits |= dirty(h.l2_is_dirty(ctx, line)) << (4 + 3 * ctx);
        }
        state.push(bits);
    }
    (outcomes, state)
}

/// Flush-boundary invariance: where a stream is cut into batches is
/// invisible — per-access outcomes (hit level, fill, write-back count),
/// aggregate statistics, and the final valid/dirty state of every line
/// are identical whether the stream arrives as one giant batch, as
/// single-access batches, or cut at arbitrary seeded boundaries. This is
/// the cache-layer half of the deferred-submission guarantee: the
/// machine's submission buffer may flush at any semantic boundary without
/// perturbing a single observable.
#[test]
fn batch_boundaries_are_invisible() {
    let mut state = 0xFEED_F00Du64;
    let mut stream: Vec<(usize, LineAddr, AccessKind, u8)> = Vec::new();
    for i in 0..30_000u64 {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        let line = LineAddr::new((state >> 24) % 1024);
        let kind = if state & 1 == 1 {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        stream.push(((i % 3) as usize, line, kind, (state >> 8) as u8));
    }

    let whole = run_partitioned(&stream, &[stream.len()]);
    let singles = run_partitioned(&stream, &[1]);
    assert_eq!(whole.0, singles.0, "outcomes diverged at batch size 1");
    assert_eq!(whole.1, singles.1, "final state diverged at batch size 1");
    // Irregular seeded boundaries, including primes around the shard
    // queue/prefetch depths.
    let ragged = run_partitioned(&stream, &[1, 13, 4096, 257, 2, 8191, 31]);
    assert_eq!(whole.0, ragged.0, "outcomes diverged at ragged boundaries");
    assert_eq!(
        whole.1, ragged.1,
        "final state diverged at ragged boundaries"
    );
}
