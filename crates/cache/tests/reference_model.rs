//! The packed-metadata cache against a naive reference model.
//!
//! `Cache` packs per-set valid/dirty state into `u32` bitmasks and probes
//! via `trailing_zeros`; this suite drives it with long seeded
//! pseudo-random access streams and checks, access by access, that it
//! behaves exactly like the obvious scattered-per-way implementation —
//! same hits, same victims, same victim dirtiness, same final statistics.
//! Packing changed the representation, never the replacement policy.
//!
//! Dependency-free (seeded LCG, no proptest) so it runs in the hermetic
//! tier-1 build.

use hemu_cache::{Cache, CacheConfig};
use hemu_types::{AccessKind, ByteSize, LineAddr, CACHE_LINE};

/// Naive set-associative LRU model: per way, `Option<(tag, dirty, tick)>`.
struct NaiveCache {
    sets: usize,
    assoc: usize,
    ways: Vec<Option<(u64, bool, u64)>>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    writebacks: u64,
}

impl NaiveCache {
    fn new(sets: usize, assoc: usize) -> Self {
        NaiveCache {
            sets,
            assoc,
            ways: vec![None; sets * assoc],
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            writebacks: 0,
        }
    }

    /// Returns `(hit, victim)` with the victim as `(line, dirty)`.
    fn access(&mut self, line: u64, is_write: bool) -> (bool, Option<(u64, bool)>) {
        self.tick += 1;
        let base = (line as usize % self.sets) * self.assoc;
        let set = &mut self.ways[base..base + self.assoc];

        if let Some(w) = set.iter().position(|s| s.map(|(t, _, _)| t) == Some(line)) {
            self.hits += 1;
            let (t, d, _) = set[w].expect("hit way is occupied");
            set[w] = Some((t, d || is_write, self.tick));
            return (true, None);
        }

        self.misses += 1;
        // First invalid way, else the stalest stamp (lowest way index
        // breaks ties — the strict `<` scan).
        let way = set.iter().position(|s| s.is_none()).unwrap_or_else(|| {
            let mut best = 0;
            for w in 1..set.len() {
                let stamp = |i: usize| set[i].map(|(_, _, s)| s).unwrap_or(0);
                if stamp(w) < stamp(best) {
                    best = w;
                }
            }
            best
        });
        let victim = set[way].map(|(t, d, _)| (t, d));
        if let Some((_, d)) = victim {
            self.evictions += 1;
            if d {
                self.writebacks += 1;
            }
        }
        set[way] = Some((line, is_write, self.tick));
        (false, victim)
    }
}

/// Drives both implementations with the same seeded stream and compares
/// every observable.
fn compare(seed: u64, sets: usize, assoc: usize, line_range: u64, ops: usize) {
    let size = ByteSize::new((sets * assoc * CACHE_LINE) as u64);
    let mut packed = Cache::new(CacheConfig::new("ref", size, assoc));
    let mut naive = NaiveCache::new(sets, assoc);

    let mut state = seed;
    for i in 0..ops {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        let line = (state >> 24) % line_range;
        let is_write = state & 1 == 1;
        let kind = if is_write {
            AccessKind::Write
        } else {
            AccessKind::Read
        };

        let got = packed.access(LineAddr::new(line), kind);
        let (want_hit, want_victim) = naive.access(line, is_write);

        assert_eq!(
            got.hit, want_hit,
            "op {i} (line {line}, write={is_write}): hit status diverged"
        );
        assert_eq!(
            got.victim.map(|v| (v.line.raw(), v.dirty)),
            want_victim,
            "op {i} (line {line}, write={is_write}): victim diverged"
        );
    }

    let s = packed.stats();
    assert_eq!(s.hits, naive.hits, "hit totals diverged");
    assert_eq!(s.misses, naive.misses, "miss totals diverged");
    assert_eq!(s.evictions, naive.evictions, "eviction totals diverged");
    assert_eq!(s.writebacks, naive.writebacks, "writeback totals diverged");
}

#[test]
fn packed_matches_naive_small_hot_set() {
    // Heavy reuse: mostly hits, occasional conflict evictions.
    compare(42, 4, 4, 24, 20_000);
}

#[test]
fn packed_matches_naive_thrashing() {
    // Working set far beyond capacity: constant eviction pressure.
    compare(7, 8, 2, 4096, 20_000);
}

#[test]
fn packed_matches_naive_max_assoc() {
    // 32 ways exercises the full-mask edge (`1 << 32` would overflow).
    compare(1234, 2, 32, 256, 20_000);
}

#[test]
fn packed_matches_naive_direct_mapped() {
    compare(99, 16, 1, 64, 20_000);
}
