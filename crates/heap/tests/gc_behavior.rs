//! Whole-heap behavioural tests: allocation, collection, promotion,
//! write-rationing semantics, and the PCM-write ordering the paper reports.

use hemu_heap::object::SpaceKind;
use hemu_heap::{CollectorKind, ManagedHeap};
use hemu_machine::{CtxId, Machine, MachineProfile, ProcId};
use hemu_types::{ByteSize, SocketId};

fn setup(kind: CollectorKind) -> (Machine, ManagedHeap) {
    let mut m = Machine::new(MachineProfile::emulation());
    let default_socket = if kind == CollectorKind::PcmOnly {
        SocketId::PCM
    } else {
        SocketId::DRAM
    };
    let proc = m.add_process(default_socket);
    let cfg = kind.config(ByteSize::from_mib(1), ByteSize::from_mib(32));
    let heap = ManagedHeap::new(&mut m, proc, CtxId(0), cfg).unwrap();
    (m, heap)
}

#[test]
fn allocation_starts_in_the_nursery() {
    let (mut m, mut heap) = setup(CollectorKind::KgN);
    let o = heap.alloc(&mut m, 1, 16).unwrap();
    assert_eq!(heap.space_of(o), SpaceKind::Nursery);
}

#[test]
fn nursery_exhaustion_triggers_minor_gc_and_dead_objects_vanish() {
    let (mut m, mut heap) = setup(CollectorKind::KgN);
    // Allocate ~2 MiB of garbage through a 1 MiB nursery.
    let mut last = None;
    for _ in 0..2048 {
        last = Some(heap.alloc(&mut m, 0, 1000).unwrap());
    }
    assert!(heap.stats().minor_gcs >= 1);
    // Only recently allocated, unrooted objects remain (those since the
    // last collection); the heap must not retain all 2048.
    assert!(heap.live_objects() < 1100, "live = {}", heap.live_objects());
    let _ = last;
}

#[test]
fn rooted_objects_survive_and_are_promoted_to_pcm_under_kg_n() {
    let (mut m, mut heap) = setup(CollectorKind::KgN);
    let keep = heap.alloc(&mut m, 0, 64).unwrap();
    let _root = heap.new_root(Some(keep));
    // Churn enough garbage to force several minor collections.
    for _ in 0..4096 {
        heap.alloc(&mut m, 0, 512).unwrap();
    }
    assert!(heap.is_live(keep));
    assert_eq!(
        heap.space_of(keep),
        SpaceKind::MaturePcm,
        "KG-N promotes survivors to PCM"
    );
}

#[test]
fn kg_w_survivors_go_to_observer_then_segregate_by_writes() {
    let (mut m, mut heap) = setup(CollectorKind::KgW);
    let hot = heap.alloc(&mut m, 0, 64).unwrap();
    let cold = heap.alloc(&mut m, 0, 64).unwrap();
    let _r1 = heap.new_root(Some(hot));
    let _r2 = heap.new_root(Some(cold));

    // First promotion: into the observer space.
    for _ in 0..2048 {
        heap.alloc(&mut m, 0, 512).unwrap();
    }
    assert_eq!(heap.space_of(hot), SpaceKind::Observer);
    assert_eq!(heap.space_of(cold), SpaceKind::Observer);

    // Mutate only `hot` while both are observed. A rolling window of
    // rooted survivors fills the observer quickly, forcing its
    // evacuation within a bounded number of rounds.
    let mut window: std::collections::VecDeque<_> = std::collections::VecDeque::new();
    let mut rounds = 0;
    while heap.space_of(hot) == SpaceKind::Observer {
        heap.write_data(&mut m, hot, 0, 8).unwrap();
        for _ in 0..64 {
            let o = heap.alloc(&mut m, 0, 1024).unwrap();
            window.push_back(heap.new_root(Some(o)));
            if window.len() > 1024 {
                heap.drop_root(window.pop_front().unwrap());
            }
        }
        rounds += 1;
        assert!(rounds < 10_000, "observer never evacuated");
    }
    assert_eq!(
        heap.space_of(hot),
        SpaceKind::MatureDram,
        "written object belongs in DRAM"
    );
    assert_eq!(
        heap.space_of(cold),
        SpaceKind::MaturePcm,
        "unwritten object belongs in PCM"
    );
    assert!(heap.stats().promoted_dram_objects >= 1);
    assert!(heap.stats().promoted_pcm_objects >= 1);
}

#[test]
fn reference_graph_keeps_transitively_reachable_objects_alive() {
    let (mut m, mut heap) = setup(CollectorKind::KgN);
    let a = heap.alloc(&mut m, 1, 8).unwrap();
    let b = heap.alloc(&mut m, 1, 8).unwrap();
    let c = heap.alloc(&mut m, 0, 8).unwrap();
    heap.write_ref(&mut m, a, 0, Some(b)).unwrap();
    heap.write_ref(&mut m, b, 0, Some(c)).unwrap();
    let _root = heap.new_root(Some(a));
    for _ in 0..4096 {
        heap.alloc(&mut m, 0, 512).unwrap();
    }
    assert!(heap.is_live(a) && heap.is_live(b) && heap.is_live(c));
    // The chain is intact after copying.
    assert_eq!(heap.read_ref(&mut m, a, 0).unwrap(), Some(b));
    assert_eq!(heap.read_ref(&mut m, b, 0).unwrap(), Some(c));
}

#[test]
fn old_to_young_pointers_are_remembered() {
    let (mut m, mut heap) = setup(CollectorKind::KgN);
    let old = heap.alloc(&mut m, 1, 8).unwrap();
    let _root = heap.new_root(Some(old));
    // Promote `old` out of the nursery.
    for _ in 0..2048 {
        heap.alloc(&mut m, 0, 512).unwrap();
    }
    assert_eq!(heap.space_of(old), SpaceKind::MaturePcm);
    // Now point it at a brand-new nursery object, with no other reference.
    let young = heap.alloc(&mut m, 0, 8).unwrap();
    heap.write_ref(&mut m, old, 0, Some(young)).unwrap();
    assert!(heap.stats().remset_entries >= 1);
    for _ in 0..2048 {
        heap.alloc(&mut m, 0, 512).unwrap();
    }
    assert!(
        heap.is_live(young),
        "object reachable only through the remset must survive"
    );
    assert_eq!(heap.read_ref(&mut m, old, 0).unwrap(), Some(young));
}

#[test]
fn unreferenced_cycle_is_collected_by_full_gc() {
    let (mut m, mut heap) = setup(CollectorKind::KgN);
    let a = heap.alloc(&mut m, 1, 8).unwrap();
    let b = heap.alloc(&mut m, 1, 8).unwrap();
    heap.write_ref(&mut m, a, 0, Some(b)).unwrap();
    heap.write_ref(&mut m, b, 0, Some(a)).unwrap();
    let root = heap.new_root(Some(a));
    for _ in 0..2048 {
        heap.alloc(&mut m, 0, 512).unwrap();
    }
    assert!(heap.is_live(a) && heap.is_live(b));
    heap.drop_root(root);
    heap.collect_full(&mut m).unwrap();
    assert!(
        !heap.is_live(a) && !heap.is_live(b),
        "cycle must not survive a full trace"
    );
}

#[test]
fn large_objects_go_directly_to_pcm_los_without_loo() {
    let (mut m, mut heap) = setup(CollectorKind::KgN);
    let big = heap.alloc(&mut m, 0, 64 * 1024).unwrap();
    assert_eq!(heap.space_of(big), SpaceKind::LargePcm);
    assert_eq!(heap.stats().loo_nursery_large, 0);
}

#[test]
fn loo_routes_smallish_large_objects_through_the_nursery() {
    let (mut m, mut heap) = setup(CollectorKind::KgNLoo);
    let big = heap.alloc(&mut m, 0, 16 * 1024).unwrap(); // 16 KiB ≤ 512 KiB cap
    assert_eq!(heap.space_of(big), SpaceKind::Nursery);
    assert_eq!(heap.stats().loo_nursery_large, 1);
    // An object beyond the LOO cap still bypasses the nursery.
    let huge = heap.alloc(&mut m, 0, 600 * 1024).unwrap();
    assert_eq!(heap.space_of(huge), SpaceKind::LargePcm);
}

#[test]
fn kg_w_rescues_written_large_objects_to_dram() {
    let (mut m, mut heap) = setup(CollectorKind::KgW);
    let big = heap.alloc(&mut m, 0, 600 * 1024).unwrap();
    assert_eq!(heap.space_of(big), SpaceKind::LargePcm);
    let _root = heap.new_root(Some(big));
    heap.write_data(&mut m, big, 0, 4096).unwrap();
    heap.collect_full(&mut m).unwrap();
    assert_eq!(
        heap.space_of(big),
        SpaceKind::LargeDram,
        "written large object rescued"
    );
    assert_eq!(heap.stats().large_rescued, 1);
}

#[test]
fn boot_objects_are_permanent_roots() {
    let (mut m, mut heap) = setup(CollectorKind::KgN);
    let boot = heap.alloc_boot(&mut m, 1, 64).unwrap();
    assert_eq!(heap.space_of(boot), SpaceKind::Boot);
    let child = heap.alloc(&mut m, 0, 8).unwrap();
    heap.write_ref(&mut m, boot, 0, Some(child)).unwrap();
    heap.collect_full(&mut m).unwrap();
    assert!(
        heap.is_live(boot),
        "boot objects survive without explicit roots"
    );
    assert!(heap.is_live(child), "objects referenced from boot survive");
}

/// The paper's headline ordering (Table II / Fig. 7): PCM-Only writes the
/// most to PCM; KG-N cuts nursery writes; KG-W cuts survivor writes too.
#[test]
fn pcm_write_ordering_matches_the_paper() {
    let mut results = Vec::new();
    for kind in [
        CollectorKind::PcmOnly,
        CollectorKind::KgN,
        CollectorKind::KgW,
    ] {
        let (mut m, mut heap) = setup(kind);
        let mut hot = Vec::new();
        // A workload with long-lived, frequently written survivors: the
        // case where write segregation pays.
        for i in 0..6000u32 {
            let o = heap.alloc(&mut m, 0, 256).unwrap();
            if i % 8 == 0 {
                let r = heap.new_root(Some(o));
                hot.push((o, r));
            }
            if let Some(&(h, _)) = hot.get((i as usize) % hot.len().max(1)) {
                if heap.is_live(h) {
                    heap.write_data(&mut m, h, 0, 64).unwrap();
                }
            }
        }
        m.flush_caches().unwrap();
        results.push((kind, m.pcm_writes().bytes()));
    }
    let pcm_only = results[0].1;
    let kg_n = results[1].1;
    let kg_w = results[2].1;
    assert!(
        kg_n < pcm_only,
        "KG-N ({kg_n}) must write less than PCM-Only ({pcm_only})"
    );
    assert!(
        kg_w < kg_n,
        "KG-W ({kg_w}) must write less than KG-N ({kg_n})"
    );
}

#[test]
fn kg_w_does_more_gc_work_than_kg_n() {
    // §V: monitoring and extra copying give KG-W a ~10% overhead over
    // KG-N. The overhead sources are structural: survivors are copied
    // twice (nursery → observer → mature) and first writes to observed
    // objects cost an extra header store.
    let mut work = Vec::new();
    for kind in [CollectorKind::KgN, CollectorKind::KgW] {
        let (mut m, mut heap) = setup(kind);
        // A rolling population of written survivors.
        let mut standing = std::collections::VecDeque::new();
        for i in 0..100_000usize {
            let o = heap.alloc(&mut m, 0, 256).unwrap();
            if i % 2 == 0 {
                // Standing objects live for ~16 K allocations: several GC
                // periods, so they are present (and written) in the
                // observer when it is evacuated.
                standing.push_back((o, heap.new_root(Some(o))));
                if standing.len() > 8192 {
                    let (_, r) = standing.pop_front().unwrap();
                    heap.drop_root(r);
                }
            }
            let (s, _) = standing[i % standing.len()];
            if heap.is_live(s) {
                heap.write_data(&mut m, s, 0, 8).unwrap();
            }
        }
        let st = heap.stats();
        work.push((
            st.copied_minor_bytes + st.copied_observer_bytes,
            st.monitor_marks,
        ));
    }
    let (kg_n_copied, kg_n_marks) = work[0];
    let (kg_w_copied, kg_w_marks) = work[1];
    assert!(
        kg_w_copied > kg_n_copied,
        "KG-W copies more ({kg_w_copied} vs {kg_n_copied})"
    );
    assert_eq!(kg_n_marks, 0, "KG-N does no write monitoring");
    assert!(kg_w_marks > 0, "KG-W monitors observer writes");
}

#[test]
fn pcm_only_binds_young_allocation_to_socket_1() {
    let (mut m, mut heap) = setup(CollectorKind::PcmOnly);
    for _ in 0..4096 {
        heap.alloc(&mut m, 0, 512).unwrap();
    }
    m.flush_caches().unwrap();
    assert!(m.pcm_writes().bytes() > 0);
    // Nothing in this configuration writes to socket 0.
    assert_eq!(m.socket_writes(SocketId::DRAM), ByteSize::ZERO);
    let _ = ProcId(0);
}

#[test]
fn full_gc_reclaims_mature_lines_for_reuse() {
    let (mut m, mut heap) = setup(CollectorKind::KgN);
    // Promote a batch, drop it, and verify mature occupancy shrinks.
    let mut roots = Vec::new();
    for _ in 0..512 {
        let o = heap.alloc(&mut m, 0, 256).unwrap();
        roots.push(heap.new_root(Some(o)));
    }
    for _ in 0..2048 {
        heap.alloc(&mut m, 0, 512).unwrap();
    }
    let used_before = heap.old_gen_used();
    for r in roots {
        heap.drop_root(r);
    }
    heap.collect_full(&mut m).unwrap();
    assert!(heap.old_gen_used() < used_before);
}

#[test]
fn allocation_volume_is_tracked() {
    let (mut m, mut heap) = setup(CollectorKind::KgN);
    for _ in 0..100 {
        heap.alloc(&mut m, 2, 100).unwrap();
    }
    assert_eq!(heap.stats().allocated_objects, 100);
    // object_size(2, 100) = 16 + 16 + 100 → 136 rounded to 136.
    assert_eq!(heap.stats().allocated_bytes, 100 * 136);
}
