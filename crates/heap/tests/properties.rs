//! Property-based tests for the managed heap: reachability, liveness, and
//! accounting invariants under arbitrary mutator behaviour.

use hemu_heap::heap::RootSlot;
use hemu_heap::object::SpaceKind;
use hemu_heap::{CollectorKind, ManagedHeap, ObjectId};
use hemu_machine::{CtxId, Machine, MachineProfile};
use hemu_types::{ByteSize, SocketId};
use proptest::prelude::*;
use std::collections::HashSet;

/// A mutator action the property tests replay.
#[derive(Debug, Clone)]
enum Op {
    /// Allocate an object with `refs` slots and `data` payload bytes;
    /// root it if the flag is set.
    Alloc {
        refs: usize,
        data: usize,
        rooted: bool,
    },
    /// Store object *b* (by index into the allocation log) into slot of *a*.
    Link { a: usize, b: usize, slot: usize },
    /// Drop the i-th still-held root.
    DropRoot { i: usize },
    /// Write some payload bytes of a logged object.
    Mutate { a: usize },
    /// Force a full-heap collection.
    FullGc,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (0usize..4, 0usize..200, prop::bool::ANY)
            .prop_map(|(refs, data, rooted)| Op::Alloc { refs, data, rooted }),
        3 => (0usize..64, 0usize..64, 0usize..4).prop_map(|(a, b, slot)| Op::Link { a, b, slot }),
        2 => (0usize..32).prop_map(|i| Op::DropRoot { i }),
        2 => (0usize..64).prop_map(|a| Op::Mutate { a }),
        1 => Just(Op::FullGc),
    ]
}

fn setup(kind: CollectorKind) -> (Machine, ManagedHeap) {
    let mut m = Machine::new(MachineProfile::emulation());
    let socket = if kind == CollectorKind::PcmOnly {
        SocketId::PCM
    } else {
        SocketId::DRAM
    };
    let proc = m.add_process(socket);
    let cfg = kind.config(ByteSize::from_kib(256), ByteSize::from_mib(16));
    let heap = ManagedHeap::new(&mut m, proc, CtxId(0), cfg).unwrap();
    (m, heap)
}

/// Replays ops; returns the allocation log with root slots, and the heap.
fn replay(
    kind: CollectorKind,
    ops: &[Op],
) -> (Machine, ManagedHeap, Vec<ObjectId>, Vec<(usize, RootSlot)>) {
    let (mut m, mut heap) = setup(kind);
    let mut log: Vec<ObjectId> = Vec::new();
    let mut ref_counts: Vec<usize> = Vec::new();
    let mut data_sizes: Vec<usize> = Vec::new();
    let mut roots: Vec<(usize, RootSlot)> = Vec::new();
    for op in ops {
        match *op {
            Op::Alloc { refs, data, rooted } => {
                let o = heap.alloc(&mut m, refs, data).unwrap();
                log.push(o);
                ref_counts.push(refs);
                data_sizes.push(data);
                if rooted {
                    roots.push((log.len() - 1, heap.new_root(Some(o))));
                }
            }
            Op::Link { a, b, slot } => {
                if log.is_empty() {
                    continue;
                }
                let (ai, bi) = (a % log.len(), b % log.len());
                if ref_counts[ai] == 0 {
                    continue;
                }
                let (oa, ob) = (log[ai], log[bi]);
                if heap.is_live(oa) && heap.is_live(ob) {
                    heap.write_ref(&mut m, oa, slot % ref_counts[ai], Some(ob))
                        .unwrap();
                }
            }
            Op::DropRoot { i } => {
                if roots.is_empty() {
                    continue;
                }
                let (_, slot) = roots.swap_remove(i % roots.len());
                heap.drop_root(slot);
            }
            Op::Mutate { a } => {
                if log.is_empty() {
                    continue;
                }
                let i = a % log.len();
                let o = log[i];
                if heap.is_live(o) && data_sizes[i] > 0 {
                    heap.write_data(&mut m, o, 0, 1).unwrap();
                }
            }
            Op::FullGc => heap.collect_full(&mut m).unwrap(),
        }
    }
    (m, heap, log, roots)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Rooted objects are always live, under every collector configuration.
    #[test]
    fn rooted_objects_never_die(ops in prop::collection::vec(op_strategy(), 1..120)) {
        for kind in [CollectorKind::PcmOnly, CollectorKind::KgN, CollectorKind::KgW] {
            let (_m, heap, log, roots) = replay(kind, &ops);
            for (idx, _) in &roots {
                prop_assert!(heap.is_live(log[*idx]), "{kind:?}: rooted object died");
            }
        }
    }

    /// After a full collection, the live set is exactly the set reachable
    /// from roots (and boot objects): no floating garbage survives a full
    /// trace, and nothing reachable is lost.
    #[test]
    fn full_gc_retains_exactly_the_reachable_set(
        ops in prop::collection::vec(op_strategy(), 1..120)
    ) {
        let (mut m, mut heap, log, roots) = replay(CollectorKind::KgW, &ops);
        heap.collect_full(&mut m).unwrap();

        // Reference reachability over the shadow graph.
        let mut reachable: HashSet<ObjectId> = HashSet::new();
        let mut stack: Vec<ObjectId> = roots.iter().map(|(i, _)| log[*i]).collect();
        while let Some(o) = stack.pop() {
            if !reachable.insert(o) {
                continue;
            }
            // read_ref on live objects only; reachable ⊆ live if the heap
            // is correct, which is what we are checking — guard anyway to
            // fail with a clear message.
            prop_assert!(heap.is_live(o), "reachable object {o} was collected");
            let slots = heap.ref_slots(o);
            let info_refs: Vec<ObjectId> = (0..slots)
                .filter_map(|slot| heap.read_ref(&mut m, o, slot).ok().flatten())
                .collect();
            stack.extend(info_refs);
        }
        prop_assert_eq!(
            heap.live_objects(),
            reachable.len(),
            "live set diverges from the reachable set after full GC"
        );
    }

    /// Space accounting: every live object's space agrees with where its
    /// collector configuration can possibly put it.
    #[test]
    fn objects_live_only_in_plan_spaces(ops in prop::collection::vec(op_strategy(), 1..100)) {
        let (_m, heap, log, _roots) = replay(CollectorKind::KgN, &ops);
        for &o in &log {
            if heap.is_live(o) {
                let s = heap.space_of(o);
                // KG-N has no observer and no DRAM mature/large spaces.
                prop_assert!(
                    matches!(
                        s,
                        SpaceKind::Nursery | SpaceKind::MaturePcm | SpaceKind::LargePcm
                    ),
                    "KG-N object in unexpected space {s:?}"
                );
            }
        }
    }

    /// Determinism: replaying the same ops gives identical traffic.
    #[test]
    fn replay_is_deterministic(ops in prop::collection::vec(op_strategy(), 1..80)) {
        let (m1, h1, _, _) = replay(CollectorKind::KgW, &ops);
        let (m2, h2, _, _) = replay(CollectorKind::KgW, &ops);
        prop_assert_eq!(m1.pcm_writes(), m2.pcm_writes());
        prop_assert_eq!(m1.elapsed(), m2.elapsed());
        prop_assert_eq!(h1.stats().minor_gcs, h2.stats().minor_gcs);
    }
}

#[test]
fn read_ref_out_of_range_is_guarded() {
    // The proptest above probes slots 0..4 via read_ref; verify the API
    // panics (rather than returning garbage) when out of range.
    let (mut m, mut heap) = setup(CollectorKind::KgN);
    let o = heap.alloc(&mut m, 1, 8).unwrap();
    assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = heap.read_ref(&mut m, o, 3);
    }))
    .is_err());
}
