//! Seeded randomized tests for the managed heap.
//!
//! These port the highest-value properties from `properties.rs` (which
//! needs the vendored `proptest` crate and is gated behind the `proptest`
//! feature) to the in-tree deterministic PRNG, so they run on every plain
//! `cargo test` with zero external dependencies. Each case is generated
//! from a fixed seed and replays an arbitrary mutator history: allocate,
//! link, drop roots, mutate, force full collections.

use hemu_heap::heap::RootSlot;
use hemu_heap::{CollectorKind, ManagedHeap, ObjectId};
use hemu_machine::{CtxId, Machine, MachineProfile};
use hemu_types::{ByteSize, DeterministicRng, SocketId};
use std::collections::HashSet;

/// A mutator action the randomized tests replay.
#[derive(Debug, Clone)]
enum Op {
    Alloc {
        refs: usize,
        data: usize,
        rooted: bool,
    },
    Link {
        a: usize,
        b: usize,
        slot: usize,
    },
    DropRoot {
        i: usize,
    },
    Mutate {
        a: usize,
    },
    FullGc,
}

/// Draws one op with the same weighting as the proptest strategy
/// (5 alloc : 3 link : 2 drop-root : 2 mutate : 1 full-gc).
fn draw_op(rng: &mut DeterministicRng) -> Op {
    match rng.below(13) {
        0..=4 => Op::Alloc {
            refs: rng.below(4) as usize,
            data: rng.below(200) as usize,
            rooted: rng.chance(0.5),
        },
        5..=7 => Op::Link {
            a: rng.below(64) as usize,
            b: rng.below(64) as usize,
            slot: rng.below(4) as usize,
        },
        8..=9 => Op::DropRoot {
            i: rng.below(32) as usize,
        },
        10..=11 => Op::Mutate {
            a: rng.below(64) as usize,
        },
        _ => Op::FullGc,
    }
}

fn draw_ops(rng: &mut DeterministicRng, max_len: u64) -> Vec<Op> {
    let len = rng.range(1, max_len);
    (0..len).map(|_| draw_op(rng)).collect()
}

fn setup(kind: CollectorKind) -> (Machine, ManagedHeap) {
    let mut m = Machine::new(MachineProfile::emulation());
    let socket = if kind == CollectorKind::PcmOnly {
        SocketId::PCM
    } else {
        SocketId::DRAM
    };
    let proc = m.add_process(socket);
    let cfg = kind.config(ByteSize::from_kib(256), ByteSize::from_mib(16));
    let heap = ManagedHeap::new(&mut m, proc, CtxId(0), cfg).unwrap();
    (m, heap)
}

/// Replays ops; returns the machine, the heap, the allocation log, and the
/// surviving roots.
fn replay(
    kind: CollectorKind,
    ops: &[Op],
) -> (Machine, ManagedHeap, Vec<ObjectId>, Vec<(usize, RootSlot)>) {
    let (mut m, mut heap) = setup(kind);
    let mut log: Vec<ObjectId> = Vec::new();
    let mut ref_counts: Vec<usize> = Vec::new();
    let mut data_sizes: Vec<usize> = Vec::new();
    let mut roots: Vec<(usize, RootSlot)> = Vec::new();
    for op in ops {
        match *op {
            Op::Alloc { refs, data, rooted } => {
                let o = heap.alloc(&mut m, refs, data).unwrap();
                log.push(o);
                ref_counts.push(refs);
                data_sizes.push(data);
                if rooted {
                    roots.push((log.len() - 1, heap.new_root(Some(o))));
                }
            }
            Op::Link { a, b, slot } => {
                if log.is_empty() {
                    continue;
                }
                let (ai, bi) = (a % log.len(), b % log.len());
                if ref_counts[ai] == 0 {
                    continue;
                }
                let (oa, ob) = (log[ai], log[bi]);
                if heap.is_live(oa) && heap.is_live(ob) {
                    heap.write_ref(&mut m, oa, slot % ref_counts[ai], Some(ob))
                        .unwrap();
                }
            }
            Op::DropRoot { i } => {
                if roots.is_empty() {
                    continue;
                }
                let (_, slot) = roots.swap_remove(i % roots.len());
                heap.drop_root(slot);
            }
            Op::Mutate { a } => {
                if log.is_empty() {
                    continue;
                }
                let i = a % log.len();
                let o = log[i];
                if heap.is_live(o) && data_sizes[i] > 0 {
                    heap.write_data(&mut m, o, 0, 1).unwrap();
                }
            }
            Op::FullGc => heap.collect_full(&mut m).unwrap(),
        }
    }
    (m, heap, log, roots)
}

/// Rooted objects are always live, under every collector configuration.
#[test]
fn rooted_objects_never_die() {
    let mut rng = DeterministicRng::seeded(0x6865_6170_0001);
    for case in 0..24 {
        let ops = draw_ops(&mut rng, 120);
        for kind in [
            CollectorKind::PcmOnly,
            CollectorKind::KgN,
            CollectorKind::KgW,
        ] {
            let (_m, heap, log, roots) = replay(kind, &ops);
            for (idx, _) in &roots {
                assert!(
                    heap.is_live(log[*idx]),
                    "case {case}, {kind:?}: rooted object died"
                );
            }
        }
    }
}

/// After a full collection, the live set is exactly the set reachable from
/// roots (and boot objects): no floating garbage survives a full trace, and
/// nothing reachable is lost.
#[test]
fn full_gc_retains_exactly_the_reachable_set() {
    let mut rng = DeterministicRng::seeded(0x6865_6170_0002);
    for case in 0..24 {
        let ops = draw_ops(&mut rng, 120);
        let (mut m, mut heap, log, roots) = replay(CollectorKind::KgW, &ops);
        heap.collect_full(&mut m).unwrap();

        // Reference reachability over the shadow graph.
        let mut reachable: HashSet<ObjectId> = HashSet::new();
        let mut stack: Vec<ObjectId> = roots.iter().map(|(i, _)| log[*i]).collect();
        while let Some(o) = stack.pop() {
            if !reachable.insert(o) {
                continue;
            }
            assert!(
                heap.is_live(o),
                "case {case}: reachable object {o} was collected"
            );
            let slots = heap.ref_slots(o);
            let refs: Vec<ObjectId> = (0..slots)
                .filter_map(|slot| heap.read_ref(&mut m, o, slot).ok().flatten())
                .collect();
            stack.extend(refs);
        }
        assert_eq!(
            heap.live_objects(),
            reachable.len(),
            "case {case}: live set diverges from the reachable set after full GC"
        );
    }
}

/// GC pause accounting never goes backwards and is consistent with the
/// collection counters: collections imply pause cycles and vice versa.
#[test]
fn pause_accounting_tracks_collections() {
    let mut rng = DeterministicRng::seeded(0x6865_6170_0003);
    for case in 0..16 {
        let ops = draw_ops(&mut rng, 150);
        let (_m, heap, _, _) = replay(CollectorKind::KgW, &ops);
        let s = heap.stats();
        assert_eq!(
            s.total_gcs() > 0,
            s.pause_cycles > 0,
            "case {case}: {} GCs but {} pause cycles",
            s.total_gcs(),
            s.pause_cycles
        );
    }
}

/// Determinism: replaying the same ops gives identical traffic, timing, and
/// GC behaviour.
#[test]
fn replay_is_deterministic() {
    let mut rng = DeterministicRng::seeded(0x6865_6170_0004);
    for _case in 0..12 {
        let ops = draw_ops(&mut rng, 80);
        let (m1, h1, _, _) = replay(CollectorKind::KgW, &ops);
        let (m2, h2, _, _) = replay(CollectorKind::KgW, &ops);
        assert_eq!(m1.pcm_writes(), m2.pcm_writes());
        assert_eq!(m1.elapsed(), m2.elapsed());
        assert_eq!(h1.stats().minor_gcs, h2.stats().minor_gcs);
        assert_eq!(h1.stats().pause_cycles, h2.stats().pause_cycles);
    }
}
