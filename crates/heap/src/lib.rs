//! The managed-heap runtime: the paper's software contribution.
//!
//! This crate reproduces, against the simulated machine, the heap
//! organization of §III of the paper:
//!
//! * virtual heap memory split into a **PCM-backed portion** and a
//!   **DRAM-backed portion**, each managed by its own free list of 4 MiB
//!   chunks ([`chunks::ChunkManager`], FreeList-Lo / FreeList-Hi);
//! * chunks stay mapped once touched and are recycled by owner list —
//!   the design that avoids unmap/remap churn (ablation:
//!   [`chunks::ChunkPolicy::Monolithic`]);
//! * MMTk-style **spaces**: a bump-allocated copying nursery at the top of
//!   virtual memory (enabling the fast boundary write barrier), an optional
//!   observer space next to it, Immix-style mark-region mature spaces, large
//!   object spaces and metadata spaces on either socket ([`space`]);
//! * the **Kingsguard** write-rationing collector family ([`plan`]):
//!   PCM-Only (generational Immix with every space on PCM), KG-N, KG-B,
//!   KG-N+LOO, KG-B+LOO, KG-W, KG-W−LOO and KG-W−MDO;
//! * a mutator-facing object API with zero-initialising allocation, read and
//!   write barriers, and root registration ([`heap::ManagedHeap`]).
//!
//! All allocation, mutation, copying, marking and barrier work issues real
//! accesses to the [`hemu_machine::Machine`], so every store is subject to
//! cache filtering before it can become a PCM write — the property the
//! paper's emulation methodology is built on.

#![warn(missing_docs)]

pub mod chunks;
pub mod gc;
pub mod heap;
pub mod layout;
pub mod object;
pub mod plan;
pub mod space;
pub mod stats;

pub use heap::ManagedHeap;
pub use object::ObjectId;
pub use plan::{CollectorKind, GcConfig};
pub use stats::GcStats;
