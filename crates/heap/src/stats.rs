//! Garbage collection and mutator statistics.

use hemu_obs::json::{JsonObject, ToJson};
use hemu_types::ByteSize;
use std::fmt;

/// Counters accumulated by one managed heap.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcStats {
    /// Nursery (minor) collections.
    pub minor_gcs: u64,
    /// Minor collections that also evacuated the observer space.
    pub observer_gcs: u64,
    /// Full-heap (mature) collections.
    pub full_gcs: u64,
    /// Virtual cycles spent inside stop-the-world collection pauses.
    pub pause_cycles: u64,
    /// Total bytes allocated by the mutator (including zeroing).
    pub allocated_bytes: u64,
    /// Objects allocated.
    pub allocated_objects: u64,
    /// Bytes allocated directly into large object spaces.
    pub large_allocated_bytes: u64,
    /// Large objects that the LOO heuristic routed through the nursery.
    pub loo_nursery_large: u64,
    /// Bytes copied by minor collections (nursery → survivor target).
    pub copied_minor_bytes: u64,
    /// Bytes copied out of the observer space.
    pub copied_observer_bytes: u64,
    /// Observer objects found written (promoted to DRAM mature).
    pub promoted_dram_objects: u64,
    /// Observer objects found unwritten (promoted to PCM mature).
    pub promoted_pcm_objects: u64,
    /// Large objects copied from PCM to DRAM during mature collections.
    pub large_rescued: u64,
    /// Object mark-byte writes performed by full collections.
    pub mark_writes: u64,
    /// Remembered-set entries recorded by the write barrier.
    pub remset_entries: u64,
    /// First-write monitoring bits set in the observer space.
    pub monitor_marks: u64,
}

impl GcStats {
    /// Total bytes the mutator allocated.
    pub fn allocated(&self) -> ByteSize {
        ByteSize::new(self.allocated_bytes)
    }

    /// Total collections of any kind.
    pub fn total_gcs(&self) -> u64 {
        self.minor_gcs + self.full_gcs
    }
}

impl ToJson for GcStats {
    fn write_json(&self, out: &mut String) {
        let mut obj = JsonObject::new(out);
        obj.field("minor_gcs", &self.minor_gcs)
            .field("observer_gcs", &self.observer_gcs)
            .field("full_gcs", &self.full_gcs)
            .field("pause_cycles", &self.pause_cycles)
            .field("allocated_bytes", &self.allocated_bytes)
            .field("allocated_objects", &self.allocated_objects)
            .field("large_allocated_bytes", &self.large_allocated_bytes)
            .field("loo_nursery_large", &self.loo_nursery_large)
            .field("copied_minor_bytes", &self.copied_minor_bytes)
            .field("copied_observer_bytes", &self.copied_observer_bytes)
            .field("promoted_dram_objects", &self.promoted_dram_objects)
            .field("promoted_pcm_objects", &self.promoted_pcm_objects)
            .field("large_rescued", &self.large_rescued)
            .field("mark_writes", &self.mark_writes)
            .field("remset_entries", &self.remset_entries)
            .field("monitor_marks", &self.monitor_marks);
        obj.finish();
    }
}

impl fmt::Display for GcStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} allocated in {} objects; {} minor ({} w/ observer), {} full GCs; \
             {} copied young, {}/{} promoted DRAM/PCM",
            self.allocated(),
            self.allocated_objects,
            self.minor_gcs,
            self.observer_gcs,
            self.full_gcs,
            ByteSize::new(self.copied_minor_bytes),
            self.promoted_dram_objects,
            self.promoted_pcm_objects,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_combine_minor_and_full() {
        let s = GcStats {
            minor_gcs: 3,
            full_gcs: 2,
            ..Default::default()
        };
        assert_eq!(s.total_gcs(), 5);
    }

    #[test]
    fn display_mentions_key_numbers() {
        let s = GcStats {
            allocated_bytes: 1024,
            minor_gcs: 7,
            ..Default::default()
        };
        let text = format!("{s}");
        assert!(text.contains("7 minor"));
        assert!(text.contains("1.00 KiB"));
    }

    #[test]
    fn json_includes_pause_cycles() {
        let s = GcStats {
            pause_cycles: 1234,
            ..Default::default()
        };
        assert!(s.to_json().contains("\"pause_cycles\":1234"));
    }
}
