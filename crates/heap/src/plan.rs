//! Collector plans: the Kingsguard family and the PCM-Only baseline.
//!
//! Seven write-rationing configurations plus the reference PCM-Only system,
//! exactly the set evaluated in the paper:
//!
//! | Plan        | Nursery | Observer | LOO | MDO | Promotion target |
//! |-------------|---------|----------|-----|-----|------------------|
//! | PCM-Only    | on PCM  | —        |  —  |  —  | PCM mature       |
//! | KG-N        | DRAM    | —        |  no |  no | PCM mature       |
//! | KG-B        | DRAM ×3 | —        |  no |  no | PCM mature       |
//! | KG-N+LOO    | DRAM    | —        | yes |  no | PCM mature       |
//! | KG-B+LOO    | DRAM ×3 | —        | yes |  no | PCM mature       |
//! | KG-W        | DRAM    | 2×nursery| yes | yes | observer, then by writes |
//! | KG-W−LOO    | DRAM    | 2×nursery|  no | yes | observer, then by writes |
//! | KG-W−MDO    | DRAM    | 2×nursery| yes |  no | observer, then by writes |

use crate::chunks::SideSockets;
use hemu_types::{ByteSize, SocketId};
use std::fmt;

/// The collector configurations evaluated on the platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollectorKind {
    /// Baseline generational Immix with every space bound to the PCM
    /// socket (the reference system of §V).
    PcmOnly,
    /// Kingsguard-nursery: nursery in DRAM, survivors promoted to PCM.
    KgN,
    /// KG-N with a 3× bigger nursery (12 MB for DaCapo, 96 MB for GraphChi).
    KgB,
    /// KG-N plus the Large Object Optimization.
    KgNLoo,
    /// KG-B plus the Large Object Optimization.
    KgBLoo,
    /// Kingsguard-writers: nursery + observer in DRAM; survivors segregated
    /// by observed writes; LOO and MDO enabled.
    KgW,
    /// KG-W without the Large Object Optimization.
    KgWMinusLoo,
    /// KG-W without the MetaData Optimization.
    KgWMinusMdo,
}

impl CollectorKind {
    /// All eight configurations, in the paper's presentation order.
    pub const ALL: [CollectorKind; 8] = [
        CollectorKind::PcmOnly,
        CollectorKind::KgN,
        CollectorKind::KgB,
        CollectorKind::KgNLoo,
        CollectorKind::KgBLoo,
        CollectorKind::KgW,
        CollectorKind::KgWMinusLoo,
        CollectorKind::KgWMinusMdo,
    ];

    /// The paper's name for this configuration.
    pub fn name(self) -> &'static str {
        match self {
            CollectorKind::PcmOnly => "PCM-Only",
            CollectorKind::KgN => "KG-N",
            CollectorKind::KgB => "KG-B",
            CollectorKind::KgNLoo => "KG-N+LOO",
            CollectorKind::KgBLoo => "KG-B+LOO",
            CollectorKind::KgW => "KG-W",
            CollectorKind::KgWMinusLoo => "KG-W-LOO",
            CollectorKind::KgWMinusMdo => "KG-W-MDO",
        }
    }

    /// Builds the full configuration given the workload's base nursery size
    /// (4 MiB for DaCapo/Pjbb, 32 MiB for GraphChi) and heap budget.
    pub fn config(self, base_nursery: ByteSize, heap_size: ByteSize) -> GcConfig {
        let big = ByteSize::new(base_nursery.bytes() * 3);
        let (nursery, observer, loo, mdo, pcm_only) = match self {
            CollectorKind::PcmOnly => (base_nursery, None, false, false, true),
            CollectorKind::KgN => (base_nursery, None, false, false, false),
            CollectorKind::KgB => (big, None, false, false, false),
            CollectorKind::KgNLoo => (base_nursery, None, true, false, false),
            CollectorKind::KgBLoo => (big, None, true, false, false),
            CollectorKind::KgW => (
                base_nursery,
                Some(ByteSize::new(base_nursery.bytes() * 2)),
                true,
                true,
                false,
            ),
            CollectorKind::KgWMinusLoo => (
                base_nursery,
                Some(ByteSize::new(base_nursery.bytes() * 2)),
                false,
                true,
                false,
            ),
            CollectorKind::KgWMinusMdo => (
                base_nursery,
                Some(ByteSize::new(base_nursery.bytes() * 2)),
                true,
                false,
                false,
            ),
        };
        GcConfig {
            kind: self,
            nursery,
            observer,
            loo,
            mdo,
            pcm_only,
            heap_size,
            loo_nursery_max: ByteSize::from_kib(512),
        }
    }
}

impl fmt::Display for CollectorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl hemu_obs::ToJson for CollectorKind {
    fn write_json(&self, out: &mut String) {
        hemu_obs::json::push_json_str(out, self.name());
    }
}

/// A fully resolved garbage collector configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcConfig {
    /// Which named configuration this is.
    pub kind: CollectorKind,
    /// Nursery reservation size.
    pub nursery: ByteSize,
    /// Observer reservation size (KG-W family only).
    pub observer: Option<ByteSize>,
    /// Large Object Optimization: large objects below
    /// [`GcConfig::loo_nursery_max`] are allocated in the nursery to give
    /// them time to die; the rest go straight to the PCM large space.
    pub loo: bool,
    /// MetaData Optimization: mark bytes of PCM-space objects are placed in
    /// a DRAM metadata space, eliminating collector marking writes to PCM.
    pub mdo: bool,
    /// Reference setup: bind every space (and the boot image) to socket 1.
    pub pcm_only: bool,
    /// Full-heap collection budget: a mature collection triggers when old
    /// generation occupancy exceeds this.
    pub heap_size: ByteSize,
    /// LOO heuristic threshold: large objects up to this size start in the
    /// nursery.
    pub loo_nursery_max: ByteSize,
}

impl GcConfig {
    /// The physical sockets backing the two chunk free lists.
    pub fn side_sockets(&self) -> SideSockets {
        if self.pcm_only {
            SideSockets::pcm_only()
        } else {
            SideSockets::hybrid()
        }
    }

    /// Socket holding the nursery (and observer) reservation.
    pub fn young_socket(&self) -> SocketId {
        if self.pcm_only {
            SocketId::PCM
        } else {
            SocketId::DRAM
        }
    }

    /// Socket holding the boot image. "Except for a system with only PCM,
    /// we always place the boot image in DRAM" (§III.B).
    pub fn boot_socket(&self) -> SocketId {
        self.young_socket()
    }

    /// Whether this plan uses an observer space (the KG-W family).
    pub fn has_observer(&self) -> bool {
        self.observer.is_some()
    }

    /// Renders this plan's row set of Table I: each space and the sockets
    /// it occupies, `(name, on_s0, on_s1)`.
    pub fn space_map(&self) -> Vec<(&'static str, bool, bool)> {
        if self.pcm_only {
            return vec![
                ("Nursery", false, true),
                ("Observer", false, false),
                ("Mature", false, true),
                ("Large", false, true),
                ("Metadata", false, true),
            ];
        }
        let kgw = self.has_observer();
        vec![
            ("Nursery", true, false),
            ("Observer", kgw, false),
            // KG-W keeps written survivors in a DRAM mature/large space.
            ("Mature", kgw, true),
            ("Large", kgw, true),
            // MDO puts PCM objects' mark bytes in DRAM; PCM-side line marks
            // stay with their space.
            ("Metadata", self.mdo, true),
        ]
    }
}

/// Formats Table I (space-to-socket mapping) for a set of plans.
pub fn render_table1(configs: &[GcConfig]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = write!(out, "{:<10}", "Space");
    for c in configs {
        let _ = write!(out, " | {:^11}", c.kind.name());
    }
    let _ = writeln!(out);
    let _ = write!(out, "{:<10}", "");
    for _ in configs {
        let _ = write!(out, " | {:>5} {:>5}", "S0", "S1");
    }
    let _ = writeln!(out);
    for row in 0..5 {
        let name = ["Nursery", "Observer", "Mature", "Large", "Metadata"][row];
        let _ = write!(out, "{name:<10}");
        for c in configs {
            let map = c.space_map();
            let (_, s0, s1) = map[row];
            let _ = write!(
                out,
                " | {:>5} {:>5}",
                if s0 { "Y" } else { "-" },
                if s1 { "Y" } else { "-" }
            );
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const N4: ByteSize = ByteSize::new(4 * 1024 * 1024);
    const H100: ByteSize = ByteSize::new(100 * 1024 * 1024);

    #[test]
    fn kg_b_nursery_is_three_times_base() {
        // 4 MB → 12 MB (DaCapo) and 32 MB → 96 MB (GraphChi), as in §IV.
        let c = CollectorKind::KgB.config(N4, H100);
        assert_eq!(c.nursery.bytes(), 12 * 1024 * 1024);
        let g = CollectorKind::KgB.config(ByteSize::from_mib(32), H100);
        assert_eq!(g.nursery.bytes(), 96 * 1024 * 1024);
    }

    #[test]
    fn kg_w_observer_is_twice_nursery() {
        let c = CollectorKind::KgW.config(N4, H100);
        assert_eq!(c.observer.unwrap().bytes(), 2 * c.nursery.bytes());
    }

    #[test]
    fn kg_w_variants_toggle_exactly_one_optimization() {
        let w = CollectorKind::KgW.config(N4, H100);
        let no_loo = CollectorKind::KgWMinusLoo.config(N4, H100);
        let no_mdo = CollectorKind::KgWMinusMdo.config(N4, H100);
        assert!(w.loo && w.mdo);
        assert!(!no_loo.loo && no_loo.mdo);
        assert!(no_mdo.loo && !no_mdo.mdo);
    }

    #[test]
    fn table1_matches_paper_for_kg_n() {
        let c = CollectorKind::KgN.config(N4, H100);
        let map = c.space_map();
        assert_eq!(map[0], ("Nursery", true, false));
        assert_eq!(map[1], ("Observer", false, false));
        assert_eq!(map[2], ("Mature", false, true));
        assert_eq!(map[3], ("Large", false, true));
        assert_eq!(map[4], ("Metadata", false, true));
    }

    #[test]
    fn table1_matches_paper_for_kg_w_and_kg_w_mdo() {
        let w = CollectorKind::KgW.config(N4, H100).space_map();
        assert_eq!(w[1], ("Observer", true, false));
        assert_eq!(w[2], ("Mature", true, true));
        assert_eq!(w[4], ("Metadata", true, true));
        let mdo = CollectorKind::KgWMinusMdo.config(N4, H100).space_map();
        assert_eq!(
            mdo[4],
            ("Metadata", false, true),
            "no DRAM metadata space without MDO"
        );
        assert_eq!(mdo[1], ("Observer", true, false));
    }

    #[test]
    fn pcm_only_binds_everything_to_s1() {
        let c = CollectorKind::PcmOnly.config(N4, H100);
        assert_eq!(c.young_socket(), SocketId::PCM);
        assert_eq!(c.boot_socket(), SocketId::PCM);
        for (_, s0, s1) in c.space_map() {
            assert!(!s0);
            let _ = s1;
        }
    }

    #[test]
    fn render_table1_contains_all_plans() {
        let configs: Vec<_> = [
            CollectorKind::KgN,
            CollectorKind::KgW,
            CollectorKind::KgWMinusMdo,
        ]
        .iter()
        .map(|k| k.config(N4, H100))
        .collect();
        let s = render_table1(&configs);
        assert!(s.contains("KG-N") && s.contains("KG-W-MDO"));
        assert!(s.contains("Nursery") && s.contains("Metadata"));
    }

    #[test]
    fn all_eight_plans_have_distinct_names() {
        let mut names: Vec<_> = CollectorKind::ALL.iter().map(|k| k.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 8);
    }
}
