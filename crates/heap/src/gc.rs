//! The collection algorithms: minor (nursery / young) collections and
//! full-heap (mature) collections, shared by every plan.
//!
//! All tracing, copying and mark bookkeeping issues machine accesses, so
//! collector-induced writes (object copying, forwarding words, mark bytes)
//! are measured exactly like mutator writes — this is how the paper's
//! KG-W−MDO experiment can observe collector marking writes landing on PCM.

use crate::heap::ManagedHeap;
use crate::object::{ObjectId, SpaceKind, HEADER_SIZE, LARGE_THRESHOLD};
use hemu_machine::Machine;
use hemu_obs::{GcKind, TraceEvent};
use hemu_types::{Cycles, MemoryAccess, Result, SpaceTag, WriteCause, WriteTag, WORD};

/// Stamps the start of a collection pause: emits a [`TraceEvent::GcStart`]
/// and returns the pause's start time on the collecting context's clock.
fn pause_begin(
    heap: &ManagedHeap,
    machine: &Machine,
    kind: GcKind,
    reason: &'static str,
) -> Cycles {
    let t0 = machine.clock(heap.ctx).now();
    machine
        .obs()
        .tracer
        .record(t0, TraceEvent::GcStart { kind, reason });
    t0
}

/// Stamps the end of a collection pause: accumulates `GcStats::pause_cycles`,
/// feeds the `gc.pause_cycles` histogram, and emits a [`TraceEvent::GcEnd`].
fn pause_end(heap: &mut ManagedHeap, machine: &Machine, kind: GcKind, t0: Cycles) {
    let t1 = machine.clock(heap.ctx).now();
    let pause = t1.raw() - t0.raw();
    heap.stats.pause_cycles += pause;
    machine
        .obs()
        .metrics
        .histogram("gc.pause_cycles")
        .observe(pause);
    machine.obs().tracer.record(
        t1,
        TraceEvent::GcEnd {
            kind,
            pause_cycles: pause,
        },
    );
}

/// Re-logs mature→young edges manufactured by evacuation.
///
/// Promotion can create old→young pointers that never crossed the mutator's
/// write barrier: an observer source is promoted to the mature space in the
/// same collection that moved its nursery target into the observer space,
/// and a full collection clears every logged bit outright. Any such edge
/// must be re-remembered, or the next observer-collecting minor GC would
/// treat the (reachable) young target as garbage and a later scan of the
/// stale reference would fault. Pure collector bookkeeping — the mutator's
/// barrier already paid for these entries when the refs were stored.
fn rebuild_remsets(heap: &mut ManagedHeap) {
    let candidates: Vec<ObjectId> = heap.table.iter_live().collect();
    for src in candidates {
        let (space, logged, refs) = {
            let i = heap.table.get(src);
            (i.space, i.logged, i.refs.clone())
        };
        if space.is_young() || logged {
            continue;
        }
        let has_young_ref = refs
            .into_iter()
            .flatten()
            .any(|t| heap.table.is_live(t) && heap.table.get(t).space.is_young());
        if has_young_ref {
            heap.table.get_mut(src).logged = true;
            heap.remset_old.push(src);
        }
    }
}

/// Where an evacuated object is copied to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dest {
    Observer,
    MatureDram,
    MaturePcm,
    LargeDram,
    LargePcm,
}

impl Dest {
    fn space(self) -> SpaceKind {
        match self {
            Dest::Observer => SpaceKind::Observer,
            Dest::MatureDram => SpaceKind::MatureDram,
            Dest::MaturePcm => SpaceKind::MaturePcm,
            Dest::LargeDram => SpaceKind::LargeDram,
            Dest::LargePcm => SpaceKind::LargePcm,
        }
    }
}

/// Bytes the collector reads when scanning an object for references.
fn scan_bytes(size: u32, ref_count: u16) -> u32 {
    (HEADER_SIZE + ref_count as u32 * WORD as u32).min(size)
}

/// Destination for an observer survivor: segregation by observed writes is
/// the heart of Kingsguard-writers.
fn observer_dest(written: bool, size: u32) -> Dest {
    match (written, size >= LARGE_THRESHOLD) {
        (true, true) => Dest::LargeDram,
        (true, false) => Dest::MatureDram,
        (false, true) => Dest::LargePcm,
        (false, false) => Dest::MaturePcm,
    }
}

/// Destination for a nursery survivor.
fn nursery_dest(heap: &ManagedHeap, size: u32) -> Dest {
    if heap.config.has_observer() {
        Dest::Observer
    } else if size >= LARGE_THRESHOLD {
        Dest::LargePcm
    } else {
        Dest::MaturePcm
    }
}

/// Copies one live object to `dest`: read at the old location, write at the
/// new one, plus a forwarding-pointer store in the old header.
fn evacuate(heap: &mut ManagedHeap, machine: &mut Machine, id: ObjectId, dest: Dest) -> Result<()> {
    let (old_addr, size) = {
        let info = heap.table.get(id);
        (info.addr, info.size)
    };
    let new_addr = match dest {
        Dest::Observer => heap
            .observer
            .as_mut()
            .expect("evacuating to a plan without an observer space")
            .alloc(size)
            .expect("observer space overflow: collection scheduling bug"),
        Dest::MatureDram => heap.mature_dram.alloc(machine, &mut heap.chunks, size)?,
        Dest::MaturePcm => heap.mature_pcm.alloc(machine, &mut heap.chunks, size)?,
        Dest::LargeDram => heap.los_dram.alloc(machine, &mut heap.chunks, size)?,
        Dest::LargePcm => heap.los_pcm.alloc(machine, &mut heap.chunks, size)?,
    };

    let (ctx, proc) = (heap.ctx, heap.proc);
    let old_space = heap.table.get(id).space;
    // Copies out of a young space are the nursery-evacuation write stream;
    // everything else (rescue, compaction) is a mature copy.
    let copy_cause = if old_space.is_young() {
        WriteCause::NurseryEvac
    } else {
        WriteCause::MatureCopy
    };
    machine.submit(ctx, proc, MemoryAccess::read(old_addr, size))?;
    machine.set_write_tag(WriteTag::new(copy_cause, dest.space().tag()));
    machine.submit(ctx, proc, MemoryAccess::write(new_addr, size))?;
    // Forwarding pointer in the old header, read by other tracers.
    machine.set_write_tag(WriteTag::new(WriteCause::Metadata, old_space.tag()));
    machine.submit(ctx, proc, MemoryAccess::write(old_addr, WORD as u32))?;
    // Per-object copy work: size check, forwarding CAS, table update.
    machine.compute(ctx, Cycles::new(60 + size as u64 / 4));
    // Evacuating an observed object additionally consults and resets the
    // write-monitoring state — the bookkeeping behind KG-W's overhead (§V).
    if heap.table.get(id).space == SpaceKind::Observer {
        machine.compute(ctx, Cycles::new(600));
    }

    let space = dest.space();
    let needs_meta = {
        let info = heap.table.get_mut(id);
        info.addr = new_addr;
        info.space = space;
        // Entering the observer (re)starts write observation; leaving any
        // young space ends it.
        info.written = false;
        info.meta.is_none() && !space.is_young()
    };
    if needs_meta {
        let slot = heap.meta_slot_for(machine, space)?;
        heap.table.get_mut(id).meta = Some(slot);
    }
    Ok(())
}

/// Scans an object's header and reference slots (collector read traffic)
/// and returns its outgoing references.
fn scan(heap: &mut ManagedHeap, machine: &mut Machine, id: ObjectId) -> Result<Vec<ObjectId>> {
    let (addr, size, ref_count, refs) = {
        let info = heap.table.get(id);
        (info.addr, info.size, info.ref_count, info.refs.clone())
    };
    machine.submit(
        heap.ctx,
        heap.proc,
        MemoryAccess::read(addr, scan_bytes(size, ref_count)),
    )?;
    // Per-object trace work: type lookup and reference-map decoding.
    machine.compute(heap.ctx, Cycles::new(30 + 4 * ref_count as u64));
    Ok(refs.into_iter().flatten().collect())
}

/// A minor collection: evacuates the nursery (and, when it is full, the
/// observer space), seeded from roots and the remembered sets.
pub(crate) fn minor_gc(
    heap: &mut ManagedHeap,
    machine: &mut Machine,
    reason: &'static str,
) -> Result<()> {
    heap.stats.minor_gcs += 1;
    heap.minor_since_full += 1;
    let collect_observer = heap.config.has_observer()
        && heap
            .observer
            .as_ref()
            .map(|o| o.available() < heap.nursery.used())
            .unwrap_or(false);
    if collect_observer {
        heap.stats.observer_gcs += 1;
    }
    let kind = if collect_observer {
        GcKind::MinorObserver
    } else {
        GcKind::Minor
    };
    // A GC pause is a safe point: deferred mutator traffic flushes here so
    // the pause clock (and everything the collector reads) is exact.
    machine.sync_submissions()?;
    let pause_t0 = pause_begin(heap, machine, kind, reason);
    let spans = machine.spans();
    spans.begin(
        if collect_observer {
            "minor_observer"
        } else {
            "minor"
        },
        "gc",
        pause_t0,
    );
    // Stop-the-world pause setup: stack and register root scan.
    machine.compute(heap.ctx, Cycles::new(30_000));
    spans.begin("trace", "gc", machine.clock(heap.ctx).now());

    let in_evacuated =
        |s: SpaceKind| s == SpaceKind::Nursery || (collect_observer && s == SpaceKind::Observer);

    // --- Mark ---
    let mut gray: Vec<ObjectId> = Vec::new();
    let mut survivors: Vec<ObjectId> = Vec::new();
    let mark = |heap: &mut ManagedHeap,
                id: ObjectId,
                gray: &mut Vec<ObjectId>,
                survivors: &mut Vec<ObjectId>| {
        let info = heap.table.get_mut(id);
        if in_evacuated(info.space) && !info.marked {
            info.marked = true;
            gray.push(id);
            survivors.push(id);
        }
    };

    for root in heap.roots.clone().into_iter().flatten() {
        mark(heap, root, &mut gray, &mut survivors);
    }
    // Remembered sets: re-scan each remembered source object.
    let mut remembered: Vec<ObjectId> = heap.remset_old.clone();
    remembered.extend(heap.remset_obs.iter().copied());
    for src in remembered {
        if !heap.table.is_live(src) || in_evacuated(heap.table.get(src).space) {
            continue;
        }
        for t in scan(heap, machine, src)? {
            mark(heap, t, &mut gray, &mut survivors);
        }
    }
    while let Some(o) = gray.pop() {
        for t in scan(heap, machine, o)? {
            mark(heap, t, &mut gray, &mut survivors);
        }
    }
    spans.end(machine.clock(heap.ctx).now());
    spans.begin("evacuate", "gc", machine.clock(heap.ctx).now());

    // --- Evacuate: observer first, then the nursery into the freed space.
    if collect_observer {
        for &id in &survivors {
            if heap.table.get(id).space == SpaceKind::Observer {
                let (written, size) = {
                    let i = heap.table.get(id);
                    (i.written, i.size)
                };
                let dest = observer_dest(written, size);
                if written {
                    heap.stats.promoted_dram_objects += 1;
                } else {
                    heap.stats.promoted_pcm_objects += 1;
                }
                heap.stats.copied_observer_bytes += size as u64;
                evacuate(heap, machine, id, dest)?;
            }
        }
        if let Some(obs) = heap.observer.as_mut() {
            obs.reset();
        }
    }
    for &id in &survivors {
        if heap.table.get(id).space == SpaceKind::Nursery {
            let size = heap.table.get(id).size;
            let dest = nursery_dest(heap, size);
            heap.stats.copied_minor_bytes += size as u64;
            evacuate(heap, machine, id, dest)?;
        }
    }
    spans.end(machine.clock(heap.ctx).now());
    spans.begin("sweep", "gc", machine.clock(heap.ctx).now());

    // --- Sweep the evacuated spaces ---
    let dead: Vec<ObjectId> = heap
        .table
        .iter_live()
        .filter(|&id| {
            let i = heap.table.get(id);
            in_evacuated(i.space) && !i.marked
        })
        .collect();
    for d in dead {
        heap.table.remove(d);
    }
    heap.nursery.reset();
    for &id in &survivors {
        heap.table.get_mut(id).marked = false;
    }

    // --- Remembered set maintenance ---
    for &src in &heap.remset_obs.clone() {
        if heap.table.is_live(src) {
            heap.table.get_mut(src).logged = false;
        }
    }
    heap.remset_obs.clear();
    if collect_observer {
        for &src in &heap.remset_old.clone() {
            if heap.table.is_live(src) {
                heap.table.get_mut(src).logged = false;
            }
        }
        heap.remset_old.clear();
        rebuild_remsets(heap);
    }
    // Collector traffic flushes before the pause closes, so the recorded
    // pause covers it in full.
    machine.sync_submissions()?;
    spans.end(machine.clock(heap.ctx).now());
    pause_end(heap, machine, kind, pause_t0);
    spans.end(machine.clock(heap.ctx).now());
    Ok(())
}

/// A full-heap (mature) collection: traces the whole object graph, writes
/// mark bytes, reclaims mature lines and dead large objects, evacuates the
/// young generation, and rescues written PCM large objects to DRAM.
pub(crate) fn full_gc(
    heap: &mut ManagedHeap,
    machine: &mut Machine,
    reason: &'static str,
) -> Result<()> {
    heap.stats.full_gcs += 1;
    heap.minor_since_full = 0;
    machine.sync_submissions()?;
    let pause_t0 = pause_begin(heap, machine, GcKind::Full, reason);
    let spans = machine.spans();
    spans.begin("full", "gc", pause_t0);
    machine.compute(heap.ctx, Cycles::new(120_000));
    spans.begin("trace", "gc", machine.clock(heap.ctx).now());

    // --- Mark the whole graph ---
    let mut gray: Vec<ObjectId> = Vec::new();
    let mut live: Vec<ObjectId> = Vec::new();
    let mark = |heap: &mut ManagedHeap,
                id: ObjectId,
                gray: &mut Vec<ObjectId>,
                live: &mut Vec<ObjectId>| {
        let info = heap.table.get_mut(id);
        if !info.marked {
            info.marked = true;
            gray.push(id);
            live.push(id);
        }
    };
    let boot_roots: Vec<ObjectId> = heap
        .table
        .iter_live()
        .filter(|&id| heap.table.get(id).space == SpaceKind::Boot)
        .collect();
    for root in heap.roots.clone().into_iter().flatten().chain(boot_roots) {
        mark(heap, root, &mut gray, &mut live);
    }
    while let Some(o) = gray.pop() {
        for t in scan(heap, machine, o)? {
            mark(heap, t, &mut gray, &mut live);
        }
    }

    // --- Mark-state writes ---
    // Marking live objects writes their metadata: a mark byte in a metadata
    // space for mature/large objects (the MDO decides which socket that
    // lands on), or a header bit for young and boot objects.
    for &id in &live {
        let (space, meta, addr) = {
            let i = heap.table.get(id);
            (i.space, i.meta, i.addr)
        };
        heap.stats.mark_writes += 1;
        match space {
            SpaceKind::MatureDram
            | SpaceKind::MaturePcm
            | SpaceKind::LargeDram
            | SpaceKind::LargePcm => {
                let slot = meta.expect("mature object without a metadata slot");
                machine.set_write_tag(WriteTag::new(WriteCause::Metadata, SpaceTag::Meta));
                machine.submit(heap.ctx, heap.proc, MemoryAccess::write(slot, 1))?;
            }
            _ => {
                machine.set_write_tag(WriteTag::new(WriteCause::Metadata, space.tag()));
                machine.submit(heap.ctx, heap.proc, MemoryAccess::write(addr, WORD as u32))?;
            }
        }
    }

    spans.end(machine.clock(heap.ctx).now());
    spans.begin("sweep", "gc", machine.clock(heap.ctx).now());

    // --- Sweep: drop the dead ---
    let dead: Vec<ObjectId> = heap
        .table
        .iter_live()
        .filter(|&id| {
            let i = heap.table.get(id);
            !i.marked && i.space != SpaceKind::Boot
        })
        .collect();
    for d in dead {
        let (space, addr, size) = {
            let i = heap.table.get(d);
            (i.space, i.addr, i.size)
        };
        match space {
            SpaceKind::LargeDram => heap.los_dram.free(addr, size),
            SpaceKind::LargePcm => heap.los_pcm.free(addr, size),
            _ => {}
        }
        heap.table.remove(d);
    }

    // --- Rebuild mature line maps from the survivors ---
    heap.mature_dram.begin_sweep();
    heap.mature_pcm.begin_sweep();
    for &id in &live {
        if !heap.table.is_live(id) {
            continue;
        }
        let (space, addr, size) = {
            let i = heap.table.get(id);
            (i.space, i.addr, i.size)
        };
        match space {
            SpaceKind::MatureDram => heap.mature_dram.mark_object(addr, size)?,
            SpaceKind::MaturePcm => heap.mature_pcm.mark_object(addr, size)?,
            _ => {}
        }
    }

    spans.end(machine.clock(heap.ctx).now());
    spans.begin("evacuate", "gc", machine.clock(heap.ctx).now());

    // --- Rescue written PCM large objects to DRAM (KG-W family) ---
    if heap.config.has_observer() {
        let rescue: Vec<ObjectId> = live
            .iter()
            .copied()
            .filter(|&id| {
                heap.table.is_live(id) && {
                    let i = heap.table.get(id);
                    i.space == SpaceKind::LargePcm && i.written
                }
            })
            .collect();
        for id in rescue {
            let (addr, size) = {
                let i = heap.table.get(id);
                (i.addr, i.size)
            };
            heap.los_pcm.free(addr, size);
            evacuate(heap, machine, id, Dest::LargeDram)?;
            heap.stats.large_rescued += 1;
        }
    }

    // --- Evacuate the young generation ---
    let young: Vec<ObjectId> = live
        .iter()
        .copied()
        .filter(|&id| heap.table.is_live(id) && heap.table.get(id).space.is_young())
        .collect();
    for &id in &young {
        if heap.table.get(id).space == SpaceKind::Observer {
            let (written, size) = {
                let i = heap.table.get(id);
                (i.written, i.size)
            };
            if written {
                heap.stats.promoted_dram_objects += 1;
            } else {
                heap.stats.promoted_pcm_objects += 1;
            }
            heap.stats.copied_observer_bytes += size as u64;
            evacuate(heap, machine, id, observer_dest(written, size))?;
        }
    }
    if let Some(obs) = heap.observer.as_mut() {
        obs.reset();
    }
    for &id in &young {
        if heap.table.get(id).space == SpaceKind::Nursery {
            let size = heap.table.get(id).size;
            heap.stats.copied_minor_bytes += size as u64;
            evacuate(heap, machine, id, nursery_dest(heap, size))?;
        }
    }
    heap.nursery.reset();

    // --- Clear marks, logged bits, remembered sets ---
    for &id in &live {
        if heap.table.is_live(id) {
            let i = heap.table.get_mut(id);
            i.marked = false;
            i.logged = false;
        }
    }
    heap.remset_old.clear();
    heap.remset_obs.clear();
    if heap.config.has_observer() {
        rebuild_remsets(heap);
    }
    machine.sync_submissions()?;
    spans.end(machine.clock(heap.ctx).now());
    pause_end(heap, machine, GcKind::Full, pause_t0);
    spans.end(machine.clock(heap.ctx).now());
    Ok(())
}
