//! The object model and object table.
//!
//! The simulated machine carries no data, so the semantic state of every
//! object (its reference fields, liveness, written bit) lives in an
//! [`ObjectTable`] on the Rust side, while its *location* (virtual address,
//! size, space) determines the memory traffic its uses generate.

use hemu_types::{Addr, ByteSize, WORD};
use std::fmt;

/// Size of an object header in bytes (status word + type information
/// block pointer, as in Jikes RVM).
pub const HEADER_SIZE: u32 = 16;

/// Objects at least this big go to the large object space (the 8 KiB MMTk
/// LOS threshold).
pub const LARGE_THRESHOLD: u32 = 8 * 1024;

/// A stable handle to a managed object.
///
/// The id survives copying collections — the garbage collector updates the
/// object's address, not its identity — which is exactly the indirection a
/// real VM's object-to-forwarding map provides during a moving collection.
/// Ids are generation-tagged: a handle to a collected object never aliases
/// a later object that reuses the same table slot, so stale handles are
/// reliably detected instead of silently corrupting an unrelated object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId(pub(crate) u64);

impl ObjectId {
    pub(crate) fn new(index: u32, generation: u32) -> Self {
        ObjectId((generation as u64) << 32 | index as u64)
    }

    pub(crate) fn index(self) -> usize {
        (self.0 & 0xffff_ffff) as usize
    }

    pub(crate) fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }

    /// Raw value (for diagnostics and adapter layers).
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Reconstructs an id from [`ObjectId::raw`]. For adapter layers that
    /// store ids as plain integers; the id must have come from this heap.
    pub fn from_raw(raw: u64) -> Self {
        ObjectId(raw)
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj#{}v{}", self.index(), self.generation())
    }
}

/// Which space an object currently resides in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpaceKind {
    /// The boot image.
    Boot,
    /// The copying nursery.
    Nursery,
    /// KG-W's DRAM observer space.
    Observer,
    /// Mark-region mature space on DRAM.
    MatureDram,
    /// Mark-region mature space on PCM.
    MaturePcm,
    /// Large object space on DRAM.
    LargeDram,
    /// Large object space on PCM.
    LargePcm,
}

impl SpaceKind {
    /// Young spaces are collected at every minor collection.
    pub fn is_young(self) -> bool {
        matches!(self, SpaceKind::Nursery | SpaceKind::Observer)
    }

    /// Spaces whose storage is on the emulated PCM socket under a hybrid
    /// plan.
    pub fn is_pcm_side(self) -> bool {
        matches!(self, SpaceKind::MaturePcm | SpaceKind::LargePcm)
    }

    /// Large-object spaces (non-moving, page granular).
    pub fn is_large(self) -> bool {
        matches!(self, SpaceKind::LargeDram | SpaceKind::LargePcm)
    }

    /// The provenance space tag for writes targeting this space.
    pub fn tag(self) -> hemu_types::SpaceTag {
        use hemu_types::SpaceTag;
        match self {
            SpaceKind::Nursery => SpaceTag::Nursery,
            SpaceKind::Observer => SpaceTag::Observer,
            SpaceKind::MatureDram => SpaceTag::MatureDram,
            SpaceKind::MaturePcm => SpaceTag::MaturePcm,
            SpaceKind::LargeDram | SpaceKind::LargePcm => SpaceTag::Large,
            SpaceKind::Boot => SpaceTag::Other,
        }
    }
}

/// Everything the runtime knows about one object.
#[derive(Debug, Clone)]
pub struct ObjectInfo {
    /// Current virtual address of the header.
    pub addr: Addr,
    /// Total size in bytes (header + reference slots + data payload).
    pub size: u32,
    /// Number of reference slots.
    pub ref_count: u16,
    /// Space the object currently lives in.
    pub space: SpaceKind,
    /// Reference fields (indices into the object table).
    pub refs: Vec<Option<ObjectId>>,
    /// Set when the mutator writes the object while it is being observed
    /// (KG-W write monitoring), or while it lives in PCM large space.
    pub written: bool,
    /// Mark state for tracing collections.
    pub marked: bool,
    /// Set when the object is registered in a remembered set (write
    /// barrier dedup).
    pub logged: bool,
    /// Address of the object's one-byte GC mark slot in a metadata space
    /// (assigned on promotion into a mature or large space).
    pub meta: Option<Addr>,
    /// Slot generation for use-after-free detection in debug builds.
    pub alive: bool,
}

impl ObjectInfo {
    /// Creates a fresh object record at `addr` in `space`.
    pub fn fresh(addr: Addr, size: u32, ref_count: usize, space: SpaceKind) -> Self {
        ObjectInfo {
            addr,
            size,
            ref_count: ref_count as u16,
            space,
            refs: vec![None; ref_count],
            written: false,
            marked: false,
            logged: false,
            meta: None,
            alive: true,
        }
    }
}

impl ObjectInfo {
    /// Address of reference slot `i` (slots follow the header).
    pub fn ref_slot_addr(&self, i: usize) -> Addr {
        self.addr
            .offset(HEADER_SIZE as u64 + (i as u64) * WORD as u64)
    }

    /// Address of the data payload (after header and reference slots).
    pub fn data_addr(&self) -> Addr {
        self.addr
            .offset(HEADER_SIZE as u64 + self.ref_count as u64 * WORD as u64)
    }

    /// Size of the data payload in bytes.
    pub fn data_size(&self) -> u32 {
        self.size - HEADER_SIZE - self.ref_count as u32 * WORD as u32
    }
}

/// Computes the total size of an object with `ref_count` reference slots
/// and `data_bytes` of scalar payload, rounded up to word alignment.
pub fn object_size(ref_count: usize, data_bytes: usize) -> u32 {
    let raw = HEADER_SIZE as usize + ref_count * WORD + data_bytes;
    ((raw + WORD - 1) / WORD * WORD) as u32
}

/// The table of all live objects, with generation-tagged slot recycling.
#[derive(Debug, Default)]
pub struct ObjectTable {
    slots: Vec<ObjectInfo>,
    generations: Vec<u32>,
    free: Vec<u32>,
    live_count: usize,
    live_bytes: u64,
}

impl ObjectTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new object and returns its id.
    pub fn insert(&mut self, info: ObjectInfo) -> ObjectId {
        debug_assert!(info.alive);
        self.live_count += 1;
        self.live_bytes += info.size as u64;
        if let Some(idx) = self.free.pop() {
            self.slots[idx as usize] = info;
            ObjectId::new(idx, self.generations[idx as usize])
        } else {
            self.slots.push(info);
            self.generations.push(0);
            ObjectId::new(self.slots.len() as u32 - 1, 0)
        }
    }

    /// Removes a dead object, making its slot reusable.
    ///
    /// # Panics
    ///
    /// Panics if the object is already dead.
    pub fn remove(&mut self, id: ObjectId) {
        let idx = id.index();
        assert_eq!(
            self.generations[idx],
            id.generation(),
            "remove of stale handle {id}"
        );
        let slot = &mut self.slots[idx];
        assert!(slot.alive, "double free of {id}");
        slot.alive = false;
        slot.refs = Vec::new();
        self.live_count -= 1;
        self.live_bytes -= slot.size as u64;
        self.generations[idx] = self.generations[idx].wrapping_add(1);
        self.free.push(idx as u32);
    }

    /// Immutable access to an object.
    ///
    /// # Panics
    ///
    /// Panics if the object is dead (use-after-free in the workload or
    /// collector).
    #[inline]
    pub fn get(&self, id: ObjectId) -> &ObjectInfo {
        debug_assert!(self.is_live(id), "use of dead or stale object {id}");
        &self.slots[id.index()]
    }

    /// Mutable access to an object.
    ///
    /// # Panics
    ///
    /// Panics if the object is dead.
    #[inline]
    pub fn get_mut(&mut self, id: ObjectId) -> &mut ObjectInfo {
        debug_assert!(self.is_live(id), "use of dead or stale object {id}");
        &mut self.slots[id.index()]
    }

    /// Returns `true` if `id` currently names a live object (stale handles
    /// from a previous occupant of the slot report dead).
    pub fn is_live(&self, id: ObjectId) -> bool {
        self.slots.get(id.index()).map(|s| s.alive).unwrap_or(false)
            && self.generations[id.index()] == id.generation()
    }

    /// Number of live objects.
    pub fn live_count(&self) -> usize {
        self.live_count
    }

    /// Total bytes of live objects.
    pub fn live_bytes(&self) -> ByteSize {
        ByteSize::new(self.live_bytes)
    }

    /// Iterates over the ids of all live objects.
    pub fn iter_live(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.alive)
            .map(|(i, _)| ObjectId::new(i as u32, self.generations[i]))
    }

    /// Adjusts accounted size when an object is resized in place (only used
    /// by tests; real objects never change size).
    #[cfg(test)]
    pub(crate) fn slots_len(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(size: u32, refs: usize) -> ObjectInfo {
        ObjectInfo::fresh(Addr::new(0x1000), size, refs, SpaceKind::Nursery)
    }

    #[test]
    fn object_size_is_word_aligned_and_includes_header() {
        assert_eq!(object_size(0, 0), 16);
        assert_eq!(object_size(2, 0), 32);
        assert_eq!(object_size(0, 1), 24);
        assert_eq!(object_size(1, 9), 40);
        assert_eq!(object_size(0, 8) % WORD as u32, 0);
    }

    #[test]
    fn slot_addresses_follow_header_then_refs() {
        let o = obj(object_size(2, 8), 2);
        assert_eq!(o.ref_slot_addr(0), Addr::new(0x1010));
        assert_eq!(o.ref_slot_addr(1), Addr::new(0x1018));
        assert_eq!(o.data_addr(), Addr::new(0x1020));
        assert_eq!(o.data_size(), 8);
    }

    #[test]
    fn insert_remove_recycles_slots() {
        let mut t = ObjectTable::new();
        let a = t.insert(obj(16, 0));
        let b = t.insert(obj(16, 0));
        assert_ne!(a, b);
        t.remove(a);
        assert!(!t.is_live(a));
        let c = t.insert(obj(16, 0));
        assert_eq!(c.index(), a.index(), "slot is recycled");
        assert_ne!(c, a, "but the generation tag differs");
        assert!(!t.is_live(a), "stale handle stays dead");
        assert!(t.is_live(c));
        assert_eq!(t.slots_len(), 2);
    }

    #[test]
    fn live_accounting_tracks_bytes() {
        let mut t = ObjectTable::new();
        let a = t.insert(obj(100, 0));
        let _b = t.insert(obj(28, 0));
        assert_eq!(t.live_count(), 2);
        assert_eq!(t.live_bytes().bytes(), 128);
        t.remove(a);
        assert_eq!(t.live_bytes().bytes(), 28);
    }

    #[test]
    #[should_panic(expected = "stale handle")]
    fn double_remove_panics() {
        let mut t = ObjectTable::new();
        let a = t.insert(obj(16, 0));
        t.remove(a);
        t.remove(a);
    }

    #[test]
    fn iter_live_skips_dead() {
        let mut t = ObjectTable::new();
        let a = t.insert(obj(16, 0));
        let b = t.insert(obj(16, 0));
        t.remove(a);
        let live: Vec<_> = t.iter_live().collect();
        assert_eq!(live, vec![b]);
    }

    #[test]
    fn space_kind_predicates() {
        assert!(SpaceKind::Nursery.is_young());
        assert!(SpaceKind::Observer.is_young());
        assert!(!SpaceKind::MaturePcm.is_young());
        assert!(SpaceKind::MaturePcm.is_pcm_side());
        assert!(!SpaceKind::MatureDram.is_pcm_side());
        assert!(SpaceKind::LargePcm.is_large());
    }
}
