//! The virtual-memory layout of the managed heap.
//!
//! Mirrors Figure 1 of the paper: the user heap starts at `PCM_START`; the
//! range up to `PCM_END` is the PCM-backed portion, followed by the
//! DRAM-backed portion up to `DRAM_END`. The nursery (and the observer
//! space next to it) live at one end of virtual memory so the generational
//! boundary write barrier is a single address compare.

use hemu_types::{Addr, ByteSize, MIB};

/// Start of the boot space (boot image runner + VM image files).
pub const BOOT_START: Addr = Addr::new(0x1000_0000);
/// Size reserved for the boot space.
pub const BOOT_SIZE: ByteSize = ByteSize::new(16 * MIB as u64);

/// `PCM_START`: beginning of the user heap and of its PCM-backed portion.
pub const PCM_START: Addr = Addr::new(0x2000_0000);
/// `PCM_END`: end of the PCM-backed portion, start of the DRAM-backed one.
pub const PCM_END: Addr = Addr::new(0x8000_0000);
/// `DRAM_END`: end of the DRAM-backed chunk portion.
pub const DRAM_END: Addr = Addr::new(0xB000_0000);

/// Start of the region reserved for the observer space.
pub const OBSERVER_START: Addr = Addr::new(0xB000_0000);
/// Maximum observer reservation.
pub const OBSERVER_MAX: ByteSize = ByteSize::new(256 * MIB as u64);

/// Start of the nursery reservation. Everything at or above this address is
/// young: `addr >= YOUNG_BOUNDARY` is the boundary barrier test, and the
/// observer region directly below extends the young side for KG-W.
pub const NURSERY_START: Addr = Addr::new(0xC000_0000);
/// Maximum nursery reservation.
pub const NURSERY_MAX: ByteSize = ByteSize::new(256 * MIB as u64);

/// Boundary between old and young virtual memory for the write barrier.
/// The observer space sits just below the nursery, so the young side starts
/// at the observer.
pub const YOUNG_BOUNDARY: Addr = OBSERVER_START;

/// Small DRAM region used as the remembered-set buffer the write barrier
/// appends to.
pub const REMSET_BUFFER: Addr = Addr::new(0xD000_0000);
/// Size of the remembered-set buffer (entries wrap around).
pub const REMSET_BUFFER_SIZE: ByteSize = ByteSize::new(4 * MIB as u64);

/// Returns `true` if `addr` lies on the young (nursery/observer) side of
/// the boundary barrier.
pub const fn is_young(addr: Addr) -> bool {
    addr.raw() >= YOUNG_BOUNDARY.raw()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_ordered_and_disjoint() {
        assert!(BOOT_START.raw() + BOOT_SIZE.bytes() <= PCM_START.raw());
        assert!(PCM_START < PCM_END);
        assert!(PCM_END < DRAM_END);
        assert!(DRAM_END.raw() <= OBSERVER_START.raw());
        assert!(OBSERVER_START.raw() + OBSERVER_MAX.bytes() <= NURSERY_START.raw());
        assert!(NURSERY_START.raw() + NURSERY_MAX.bytes() <= REMSET_BUFFER.raw());
    }

    #[test]
    fn boundary_test_classifies_spaces() {
        assert!(is_young(NURSERY_START));
        assert!(is_young(OBSERVER_START));
        assert!(!is_young(PCM_START));
        assert!(!is_young(PCM_END)); // first DRAM chunk address is old
        assert!(!is_young(BOOT_START));
    }

    #[test]
    fn pcm_portion_is_larger_than_dram_portion() {
        // PCM is the capacity tier: 1.5 GiB PCM vs 0.75 GiB DRAM chunks.
        let pcm = PCM_END.raw() - PCM_START.raw();
        let dram = DRAM_END.raw() - PCM_END.raw();
        assert!(pcm == 2 * dram);
    }
}
