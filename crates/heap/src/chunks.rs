//! Chunk management: the two free lists of Figure 1.
//!
//! A chunk is 4 MiB of virtual memory, the minimum unit handed to a space.
//! The heap keeps one free list per memory technology: **FreeList-Lo** for
//! the PCM-backed portion of virtual memory and **FreeList-Hi** for the
//! DRAM-backed portion. Once a chunk has been mapped (bound to a socket and
//! faulted in), it is never unmapped: releasing it only marks the free-list
//! entry free, and the next space that asks the same list gets it back with
//! its physical pages — and socket binding — intact.
//!
//! The alternative the paper argues against, a single **monolithic** free
//! list, is implemented too (for the ablation bench): there a recycled
//! chunk may carry the wrong socket binding and must be unmapped and
//! re-bound, which costs page faults and page-table churn.

use hemu_machine::{Machine, ProcId};
use hemu_obs::TraceEvent;
use hemu_types::{Addr, ByteSize, Result, SocketId, CHUNK_SIZE};

use crate::layout::{DRAM_END, PCM_END, PCM_START};

/// Which portion of heap virtual memory a chunk request targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// The PCM-backed portion (`FreeList-Lo`).
    Pcm,
    /// The DRAM-backed portion (`FreeList-Hi`).
    Dram,
}

/// Free-list discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChunkPolicy {
    /// The paper's design: two free lists, chunks stay mapped forever and
    /// are recycled within their own technology.
    #[default]
    TwoLists,
    /// Ablation: one pooled free list; a recycled chunk whose physical
    /// mapping is on the wrong socket is unmapped and re-bound.
    Monolithic,
}

/// Physical sockets backing the two sides. A hybrid plan uses
/// (`PCM` = socket 1, `DRAM` = socket 0); the PCM-Only reference setup
/// binds both sides to socket 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SideSockets {
    /// Socket backing the PCM side.
    pub pcm: SocketId,
    /// Socket backing the DRAM side.
    pub dram: SocketId,
}

impl SideSockets {
    /// Hybrid memory: socket 0 is DRAM, socket 1 is PCM.
    pub fn hybrid() -> Self {
        SideSockets {
            pcm: SocketId::PCM,
            dram: SocketId::DRAM,
        }
    }

    /// PCM-Only reference system: every space is physically on socket 1.
    pub fn pcm_only() -> Self {
        SideSockets {
            pcm: SocketId::PCM,
            dram: SocketId::PCM,
        }
    }

    /// The socket for one side.
    pub fn socket(&self, side: Side) -> SocketId {
        match side {
            Side::Pcm => self.pcm,
            Side::Dram => self.dram,
        }
    }
}

/// One free-list entry: the chunk's location and meta-information
/// (size, status, owner), as in Figure 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkEntry {
    /// Chunk base address.
    pub addr: Addr,
    /// Always 4 MiB in this implementation.
    pub size: ByteSize,
    /// Whether the chunk is currently free.
    pub free: bool,
    /// Name of the owning space, if any.
    pub owner: Option<&'static str>,
    /// The socket the chunk is currently bound to.
    pub socket: SocketId,
    /// Which virtual region the chunk was carved from.
    pub side: Side,
}

/// Counters for the two-list vs monolithic ablation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChunkStats {
    /// Fresh chunks carved from virtual memory (mmap + mbind).
    pub fresh: u64,
    /// Chunks recycled with binding intact (free in the two-list design).
    pub recycled: u64,
    /// Recycled chunks that had to be unmapped and re-bound (monolithic
    /// design only).
    pub remapped: u64,
}

impl hemu_obs::ToJson for ChunkStats {
    fn write_json(&self, out: &mut String) {
        let mut obj = hemu_obs::json::JsonObject::new(out);
        obj.field("fresh", &self.fresh)
            .field("recycled", &self.recycled)
            .field("remapped", &self.remapped);
        obj.finish();
    }
}

/// The chunk allocator: FreeList-Lo, FreeList-Hi, and the region cursors.
#[derive(Debug)]
pub struct ChunkManager {
    policy: ChunkPolicy,
    sockets: SideSockets,
    proc: ProcId,
    entries: Vec<ChunkEntry>,
    /// Indices of free entries per side (both sides alias the same list
    /// under the monolithic policy).
    free_lo: Vec<usize>,
    free_hi: Vec<usize>,
    next_pcm: Addr,
    next_dram: Addr,
    stats: ChunkStats,
}

impl ChunkManager {
    /// Creates the manager for one process.
    pub fn new(policy: ChunkPolicy, sockets: SideSockets, proc: ProcId) -> Self {
        ChunkManager {
            policy,
            sockets,
            proc,
            entries: Vec::new(),
            free_lo: Vec::new(),
            free_hi: Vec::new(),
            next_pcm: PCM_START,
            next_dram: PCM_END,
            stats: ChunkStats::default(),
        }
    }

    /// The configured policy.
    pub fn policy(&self) -> ChunkPolicy {
        self.policy
    }

    /// The side-to-socket mapping.
    pub fn sockets(&self) -> SideSockets {
        self.sockets
    }

    /// Ablation counters.
    pub fn stats(&self) -> ChunkStats {
        self.stats
    }

    /// All free-list entries (for inspection and Table/Figure rendering).
    pub fn entries(&self) -> &[ChunkEntry] {
        &self.entries
    }

    /// Total virtual memory handed out to spaces, in bytes.
    pub fn reserved(&self) -> ByteSize {
        ByteSize::new(self.entries.iter().filter(|e| !e.free).count() as u64 * CHUNK_SIZE as u64)
    }

    /// Acquires a 4 MiB chunk for `owner` on the requested side.
    ///
    /// # Errors
    ///
    /// Returns [`hemu_types::HemuError::OutOfHeapMemory`] when the side's
    /// virtual region is exhausted and no free chunk is available.
    pub fn acquire(
        &mut self,
        machine: &mut Machine,
        side: Side,
        owner: &'static str,
    ) -> Result<Addr> {
        let want_socket = self.sockets.socket(side);

        // 1. Try to recycle a free chunk.
        let list = match (self.policy, side) {
            (ChunkPolicy::TwoLists, Side::Pcm) => &mut self.free_lo,
            (ChunkPolicy::TwoLists, Side::Dram) => &mut self.free_hi,
            // Monolithic: one pooled list (kept in free_lo).
            (ChunkPolicy::Monolithic, _) => &mut self.free_lo,
        };
        if let Some(idx) = list.pop() {
            let entry = &mut self.entries[idx];
            debug_assert!(entry.free);
            entry.free = false;
            entry.owner = Some(owner);
            let addr = entry.addr;
            if entry.socket != want_socket {
                // Only possible under the monolithic policy: the physical
                // pages are on the wrong socket and must be remapped.
                machine.unmap(self.proc, entry.addr, entry.size)?;
                machine.mbind(self.proc, entry.addr, entry.size, want_socket);
                entry.socket = want_socket;
                self.stats.remapped += 1;
                machine.obs().metrics.counter("chunks.remapped").incr();
                let t = machine.elapsed();
                machine
                    .obs()
                    .tracer
                    .record(t, TraceEvent::ChunkUnmap { addr });
                machine.obs().tracer.record(
                    t,
                    TraceEvent::ChunkRebind {
                        addr,
                        socket: want_socket,
                    },
                );
            } else {
                self.stats.recycled += 1;
                machine.obs().metrics.counter("chunks.recycled").incr();
                machine.obs().tracer.record(
                    machine.elapsed(),
                    TraceEvent::ChunkMap {
                        addr,
                        socket: want_socket,
                        recycled: true,
                    },
                );
            }
            self.publish_free_gauge(machine);
            return Ok(addr);
        }

        // 2. Carve a fresh chunk from the side's virtual region.
        let (cursor, limit) = match side {
            Side::Pcm => (&mut self.next_pcm, PCM_END),
            Side::Dram => (&mut self.next_dram, DRAM_END),
        };
        if cursor.raw() + CHUNK_SIZE as u64 > limit.raw() {
            return Err(hemu_types::HemuError::OutOfHeapMemory {
                requested: ByteSize::new(CHUNK_SIZE as u64),
                space: owner,
            });
        }
        let addr = *cursor;
        *cursor = cursor.offset(CHUNK_SIZE as u64);
        machine.mbind(
            self.proc,
            addr,
            ByteSize::new(CHUNK_SIZE as u64),
            want_socket,
        );
        self.entries.push(ChunkEntry {
            addr,
            size: ByteSize::new(CHUNK_SIZE as u64),
            free: false,
            owner: Some(owner),
            socket: want_socket,
            side,
        });
        self.stats.fresh += 1;
        machine.obs().metrics.counter("chunks.fresh").incr();
        machine.obs().tracer.record(
            machine.elapsed(),
            TraceEvent::ChunkMap {
                addr,
                socket: want_socket,
                recycled: false,
            },
        );
        self.publish_free_gauge(machine);
        Ok(addr)
    }

    /// Publishes the current free-list occupancy (both sides) to the
    /// `chunks.free` gauge.
    fn publish_free_gauge(&self, machine: &Machine) {
        let free = (self.free_lo.len() + self.free_hi.len()) as f64;
        machine.obs().metrics.gauge("chunks.free").set(free);
    }

    /// Releases the chunk at `addr` back to its free list. The chunk keeps
    /// its physical mapping (the paper's design): only the entry's status
    /// changes.
    ///
    /// # Panics
    ///
    /// Panics if `addr` does not name an in-use chunk.
    pub fn release(&mut self, addr: Addr) {
        let idx = self
            .entries
            .iter()
            .position(|e| e.addr == addr)
            .expect("release of unknown chunk");
        let entry = &mut self.entries[idx];
        assert!(!entry.free, "double release of chunk at {addr}");
        entry.free = true;
        entry.owner = None;
        match (self.policy, entry.side) {
            (ChunkPolicy::TwoLists, Side::Pcm) => self.free_lo.push(idx),
            (ChunkPolicy::TwoLists, Side::Dram) => self.free_hi.push(idx),
            (ChunkPolicy::Monolithic, _) => self.free_lo.push(idx),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hemu_machine::MachineProfile;

    fn setup(policy: ChunkPolicy) -> (Machine, ChunkManager) {
        let mut m = Machine::new(MachineProfile::emulation());
        let p = m.add_process(SocketId::DRAM);
        (m, ChunkManager::new(policy, SideSockets::hybrid(), p))
    }

    #[test]
    fn fresh_chunks_come_from_their_regions() {
        let (mut m, mut cm) = setup(ChunkPolicy::TwoLists);
        let pcm = cm.acquire(&mut m, Side::Pcm, "mature-pcm").unwrap();
        let dram = cm.acquire(&mut m, Side::Dram, "mature-dram").unwrap();
        assert!(pcm >= PCM_START && pcm < PCM_END);
        assert!(dram >= PCM_END && dram < DRAM_END);
        assert_eq!(m.socket_of(ProcId(0), pcm), SocketId::PCM);
        assert_eq!(m.socket_of(ProcId(0), dram), SocketId::DRAM);
    }

    #[test]
    fn two_lists_recycle_within_technology() {
        let (mut m, mut cm) = setup(ChunkPolicy::TwoLists);
        let pcm = cm.acquire(&mut m, Side::Pcm, "a").unwrap();
        cm.release(pcm);
        // A DRAM request must NOT get the freed PCM chunk.
        let dram = cm.acquire(&mut m, Side::Dram, "b").unwrap();
        assert_ne!(dram, pcm);
        // A PCM request gets it back, binding intact, no remap.
        let again = cm.acquire(&mut m, Side::Pcm, "c").unwrap();
        assert_eq!(again, pcm);
        assert_eq!(cm.stats().remapped, 0);
        assert_eq!(cm.stats().recycled, 1);
    }

    #[test]
    fn monolithic_list_remaps_cross_technology_reuse() {
        let (mut m, mut cm) = setup(ChunkPolicy::Monolithic);
        let pcm = cm.acquire(&mut m, Side::Pcm, "a").unwrap();
        cm.release(pcm);
        // The pooled list hands the PCM-mapped chunk to a DRAM request,
        // forcing an unmap + re-bind.
        let dram = cm.acquire(&mut m, Side::Dram, "b").unwrap();
        assert_eq!(dram, pcm, "monolithic list recycles across sides");
        assert_eq!(cm.stats().remapped, 1);
        assert_eq!(m.socket_of(ProcId(0), dram), SocketId::DRAM);
    }

    #[test]
    fn pcm_only_sockets_bind_everything_to_socket_1() {
        let mut m = Machine::new(MachineProfile::emulation());
        let p = m.add_process(SocketId::PCM);
        let mut cm = ChunkManager::new(ChunkPolicy::TwoLists, SideSockets::pcm_only(), p);
        let dram_side = cm.acquire(&mut m, Side::Dram, "mature-dram").unwrap();
        assert_eq!(m.socket_of(p, dram_side), SocketId::PCM);
    }

    #[test]
    fn entries_carry_owner_metadata() {
        let (mut m, mut cm) = setup(ChunkPolicy::TwoLists);
        let a = cm.acquire(&mut m, Side::Pcm, "los-pcm").unwrap();
        let e = cm.entries().iter().find(|e| e.addr == a).unwrap();
        assert_eq!(e.owner, Some("los-pcm"));
        assert!(!e.free);
        assert_eq!(e.size.bytes(), CHUNK_SIZE as u64);
        cm.release(a);
        let e = cm.entries().iter().find(|e| e.addr == a).unwrap();
        assert!(e.free);
        assert_eq!(e.owner, None);
    }

    #[test]
    #[should_panic(expected = "double release")]
    fn double_release_panics() {
        let (mut m, mut cm) = setup(ChunkPolicy::TwoLists);
        let a = cm.acquire(&mut m, Side::Pcm, "x").unwrap();
        cm.release(a);
        cm.release(a);
    }

    #[test]
    fn exhaustion_reports_out_of_heap() {
        let (mut m, mut cm) = setup(ChunkPolicy::TwoLists);
        // The DRAM region is 768 MiB = 192 chunks.
        for _ in 0..192 {
            cm.acquire(&mut m, Side::Dram, "fill").unwrap();
        }
        let err = cm.acquire(&mut m, Side::Dram, "fill").unwrap_err();
        assert!(matches!(err, hemu_types::HemuError::OutOfHeapMemory { .. }));
    }

    #[test]
    fn reserved_counts_in_use_chunks_only() {
        let (mut m, mut cm) = setup(ChunkPolicy::TwoLists);
        let a = cm.acquire(&mut m, Side::Pcm, "x").unwrap();
        let _b = cm.acquire(&mut m, Side::Pcm, "y").unwrap();
        assert_eq!(cm.reserved().bytes(), 2 * CHUNK_SIZE as u64);
        cm.release(a);
        assert_eq!(cm.reserved().bytes(), CHUNK_SIZE as u64);
    }
}
