//! The heap spaces: copying bump spaces (nursery, observer), mark-region
//! Immix-style mature spaces, large object spaces, and the metadata
//! allocator.
//!
//! A space is a coarse-grained heap partition whose objects share a common
//! property (§III.A). Spaces acquire virtual memory from the chunk manager
//! — the nursery and observer from fixed reservations at the top of virtual
//! memory, the rest from the two free lists.

use crate::chunks::{ChunkManager, Side};
use hemu_machine::Machine;
use hemu_types::{Addr, ByteSize, Result, PAGE_SIZE};
use std::collections::HashMap;

/// Immix block size: 32 KiB.
pub const BLOCK_SIZE: usize = 32 * 1024;
/// Immix line size: 256 B.
pub const LINE_SIZE: usize = 256;
/// Lines per block.
pub const LINES_PER_BLOCK: usize = BLOCK_SIZE / LINE_SIZE;
/// Blocks per 4 MiB chunk.
pub const BLOCKS_PER_CHUNK: usize = hemu_types::CHUNK_SIZE / BLOCK_SIZE;

/// A contiguous bump-allocated space with a fixed reservation: the nursery
/// and the observer space.
///
/// Allocation is a pointer bump; a minor collection evacuates survivors and
/// resets the cursor to the start.
#[derive(Debug, Clone)]
pub struct BumpSpace {
    name: &'static str,
    start: Addr,
    capacity: ByteSize,
    cursor: Addr,
}

impl BumpSpace {
    /// Creates a bump space over `[start, start + capacity)`.
    pub fn new(name: &'static str, start: Addr, capacity: ByteSize) -> Self {
        BumpSpace {
            name,
            start,
            capacity,
            cursor: start,
        }
    }

    /// The space's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// First address of the reservation.
    pub fn start(&self) -> Addr {
        self.start
    }

    /// Capacity of the reservation.
    pub fn capacity(&self) -> ByteSize {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> ByteSize {
        ByteSize::new(self.cursor.raw() - self.start.raw())
    }

    /// Bytes still available.
    pub fn available(&self) -> ByteSize {
        self.capacity.saturating_sub(self.used())
    }

    /// Bump-allocates `size` bytes, or `None` if the space is full.
    pub fn alloc(&mut self, size: u32) -> Option<Addr> {
        if self.used().bytes() + size as u64 > self.capacity.bytes() {
            None
        } else {
            let a = self.cursor;
            self.cursor = self.cursor.offset(size as u64);
            Some(a)
        }
    }

    /// Resets the cursor after an evacuating collection.
    pub fn reset(&mut self) {
        self.cursor = self.start;
    }

    /// Returns `true` if `addr` lies inside this space's reservation.
    pub fn contains(&self, addr: Addr) -> bool {
        addr >= self.start && addr.raw() < self.start.raw() + self.capacity.bytes()
    }
}

/// One 32 KiB Immix block: a bitmap of used lines.
#[derive(Debug, Clone)]
struct Block {
    base: Addr,
    /// Bit `i` set ⇒ line `i` is occupied by (part of) a live object.
    used: u128,
}

impl Block {
    fn free_run(&self, lines: u32) -> Option<u32> {
        debug_assert!(lines as usize <= LINES_PER_BLOCK);
        if self.used == 0 {
            return Some(0);
        }
        let mut run = 0u32;
        for i in 0..LINES_PER_BLOCK as u32 {
            if self.used >> i & 1 == 0 {
                run += 1;
                if run == lines {
                    return Some(i + 1 - lines);
                }
            } else {
                run = 0;
            }
        }
        None
    }

    fn mark_lines(&mut self, first: u32, lines: u32) {
        for i in first..first + lines {
            self.used |= 1u128 << i;
        }
    }
}

/// A mark-region (Immix-style) mature space.
///
/// Allocation bump-fills free line runs inside partially used blocks;
/// a full-heap collection rebuilds the line maps from the live set, making
/// the lines of dead objects reusable (mark-region reclamation at line
/// granularity, without moving mature objects).
#[derive(Debug)]
pub struct ImmixSpace {
    name: &'static str,
    side: Side,
    blocks: Vec<Block>,
    /// Maps chunk base address → index of its first block.
    chunk_index: HashMap<u64, usize>,
    /// Allocation cursor: index of the block to try first.
    cursor: usize,
    used_lines: u64,
}

impl ImmixSpace {
    /// Creates an empty mature space that will request chunks from `side`.
    pub fn new(name: &'static str, side: Side) -> Self {
        ImmixSpace {
            name,
            side,
            blocks: Vec::new(),
            chunk_index: HashMap::new(),
            cursor: 0,
            used_lines: 0,
        }
    }

    /// The space's name (also its chunk-owner tag).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Bytes of lines currently occupied.
    pub fn used(&self) -> ByteSize {
        ByteSize::new(self.used_lines * LINE_SIZE as u64)
    }

    /// Total bytes of acquired chunks.
    pub fn reserved(&self) -> ByteSize {
        ByteSize::new(self.blocks.len() as u64 * BLOCK_SIZE as u64)
    }

    /// Allocates `size` bytes (≤ one block), acquiring a new chunk from the
    /// chunk manager if no block has a large enough free line run.
    ///
    /// # Errors
    ///
    /// Propagates chunk-manager exhaustion, and rejects objects larger
    /// than a block (they belong in the large object space).
    pub fn alloc(
        &mut self,
        machine: &mut Machine,
        chunks: &mut ChunkManager,
        size: u32,
    ) -> Result<Addr> {
        if size as usize > BLOCK_SIZE {
            return Err(hemu_types::HemuError::InvalidConfig(format!(
                "object of {size} B too large for mature space {}; belongs in LOS",
                self.name
            )));
        }
        let lines = size.div_ceil(LINE_SIZE as u32);
        // First-fit from the cursor; most allocations hit the current block.
        for pass in 0..2 {
            let range: Box<dyn Iterator<Item = usize>> = if pass == 0 {
                Box::new(self.cursor..self.blocks.len())
            } else {
                Box::new(0..self.cursor)
            };
            for bi in range {
                if let Some(first) = self.blocks[bi].free_run(lines) {
                    self.blocks[bi].mark_lines(first, lines);
                    self.used_lines += lines as u64;
                    self.cursor = bi;
                    return Ok(self.blocks[bi].base.offset(first as u64 * LINE_SIZE as u64));
                }
            }
        }
        // No room: grow by one chunk.
        let chunk = chunks.acquire(machine, self.side, self.name)?;
        let first_new = self.blocks.len();
        self.chunk_index.insert(chunk.raw(), first_new);
        for b in 0..BLOCKS_PER_CHUNK {
            self.blocks.push(Block {
                base: chunk.offset((b * BLOCK_SIZE) as u64),
                used: 0,
            });
        }
        self.cursor = first_new;
        self.blocks[first_new].mark_lines(0, lines);
        self.used_lines += lines as u64;
        Ok(self.blocks[first_new].base)
    }

    /// Begins a sweep: clears every line map. Live objects must be re-marked
    /// with [`ImmixSpace::mark_object`] before allocation resumes.
    pub fn begin_sweep(&mut self) {
        for b in &mut self.blocks {
            b.used = 0;
        }
        self.used_lines = 0;
        self.cursor = 0;
    }

    /// Re-marks the lines covered by a live object at `addr` of `size`
    /// bytes.
    ///
    /// # Errors
    ///
    /// Returns [`hemu_types::HemuError::InvalidConfig`] if `addr` does not
    /// lie in this space's blocks (a collector bookkeeping bug).
    pub fn mark_object(&mut self, addr: Addr, size: u32) -> Result<()> {
        let chunk_base = addr.raw() & !(hemu_types::CHUNK_SIZE as u64 - 1);
        let first_block = *self.chunk_index.get(&chunk_base).ok_or_else(|| {
            hemu_types::HemuError::InvalidConfig(format!(
                "{}: address {addr} not in this space",
                self.name
            ))
        })?;
        let offset_in_chunk = addr.raw() - chunk_base;
        let bi = first_block + (offset_in_chunk / BLOCK_SIZE as u64) as usize;
        let line0 = (offset_in_chunk % BLOCK_SIZE as u64 / LINE_SIZE as u64) as u32;
        let lines = size.div_ceil(LINE_SIZE as u32);
        self.blocks[bi].mark_lines(line0, lines);
        self.used_lines += lines as u64;
        Ok(())
    }

    /// Number of blocks with at least one live line after a sweep.
    pub fn live_blocks(&self) -> usize {
        self.blocks.iter().filter(|b| b.used != 0).count()
    }
}

/// A non-moving, page-granular large object space.
#[derive(Debug)]
pub struct LargeObjectSpace {
    name: &'static str,
    side: Side,
    /// Free page runs: (base, page count).
    free_runs: Vec<(Addr, u64)>,
    used_bytes: u64,
    reserved_bytes: u64,
}

impl LargeObjectSpace {
    /// Creates an empty large object space on `side`.
    pub fn new(name: &'static str, side: Side) -> Self {
        LargeObjectSpace {
            name,
            side,
            free_runs: Vec::new(),
            used_bytes: 0,
            reserved_bytes: 0,
        }
    }

    /// The space's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Bytes occupied by live large objects (page-rounded).
    pub fn used(&self) -> ByteSize {
        ByteSize::new(self.used_bytes)
    }

    /// Total bytes of acquired chunks.
    pub fn reserved(&self) -> ByteSize {
        ByteSize::new(self.reserved_bytes)
    }

    /// Allocates `size` bytes, page aligned and page granular.
    ///
    /// # Errors
    ///
    /// Propagates chunk-manager exhaustion.
    pub fn alloc(
        &mut self,
        machine: &mut Machine,
        chunks: &mut ChunkManager,
        size: u32,
    ) -> Result<Addr> {
        let pages = ByteSize::new(size as u64).pages();
        // Address-ordered first fit: the lowest-address run that is big
        // enough, so freed holes are reused before fresh tail space.
        if let Some(i) = self
            .free_runs
            .iter()
            .enumerate()
            .filter(|(_, &(_, n))| n >= pages)
            .min_by_key(|(_, &(base, _))| base)
            .map(|(i, _)| i)
        {
            let (base, n) = self.free_runs[i];
            if n == pages {
                self.free_runs.swap_remove(i);
            } else {
                self.free_runs[i] = (base.offset(pages * PAGE_SIZE as u64), n - pages);
            }
            self.used_bytes += pages * PAGE_SIZE as u64;
            return Ok(base);
        }
        // Need more chunks: acquire enough contiguous-by-construction
        // chunks to hold the object (chunks from one fresh acquisition are
        // contiguous only if the region cursor is fresh; for simplicity
        // every LOS object ≤ one chunk uses one chunk, larger objects
        // acquire consecutive chunks and require them contiguous).
        let chunk_bytes = hemu_types::CHUNK_SIZE as u64;
        let need_chunks = (pages * PAGE_SIZE as u64).div_ceil(chunk_bytes);
        let first = chunks.acquire(machine, self.side, self.name)?;
        let mut prev = first;
        for _ in 1..need_chunks {
            let next = chunks.acquire(machine, self.side, self.name)?;
            assert_eq!(
                next.raw(),
                prev.raw() + chunk_bytes,
                "LOS multi-chunk object needs contiguous chunks"
            );
            prev = next;
        }
        self.reserved_bytes += need_chunks * chunk_bytes;
        let total_pages = need_chunks * chunk_bytes / PAGE_SIZE as u64;
        if total_pages > pages {
            self.free_runs
                .push((first.offset(pages * PAGE_SIZE as u64), total_pages - pages));
        }
        self.used_bytes += pages * PAGE_SIZE as u64;
        Ok(first)
    }

    /// Frees the large object at `addr` of `size` bytes.
    pub fn free(&mut self, addr: Addr, size: u32) {
        let pages = ByteSize::new(size as u64).pages();
        self.used_bytes -= pages * PAGE_SIZE as u64;
        self.free_runs.push((addr, pages));
    }
}

/// Allocates metadata slots (GC mark bytes) in a dedicated region.
///
/// One byte per object, packed densely, so marking writes from a mature
/// collection concentrate in few cache lines — and end up on whichever
/// socket this allocator's chunks are bound to. The MetaData Optimization
/// (MDO) is exactly the choice of `side` for the allocator that serves
/// PCM-space objects.
#[derive(Debug)]
pub struct MetaAllocator {
    name: &'static str,
    side: Side,
    current: Option<Addr>,
    offset: u64,
    reserved: u64,
}

impl MetaAllocator {
    /// Creates an empty metadata allocator on `side`.
    pub fn new(name: &'static str, side: Side) -> Self {
        MetaAllocator {
            name,
            side,
            current: None,
            offset: 0,
            reserved: 0,
        }
    }

    /// The allocator's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Which side (socket) metadata lives on.
    pub fn side(&self) -> Side {
        self.side
    }

    /// Total reserved metadata bytes.
    pub fn reserved(&self) -> ByteSize {
        ByteSize::new(self.reserved)
    }

    /// Assigns the address of a fresh one-byte metadata slot.
    ///
    /// # Errors
    ///
    /// Propagates chunk-manager exhaustion.
    pub fn alloc_slot(&mut self, machine: &mut Machine, chunks: &mut ChunkManager) -> Result<Addr> {
        let chunk_bytes = hemu_types::CHUNK_SIZE as u64;
        let base = match self.current {
            Some(base) if self.offset < chunk_bytes => base,
            _ => {
                let base = chunks.acquire(machine, self.side, self.name)?;
                self.current = Some(base);
                self.offset = 0;
                self.reserved += chunk_bytes;
                base
            }
        };
        let a = base.offset(self.offset);
        self.offset += 1;
        Ok(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunks::{ChunkPolicy, SideSockets};
    use hemu_machine::MachineProfile;
    use hemu_types::SocketId;

    fn setup() -> (Machine, ChunkManager) {
        let mut m = Machine::new(MachineProfile::emulation());
        let p = m.add_process(SocketId::DRAM);
        (
            m,
            ChunkManager::new(ChunkPolicy::TwoLists, SideSockets::hybrid(), p),
        )
    }

    #[test]
    fn bump_space_allocates_contiguously_until_full() {
        let mut s = BumpSpace::new("nursery", Addr::new(0x1000), ByteSize::new(256));
        let a = s.alloc(100).unwrap();
        let b = s.alloc(100).unwrap();
        assert_eq!(b.raw() - a.raw(), 100);
        assert!(s.alloc(100).is_none(), "only 56 bytes left");
        assert_eq!(s.used().bytes(), 200);
        s.reset();
        assert_eq!(s.used(), ByteSize::ZERO);
        assert_eq!(s.alloc(100).unwrap(), a);
    }

    #[test]
    fn bump_space_contains_only_its_reservation() {
        let s = BumpSpace::new("n", Addr::new(0x1000), ByteSize::new(256));
        assert!(s.contains(Addr::new(0x1000)));
        assert!(s.contains(Addr::new(0x10ff)));
        assert!(!s.contains(Addr::new(0x1100)));
        assert!(!s.contains(Addr::new(0xfff)));
    }

    #[test]
    fn immix_allocates_line_aligned_runs() {
        let (mut m, mut cm) = setup();
        let mut s = ImmixSpace::new("mature-pcm", Side::Pcm);
        let a = s.alloc(&mut m, &mut cm, 300).unwrap(); // 2 lines
        let b = s.alloc(&mut m, &mut cm, 100).unwrap(); // 1 line
        assert_eq!(b.raw() - a.raw(), 2 * LINE_SIZE as u64);
        assert_eq!(s.used().bytes(), 3 * LINE_SIZE as u64);
    }

    #[test]
    fn immix_sweep_reclaims_dead_lines() {
        let (mut m, mut cm) = setup();
        let mut s = ImmixSpace::new("mature-pcm", Side::Pcm);
        let a = s.alloc(&mut m, &mut cm, 256).unwrap();
        let b = s.alloc(&mut m, &mut cm, 256).unwrap();
        s.begin_sweep();
        s.mark_object(b, 256); // only b survives
        assert_eq!(s.used().bytes(), 256);
        // New allocation reuses a's line.
        let c = s.alloc(&mut m, &mut cm, 256).unwrap();
        assert_eq!(c, a);
    }

    #[test]
    fn immix_grows_by_chunks_when_full() {
        let (mut m, mut cm) = setup();
        let mut s = ImmixSpace::new("mature-pcm", Side::Pcm);
        let before = cm.stats().fresh;
        // Fill slightly more than one chunk of lines.
        let per_obj = BLOCK_SIZE as u32; // whole block each
        for _ in 0..BLOCKS_PER_CHUNK + 1 {
            s.alloc(&mut m, &mut cm, per_obj).unwrap();
        }
        assert_eq!(cm.stats().fresh, before + 2);
    }

    #[test]
    fn immix_object_never_spans_blocks() {
        let (mut m, mut cm) = setup();
        let mut s = ImmixSpace::new("mature-pcm", Side::Pcm);
        // Fill most of a block, then allocate something that does not fit
        // in the remainder: it must start at a fresh block boundary.
        let a = s
            .alloc(&mut m, &mut cm, (BLOCK_SIZE - LINE_SIZE) as u32)
            .unwrap();
        let b = s.alloc(&mut m, &mut cm, 2 * LINE_SIZE as u32).unwrap();
        assert_eq!((b.raw() - a.raw()) % BLOCK_SIZE as u64, 0);
    }

    #[test]
    fn los_is_page_granular_and_reuses_freed_runs() {
        let (mut m, mut cm) = setup();
        let mut s = LargeObjectSpace::new("los-pcm", Side::Pcm);
        let a = s.alloc(&mut m, &mut cm, 10_000).unwrap(); // 3 pages
        assert!(a.is_aligned(PAGE_SIZE as u64));
        assert_eq!(s.used().bytes(), 3 * PAGE_SIZE as u64);
        s.free(a, 10_000);
        assert_eq!(s.used(), ByteSize::ZERO);
        let b = s.alloc(&mut m, &mut cm, 8_192).unwrap(); // 2 pages, fits the freed run
        assert_eq!(b, a);
    }

    #[test]
    fn los_handles_multi_chunk_objects() {
        let (mut m, mut cm) = setup();
        let mut s = LargeObjectSpace::new("los-pcm", Side::Pcm);
        let a = s.alloc(&mut m, &mut cm, 6 * 1024 * 1024).unwrap(); // 1.5 chunks
        assert!(a.is_aligned(PAGE_SIZE as u64));
        assert_eq!(s.reserved().bytes(), 8 * 1024 * 1024);
    }

    #[test]
    fn meta_allocator_hands_out_dense_slots() {
        let (mut m, mut cm) = setup();
        let mut meta = MetaAllocator::new("meta-dram", Side::Dram);
        let a = meta.alloc_slot(&mut m, &mut cm).unwrap();
        let b = meta.alloc_slot(&mut m, &mut cm).unwrap();
        assert_eq!(b.raw() - a.raw(), 1, "mark bytes are packed");
        // Slots land on the DRAM side of virtual memory.
        assert!(a >= crate::layout::PCM_END);
    }
}
