//! [`ManagedHeap`]: the mutator-facing managed runtime.
//!
//! This is the object-level API the workloads program against: allocate,
//! read and write fields, register roots. Every operation issues the memory
//! accesses a real VM would (zero-initialising allocation, field stores,
//! barrier bookkeeping), so the cache hierarchy and the socket counters see
//! a realistic access stream.

use crate::chunks::{ChunkManager, ChunkPolicy, Side};
use crate::gc;
use crate::layout;
use crate::object::{object_size, ObjectId, ObjectInfo, ObjectTable, SpaceKind, LARGE_THRESHOLD};
use crate::plan::GcConfig;
use crate::space::{BumpSpace, ImmixSpace, LargeObjectSpace, MetaAllocator};
use crate::stats::GcStats;
use hemu_machine::{CtxId, Machine, ProcId};
use hemu_obs::Counter;
use hemu_types::{Addr, ByteSize, MemoryAccess, Result, SpaceTag, WriteCause, WriteTag, WORD};

/// Handle to a root slot (a VM-level reference such as a static or a stack
/// slot) that keeps an object alive across collections.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RootSlot(pub(crate) usize);

impl RootSlot {
    /// The slot's index, for adapter layers that store it as an integer.
    pub fn index(self) -> usize {
        self.0
    }

    /// Reconstructs a slot from [`RootSlot::index`]. The index must have
    /// come from this heap's [`ManagedHeap::new_root`].
    pub fn from_index(index: usize) -> Self {
        RootSlot(index)
    }
}

/// A managed heap bound to one emulated process and hardware context.
///
/// # Examples
///
/// ```
/// use hemu_heap::{CollectorKind, ManagedHeap};
/// use hemu_machine::{CtxId, Machine, MachineProfile};
/// use hemu_types::{ByteSize, SocketId};
///
/// let mut m = Machine::new(MachineProfile::emulation());
/// let proc = m.add_process(SocketId::DRAM);
/// let cfg = CollectorKind::KgN.config(ByteSize::from_mib(4), ByteSize::from_mib(64));
/// let mut heap = ManagedHeap::new(&mut m, proc, CtxId(0), cfg)?;
/// let obj = heap.alloc(&mut m, 2, 24)?;
/// let root = heap.new_root(Some(obj));
/// heap.write_data(&mut m, obj, 0, 24)?;
/// # let _ = root;
/// # Ok::<(), hemu_types::HemuError>(())
/// ```
#[derive(Debug)]
pub struct ManagedHeap {
    pub(crate) proc: ProcId,
    pub(crate) ctx: CtxId,
    pub(crate) config: GcConfig,
    pub(crate) table: ObjectTable,
    pub(crate) nursery: BumpSpace,
    pub(crate) observer: Option<BumpSpace>,
    pub(crate) mature_dram: ImmixSpace,
    pub(crate) mature_pcm: ImmixSpace,
    pub(crate) los_dram: LargeObjectSpace,
    pub(crate) los_pcm: LargeObjectSpace,
    pub(crate) meta_dram: MetaAllocator,
    pub(crate) meta_pcm: MetaAllocator,
    pub(crate) chunks: ChunkManager,
    /// Old (non-young) objects remembered because they may reference young
    /// objects. Persists across nursery-only collections.
    pub(crate) remset_old: Vec<ObjectId>,
    /// Observer objects remembered because they may reference nursery
    /// objects. Consumed by every minor collection.
    pub(crate) remset_obs: Vec<ObjectId>,
    pub(crate) remset_cursor: u64,
    pub(crate) roots: Vec<Option<ObjectId>>,
    free_root_slots: Vec<usize>,
    boot_cursor: Addr,
    /// Minor collections since the last full-heap collection (full-GC
    /// scheduling cooldown).
    pub(crate) minor_since_full: u32,
    pub(crate) stats: GcStats,
    /// Cached handle to the `barrier.fast` metric (stores that skip the
    /// remembered-set log).
    barrier_fast: Counter,
    /// Cached handle to the `barrier.slow` metric (stores that log a
    /// remembered-set entry).
    barrier_slow: Counter,
}

impl ManagedHeap {
    /// Creates a managed heap for process `proc`, with its GC running on
    /// hardware context `ctx`. Reserves and binds the fixed regions
    /// (nursery, observer, boot, remset buffer) per the plan.
    ///
    /// # Errors
    ///
    /// Returns [`hemu_types::HemuError::InvalidConfig`] for degenerate
    /// configurations (zero-sized nursery or heap).
    pub fn new(machine: &mut Machine, proc: ProcId, ctx: CtxId, config: GcConfig) -> Result<Self> {
        Self::with_chunk_policy(machine, proc, ctx, config, ChunkPolicy::TwoLists)
    }

    /// Like [`ManagedHeap::new`], but with an explicit chunk free-list
    /// policy (the monolithic variant exists for the ablation study).
    pub fn with_chunk_policy(
        machine: &mut Machine,
        proc: ProcId,
        ctx: CtxId,
        config: GcConfig,
        policy: ChunkPolicy,
    ) -> Result<Self> {
        if config.nursery.bytes() == 0 || config.heap_size.bytes() == 0 {
            return Err(hemu_types::HemuError::InvalidConfig(
                "nursery and heap size must be positive".into(),
            ));
        }
        if config.nursery > layout::NURSERY_MAX {
            return Err(hemu_types::HemuError::InvalidConfig(format!(
                "nursery {} exceeds the {} reservation",
                config.nursery,
                layout::NURSERY_MAX
            )));
        }

        let young_socket = config.young_socket();
        machine.mbind(proc, layout::NURSERY_START, config.nursery, young_socket);
        let observer = config.observer.map(|sz| {
            machine.mbind(proc, layout::OBSERVER_START, sz, young_socket);
            BumpSpace::new("observer", layout::OBSERVER_START, sz)
        });
        machine.mbind(
            proc,
            layout::BOOT_START,
            layout::BOOT_SIZE,
            config.boot_socket(),
        );
        machine.mbind(
            proc,
            layout::REMSET_BUFFER,
            layout::REMSET_BUFFER_SIZE,
            young_socket,
        );

        Ok(ManagedHeap {
            proc,
            ctx,
            table: ObjectTable::new(),
            nursery: BumpSpace::new("nursery", layout::NURSERY_START, config.nursery),
            observer,
            mature_dram: ImmixSpace::new("mature-dram", Side::Dram),
            mature_pcm: ImmixSpace::new("mature-pcm", Side::Pcm),
            los_dram: LargeObjectSpace::new("los-dram", Side::Dram),
            los_pcm: LargeObjectSpace::new("los-pcm", Side::Pcm),
            meta_dram: MetaAllocator::new("meta-dram", Side::Dram),
            meta_pcm: MetaAllocator::new("meta-pcm", Side::Pcm),
            chunks: ChunkManager::new(policy, config.side_sockets(), proc),
            remset_old: Vec::new(),
            remset_obs: Vec::new(),
            remset_cursor: 0,
            roots: Vec::new(),
            free_root_slots: Vec::new(),
            boot_cursor: layout::BOOT_START,
            minor_since_full: 0,
            stats: GcStats::default(),
            barrier_fast: machine.obs().metrics.counter("barrier.fast"),
            barrier_slow: machine.obs().metrics.counter("barrier.slow"),
            config,
        })
    }

    /// The plan this heap runs.
    pub fn config(&self) -> &GcConfig {
        &self.config
    }

    /// The hardware context this heap's mutator and collector run on.
    pub fn ctx(&self) -> CtxId {
        self.ctx
    }

    /// The process whose address space this heap lives in.
    pub fn proc(&self) -> ProcId {
        self.proc
    }

    /// Collection and allocation statistics.
    pub fn stats(&self) -> &GcStats {
        &self.stats
    }

    /// The chunk manager (free lists), for inspection.
    pub fn chunks(&self) -> &ChunkManager {
        &self.chunks
    }

    /// Number of live objects.
    pub fn live_objects(&self) -> usize {
        self.table.live_count()
    }

    /// Bytes of live objects.
    pub fn live_bytes(&self) -> ByteSize {
        self.table.live_bytes()
    }

    /// Old-generation occupancy (mature + large spaces).
    pub fn old_gen_used(&self) -> ByteSize {
        self.mature_dram.used()
            + self.mature_pcm.used()
            + self.los_dram.used()
            + self.los_pcm.used()
    }

    /// The budget that triggers a full-heap collection: the heap size minus
    /// the young reservations (never less than a quarter of the heap).
    pub fn old_gen_budget(&self) -> ByteSize {
        let young = self.config.nursery + self.config.observer.unwrap_or(ByteSize::ZERO);
        let quarter = ByteSize::new(self.config.heap_size.bytes() / 4);
        self.config.heap_size.saturating_sub(young).max(quarter)
    }

    // ------------------------------------------------------------------
    // Allocation
    // ------------------------------------------------------------------

    /// Allocates an object with `ref_count` reference slots and
    /// `data_bytes` of scalar payload, zero-initialising its storage.
    ///
    /// Large objects (≥ 8 KiB) go to the large object space, or start in
    /// the nursery under the Large Object Optimization. Nursery exhaustion
    /// triggers a minor collection; old-generation pressure triggers a full
    /// collection.
    ///
    /// # Errors
    ///
    /// Returns an error if the heap cannot satisfy the request even after
    /// collecting.
    pub fn alloc(
        &mut self,
        machine: &mut Machine,
        ref_count: usize,
        data_bytes: usize,
    ) -> Result<ObjectId> {
        // Fault-injection point: a plan may force OOM at the Nth managed
        // allocation. A no-op unless an injector is installed.
        machine.fault_on_managed_alloc()?;
        let size = object_size(ref_count, data_bytes);
        let (addr, space) = self.alloc_raw(machine, size)?;

        // Java semantics: fresh storage is zero-initialised. This is one of
        // the three extra write sources of managed workloads (§VI.A).
        machine.set_write_tag(WriteTag::new(WriteCause::Mutator, space.tag()));
        machine.submit(self.ctx, self.proc, MemoryAccess::write(addr, size))?;

        self.stats.allocated_bytes += size as u64;
        self.stats.allocated_objects += 1;
        let mut info = ObjectInfo::fresh(addr, size, ref_count, space);
        if space.is_large() {
            // Objects born in a mature/large space need their mark slot now.
            info.meta = Some(self.meta_slot_for(machine, space)?);
        }
        Ok(self.table.insert(info))
    }

    fn alloc_raw(&mut self, machine: &mut Machine, size: u32) -> Result<(Addr, SpaceKind)> {
        if size >= LARGE_THRESHOLD {
            self.stats.large_allocated_bytes += size as u64;
            // LOO: small-ish large objects start in the nursery to give
            // them time to die (§II.B, §VI.E).
            if self.config.loo
                && size as u64 <= self.config.loo_nursery_max.bytes()
                && size as u64 <= self.config.nursery.bytes()
            {
                self.stats.loo_nursery_large += 1;
                let addr = self.nursery_alloc(machine, size)?;
                return Ok((addr, SpaceKind::Nursery));
            }
            // Directly into the PCM large object space (the mutator never
            // allocates large objects in DRAM; the collector rescues
            // written ones later).
            self.maybe_full_gc(machine, size)?;
            let addr = self.los_pcm.alloc(machine, &mut self.chunks, size)?;
            return Ok((addr, SpaceKind::LargePcm));
        }
        let addr = self.nursery_alloc(machine, size)?;
        Ok((addr, SpaceKind::Nursery))
    }

    fn nursery_alloc(&mut self, machine: &mut Machine, size: u32) -> Result<Addr> {
        if let Some(a) = self.nursery.alloc(size) {
            return Ok(a);
        }
        gc::minor_gc(self, machine, "nursery_full")?;
        self.maybe_full_gc(machine, size)?;
        self.nursery
            .alloc(size)
            .ok_or(hemu_types::HemuError::OutOfHeapMemory {
                requested: ByteSize::new(size as u64),
                space: "nursery",
            })
    }

    fn maybe_full_gc(&mut self, machine: &mut Machine, upcoming: u32) -> Result<()> {
        // Full-heap collection under old-generation pressure, with a
        // cooldown of two nursery cycles so a live set close to the budget
        // does not thrash the collector.
        if self.old_gen_used().bytes() + upcoming as u64 > self.old_gen_budget().bytes()
            && self.minor_since_full >= 2
        {
            gc::full_gc(self, machine, "old_gen_pressure")?;
        }
        Ok(())
    }

    /// Forces a full-heap collection.
    ///
    /// # Errors
    ///
    /// Propagates machine memory exhaustion.
    pub fn collect_full(&mut self, machine: &mut Machine) -> Result<()> {
        gc::full_gc(self, machine, "forced")
    }

    /// Allocates an object in the boot space. Boot objects are permanent
    /// GC roots (the VM boot image): never collected, never moved. The
    /// paper observes a large number of writes to the boot image, which is
    /// why every plan except PCM-Only keeps it in DRAM.
    ///
    /// # Errors
    ///
    /// Returns an error when the boot reservation is exhausted.
    pub fn alloc_boot(
        &mut self,
        machine: &mut Machine,
        ref_count: usize,
        data_bytes: usize,
    ) -> Result<ObjectId> {
        let size = object_size(ref_count, data_bytes);
        let end = layout::BOOT_START.raw() + layout::BOOT_SIZE.bytes();
        if self.boot_cursor.raw() + size as u64 > end {
            return Err(hemu_types::HemuError::OutOfHeapMemory {
                requested: ByteSize::new(size as u64),
                space: "boot",
            });
        }
        let addr = self.boot_cursor;
        self.boot_cursor = self.boot_cursor.offset(size as u64);
        machine.set_write_tag(WriteTag::new(WriteCause::Mutator, SpaceTag::Other));
        machine.submit(self.ctx, self.proc, MemoryAccess::write(addr, size))?;
        self.stats.allocated_bytes += size as u64;
        self.stats.allocated_objects += 1;
        Ok(self
            .table
            .insert(ObjectInfo::fresh(addr, size, ref_count, SpaceKind::Boot)))
    }

    pub(crate) fn meta_slot_for(
        &mut self,
        machine: &mut Machine,
        space: SpaceKind,
    ) -> Result<Addr> {
        let meta = if space.is_pcm_side() && !self.config.mdo {
            &mut self.meta_pcm
        } else {
            // MDO: PCM objects' mark bytes live in DRAM. DRAM-side objects'
            // metadata is DRAM-side regardless.
            &mut self.meta_dram
        };
        meta.alloc_slot(machine, &mut self.chunks)
    }

    // ------------------------------------------------------------------
    // Mutator field access
    // ------------------------------------------------------------------

    /// Stores `target` into reference slot `slot` of `src`, running the
    /// generational write barrier.
    ///
    /// # Errors
    ///
    /// Propagates machine memory exhaustion.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range for `src`.
    pub fn write_ref(
        &mut self,
        machine: &mut Machine,
        src: ObjectId,
        slot: usize,
        target: Option<ObjectId>,
    ) -> Result<()> {
        let (slot_addr, src_tag) = {
            let info = self.table.get(src);
            assert!(
                slot < info.ref_count as usize,
                "ref slot {slot} out of range"
            );
            (info.ref_slot_addr(slot), info.space.tag())
        };
        // The store itself.
        machine.set_write_tag(WriteTag::new(WriteCause::Mutator, src_tag));
        machine.submit(
            self.ctx,
            self.proc,
            MemoryAccess::write(slot_addr, WORD as u32),
        )?;
        self.monitor_write(machine, src)?;

        // Boundary write barrier: remember old→young and observer→nursery
        // pointers, one entry per source object (object remembering).
        let mut took_slow_path = false;
        if let Some(t) = target {
            let target_space = self.table.get(t).space;
            let src_space = self.table.get(src).space;
            if target_space.is_young() && !self.table.get(src).logged {
                let log = match src_space {
                    SpaceKind::Nursery => false,
                    SpaceKind::Observer => target_space == SpaceKind::Nursery,
                    _ => true,
                };
                if log {
                    took_slow_path = true;
                    self.table.get_mut(src).logged = true;
                    if src_space == SpaceKind::Observer {
                        self.remset_obs.push(src);
                    } else {
                        self.remset_old.push(src);
                    }
                    self.stats.remset_entries += 1;
                    // The barrier appends the source to a buffer in DRAM.
                    let buf = layout::REMSET_BUFFER.offset(
                        (self.remset_cursor * WORD as u64) % layout::REMSET_BUFFER_SIZE.bytes(),
                    );
                    self.remset_cursor += 1;
                    machine.set_write_tag(WriteTag::new(WriteCause::Metadata, SpaceTag::Meta));
                    machine.submit(self.ctx, self.proc, MemoryAccess::write(buf, WORD as u32))?;
                }
            }
        }
        if took_slow_path {
            self.barrier_slow.incr();
        } else {
            self.barrier_fast.incr();
        }

        self.table.get_mut(src).refs[slot] = target;
        Ok(())
    }

    /// Loads reference slot `slot` of `src`.
    ///
    /// # Errors
    ///
    /// Propagates machine memory exhaustion.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn read_ref(
        &mut self,
        machine: &mut Machine,
        src: ObjectId,
        slot: usize,
    ) -> Result<Option<ObjectId>> {
        let (addr, value) = {
            let info = self.table.get(src);
            assert!(
                slot < info.ref_count as usize,
                "ref slot {slot} out of range"
            );
            (info.ref_slot_addr(slot), info.refs[slot])
        };
        machine.submit(self.ctx, self.proc, MemoryAccess::read(addr, WORD as u32))?;
        Ok(value)
    }

    /// Writes `len` bytes of the object's scalar payload starting at
    /// `offset`.
    ///
    /// # Errors
    ///
    /// Propagates machine memory exhaustion.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the payload.
    pub fn write_data(
        &mut self,
        machine: &mut Machine,
        obj: ObjectId,
        offset: u32,
        len: u32,
    ) -> Result<()> {
        let (addr, tag) = {
            let info = self.table.get(obj);
            assert!(offset + len <= info.data_size(), "data write out of range");
            (info.data_addr().offset(offset as u64), info.space.tag())
        };
        machine.set_write_tag(WriteTag::new(WriteCause::Mutator, tag));
        machine.submit(self.ctx, self.proc, MemoryAccess::write(addr, len))?;
        self.monitor_write(machine, obj)
    }

    /// Reads `len` bytes of the object's scalar payload starting at
    /// `offset`.
    ///
    /// # Errors
    ///
    /// Propagates machine memory exhaustion.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the payload.
    pub fn read_data(
        &mut self,
        machine: &mut Machine,
        obj: ObjectId,
        offset: u32,
        len: u32,
    ) -> Result<()> {
        let addr = {
            let info = self.table.get(obj);
            assert!(offset + len <= info.data_size(), "data read out of range");
            info.data_addr().offset(offset as u64)
        };
        machine.submit(self.ctx, self.proc, MemoryAccess::read(addr, len))
    }

    /// KG-W write monitoring: the first store to an object under
    /// observation sets its written bit in the header (an extra write).
    /// Writes to PCM large objects are tracked the same way so mature
    /// collections can rescue them to DRAM.
    fn monitor_write(&mut self, machine: &mut Machine, obj: ObjectId) -> Result<()> {
        let (space, written, addr) = {
            let info = self.table.get(obj);
            (info.space, info.written, info.addr)
        };
        if written {
            return Ok(());
        }
        match space {
            SpaceKind::Observer => {
                self.table.get_mut(obj).written = true;
                self.stats.monitor_marks += 1;
                machine.set_write_tag(WriteTag::new(WriteCause::Metadata, SpaceTag::Observer));
                machine.submit(self.ctx, self.proc, MemoryAccess::write(addr, WORD as u32))?;
                // The first-write slow path of the monitoring barrier.
                machine.compute(self.ctx, hemu_types::Cycles::new(120));
            }
            SpaceKind::LargePcm if self.config.has_observer() => {
                // Same barrier path tags written large objects; the flag
                // rides in the header word the store already touched.
                self.table.get_mut(obj).written = true;
            }
            _ => {}
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Roots
    // ------------------------------------------------------------------

    /// Registers a new root slot holding `value`.
    pub fn new_root(&mut self, value: Option<ObjectId>) -> RootSlot {
        if let Some(i) = self.free_root_slots.pop() {
            self.roots[i] = value;
            RootSlot(i)
        } else {
            self.roots.push(value);
            RootSlot(self.roots.len() - 1)
        }
    }

    /// Replaces the object a root slot refers to.
    pub fn set_root(&mut self, slot: RootSlot, value: Option<ObjectId>) {
        self.roots[slot.0] = value;
    }

    /// Reads a root slot.
    pub fn root(&self, slot: RootSlot) -> Option<ObjectId> {
        self.roots[slot.0]
    }

    /// Releases a root slot (its referent becomes collectable).
    pub fn drop_root(&mut self, slot: RootSlot) {
        self.roots[slot.0] = None;
        self.free_root_slots.push(slot.0);
    }

    /// Returns the space an object currently lives in (for tests and
    /// reporting).
    pub fn space_of(&self, obj: ObjectId) -> SpaceKind {
        self.table.get(obj).space
    }

    /// Number of reference slots of a live object.
    pub fn ref_slots(&self, obj: ObjectId) -> usize {
        self.table.get(obj).ref_count as usize
    }

    /// Returns `true` if `obj` still names a live object.
    pub fn is_live(&self, obj: ObjectId) -> bool {
        self.table.is_live(obj)
    }
}
