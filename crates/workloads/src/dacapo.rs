//! Synthetic DaCapo mutators.
//!
//! One parameter set per benchmark, derived from each application's
//! published memory behaviour: allocation volume, object-size mix,
//! survival, mutation and read intensity, large-object fraction and
//! compute density. The model allocates through the real heap API, links
//! objects (exercising the write barrier), keeps a bounded survivor window
//! (exercising promotion), and mutates and reads live objects — producing
//! the nursery/mature access stream a generational heap sees from the real
//! benchmark.

use crate::memapi::{Memory, Obj, Root};
use crate::spec::{DatasetSize, Suite};
use crate::{StepResult, Workload};
use hemu_machine::Machine;
use hemu_types::{ByteSize, Cycles, DeterministicRng, Result};
use std::collections::VecDeque;

/// Names of the 11 DaCapo benchmarks in the evaluation (§IV), including
/// the updated `lu.Fix` (useless allocation removed) and `pmd.S`
/// (scalability bottleneck removed) variants.
pub const NAMES: [&str; 11] = [
    "avrora", "bloat", "eclipse", "fop", "hsqldb", "luindex", "lusearch", "lu.Fix", "pmd", "pmd.S",
    "xalan",
];

/// Behavioural parameters of one synthetic DaCapo benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DacapoParams {
    /// Benchmark name.
    pub name: &'static str,
    /// Bytes allocated per iteration (default dataset).
    pub total_alloc: ByteSize,
    /// Smallest object payload.
    pub size_min: u64,
    /// Largest small-object payload.
    pub size_max: u64,
    /// Fraction of allocations that survive into the live window.
    pub survival: f64,
    /// Capacity of the live window in bytes (the benchmark's steady live
    /// set; roughly half its minimum heap).
    pub live_window: ByteSize,
    /// Writes to random live objects per allocated object.
    pub mutations_per_alloc: f64,
    /// Reads of random live objects per allocated object.
    pub reads_per_alloc: f64,
    /// Fraction of allocations that are large (16–64 KiB).
    pub large_frac: f64,
    /// Reference slots per object (barrier pressure).
    pub ref_slots: usize,
    /// Compute cycles per allocated object (compute-to-memory balance).
    pub compute_per_alloc: u64,
    /// Heap budget (twice the minimum heap, §IV).
    pub heap: ByteSize,
    /// Allocation multiplier for the large dataset.
    pub large_scale: u64,
}

/// Looks up the parameter set for a DaCapo benchmark name.
pub fn params_for(name: &str) -> Option<DacapoParams> {
    let mib = ByteSize::from_mib;
    let p = |name,
             total_alloc,
             size_min,
             size_max,
             survival,
             live_window,
             mutations_per_alloc,
             reads_per_alloc,
             large_frac,
             ref_slots,
             compute_per_alloc,
             heap,
             large_scale| DacapoParams {
        name,
        total_alloc,
        size_min,
        size_max,
        survival,
        live_window,
        mutations_per_alloc,
        reads_per_alloc,
        large_frac,
        ref_slots,
        compute_per_alloc,
        heap,
        large_scale,
    };
    Some(match name {
        // avrora: AVR simulator — tiny allocation, compute heavy, small
        // steady state.
        "avrora" => p(
            "avrora",
            mib(12),
            16,
            96,
            0.04,
            mib(3),
            1.5,
            4.0,
            0.0,
            1,
            900,
            mib(50),
            2,
        ),
        // bloat: bytecode optimizer — moderate churn, pointer rich.
        "bloat" => p(
            "bloat",
            mib(40),
            24,
            256,
            0.05,
            mib(6),
            1.0,
            2.0,
            0.002,
            3,
            250,
            mib(50),
            3,
        ),
        // eclipse: IDE workload — biggest DaCapo, large live set.
        "eclipse" => p(
            "eclipse",
            mib(80),
            24,
            512,
            0.08,
            mib(20),
            0.8,
            2.0,
            0.004,
            3,
            220,
            mib(90),
            2,
        ),
        // fop: XSL-FO to PDF — short run, document tree survives.
        "fop" => p(
            "fop",
            mib(20),
            24,
            384,
            0.12,
            mib(8),
            0.7,
            1.5,
            0.006,
            2,
            200,
            mib(50),
            2,
        ),
        // hsqldb: in-memory database — big live tables, mutation heavy.
        "hsqldb" => p(
            "hsqldb",
            mib(28),
            32,
            256,
            0.25,
            mib(24),
            2.0,
            2.5,
            0.002,
            2,
            180,
            mib(100),
            3,
        ),
        // luindex: Lucene indexing — streaming, modest survival.
        "luindex" => p(
            "luindex",
            mib(24),
            24,
            192,
            0.06,
            mib(4),
            0.9,
            2.0,
            0.003,
            1,
            260,
            mib(40),
            4,
        ),
        // lusearch: Lucene search — extreme allocation churn, almost
        // nothing survives; one of the high write-rate DaCapos (Fig. 6).
        "lusearch" => p(
            "lusearch",
            mib(140),
            32,
            512,
            0.01,
            mib(4),
            0.5,
            1.2,
            0.001,
            1,
            60,
            mib(40),
            3,
        ),
        // lu.Fix: lusearch with the useless allocation eliminated [55].
        "lu.Fix" => p(
            "lu.Fix",
            mib(48),
            32,
            512,
            0.03,
            mib(4),
            0.5,
            1.2,
            0.001,
            1,
            170,
            mib(40),
            3,
        ),
        // pmd: source analyser — AST heavy; the original input includes a
        // large file that becomes big mature objects [16].
        "pmd" => p(
            "pmd",
            mib(52),
            24,
            320,
            0.07,
            mib(10),
            0.9,
            1.8,
            0.010,
            4,
            200,
            mib(60),
            3,
        ),
        // pmd.S: the scalability-fixed variant without the large file.
        "pmd.S" => p(
            "pmd.S",
            mib(52),
            24,
            320,
            0.07,
            mib(10),
            0.9,
            1.8,
            0.002,
            4,
            180,
            mib(60),
            3,
        ),
        // xalan: XSLT processor — high churn and mutation (string
        // buffers); the other high write-rate DaCapo.
        "xalan" => p(
            "xalan",
            mib(110),
            32,
            448,
            0.04,
            mib(8),
            2.2,
            2.0,
            0.003,
            2,
            90,
            mib(60),
            3,
        ),
        _ => return None,
    })
}

/// Allocation batch processed per [`Workload::step`] call.
const STEP_OBJECTS: u32 = 256;

/// A running synthetic DaCapo benchmark.
#[derive(Debug)]
pub struct DacapoWorkload {
    params: DacapoParams,
    dataset: DatasetSize,
    rng: DeterministicRng,
    /// Live window of (object, root) pairs with their sizes.
    live: VecDeque<(Obj, Root, u32)>,
    live_bytes: u64,
    allocated_this_iter: u64,
    target_alloc: u64,
}

impl DacapoWorkload {
    /// Creates the benchmark with a deterministic seed.
    pub fn new(params: DacapoParams, dataset: DatasetSize, seed: u64) -> Self {
        let scale = match dataset {
            DatasetSize::Default => 1,
            DatasetSize::Large => params.large_scale,
        };
        DacapoWorkload {
            params,
            dataset,
            rng: DeterministicRng::seeded(seed ^ fxhash(params.name)),
            live: VecDeque::new(),
            live_bytes: 0,
            allocated_this_iter: 0,
            target_alloc: params.total_alloc.bytes() * scale,
        }
    }

    /// The dataset this instance runs.
    pub fn dataset(&self) -> DatasetSize {
        self.dataset
    }

    fn touch_live(&mut self, machine: &mut Machine, mem: &mut Memory, write: bool) -> Result<()> {
        if self.live.is_empty() {
            return Ok(());
        }
        let idx = self.rng.below(self.live.len() as u64) as usize;
        let (obj, _, size) = self.live[idx];
        let span = (self.rng.range(8, 65) as u32).min(size);
        let off = if size > span {
            self.rng.below((size - span) as u64) as u32
        } else {
            0
        };
        if write {
            mem.write_data(machine, obj, off, span)
        } else {
            mem.read_data(machine, obj, off, span)
        }
    }
}

fn fxhash(s: &str) -> u64 {
    s.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
    })
}

impl Workload for DacapoWorkload {
    fn name(&self) -> &str {
        self.params.name
    }

    fn suite(&self) -> Suite {
        Suite::DaCapo
    }

    fn heap_size(&self) -> ByteSize {
        self.params.heap
    }

    fn step(&mut self, machine: &mut Machine, mem: &mut Memory) -> Result<StepResult> {
        let p = self.params;
        for _ in 0..STEP_OBJECTS {
            // Pick a size: mostly small, occasionally large.
            let data = if self.rng.chance(p.large_frac) {
                self.rng.range(16 * 1024, 64 * 1024)
            } else {
                self.rng.skewed(p.size_min, p.size_max)
            } as usize;
            let obj = mem.alloc(machine, p.ref_slots, data)?;
            let size = data as u32;
            self.allocated_this_iter += size as u64;

            // Initialise the object's payload (constructors write fields).
            mem.write_data(machine, obj, 0, size.min(64))?;

            // Link into the live graph occasionally: exercises the write
            // barrier with old→young pointers.
            if p.ref_slots > 0 && !self.live.is_empty() && self.rng.chance(0.3) {
                let idx = self.rng.below(self.live.len() as u64) as usize;
                let (holder, _, _) = self.live[idx];
                let slot = self.rng.below(p.ref_slots as u64) as usize;
                mem.write_ref(machine, holder, slot, Some(obj))?;
            }

            // Survival: root it into the live window.
            if self.rng.chance(p.survival) {
                let root = mem.add_root(obj);
                self.live.push_back((obj, root, size));
                self.live_bytes += size as u64;
                while self.live_bytes > p.live_window.bytes() {
                    let Some((dead, root, sz)) = self.live.pop_front() else {
                        break;
                    };
                    mem.drop_root(root);
                    mem.free(dead); // explicit free is a no-op when managed
                    self.live_bytes -= sz as u64;
                }
            } else if !mem.is_managed() {
                mem.free(obj);
            }

            // Mutations and reads against the live set.
            let mut writes = p.mutations_per_alloc;
            while writes >= 1.0 || self.rng.chance(writes) {
                self.touch_live(machine, mem, true)?;
                writes -= 1.0;
                if writes < 0.0 {
                    break;
                }
            }
            let mut reads = p.reads_per_alloc;
            while reads >= 1.0 || self.rng.chance(reads) {
                self.touch_live(machine, mem, false)?;
                reads -= 1.0;
                if reads < 0.0 {
                    break;
                }
            }

            mem.compute(machine, Cycles::new(p.compute_per_alloc));
        }
        if self.allocated_this_iter >= self.target_alloc {
            Ok(StepResult::IterationDone)
        } else {
            Ok(StepResult::Running)
        }
    }

    fn start_iteration(&mut self) {
        self.allocated_this_iter = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_eleven_benchmarks_have_parameters() {
        for name in NAMES {
            let p = params_for(name).unwrap();
            assert_eq!(p.name, name);
            assert!(p.total_alloc.bytes() > 0);
            assert!(
                p.heap > p.live_window,
                "{name}: heap must exceed live window"
            );
            assert!(p.survival > 0.0 && p.survival < 1.0);
        }
        assert!(params_for("jython").is_none(), "jython was dropped (§IV)");
    }

    #[test]
    fn lusearch_fix_allocates_much_less() {
        // lu.Fix eliminates useless allocation [55].
        let lu = params_for("lusearch").unwrap();
        let luf = params_for("lu.Fix").unwrap();
        assert!(luf.total_alloc.bytes() * 2 < lu.total_alloc.bytes());
    }

    #[test]
    fn pmd_s_differs_only_in_input_related_parameters() {
        let pmd = params_for("pmd").unwrap();
        let pmds = params_for("pmd.S").unwrap();
        assert_eq!(pmd.total_alloc, pmds.total_alloc);
        assert!(
            pmds.large_frac < pmd.large_frac,
            "pmd.S drops the large input file"
        );
    }

    #[test]
    fn large_dataset_scales_target_allocation() {
        let p = params_for("luindex").unwrap();
        let d = DacapoWorkload::new(p, DatasetSize::Default, 1);
        let l = DacapoWorkload::new(p, DatasetSize::Large, 1);
        assert_eq!(l.target_alloc, d.target_alloc * p.large_scale);
    }
}
