//! The GraphChi applications: PageRank, Connected Components and ALS
//! matrix factorisation, implemented for real over synthetic datasets.
//!
//! The paper processes 1 M edges of the LiveJournal social network (PR,
//! CC) and 1 M ratings of the Netflix Challenge training set (ALS); the
//! large dataset is 10 M edges / 10 M ratings. Both datasets are
//! proprietary or impractically large to ship, so we generate synthetic
//! equivalents with the same shape: power-law degree distributions from a
//! Zipf sampler (social graphs) and Zipf-popular items (ratings).
//!
//! Each application runs in two modes over the same algorithm code:
//!
//! * **Java** ([`Memory::Managed`]): vertex/edge state lives in chunked
//!   arrays that are *reallocated each iteration* (as the Java GraphChi
//!   engine does), and per-edge updates box temporary values — the
//!   allocation-heavy behaviour behind Fig. 3;
//! * **C++** ([`Memory::Native`]): the same arrays are allocated once and
//!   updated in place, and temporaries stay in registers.

use crate::memapi::{Memory, Obj, Root};
use crate::spec::{DatasetSize, Suite};
use crate::{StepResult, Workload};
use hemu_machine::Machine;
use hemu_types::{ByteSize, Cycles, DeterministicRng, Result};

/// Chunk size for application arrays (a GraphChi shard buffer).
const ARRAY_CHUNK: u32 = 32 * 1024;

/// A synthetic power-law graph.
#[derive(Debug, Clone)]
pub struct GraphDataset {
    /// Number of vertices.
    pub vertices: u32,
    /// Directed edges (source, destination).
    pub edges: Vec<(u32, u32)>,
}

/// Generates a power-law graph with `n` vertices and `m` edges.
///
/// Sources and destinations are drawn from Zipf distributions and
/// scattered with a multiplicative hash so the hot vertices are not
/// address-adjacent — matching the locality profile of a real social
/// graph.
pub fn generate_graph(n: u32, m: u64, seed: u64) -> GraphDataset {
    let mut rng = DeterministicRng::seeded(seed);
    let scatter = |v: u64, n: u64| -> u32 { ((v.wrapping_mul(0x9E37_79B9) + 7) % n) as u32 };
    let mut edges = Vec::with_capacity(m as usize);
    for _ in 0..m {
        let u = scatter(rng.zipf(n as u64, 0.8), n as u64);
        let mut v = scatter(rng.zipf(n as u64, 0.8), n as u64);
        if u == v {
            v = (v + 1) % n;
        }
        edges.push((u, v));
    }
    GraphDataset { vertices: n, edges }
}

/// A synthetic ratings dataset (Netflix-Challenge shaped).
#[derive(Debug, Clone)]
pub struct RatingsDataset {
    /// Number of users.
    pub users: u32,
    /// Number of items.
    pub items: u32,
    /// (user, item) rating pairs.
    pub ratings: Vec<(u32, u32)>,
}

/// Generates `m` ratings over `users × items` with Zipf-popular items.
pub fn generate_ratings(users: u32, items: u32, m: u64, seed: u64) -> RatingsDataset {
    let mut rng = DeterministicRng::seeded(seed ^ 0xA15);
    let mut ratings = Vec::with_capacity(m as usize);
    for _ in 0..m {
        let u = rng.below(users as u64) as u32;
        let i = rng.zipf(items as u64, 0.8) as u32;
        ratings.push((u, i));
    }
    RatingsDataset {
        users,
        items,
        ratings,
    }
}

/// An application array stored as rooted 32 KiB chunks, with per-entry
/// read/write traffic helpers.
#[derive(Debug, Default)]
struct ChunkedArray {
    chunks: Vec<(Obj, Root)>,
    entry_bytes: u32,
    entries_per_chunk: u32,
}

impl ChunkedArray {
    fn build(
        machine: &mut Machine,
        mem: &mut Memory,
        entries: u64,
        entry_bytes: u32,
        initialise: bool,
    ) -> Result<Self> {
        let entries_per_chunk = ARRAY_CHUNK / entry_bytes;
        let chunk_count = entries.div_ceil(entries_per_chunk as u64);
        let mut chunks = Vec::with_capacity(chunk_count as usize);
        for _ in 0..chunk_count {
            let o = mem.alloc(machine, 0, ARRAY_CHUNK as usize)?;
            if initialise {
                mem.write_data(machine, o, 0, ARRAY_CHUNK)?;
            }
            let r = mem.add_root(o);
            chunks.push((o, r));
        }
        Ok(ChunkedArray {
            chunks,
            entry_bytes,
            entries_per_chunk,
        })
    }

    fn locate(&self, index: u64) -> (Obj, u32) {
        let chunk = (index / self.entries_per_chunk as u64) as usize;
        let off = (index % self.entries_per_chunk as u64) as u32 * self.entry_bytes;
        (self.chunks[chunk].0, off)
    }

    fn read(&self, machine: &mut Machine, mem: &mut Memory, index: u64) -> Result<()> {
        let (obj, off) = self.locate(index);
        mem.read_data(machine, obj, off, self.entry_bytes)
    }

    fn write(&self, machine: &mut Machine, mem: &mut Memory, index: u64) -> Result<()> {
        let (obj, off) = self.locate(index);
        mem.write_data(machine, obj, off, self.entry_bytes)
    }

    /// Streams the whole array: one read (and optionally one write) per
    /// chunk, as an end-of-iteration sweep does.
    fn sweep(&self, machine: &mut Machine, mem: &mut Memory, write_back: bool) -> Result<()> {
        for &(obj, _) in &self.chunks {
            mem.read_data(machine, obj, 0, ARRAY_CHUNK)?;
            if write_back {
                mem.write_data(machine, obj, 0, ARRAY_CHUNK)?;
            }
        }
        Ok(())
    }

    /// Sequentially writes `entries` entries starting at `start_entry`
    /// (wrapping), chunk segment by chunk segment — a GraphChi shard
    /// write-back. Sequential write-back dirties each cache line once,
    /// unlike scattered in-place updates.
    fn flush_region(
        &self,
        machine: &mut Machine,
        mem: &mut Memory,
        start_entry: u64,
        entries: u64,
    ) -> Result<()> {
        if self.chunks.is_empty() || entries == 0 {
            return Ok(());
        }
        let total = self.chunks.len() as u64 * self.entries_per_chunk as u64;
        let mut remaining = entries.min(total);
        let mut pos = start_entry % total;
        while remaining > 0 {
            let chunk = (pos / self.entries_per_chunk as u64) as usize;
            let entry_in_chunk = pos % self.entries_per_chunk as u64;
            let n = remaining.min(self.entries_per_chunk as u64 - entry_in_chunk);
            mem.write_data(
                machine,
                self.chunks[chunk].0,
                (entry_in_chunk * self.entry_bytes as u64) as u32,
                (n * self.entry_bytes as u64) as u32,
            )?;
            pos = (pos + n) % total;
            remaining -= n;
        }
        Ok(())
    }
}

/// Replaces the per-interval shard buffer: the old one (if any) dies, a
/// fresh one is allocated and partially written. GraphChi's engine
/// allocates such short-lived large buffers per execution interval; they
/// are the main beneficiaries of the Large Object Optimization.
fn replace_interval_buffer(
    machine: &mut Machine,
    mem: &mut Memory,
    slot: &mut Option<(Obj, Root)>,
) -> Result<()> {
    if let Some((old, root)) = slot.take() {
        mem.drop_root(root);
        mem.free(old);
    }
    let buf = mem.alloc(machine, 0, 32 * 1024)?;
    mem.write_data(machine, buf, 0, 8 * 1024)?;
    let root = mem.add_root(buf);
    *slot = Some((buf, root));
    Ok(())
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Build { pos: u64 },
    Iterate { iteration: u32, pos: u64 },
    Done,
}

/// Edges (or ratings) processed per step call.
const STEP_EDGES: u64 = 8192;
/// Entries of the on-heap edge array per build step.
const BUILD_EDGES: u64 = 65_536;

fn dataset_edges(dataset: DatasetSize) -> (u32, u64) {
    // The vertex universe is LiveJournal-shaped (millions of vertices), so
    // the per-iteration vertex arrays alone exceed the 20 MiB LLC; the
    // default dataset processes 1 M edges and the large one 10 M (§IV).
    match dataset {
        DatasetSize::Default => (1 << 22, 1_000_000),
        DatasetSize::Large => (1 << 22, 10_000_000),
    }
}

// ---------------------------------------------------------------------
// PageRank
// ---------------------------------------------------------------------

/// GraphChi PageRank (PR).
#[derive(Debug)]
pub struct PageRank {
    graph: GraphDataset,
    native: bool,
    rng: DeterministicRng,
    phase: Phase,
    iterations: u32,
    edge_array: ChunkedArray,
    ranks: ChunkedArray,
    next: ChunkedArray,
    interval_buffer: Option<(Obj, Root)>,
    heap: ByteSize,
}

impl PageRank {
    /// Creates a PageRank run over the chosen dataset; `native` selects
    /// the C++ implementation.
    pub fn new(dataset: DatasetSize, native: bool, seed: u64) -> Self {
        let (n, m) = dataset_edges(dataset);
        PageRank {
            graph: generate_graph(n, m, seed ^ 0x47),
            native,
            rng: DeterministicRng::seeded(seed),
            phase: Phase::Build { pos: 0 },
            iterations: 2,
            edge_array: ChunkedArray::default(),
            ranks: ChunkedArray::default(),
            next: ChunkedArray::default(),
            interval_buffer: None,
            heap: match dataset {
                DatasetSize::Default => ByteSize::from_mib(160),
                DatasetSize::Large => ByteSize::from_mib(384),
            },
        }
    }
}

impl PageRank {
    /// `true` when this instance models the C++ implementation and must
    /// be driven with a [`Memory::Native`].
    pub fn expects_native(&self) -> bool {
        self.native
    }
}

impl Workload for PageRank {
    fn name(&self) -> &str {
        "pr"
    }

    fn suite(&self) -> Suite {
        Suite::GraphChi
    }

    fn heap_size(&self) -> ByteSize {
        self.heap
    }

    fn step(&mut self, machine: &mut Machine, mem: &mut Memory) -> Result<StepResult> {
        match self.phase {
            Phase::Build { pos } => {
                if pos == 0 {
                    self.edge_array = ChunkedArray::build(
                        machine, mem, 0, // chunks appended below as edges stream in
                        8, false,
                    )?;
                    self.edge_array.entry_bytes = 8;
                    self.edge_array.entries_per_chunk = ARRAY_CHUNK / 8;
                    self.ranks =
                        ChunkedArray::build(machine, mem, self.graph.vertices as u64, 8, true)?;
                    self.next =
                        ChunkedArray::build(machine, mem, self.graph.vertices as u64, 8, true)?;
                }
                // Stream a slab of edges into the on-heap edge array.
                let end = (pos + BUILD_EDGES).min(self.graph.edges.len() as u64);
                let need_chunks = end.div_ceil(self.edge_array.entries_per_chunk as u64) as usize;
                while self.edge_array.chunks.len() < need_chunks {
                    let o = mem.alloc(machine, 0, ARRAY_CHUNK as usize)?;
                    mem.write_data(machine, o, 0, ARRAY_CHUNK)?;
                    let r = mem.add_root(o);
                    self.edge_array.chunks.push((o, r));
                }
                self.phase = if end == self.graph.edges.len() as u64 {
                    Phase::Iterate {
                        iteration: 0,
                        pos: 0,
                    }
                } else {
                    Phase::Build { pos: end }
                };
                Ok(StepResult::Running)
            }
            Phase::Iterate { iteration, pos } => {
                let m = self.graph.edges.len() as u64;
                let end = (pos + STEP_EDGES).min(m);
                let managed = mem.is_managed();
                for e in pos..end {
                    let (u, v) = self.graph.edges[e as usize];
                    self.edge_array.read(machine, mem, e)?;
                    self.ranks.read(machine, mem, u as u64)?;
                    if managed {
                        // Java: per-edge updates accumulate in freshly
                        // allocated interval objects (ChiVertex wrappers
                        // and boxed floats); the shard is written back
                        // sequentially at the end of the interval.
                        let wrapper = mem.alloc(machine, 0, 40)?;
                        mem.write_data(machine, wrapper, 0, 32)?;
                        if e % 2 == 0 {
                            let boxed = mem.alloc(machine, 0, 8)?;
                            mem.write_data(machine, boxed, 0, 8)?;
                        }
                    } else {
                        // C++: in-place scattered accumulation.
                        self.next.write(machine, mem, v as u64)?;
                    }
                    machine.compute(mem.ctx(), Cycles::new(12));
                }
                if managed {
                    // Sequential shard write-back of this interval.
                    self.next.flush_region(machine, mem, pos, end - pos)?;
                    // The engine's sliding-shard buffer: a short-lived
                    // large object per interval (the LOO's main target).
                    replace_interval_buffer(machine, mem, &mut self.interval_buffer)?;
                }
                if end < m {
                    self.phase = Phase::Iterate {
                        iteration,
                        pos: end,
                    };
                    return Ok(StepResult::Running);
                }
                // End of super-step: fold `next` into `ranks`. Java swaps
                // the managed array references after a read-only
                // normalisation pass; C++ copies the accumulator back into
                // the rank array in place.
                self.next.sweep(machine, mem, false)?;
                if managed {
                    std::mem::swap(&mut self.ranks, &mut self.next);
                } else {
                    self.ranks.sweep(machine, mem, true)?;
                }
                let _ = self.rng.next_u64(); // advance the stream per super-step
                if iteration + 1 == self.iterations {
                    self.phase = Phase::Done;
                    Ok(StepResult::IterationDone)
                } else {
                    self.phase = Phase::Iterate {
                        iteration: iteration + 1,
                        pos: 0,
                    };
                    Ok(StepResult::Running)
                }
            }
            Phase::Done => {
                self.phase = Phase::Iterate {
                    iteration: 0,
                    pos: 0,
                };
                self.step(machine, mem)
            }
        }
    }

    fn start_iteration(&mut self) {
        if !matches!(self.phase, Phase::Build { .. }) {
            self.phase = Phase::Iterate {
                iteration: 0,
                pos: 0,
            };
        }
    }
}

// ---------------------------------------------------------------------
// Connected Components
// ---------------------------------------------------------------------

/// GraphChi Connected Components (CC): label propagation to a fixpoint.
#[derive(Debug)]
pub struct ConnectedComponents {
    graph: GraphDataset,
    native: bool,
    phase: Phase,
    iterations: u32,
    labels: Vec<u32>,
    edge_array: ChunkedArray,
    label_array: ChunkedArray,
    interval_buffer: Option<(Obj, Root)>,
    heap: ByteSize,
    changes_this_sweep: u64,
}

impl ConnectedComponents {
    /// Creates a CC run over the chosen dataset.
    pub fn new(dataset: DatasetSize, native: bool, seed: u64) -> Self {
        let (n, m) = dataset_edges(dataset);
        let graph = generate_graph(n, m, seed ^ 0xCC);
        ConnectedComponents {
            labels: (0..graph.vertices).collect(),
            graph,
            native,
            phase: Phase::Build { pos: 0 },
            iterations: 3,
            edge_array: ChunkedArray::default(),
            label_array: ChunkedArray::default(),
            interval_buffer: None,
            heap: match dataset {
                DatasetSize::Default => ByteSize::from_mib(96),
                DatasetSize::Large => ByteSize::from_mib(288),
            },
            changes_this_sweep: 0,
        }
    }

    /// Number of distinct labels remaining (for verification).
    pub fn component_estimate(&self) -> usize {
        let mut roots: Vec<u32> = self.labels.clone();
        roots.sort_unstable();
        roots.dedup();
        roots.len()
    }
}

impl ConnectedComponents {
    /// `true` when this instance models the C++ implementation and must
    /// be driven with a [`Memory::Native`].
    pub fn expects_native(&self) -> bool {
        self.native
    }
}

impl Workload for ConnectedComponents {
    fn name(&self) -> &str {
        "cc"
    }

    fn suite(&self) -> Suite {
        Suite::GraphChi
    }

    fn heap_size(&self) -> ByteSize {
        self.heap
    }

    fn step(&mut self, machine: &mut Machine, mem: &mut Memory) -> Result<StepResult> {
        match self.phase {
            Phase::Build { pos } => {
                if pos == 0 {
                    self.edge_array =
                        ChunkedArray::build(machine, mem, self.graph.edges.len() as u64, 8, true)?;
                    self.label_array =
                        ChunkedArray::build(machine, mem, self.graph.vertices as u64, 8, true)?;
                }
                self.phase = Phase::Iterate {
                    iteration: 0,
                    pos: 0,
                };
                Ok(StepResult::Running)
            }
            Phase::Iterate { iteration, pos } => {
                let m = self.graph.edges.len() as u64;
                let end = (pos + STEP_EDGES).min(m);
                let managed = mem.is_managed();
                let mut changes_this_quantum = 0u64;
                for e in pos..end {
                    let (u, v) = self.graph.edges[e as usize];
                    self.edge_array.read(machine, mem, e)?;
                    self.label_array.read(machine, mem, u as u64)?;
                    self.label_array.read(machine, mem, v as u64)?;
                    let (lu, lv) = (self.labels[u as usize], self.labels[v as usize]);
                    if lu != lv {
                        let min = lu.min(lv);
                        self.labels[u as usize] = min;
                        self.labels[v as usize] = min;
                        changes_this_quantum += 2;
                        self.changes_this_sweep += 1;
                        if managed {
                            // Java: every propagated label is a boxed
                            // message object in the GraphChi-Java engine.
                            let boxed = mem.alloc(machine, 0, 24)?;
                            mem.write_data(machine, boxed, 0, 16)?;
                        } else {
                            // C++: in-place scattered label stores.
                            self.label_array.write(machine, mem, u as u64)?;
                            self.label_array.write(machine, mem, v as u64)?;
                        }
                    }
                    machine.compute(mem.ctx(), Cycles::new(10));
                }
                if managed {
                    self.label_array
                        .flush_region(machine, mem, pos, changes_this_quantum)?;
                    replace_interval_buffer(machine, mem, &mut self.interval_buffer)?;
                }
                if end < m {
                    self.phase = Phase::Iterate {
                        iteration,
                        pos: end,
                    };
                    return Ok(StepResult::Running);
                }
                let converged = self.changes_this_sweep == 0;
                self.changes_this_sweep = 0;
                if converged || iteration + 1 == self.iterations {
                    self.phase = Phase::Done;
                    Ok(StepResult::IterationDone)
                } else {
                    self.phase = Phase::Iterate {
                        iteration: iteration + 1,
                        pos: 0,
                    };
                    Ok(StepResult::Running)
                }
            }
            Phase::Done => {
                self.phase = Phase::Iterate {
                    iteration: 0,
                    pos: 0,
                };
                self.step(machine, mem)
            }
        }
    }

    fn start_iteration(&mut self) {
        if !matches!(self.phase, Phase::Build { .. }) {
            self.phase = Phase::Iterate {
                iteration: 0,
                pos: 0,
            };
        }
        // A fresh benchmark iteration recomputes components from scratch.
        self.labels = (0..self.graph.vertices).collect();
        self.changes_this_sweep = 0;
    }
}

// ---------------------------------------------------------------------
// ALS matrix factorisation
// ---------------------------------------------------------------------

/// GraphChi ALS matrix factorisation over a ratings matrix.
#[derive(Debug)]
pub struct Als {
    ratings: RatingsDataset,
    native: bool,
    phase: Phase,
    sweeps: u32,
    rating_array: ChunkedArray,
    user_vecs: ChunkedArray,
    item_vecs: ChunkedArray,
    interval_buffer: Option<(Obj, Root)>,
    heap: ByteSize,
}

impl Als {
    /// Creates an ALS run: 64-byte latent-factor vectors per user and
    /// item, alternating user and item sweeps.
    pub fn new(dataset: DatasetSize, native: bool, seed: u64) -> Self {
        // Netflix-Challenge shaped: ~half a million users, a small item
        // catalogue, 1 M (default) or 10 M (large) ratings.
        let (users, items, m) = match dataset {
            DatasetSize::Default => (1 << 19, 1 << 14, 1_000_000),
            DatasetSize::Large => (1 << 19, 1 << 14, 10_000_000),
        };
        Als {
            ratings: generate_ratings(users, items, m, seed),
            native,
            phase: Phase::Build { pos: 0 },
            sweeps: 1,
            rating_array: ChunkedArray::default(),
            user_vecs: ChunkedArray::default(),
            item_vecs: ChunkedArray::default(),
            interval_buffer: None,
            heap: match dataset {
                DatasetSize::Default => ByteSize::from_mib(128),
                DatasetSize::Large => ByteSize::from_mib(288),
            },
        }
    }
}

impl Als {
    /// `true` when this instance models the C++ implementation and must
    /// be driven with a [`Memory::Native`].
    pub fn expects_native(&self) -> bool {
        self.native
    }
}

impl Workload for Als {
    fn name(&self) -> &str {
        "als"
    }

    fn suite(&self) -> Suite {
        Suite::GraphChi
    }

    fn heap_size(&self) -> ByteSize {
        self.heap
    }

    fn step(&mut self, machine: &mut Machine, mem: &mut Memory) -> Result<StepResult> {
        match self.phase {
            Phase::Build { pos } => {
                if pos == 0 {
                    self.rating_array = ChunkedArray::build(
                        machine,
                        mem,
                        self.ratings.ratings.len() as u64,
                        8,
                        true,
                    )?;
                    self.user_vecs =
                        ChunkedArray::build(machine, mem, self.ratings.users as u64, 64, true)?;
                    self.item_vecs =
                        ChunkedArray::build(machine, mem, self.ratings.items as u64, 64, true)?;
                }
                self.phase = Phase::Iterate {
                    iteration: 0,
                    pos: 0,
                };
                Ok(StepResult::Running)
            }
            Phase::Iterate { iteration, pos } => {
                let m = self.ratings.ratings.len() as u64;
                let end = (pos + STEP_EDGES).min(m);
                let user_sweep = iteration % 2 == 0;
                let managed = mem.is_managed();
                for e in pos..end {
                    let (u, i) = self.ratings.ratings[e as usize];
                    self.rating_array.read(machine, mem, e)?;
                    self.user_vecs.read(machine, mem, u as u64)?;
                    self.item_vecs.read(machine, mem, i as u64)?;
                    if managed {
                        // Java: the solver accumulates into a temporary
                        // factor vector object and boxes the rating; the
                        // updated factors are written back sequentially
                        // per interval.
                        let tmp = mem.alloc(machine, 0, 64)?;
                        mem.write_data(machine, tmp, 0, 64)?;
                        if e % 2 == 0 {
                            let boxed = mem.alloc(machine, 0, 8)?;
                            mem.write_data(machine, boxed, 0, 8)?;
                        }
                    } else if user_sweep {
                        self.user_vecs.write(machine, mem, u as u64)?;
                    } else {
                        self.item_vecs.write(machine, mem, i as u64)?;
                    }
                    machine.compute(mem.ctx(), Cycles::new(60));
                }
                if managed {
                    // Interval write-back: roughly one factor update per
                    // two ratings survives deduplication.
                    let updates = (end - pos) / 2;
                    if user_sweep {
                        self.user_vecs.flush_region(machine, mem, pos, updates)?;
                    } else {
                        self.item_vecs.flush_region(machine, mem, pos, updates)?;
                    }
                    replace_interval_buffer(machine, mem, &mut self.interval_buffer)?;
                }
                if end < m {
                    self.phase = Phase::Iterate {
                        iteration,
                        pos: end,
                    };
                    return Ok(StepResult::Running);
                }
                if iteration + 1 == 2 * self.sweeps {
                    self.phase = Phase::Done;
                    Ok(StepResult::IterationDone)
                } else {
                    self.phase = Phase::Iterate {
                        iteration: iteration + 1,
                        pos: 0,
                    };
                    Ok(StepResult::Running)
                }
            }
            Phase::Done => {
                self.phase = Phase::Iterate {
                    iteration: 0,
                    pos: 0,
                };
                self.step(machine, mem)
            }
        }
    }

    fn start_iteration(&mut self) {
        if !matches!(self.phase, Phase::Build { .. }) {
            self.phase = Phase::Iterate {
                iteration: 0,
                pos: 0,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_generator_is_deterministic_and_power_law() {
        let a = generate_graph(1024, 10_000, 7);
        let b = generate_graph(1024, 10_000, 7);
        assert_eq!(a.edges, b.edges);
        // Power law: the top 10% of destinations receive a clear majority
        // of edges.
        let mut indeg = vec![0u32; 1024];
        for &(_, v) in &a.edges {
            indeg[v as usize] += 1;
        }
        indeg.sort_unstable_by(|x, y| y.cmp(x));
        let top: u32 = indeg[..102].iter().sum();
        assert!(
            top as f64 > 0.4 * a.edges.len() as f64,
            "top-decile share = {top}"
        );
        // No self loops.
        assert!(a.edges.iter().all(|&(u, v)| u != v));
    }

    #[test]
    fn ratings_generator_respects_bounds() {
        let r = generate_ratings(100, 50, 5000, 3);
        assert!(r.ratings.iter().all(|&(u, i)| u < 100 && i < 50));
    }

    #[test]
    fn different_seeds_give_different_graphs() {
        let a = generate_graph(256, 1000, 1);
        let b = generate_graph(256, 1000, 2);
        assert_ne!(a.edges, b.edges);
    }
}
