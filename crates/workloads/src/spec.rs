//! The benchmark registry: suites, datasets, languages, and specs that
//! instantiate workloads.

use crate::dacapo::{self, DacapoWorkload};
use crate::graph::{Als, ConnectedComponents, PageRank};
use crate::pjbb::PjbbWorkload;
use crate::Workload;
use hemu_types::ByteSize;
use std::fmt;

/// The three benchmark suites of the evaluation (§IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// The 11 DaCapo applications.
    DaCapo,
    /// pseudojbb2005.
    Pjbb,
    /// The three GraphChi applications.
    GraphChi,
}

impl Suite {
    /// The suite's base nursery size: 4 MiB for DaCapo and Pjbb, 32 MiB
    /// for GraphChi (§IV, Nursery and Heap Sizes).
    pub fn base_nursery(self) -> ByteSize {
        match self {
            Suite::DaCapo | Suite::Pjbb => ByteSize::from_mib(4),
            Suite::GraphChi => ByteSize::from_mib(32),
        }
    }
}

impl fmt::Display for Suite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Suite::DaCapo => write!(f, "DaCapo"),
            Suite::Pjbb => write!(f, "Pjbb"),
            Suite::GraphChi => write!(f, "GraphChi"),
        }
    }
}

/// Input dataset size (§IV and §VI.F).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DatasetSize {
    /// The default dataset (1 M edges / 1 M ratings for GraphChi).
    #[default]
    Default,
    /// The large dataset (10 M edges / 10 M ratings; DaCapo large inputs).
    Large,
}

/// Implementation language of a GraphChi application (Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Language {
    /// The Java implementation running on the managed heap.
    #[default]
    Java,
    /// The C++ implementation running on the native heap.
    Cpp,
}

/// A fully specified benchmark: name, suite, language and dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WorkloadSpec {
    /// Benchmark name (paper spelling).
    pub name: &'static str,
    /// Owning suite.
    pub suite: Suite,
    /// Implementation language (only GraphChi has a C++ variant).
    pub language: Language,
    /// Input dataset size.
    pub dataset: DatasetSize,
}

impl WorkloadSpec {
    /// Looks a benchmark up by name with the default dataset and Java
    /// language.
    pub fn by_name(name: &str) -> Option<WorkloadSpec> {
        all_default().into_iter().find(|s| s.name == name)
    }

    /// Returns this spec with the given dataset size.
    pub fn with_dataset(mut self, dataset: DatasetSize) -> Self {
        self.dataset = dataset;
        self
    }

    /// Returns this spec with the given language.
    ///
    /// # Panics
    ///
    /// Panics if a C++ variant is requested for a non-GraphChi benchmark —
    /// only the GraphChi applications ship both implementations.
    pub fn with_language(mut self, language: Language) -> Self {
        assert!(
            language == Language::Java || self.suite == Suite::GraphChi,
            "only GraphChi applications have C++ implementations"
        );
        self.language = language;
        self
    }

    /// Instantiates the workload with a deterministic seed.
    pub fn instantiate(&self, seed: u64) -> Box<dyn Workload> {
        let native = self.language == Language::Cpp;
        match (self.suite, self.name) {
            (Suite::GraphChi, "pr") => Box::new(PageRank::new(self.dataset, native, seed)),
            (Suite::GraphChi, "cc") => {
                Box::new(ConnectedComponents::new(self.dataset, native, seed))
            }
            (Suite::GraphChi, "als") => Box::new(Als::new(self.dataset, native, seed)),
            (Suite::Pjbb, _) => Box::new(PjbbWorkload::new(self.dataset, seed)),
            (Suite::DaCapo, name) => Box::new(DacapoWorkload::new(
                dacapo::params_for(name).expect("unknown DaCapo benchmark"),
                self.dataset,
                seed,
            )),
            _ => unreachable!("inconsistent spec {self:?}"),
        }
    }
}

impl fmt::Display for WorkloadSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        if self.language == Language::Cpp {
            write!(f, ".cpp")?;
        }
        if self.dataset == DatasetSize::Large {
            write!(f, ".large")?;
        }
        Ok(())
    }
}

fn spec(name: &'static str, suite: Suite) -> WorkloadSpec {
    WorkloadSpec {
        name,
        suite,
        language: Language::Java,
        dataset: DatasetSize::Default,
    }
}

/// The 11 DaCapo benchmarks of the evaluation, including the updated
/// `lu.Fix` and `pmd.S` variants.
pub fn dacapo_all() -> Vec<WorkloadSpec> {
    dacapo::NAMES
        .iter()
        .map(|n| spec(n, Suite::DaCapo))
        .collect()
}

/// The seven DaCapo benchmarks the simulator comparison uses (§V):
/// lusearch, lu.Fix, avrora, xalan, pmd, pmd.S and bloat.
pub fn dacapo_sim_subset() -> Vec<WorkloadSpec> {
    [
        "lusearch", "lu.Fix", "avrora", "xalan", "pmd", "pmd.S", "bloat",
    ]
    .iter()
    .map(|n| WorkloadSpec::by_name(n).expect("simulator-subset benchmark missing from registry"))
    .collect()
}

/// Pjbb.
pub fn pjbb() -> WorkloadSpec {
    spec("pjbb", Suite::Pjbb)
}

/// The three GraphChi applications (Java, default dataset).
pub fn graphchi_all() -> Vec<WorkloadSpec> {
    ["pr", "cc", "als"]
        .iter()
        .map(|n| spec(n, Suite::GraphChi))
        .collect()
}

/// All 15 applications of the evaluation with default datasets.
pub fn all_default() -> Vec<WorkloadSpec> {
    let mut v = dacapo_all();
    v.push(pjbb());
    v.extend(graphchi_all());
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_evaluation_has_fifteen_applications() {
        assert_eq!(all_default().len(), 15);
        assert_eq!(dacapo_all().len(), 11);
        assert_eq!(graphchi_all().len(), 3);
    }

    #[test]
    fn sim_subset_matches_section_v() {
        let names: Vec<_> = dacapo_sim_subset().iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            vec!["lusearch", "lu.Fix", "avrora", "xalan", "pmd", "pmd.S", "bloat"]
        );
    }

    #[test]
    fn nursery_sizes_follow_the_paper() {
        assert_eq!(Suite::DaCapo.base_nursery(), ByteSize::from_mib(4));
        assert_eq!(Suite::GraphChi.base_nursery(), ByteSize::from_mib(32));
    }

    #[test]
    fn display_encodes_language_and_dataset() {
        let s = WorkloadSpec::by_name("pr")
            .unwrap()
            .with_language(Language::Cpp)
            .with_dataset(DatasetSize::Large);
        assert_eq!(format!("{s}"), "pr.cpp.large");
    }

    #[test]
    #[should_panic(expected = "C++ implementations")]
    fn cpp_variant_rejected_for_dacapo() {
        let _ = WorkloadSpec::by_name("lusearch")
            .unwrap()
            .with_language(Language::Cpp);
    }

    #[test]
    fn every_spec_instantiates() {
        for s in all_default() {
            let w = s.instantiate(1);
            assert_eq!(w.name(), s.name);
            assert!(w.heap_size().bytes() > 0);
        }
    }
}
