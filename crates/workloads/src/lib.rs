//! Benchmark models for the emulation platform.
//!
//! The paper evaluates 15 Java applications: 11 from DaCapo, pseudojbb2005
//! (Pjbb), and three GraphChi graph applications (PageRank, Connected
//! Components, ALS matrix factorisation), the last three in both Java and
//! C++ variants. We cannot run JVM bytecode, so:
//!
//! * the **GraphChi applications are real implementations** of their
//!   algorithms over synthetic power-law graphs and ratings, written
//!   against the [`memapi::Memory`] abstraction so the same algorithm runs
//!   on the managed heap (Java semantics: boxed temporaries, zeroed
//!   allocation, GC) or the native heap (C++ semantics: in-place updates,
//!   explicit free);
//! * the **DaCapo and Pjbb applications are synthetic mutators**, one
//!   parameter set per benchmark, calibrated to the published allocation
//!   volume, survival, object-size and mutation characteristics of each —
//!   what the memory system sees is the allocation/mutation stream, which
//!   these models generate through the real heap API.
//!
//! Every workload implements [`Workload`] as a resumable state machine so
//! the multiprogrammed runner can interleave instances on the shared cache
//! hierarchy, and supports the replay-compilation protocol (a warm-up
//! iteration followed by a measured iteration).

#![warn(missing_docs)]

pub mod dacapo;
pub mod graph;
pub mod memapi;
pub mod pjbb;
pub mod spec;

pub use memapi::{Memory, Obj};
pub use spec::{DatasetSize, Language, Suite, WorkloadSpec};

use hemu_machine::Machine;
use hemu_types::{ByteSize, Result};

/// Outcome of one workload step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepResult {
    /// More work remains in the current iteration.
    Running,
    /// The current benchmark iteration has completed.
    IterationDone,
}

/// A resumable benchmark.
///
/// A workload performs a bounded amount of work per [`Workload::step`]
/// call; the runner interleaves steps of concurrent instances so they
/// contend in the shared LLC exactly like co-scheduled processes.
pub trait Workload {
    /// Benchmark name as the paper spells it (e.g. `lusearch`, `pr`).
    fn name(&self) -> &str;

    /// Which suite the benchmark belongs to.
    fn suite(&self) -> Suite;

    /// The suite's base nursery size (4 MiB for DaCapo/Pjbb, 32 MiB for
    /// GraphChi, §IV).
    fn base_nursery(&self) -> ByteSize {
        self.suite().base_nursery()
    }

    /// The heap budget for this benchmark (twice the minimum heap, §IV).
    fn heap_size(&self) -> ByteSize;

    /// Performs one bounded quantum of work.
    ///
    /// # Errors
    ///
    /// Propagates heap or machine exhaustion.
    fn step(&mut self, machine: &mut Machine, mem: &mut Memory) -> Result<StepResult>;

    /// Rewinds progress so the next [`Workload::step`] begins a fresh
    /// iteration (live data structures persist, as across DaCapo
    /// iterations under replay compilation).
    fn start_iteration(&mut self);
}
