//! [`Memory`]: one object API over both memory managers.
//!
//! GraphChi workloads run unchanged on Java-style automatic memory
//! management and C++-style manual management; this enum is the seam. A
//! [`Memory::Managed`] call forwards to the garbage-collected
//! [`hemu_heap::ManagedHeap`] (allocation zeroes, collections move
//! objects); a [`Memory::Native`] call forwards to the
//! [`hemu_malloc::NativeHeap`] (no zeroing, explicit free, roots are
//! no-ops because nothing is ever collected).

use hemu_heap::heap::RootSlot;
use hemu_heap::{GcStats, ManagedHeap, ObjectId};
use hemu_machine::Machine;
use hemu_malloc::{NativeHeap, NativeObject, NativeStats};
use hemu_types::Result;
use std::collections::HashMap;

/// A handle to an application object, valid for the [`Memory`] that
/// produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Obj(u64);

/// A root registration token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Root(usize);

/// The workload-facing memory manager: managed (Java) or native (C++).
#[derive(Debug)]
pub enum Memory {
    /// Garbage-collected heap with Java allocation semantics.
    Managed(Box<ManagedMemory>),
    /// malloc/free heap with C++ allocation semantics.
    Native(Box<NativeMemory>),
}

/// State for the managed variant.
#[derive(Debug)]
pub struct ManagedMemory {
    heap: ManagedHeap,
}

/// State for the native variant. Reference slots are modelled as ordinary
/// 8-byte payload words plus a Rust-side shadow so `read_ref` can return
/// handles.
#[derive(Debug)]
pub struct NativeMemory {
    heap: NativeHeap,
    refs: HashMap<NativeObject, Vec<Option<Obj>>>,
    ref_counts: HashMap<NativeObject, usize>,
}

impl Memory {
    /// Wraps a managed heap.
    pub fn managed(heap: ManagedHeap) -> Self {
        Memory::Managed(Box::new(ManagedMemory { heap }))
    }

    /// Wraps a native heap.
    pub fn native(heap: NativeHeap) -> Self {
        Memory::Native(Box::new(NativeMemory {
            heap,
            refs: HashMap::new(),
            ref_counts: HashMap::new(),
        }))
    }

    /// `true` for the garbage-collected variant. Workloads use this to
    /// model language-level differences (e.g. Java boxes temporary values
    /// that C++ keeps in registers or stack locals).
    pub fn is_managed(&self) -> bool {
        matches!(self, Memory::Managed(_))
    }

    /// Allocates an object with `ref_count` reference slots and
    /// `data_bytes` of payload.
    ///
    /// # Errors
    ///
    /// Propagates heap exhaustion from either manager.
    pub fn alloc(
        &mut self,
        machine: &mut Machine,
        ref_count: usize,
        data_bytes: usize,
    ) -> Result<Obj> {
        match self {
            Memory::Managed(mm) => {
                let id = mm.heap.alloc(machine, ref_count, data_bytes)?;
                Ok(Obj(id.raw()))
            }
            Memory::Native(nm) => {
                // C++ lays refs out as pointer members in the same block.
                let o = nm
                    .heap
                    .alloc(machine, (ref_count * 8 + data_bytes) as u32)?;
                if ref_count > 0 {
                    nm.refs.insert(o, vec![None; ref_count]);
                }
                nm.ref_counts.insert(o, ref_count);
                Ok(Obj(o.raw() as u64))
            }
        }
    }

    /// Explicitly frees an object. A no-op under garbage collection.
    pub fn free(&mut self, obj: Obj) {
        match self {
            Memory::Managed(_) => {}
            Memory::Native(nm) => {
                let o = NativeObject::from_raw(obj.0 as u32);
                nm.refs.remove(&o);
                nm.ref_counts.remove(&o);
                nm.heap.free(o);
            }
        }
    }

    /// Writes `len` bytes of payload at `offset`.
    ///
    /// # Errors
    ///
    /// Propagates machine memory exhaustion.
    pub fn write_data(
        &mut self,
        machine: &mut Machine,
        obj: Obj,
        offset: u32,
        len: u32,
    ) -> Result<()> {
        match self {
            Memory::Managed(mm) => {
                mm.heap
                    .write_data(machine, ObjectId::from_raw(obj.0), offset, len)
            }
            Memory::Native(nm) => {
                let o = NativeObject::from_raw(obj.0 as u32);
                let skip = *nm.ref_counts.get(&o).unwrap_or(&0) as u32 * 8;
                nm.heap.write(machine, o, skip + offset, len)
            }
        }
    }

    /// Reads `len` bytes of payload at `offset`.
    ///
    /// # Errors
    ///
    /// Propagates machine memory exhaustion.
    pub fn read_data(
        &mut self,
        machine: &mut Machine,
        obj: Obj,
        offset: u32,
        len: u32,
    ) -> Result<()> {
        match self {
            Memory::Managed(mm) => {
                mm.heap
                    .read_data(machine, ObjectId::from_raw(obj.0), offset, len)
            }
            Memory::Native(nm) => {
                let o = NativeObject::from_raw(obj.0 as u32);
                let skip = *nm.ref_counts.get(&o).unwrap_or(&0) as u32 * 8;
                nm.heap.read(machine, o, skip + offset, len)
            }
        }
    }

    /// Stores a reference into slot `slot` of `obj` (with the write
    /// barrier, under GC).
    ///
    /// # Errors
    ///
    /// Propagates machine memory exhaustion.
    pub fn write_ref(
        &mut self,
        machine: &mut Machine,
        obj: Obj,
        slot: usize,
        target: Option<Obj>,
    ) -> Result<()> {
        match self {
            Memory::Managed(mm) => mm.heap.write_ref(
                machine,
                ObjectId::from_raw(obj.0),
                slot,
                target.map(|t| ObjectId::from_raw(t.0)),
            ),
            Memory::Native(nm) => {
                let o = NativeObject::from_raw(obj.0 as u32);
                nm.heap.write(machine, o, slot as u32 * 8, 8)?;
                nm.refs.get_mut(&o).expect("object has no ref slots")[slot] = target;
                Ok(())
            }
        }
    }

    /// Loads the reference in slot `slot` of `obj`.
    ///
    /// # Errors
    ///
    /// Propagates machine memory exhaustion.
    pub fn read_ref(
        &mut self,
        machine: &mut Machine,
        obj: Obj,
        slot: usize,
    ) -> Result<Option<Obj>> {
        match self {
            Memory::Managed(mm) => Ok(mm
                .heap
                .read_ref(machine, ObjectId::from_raw(obj.0), slot)?
                .map(|t| Obj(t.raw()))),
            Memory::Native(nm) => {
                let o = NativeObject::from_raw(obj.0 as u32);
                nm.heap.read(machine, o, slot as u32 * 8, 8)?;
                Ok(nm.refs.get(&o).expect("object has no ref slots")[slot])
            }
        }
    }

    /// Registers `obj` as a GC root. No-op (but token-compatible) for the
    /// native heap.
    pub fn add_root(&mut self, obj: Obj) -> Root {
        match self {
            Memory::Managed(mm) => Root(mm.heap.new_root(Some(ObjectId::from_raw(obj.0))).index()),
            Memory::Native(_) => Root(usize::MAX),
        }
    }

    /// Re-points a root at a different object (or clears it).
    pub fn set_root(&mut self, root: Root, obj: Option<Obj>) {
        if let Memory::Managed(mm) = self {
            mm.heap.set_root(
                RootSlot::from_index(root.0),
                obj.map(|o| ObjectId::from_raw(o.0)),
            );
        }
    }

    /// Releases a root registration.
    pub fn drop_root(&mut self, root: Root) {
        if let Memory::Managed(mm) = self {
            mm.heap.drop_root(RootSlot::from_index(root.0));
        }
    }

    /// GC statistics, if managed.
    pub fn gc_stats(&self) -> Option<&GcStats> {
        match self {
            Memory::Managed(mm) => Some(mm.heap.stats()),
            Memory::Native(_) => None,
        }
    }

    /// Native allocation statistics, if native.
    pub fn native_stats(&self) -> Option<&NativeStats> {
        match self {
            Memory::Managed(_) => None,
            Memory::Native(nm) => Some(nm.heap.stats()),
        }
    }

    /// Total bytes the application has allocated so far (either manager).
    pub fn allocated_bytes(&self) -> u64 {
        match self {
            Memory::Managed(mm) => mm.heap.stats().allocated_bytes,
            Memory::Native(nm) => nm.heap.stats().allocated_bytes,
        }
    }

    /// The managed heap, if managed (for plan inspection in reports).
    pub fn managed_heap(&self) -> Option<&ManagedHeap> {
        match self {
            Memory::Managed(mm) => Some(&mm.heap),
            Memory::Native(_) => None,
        }
    }

    /// The hardware context this memory's owner runs on.
    pub fn ctx(&self) -> hemu_machine::CtxId {
        match self {
            Memory::Managed(mm) => mm.heap.ctx(),
            Memory::Native(nm) => nm.heap.ctx(),
        }
    }

    /// Advances this instance's virtual clock by pure compute work.
    pub fn compute(&self, machine: &mut Machine, cycles: hemu_types::Cycles) {
        machine.compute(self.ctx(), cycles);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hemu_heap::CollectorKind;
    use hemu_machine::{CtxId, MachineProfile};
    use hemu_types::{ByteSize, SocketId};

    fn managed() -> (Machine, Memory) {
        let mut m = Machine::new(MachineProfile::emulation());
        let p = m.add_process(SocketId::DRAM);
        let cfg = CollectorKind::KgN.config(ByteSize::from_mib(1), ByteSize::from_mib(32));
        let heap = ManagedHeap::new(&mut m, p, CtxId(0), cfg).unwrap();
        (m, Memory::managed(heap))
    }

    fn native() -> (Machine, Memory) {
        let mut m = Machine::new(MachineProfile::emulation());
        let p = m.add_process(SocketId::PCM);
        let heap = NativeHeap::new(&mut m, p, CtxId(0), SocketId::PCM);
        (m, Memory::native(heap))
    }

    #[test]
    fn same_code_runs_on_both_managers() {
        for (mut m, mut mem) in [managed(), native()] {
            let a = mem.alloc(&mut m, 1, 64).unwrap();
            let b = mem.alloc(&mut m, 0, 16).unwrap();
            let _r = mem.add_root(a);
            mem.write_ref(&mut m, a, 0, Some(b)).unwrap();
            mem.write_data(&mut m, a, 0, 64).unwrap();
            mem.read_data(&mut m, a, 8, 8).unwrap();
            assert_eq!(mem.read_ref(&mut m, a, 0).unwrap(), Some(b));
            mem.free(b);
            mem.free(a);
        }
    }

    #[test]
    fn managed_allocation_writes_more_than_native() {
        // Zero-initialisation: the Java side writes the whole object at
        // allocation; malloc writes only a header.
        let (mut m1, mut ma) = managed();
        for _ in 0..100 {
            ma.alloc(&mut m1, 0, 4096).unwrap();
        }
        let (mut m2, mut na) = native();
        let mut objs = Vec::new();
        for _ in 0..100 {
            objs.push(na.alloc(&mut m2, 0, 4096).unwrap());
        }
        m1.flush_caches().unwrap();
        m2.flush_caches().unwrap();
        let managed_writes = m1.socket_writes(SocketId::DRAM) + m1.socket_writes(SocketId::PCM);
        let native_writes = m2.socket_writes(SocketId::DRAM) + m2.socket_writes(SocketId::PCM);
        assert!(managed_writes.bytes() > 4 * native_writes.bytes());
    }

    #[test]
    fn free_is_noop_under_gc_and_real_under_malloc() {
        let (mut m, mut mem) = managed();
        let a = mem.alloc(&mut m, 0, 16).unwrap();
        mem.free(a); // must not panic or kill the object
        let (mut m2, mut mem2) = native();
        let b = mem2.alloc(&mut m2, 0, 16).unwrap();
        mem2.free(b);
        assert!(mem2.native_stats().unwrap().freed_bytes > 0);
    }

    #[test]
    fn roots_keep_managed_objects_alive_through_churn() {
        let (mut m, mut mem) = managed();
        let keep = mem.alloc(&mut m, 0, 32).unwrap();
        let _r = mem.add_root(keep);
        for _ in 0..4000 {
            mem.alloc(&mut m, 0, 512).unwrap();
        }
        // Object is still usable (would panic if collected).
        mem.write_data(&mut m, keep, 0, 8).unwrap();
        assert!(mem.gc_stats().unwrap().minor_gcs > 0);
    }
}
