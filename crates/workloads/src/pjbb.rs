//! A pseudojbb2005 model: warehouse-resident order processing.
//!
//! Pjbb is SPECjbb2005 with a fixed amount of work. Its memory behaviour
//! differs from DaCapo's in ways the paper highlights (§VI.C): a much
//! larger live heap (warehouse item tables and order history), about 2× the
//! PCM writes of the average DaCapo benchmark, and steady transactional
//! churn. The model keeps per-warehouse item tables as long-lived arrays,
//! processes transactions that allocate short-lived order objects, and
//! retains a rolling history of completed orders.

use crate::memapi::{Memory, Obj, Root};
use crate::spec::{DatasetSize, Suite};
use crate::{StepResult, Workload};
use hemu_machine::Machine;
use hemu_types::{ByteSize, Cycles, DeterministicRng, Result};
use std::collections::VecDeque;

const WAREHOUSES: usize = 6;
/// Item-table entries per warehouse (long-lived array objects of 32 KiB).
const ITEM_CHUNKS_PER_WAREHOUSE: usize = 128; // 128 × 32 KiB = 4 MiB each
const ITEM_CHUNK_BYTES: u32 = 32 * 1024;
/// Orders retained in the rolling history.
const HISTORY_CAP: usize = 20_000;
/// Transactions per step.
const STEP_TXNS: u32 = 96;

/// A running Pjbb instance.
#[derive(Debug)]
pub struct PjbbWorkload {
    rng: DeterministicRng,
    phase: Phase,
    /// Item tables: `WAREHOUSES × ITEM_CHUNKS` long-lived arrays.
    items: Vec<(Obj, Root)>,
    history: VecDeque<(Obj, Root)>,
    txns_done: u64,
    txn_target: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Populating the warehouses.
    Build { chunk: usize },
    /// Processing transactions.
    Run,
}

impl PjbbWorkload {
    /// Creates a Pjbb instance.
    pub fn new(dataset: DatasetSize, seed: u64) -> Self {
        let scale = match dataset {
            DatasetSize::Default => 1,
            DatasetSize::Large => 3,
        };
        PjbbWorkload {
            rng: DeterministicRng::seeded(seed ^ 0x50_4a_42_42),
            phase: Phase::Build { chunk: 0 },
            items: Vec::new(),
            history: VecDeque::new(),
            txns_done: 0,
            txn_target: 60_000 * scale,
        }
    }
}

impl Workload for PjbbWorkload {
    fn name(&self) -> &str {
        "pjbb"
    }

    fn suite(&self) -> Suite {
        Suite::Pjbb
    }

    fn heap_size(&self) -> ByteSize {
        // ~24 MiB of warehouses + history; twice the minimum.
        ByteSize::from_mib(100)
    }

    fn step(&mut self, machine: &mut Machine, mem: &mut Memory) -> Result<StepResult> {
        match self.phase {
            Phase::Build { chunk } => {
                let total = WAREHOUSES * ITEM_CHUNKS_PER_WAREHOUSE;
                // Build a handful of item chunks per step.
                let end = (chunk + 8).min(total);
                for _ in chunk..end {
                    let o = mem.alloc(machine, 0, ITEM_CHUNK_BYTES as usize)?;
                    mem.write_data(machine, o, 0, ITEM_CHUNK_BYTES)?;
                    let r = mem.add_root(o);
                    self.items.push((o, r));
                }
                self.phase = if end == total {
                    Phase::Run
                } else {
                    Phase::Build { chunk: end }
                };
                Ok(StepResult::Running)
            }
            Phase::Run => {
                for _ in 0..STEP_TXNS {
                    // An order: a header object plus a few line items. The
                    // order is rooted immediately — it lives in a local
                    // variable, which is a stack root in the real VM — so
                    // a collection triggered by a line-item allocation
                    // cannot reclaim it.
                    let order = mem.alloc(machine, 4, 96)?;
                    let root = mem.add_root(order);
                    mem.write_data(machine, order, 0, 96)?;
                    let lines = self.rng.range(2, 6);
                    for l in 0..lines {
                        let line = mem.alloc(machine, 0, 64)?;
                        mem.write_data(machine, line, 0, 64)?;
                        if l < 4 {
                            mem.write_ref(machine, order, l as usize, Some(line))?;
                        }
                        // Look up the item table: read a random entry and
                        // update stock (read-modify-write).
                        let (chunk, _) =
                            self.items[self.rng.below(self.items.len() as u64) as usize];
                        let off = self.rng.below((ITEM_CHUNK_BYTES - 16) as u64) as u32;
                        mem.read_data(machine, chunk, off, 16)?;
                        mem.write_data(machine, chunk, off, 8)?;
                    }
                    // Retain the order in the rolling history.
                    self.history.push_back((order, root));
                    if self.history.len() > HISTORY_CAP {
                        if let Some((old, r)) = self.history.pop_front() {
                            mem.drop_root(r);
                            mem.free(old);
                        }
                    }
                    mem.compute(machine, Cycles::new(400));
                    self.txns_done += 1;
                }
                if self.txns_done >= self.txn_target {
                    Ok(StepResult::IterationDone)
                } else {
                    Ok(StepResult::Running)
                }
            }
        }
    }

    fn start_iteration(&mut self) {
        self.txns_done = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hemu_heap::{CollectorKind, ManagedHeap};
    use hemu_machine::{CtxId, MachineProfile};
    use hemu_types::SocketId;

    #[test]
    fn pjbb_builds_then_processes_transactions() {
        let mut m = Machine::new(MachineProfile::emulation());
        let p = m.add_process(SocketId::DRAM);
        let cfg = CollectorKind::KgN.config(ByteSize::from_mib(4), ByteSize::from_mib(100));
        let heap = ManagedHeap::new(&mut m, p, CtxId(0), cfg).unwrap();
        let mut mem = Memory::managed(heap);
        let mut w = PjbbWorkload::new(DatasetSize::Default, 7);
        // Run enough steps to finish building (768 item chunks at 8 per
        // step = 96 steps) and then process transactions.
        for _ in 0..120 {
            if w.step(&mut m, &mut mem).unwrap() == StepResult::IterationDone {
                break;
            }
        }
        assert!(matches!(w.phase, Phase::Run));
        assert!(w.txns_done > 0);
        assert!(mem.allocated_bytes() > 12 << 20, "warehouses built");
    }
}
