//! Bounded smoke tests: every registered workload runs a few hundred
//! quanta on the managed heap (and, for GraphChi, on the native heap)
//! without faulting, and actually generates memory traffic.

use hemu_heap::{CollectorKind, ManagedHeap};
use hemu_machine::{CtxId, Machine, MachineProfile};
use hemu_malloc::NativeHeap;
use hemu_types::SocketId;
use hemu_workloads::{spec, Language, Memory, StepResult, WorkloadSpec};

fn drive(spec: WorkloadSpec, steps: usize) -> (Machine, Memory, bool) {
    let mut machine = Machine::new(MachineProfile::emulation());
    let mut w = spec.instantiate(11);
    let mem = match spec.language {
        Language::Java => {
            let cfg = CollectorKind::KgN.config(w.base_nursery(), w.heap_size());
            let proc = machine.add_process(cfg.young_socket());
            Memory::managed(
                ManagedHeap::new(&mut machine, proc, CtxId(0), cfg).expect("heap builds"),
            )
        }
        Language::Cpp => {
            let proc = machine.add_process(SocketId::PCM);
            Memory::native(NativeHeap::new(&mut machine, proc, CtxId(0), SocketId::PCM))
        }
    };
    let mut mem = mem;
    let mut finished = false;
    for _ in 0..steps {
        match w.step(&mut machine, &mut mem).expect("step succeeds") {
            StepResult::Running => {}
            StepResult::IterationDone => {
                finished = true;
                break;
            }
        }
    }
    (machine, mem, finished)
}

#[test]
fn every_registered_workload_steps_cleanly() {
    for s in spec::all_default() {
        let (machine, mem, _) = drive(s, 200);
        assert!(
            mem.allocated_bytes() > 0 || machine.stats().line_accesses > 0,
            "{s}: no observable activity after 200 quanta"
        );
    }
}

#[test]
fn graphchi_apps_run_natively_too() {
    for name in ["pr", "cc", "als"] {
        let s = WorkloadSpec::by_name(name)
            .unwrap()
            .with_language(Language::Cpp);
        let (machine, mem, _) = drive(s, 200);
        assert!(machine.stats().line_accesses > 0, "{s}: no traffic");
        assert!(mem.native_stats().is_some());
    }
}

#[test]
fn avrora_completes_an_iteration_within_budget() {
    let s = WorkloadSpec::by_name("avrora").unwrap();
    let (_, _, finished) = drive(s, 200_000);
    assert!(finished, "avrora did not finish an iteration");
}

/// OS-managed placement: the same managed workload, but with the
/// kernel-side first-touch override installed. Every page the heap asks
/// for on the PCM socket is placed on DRAM instead, and the per-page heat
/// counters see the traffic the workload generates.
#[test]
fn os_placement_overrides_the_heap_socket() {
    let s = WorkloadSpec::by_name("avrora").unwrap();
    let mut machine = Machine::new(MachineProfile::emulation());
    let mut w = s.instantiate(11);
    let cfg = CollectorKind::PcmOnly.config(w.base_nursery(), w.heap_size());
    let proc = machine.add_process(cfg.young_socket());
    machine.set_os_placement(proc, SocketId::DRAM, Some(SocketId::PCM));
    machine.enable_page_heat();
    let mut mem =
        Memory::managed(ManagedHeap::new(&mut machine, proc, CtxId(0), cfg).expect("heap builds"));
    for _ in 0..500 {
        if let StepResult::IterationDone = w.step(&mut machine, &mut mem).expect("step succeeds") {
            break;
        }
    }
    machine.flush_caches().expect("flush succeeds");
    let dram = machine.memory().counters(SocketId::DRAM).write_lines();
    let pcm = machine.memory().counters(SocketId::PCM).write_lines();
    assert!(dram > 0, "workload traffic must reach the DRAM controller");
    assert_eq!(pcm, 0, "first-touch DRAM placement left nothing on PCM");
    let heat = machine.page_heat().expect("heat tracking enabled");
    assert!(
        heat.iter().any(|(_, h)| h.writes > 0),
        "per-page counters must see the workload's writes"
    );
}

#[test]
fn names_round_trip_through_the_registry() {
    for s in spec::all_default() {
        let w = s.instantiate(3);
        assert_eq!(w.name(), s.name);
        assert_eq!(w.suite(), s.suite);
        assert_eq!(w.base_nursery(), s.suite.base_nursery());
    }
}
