//! The [`Machine`]: the single object the runtime layers talk to.

use crate::profile::MachineProfile;
use hemu_cache::{CacheStats, Hierarchy, HitLevel, ShardedHierarchy, DEFAULT_SHARD_BITS};
use hemu_fault::{EnduranceConfig, FaultInjector, FaultPlan};
use hemu_numa::{AddressSpace, NumaMemory};
use hemu_obs::json::{JsonObject, ToJson};
use hemu_obs::{Counter, Metrics, Obs, SpanRecorder, TraceEvent, Tracer};
use hemu_types::{
    AccessKind, AccessPath, Addr, ByteSize, Cycles, HemuError, LineAddr, MemoryAccess, PageNum,
    Result, SocketId, SpaceTag, SubmitMode, VirtualClock, WriteCause, WriteTag, CACHE_LINE,
    PAGE_SIZE,
};

/// Remote fills are coalesced into one aggregate [`TraceEvent::QpiTransfer`]
/// per this many lines, so tracing stays cheap on the access fast path.
const QPI_TRACE_BATCH: u64 = 1024;

/// A single [`Machine::access`] spanning at least this many lines is routed
/// through the batch pipeline instead of the scalar loop; smaller accesses
/// don't amortize the per-batch queue reset.
const PIPELINE_MIN_LINES: u64 = 256;

/// Deferred submissions ([`Machine::submit`]) auto-flush once the buffer
/// holds roughly this many lines, so a flush batch is large enough for the
/// aggregate shard-major merge to pay off even between semantic sync
/// points.
const SUBMIT_FLUSH_LINES: u64 = 8192;

/// Slots in the machine-level translation mini-TLB (direct-mapped,
/// keyed by process and virtual page). Covers 16 MiB of working set per
/// way-less set; misses fall through to the page table.
const TLB_SLOTS: usize = 4096;

/// The cache-resolution engine behind the access hot path: either the
/// monolithic reference [`Hierarchy`] (per-line dispatch) or the set-sharded
/// batch pipeline. Both produce bit-identical outcomes (see
/// `crates/cache/tests/reference_model.rs`); the choice only affects
/// wall-clock throughput.
#[derive(Debug)]
enum AccessEngine {
    Scalar(Hierarchy),
    Batched(ShardedHierarchy),
}

impl AccessEngine {
    fn build(path: AccessPath, config: hemu_cache::HierarchyConfig) -> Self {
        match path {
            AccessPath::Scalar => AccessEngine::Scalar(Hierarchy::new(config)),
            AccessPath::Batched => {
                AccessEngine::Batched(ShardedHierarchy::new(config, DEFAULT_SHARD_BITS))
            }
        }
    }

    fn path(&self) -> AccessPath {
        match self {
            AccessEngine::Scalar(_) => AccessPath::Scalar,
            AccessEngine::Batched(_) => AccessPath::Batched,
        }
    }

    #[inline]
    fn access_into(
        &mut self,
        ctx: usize,
        line: LineAddr,
        kind: AccessKind,
        wtag: u8,
        writebacks: &mut Vec<(LineAddr, u8)>,
    ) -> (HitLevel, Option<LineAddr>) {
        match self {
            AccessEngine::Scalar(h) => h.access_into(ctx, line, kind, wtag, writebacks),
            AccessEngine::Batched(s) => s.access_into(ctx, line, kind, wtag, writebacks),
        }
    }

    fn enable_tags(&mut self) {
        match self {
            AccessEngine::Scalar(h) => h.enable_tags(),
            AccessEngine::Batched(s) => s.enable_tags(),
        }
    }

    fn reset_stats(&mut self) {
        match self {
            AccessEngine::Scalar(h) => h.reset_stats(),
            AccessEngine::Batched(s) => s.reset_stats(),
        }
    }

    fn flush<F: FnMut(LineAddr, u8)>(&mut self, sink: F) {
        match self {
            AccessEngine::Scalar(h) => h.flush(sink),
            AccessEngine::Batched(s) => s.flush(sink),
        }
    }

    fn llc_stats(&self) -> CacheStats {
        match self {
            AccessEngine::Scalar(h) => *h.llc().stats(),
            AccessEngine::Batched(s) => s.llc_stats(),
        }
    }
}

/// Index of a hardware context (logical core) on the local socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CtxId(pub usize);

/// Index of an emulated process (one address space).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcId(pub usize);

/// Default bounded capacity of the span ring installed by
/// [`Machine::enable_profiling`]: enough for every GC phase of a full run
/// at a few hundred collections, small enough to stay cheap.
pub const PROFILE_SPAN_CAPACITY: usize = 1 << 15;

/// Cached per-cause / per-space write counters.
///
/// Registered once in the metrics registry when profiling is enabled —
/// registered handles survive `Metrics::reset`, so a measured-iteration
/// reset zeroes them without invalidating the cached handles — and bumped
/// straight through the handles on the write-back path. Counts are in
/// cache *lines*.
#[derive(Debug)]
struct ProvenanceCounters {
    pcm_by_cause: [Counter; WriteCause::ALL.len()],
    pcm_by_space: [Counter; SpaceTag::ALL.len()],
    dram_by_cause: [Counter; WriteCause::ALL.len()],
    dram_by_space: [Counter; SpaceTag::ALL.len()],
}

impl ProvenanceCounters {
    fn new(m: &Metrics) -> Self {
        ProvenanceCounters {
            pcm_by_cause: WriteCause::ALL
                .map(|c| m.counter(&format!("writes.by_cause.{}", c.name()))),
            pcm_by_space: SpaceTag::ALL
                .map(|s| m.counter(&format!("writes.by_space.{}", s.name()))),
            dram_by_cause: WriteCause::ALL
                .map(|c| m.counter(&format!("writes.dram.by_cause.{}", c.name()))),
            dram_by_space: SpaceTag::ALL
                .map(|s| m.counter(&format!("writes.dram.by_space.{}", s.name()))),
        }
    }

    /// Attributes `n` line writes arriving at `socket` to `tag`.
    #[inline]
    fn record_n(&self, socket: SocketId, tag: u8, n: u64) {
        let t = WriteTag::from_raw(tag);
        let (c, s) = (t.cause() as usize, t.space() as usize);
        if socket == SocketId::PCM {
            self.pcm_by_cause[c].add(n);
            self.pcm_by_space[s].add(n);
        } else {
            self.dram_by_cause[c].add(n);
            self.dram_by_space[s].add(n);
        }
    }

    #[inline]
    fn record(&self, socket: SocketId, tag: u8) {
        self.record_n(socket, tag, 1);
    }
}

/// Aggregate machine statistics for a measured interval.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MachineStats {
    /// Line-granularity accesses issued to the hierarchy.
    pub line_accesses: u64,
    /// Fills served by the local (DRAM) socket.
    pub local_fills: u64,
    /// Fills served by the remote (PCM) socket, i.e. over QPI.
    pub remote_fills: u64,
}

/// The emulated machine.
///
/// Owns the memory system, the cache hierarchy, one address space per
/// process, and one virtual clock per hardware context. All mutator and
/// collector work flows through [`Machine::access`] and
/// [`Machine::compute`], so memory traffic and virtual time are accounted
/// in exactly one place.
#[derive(Debug)]
pub struct Machine {
    profile: MachineProfile,
    mem: NumaMemory,
    engine: AccessEngine,
    spaces: Vec<AddressSpace>,
    clocks: Vec<VirtualClock>,
    stats: MachineStats,
    obs: Obs,
    qpi_lines: Counter,
    qpi_pending: u64,
    /// Pages transparently remapped after wear-out frame retirement.
    pages_remapped: u64,
    /// Reusable write-back scratch for the access fast path, so the
    /// hierarchy never allocates a fresh `Vec` per line access. Each entry
    /// carries the provenance tag of the store that dirtied the line (0
    /// unless profiling is on).
    wb_scratch: Vec<(LineAddr, u8)>,
    /// Provenance tag stamped on subsequent write accesses; runtime layers
    /// set it via [`Machine::set_write_tag`] just before issuing writes.
    write_tag: u8,
    /// Per-cause / per-space write attribution, present only while
    /// profiling ([`Machine::enable_profiling`]).
    prov: Option<ProvenanceCounters>,
    /// Worker threads for batch resolution (1 = fully sequential). Results
    /// are identical at any value; see [`Machine::set_intra_threads`].
    intra_threads: usize,
    /// Struct-of-arrays batch staging: the physical line of every staged
    /// access in submission order, with its issuing context alongside.
    /// Reused across batches; empty outside a batch.
    batch_lines: Vec<u64>,
    batch_ctx: Vec<u8>,
    /// Whether the current batch may merge aggregate (shard-major, one
    /// clock advance per context): true when no per-line-order observer is
    /// active. Decided once per batch in [`Machine::stage_begin`].
    batch_fast: bool,
    /// Per-context cycle totals accumulated by the aggregate merge.
    batch_cycles: Vec<Cycles>,
    /// The configured submission mode ([`Machine::set_submit_mode`]).
    submit_mode: SubmitMode,
    /// Whether [`Machine::submit`] actually defers right now: requires
    /// `Deferred` mode, the batched engine, and no order-sensitive
    /// observer (tracer, provenance, fault injector, endurance) — the same
    /// gate as the aggregate merge. Recomputed whenever any of those
    /// toggles flips.
    defer_active: bool,
    /// Deferred-submission buffer, struct-of-arrays: start address, byte
    /// size, and packed metadata (ctx | proc<<8 | write-tag<<16 |
    /// is-write<<24) per entry, in submission order.
    sub_addr: Vec<u64>,
    sub_size: Vec<u32>,
    sub_meta: Vec<u32>,
    /// Estimated line count of the buffered entries (auto-flush trigger).
    sub_lines: u64,
    /// Machine-level translation mini-TLB: direct-mapped (proc, vpage) →
    /// first physical line of the frame, probed identically by the scalar
    /// loop and the batch stager in front of the page-table walk, so
    /// `tlb.*` counts are the same on every path. Flushed whenever an
    /// existing mapping can change (unmap, migration, wear remap).
    tlb_keys: Vec<u64>,
    tlb_frames: Vec<u64>,
    tlb_hits: Counter,
    tlb_misses: Counter,
    tlb_flushes: Counter,
}

impl Machine {
    /// Builds a machine from a profile.
    pub fn new(profile: MachineProfile) -> Self {
        let obs = Obs::new();
        let qpi_lines = obs.metrics.counter("qpi.lines");
        let tlb_hits = obs.metrics.counter("tlb.hits");
        let tlb_misses = obs.metrics.counter("tlb.misses");
        let tlb_flushes = obs.metrics.counter("tlb.flushes");
        Machine {
            mem: NumaMemory::new(profile.numa),
            engine: AccessEngine::build(AccessPath::default(), profile.hierarchy_config()),
            spaces: Vec::new(),
            clocks: (0..profile.contexts)
                .map(|_| VirtualClock::new(profile.freq_hz))
                .collect(),
            stats: MachineStats::default(),
            obs,
            qpi_lines,
            qpi_pending: 0,
            pages_remapped: 0,
            wb_scratch: Vec::with_capacity(4),
            write_tag: WriteTag::OTHER.raw(),
            prov: None,
            intra_threads: 1,
            batch_lines: Vec::new(),
            batch_ctx: Vec::new(),
            batch_fast: false,
            batch_cycles: Vec::new(),
            submit_mode: SubmitMode::Scalar,
            defer_active: false,
            sub_addr: Vec::new(),
            sub_size: Vec::new(),
            sub_meta: Vec::new(),
            sub_lines: 0,
            tlb_keys: vec![0; TLB_SLOTS],
            tlb_frames: vec![0; TLB_SLOTS],
            tlb_hits,
            tlb_misses,
            tlb_flushes,
            profile,
        }
    }

    /// Selects the access-path implementation. Rebuilds the cache engine
    /// from the profile, so this must be called before any access is issued
    /// (the experiment driver does it right after construction); calling it
    /// with the current path is a no-op.
    pub fn set_access_path(&mut self, path: AccessPath) {
        if path == self.engine.path() {
            return;
        }
        debug_assert!(
            self.sub_addr.is_empty(),
            "sync_submissions before switching the access path"
        );
        self.engine = AccessEngine::build(path, self.profile.hierarchy_config());
        if self.prov.is_some() {
            self.engine.enable_tags();
        }
        self.recompute_defer();
    }

    /// The active access-path implementation.
    pub fn access_path(&self) -> AccessPath {
        self.engine.path()
    }

    /// Sets the worker-thread count for batch resolution (clamped to at
    /// least 1). Purely a wall-clock knob: the set-sharded pipeline produces
    /// bit-identical outcomes — and therefore byte-identical run artifacts —
    /// at any value.
    pub fn set_intra_threads(&mut self, threads: usize) {
        self.intra_threads = threads.max(1);
    }

    /// The configured batch-resolution worker count.
    pub fn intra_threads(&self) -> usize {
        self.intra_threads
    }

    /// Turns on the phase-and-provenance profiler: cache provenance tags,
    /// per-cause / per-space write counters, and a bounded span recorder
    /// ([`PROFILE_SPAN_CAPACITY`] spans). Idempotent; off by default, in
    /// which case none of the machinery costs more than one branch per
    /// write-back.
    pub fn enable_profiling(&mut self) {
        if self.prov.is_some() {
            return;
        }
        debug_assert!(
            self.sub_addr.is_empty(),
            "sync_submissions before enabling profiling"
        );
        self.engine.enable_tags();
        self.prov = Some(ProvenanceCounters::new(&self.obs.metrics));
        self.obs.spans = SpanRecorder::bounded(PROFILE_SPAN_CAPACITY);
        self.recompute_defer();
    }

    /// Whether [`Machine::enable_profiling`] has been called. Runtime
    /// layers use this to skip tag computation entirely when off.
    #[inline]
    pub fn profiling_enabled(&self) -> bool {
        self.prov.is_some()
    }

    /// Sets the provenance tag stamped on subsequent write accesses (until
    /// changed again). A no-op in effect when profiling is off: the tag is
    /// stored but never consulted.
    #[inline]
    pub fn set_write_tag(&mut self, tag: WriteTag) {
        self.write_tag = tag.raw();
    }

    /// A clone of the machine's span recorder (shares the same ring), for
    /// runtime layers that open and close spans. Disabled unless
    /// [`Machine::enable_profiling`] was called.
    pub fn spans(&self) -> SpanRecorder {
        self.obs.spans.clone()
    }

    /// The machine's observability bundle (tracer + metrics registry).
    ///
    /// Runtime layers clone handles out of this to record events and bump
    /// metrics; the experiment driver snapshots it when building a report.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Installs an event tracer (replacing the current one, which is
    /// disabled by default). Metrics handles are unaffected. Callers must
    /// [`Machine::sync_submissions`] first when switching mid-run, so an
    /// enabled tracer never observes traffic submitted before it existed.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        debug_assert!(
            self.sub_addr.is_empty(),
            "sync_submissions before replacing the tracer"
        );
        self.obs.tracer = tracer;
        self.recompute_defer();
    }

    /// Publishes derived machine-level metrics — cache hit rates and
    /// per-socket memory-controller traffic — as gauges, so they are
    /// queryable mid-run (the monitor calls this once per sample).
    pub fn publish_metrics(&self) {
        let m = &self.obs.metrics;
        m.gauge("llc.hit_rate")
            .set(self.engine.llc_stats().hit_ratio());
        for (name, socket) in [("dram", SocketId::DRAM), ("pcm", SocketId::PCM)] {
            let c = self.mem.counters(socket);
            m.gauge(&format!("mem.{name}.written_bytes"))
                .set(c.written().bytes() as f64);
            m.gauge(&format!("mem.{name}.read_bytes"))
                .set(c.read().bytes() as f64);
        }
        m.gauge("machine.line_accesses")
            .set(self.stats.line_accesses as f64);
        m.gauge("machine.local_fills")
            .set(self.stats.local_fills as f64);
        m.gauge("machine.remote_fills")
            .set(self.stats.remote_fills as f64);
        let (th, tm) = (self.tlb_hits.get(), self.tlb_misses.get());
        if th + tm > 0 {
            m.gauge("tlb.hit_rate").set(th as f64 / (th + tm) as f64);
        }
        // Per-tenant gauges only exist in consolidated runs, so the
        // exported metric set of a single-tenant run is unchanged.
        if let Some(t) = self.mem.tenancy() {
            for id in 0..t.tenants() {
                m.gauge(&format!("writes.tenant.{id}.pcm_lines"))
                    .set(t.pcm_lines(id) as f64);
                m.gauge(&format!("writes.tenant.{id}.dram_lines"))
                    .set(t.dram_lines(id) as f64);
            }
            m.gauge("writes.tenant.unattributed.pcm_lines")
                .set(t.unattributed_pcm() as f64);
            m.gauge("writes.tenant.unattributed.dram_lines")
                .set(t.unattributed_dram() as f64);
        }
        // Wear/endurance gauges only exist when the model is on, so the
        // exported metric set of a healthy run is unchanged.
        if self.mem.endurance_enabled() {
            m.gauge("wear.failed_lines")
                .set(self.mem.failed_lines() as f64);
            m.gauge("wear.retired_pages")
                .set(self.mem.retired_pages(SocketId::PCM) as f64);
            m.gauge("wear.remapped_pages")
                .set(self.pages_remapped as f64);
            m.gauge("wear.effective_capacity_bytes")
                .set(self.mem.effective_capacity(SocketId::PCM).bytes() as f64);
        }
    }

    /// The profile this machine was built from.
    pub fn profile(&self) -> &MachineProfile {
        &self.profile
    }

    /// Creates a new process; unbound pages fault onto `default_socket`.
    ///
    /// The paper binds all threads to socket 0, except in the PCM-Only
    /// reference setup where they run on socket 1 — `default_socket`
    /// captures where that process's anonymous memory lands by default.
    pub fn add_process(&mut self, default_socket: SocketId) -> ProcId {
        self.spaces
            .push(AddressSpace::with_default_socket(default_socket));
        ProcId(self.spaces.len() - 1)
    }

    /// Number of processes.
    pub fn processes(&self) -> usize {
        self.spaces.len()
    }

    /// Number of hardware contexts.
    pub fn contexts(&self) -> usize {
        self.clocks.len()
    }

    /// Binds a virtual range of `proc` to a socket (the `mbind` call the
    /// modified chunk allocator makes after `mmap`).
    ///
    /// # Panics
    ///
    /// Panics if `proc` is out of range or `len` is zero.
    pub fn mbind(&mut self, proc: ProcId, start: Addr, len: ByteSize, socket: SocketId) {
        self.spaces[proc.0].mbind(start, len, socket);
    }

    /// Unmaps a virtual range (monolithic-free-list ablation only).
    ///
    /// # Errors
    ///
    /// Returns an error if a mapped frame violates physical-memory
    /// invariants.
    pub fn unmap(&mut self, proc: ProcId, start: Addr, len: ByteSize) -> Result<()> {
        // Buffered accesses may target the range being unmapped; resolve
        // them while the mapping still exists, as the scalar path would.
        self.sync_submissions()?;
        self.tlb_flush();
        let Machine { spaces, mem, .. } = self;
        spaces[proc.0].unmap(start, len, mem)
    }

    /// Which socket a fault at `addr` in `proc` would allocate on.
    pub fn socket_of(&self, proc: ProcId, addr: Addr) -> SocketId {
        self.spaces[proc.0].socket_of(addr)
    }

    /// The address space of `proc` (for inspection in tests).
    pub fn address_space(&self, proc: ProcId) -> &AddressSpace {
        &self.spaces[proc.0]
    }

    /// Issues a memory access from hardware context `ctx` in process
    /// `proc`'s address space, advancing `ctx`'s clock by the access cost.
    ///
    /// The access is split into cache-line accesses; the page table is
    /// consulted once per *page* the stream crosses (the in-page line
    /// addresses follow arithmetically), each line is sent through the
    /// hierarchy, and any fills and write-backs are recorded at the owning
    /// memory controllers. Write-back lines land in a scratch buffer reused
    /// across accesses, so the hot path performs no allocation.
    ///
    /// # Errors
    ///
    /// Returns an error if physical memory is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `ctx` or `proc` is out of range.
    pub fn access(&mut self, ctx: CtxId, proc: ProcId, access: MemoryAccess) -> Result<()> {
        // An immediate access must observe all deferred traffic first, so
        // mixing `submit` and `access` keeps submission order intact.
        if !self.sub_addr.is_empty() {
            self.flush_submissions()?;
        }
        if access.size > 0 {
            let total_lines = (access.addr.offset(access.size as u64 - 1).line().raw()
                - access.addr.line().raw())
                / CACHE_LINE as u64
                + 1;
            if total_lines >= PIPELINE_MIN_LINES && matches!(self.engine, AccessEngine::Batched(_))
            {
                // Large access: run the batch pipeline over its own lines.
                // Per-line bookkeeping order (cost, fill, write-backs) is
                // identical to the scalar loop, so every counter, clock,
                // and trace event comes out the same.
                self.stage_begin();
                self.stage_access(ctx, proc, access)?;
                self.resolve_and_merge();
            } else {
                self.access_scalar(ctx, proc, access)?;
            }
        }
        // PCM writes above may have spent a line's endurance budget; retire
        // and remap outside the destructured borrow. The check is one
        // `Option` test when endurance modeling is off.
        if self.mem.has_pending_retirements() {
            self.process_retirements(Some(ctx))?;
        }
        Ok(())
    }

    /// Issues a whole batch of accesses through the struct-of-arrays
    /// pipeline: every access is translated against the page tables in
    /// submission order, the resulting lines are queued per cache-set
    /// shard, all shards resolve (in parallel when
    /// [`Machine::set_intra_threads`] allows), and the outcomes are merged
    /// back in submission order so clocks, counters, traces, and
    /// provenance are bit-identical to issuing each access individually.
    ///
    /// With the scalar engine, or when PCM endurance modeling is on (frame
    /// retirement must be able to rewrite page tables *between* accesses),
    /// this degrades to a per-access loop with identical results.
    ///
    /// # Errors
    ///
    /// Returns an error if physical memory is exhausted; the machine must
    /// be discarded (a mid-batch failure leaves earlier accesses staged but
    /// unresolved).
    ///
    /// # Panics
    ///
    /// Panics if a context or process index is out of range.
    pub fn access_batch(&mut self, batch: &[(CtxId, ProcId, MemoryAccess)]) -> Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        if !self.sub_addr.is_empty() {
            self.flush_submissions()?;
        }
        if !matches!(self.engine, AccessEngine::Batched(_)) || self.mem.endurance_enabled() {
            for &(ctx, proc, access) in batch {
                self.access(ctx, proc, access)?;
            }
            return Ok(());
        }
        self.stage_begin();
        for &(ctx, proc, access) in batch {
            self.stage_access(ctx, proc, access)?;
        }
        self.resolve_and_merge();
        Ok(())
    }

    /// Selects the submission mode for [`Machine::submit`]. The machine
    /// starts in `Scalar` (submit == access, the reference behavior); the
    /// experiment driver switches production runs to `Deferred`. Call
    /// before issuing traffic, or after a [`Machine::sync_submissions`].
    pub fn set_submit_mode(&mut self, mode: SubmitMode) {
        debug_assert!(
            self.sub_addr.is_empty(),
            "sync_submissions before switching the submit mode"
        );
        self.submit_mode = mode;
        self.recompute_defer();
    }

    /// The configured submission mode.
    pub fn submit_mode(&self) -> SubmitMode {
        self.submit_mode
    }

    /// Whether [`Machine::submit`] is currently buffering (deferred mode,
    /// batched engine, and no order-sensitive observer active).
    pub fn submit_deferred(&self) -> bool {
        self.defer_active
    }

    /// Re-evaluates whether submissions may defer. Deferral needs the batch
    /// pipeline, and flushes ride the aggregate shard-major merge, so the
    /// gate is exactly [`Machine::stage_begin`]'s `batch_fast` condition:
    /// any observer of per-line order (tracer, provenance counters, fault
    /// injector, endurance modeling) forces submissions back to the
    /// immediate path.
    fn recompute_defer(&mut self) {
        self.defer_active = self.submit_mode == SubmitMode::Deferred
            && matches!(self.engine, AccessEngine::Batched(_))
            && self.prov.is_none()
            && !self.obs.tracer.enabled()
            && self.mem.fault_injector().is_none()
            && !self.mem.endurance_enabled();
    }

    /// Submits a memory access: the deferred counterpart of
    /// [`Machine::access`], used by the runtime layers (heap allocator,
    /// write barrier, GC tracer/evacuator, native malloc) for their
    /// word-sized traffic.
    ///
    /// While deferral is active the access is appended to the submission
    /// buffer — capturing the current write tag — and resolved later, in
    /// submission order, when the buffer reaches [`SUBMIT_FLUSH_LINES`] or
    /// a semantic boundary calls [`Machine::sync_submissions`] (emulated
    /// reads return no data, so deferring a read never changes what the
    /// caller observes). Otherwise this is exactly `access`. Both paths
    /// leave bit-identical machine state at every sync point.
    ///
    /// # Errors
    ///
    /// Returns an error if physical memory is exhausted; with deferral
    /// active the error surfaces at the flush that performs the
    /// translation, and the machine must then be discarded.
    ///
    /// # Panics
    ///
    /// Panics if `ctx` or `proc` is out of range (for deferred
    /// submissions, at flush time).
    #[inline]
    pub fn submit(&mut self, ctx: CtxId, proc: ProcId, access: MemoryAccess) -> Result<()> {
        if !self.defer_active || ctx.0 >= 256 || proc.0 >= 256 {
            return self.access(ctx, proc, access);
        }
        if access.size == 0 {
            return Ok(());
        }
        self.sub_addr.push(access.addr.raw());
        self.sub_size.push(access.size);
        let meta = ctx.0 as u32
            | (proc.0 as u32) << 8
            | (self.write_tag as u32) << 16
            | (access.kind.is_write() as u32) << 24;
        self.sub_meta.push(meta);
        self.sub_lines += access.size as u64 / CACHE_LINE as u64 + 1;
        if self.sub_lines >= SUBMIT_FLUSH_LINES {
            self.flush_submissions()?;
        }
        Ok(())
    }

    /// Flushes any buffered submissions, bringing clocks, caches, and
    /// counters to exactly the state the scalar submission path would be
    /// in. Call at semantic boundaries: before reading machine state
    /// (clocks, controller counters, stats), at GC pause edges, and before
    /// structural operations. A no-op when nothing is buffered.
    ///
    /// # Errors
    ///
    /// Returns an error if physical memory is exhausted while translating
    /// a buffered access; the machine must then be discarded.
    #[inline]
    pub fn sync_submissions(&mut self) -> Result<()> {
        if self.sub_addr.is_empty() {
            return Ok(());
        }
        self.flush_submissions()
    }

    /// Drains the submission buffer through the batch pipeline: one
    /// `stage_access` per entry in submission order (restoring each
    /// entry's captured write tag), then a single resolve-and-merge.
    /// Deferral is only active when `stage_begin`'s fast gate holds, so
    /// the merge is always the aggregate shard-major drain.
    fn flush_submissions(&mut self) -> Result<()> {
        let saved_tag = self.write_tag;
        self.stage_begin();
        let n = self.sub_addr.len();
        let mut failed = None;
        for i in 0..n {
            let meta = self.sub_meta[i];
            let kind = if meta >> 24 != 0 {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            self.write_tag = (meta >> 16) as u8;
            let access = MemoryAccess {
                addr: Addr::new(self.sub_addr[i]),
                size: self.sub_size[i],
                kind,
            };
            if let Err(e) = self.stage_access(
                CtxId((meta & 0xff) as usize),
                ProcId((meta >> 8 & 0xff) as usize),
                access,
            ) {
                failed = Some(e);
                break;
            }
        }
        self.write_tag = saved_tag;
        self.sub_addr.clear();
        self.sub_size.clear();
        self.sub_meta.clear();
        self.sub_lines = 0;
        if let Some(e) = failed {
            // Earlier entries are staged but unresolved: the machine is
            // only good for error reporting now, like a failed batch.
            return Err(e);
        }
        self.resolve_and_merge();
        Ok(())
    }

    /// Invalidates the whole translation mini-TLB. Called whenever an
    /// existing mapping can change — unmap, OS page migration, wear
    /// remapping — all rare; the page table stays the source of truth and
    /// the next access per page re-fills its slot.
    fn tlb_flush(&mut self) {
        self.tlb_keys.iter_mut().for_each(|k| *k = 0);
        self.tlb_flushes.incr();
    }

    /// The original per-line loop; the executable specification the batch
    /// pipeline is verified against, and the path small accesses take.
    fn access_scalar(&mut self, ctx: CtxId, proc: ProcId, access: MemoryAccess) -> Result<()> {
        let Machine {
            profile,
            mem,
            engine,
            spaces,
            clocks,
            stats,
            obs,
            qpi_lines,
            qpi_pending,
            wb_scratch,
            write_tag,
            prov,
            tlb_keys,
            tlb_frames,
            tlb_hits,
            tlb_misses,
            ..
        } = self;
        let space = &mut spaces[proc.0];
        let clock = &mut clocks[ctx.0];
        let lat = &profile.latency;
        let kind = access.kind;
        debug_assert!(proc.0 < 0xffff, "proc index exceeds the mini-TLB key");

        const PAGE: u64 = PAGE_SIZE as u64;
        const LINE: u64 = CACHE_LINE as u64;
        // Byte addresses of the first and last line touched.
        let first = access.addr.line().raw();
        let last = access.addr.offset(access.size as u64 - 1).line().raw();

        let mut v = first;
        while v <= last {
            // One page walk covers every line up to the page end; the
            // mini-TLB short-circuits the walk for recently used pages.
            let page_end = (v / PAGE + 1) * PAGE;
            let chunk_last = last.min(page_end - LINE);
            let vpage = v / PAGE;
            let slot = (vpage as usize ^ (proc.0 << 4)) & (TLB_SLOTS - 1);
            let key = (vpage << 16) | (proc.0 as u64 + 1);
            let frame_line0 = if tlb_keys[slot] == key {
                tlb_hits.incr();
                tlb_frames[slot]
            } else {
                tlb_misses.incr();
                let f0 = space.frame_of(Addr::new(v), mem)?.phys_base().line().raw();
                tlb_keys[slot] = key;
                tlb_frames[slot] = f0;
                f0
            };
            let chunk_line0 = frame_line0 + (v % PAGE) / LINE;
            let nlines = (chunk_last - v) / LINE + 1;
            stats.line_accesses += nlines;

            for i in 0..nlines {
                let line = LineAddr::new(chunk_line0 + i);
                let (level, fill) = engine.access_into(ctx.0, line, kind, *write_tag, wb_scratch);

                // Timing: the requesting core stalls for the fill path.
                let cost = match level {
                    HitLevel::L2 => lat.l2_hit,
                    HitLevel::Llc => lat.llc_hit,
                    HitLevel::Memory => {
                        let socket = mem.socket_of_line(line);
                        if socket == SocketId::DRAM {
                            stats.local_fills += 1;
                            lat.local_fill
                        } else {
                            stats.remote_fills += 1;
                            qpi_lines.incr();
                            // Individual remote fills are too frequent to trace;
                            // emit one aggregate event per batch of lines.
                            *qpi_pending += 1;
                            if *qpi_pending >= QPI_TRACE_BATCH {
                                obs.tracer.record(
                                    clock.now(),
                                    TraceEvent::QpiTransfer {
                                        lines: *qpi_pending,
                                    },
                                );
                                *qpi_pending = 0;
                            }
                            // An installed fault injector may stall the link
                            // (QPI burst injection); 0 cycles otherwise.
                            let stall = mem.qpi_stall_cycles(1);
                            lat.local_fill + profile.qpi.transfer_cost(1) + Cycles::new(stall)
                        }
                    }
                };
                clock.advance(cost);

                // Traffic: fills read from memory; write-backs write to
                // memory. Write-backs drain through write buffers and do
                // not stall the requesting core, so they cost no time
                // here.
                if let Some(fill) = fill {
                    mem.record_line_access(fill, AccessKind::Read);
                }
                for &(wb, tag) in wb_scratch.iter() {
                    mem.record_line_access(wb, AccessKind::Write);
                    if let Some(pc) = prov {
                        pc.record(mem.socket_of_line(wb), tag);
                    }
                }
            }
            v = page_end;
        }
        Ok(())
    }

    /// Opens a fresh pipeline batch: shard queues and the SoA staging
    /// arrays are cleared (capacity is retained across batches).
    fn stage_begin(&mut self) {
        let AccessEngine::Batched(sh) = &mut self.engine else {
            unreachable!("the batch pipeline requires the batched engine")
        };
        sh.begin_batch();
        self.batch_lines.clear();
        self.batch_ctx.clear();
        // The merge may aggregate (shard-major drain, one clock advance per
        // context) only while nothing observes per-line order: no trace
        // ring (QPI batch events carry timestamps), no provenance counters,
        // no fault injector (QPI stalls are stateful), and no endurance
        // modeling (frame retirement order must follow submission order).
        // Every remaining merge effect is then an order-insensitive
        // counter sum.
        self.batch_fast = self.prov.is_none()
            && !self.obs.tracer.enabled()
            && self.mem.fault_injector().is_none()
            && !self.mem.endurance_enabled();
    }

    /// Translates one access and queues its lines: page walks happen here,
    /// in submission order (so demand faults and injected allocation
    /// failures fire exactly as in the scalar path), and each physical line
    /// is pushed both to its cache-set shard and to the flat submission-
    /// order arrays the merge walks later.
    fn stage_access(&mut self, ctx: CtxId, proc: ProcId, access: MemoryAccess) -> Result<()> {
        if access.size == 0 {
            return Ok(());
        }
        let Machine {
            mem,
            engine,
            spaces,
            stats,
            batch_lines,
            batch_ctx,
            write_tag,
            batch_fast,
            tlb_keys,
            tlb_frames,
            tlb_hits,
            tlb_misses,
            ..
        } = self;
        let AccessEngine::Batched(sh) = engine else {
            unreachable!("the batch pipeline requires the batched engine")
        };
        let space = &mut spaces[proc.0];
        let kind = access.kind;
        debug_assert!(proc.0 < 0xffff, "proc index exceeds the mini-TLB key");

        const PAGE: u64 = PAGE_SIZE as u64;
        const LINE: u64 = CACHE_LINE as u64;
        let first = access.addr.line().raw();
        let last = access.addr.offset(access.size as u64 - 1).line().raw();

        let mut v = first;
        while v <= last {
            let page_end = (v / PAGE + 1) * PAGE;
            let chunk_last = last.min(page_end - LINE);
            // Identical mini-TLB probe to the scalar loop, so `tlb.*`
            // counts do not depend on the access path or submit mode.
            let vpage = v / PAGE;
            let slot = (vpage as usize ^ (proc.0 << 4)) & (TLB_SLOTS - 1);
            let key = (vpage << 16) | (proc.0 as u64 + 1);
            let frame_line0 = if tlb_keys[slot] == key {
                tlb_hits.incr();
                tlb_frames[slot]
            } else {
                tlb_misses.incr();
                let f0 = space.frame_of(Addr::new(v), mem)?.phys_base().line().raw();
                tlb_keys[slot] = key;
                tlb_frames[slot] = f0;
                f0
            };
            let chunk_line0 = frame_line0 + (v % PAGE) / LINE;
            let nlines = (chunk_last - v) / LINE + 1;
            stats.line_accesses += nlines;
            if *batch_fast {
                // The aggregate merge drains outcomes shard-major; the flat
                // submission-order arrays would never be read.
                for i in 0..nlines {
                    sh.enqueue(ctx.0, LineAddr::new(chunk_line0 + i), kind, *write_tag);
                }
            } else {
                for i in 0..nlines {
                    let raw = chunk_line0 + i;
                    sh.enqueue(ctx.0, LineAddr::new(raw), kind, *write_tag);
                    batch_lines.push(raw);
                    batch_ctx.push(ctx.0 as u8);
                }
            }
            v = page_end;
        }
        Ok(())
    }

    /// Resolves every shard queue, then merges outcomes back in global
    /// submission order, replaying the scalar path's per-line bookkeeping
    /// exactly: stall cost and clock advance, QPI accounting and aggregate
    /// trace events, fill reads, then write-back writes with provenance.
    fn resolve_and_merge(&mut self) {
        let Machine {
            profile,
            mem,
            engine,
            clocks,
            stats,
            obs,
            qpi_lines,
            qpi_pending,
            batch_lines,
            batch_ctx,
            prov,
            intra_threads,
            batch_fast,
            batch_cycles,
            ..
        } = self;
        let AccessEngine::Batched(sh) = engine else {
            unreachable!("the batch pipeline requires the batched engine")
        };
        let lat = &profile.latency;
        if *batch_fast {
            // Aggregate merge. With no tracer, provenance, injector, or
            // endurance (checked in `stage_begin`), every per-line merge
            // effect is an order-insensitive counter sum, so shards resolve
            // straight into per-context hit counts plus a memory-fill list
            // (one pass over each queue instead of resolve-then-re-walk)
            // and each context's clock advances once by its accumulated
            // total — bit-identical end state to the submission-order walk
            // below.
            sh.resolve_aggregate(*intra_threads);
            batch_cycles.clear();
            batch_cycles.resize(clocks.len(), Cycles::ZERO);
            let remote_cost = lat.local_fill + profile.qpi.transfer_cost(1);
            sh.drain_fills(|ctx, line| {
                mem.record_line_access(line, AccessKind::Read);
                batch_cycles[ctx] += if mem.socket_of_line(line) == SocketId::DRAM {
                    stats.local_fills += 1;
                    lat.local_fill
                } else {
                    stats.remote_fills += 1;
                    qpi_lines.incr();
                    // Keep the aggregate-trace countdown in the same state
                    // the scalar path would leave it (the tracer itself is
                    // off).
                    *qpi_pending += 1;
                    if *qpi_pending >= QPI_TRACE_BATCH {
                        *qpi_pending = 0;
                    }
                    remote_cost
                };
            });
            sh.drain_counts(|ctx, level, n| {
                // Memory-level lines were already costed per fill above.
                let per = match level {
                    HitLevel::L2 => lat.l2_hit,
                    HitLevel::Llc => lat.llc_hit,
                    HitLevel::Memory => Cycles::ZERO,
                };
                batch_cycles[ctx] += Cycles::new(per.raw() * n);
            });
            sh.drain_writebacks(|wb, _| {
                mem.record_line_access(wb, AccessKind::Write);
            });
            for (clock, total) in clocks.iter_mut().zip(batch_cycles.iter()) {
                clock.advance(*total);
            }
            return;
        }
        sh.resolve(*intra_threads);
        for (&raw, &ctx) in batch_lines.iter().zip(batch_ctx.iter()) {
            let line = LineAddr::new(raw);
            let clock = &mut clocks[ctx as usize];
            let (level, fill, wbs) = sh.next_outcome(line);
            let cost = match level {
                HitLevel::L2 => lat.l2_hit,
                HitLevel::Llc => lat.llc_hit,
                HitLevel::Memory => {
                    let socket = mem.socket_of_line(line);
                    if socket == SocketId::DRAM {
                        stats.local_fills += 1;
                        lat.local_fill
                    } else {
                        stats.remote_fills += 1;
                        qpi_lines.incr();
                        *qpi_pending += 1;
                        if *qpi_pending >= QPI_TRACE_BATCH {
                            obs.tracer.record(
                                clock.now(),
                                TraceEvent::QpiTransfer {
                                    lines: *qpi_pending,
                                },
                            );
                            *qpi_pending = 0;
                        }
                        let stall = mem.qpi_stall_cycles(1);
                        lat.local_fill + profile.qpi.transfer_cost(1) + Cycles::new(stall)
                    }
                }
            };
            clock.advance(cost);
            if let Some(fill) = fill {
                mem.record_line_access(fill, AccessKind::Read);
            }
            for &(wb, tag) in wbs {
                mem.record_line_access(wb, AccessKind::Write);
                if let Some(pc) = prov {
                    pc.record(mem.socket_of_line(wb), tag);
                }
            }
        }
        batch_lines.clear();
        batch_ctx.clear();
    }

    /// Drains the retirement queue: every worn-out frame gets a healthy
    /// replacement on the same socket, page tables are rewritten so the
    /// application keeps its virtual addresses, and the page copy shows up
    /// as controller traffic (a DMA-like read of the dead frame plus a
    /// write of the replacement, bypassing the cache hierarchy).
    ///
    /// `ctx`, when given, is the context whose access triggered the
    /// retirement; it stalls for the copy.
    fn process_retirements(&mut self, ctx: Option<CtxId>) -> Result<()> {
        let lines_per_page = (PAGE_SIZE / CACHE_LINE) as u64;
        // Migration writes wear the replacement frame too; budgets are
        // clamped >= 2, so a single copy pass cannot re-retire it, but the
        // queue is drained in a loop for robustness.
        loop {
            let pending = self.mem.take_pending_retirements();
            if pending.is_empty() {
                return Ok(());
            }
            for old in pending {
                let socket = self.mem.socket_of_frame(old);
                // Recovery must not be re-faulted by the injector.
                let new = match self.mem.allocate_frame_uninjected(socket) {
                    Ok(f) => f,
                    Err(_) => {
                        return Err(HemuError::WornOut {
                            socket,
                            retired_pages: self.mem.retired_pages(socket),
                        });
                    }
                };
                let mut remapped = 0;
                for space in &mut self.spaces {
                    remapped += space.remap_frame(old, new);
                }
                if remapped == 0 {
                    // The dead frame was free or already unmapped: nothing
                    // to migrate, return the unused replacement.
                    self.mem.free_frame(new)?;
                    continue;
                }
                self.tlb_flush();
                self.pages_remapped += remapped;
                self.mem.heat_on_remap(old, new);
                // Ownership moves before the copy, so the replacement
                // frame's copy writes charge to the owning tenant.
                self.mem.tenancy_on_remap(old, new);
                let old_line0 = old.phys_base().line().raw();
                let new_line0 = new.phys_base().line().raw();
                for i in 0..lines_per_page {
                    self.mem
                        .record_line_access(LineAddr::new(old_line0 + i), AccessKind::Read);
                    self.mem
                        .record_line_access(LineAddr::new(new_line0 + i), AccessKind::Write);
                }
                if let Some(pc) = &self.prov {
                    let tag = WriteTag::new(WriteCause::WearRemap, SpaceTag::Other).raw();
                    pc.record_n(socket, tag, lines_per_page);
                }
                if let Some(ctx) = ctx {
                    // The faulting context stalls for a read+write pass
                    // over the page, at fill latency per line.
                    let copy = self.profile.latency.local_fill.raw() * 2 * lines_per_page;
                    self.clocks[ctx.0].advance(Cycles::new(copy));
                }
            }
        }
    }

    /// Migrates the physical page in frame `old` to a fresh frame on
    /// socket `to`, the primitive under OS hot/cold page migration: a
    /// replacement frame is allocated on the target socket, every address
    /// space's mapping of `old` is rewritten, the page copy is charged as
    /// DMA-like controller traffic (a read of the old frame, a write of
    /// the new — wearing PCM when `to` is the PCM socket) plus one page of
    /// QPI transfer, a [`TraceEvent::PageMigrated`] is emitted, and the
    /// old frame is freed. Page heat follows the page to its new frame
    /// with epoch deltas restarted.
    ///
    /// Returns `Ok(None)` without side effects when the frame already
    /// lives on `to` or is not mapped by any process, and `Ok(Some(new))`
    /// after a successful move.
    ///
    /// # Errors
    ///
    /// Returns [`HemuError::OutOfPhysicalMemory`] when the target socket
    /// has no free frame (the caller may demote something first and
    /// retry), and propagates internal invariant violations.
    pub fn migrate_frame(&mut self, old: PageNum, to: SocketId) -> Result<Option<PageNum>> {
        // Pending traffic must hit the page at its current frame.
        self.sync_submissions()?;
        let from = self.mem.socket_of_frame(old);
        if from == to {
            return Ok(None);
        }
        // Migration is an OS background operation; it must not be failed
        // by the experiment's fault injector, so allocate uninjected.
        let new = self.mem.allocate_frame_uninjected(to)?;
        let mut remapped = 0;
        for space in &mut self.spaces {
            remapped += space.remap_frame(old, new);
        }
        if remapped == 0 {
            // Nothing maps the frame (it was freed since sampling saw it);
            // return the unused replacement and report "not migrated".
            self.mem.free_frame(new)?;
            return Ok(None);
        }
        self.tlb_flush();
        // Ownership moves before the copy, so the migration's write pass
        // over the new frame charges to the owning tenant.
        self.mem.tenancy_on_remap(old, new);
        let lines_per_page = (PAGE_SIZE / CACHE_LINE) as u64;
        let old_line0 = old.phys_base().line().raw();
        let new_line0 = new.phys_base().line().raw();
        for i in 0..lines_per_page {
            self.mem
                .record_line_access(LineAddr::new(old_line0 + i), AccessKind::Read);
            self.mem
                .record_line_access(LineAddr::new(new_line0 + i), AccessKind::Write);
        }
        if let Some(pc) = &self.prov {
            let tag = WriteTag::new(WriteCause::OsMigration, SpaceTag::Other).raw();
            pc.record_n(to, tag, lines_per_page);
        }
        // The copy crosses the inter-socket link once per line.
        self.qpi_lines.add(lines_per_page);
        self.obs.tracer.record(
            self.elapsed(),
            TraceEvent::PageMigrated {
                frame: old.raw(),
                from,
                to,
            },
        );
        self.mem.heat_on_remap(old, new);
        self.mem.free_frame(old)?;
        // Demotion writes wear PCM and may retire a line's frame.
        if self.mem.has_pending_retirements() {
            self.process_retirements(None)?;
        }
        Ok(Some(new))
    }

    /// Hands page placement of `proc` to the OS: faults allocate on
    /// `primary` and spill to `spill` when it is full, ignoring `mbind`.
    ///
    /// # Panics
    ///
    /// Panics if `proc` is out of range.
    pub fn set_os_placement(&mut self, proc: ProcId, primary: SocketId, spill: Option<SocketId>) {
        self.spaces[proc.0].set_os_placement(primary, spill);
    }

    /// Enables per-page read/write sampling (input to OS hot-page
    /// migration). Off by default; GC-managed runs pay nothing.
    pub fn enable_page_heat(&mut self) {
        self.mem.enable_page_heat();
    }

    /// Enables per-tenant write attribution for `tenants` co-scheduled
    /// tenants (consolidated runs). Off by default; single-tenant runs pay
    /// nothing. Tenancy never observes per-line *order* — its counts are
    /// order-insensitive sums over frame ownership — so unlike tracing,
    /// provenance, fault injection, and endurance it does not disable the
    /// aggregate batch merge or deferred submission.
    pub fn enable_tenancy(&mut self, tenants: usize) {
        self.mem.enable_tenancy(tenants);
    }

    /// The tenancy tracker, if per-tenant attribution is enabled.
    pub fn tenancy(&self) -> Option<&hemu_numa::TenancyTracker> {
        self.mem.tenancy()
    }

    /// Binds process `proc` to `tenant`: frames it demand-faults from now
    /// on are attributed to that tenant. Call right after
    /// [`Machine::add_process`], before the process touches memory.
    ///
    /// # Panics
    ///
    /// Panics if `proc` is out of range.
    pub fn set_proc_tenant(&mut self, proc: ProcId, tenant: u16) {
        self.spaces[proc.0].set_tenant(tenant);
    }

    /// The page-heat tracker, if sampling is enabled.
    pub fn page_heat(&self) -> Option<&hemu_numa::PageHeatTracker> {
        self.mem.page_heat()
    }

    /// Closes the heat-sampling epoch (per-page deltas restart at zero).
    pub fn reset_page_heat_epoch(&mut self) {
        debug_assert!(
            self.sub_addr.is_empty(),
            "sync_submissions before closing a heat epoch"
        );
        self.mem.reset_page_heat_epoch();
    }

    /// Caps one socket's allocatable capacity (OS-paging experiments need
    /// a DRAM small enough to actually fill). Call before any allocation.
    pub fn restrict_socket_capacity(&mut self, socket: SocketId, limit: ByteSize) {
        self.mem.restrict_socket(socket, limit);
    }

    /// Advances `ctx`'s clock by pure compute work (no memory traffic).
    ///
    /// # Panics
    ///
    /// Panics if `ctx` is out of range.
    pub fn compute(&mut self, ctx: CtxId, cycles: Cycles) {
        self.clocks[ctx.0].advance(cycles);
    }

    /// The virtual clock of one context.
    pub fn clock(&self, ctx: CtxId) -> &VirtualClock {
        &self.clocks[ctx.0]
    }

    /// The latest clock across all contexts — elapsed virtual time of the
    /// whole (parallel) machine.
    pub fn elapsed(&self) -> Cycles {
        self.clocks
            .iter()
            .map(|c| c.now())
            .max()
            .unwrap_or(Cycles::ZERO)
    }

    /// Elapsed virtual time in seconds.
    pub fn elapsed_seconds(&self) -> f64 {
        self.elapsed().as_seconds(self.profile.freq_hz)
    }

    /// Synchronizes all context clocks to the latest one (the barrier that
    /// multiprogrammed instances hit before the measured iteration).
    pub fn barrier(&mut self) {
        debug_assert!(
            self.sub_addr.is_empty(),
            "sync_submissions before a clock barrier"
        );
        let latest = self.elapsed();
        for c in &mut self.clocks {
            c.sync_to(latest);
        }
    }

    /// Writes back every dirty line in the hierarchy to memory, so that all
    /// stores issued so far are visible in the controller counters.
    ///
    /// # Errors
    ///
    /// Returns [`HemuError::WornOut`] if the write-backs wear out a PCM
    /// line and no healthy frame is left to remap the page to.
    pub fn flush_caches(&mut self) -> Result<()> {
        self.sync_submissions()?;
        {
            let Machine {
                mem, engine, prov, ..
            } = self;
            engine.flush(|line, tag| {
                mem.record_line_access(line, AccessKind::Write);
                if let Some(pc) = prov {
                    pc.record(mem.socket_of_line(line), tag);
                }
            });
        }
        if self.mem.has_pending_retirements() {
            self.process_retirements(None)?;
        }
        Ok(())
    }

    /// Total bytes written at a socket's memory controller.
    pub fn socket_writes(&self, socket: SocketId) -> ByteSize {
        self.mem.counters(socket).written()
    }

    /// Total bytes read at a socket's memory controller.
    pub fn socket_reads(&self, socket: SocketId) -> ByteSize {
        self.mem.counters(socket).read()
    }

    /// Shorthand: bytes written to the PCM socket — the paper's headline
    /// metric.
    pub fn pcm_writes(&self) -> ByteSize {
        self.socket_writes(SocketId::PCM)
    }

    /// Interval machine statistics.
    pub fn stats(&self) -> &MachineStats {
        &self.stats
    }

    /// The memory system (for inspection).
    pub fn memory(&self) -> &NumaMemory {
        &self.mem
    }

    /// Enables per-line wear tracking on the PCM socket (an analysis
    /// extension; costs a hash-map update per PCM line write).
    pub fn enable_wear_tracking(&mut self) {
        self.mem.enable_wear_tracking();
    }

    /// Enables PCM endurance modeling: per-line write budgets, frame
    /// retirement, and transparent page remapping. Implies wear tracking.
    pub fn enable_endurance(&mut self, cfg: EnduranceConfig) {
        debug_assert!(
            self.sub_addr.is_empty(),
            "sync_submissions before enabling endurance"
        );
        self.mem.enable_endurance(cfg);
        self.recompute_defer();
    }

    /// Installs a deterministic fault injector executing `plan`.
    pub fn install_faults(&mut self, plan: FaultPlan) {
        debug_assert!(
            self.sub_addr.is_empty(),
            "sync_submissions before installing faults"
        );
        self.mem.set_fault_injector(FaultInjector::new(plan));
        self.recompute_defer();
    }

    /// The installed fault injector, if any (for inspection).
    pub fn fault_injector(&self) -> Option<&FaultInjector> {
        self.mem.fault_injector()
    }

    /// Injection point the managed heap consults before each allocation.
    ///
    /// # Errors
    ///
    /// Returns [`HemuError::FaultInjected`] when an installed plan forces
    /// an out-of-memory at this allocation; always `Ok` otherwise.
    pub fn fault_on_managed_alloc(&mut self) -> Result<()> {
        self.mem.fault_on_managed_alloc()
    }

    /// Pages transparently remapped after wear-out retirement.
    pub fn pages_remapped(&self) -> u64 {
        self.pages_remapped
    }

    /// Aggregate shared-LLC statistics of the active engine (for
    /// inspection; identical under either access path).
    pub fn llc_stats(&self) -> CacheStats {
        self.engine.llc_stats()
    }

    /// Resets measurement state — controller counters, cache stats, machine
    /// stats and clocks — *without* touching cache or memory contents.
    ///
    /// This is the replay-compilation measurement protocol: run the warm-up
    /// iteration, reset, then measure the steady-state iteration.
    pub fn start_measured_iteration(&mut self) {
        debug_assert!(
            self.sub_addr.is_empty(),
            "sync_submissions before resetting measurement state"
        );
        self.mem.reset_counters();
        self.engine.reset_stats();
        self.stats = MachineStats::default();
        self.qpi_pending = 0;
        self.obs.metrics.reset();
        self.obs.spans.reset();
        for c in &mut self.clocks {
            c.reset();
        }
        self.obs.tracer.record(
            Cycles::ZERO,
            TraceEvent::Phase {
                name: "measured_iteration",
            },
        );
    }
}

impl ToJson for CtxId {
    fn write_json(&self, out: &mut String) {
        self.0.write_json(out);
    }
}

impl ToJson for ProcId {
    fn write_json(&self, out: &mut String) {
        self.0.write_json(out);
    }
}

impl ToJson for MachineStats {
    fn write_json(&self, out: &mut String) {
        let mut obj = JsonObject::new(out);
        obj.field("line_accesses", &self.line_accesses)
            .field("local_fills", &self.local_fills)
            .field("remote_fills", &self.remote_fills);
        obj.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> Machine {
        Machine::new(MachineProfile::emulation())
    }

    #[test]
    fn writes_to_pcm_bound_region_reach_pcm_counter() {
        let mut m = machine();
        let p = m.add_process(SocketId::DRAM);
        m.mbind(
            p,
            Addr::new(0x1000_0000),
            ByteSize::from_mib(64),
            SocketId::PCM,
        );
        // Write 32 MiB (larger than the 20 MiB LLC) so most lines spill.
        m.access(
            CtxId(0),
            p,
            MemoryAccess::write(Addr::new(0x1000_0000), 32 << 20),
        )
        .unwrap();
        m.flush_caches().unwrap();
        let written = m.pcm_writes();
        assert_eq!(
            written.bytes(),
            32 << 20,
            "every written line reaches PCM after flush"
        );
        assert_eq!(m.socket_writes(SocketId::DRAM), ByteSize::ZERO);
    }

    #[test]
    fn small_working_set_is_absorbed_by_cache() {
        let mut m = machine();
        let p = m.add_process(SocketId::DRAM);
        m.mbind(
            p,
            Addr::new(0x1000_0000),
            ByteSize::from_mib(4),
            SocketId::PCM,
        );
        // Overwrite the same 1 MiB a hundred times without flushing.
        for _ in 0..100 {
            m.access(
                CtxId(0),
                p,
                MemoryAccess::write(Addr::new(0x1000_0000), 1 << 20),
            )
            .unwrap();
        }
        // Only the cold fill traffic has reached memory; writes stay cached.
        assert_eq!(m.pcm_writes(), ByteSize::ZERO);
        m.flush_caches().unwrap();
        assert_eq!(
            m.pcm_writes().bytes(),
            1 << 20,
            "one working set, not one hundred"
        );
    }

    #[test]
    fn remote_fills_cost_more_time_than_local() {
        let mut ml = machine();
        let pl = ml.add_process(SocketId::DRAM);
        ml.access(CtxId(0), pl, MemoryAccess::read(Addr::new(0), 1 << 20))
            .unwrap();
        let local_time = ml.clock(CtxId(0)).now();

        let mut mr = machine();
        let pr = mr.add_process(SocketId::PCM);
        mr.access(CtxId(0), pr, MemoryAccess::read(Addr::new(0), 1 << 20))
            .unwrap();
        let remote_time = mr.clock(CtxId(0)).now();

        assert!(remote_time > local_time);
    }

    #[test]
    fn compute_advances_only_that_context() {
        let mut m = machine();
        m.compute(CtxId(3), Cycles::new(1000));
        assert_eq!(m.clock(CtxId(3)).now(), Cycles::new(1000));
        assert_eq!(m.clock(CtxId(0)).now(), Cycles::ZERO);
        assert_eq!(m.elapsed(), Cycles::new(1000));
    }

    #[test]
    fn barrier_synchronizes_clocks() {
        let mut m = machine();
        m.compute(CtxId(0), Cycles::new(500));
        m.barrier();
        assert_eq!(m.clock(CtxId(7)).now(), Cycles::new(500));
    }

    #[test]
    fn measured_iteration_reset_preserves_cache_contents() {
        let mut m = machine();
        let p = m.add_process(SocketId::DRAM);
        m.mbind(
            p,
            Addr::new(0x1000_0000),
            ByteSize::from_mib(1),
            SocketId::PCM,
        );
        m.access(
            CtxId(0),
            p,
            MemoryAccess::write(Addr::new(0x1000_0000), 4096),
        )
        .unwrap();
        m.start_measured_iteration();
        assert_eq!(m.pcm_writes(), ByteSize::ZERO);
        // Lines are still cached: re-reading them is free of memory fills.
        m.access(
            CtxId(0),
            p,
            MemoryAccess::read(Addr::new(0x1000_0000), 4096),
        )
        .unwrap();
        assert_eq!(m.stats().local_fills + m.stats().remote_fills, 0);
    }

    #[test]
    fn fills_are_counted_as_reads_at_the_controller() {
        let mut m = machine();
        let p = m.add_process(SocketId::PCM);
        m.access(CtxId(0), p, MemoryAccess::read(Addr::new(0), 64 * 10))
            .unwrap();
        assert_eq!(m.socket_reads(SocketId::PCM).bytes(), 640);
        assert_eq!(m.pcm_writes(), ByteSize::ZERO);
    }

    #[test]
    fn migrate_frame_moves_page_charges_traffic_and_keeps_translation() {
        let mut m = machine();
        let p = m.add_process(SocketId::PCM);
        m.access(CtxId(0), p, MemoryAccess::write(Addr::new(0x7000), 64))
            .unwrap();
        let old = m
            .address_space(p)
            .translate_existing(Addr::new(0x7000))
            .unwrap()
            .frame();
        assert_eq!(m.memory().socket_of_frame(old), SocketId::PCM);
        let pcm_reads_before = m.socket_reads(SocketId::PCM).bytes();
        let dram_writes_before = m.socket_writes(SocketId::DRAM).bytes();
        let qpi_before = m.obs().metrics.counter_value("qpi.lines");

        let new = m
            .migrate_frame(old, SocketId::DRAM)
            .unwrap()
            .expect("mapped page migrates");
        assert_eq!(m.memory().socket_of_frame(new), SocketId::DRAM);
        // Translation is preserved, now pointing at the DRAM frame.
        let after = m
            .address_space(p)
            .translate_existing(Addr::new(0x7000))
            .unwrap();
        assert_eq!(after.frame(), new);
        // The copy shows as one page read at PCM, one page written at
        // DRAM, and one page of QPI transfer.
        let page = PAGE_SIZE as u64;
        assert_eq!(
            m.socket_reads(SocketId::PCM).bytes() - pcm_reads_before,
            page
        );
        assert_eq!(
            m.socket_writes(SocketId::DRAM).bytes() - dram_writes_before,
            page
        );
        assert_eq!(
            m.obs().metrics.counter_value("qpi.lines") - qpi_before,
            page / CACHE_LINE as u64
        );
    }

    #[test]
    fn migrate_frame_is_a_no_op_for_same_socket_or_unmapped_frames() {
        let mut m = machine();
        let p = m.add_process(SocketId::PCM);
        m.access(CtxId(0), p, MemoryAccess::write(Addr::new(0x7000), 64))
            .unwrap();
        let old = m
            .address_space(p)
            .translate_existing(Addr::new(0x7000))
            .unwrap()
            .frame();
        assert_eq!(m.migrate_frame(old, SocketId::PCM).unwrap(), None);
        // A frame nobody maps is not migrated either.
        let stray = PageNum::new(17);
        assert_eq!(m.migrate_frame(stray, SocketId::PCM).unwrap(), None);
    }

    #[test]
    fn migration_demotion_wears_pcm() {
        let mut m = machine();
        m.enable_wear_tracking();
        let p = m.add_process(SocketId::DRAM);
        m.access(CtxId(0), p, MemoryAccess::write(Addr::new(0x3000), 64))
            .unwrap();
        let old = m
            .address_space(p)
            .translate_existing(Addr::new(0x3000))
            .unwrap()
            .frame();
        m.migrate_frame(old, SocketId::PCM).unwrap().unwrap();
        let wear = m.memory().wear().unwrap();
        assert_eq!(
            wear.lines_touched() as u64,
            (PAGE_SIZE / CACHE_LINE) as u64,
            "the demotion copy wears every line of the PCM frame"
        );
    }

    #[test]
    fn profiling_attributes_pcm_writes_to_cause_and_space() {
        let mut m = machine();
        m.enable_profiling();
        let p = m.add_process(SocketId::DRAM);
        m.mbind(
            p,
            Addr::new(0x1000_0000),
            ByteSize::from_mib(64),
            SocketId::PCM,
        );
        m.set_write_tag(WriteTag::new(WriteCause::Mutator, SpaceTag::Nursery));
        m.access(
            CtxId(0),
            p,
            MemoryAccess::write(Addr::new(0x1000_0000), 32 << 20),
        )
        .unwrap();
        m.flush_caches().unwrap();
        let lines = (32u64 << 20) / CACHE_LINE as u64;
        let mtx = &m.obs().metrics;
        assert_eq!(mtx.counter_value("writes.by_cause.mutator"), lines);
        assert_eq!(mtx.counter_value("writes.by_space.nursery"), lines);
        assert_eq!(mtx.counter_value("writes.by_cause.nursery_evac"), 0);
        assert_eq!(mtx.counter_value("writes.dram.by_cause.mutator"), 0);
    }

    #[test]
    fn profiling_disabled_records_no_attribution() {
        let mut m = machine();
        let p = m.add_process(SocketId::PCM);
        m.set_write_tag(WriteTag::new(WriteCause::Mutator, SpaceTag::Nursery));
        m.access(CtxId(0), p, MemoryAccess::write(Addr::new(0), 1 << 20))
            .unwrap();
        m.flush_caches().unwrap();
        assert!(!m.profiling_enabled());
        assert_eq!(m.obs().metrics.counter_value("writes.by_cause.mutator"), 0);
    }

    #[test]
    fn migration_writes_are_attributed_to_os_migration() {
        let mut m = machine();
        m.enable_profiling();
        let p = m.add_process(SocketId::DRAM);
        m.access(CtxId(0), p, MemoryAccess::write(Addr::new(0x3000), 64))
            .unwrap();
        let old = m
            .address_space(p)
            .translate_existing(Addr::new(0x3000))
            .unwrap()
            .frame();
        m.migrate_frame(old, SocketId::PCM).unwrap().unwrap();
        let per_page = (PAGE_SIZE / CACHE_LINE) as u64;
        assert_eq!(
            m.obs()
                .metrics
                .counter_value("writes.by_cause.os_migration"),
            per_page
        );
    }

    /// Drives an identical interleaved stream of small reads, writes, and
    /// computes through `submit` on a machine in the given mode.
    fn drive_submissions(m: &mut Machine, p: ProcId) {
        let mut x = 0x2545_f491_4f6c_dd1du64;
        for i in 0..40_000u64 {
            x = x
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            let addr = Addr::new((x >> 16) % (8 << 20));
            let ctx = CtxId((i % 3) as usize);
            let acc = if x & 1 == 0 {
                MemoryAccess::write(addr, 8)
            } else {
                MemoryAccess::read(addr, 8)
            };
            m.submit(ctx, p, acc).unwrap();
            if i % 64 == 0 {
                m.compute(ctx, Cycles::new(100));
            }
            if i % 9_000 == 0 {
                // A direct access mid-stream must observe prior submits.
                m.access(ctx, p, MemoryAccess::write(Addr::new(64), 256))
                    .unwrap();
            }
        }
        m.sync_submissions().unwrap();
    }

    /// The tentpole invariant at machine level: a deferred submission
    /// stream leaves bit-identical clocks, stats, controller counters,
    /// cache state, and TLB counts to the scalar submission path.
    #[test]
    fn deferred_submission_matches_scalar_submission() {
        let mut run = |mode: SubmitMode| {
            let mut m = machine();
            m.set_submit_mode(mode);
            let p = m.add_process(SocketId::PCM);
            drive_submissions(&mut m, p);
            m.flush_caches().unwrap();
            (
                (0..3).map(|c| m.clock(CtxId(c)).now()).collect::<Vec<_>>(),
                *m.stats(),
                m.pcm_writes(),
                m.socket_reads(SocketId::PCM),
                m.llc_stats(),
                m.obs().metrics.counter_value("qpi.lines"),
                m.obs().metrics.counter_value("tlb.hits"),
                m.obs().metrics.counter_value("tlb.misses"),
            )
        };
        let deferred = run(SubmitMode::Deferred);
        let scalar = run(SubmitMode::Scalar);
        assert_eq!(deferred, scalar);
        assert!(deferred.6 > 0, "the stream re-uses pages: TLB hits exist");
    }

    /// Deferral auto-disables while an order-sensitive observer is active
    /// and re-enables when it goes away.
    #[test]
    fn deferral_gates_on_order_observers() {
        let mut m = machine();
        m.set_submit_mode(SubmitMode::Deferred);
        assert!(m.submit_deferred());
        m.enable_profiling();
        assert!(!m.submit_deferred(), "provenance observes per-line order");
        let mut m2 = machine();
        m2.set_submit_mode(SubmitMode::Deferred);
        m2.set_access_path(AccessPath::Scalar);
        assert!(!m2.submit_deferred(), "deferral needs the batch pipeline");
        let mut m3 = machine();
        m3.set_submit_mode(SubmitMode::Deferred);
        m3.enable_endurance(EnduranceConfig::default());
        assert!(!m3.submit_deferred(), "endurance observes ordering");
        // Scalar-mode submit is exactly access.
        let mut m4 = machine();
        assert_eq!(m4.submit_mode(), SubmitMode::Scalar);
        let p = m4.add_process(SocketId::DRAM);
        m4.submit(CtxId(0), p, MemoryAccess::read(Addr::new(0), 64))
            .unwrap();
        assert_eq!(m4.stats().line_accesses, 1, "resolved immediately");
    }

    /// The buffer flushes on its own once it holds enough lines, without
    /// waiting for a semantic sync point.
    #[test]
    fn submissions_auto_flush_at_the_line_threshold() {
        let mut m = machine();
        m.set_submit_mode(SubmitMode::Deferred);
        let p = m.add_process(SocketId::DRAM);
        for i in 0..SUBMIT_FLUSH_LINES {
            m.submit(CtxId(0), p, MemoryAccess::write(Addr::new(i * 64), 8))
                .unwrap();
        }
        assert!(
            m.stats().line_accesses > 0,
            "the threshold flush resolved the buffer"
        );
    }

    /// Page migration invalidates the mini-TLB, so later accesses observe
    /// the new frame (and the flush is counted).
    #[test]
    fn migration_flushes_the_mini_tlb() {
        let mut m = machine();
        let p = m.add_process(SocketId::PCM);
        m.access(CtxId(0), p, MemoryAccess::write(Addr::new(0x7000), 64))
            .unwrap();
        let old = m
            .address_space(p)
            .translate_existing(Addr::new(0x7000))
            .unwrap()
            .frame();
        m.migrate_frame(old, SocketId::DRAM).unwrap().unwrap();
        assert!(m.obs().metrics.counter_value("tlb.flushes") > 0);
        // Post-migration traffic lands on DRAM: the stale PCM translation
        // is gone.
        let before = m.stats().local_fills;
        m.access(CtxId(0), p, MemoryAccess::read(Addr::new(0x7040), 64))
            .unwrap();
        assert_eq!(m.stats().local_fills, before + 1);
    }

    /// Tenancy at machine level: two tenant processes write PCM-bound
    /// memory; per-tenant line counts sum exactly to the controller
    /// counter, migration keeps the owner with the page, and the gauges
    /// appear under `writes.tenant.<id>.*`.
    #[test]
    fn tenancy_attributes_controller_writes_per_tenant() {
        let mut m = machine();
        m.enable_tenancy(2);
        let a = m.add_process(SocketId::PCM);
        m.set_proc_tenant(a, 0);
        let b = m.add_process(SocketId::PCM);
        m.set_proc_tenant(b, 1);
        // Tenant 0 writes 2 MiB, tenant 1 writes 1 MiB; flush so every
        // dirty line reaches the controller.
        m.access(CtxId(0), a, MemoryAccess::write(Addr::new(0), 2 << 20))
            .unwrap();
        m.access(CtxId(1), b, MemoryAccess::write(Addr::new(0), 1 << 20))
            .unwrap();
        m.flush_caches().unwrap();
        let t = m.tenancy().unwrap();
        let (t0, t1) = (t.pcm_lines(0), t.pcm_lines(1));
        assert!(t0 > t1, "tenant 0 wrote twice as much");
        assert_eq!(t.unattributed_pcm(), 0, "every frame has an owner");
        assert_eq!(
            (t0 + t1) * CACHE_LINE as u64,
            m.pcm_writes().bytes(),
            "per-tenant counts sum exactly to the PCM controller counter"
        );
        m.publish_metrics();
        let g = m.obs().metrics.gauge("writes.tenant.0.pcm_lines").get();
        assert_eq!(g as u64, t0);

        // Migration keeps ownership with the page: the copy writes to the
        // DRAM frame charge tenant 0.
        let old = m
            .address_space(a)
            .translate_existing(Addr::new(0))
            .unwrap()
            .frame();
        m.migrate_frame(old, SocketId::DRAM).unwrap().unwrap();
        let t = m.tenancy().unwrap();
        assert_eq!(
            t.dram_lines(0),
            (PAGE_SIZE / CACHE_LINE) as u64,
            "the migration copy is attributed to the page's owner"
        );
        assert_eq!(t.unattributed_dram(), 0);
    }

    #[test]
    fn processes_are_isolated_in_physical_memory() {
        let mut m = machine();
        let a = m.add_process(SocketId::DRAM);
        let b = m.add_process(SocketId::DRAM);
        // Same VA in both processes: the second process's access must not
        // hit the first one's cached line.
        m.access(CtxId(0), a, MemoryAccess::read(Addr::new(0x5000), 64))
            .unwrap();
        let fills_before = m.stats().local_fills;
        m.access(CtxId(1), b, MemoryAccess::read(Addr::new(0x5000), 64))
            .unwrap();
        assert_eq!(m.stats().local_fills, fills_before + 1);
    }
}
