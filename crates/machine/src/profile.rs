//! Machine profiles: the hardware parameter sets the platform can emulate.

use hemu_cache::HierarchyConfig;
use hemu_numa::{NumaConfig, QpiLink};
use hemu_types::{ByteSize, Cycles};

/// Per-level access latencies in core cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyModel {
    /// Private L2 hit.
    pub l2_hit: Cycles,
    /// Shared LLC hit.
    pub llc_hit: Cycles,
    /// Local-socket memory fill.
    pub local_fill: Cycles,
}

impl Default for LatencyModel {
    fn default() -> Self {
        // ~2.2 ns L2, ~17 ns LLC, ~75 ns local DRAM at 1.8 GHz.
        LatencyModel {
            l2_hit: Cycles::new(4),
            llc_hit: Cycles::new(30),
            local_fill: Cycles::new(135),
        }
    }
}

/// A complete hardware configuration for the emulated machine.
///
/// Two presets reproduce the paper's §V methodology comparison:
/// [`MachineProfile::emulation`] models the NUMA platform (Intel E5-2650L:
/// 8 cores × 2 SMT = 16 contexts per socket, 20 MB LLC), and
/// [`MachineProfile::simulation`] models the Sniper configuration (8
/// out-of-order cores, no SMT, 256 KB private L2s, shared 20 MB L3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineProfile {
    /// Profile name for reports.
    pub name: &'static str,
    /// Hardware contexts available to software (all on socket 0).
    pub contexts: usize,
    /// Private L2 capacity.
    pub l2_size: ByteSize,
    /// L2 associativity.
    pub l2_assoc: usize,
    /// Shared LLC capacity.
    pub llc_size: ByteSize,
    /// LLC associativity.
    pub llc_assoc: usize,
    /// Core frequency in Hz.
    pub freq_hz: u64,
    /// Physical memory configuration.
    pub numa: NumaConfig,
    /// Socket interconnect model.
    pub qpi: QpiLink,
    /// Cache/memory latencies.
    pub latency: LatencyModel,
}

impl MachineProfile {
    /// The paper's emulation platform: one E5-2650L socket of 16 logical
    /// cores runs all threads; the second socket provides the PCM memory.
    pub fn emulation() -> Self {
        MachineProfile {
            name: "emulation",
            contexts: 16,
            l2_size: ByteSize::from_kib(256),
            l2_assoc: 8,
            llc_size: ByteSize::from_mib(20),
            llc_assoc: 20,
            freq_hz: 1_800_000_000,
            numa: NumaConfig::default(),
            qpi: QpiLink::e5_2650l(),
            latency: LatencyModel::default(),
        }
    }

    /// The paper's simulation reference (Sniper): 8 cores, no SMT, same
    /// cache sizes. Timing constants differ slightly, as a high-level core
    /// model's do.
    pub fn simulation() -> Self {
        MachineProfile {
            name: "simulation",
            contexts: 8,
            latency: LatencyModel {
                l2_hit: Cycles::new(6),
                llc_hit: Cycles::new(36),
                local_fill: Cycles::new(150),
            },
            ..Self::emulation()
        }
    }

    /// Returns this profile with a different LLC capacity (associativity is
    /// kept; capacity must stay divisible into power-of-two sets). Used by
    /// the Table II / §V analysis of KG-N's sensitivity to LLC size.
    pub fn with_llc(mut self, llc_size: ByteSize) -> Self {
        self.llc_size = llc_size;
        self
    }

    /// Returns this profile with a different context count.
    pub fn with_contexts(mut self, contexts: usize) -> Self {
        self.contexts = contexts;
        self
    }

    /// The cache-hierarchy geometry of this profile.
    pub fn hierarchy_config(&self) -> HierarchyConfig {
        HierarchyConfig {
            contexts: self.contexts,
            l2_size: self.l2_size,
            l2_assoc: self.l2_assoc,
            llc_size: self.llc_size,
            llc_assoc: self.llc_assoc,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_hardware() {
        let emu = MachineProfile::emulation();
        assert_eq!(emu.contexts, 16);
        assert_eq!(emu.llc_size, ByteSize::from_mib(20));
        let sim = MachineProfile::simulation();
        assert_eq!(sim.contexts, 8);
        assert_eq!(sim.llc_size, emu.llc_size);
    }

    #[test]
    fn with_llc_overrides_only_llc() {
        let p = MachineProfile::emulation().with_llc(ByteSize::from_mib(4));
        assert_eq!(p.llc_size, ByteSize::from_mib(4));
        assert_eq!(p.contexts, 16);
    }

    #[test]
    fn hierarchy_config_is_consistent() {
        let p = MachineProfile::simulation();
        let h = p.hierarchy_config();
        assert_eq!(h.contexts, 8);
        assert_eq!(h.llc_assoc, 20);
    }
}
