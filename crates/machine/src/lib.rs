//! The emulated machine: hardware contexts on the local socket, per-process
//! address spaces, the cache hierarchy, and the two-socket memory system.
//!
//! This crate assembles the substrates ([`hemu_cache`], [`hemu_numa`]) into
//! one object, [`Machine`], with the paper's measurement semantics:
//!
//! * every store becomes a *memory* write only when its dirty line reaches a
//!   memory controller (write-back, LLC-filtered);
//! * each controller counts its own traffic, so "PCM writes" is simply the
//!   write counter of socket 1;
//! * virtual time advances per access according to which level was hit,
//!   with remote (PCM) fills paying the QPI penalty.
//!
//! # Examples
//!
//! ```
//! use hemu_machine::{CtxId, Machine, MachineProfile};
//! use hemu_types::{Addr, ByteSize, MemoryAccess, SocketId};
//!
//! let mut m = Machine::new(MachineProfile::emulation());
//! let p = m.add_process(SocketId::DRAM);
//! m.mbind(p, Addr::new(0x1000_0000), ByteSize::from_mib(4), SocketId::PCM);
//! // Write 1 MiB into the PCM-bound region, then flush the caches.
//! m.access(CtxId(0), p, MemoryAccess::write(Addr::new(0x1000_0000), 1 << 20)).unwrap();
//! m.flush_caches().unwrap();
//! assert!(m.socket_writes(SocketId::PCM).bytes() >= 1 << 20);
//! ```

#![warn(missing_docs)]

mod machine;
mod profile;

pub use machine::{CtxId, Machine, MachineStats, ProcId};
pub use profile::{LatencyModel, MachineProfile};
