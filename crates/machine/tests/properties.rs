//! Property-based tests for the machine: end-to-end write conservation,
//! clock monotonicity, and mbind routing through the full stack.

use hemu_machine::{CtxId, Machine, MachineProfile, ProcId};
use hemu_types::{Addr, ByteSize, Cycles, MemoryAccess, SocketId, PAGE_SIZE};
use proptest::prelude::*;

proptest! {
    /// Every byte stored by any context reaches some memory controller
    /// after a flush — the full-stack conservation law behind the
    /// platform's measurements.
    #[test]
    fn stores_are_conserved_across_the_stack(
        ops in prop::collection::vec(
            (0usize..4, 0u64..2048, 1u32..512, prop::bool::ANY), 1..150)
    ) {
        let mut m = Machine::new(MachineProfile::emulation());
        let p = m.add_process(SocketId::DRAM);
        m.mbind(p, Addr::new(0), ByteSize::from_mib(1), SocketId::PCM);
        let mut lines_written = std::collections::HashSet::new();
        for (ctx, line, size, is_write) in ops {
            let addr = Addr::new(line * 64);
            let access = if is_write {
                MemoryAccess::write(addr, size)
            } else {
                MemoryAccess::read(addr, size)
            };
            if is_write {
                for l in access.lines() {
                    lines_written.insert(l.raw());
                }
            }
            m.access(CtxId(ctx), p, access).unwrap();
        }
        m.flush_caches().unwrap();
        let total = m.socket_writes(SocketId::PCM) + m.socket_writes(SocketId::DRAM);
        // Each distinct written line reaches memory at least once; it may
        // be written back several times if it bounced.
        prop_assert!(
            total.bytes() >= lines_written.len() as u64 * 64,
            "wrote {} distinct lines but controllers saw only {}",
            lines_written.len(),
            total
        );
    }

    /// Clocks never go backwards, and elapsed time is the max over
    /// contexts.
    #[test]
    fn clocks_are_monotonic(
        ops in prop::collection::vec((0usize..4, 0u64..10_000), 1..100)
    ) {
        let mut m = Machine::new(MachineProfile::emulation());
        let p = m.add_process(SocketId::DRAM);
        let mut last = vec![Cycles::ZERO; 4];
        for (ctx, work) in ops {
            if work % 2 == 0 {
                m.compute(CtxId(ctx), Cycles::new(work));
            } else {
                m.access(CtxId(ctx), p, MemoryAccess::read(Addr::new(work * 64), 64)).unwrap();
            }
            let now = m.clock(CtxId(ctx)).now();
            prop_assert!(now >= last[ctx]);
            last[ctx] = now;
        }
        let max = last.iter().max().copied().unwrap();
        prop_assert_eq!(m.elapsed(), max);
    }

    /// Writes land on the socket that mbind named, for arbitrary page-
    /// granular bindings.
    #[test]
    fn mbind_routes_every_write(
        bindings in prop::collection::vec((0u64..32, prop::bool::ANY), 1..16)
    ) {
        let mut m = Machine::new(MachineProfile::emulation());
        let p = m.add_process(SocketId::DRAM);
        // Apply bindings in order (later ones override earlier ones).
        let mut expect = [SocketId::DRAM; 32];
        for &(page, to_pcm) in &bindings {
            let socket = if to_pcm { SocketId::PCM } else { SocketId::DRAM };
            m.mbind(p, Addr::new(page * PAGE_SIZE as u64), ByteSize::new(PAGE_SIZE as u64), socket);
            expect[page as usize] = socket;
        }
        // Touch one line in each page, flush, and check totals.
        let pcm_pages = expect.iter().filter(|&&s| s == SocketId::PCM).count() as u64;
        for page in 0..32u64 {
            m.access(CtxId(0), p, MemoryAccess::write(Addr::new(page * PAGE_SIZE as u64), 64))
                .unwrap();
        }
        m.flush_caches().unwrap();
        prop_assert_eq!(m.socket_writes(SocketId::PCM).bytes(), pcm_pages * 64);
        prop_assert_eq!(m.socket_writes(SocketId::DRAM).bytes(), (32 - pcm_pages) * 64);
        let _ = ProcId(0);
    }
}
