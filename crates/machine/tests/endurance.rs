//! End-to-end endurance tests through the machine: wear-driven line
//! failure retires the frame and transparently remaps the page, the
//! translation survives, and the outcome is visible through the published
//! wear gauges.

use hemu_fault::EnduranceConfig;
use hemu_machine::{CtxId, Machine, MachineProfile};
use hemu_types::{Addr, MemoryAccess, SocketId, CACHE_LINE, PAGE_SIZE};

fn tiny_budget_machine() -> Machine {
    let mut m = Machine::new(MachineProfile::emulation());
    m.enable_endurance(EnduranceConfig {
        budget_writes: 16,
        variability: 0.25,
        seed: 0xAB,
    });
    m
}

/// Repeatedly writing one PCM page (flushing between rounds so the dirty
/// lines actually reach the controller) wears its lines out; the machine
/// must retire the frame and remap the page without the process noticing:
/// the address still translates, onto a healthy PCM frame.
#[test]
fn worn_out_page_is_remapped_transparently() {
    let mut m = tiny_budget_machine();
    let p = m.add_process(SocketId::PCM);
    let lines = (PAGE_SIZE / CACHE_LINE) as u64;
    for _round in 0..64 {
        for line in 0..lines {
            m.access(
                CtxId(0),
                p,
                MemoryAccess::write(Addr::new(line * CACHE_LINE as u64), CACHE_LINE as u32),
            )
            .unwrap();
        }
        m.flush_caches().unwrap();
        if m.pages_remapped() > 0 {
            break;
        }
    }
    assert!(
        m.pages_remapped() > 0,
        "a 16-write budget must retire the hammered page"
    );
    assert!(m.memory().failed_lines() > 0);
    assert!(m.memory().retired_pages(SocketId::PCM) > 0);

    let pa = m
        .address_space(p)
        .translate_existing(Addr::new(0))
        .expect("the page must stay mapped across retirement");
    assert_eq!(
        m.memory().socket_of_frame(pa.frame()),
        SocketId::PCM,
        "the replacement frame must come from the same socket"
    );
    assert!(
        !m.memory().socket(SocketId::PCM).owns_frame(pa.frame())
            || m.memory().socket(SocketId::PCM).retired_frames() > 0,
        "sanity: retirement bookkeeping is visible"
    );
}

/// The wear gauges are published iff the endurance model is enabled, and
/// reflect the retirement bookkeeping.
#[test]
fn wear_gauges_reflect_retirements() {
    let mut m = tiny_budget_machine();
    let p = m.add_process(SocketId::PCM);
    for _round in 0..64 {
        m.access(CtxId(0), p, MemoryAccess::write(Addr::new(0), 64))
            .unwrap();
        m.flush_caches().unwrap();
    }
    m.publish_metrics();
    let metrics = &m.obs().metrics;
    assert!(metrics.gauge_value("wear.failed_lines") >= 1.0);
    assert_eq!(
        metrics.gauge_value("wear.retired_pages"),
        m.memory().retired_pages(SocketId::PCM) as f64
    );
    assert_eq!(
        metrics.gauge_value("wear.remapped_pages"),
        m.pages_remapped() as f64
    );
    assert!(metrics.gauge_value("wear.effective_capacity_bytes") > 0.0);

    // Without endurance the gauges are never registered.
    let mut plain = Machine::new(MachineProfile::emulation());
    let p = plain.add_process(SocketId::PCM);
    plain
        .access(CtxId(0), p, MemoryAccess::write(Addr::new(0), 64))
        .unwrap();
    plain.flush_caches().unwrap();
    plain.publish_metrics();
    assert_eq!(plain.obs().metrics.gauge_value("wear.failed_lines"), 0.0);
}
