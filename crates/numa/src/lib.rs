//! Simulated two-socket NUMA memory subsystem.
//!
//! This crate is the hardware substrate under the emulation platform: a
//! machine with two sockets, each owning a slice of physical memory behind a
//! memory controller with read/write counters (the simulated equivalent of
//! Intel's `pcm-memory` counters the paper samples), plus per-process page
//! tables with an `mbind`-style binding policy.
//!
//! The paper's platform uses the local socket's DRAM to emulate DRAM and the
//! remote socket's DRAM to emulate PCM; the observable of interest is the
//! number of writes arriving at each socket's memory controller. Here the
//! "sockets" are simulated, so the counters are exact rather than sampled.
//!
//! # Examples
//!
//! ```
//! use hemu_numa::{AddressSpace, NumaMemory, NumaConfig};
//! use hemu_types::{AccessKind, Addr, ByteSize, SocketId};
//!
//! let mut mem = NumaMemory::new(NumaConfig::default());
//! let mut space = AddressSpace::new();
//! // Bind a 4 MiB chunk to the remote (PCM) socket, like the heap manager
//! // does after mmap().
//! space.mbind(Addr::new(0x1000_0000), ByteSize::from_mib(4), SocketId::PCM);
//! let pa = space.translate(Addr::new(0x1000_0040), &mut mem).unwrap();
//! mem.record_line_access(pa.line(), AccessKind::Write);
//! assert_eq!(mem.counters(SocketId::PCM).write_lines(), 1);
//! ```

#![warn(missing_docs)]

mod counters;
mod memory;
mod pagetable;
mod qpi;
mod tenancy;
mod wear;

pub use counters::{MemoryCounters, PageHeat, PageHeatTracker};
pub use memory::{NumaConfig, NumaMemory, SocketMemory};
pub use pagetable::AddressSpace;
pub use qpi::QpiLink;
pub use tenancy::TenancyTracker;
pub use wear::WearTracker;
