//! The socket interconnect (QPI) timing model.

use hemu_obs::json::{JsonObject, ToJson};
use hemu_types::{Cycles, CACHE_LINE};

/// Timing model for the point-to-point link between the two sockets.
///
/// On the paper's platform the sockets are connected by QPI links supporting
/// up to 8 GB/s; every access from a socket-0 core to socket-1 memory (i.e.
/// every emulated PCM access) crosses this link and pays its latency. The
/// emulator adds this cost to the virtual clock of the accessing context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QpiLink {
    /// Extra one-way latency in core cycles for a remote access.
    pub latency: Cycles,
    /// Cycles per cache line of transfer occupancy.
    pub occupancy_per_line: Cycles,
}

impl QpiLink {
    /// A QPI model matched to the paper's platform: roughly 60 ns extra
    /// remote latency at 1.8 GHz ≈ 108 cycles, and 8 GB/s of bandwidth
    /// (64 B / 8 GB/s = 8 ns ≈ 14 cycles occupancy per line).
    pub fn e5_2650l() -> Self {
        QpiLink {
            latency: Cycles::new(108),
            occupancy_per_line: Cycles::new(14),
        }
    }

    /// Cost of transferring `lines` cache lines across the link.
    pub fn transfer_cost(&self, lines: u64) -> Cycles {
        Cycles::new(self.latency.raw() + self.occupancy_per_line.raw() * lines)
    }

    /// Effective bandwidth in bytes per second at the given core frequency.
    pub fn bandwidth_bytes_per_sec(&self, freq_hz: u64) -> f64 {
        CACHE_LINE as f64 / (self.occupancy_per_line.raw() as f64 / freq_hz as f64)
    }
}

impl ToJson for QpiLink {
    fn write_json(&self, out: &mut String) {
        let mut obj = JsonObject::new(out);
        obj.field("latency_cycles", &self.latency)
            .field("occupancy_per_line_cycles", &self.occupancy_per_line);
        obj.finish();
    }
}

impl Default for QpiLink {
    fn default() -> Self {
        Self::e5_2650l()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_cost_scales_with_lines() {
        let q = QpiLink::e5_2650l();
        let one = q.transfer_cost(1);
        let ten = q.transfer_cost(10);
        assert_eq!(ten.raw() - one.raw(), 9 * q.occupancy_per_line.raw());
    }

    #[test]
    fn bandwidth_is_about_8_gbps() {
        let q = QpiLink::e5_2650l();
        let bw = q.bandwidth_bytes_per_sec(1_800_000_000);
        assert!((7.0e9..9.5e9).contains(&bw), "bw = {bw}");
    }

    #[test]
    fn zero_lines_costs_latency_only() {
        let q = QpiLink::default();
        assert_eq!(q.transfer_cost(0), q.latency);
    }
}
