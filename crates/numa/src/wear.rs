//! Per-line wear tracking (opt-in extension).
//!
//! The paper's lifetime model (Equation 1) assumes perfect wear-levelling,
//! then discounts to 50 % of the theoretical maximum, citing Start-Gap's
//! measured efficiency. This extension measures, rather than assumes, the
//! unevenness of an application's write stream: with the tracker enabled,
//! the PCM socket counts writes per cache line, and
//! [`WearTracker::levelling_efficiency`] reports how close a *rotation
//! based* wear leveller could get to ideal for that stream.
//!
//! The tracker is opt-in because per-line counting costs a hash-map update
//! per memory write; experiments that do not ask for it pay nothing.

use hemu_types::LineAddr;
use std::collections::HashMap;

/// Per-line write counters for one socket.
#[derive(Debug, Clone, Default)]
pub struct WearTracker {
    writes: HashMap<u64, u64>,
    total: u64,
}

impl WearTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one line write and returns the line's new write count.
    ///
    /// The returned count feeds the endurance model: the caller compares it
    /// against the line's write budget to detect the exact write on which a
    /// cell fails.
    pub fn record(&mut self, line: LineAddr) -> u64 {
        let count = self.writes.entry(line.raw()).or_insert(0);
        *count += 1;
        self.total += 1;
        *count
    }

    /// Total writes recorded.
    pub fn total_writes(&self) -> u64 {
        self.total
    }

    /// Number of distinct lines ever written.
    pub fn lines_touched(&self) -> usize {
        self.writes.len()
    }

    /// The hottest line's write count.
    pub fn max_line_writes(&self) -> u64 {
        self.writes.values().copied().max().unwrap_or(0)
    }

    /// Wear-levelling efficiency for this write stream over a memory of
    /// `capacity_lines` lines, in `(0, 1]`.
    ///
    /// 1.0 means the stream is already perfectly even (every line of the
    /// device absorbs `total / capacity` writes); lower values mean a
    /// leveller must migrate hot lines. The estimate is the ratio of the
    /// ideal per-line wear to the observed maximum after an idealised
    /// rotation (each line's surplus over the mean spreads across the
    /// device): `mean / max(mean, hottest_line_excess_spread)` — a
    /// deliberately simple bound, not a Start-Gap simulation.
    ///
    /// Returns 1.0 if nothing was written.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_lines` is zero.
    pub fn levelling_efficiency(&self, capacity_lines: u64) -> f64 {
        assert!(capacity_lines > 0, "capacity must be positive");
        if self.total == 0 {
            return 1.0;
        }
        let ideal = self.total as f64 / capacity_lines as f64;
        // A rotation leveller bounded by remap granularity leaves each
        // line with at most its fair share plus a residue of the hottest
        // line's rate spread over the rotation period. Use the observed
        // concentration (hottest line's share of all writes) as the
        // residue fraction.
        let hottest = self.max_line_writes() as f64;
        let concentration = hottest / self.total as f64;
        let achieved_max = ideal * (1.0 + concentration * capacity_lines as f64).max(1.0);
        (self.total as f64 / capacity_lines as f64 / achieved_max).clamp(0.0, 1.0)
    }

    /// The raw write histogram, for analysis.
    pub fn histogram(&self) -> impl Iterator<Item = (LineAddr, u64)> + '_ {
        self.writes.iter().map(|(&l, &c)| (LineAddr::new(l), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate_per_line() {
        let mut w = WearTracker::new();
        assert_eq!(w.record(LineAddr::new(1)), 1);
        assert_eq!(w.record(LineAddr::new(1)), 2);
        assert_eq!(w.record(LineAddr::new(2)), 1);
        assert_eq!(w.total_writes(), 3);
        assert_eq!(w.lines_touched(), 2);
        assert_eq!(w.max_line_writes(), 2);
    }

    #[test]
    fn uniform_stream_levels_perfectly_in_the_limit() {
        let mut w = WearTracker::new();
        for i in 0..1000u64 {
            w.record(LineAddr::new(i));
        }
        // 1000 lines, device of 1000 lines, one write each: fully even.
        let eff = w.levelling_efficiency(1000);
        assert!(eff > 0.45, "uniform stream should level well, got {eff}");
    }

    #[test]
    fn single_hot_line_levels_poorly() {
        let mut w = WearTracker::new();
        for _ in 0..10_000 {
            w.record(LineAddr::new(7));
        }
        let eff = w.levelling_efficiency(1_000_000);
        assert!(eff < 0.01, "one hot line must defeat rotation, got {eff}");
    }

    #[test]
    fn empty_tracker_is_perfect() {
        assert_eq!(WearTracker::new().levelling_efficiency(100), 1.0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = WearTracker::new().levelling_efficiency(0);
    }
}
