//! The physical side of the machine: sockets, frames, and controllers.

use crate::counters::{MemoryCounters, PageHeatTracker};
use crate::tenancy::TenancyTracker;
use crate::wear::WearTracker;
use hemu_fault::{EnduranceConfig, EnduranceModel, FaultInjector};
use hemu_types::{AccessKind, ByteSize, HemuError, LineAddr, PageNum, Result, SocketId, PAGE_SIZE};
use std::collections::HashSet;

/// Configuration of the physical memory system.
///
/// Defaults mirror the paper's platform: two sockets, memory evenly split
/// (66 GiB each on the real machine; we default to a smaller but still
/// never-exhausted 8 GiB per socket since the simulator allocates frames
/// lazily).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NumaConfig {
    /// Number of sockets. The emulation platform requires two.
    pub sockets: usize,
    /// Physical capacity per socket.
    pub capacity_per_socket: ByteSize,
}

impl Default for NumaConfig {
    fn default() -> Self {
        NumaConfig {
            sockets: 2,
            capacity_per_socket: ByteSize::from_gib(8),
        }
    }
}

impl hemu_obs::ToJson for NumaConfig {
    fn write_json(&self, out: &mut String) {
        let mut obj = hemu_obs::json::JsonObject::new(out);
        obj.field("sockets", &self.sockets)
            .field("capacity_per_socket_bytes", &self.capacity_per_socket);
        obj.finish();
    }
}

/// One socket's physical memory: a frame allocator plus controller counters.
#[derive(Debug, Clone)]
pub struct SocketMemory {
    id: SocketId,
    first_frame: u64,
    frame_count: u64,
    next_fresh: u64,
    free: Vec<PageNum>,
    /// Frames permanently taken out of service by wear-out. Never empty
    /// unless endurance modeling is enabled, so healthy runs pay nothing.
    retired: HashSet<u64>,
    counters: MemoryCounters,
}

impl SocketMemory {
    fn new(id: SocketId, first_frame: u64, frame_count: u64) -> Self {
        SocketMemory {
            id,
            first_frame,
            frame_count,
            next_fresh: first_frame,
            free: Vec::new(),
            retired: HashSet::new(),
            counters: MemoryCounters::new(),
        }
    }

    /// The socket this memory belongs to.
    pub fn id(&self) -> SocketId {
        self.id
    }

    /// Total number of frames this socket owns.
    pub fn frame_count(&self) -> u64 {
        self.frame_count
    }

    /// Number of frames currently handed out.
    pub fn frames_in_use(&self) -> u64 {
        (self.next_fresh - self.first_frame) - self.free.len() as u64
    }

    /// Traffic counters of this socket's memory controller.
    pub fn counters(&self) -> &MemoryCounters {
        &self.counters
    }

    /// Allocates one physical frame.
    ///
    /// # Errors
    ///
    /// Returns [`HemuError::OutOfPhysicalMemory`] when the socket is full.
    pub fn allocate_frame(&mut self) -> Result<PageNum> {
        // Retired frames can reach the free list (e.g. a page is unmapped
        // after its frame wore out); they must never be handed out again.
        while let Some(f) = self.free.pop() {
            if !self.retired.contains(&f.raw()) {
                return Ok(f);
            }
        }
        while self.next_fresh < self.first_frame + self.frame_count {
            let f = PageNum::new(self.next_fresh);
            self.next_fresh += 1;
            if !self.retired.contains(&f.raw()) {
                return Ok(f);
            }
        }
        Err(HemuError::OutOfPhysicalMemory {
            socket: self.id,
            requested: ByteSize::new(PAGE_SIZE as u64),
        })
    }

    /// Returns a frame to the socket's free pool. Retired frames are
    /// silently dropped instead of recycled.
    ///
    /// # Errors
    ///
    /// Returns [`HemuError::InvalidConfig`] if the frame does not belong to
    /// this socket.
    pub fn free_frame(&mut self, frame: PageNum) -> Result<()> {
        if !self.owns_frame(frame) {
            return Err(HemuError::InvalidConfig(format!(
                "frame {frame} does not belong to socket {}",
                self.id
            )));
        }
        if !self.retired.contains(&frame.raw()) {
            self.free.push(frame);
        }
        Ok(())
    }

    /// Permanently takes a frame out of service (wear-out). Returns `true`
    /// if the frame was not already retired.
    pub fn retire_frame(&mut self, frame: PageNum) -> bool {
        debug_assert!(self.owns_frame(frame));
        self.retired.insert(frame.raw())
    }

    /// Number of frames permanently retired by wear-out.
    pub fn retired_frames(&self) -> u64 {
        self.retired.len() as u64
    }

    /// Frames still in service: total capacity minus retired frames.
    pub fn effective_frames(&self) -> u64 {
        self.frame_count - self.retired.len() as u64
    }

    /// Returns `true` if `frame` lies in this socket's physical range.
    pub fn owns_frame(&self, frame: PageNum) -> bool {
        (self.first_frame..self.first_frame + self.frame_count).contains(&frame.raw())
    }

    /// Caps this socket's allocatable capacity at `frames` (no-op when it
    /// is already smaller). Intended for OS-paging experiments that need a
    /// DRAM small enough to actually fill; call it before any allocation —
    /// frames already handed out are unaffected but never reclaimed.
    fn restrict_frames(&mut self, frames: u64) {
        self.frame_count = self.frame_count.min(frames.max(1));
    }
}

/// Endurance bookkeeping: the budget model plus the queue of frames that
/// failed but have not yet been remapped by the machine layer.
#[derive(Debug, Clone)]
struct EnduranceState {
    model: EnduranceModel,
    failed_lines: u64,
    /// Frames retired by a budget-exceeding write, awaiting transparent
    /// remapping (drained by `take_pending_retirements`).
    pending: Vec<PageNum>,
}

/// The whole physical memory system: all sockets plus the routing of
/// physical line addresses to the owning controller.
///
/// Physical address space is statically partitioned: socket `i` owns frames
/// `[i * frames_per_socket, (i + 1) * frames_per_socket)`, so the owning
/// socket of any physical address is a division, exactly like a real
/// system's SAD (source address decoder) with one contiguous range per
/// socket.
#[derive(Debug, Clone)]
pub struct NumaMemory {
    config: NumaConfig,
    sockets: Vec<SocketMemory>,
    frames_per_socket: u64,
    /// `log2(frames_per_socket)` when it is a power of two (the common
    /// case: capacities are powers of two), letting the per-line address
    /// decode shift instead of divide. `None` falls back to division.
    frames_shift: Option<u32>,
    /// Opt-in per-line wear tracking on the PCM socket.
    wear: Option<WearTracker>,
    /// Opt-in per-page read/write sampling (OS hot-page migration input).
    heat: Option<PageHeatTracker>,
    /// Opt-in endurance modeling (implies wear tracking).
    endurance: Option<EnduranceState>,
    /// Opt-in deterministic fault injection.
    injector: Option<FaultInjector>,
    /// Opt-in per-tenant write attribution (consolidated runs).
    tenancy: Option<TenancyTracker>,
}

impl NumaMemory {
    /// Creates the memory system.
    ///
    /// # Panics
    ///
    /// Panics if `config.sockets` is zero.
    pub fn new(config: NumaConfig) -> Self {
        assert!(config.sockets > 0, "need at least one socket");
        let frames_per_socket = config.capacity_per_socket.bytes() / PAGE_SIZE as u64;
        let sockets = (0..config.sockets)
            .map(|i| {
                SocketMemory::new(
                    SocketId::new(i as u8),
                    i as u64 * frames_per_socket,
                    frames_per_socket,
                )
            })
            .collect();
        NumaMemory {
            config,
            sockets,
            frames_per_socket,
            frames_shift: (frames_per_socket.is_power_of_two())
                .then(|| frames_per_socket.trailing_zeros()),
            wear: None,
            heat: None,
            endurance: None,
            injector: None,
            tenancy: None,
        }
    }

    /// Enables per-tenant write attribution for `tenants` tenants. Costs
    /// one hash-map lookup per controller line write; off by default so
    /// single-tenant runs pay nothing.
    pub fn enable_tenancy(&mut self, tenants: usize) {
        if self.tenancy.is_none() {
            self.tenancy = Some(TenancyTracker::new(tenants));
        }
    }

    /// The tenancy tracker, if enabled.
    pub fn tenancy(&self) -> Option<&TenancyTracker> {
        self.tenancy.as_ref()
    }

    /// Records `frame` as owned by `tenant` (called from the demand-fault
    /// path). No-op when tenancy is off.
    pub fn tenancy_assign(&mut self, frame: PageNum, tenant: u16) {
        if let Some(t) = self.tenancy.as_mut() {
            t.assign(frame, tenant);
        }
    }

    /// Follows a physical remap `old → new` in the tenancy tracker, so
    /// migration and wear-remap copy writes are charged to the owning
    /// tenant. Call *before* recording the copy traffic. No-op when
    /// tenancy is off.
    pub fn tenancy_on_remap(&mut self, old: PageNum, new: PageNum) {
        if let Some(t) = self.tenancy.as_mut() {
            t.on_remap(old, new);
        }
    }

    /// Enables per-page read/write sampling on every socket. Costs one
    /// B-tree update per line transfer; off by default so GC-managed runs
    /// pay nothing.
    pub fn enable_page_heat(&mut self) {
        if self.heat.is_none() {
            self.heat = Some(PageHeatTracker::new());
        }
    }

    /// The page-heat tracker, if enabled.
    pub fn page_heat(&self) -> Option<&PageHeatTracker> {
        self.heat.as_ref()
    }

    /// Closes the heat-sampling epoch: per-page epoch deltas restart at
    /// zero, cumulative totals stay. No-op when sampling is off.
    pub fn reset_page_heat_epoch(&mut self) {
        if let Some(h) = self.heat.as_mut() {
            h.epoch_reset();
        }
    }

    /// Follows a physical remap `old → new` in the heat tracker (page
    /// migration and wear-out retirement both route through this). No-op
    /// when sampling is off.
    pub fn heat_on_remap(&mut self, old: PageNum, new: PageNum) {
        if let Some(h) = self.heat.as_mut() {
            h.on_remap(old, new);
        }
    }

    /// Caps one socket's allocatable capacity (see the OS-paging
    /// experiments: the default 8 GiB DRAM never fills, so first-touch
    /// placement would face no pressure). Call before any allocation.
    pub fn restrict_socket(&mut self, socket: SocketId, limit: ByteSize) {
        let frames = limit.bytes() / PAGE_SIZE as u64;
        self.sockets[socket.index()].restrict_frames(frames);
    }

    /// Enables per-line wear tracking on the PCM socket (socket 1). Costs
    /// one hash-map update per PCM line write; off by default.
    pub fn enable_wear_tracking(&mut self) {
        if self.wear.is_none() {
            self.wear = Some(WearTracker::new());
        }
    }

    /// The wear tracker, if enabled.
    pub fn wear(&self) -> Option<&WearTracker> {
        self.wear.as_ref()
    }

    /// Enables endurance modeling on the PCM socket: every PCM line gets a
    /// deterministic write budget, and the write that exceeds it retires
    /// the containing frame. Implies wear tracking.
    pub fn enable_endurance(&mut self, cfg: EnduranceConfig) {
        self.enable_wear_tracking();
        self.endurance = Some(EnduranceState {
            model: EnduranceModel::new(cfg),
            failed_lines: 0,
            pending: Vec::new(),
        });
    }

    /// Returns `true` if endurance modeling is on.
    pub fn endurance_enabled(&self) -> bool {
        self.endurance.is_some()
    }

    /// Lines that exceeded their write budget so far.
    pub fn failed_lines(&self) -> u64 {
        self.endurance.as_ref().map_or(0, |e| e.failed_lines)
    }

    /// Installs a deterministic fault injector. Replaces any previous one.
    pub fn set_fault_injector(&mut self, injector: FaultInjector) {
        self.injector = Some(injector);
    }

    /// The installed fault injector, if any.
    pub fn fault_injector(&self) -> Option<&FaultInjector> {
        self.injector.as_ref()
    }

    /// Injection point for managed-heap allocations (forwarded by the
    /// machine layer so the heap does not depend on `hemu-fault` directly).
    ///
    /// # Errors
    ///
    /// Returns the injector's verdict; always `Ok` without an injector.
    pub fn fault_on_managed_alloc(&mut self) -> Result<()> {
        match self.injector.as_mut() {
            Some(inj) => inj.on_managed_alloc(),
            None => Ok(()),
        }
    }

    /// Reports `lines` remote transfers to the injector and returns the
    /// extra QPI stall cycles to charge (0 without an injector or burst).
    pub fn qpi_stall_cycles(&mut self, lines: u64) -> u64 {
        match self.injector.as_mut() {
            Some(inj) => inj.on_remote_lines(lines),
            None => 0,
        }
    }

    /// Returns `true` if wear-out retired frames that still await
    /// remapping. Cheap: one `Option` + `Vec::is_empty` check.
    pub fn has_pending_retirements(&self) -> bool {
        self.endurance
            .as_ref()
            .is_some_and(|e| !e.pending.is_empty())
    }

    /// Drains the queue of newly retired frames for the machine layer to
    /// remap.
    pub fn take_pending_retirements(&mut self) -> Vec<PageNum> {
        match self.endurance.as_mut() {
            Some(e) => std::mem::take(&mut e.pending),
            None => Vec::new(),
        }
    }

    /// The configuration this memory was built with.
    pub fn config(&self) -> &NumaConfig {
        &self.config
    }

    /// Immutable access to one socket.
    ///
    /// # Panics
    ///
    /// Panics if `socket` is out of range.
    pub fn socket(&self, socket: SocketId) -> &SocketMemory {
        &self.sockets[socket.index()]
    }

    /// Mutable access to one socket.
    ///
    /// # Panics
    ///
    /// Panics if `socket` is out of range.
    pub fn socket_mut(&mut self, socket: SocketId) -> &mut SocketMemory {
        &mut self.sockets[socket.index()]
    }

    /// Shorthand for `self.socket(socket).counters()`.
    pub fn counters(&self, socket: SocketId) -> &MemoryCounters {
        self.sockets[socket.index()].counters()
    }

    /// Pages (frames) retired by wear-out on one socket.
    pub fn retired_pages(&self, socket: SocketId) -> u64 {
        self.sockets[socket.index()].retired_frames()
    }

    /// Capacity still in service on one socket after wear-out retirement.
    pub fn effective_capacity(&self, socket: SocketId) -> ByteSize {
        ByteSize::new(self.sockets[socket.index()].effective_frames() * PAGE_SIZE as u64)
    }

    /// Which socket owns the given physical frame.
    #[inline]
    pub fn socket_of_frame(&self, frame: PageNum) -> SocketId {
        match self.frames_shift {
            Some(s) => SocketId::new((frame.raw() >> s) as u8),
            None => SocketId::new((frame.raw() / self.frames_per_socket) as u8),
        }
    }

    /// Which socket owns the given physical line.
    #[inline]
    pub fn socket_of_line(&self, line: LineAddr) -> SocketId {
        self.socket_of_frame(line.frame())
    }

    /// Allocates a frame on the requested socket.
    ///
    /// # Errors
    ///
    /// Returns [`HemuError::OutOfPhysicalMemory`] when that socket is full,
    /// or a transient [`HemuError::FaultInjected`] when an installed fault
    /// injector decides this allocation fails.
    pub fn allocate_frame(&mut self, socket: SocketId) -> Result<PageNum> {
        if let Some(inj) = self.injector.as_mut() {
            inj.on_frame_alloc()?;
        }
        self.sockets[socket.index()].allocate_frame()
    }

    /// Allocates a frame bypassing fault injection, for internal recovery
    /// paths (page retirement must not be re-faulted while handling a
    /// fault).
    pub fn allocate_frame_uninjected(&mut self, socket: SocketId) -> Result<PageNum> {
        self.sockets[socket.index()].allocate_frame()
    }

    /// Frees a frame back to its owning socket.
    ///
    /// # Errors
    ///
    /// Returns [`HemuError::InvalidConfig`] if the frame lies outside every
    /// socket's range.
    pub fn free_frame(&mut self, frame: PageNum) -> Result<()> {
        let s = self.socket_of_frame(frame);
        if s.index() >= self.sockets.len() {
            return Err(HemuError::InvalidConfig(format!(
                "frame {frame} lies outside physical memory"
            )));
        }
        if let Some(t) = self.tenancy.as_mut() {
            t.clear(frame);
        }
        self.sockets[s.index()].free_frame(frame)
    }

    /// Records one cache-line transfer arriving at the memory controller
    /// that owns `line`. This is the single point where all memory traffic
    /// is counted — and therefore the single point where PCM wear
    /// accumulates.
    pub fn record_line_access(&mut self, line: LineAddr, kind: AccessKind) {
        let s = self.socket_of_line(line);
        self.sockets[s.index()].counters.record(kind);
        if let Some(h) = self.heat.as_mut() {
            h.record(line.frame(), kind);
        }
        if kind.is_write() {
            // Tenancy sees exactly the writes the controller counters see,
            // so per-tenant counts sum to the global counters by
            // construction.
            if let Some(t) = self.tenancy.as_mut() {
                t.record_write(line.frame(), s);
            }
        }
        if kind.is_write() && s == SocketId::PCM {
            if let Some(w) = self.wear.as_mut() {
                let count = w.record(line);
                if let Some(e) = self.endurance.as_mut() {
                    // `record` increments by exactly 1, so the comparison
                    // fires exactly once per line: on the write that spends
                    // the line's last budgeted cycle.
                    if count == e.model.line_budget(line) {
                        e.failed_lines += 1;
                        let frame = line.frame();
                        if self.sockets[s.index()].retire_frame(frame) {
                            e.pending.push(frame);
                        }
                    }
                }
            }
        }
    }

    /// Resets all controllers' counters (start of a measured iteration).
    /// Per-tenant write counts reset with them — frame ownership does not,
    /// since the tenants keep their memory across the reset.
    pub fn reset_counters(&mut self) {
        for s in &mut self.sockets {
            s.counters.reset();
        }
        if let Some(t) = self.tenancy.as_mut() {
            t.reset_counts();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> NumaMemory {
        NumaMemory::new(NumaConfig {
            sockets: 2,
            capacity_per_socket: ByteSize::from_kib(16), // 4 frames each
        })
    }

    #[test]
    fn frames_partition_by_socket() {
        let mut m = small();
        let f0 = m.allocate_frame(SocketId::DRAM).unwrap();
        let f1 = m.allocate_frame(SocketId::PCM).unwrap();
        assert_eq!(m.socket_of_frame(f0), SocketId::DRAM);
        assert_eq!(m.socket_of_frame(f1), SocketId::PCM);
        assert_ne!(f0, f1);
    }

    #[test]
    fn exhaustion_errors_with_socket() {
        let mut m = small();
        for _ in 0..4 {
            m.allocate_frame(SocketId::PCM).unwrap();
        }
        let err = m.allocate_frame(SocketId::PCM).unwrap_err();
        assert!(
            matches!(err, HemuError::OutOfPhysicalMemory { socket, .. } if socket == SocketId::PCM)
        );
        // The other socket is unaffected.
        assert!(m.allocate_frame(SocketId::DRAM).is_ok());
    }

    #[test]
    fn freed_frames_are_recycled() {
        let mut m = small();
        let f = m.allocate_frame(SocketId::DRAM).unwrap();
        m.free_frame(f).unwrap();
        let again = m.allocate_frame(SocketId::DRAM).unwrap();
        assert_eq!(f, again);
    }

    #[test]
    fn line_access_routes_to_owning_controller() {
        let mut m = small();
        let f = m.allocate_frame(SocketId::PCM).unwrap();
        let line = f.phys_base().line();
        m.record_line_access(line, AccessKind::Write);
        assert_eq!(m.counters(SocketId::PCM).write_lines(), 1);
        assert_eq!(m.counters(SocketId::DRAM).write_lines(), 0);
    }

    #[test]
    fn frames_in_use_tracks_alloc_and_free() {
        let mut m = small();
        let f = m.allocate_frame(SocketId::DRAM).unwrap();
        let _g = m.allocate_frame(SocketId::DRAM).unwrap();
        assert_eq!(m.socket(SocketId::DRAM).frames_in_use(), 2);
        m.free_frame(f).unwrap();
        assert_eq!(m.socket(SocketId::DRAM).frames_in_use(), 1);
    }

    #[test]
    fn freeing_foreign_frame_is_an_error() {
        let mut m = small();
        let f = m.allocate_frame(SocketId::PCM).unwrap();
        let err = m.socket_mut(SocketId::DRAM).free_frame(f).unwrap_err();
        assert!(format!("{err}").contains("does not belong"));
    }

    #[test]
    fn retired_frames_are_never_reissued() {
        let mut m = small();
        let f = m.allocate_frame(SocketId::PCM).unwrap();
        assert!(m.socket_mut(SocketId::PCM).retire_frame(f));
        assert!(!m.socket_mut(SocketId::PCM).retire_frame(f), "idempotent");
        m.free_frame(f).unwrap(); // silently dropped, not recycled
        for _ in 0..3 {
            let g = m.allocate_frame(SocketId::PCM).unwrap();
            assert_ne!(g, f, "retired frame must stay out of service");
        }
        assert!(m.allocate_frame(SocketId::PCM).is_err(), "3 of 4 left");
        assert_eq!(m.retired_pages(SocketId::PCM), 1);
        assert_eq!(
            m.effective_capacity(SocketId::PCM),
            ByteSize::new(3 * PAGE_SIZE as u64)
        );
    }

    #[test]
    fn endurance_retires_frame_when_budget_spent() {
        let mut m = small();
        m.enable_endurance(EnduranceConfig {
            budget_writes: 4,
            variability: 0.0,
            seed: 1,
        });
        let f = m.allocate_frame(SocketId::PCM).unwrap();
        let line = f.phys_base().line();
        for _ in 0..3 {
            m.record_line_access(line, AccessKind::Write);
        }
        assert!(!m.has_pending_retirements(), "budget not yet spent");
        m.record_line_access(line, AccessKind::Write);
        assert_eq!(m.failed_lines(), 1);
        assert!(m.has_pending_retirements());
        assert_eq!(m.take_pending_retirements(), vec![f]);
        assert!(!m.has_pending_retirements(), "drained");
        // Further writes to the same dead line do not re-retire anything.
        m.record_line_access(line, AccessKind::Write);
        assert!(!m.has_pending_retirements());
        assert_eq!(m.failed_lines(), 1);
    }

    #[test]
    fn injector_can_fail_frame_allocation() {
        use hemu_fault::{FaultInjector, FaultPlan};
        let mut m = small();
        let plan = FaultPlan::parse("alloc_p=1.0").unwrap();
        m.set_fault_injector(FaultInjector::new(plan));
        let err = m.allocate_frame(SocketId::DRAM).unwrap_err();
        assert!(matches!(
            err,
            HemuError::FaultInjected {
                transient: true,
                ..
            }
        ));
        // The recovery path bypasses injection.
        assert!(m.allocate_frame_uninjected(SocketId::DRAM).is_ok());
    }

    #[test]
    fn page_heat_attributes_lines_to_frames() {
        let mut m = small();
        m.enable_page_heat();
        let f = m.allocate_frame(SocketId::PCM).unwrap();
        let line = f.phys_base().line();
        m.record_line_access(line, AccessKind::Write);
        m.record_line_access(line, AccessKind::Write);
        m.record_line_access(line, AccessKind::Read);
        let h = m.page_heat().unwrap().heat(f);
        assert_eq!((h.writes, h.reads), (2, 1));
        m.reset_page_heat_epoch();
        let h = m.page_heat().unwrap().heat(f);
        assert_eq!((h.writes, h.epoch_writes), (2, 0));
    }

    #[test]
    fn restrict_socket_caps_allocatable_frames() {
        let mut m = small(); // 4 frames per socket
        m.restrict_socket(SocketId::DRAM, ByteSize::from_kib(8)); // 2 frames
        assert!(m.allocate_frame(SocketId::DRAM).is_ok());
        assert!(m.allocate_frame(SocketId::DRAM).is_ok());
        assert!(matches!(
            m.allocate_frame(SocketId::DRAM),
            Err(HemuError::OutOfPhysicalMemory { socket, .. }) if socket == SocketId::DRAM
        ));
        // PCM keeps its full capacity, and address decoding is unchanged.
        for _ in 0..4 {
            let f = m.allocate_frame(SocketId::PCM).unwrap();
            assert_eq!(m.socket_of_frame(f), SocketId::PCM);
        }
    }

    #[test]
    fn tenancy_charges_controller_writes_to_the_owning_tenant() {
        let mut m = small();
        m.enable_tenancy(2);
        let f0 = m.allocate_frame(SocketId::PCM).unwrap();
        let f1 = m.allocate_frame(SocketId::DRAM).unwrap();
        m.tenancy_assign(f0, 0);
        m.tenancy_assign(f1, 1);
        m.record_line_access(f0.phys_base().line(), AccessKind::Write);
        m.record_line_access(f1.phys_base().line(), AccessKind::Write);
        m.record_line_access(f0.phys_base().line(), AccessKind::Read);
        let t = m.tenancy().unwrap();
        assert_eq!((t.pcm_lines(0), t.dram_lines(1)), (1, 1));
        assert_eq!(t.unattributed_pcm() + t.unattributed_dram(), 0);
        // Per-tenant counts sum to the controller counters.
        assert_eq!(
            t.pcm_lines(0) + t.pcm_lines(1) + t.unattributed_pcm(),
            m.counters(SocketId::PCM).write_lines()
        );
        // Freeing a frame drops its ownership; later writes (stale
        // write-backs) land in the unattributed bucket.
        m.free_frame(f0).unwrap();
        m.record_line_access(f0.phys_base().line(), AccessKind::Write);
        assert_eq!(m.tenancy().unwrap().unattributed_pcm(), 1);
        // The measured-iteration reset zeroes counts, keeps ownership.
        m.reset_counters();
        let t = m.tenancy().unwrap();
        assert_eq!((t.dram_lines(1), t.unattributed_pcm()), (0, 0));
        m.record_line_access(f1.phys_base().line(), AccessKind::Write);
        assert_eq!(m.tenancy().unwrap().dram_lines(1), 1);
    }

    #[test]
    fn reset_clears_all_sockets() {
        let mut m = small();
        let f = m.allocate_frame(SocketId::DRAM).unwrap();
        m.record_line_access(f.phys_base().line(), AccessKind::Write);
        m.reset_counters();
        assert_eq!(m.counters(SocketId::DRAM).write_lines(), 0);
    }
}
