//! The physical side of the machine: sockets, frames, and controllers.

use crate::counters::MemoryCounters;
use crate::wear::WearTracker;
use hemu_types::{AccessKind, ByteSize, HemuError, LineAddr, PageNum, Result, SocketId, PAGE_SIZE};

/// Configuration of the physical memory system.
///
/// Defaults mirror the paper's platform: two sockets, memory evenly split
/// (66 GiB each on the real machine; we default to a smaller but still
/// never-exhausted 8 GiB per socket since the simulator allocates frames
/// lazily).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NumaConfig {
    /// Number of sockets. The emulation platform requires two.
    pub sockets: usize,
    /// Physical capacity per socket.
    pub capacity_per_socket: ByteSize,
}

impl Default for NumaConfig {
    fn default() -> Self {
        NumaConfig {
            sockets: 2,
            capacity_per_socket: ByteSize::from_gib(8),
        }
    }
}

impl hemu_obs::ToJson for NumaConfig {
    fn write_json(&self, out: &mut String) {
        let mut obj = hemu_obs::json::JsonObject::new(out);
        obj.field("sockets", &self.sockets)
            .field("capacity_per_socket_bytes", &self.capacity_per_socket);
        obj.finish();
    }
}

/// One socket's physical memory: a frame allocator plus controller counters.
#[derive(Debug, Clone)]
pub struct SocketMemory {
    id: SocketId,
    first_frame: u64,
    frame_count: u64,
    next_fresh: u64,
    free: Vec<PageNum>,
    counters: MemoryCounters,
}

impl SocketMemory {
    fn new(id: SocketId, first_frame: u64, frame_count: u64) -> Self {
        SocketMemory {
            id,
            first_frame,
            frame_count,
            next_fresh: first_frame,
            free: Vec::new(),
            counters: MemoryCounters::new(),
        }
    }

    /// The socket this memory belongs to.
    pub fn id(&self) -> SocketId {
        self.id
    }

    /// Total number of frames this socket owns.
    pub fn frame_count(&self) -> u64 {
        self.frame_count
    }

    /// Number of frames currently handed out.
    pub fn frames_in_use(&self) -> u64 {
        (self.next_fresh - self.first_frame) - self.free.len() as u64
    }

    /// Traffic counters of this socket's memory controller.
    pub fn counters(&self) -> &MemoryCounters {
        &self.counters
    }

    /// Allocates one physical frame.
    ///
    /// # Errors
    ///
    /// Returns [`HemuError::OutOfPhysicalMemory`] when the socket is full.
    pub fn allocate_frame(&mut self) -> Result<PageNum> {
        if let Some(f) = self.free.pop() {
            return Ok(f);
        }
        if self.next_fresh < self.first_frame + self.frame_count {
            let f = PageNum::new(self.next_fresh);
            self.next_fresh += 1;
            Ok(f)
        } else {
            Err(HemuError::OutOfPhysicalMemory {
                socket: self.id,
                requested: ByteSize::new(PAGE_SIZE as u64),
            })
        }
    }

    /// Returns a frame to the socket's free pool.
    ///
    /// # Panics
    ///
    /// Panics if the frame does not belong to this socket.
    pub fn free_frame(&mut self, frame: PageNum) {
        assert!(
            self.owns_frame(frame),
            "frame {frame} does not belong to socket {}",
            self.id
        );
        self.free.push(frame);
    }

    /// Returns `true` if `frame` lies in this socket's physical range.
    pub fn owns_frame(&self, frame: PageNum) -> bool {
        (self.first_frame..self.first_frame + self.frame_count).contains(&frame.raw())
    }
}

/// The whole physical memory system: all sockets plus the routing of
/// physical line addresses to the owning controller.
///
/// Physical address space is statically partitioned: socket `i` owns frames
/// `[i * frames_per_socket, (i + 1) * frames_per_socket)`, so the owning
/// socket of any physical address is a division, exactly like a real
/// system's SAD (source address decoder) with one contiguous range per
/// socket.
#[derive(Debug, Clone)]
pub struct NumaMemory {
    config: NumaConfig,
    sockets: Vec<SocketMemory>,
    frames_per_socket: u64,
    /// Opt-in per-line wear tracking on the PCM socket.
    wear: Option<WearTracker>,
}

impl NumaMemory {
    /// Creates the memory system.
    ///
    /// # Panics
    ///
    /// Panics if `config.sockets` is zero.
    pub fn new(config: NumaConfig) -> Self {
        assert!(config.sockets > 0, "need at least one socket");
        let frames_per_socket = config.capacity_per_socket.bytes() / PAGE_SIZE as u64;
        let sockets = (0..config.sockets)
            .map(|i| {
                SocketMemory::new(
                    SocketId::new(i as u8),
                    i as u64 * frames_per_socket,
                    frames_per_socket,
                )
            })
            .collect();
        NumaMemory {
            config,
            sockets,
            frames_per_socket,
            wear: None,
        }
    }

    /// Enables per-line wear tracking on the PCM socket (socket 1). Costs
    /// one hash-map update per PCM line write; off by default.
    pub fn enable_wear_tracking(&mut self) {
        self.wear = Some(WearTracker::new());
    }

    /// The wear tracker, if enabled.
    pub fn wear(&self) -> Option<&WearTracker> {
        self.wear.as_ref()
    }

    /// The configuration this memory was built with.
    pub fn config(&self) -> &NumaConfig {
        &self.config
    }

    /// Immutable access to one socket.
    ///
    /// # Panics
    ///
    /// Panics if `socket` is out of range.
    pub fn socket(&self, socket: SocketId) -> &SocketMemory {
        &self.sockets[socket.index()]
    }

    /// Mutable access to one socket.
    ///
    /// # Panics
    ///
    /// Panics if `socket` is out of range.
    pub fn socket_mut(&mut self, socket: SocketId) -> &mut SocketMemory {
        &mut self.sockets[socket.index()]
    }

    /// Shorthand for `self.socket(socket).counters()`.
    pub fn counters(&self, socket: SocketId) -> &MemoryCounters {
        self.sockets[socket.index()].counters()
    }

    /// Which socket owns the given physical frame.
    pub fn socket_of_frame(&self, frame: PageNum) -> SocketId {
        SocketId::new((frame.raw() / self.frames_per_socket) as u8)
    }

    /// Which socket owns the given physical line.
    pub fn socket_of_line(&self, line: LineAddr) -> SocketId {
        self.socket_of_frame(line.frame())
    }

    /// Allocates a frame on the requested socket.
    ///
    /// # Errors
    ///
    /// Returns [`HemuError::OutOfPhysicalMemory`] when that socket is full.
    pub fn allocate_frame(&mut self, socket: SocketId) -> Result<PageNum> {
        self.sockets[socket.index()].allocate_frame()
    }

    /// Frees a frame back to its owning socket.
    pub fn free_frame(&mut self, frame: PageNum) {
        let s = self.socket_of_frame(frame);
        self.sockets[s.index()].free_frame(frame);
    }

    /// Records one cache-line transfer arriving at the memory controller
    /// that owns `line`. This is the single point where all memory traffic
    /// is counted.
    pub fn record_line_access(&mut self, line: LineAddr, kind: AccessKind) {
        let s = self.socket_of_line(line);
        self.sockets[s.index()].counters.record(kind);
        if kind.is_write() && s == SocketId::PCM {
            if let Some(w) = self.wear.as_mut() {
                w.record(line);
            }
        }
    }

    /// Resets all controllers' counters (start of a measured iteration).
    pub fn reset_counters(&mut self) {
        for s in &mut self.sockets {
            s.counters.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> NumaMemory {
        NumaMemory::new(NumaConfig {
            sockets: 2,
            capacity_per_socket: ByteSize::from_kib(16), // 4 frames each
        })
    }

    #[test]
    fn frames_partition_by_socket() {
        let mut m = small();
        let f0 = m.allocate_frame(SocketId::DRAM).unwrap();
        let f1 = m.allocate_frame(SocketId::PCM).unwrap();
        assert_eq!(m.socket_of_frame(f0), SocketId::DRAM);
        assert_eq!(m.socket_of_frame(f1), SocketId::PCM);
        assert_ne!(f0, f1);
    }

    #[test]
    fn exhaustion_errors_with_socket() {
        let mut m = small();
        for _ in 0..4 {
            m.allocate_frame(SocketId::PCM).unwrap();
        }
        let err = m.allocate_frame(SocketId::PCM).unwrap_err();
        assert!(
            matches!(err, HemuError::OutOfPhysicalMemory { socket, .. } if socket == SocketId::PCM)
        );
        // The other socket is unaffected.
        assert!(m.allocate_frame(SocketId::DRAM).is_ok());
    }

    #[test]
    fn freed_frames_are_recycled() {
        let mut m = small();
        let f = m.allocate_frame(SocketId::DRAM).unwrap();
        m.free_frame(f);
        let again = m.allocate_frame(SocketId::DRAM).unwrap();
        assert_eq!(f, again);
    }

    #[test]
    fn line_access_routes_to_owning_controller() {
        let mut m = small();
        let f = m.allocate_frame(SocketId::PCM).unwrap();
        let line = f.phys_base().line();
        m.record_line_access(line, AccessKind::Write);
        assert_eq!(m.counters(SocketId::PCM).write_lines(), 1);
        assert_eq!(m.counters(SocketId::DRAM).write_lines(), 0);
    }

    #[test]
    fn frames_in_use_tracks_alloc_and_free() {
        let mut m = small();
        let f = m.allocate_frame(SocketId::DRAM).unwrap();
        let _g = m.allocate_frame(SocketId::DRAM).unwrap();
        assert_eq!(m.socket(SocketId::DRAM).frames_in_use(), 2);
        m.free_frame(f);
        assert_eq!(m.socket(SocketId::DRAM).frames_in_use(), 1);
    }

    #[test]
    #[should_panic(expected = "does not belong")]
    fn freeing_foreign_frame_panics() {
        let mut m = small();
        let f = m.allocate_frame(SocketId::PCM).unwrap();
        m.socket_mut(SocketId::DRAM).free_frame(f);
    }

    #[test]
    fn reset_clears_all_sockets() {
        let mut m = small();
        let f = m.allocate_frame(SocketId::DRAM).unwrap();
        m.record_line_access(f.phys_base().line(), AccessKind::Write);
        m.reset_counters();
        assert_eq!(m.counters(SocketId::DRAM).write_lines(), 0);
    }
}
