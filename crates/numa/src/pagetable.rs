//! Per-process virtual address spaces: page tables plus `mbind` policy.

use crate::memory::NumaMemory;
use hemu_types::{Addr, ByteSize, HemuError, PageNum, PhysAddr, Result, SocketId, PAGE_SIZE};
use std::collections::{BTreeMap, HashMap};

/// A binding-policy range: pages `[start, end)` must be faulted in on
/// `socket`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PolicyRange {
    end: u64,
    socket: SocketId,
}

/// One emulated process's virtual address space.
///
/// Combines a page table (virtual page → physical frame) with an
/// `mbind`-style policy map (virtual range → socket). Pages are faulted in
/// lazily on first touch, on the socket the policy names — mirroring how the
/// paper's runtime calls `mbind()` after each `mmap()` and lets first touch
/// allocate physical memory on the bound socket.
///
/// # Examples
///
/// ```
/// use hemu_numa::{AddressSpace, NumaConfig, NumaMemory};
/// use hemu_types::{Addr, ByteSize, SocketId};
///
/// let mut mem = NumaMemory::new(NumaConfig::default());
/// let mut asp = AddressSpace::new();
/// asp.mbind(Addr::new(0x4000_0000), ByteSize::from_mib(4), SocketId::PCM);
/// let pa = asp.translate(Addr::new(0x4000_0123), &mut mem)?;
/// assert_eq!(mem.socket_of_frame(pa.frame()), SocketId::PCM);
/// # Ok::<(), hemu_types::HemuError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AddressSpace {
    table: HashMap<u64, PageNum>,
    policy: BTreeMap<u64, PolicyRange>,
    default_socket: SocketId,
    /// When set, the OS owns placement: faults allocate on the primary
    /// socket and spill to the secondary once it is exhausted, ignoring
    /// the `mbind` policy map entirely (the runtime's hints are advisory
    /// under an OS-managed memory configuration).
    os_placement: Option<(SocketId, Option<SocketId>)>,
    /// Direct-mapped translation cache in front of `table`: slot
    /// `vpage % TLB_SLOTS` holds `(vpage + 1, frame)`, with key 0 meaning
    /// empty. A hit can only exist for a mapped page, so it never changes
    /// fault behavior; the whole array is dropped whenever a mapping is
    /// rewritten or removed (`remap_frame` / `unmap`).
    tlb: Vec<(u64, PageNum)>,
    faults: u64,
    unmapped_pages: u64,
    remapped_pages: u64,
    /// The tenant this process belongs to in a consolidated run. Frames
    /// demand-faulted by this space are recorded as owned by that tenant
    /// (when the memory system has tenancy tracking enabled).
    tenant: Option<u16>,
}

/// Slots in the per-space translation cache. 8192 spans 32 MiB of virtual
/// address space when densely used — larger than any single space's hot
/// region in the sweeps — and costs 128 KiB per process.
const TLB_SLOTS: usize = 8192;

impl Default for AddressSpace {
    fn default() -> Self {
        AddressSpace {
            table: HashMap::new(),
            policy: BTreeMap::new(),
            default_socket: SocketId::default(),
            os_placement: None,
            tlb: vec![(0, PageNum::new(0)); TLB_SLOTS],
            faults: 0,
            unmapped_pages: 0,
            remapped_pages: 0,
            tenant: None,
        }
    }
}

impl AddressSpace {
    /// Creates an empty address space whose unbound pages fault onto the
    /// local (DRAM) socket, like Linux's default local-allocation policy for
    /// threads pinned to socket 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an address space with a different default socket, used when
    /// emulating a PCM-Only system with threads bound to socket 1.
    pub fn with_default_socket(socket: SocketId) -> Self {
        AddressSpace {
            default_socket: socket,
            ..Self::default()
        }
    }

    /// Hands page placement to the OS: subsequent faults allocate on
    /// `primary` first and fall back to `spill` once it is full, ignoring
    /// any `mbind` bindings. Already-mapped pages keep their frames.
    pub fn set_os_placement(&mut self, primary: SocketId, spill: Option<SocketId>) {
        self.os_placement = Some((primary, spill));
    }

    /// The OS placement override, if one is installed.
    pub fn os_placement(&self) -> Option<(SocketId, Option<SocketId>)> {
        self.os_placement
    }

    /// Marks this process as belonging to `tenant`: subsequent demand
    /// faults record the allocated frame as tenant-owned. Set before the
    /// first touch, or earlier frames stay unattributed.
    pub fn set_tenant(&mut self, tenant: u16) {
        self.tenant = Some(tenant);
    }

    /// The tenant this process belongs to, if any.
    pub fn tenant(&self) -> Option<u16> {
        self.tenant
    }

    /// Sets the binding policy for the virtual range `[start, start + len)`.
    ///
    /// Only affects pages faulted in afterwards; already-mapped pages keep
    /// their current frames (as with `mbind` without `MPOL_MF_MOVE`).
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn mbind(&mut self, start: Addr, len: ByteSize, socket: SocketId) {
        assert!(len.bytes() > 0, "mbind of empty range");
        let p0 = start.page().raw();
        let p1 = start.offset(len.bytes() - 1).page().raw() + 1;

        // Collect every existing range overlapping [p0, p1).
        let overlapping: Vec<(u64, PolicyRange)> = self
            .policy
            .range(..p1)
            .rev()
            .take_while(|(_, r)| r.end > p0)
            .filter(|(s, _)| **s < p1)
            .map(|(s, r)| (*s, *r))
            .collect();
        for (s, r) in overlapping {
            self.policy.remove(&s);
            if s < p0 {
                self.policy.insert(
                    s,
                    PolicyRange {
                        end: p0,
                        socket: r.socket,
                    },
                );
            }
            if r.end > p1 {
                self.policy.insert(
                    p1,
                    PolicyRange {
                        end: r.end,
                        socket: r.socket,
                    },
                );
            }
        }
        self.policy.insert(p0, PolicyRange { end: p1, socket });
    }

    /// The socket a fault at `addr` would allocate on.
    pub fn socket_of(&self, addr: Addr) -> SocketId {
        let page = addr.page().raw();
        self.policy
            .range(..=page)
            .next_back()
            .filter(|(_, r)| r.end > page)
            .map(|(_, r)| r.socket)
            .unwrap_or(self.default_socket)
    }

    /// Translates a virtual address, faulting the page in if needed.
    ///
    /// # Errors
    ///
    /// Returns [`HemuError::OutOfPhysicalMemory`] if the policy socket has
    /// no free frames.
    pub fn translate(&mut self, addr: Addr, mem: &mut NumaMemory) -> Result<PhysAddr> {
        let frame = self.frame_of(addr, mem)?;
        Ok(frame.phys_base().offset(addr.raw() % PAGE_SIZE as u64))
    }

    /// The physical frame backing `addr`'s page, faulting it in if needed.
    ///
    /// This is the page-granular translation primitive: the machine's
    /// access path calls it once per *page* of an access stream and
    /// derives the 64 line addresses inside the page arithmetically,
    /// instead of paying a page-table lookup per line.
    ///
    /// # Errors
    ///
    /// Returns [`HemuError::OutOfPhysicalMemory`] if the policy socket has
    /// no free frames.
    #[inline]
    pub fn frame_of(&mut self, addr: Addr, mem: &mut NumaMemory) -> Result<PageNum> {
        let vpage = addr.page().raw();
        let slot = vpage as usize & (TLB_SLOTS - 1);
        // Keys are stored as `vpage + 1`, so the zeroed array never hits.
        if self.tlb[slot].0 == vpage + 1 {
            return Ok(self.tlb[slot].1);
        }
        let f = match self.table.get(&vpage) {
            Some(f) => *f,
            None => {
                let f = match self.os_placement {
                    // OS-managed: first touch on the primary socket, spill
                    // only on genuine exhaustion (injected transient faults
                    // must propagate, not silently change placement).
                    Some((primary, spill)) => match mem.allocate_frame(primary) {
                        Ok(f) => f,
                        Err(HemuError::OutOfPhysicalMemory { .. }) if spill.is_some() => {
                            mem.allocate_frame(spill.expect("checked by guard"))?
                        }
                        Err(e) => return Err(e),
                    },
                    None => mem.allocate_frame(self.socket_of(addr))?,
                };
                if let Some(t) = self.tenant {
                    mem.tenancy_assign(f, t);
                }
                self.table.insert(vpage, f);
                self.faults += 1;
                f
            }
        };
        self.tlb[slot] = (vpage + 1, f);
        Ok(f)
    }

    /// Translates without faulting; `None` if the page is not mapped.
    pub fn translate_existing(&self, addr: Addr) -> Option<PhysAddr> {
        let vpage = addr.page().raw();
        self.table
            .get(&vpage)
            .map(|f| f.phys_base().offset(addr.raw() % PAGE_SIZE as u64))
    }

    /// Unmaps the virtual range, returning its frames to their sockets.
    ///
    /// Used only by the monolithic-free-list ablation: the paper's two-list
    /// design deliberately *never* unmaps recycled chunks (§III.A).
    ///
    /// # Errors
    ///
    /// Returns [`HemuError::InvalidConfig`](hemu_types::HemuError) if a
    /// mapped frame lies outside physical memory (an internal invariant
    /// violation).
    pub fn unmap(&mut self, start: Addr, len: ByteSize, mem: &mut NumaMemory) -> Result<()> {
        if len.bytes() == 0 {
            return Ok(());
        }
        let p0 = start.page().raw();
        let p1 = start.offset(len.bytes() - 1).page().raw() + 1;
        let mut removed = false;
        for vpage in p0..p1 {
            if let Some(frame) = self.table.remove(&vpage) {
                mem.free_frame(frame)?;
                self.unmapped_pages += 1;
                removed = true;
            }
        }
        if removed {
            self.flush_tlb();
        }
        Ok(())
    }

    /// Rewrites every mapping of physical frame `old` to point at `new`,
    /// returning how many page-table entries changed (0 or 1 in practice:
    /// frames are never shared between virtual pages of one space).
    ///
    /// This is the page-retirement primitive: after a frame wears out, the
    /// machine copies its content to a healthy frame and calls this so the
    /// application keeps its virtual addresses — the failure is transparent.
    pub fn remap_frame(&mut self, old: PageNum, new: PageNum) -> u64 {
        let mut changed = 0;
        for frame in self.table.values_mut() {
            if *frame == old {
                *frame = new;
                changed += 1;
            }
        }
        if changed > 0 {
            self.flush_tlb();
        }
        self.remapped_pages += changed;
        changed
    }

    /// Drops every cached translation; the page table remains the source
    /// of truth.
    fn flush_tlb(&mut self) {
        self.tlb.fill((0, PageNum::new(0)));
    }

    /// Number of pages currently mapped.
    pub fn mapped_pages(&self) -> usize {
        self.table.len()
    }

    /// Number of page faults taken (pages lazily mapped) so far.
    pub fn fault_count(&self) -> u64 {
        self.faults
    }

    /// Number of pages explicitly unmapped so far (ablation metric).
    pub fn unmap_count(&self) -> u64 {
        self.unmapped_pages
    }

    /// Number of pages transparently remapped after frame retirement.
    pub fn remap_count(&self) -> u64 {
        self.remapped_pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::NumaConfig;

    fn mem() -> NumaMemory {
        NumaMemory::new(NumaConfig {
            sockets: 2,
            capacity_per_socket: ByteSize::from_mib(64),
        })
    }

    #[test]
    fn unbound_pages_fault_on_default_socket() {
        let mut m = mem();
        let mut asp = AddressSpace::new();
        let pa = asp.translate(Addr::new(0x1234), &mut m).unwrap();
        assert_eq!(m.socket_of_frame(pa.frame()), SocketId::DRAM);

        let mut asp2 = AddressSpace::with_default_socket(SocketId::PCM);
        let pa2 = asp2.translate(Addr::new(0x1234), &mut m).unwrap();
        assert_eq!(m.socket_of_frame(pa2.frame()), SocketId::PCM);
    }

    #[test]
    fn mbind_directs_faults() {
        let mut m = mem();
        let mut asp = AddressSpace::new();
        asp.mbind(Addr::new(0x10000), ByteSize::from_kib(8), SocketId::PCM);
        let inside = asp.translate(Addr::new(0x10fff), &mut m).unwrap();
        let outside = asp.translate(Addr::new(0x20000), &mut m).unwrap();
        assert_eq!(m.socket_of_frame(inside.frame()), SocketId::PCM);
        assert_eq!(m.socket_of_frame(outside.frame()), SocketId::DRAM);
    }

    #[test]
    fn mbind_end_is_exclusive_of_following_page() {
        let mut asp = AddressSpace::new();
        asp.mbind(Addr::new(0), ByteSize::from_kib(4), SocketId::PCM);
        assert_eq!(asp.socket_of(Addr::new(4095)), SocketId::PCM);
        assert_eq!(asp.socket_of(Addr::new(4096)), SocketId::DRAM);
    }

    #[test]
    fn rebinding_splits_existing_range() {
        let mut asp = AddressSpace::new();
        // Bind 4 pages to PCM, then re-bind the middle two to DRAM.
        asp.mbind(Addr::new(0), ByteSize::from_kib(16), SocketId::PCM);
        asp.mbind(Addr::new(4096), ByteSize::from_kib(8), SocketId::DRAM);
        assert_eq!(asp.socket_of(Addr::new(0)), SocketId::PCM);
        assert_eq!(asp.socket_of(Addr::new(4096)), SocketId::DRAM);
        assert_eq!(asp.socket_of(Addr::new(8192)), SocketId::DRAM);
        assert_eq!(asp.socket_of(Addr::new(12288)), SocketId::PCM);
    }

    #[test]
    fn translation_is_stable_across_calls() {
        let mut m = mem();
        let mut asp = AddressSpace::new();
        let a = asp.translate(Addr::new(0x5000), &mut m).unwrap();
        let b = asp.translate(Addr::new(0x5008), &mut m).unwrap();
        assert_eq!(a.frame(), b.frame());
        assert_eq!(b.raw() - a.raw(), 8);
        assert_eq!(asp.fault_count(), 1);
    }

    #[test]
    fn mbind_after_fault_does_not_move_page() {
        let mut m = mem();
        let mut asp = AddressSpace::new();
        let before = asp.translate(Addr::new(0x9000), &mut m).unwrap();
        asp.mbind(Addr::new(0x9000), ByteSize::from_kib(4), SocketId::PCM);
        let after = asp.translate(Addr::new(0x9000), &mut m).unwrap();
        assert_eq!(before, after, "already-mapped page must keep its frame");
    }

    #[test]
    fn unmap_frees_frames_for_reuse() {
        let mut m = mem();
        let mut asp = AddressSpace::new();
        let pa = asp.translate(Addr::new(0x3000), &mut m).unwrap();
        asp.unmap(Addr::new(0x3000), ByteSize::from_kib(4), &mut m)
            .unwrap();
        assert_eq!(asp.mapped_pages(), 0);
        assert_eq!(asp.unmap_count(), 1);
        // The frame is recycled by the next fault on the same socket.
        let pa2 = asp.translate(Addr::new(0x7000), &mut m).unwrap();
        assert_eq!(pa.frame(), pa2.frame());
    }

    #[test]
    fn remap_frame_preserves_translation_shape() {
        let mut m = mem();
        let mut asp = AddressSpace::new();
        let before = asp.translate(Addr::new(0x5123), &mut m).unwrap();
        let replacement = m.allocate_frame(SocketId::DRAM).unwrap();
        assert_eq!(asp.remap_frame(before.frame(), replacement), 1);
        assert_eq!(asp.remap_count(), 1);
        let after = asp.translate(Addr::new(0x5123), &mut m).unwrap();
        assert_eq!(after.frame(), replacement);
        // Same page offset, no new page fault.
        assert_eq!(after.raw() % 4096, before.raw() % 4096);
        assert_eq!(asp.fault_count(), 1);
        // Remapping an unknown frame is a no-op.
        assert_eq!(asp.remap_frame(PageNum::new(999_999), replacement), 0);
    }

    #[test]
    fn os_placement_overrides_mbind_and_spills_on_exhaustion() {
        // 4-frame sockets: DRAM fills after 4 faults, then spills to PCM.
        let mut m = NumaMemory::new(NumaConfig {
            sockets: 2,
            capacity_per_socket: ByteSize::from_kib(16),
        });
        let mut asp = AddressSpace::new();
        // The runtime's mbind says PCM, but the OS owns placement.
        asp.mbind(Addr::new(0), ByteSize::from_mib(1), SocketId::PCM);
        asp.set_os_placement(SocketId::DRAM, Some(SocketId::PCM));
        for i in 0..4u64 {
            let pa = asp.translate(Addr::new(i * 4096), &mut m).unwrap();
            assert_eq!(m.socket_of_frame(pa.frame()), SocketId::DRAM);
        }
        for i in 4..6u64 {
            let pa = asp.translate(Addr::new(i * 4096), &mut m).unwrap();
            assert_eq!(m.socket_of_frame(pa.frame()), SocketId::PCM, "spilled");
        }
    }

    #[test]
    fn os_placement_without_spill_propagates_exhaustion() {
        let mut m = NumaMemory::new(NumaConfig {
            sockets: 2,
            capacity_per_socket: ByteSize::from_kib(8), // 2 frames
        });
        let mut asp = AddressSpace::new();
        asp.set_os_placement(SocketId::PCM, None);
        asp.translate(Addr::new(0), &mut m).unwrap();
        asp.translate(Addr::new(4096), &mut m).unwrap();
        assert!(matches!(
            asp.translate(Addr::new(8192), &mut m),
            Err(HemuError::OutOfPhysicalMemory { socket, .. }) if socket == SocketId::PCM
        ));
    }

    /// Per-page counter sampling + reset is exact across a page-table
    /// remap: the migrated page keeps its cumulative totals under the new
    /// frame and its epoch deltas restart at zero, while the vacated frame
    /// reads as cold.
    #[test]
    fn page_heat_is_exact_across_a_remap() {
        use hemu_types::AccessKind;
        let mut m = mem();
        m.enable_page_heat();
        let mut asp = AddressSpace::new();
        let pa = asp.translate(Addr::new(0x5000), &mut m).unwrap();
        let old = pa.frame();
        for _ in 0..6 {
            m.record_line_access(pa.line(), AccessKind::Write);
        }
        m.record_line_access(pa.line(), AccessKind::Read);

        // Migrate the page to a new frame, mirroring what the machine's
        // migration engine does: remap the table, then move the heat.
        let new = m.allocate_frame(SocketId::PCM).unwrap();
        assert_eq!(asp.remap_frame(old, new), 1);
        m.heat_on_remap(old, new);

        let heat = m.page_heat().unwrap();
        let migrated = heat.heat(new);
        assert_eq!((migrated.writes, migrated.reads), (6, 1), "totals follow");
        assert_eq!(
            (migrated.epoch_writes, migrated.epoch_reads),
            (0, 0),
            "epoch deltas restart at zero on migration"
        );
        assert_eq!(heat.heat(old).writes, 0, "vacated frame is cold");

        // Post-migration accesses land on the new frame and epoch deltas
        // resume exactly from zero.
        let pa2 = asp.translate(Addr::new(0x5000), &mut m).unwrap();
        assert_eq!(pa2.frame(), new);
        m.record_line_access(pa2.line(), AccessKind::Write);
        let h = m.page_heat().unwrap().heat(new);
        assert_eq!((h.writes, h.epoch_writes), (7, 1));
        // And an epoch reset zeroes deltas without touching totals.
        m.reset_page_heat_epoch();
        let h = m.page_heat().unwrap().heat(new);
        assert_eq!((h.writes, h.epoch_writes), (7, 0));
    }

    #[test]
    fn distinct_address_spaces_do_not_collide() {
        let mut m = mem();
        let mut a = AddressSpace::new();
        let mut b = AddressSpace::new();
        let pa = a.translate(Addr::new(0x1000), &mut m).unwrap();
        let pb = b.translate(Addr::new(0x1000), &mut m).unwrap();
        assert_ne!(
            pa.frame(),
            pb.frame(),
            "same VA in two processes gets different frames"
        );
    }
}
