//! Memory-controller traffic counters.

use hemu_obs::json::{JsonObject, ToJson};
use hemu_types::{AccessKind, ByteSize, CACHE_LINE};
use std::fmt;

/// Read/write traffic counters for one socket's memory controller.
///
/// This is the simulated equivalent of the uncore counters that Intel's
/// `pcm-memory` utility samples on the paper's platform: every cache line
/// that reaches the controller is counted, reads and writes separately.
///
/// # Examples
///
/// ```
/// use hemu_numa::MemoryCounters;
/// use hemu_types::AccessKind;
///
/// let mut c = MemoryCounters::default();
/// c.record(AccessKind::Write);
/// c.record(AccessKind::Read);
/// assert_eq!(c.write_lines(), 1);
/// assert_eq!(c.written().bytes(), 64);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryCounters {
    read_lines: u64,
    write_lines: u64,
}

impl MemoryCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one cache-line transfer of the given kind.
    pub fn record(&mut self, kind: AccessKind) {
        match kind {
            AccessKind::Read => self.read_lines += 1,
            AccessKind::Write => self.write_lines += 1,
        }
    }

    /// Number of cache lines read from this controller.
    pub fn read_lines(&self) -> u64 {
        self.read_lines
    }

    /// Number of cache lines written to this controller.
    ///
    /// For the PCM socket this is the paper's headline metric: PCM lifetime
    /// is inversely proportional to this count per unit time.
    pub fn write_lines(&self) -> u64 {
        self.write_lines
    }

    /// Total bytes read.
    pub fn read(&self) -> ByteSize {
        ByteSize::new(self.read_lines * CACHE_LINE as u64)
    }

    /// Total bytes written.
    pub fn written(&self) -> ByteSize {
        ByteSize::new(self.write_lines * CACHE_LINE as u64)
    }

    /// Resets both counters to zero (start of a measured iteration).
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Returns a snapshot difference `self - earlier`, for interval sampling
    /// by the write-rate monitor.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` has larger counts than `self` (counters are
    /// monotonic between resets).
    pub fn since(&self, earlier: &MemoryCounters) -> MemoryCounters {
        MemoryCounters {
            read_lines: self
                .read_lines
                .checked_sub(earlier.read_lines)
                .expect("counter snapshot out of order"),
            write_lines: self
                .write_lines
                .checked_sub(earlier.write_lines)
                .expect("counter snapshot out of order"),
        }
    }
}

impl ToJson for MemoryCounters {
    fn write_json(&self, out: &mut String) {
        let mut obj = JsonObject::new(out);
        obj.field("read_lines", &self.read_lines)
            .field("write_lines", &self.write_lines)
            .field("read_bytes", &self.read())
            .field("written_bytes", &self.written());
        obj.finish();
    }
}

impl fmt::Display for MemoryCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reads: {} ({}), writes: {} ({})",
            self.read_lines,
            self.read(),
            self.write_lines,
            self.written()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_separates_reads_and_writes() {
        let mut c = MemoryCounters::new();
        c.record(AccessKind::Read);
        c.record(AccessKind::Read);
        c.record(AccessKind::Write);
        assert_eq!(c.read_lines(), 2);
        assert_eq!(c.write_lines(), 1);
    }

    #[test]
    fn bytes_are_lines_times_64() {
        let mut c = MemoryCounters::new();
        for _ in 0..10 {
            c.record(AccessKind::Write);
        }
        assert_eq!(c.written().bytes(), 640);
    }

    #[test]
    fn since_returns_interval_delta() {
        let mut c = MemoryCounters::new();
        c.record(AccessKind::Write);
        let snap = c;
        c.record(AccessKind::Write);
        c.record(AccessKind::Read);
        let d = c.since(&snap);
        assert_eq!(d.write_lines(), 1);
        assert_eq!(d.read_lines(), 1);
    }

    #[test]
    fn reset_zeroes() {
        let mut c = MemoryCounters::new();
        c.record(AccessKind::Write);
        c.reset();
        assert_eq!(c.write_lines(), 0);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn since_panics_on_reversed_snapshots() {
        let mut c = MemoryCounters::new();
        c.record(AccessKind::Write);
        let later = c;
        let _ = MemoryCounters::new().since(&later);
    }
}
