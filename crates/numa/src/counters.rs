//! Memory-controller traffic counters and per-page access sampling.

use hemu_obs::json::{JsonObject, ToJson};
use hemu_types::{AccessKind, ByteSize, PageNum, CACHE_LINE};
use std::collections::BTreeMap;
use std::fmt;

/// Read/write traffic counters for one socket's memory controller.
///
/// This is the simulated equivalent of the uncore counters that Intel's
/// `pcm-memory` utility samples on the paper's platform: every cache line
/// that reaches the controller is counted, reads and writes separately.
///
/// # Examples
///
/// ```
/// use hemu_numa::MemoryCounters;
/// use hemu_types::AccessKind;
///
/// let mut c = MemoryCounters::default();
/// c.record(AccessKind::Write);
/// c.record(AccessKind::Read);
/// assert_eq!(c.write_lines(), 1);
/// assert_eq!(c.written().bytes(), 64);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryCounters {
    read_lines: u64,
    write_lines: u64,
}

impl MemoryCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one cache-line transfer of the given kind.
    pub fn record(&mut self, kind: AccessKind) {
        match kind {
            AccessKind::Read => self.read_lines += 1,
            AccessKind::Write => self.write_lines += 1,
        }
    }

    /// Number of cache lines read from this controller.
    pub fn read_lines(&self) -> u64 {
        self.read_lines
    }

    /// Number of cache lines written to this controller.
    ///
    /// For the PCM socket this is the paper's headline metric: PCM lifetime
    /// is inversely proportional to this count per unit time.
    pub fn write_lines(&self) -> u64 {
        self.write_lines
    }

    /// Total bytes read.
    pub fn read(&self) -> ByteSize {
        ByteSize::new(self.read_lines * CACHE_LINE as u64)
    }

    /// Total bytes written.
    pub fn written(&self) -> ByteSize {
        ByteSize::new(self.write_lines * CACHE_LINE as u64)
    }

    /// Resets both counters to zero (start of a measured iteration).
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Returns a snapshot difference `self - earlier`, for interval sampling
    /// by the write-rate monitor.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` has larger counts than `self` (counters are
    /// monotonic between resets).
    pub fn since(&self, earlier: &MemoryCounters) -> MemoryCounters {
        MemoryCounters {
            read_lines: self
                .read_lines
                .checked_sub(earlier.read_lines)
                .expect("counter snapshot out of order"),
            write_lines: self
                .write_lines
                .checked_sub(earlier.write_lines)
                .expect("counter snapshot out of order"),
        }
    }
}

impl ToJson for MemoryCounters {
    fn write_json(&self, out: &mut String) {
        let mut obj = JsonObject::new(out);
        obj.field("read_lines", &self.read_lines)
            .field("write_lines", &self.write_lines)
            .field("read_bytes", &self.read())
            .field("written_bytes", &self.written());
        obj.finish();
    }
}

impl fmt::Display for MemoryCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reads: {} ({}), writes: {} ({})",
            self.read_lines,
            self.read(),
            self.write_lines,
            self.written()
        )
    }
}

/// Read/write heat of one physical page: cumulative counts over the whole
/// run plus the deltas of the current sampling epoch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PageHeat {
    /// Lines read from this page since tracking began.
    pub reads: u64,
    /// Lines written to this page since tracking began.
    pub writes: u64,
    /// Lines read during the current epoch.
    pub epoch_reads: u64,
    /// Lines written during the current epoch.
    pub epoch_writes: u64,
}

/// Per-page access sampling for OS-level placement decisions.
///
/// This is the emulated analog of the access-bit / PEBS sampling an OS
/// hot-page migrator relies on: every line access that reaches a memory
/// controller is attributed to its physical frame, separately for reads
/// and writes, with both cumulative totals and per-epoch deltas. Pages
/// are keyed in a `BTreeMap` so iteration order — and therefore every
/// migration decision derived from it — is deterministic.
///
/// # Examples
///
/// ```
/// use hemu_numa::PageHeatTracker;
/// use hemu_types::{AccessKind, PageNum};
///
/// let mut t = PageHeatTracker::new();
/// t.record(PageNum::new(7), AccessKind::Write);
/// t.record(PageNum::new(7), AccessKind::Read);
/// let h = t.heat(PageNum::new(7));
/// assert_eq!((h.writes, h.epoch_writes, h.reads), (1, 1, 1));
/// t.epoch_reset();
/// let h = t.heat(PageNum::new(7));
/// assert_eq!((h.writes, h.epoch_writes), (1, 0));
/// ```
#[derive(Debug, Clone, Default)]
pub struct PageHeatTracker {
    pages: BTreeMap<u64, PageHeat>,
}

impl PageHeatTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attributes one line transfer to the frame it landed on.
    pub fn record(&mut self, frame: PageNum, kind: AccessKind) {
        let h = self.pages.entry(frame.raw()).or_default();
        match kind {
            AccessKind::Read => {
                h.reads += 1;
                h.epoch_reads += 1;
            }
            AccessKind::Write => {
                h.writes += 1;
                h.epoch_writes += 1;
            }
        }
    }

    /// The heat of one frame (zeroes if it was never touched).
    pub fn heat(&self, frame: PageNum) -> PageHeat {
        self.pages.get(&frame.raw()).copied().unwrap_or_default()
    }

    /// Iterates every tracked page in ascending frame order — the
    /// deterministic sampling order migration policies must rely on.
    pub fn iter(&self) -> impl Iterator<Item = (PageNum, &PageHeat)> {
        self.pages.iter().map(|(f, h)| (PageNum::new(*f), h))
    }

    /// Number of distinct frames touched so far.
    pub fn tracked_pages(&self) -> usize {
        self.pages.len()
    }

    /// Closes the sampling epoch: every page's epoch deltas restart at
    /// zero while cumulative totals are untouched.
    pub fn epoch_reset(&mut self) {
        for h in self.pages.values_mut() {
            h.epoch_reads = 0;
            h.epoch_writes = 0;
        }
    }

    /// Follows a physical remap `old → new` (page migration or wear-out
    /// retirement): the page keeps its cumulative totals under the new
    /// frame, but its epoch deltas restart at zero — the copy traffic of
    /// the move itself must not make the freshly placed page look hot.
    pub fn on_remap(&mut self, old: PageNum, new: PageNum) {
        if let Some(mut h) = self.pages.remove(&old.raw()) {
            h.epoch_reads = 0;
            h.epoch_writes = 0;
            self.pages.insert(new.raw(), h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_separates_reads_and_writes() {
        let mut c = MemoryCounters::new();
        c.record(AccessKind::Read);
        c.record(AccessKind::Read);
        c.record(AccessKind::Write);
        assert_eq!(c.read_lines(), 2);
        assert_eq!(c.write_lines(), 1);
    }

    #[test]
    fn bytes_are_lines_times_64() {
        let mut c = MemoryCounters::new();
        for _ in 0..10 {
            c.record(AccessKind::Write);
        }
        assert_eq!(c.written().bytes(), 640);
    }

    #[test]
    fn since_returns_interval_delta() {
        let mut c = MemoryCounters::new();
        c.record(AccessKind::Write);
        let snap = c;
        c.record(AccessKind::Write);
        c.record(AccessKind::Read);
        let d = c.since(&snap);
        assert_eq!(d.write_lines(), 1);
        assert_eq!(d.read_lines(), 1);
    }

    #[test]
    fn reset_zeroes() {
        let mut c = MemoryCounters::new();
        c.record(AccessKind::Write);
        c.reset();
        assert_eq!(c.write_lines(), 0);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn since_panics_on_reversed_snapshots() {
        let mut c = MemoryCounters::new();
        c.record(AccessKind::Write);
        let later = c;
        let _ = MemoryCounters::new().since(&later);
    }

    #[test]
    fn heat_tracks_cumulative_and_epoch_counts() {
        let mut t = PageHeatTracker::new();
        for _ in 0..3 {
            t.record(PageNum::new(4), AccessKind::Write);
        }
        t.record(PageNum::new(4), AccessKind::Read);
        t.record(PageNum::new(9), AccessKind::Read);
        let h = t.heat(PageNum::new(4));
        assert_eq!((h.writes, h.reads), (3, 1));
        assert_eq!((h.epoch_writes, h.epoch_reads), (3, 1));
        t.epoch_reset();
        t.record(PageNum::new(4), AccessKind::Write);
        let h = t.heat(PageNum::new(4));
        assert_eq!((h.writes, h.epoch_writes), (4, 1));
        assert_eq!(t.tracked_pages(), 2);
        assert_eq!(t.heat(PageNum::new(1234)), PageHeat::default());
    }

    #[test]
    fn iteration_is_in_ascending_frame_order() {
        let mut t = PageHeatTracker::new();
        for f in [9u64, 2, 5] {
            t.record(PageNum::new(f), AccessKind::Write);
        }
        let order: Vec<u64> = t.iter().map(|(f, _)| f.raw()).collect();
        assert_eq!(order, vec![2, 5, 9]);
    }

    #[test]
    fn remap_moves_totals_and_restarts_epoch_deltas() {
        let mut t = PageHeatTracker::new();
        for _ in 0..5 {
            t.record(PageNum::new(3), AccessKind::Write);
        }
        t.record(PageNum::new(3), AccessKind::Read);
        t.on_remap(PageNum::new(3), PageNum::new(8));
        assert_eq!(t.heat(PageNum::new(3)), PageHeat::default(), "vacated");
        let h = t.heat(PageNum::new(8));
        assert_eq!((h.writes, h.reads), (5, 1), "cumulative totals follow");
        assert_eq!((h.epoch_writes, h.epoch_reads), (0, 0), "epoch restarts");
        // Remapping an untracked frame is a no-op.
        t.on_remap(PageNum::new(77), PageNum::new(78));
        assert_eq!(t.tracked_pages(), 1);
    }
}
