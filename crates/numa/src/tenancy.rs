//! Per-tenant write attribution for consolidated (multi-tenant) runs.
//!
//! Every physical frame is owned by at most one tenant — the tenant whose
//! demand fault allocated it, following the frame through wear remaps and
//! OS migrations. Controller line writes are then charged to the owning
//! tenant at the single accounting point
//! (`NumaMemory::record_line_access`), so per-tenant counts sum exactly to
//! the global controller counters: every write lands either in one
//! tenant's bucket or in the `unattributed` bucket, never both, never
//! neither.

use hemu_types::{PageNum, SocketId};
use std::collections::HashMap;

/// Frame-ownership map plus per-tenant controller write counters.
///
/// The map is only ever *looked up* (never iterated), so the hash-map
/// ordering cannot leak into any exported artifact; counts are plain
/// order-insensitive sums, which is why tenancy — unlike tracing,
/// provenance, fault injection, and endurance — does not gate the
/// machine's aggregate batch merge or deferred submission.
#[derive(Debug, Clone)]
pub struct TenancyTracker {
    /// Physical frame → owning tenant.
    owner: HashMap<u64, u16>,
    /// PCM controller line writes charged to each tenant.
    pcm_write_lines: Vec<u64>,
    /// DRAM controller line writes charged to each tenant.
    dram_write_lines: Vec<u64>,
    /// PCM line writes to frames with no owner (should stay 0 in a
    /// well-formed consolidation run; the CI smoke greps for exactly that).
    unattributed_pcm: u64,
    /// DRAM line writes to frames with no owner.
    unattributed_dram: u64,
}

impl TenancyTracker {
    /// Creates a tracker for `tenants` tenants (ids `0..tenants`).
    pub fn new(tenants: usize) -> Self {
        TenancyTracker {
            owner: HashMap::new(),
            pcm_write_lines: vec![0; tenants],
            dram_write_lines: vec![0; tenants],
            unattributed_pcm: 0,
            unattributed_dram: 0,
        }
    }

    /// Number of tenants this tracker attributes to.
    pub fn tenants(&self) -> usize {
        self.pcm_write_lines.len()
    }

    /// Records `frame` as owned by `tenant` (the demand fault that
    /// allocated it). Out-of-range tenant ids are ignored.
    pub fn assign(&mut self, frame: PageNum, tenant: u16) {
        if (tenant as usize) < self.pcm_write_lines.len() {
            self.owner.insert(frame.raw(), tenant);
        }
    }

    /// Clears `frame`'s ownership (the frame was freed).
    pub fn clear(&mut self, frame: PageNum) {
        self.owner.remove(&frame.raw());
    }

    /// Follows a physical remap `old → new`: the owner moves with the
    /// page, so migration/retirement copy writes to the replacement frame
    /// are charged to the owning tenant. Call *before* the copy traffic is
    /// recorded.
    pub fn on_remap(&mut self, old: PageNum, new: PageNum) {
        if let Some(t) = self.owner.remove(&old.raw()) {
            self.owner.insert(new.raw(), t);
        }
    }

    /// Charges one controller line write at `socket` within `frame` to its
    /// owning tenant (or the unattributed bucket).
    #[inline]
    pub fn record_write(&mut self, frame: PageNum, socket: SocketId) {
        let pcm = socket == SocketId::PCM;
        match self.owner.get(&frame.raw()) {
            Some(&t) if pcm => self.pcm_write_lines[t as usize] += 1,
            Some(&t) => self.dram_write_lines[t as usize] += 1,
            None if pcm => self.unattributed_pcm += 1,
            None => self.unattributed_dram += 1,
        }
    }

    /// PCM line writes charged to `tenant` since the last reset.
    pub fn pcm_lines(&self, tenant: usize) -> u64 {
        self.pcm_write_lines.get(tenant).copied().unwrap_or(0)
    }

    /// DRAM line writes charged to `tenant` since the last reset.
    pub fn dram_lines(&self, tenant: usize) -> u64 {
        self.dram_write_lines.get(tenant).copied().unwrap_or(0)
    }

    /// PCM line writes that hit a frame with no owner.
    pub fn unattributed_pcm(&self) -> u64 {
        self.unattributed_pcm
    }

    /// DRAM line writes that hit a frame with no owner.
    pub fn unattributed_dram(&self) -> u64 {
        self.unattributed_dram
    }

    /// Zeroes every write counter while keeping frame ownership — the
    /// measured-iteration reset: the tenants keep their memory, the
    /// measurement interval restarts.
    pub fn reset_counts(&mut self) {
        self.pcm_write_lines.iter_mut().for_each(|c| *c = 0);
        self.dram_write_lines.iter_mut().for_each(|c| *c = 0);
        self.unattributed_pcm = 0;
        self.unattributed_dram = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_are_charged_to_the_owning_tenant() {
        let mut t = TenancyTracker::new(2);
        let f = PageNum::new(7);
        t.assign(f, 1);
        t.record_write(f, SocketId::PCM);
        t.record_write(f, SocketId::PCM);
        t.record_write(f, SocketId::DRAM);
        assert_eq!(t.pcm_lines(1), 2);
        assert_eq!(t.dram_lines(1), 1);
        assert_eq!(t.pcm_lines(0), 0);
        assert_eq!(t.unattributed_pcm() + t.unattributed_dram(), 0);
    }

    #[test]
    fn unowned_frames_fall_into_the_unattributed_bucket() {
        let mut t = TenancyTracker::new(1);
        t.record_write(PageNum::new(3), SocketId::PCM);
        t.record_write(PageNum::new(3), SocketId::DRAM);
        assert_eq!(t.unattributed_pcm(), 1);
        assert_eq!(t.unattributed_dram(), 1);
    }

    #[test]
    fn remap_moves_ownership_and_clear_drops_it() {
        let mut t = TenancyTracker::new(1);
        let (old, new) = (PageNum::new(1), PageNum::new(2));
        t.assign(old, 0);
        t.on_remap(old, new);
        t.record_write(new, SocketId::PCM);
        t.record_write(old, SocketId::PCM);
        assert_eq!(t.pcm_lines(0), 1, "the replacement frame is owned");
        assert_eq!(t.unattributed_pcm(), 1, "the dead frame is not");
        t.clear(new);
        t.record_write(new, SocketId::PCM);
        assert_eq!(t.pcm_lines(0), 1);
    }

    #[test]
    fn reset_zeroes_counts_but_keeps_ownership() {
        let mut t = TenancyTracker::new(1);
        let f = PageNum::new(9);
        t.assign(f, 0);
        t.record_write(f, SocketId::PCM);
        t.reset_counts();
        assert_eq!(t.pcm_lines(0), 0);
        t.record_write(f, SocketId::PCM);
        assert_eq!(t.pcm_lines(0), 1, "ownership survived the reset");
    }

    #[test]
    fn out_of_range_tenant_ids_are_ignored() {
        let mut t = TenancyTracker::new(1);
        let f = PageNum::new(4);
        t.assign(f, 5);
        t.record_write(f, SocketId::PCM);
        assert_eq!(t.unattributed_pcm(), 1);
    }
}
