//! Property-based tests for the NUMA memory substrate.

use hemu_numa::{AddressSpace, NumaConfig, NumaMemory};
use hemu_types::{Addr, ByteSize, SocketId, PAGE_SIZE};
use proptest::prelude::*;

fn mem() -> NumaMemory {
    NumaMemory::new(NumaConfig {
        sockets: 2,
        capacity_per_socket: ByteSize::from_mib(256),
    })
}

proptest! {
    /// Translation of any two addresses on the same virtual page lands on
    /// the same frame with offsets preserved.
    #[test]
    fn translation_preserves_page_offsets(base in 0u64..1u64 << 32, off in 0u64..PAGE_SIZE as u64) {
        let mut m = mem();
        let mut asp = AddressSpace::new();
        let page_base = Addr::new(base).page().base();
        let pa_base = asp.translate(page_base, &mut m).unwrap();
        let pa_off = asp.translate(page_base.offset(off), &mut m).unwrap();
        prop_assert_eq!(pa_off.raw() - pa_base.raw(), off);
        prop_assert_eq!(pa_base.frame(), pa_off.frame());
    }

    /// After an arbitrary sequence of mbind calls, every address reports a
    /// socket consistent with the *last* bind covering it (or the default).
    #[test]
    fn mbind_last_writer_wins(
        binds in prop::collection::vec(
            (0u64..64, 1u64..16, prop::bool::ANY), 1..12)
    ) {
        let mut asp = AddressSpace::new();
        // Reference model: per-page socket array.
        let mut reference = [SocketId::DRAM; 96];
        for (start_page, pages, to_pcm) in binds {
            let socket = if to_pcm { SocketId::PCM } else { SocketId::DRAM };
            asp.mbind(
                Addr::new(start_page * PAGE_SIZE as u64),
                ByteSize::new(pages * PAGE_SIZE as u64),
                socket,
            );
            for p in start_page..(start_page + pages).min(96) {
                reference[p as usize] = socket;
            }
        }
        for p in 0..96u64 {
            prop_assert_eq!(
                asp.socket_of(Addr::new(p * PAGE_SIZE as u64)),
                reference[p as usize],
                "page {}", p
            );
        }
    }

    /// Frames are conserved: alloc/free sequences never lose or duplicate a
    /// frame, and in-use counts match the model.
    #[test]
    fn frame_conservation(ops in prop::collection::vec(prop::bool::ANY, 1..200)) {
        let mut m = NumaMemory::new(NumaConfig {
            sockets: 2,
            capacity_per_socket: ByteSize::from_mib(1),
        });
        let mut held = Vec::new();
        for alloc in ops {
            if alloc || held.is_empty() {
                if let Ok(f) = m.allocate_frame(SocketId::DRAM) {
                    prop_assert!(!held.contains(&f), "frame {f} handed out twice");
                    held.push(f);
                }
            } else {
                let f = held.pop().unwrap();
                m.free_frame(f).unwrap();
            }
            prop_assert_eq!(m.socket(SocketId::DRAM).frames_in_use(), held.len() as u64);
        }
    }

    /// socket_of_line agrees with the frame partition for any frame handed
    /// out by either socket.
    #[test]
    fn line_routing_matches_frame_owner(pick_pcm in prop::bool::ANY, line_in_page in 0u64..64) {
        let mut m = mem();
        let socket = if pick_pcm { SocketId::PCM } else { SocketId::DRAM };
        let f = m.allocate_frame(socket).unwrap();
        let line = hemu_types::LineAddr::new(f.phys_base().line().raw() + line_in_page);
        prop_assert_eq!(m.socket_of_line(line), socket);
    }
}
