//! Seeded randomized tests for the PCM endurance model: wear-driven line
//! failure, page retirement, transparent remapping, and the monotonic
//! counter invariant. Like `randomized.rs`, every case is derived from the
//! in-tree deterministic PRNG so failures reproduce exactly.

use hemu_fault::EnduranceConfig;
use hemu_numa::{AddressSpace, NumaConfig, NumaMemory};
use hemu_types::{
    AccessKind, Addr, ByteSize, DeterministicRng, PageNum, SocketId, CACHE_LINE, PAGE_SIZE,
};

fn worn_mem(seed: u64) -> NumaMemory {
    let mut m = NumaMemory::new(NumaConfig {
        sockets: 2,
        capacity_per_socket: ByteSize::from_mib(4),
    });
    m.enable_endurance(EnduranceConfig {
        budget_writes: 8,
        variability: 0.25,
        seed,
    });
    m
}

/// Hammers random PCM lines until at least one frame retires, then remaps
/// it the way the machine does. Along the way the per-socket write counter
/// must be monotonic, and after the remap every previously mapped address
/// must still translate to the same offset within a healthy frame — the
/// substrate's version of "remapping preserves page contents" (the
/// emulator models contents as the page → frame → offset identity).
#[test]
fn remapping_preserves_translation_and_counters_stay_monotonic() {
    let mut rng = DeterministicRng::seeded(0xE2D_0001);
    for case in 0..24 {
        let mut m = worn_mem(0xBEEF + case);
        let mut asp = AddressSpace::with_default_socket(SocketId::PCM);
        let pages = 4 + rng.below(8);
        let addrs: Vec<Addr> = (0..pages)
            .map(|i| Addr::new(i * PAGE_SIZE as u64))
            .collect();
        let before: Vec<_> = addrs
            .iter()
            .map(|&a| asp.translate(a, &mut m).unwrap())
            .collect();
        let faults_after_setup = asp.fault_count();

        let mut last_writes = 0u64;
        let mut retired: Vec<PageNum> = Vec::new();
        for step in 0..200_000u64 {
            let a = addrs[rng.below(addrs.len() as u64) as usize];
            let off = rng.below((PAGE_SIZE / CACHE_LINE) as u64) * CACHE_LINE as u64;
            let pa = asp.translate(a.offset(off), &mut m).unwrap();
            m.record_line_access(pa.line(), AccessKind::Write);
            let w = m.counters(SocketId::PCM).write_lines();
            assert!(
                w > last_writes,
                "case {case} step {step}: write counter not monotonic"
            );
            last_writes = w;
            retired = m.take_pending_retirements();
            if !retired.is_empty() {
                break;
            }
        }
        assert!(
            !retired.is_empty(),
            "case {case}: tiny budget never retired a frame"
        );

        for &old in &retired {
            let socket = m.socket_of_frame(old);
            assert_eq!(socket, SocketId::PCM, "case {case}: wear is a PCM effect");
            let new = m.allocate_frame_uninjected(socket).unwrap();
            let changed = asp.remap_frame(old, new);
            assert_eq!(changed, 1, "case {case}: each frame backs exactly one page");
        }

        for (&a, pa_before) in addrs.iter().zip(&before) {
            let pa_after = asp
                .translate_existing(a)
                .expect("remap must not drop the mapping");
            assert_eq!(
                pa_after.raw() % PAGE_SIZE as u64,
                pa_before.raw() % PAGE_SIZE as u64,
                "case {case}: offset within the frame changed"
            );
            assert!(
                !retired.contains(&pa_after.frame()),
                "case {case}: page still mapped to a retired frame"
            );
        }
        assert_eq!(
            asp.fault_count(),
            faults_after_setup,
            "case {case}: remapping must not page-fault"
        );
        assert_eq!(asp.remap_count(), retired.len() as u64, "case {case}");
    }
}

/// Retired frames shrink the socket's effective capacity and are never
/// handed out again, even when the free list is drained to exhaustion.
#[test]
fn retired_frames_never_return_and_capacity_shrinks() {
    let mut m = worn_mem(0x5EED);
    let frame = m.allocate_frame(SocketId::PCM).unwrap();
    let line0 = frame.phys_base().line();
    // Spend every line's budget; with budget 8 and variability 0.25 the
    // worst-case per-line budget is 10 writes.
    for i in 0..(PAGE_SIZE / CACHE_LINE) as u64 {
        for _ in 0..16 {
            m.record_line_access(
                hemu_types::LineAddr::new(line0.raw() + i),
                AccessKind::Write,
            );
        }
    }
    let retired = m.take_pending_retirements();
    assert_eq!(retired, vec![frame], "whole-frame hammering retires it");
    assert!(m.failed_lines() > 0);
    assert_eq!(m.retired_pages(SocketId::PCM), 1);
    let total = m.config().capacity_per_socket;
    assert_eq!(
        m.effective_capacity(SocketId::PCM).bytes(),
        total.bytes() - PAGE_SIZE as u64,
        "one retired page must vanish from the effective capacity"
    );

    // Freeing the retired frame must not resurrect it.
    m.free_frame(frame).unwrap();
    let mut handed_out = Vec::new();
    while let Ok(f) = m.allocate_frame(SocketId::PCM) {
        assert_ne!(f, frame, "retired frame was re-issued");
        handed_out.push(f);
    }
    assert_eq!(
        handed_out.len() as u64,
        m.socket(SocketId::PCM).frame_count() - 1,
        "exactly the healthy frames are allocatable"
    );
}
