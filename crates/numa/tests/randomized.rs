//! Seeded randomized tests for the NUMA memory substrate.
//!
//! These port the highest-value properties from `properties.rs` (which
//! needs the vendored `proptest` crate and is gated behind the `proptest`
//! feature) to the in-tree deterministic PRNG, so they run on every plain
//! `cargo test` with zero external dependencies. Failures print the seed of
//! the offending case; rerunning is fully reproducible.

use hemu_numa::{AddressSpace, NumaConfig, NumaMemory};
use hemu_types::{Addr, ByteSize, DeterministicRng, SocketId, PAGE_SIZE};

fn mem() -> NumaMemory {
    NumaMemory::new(NumaConfig {
        sockets: 2,
        capacity_per_socket: ByteSize::from_mib(256),
    })
}

/// Translation of any two addresses on the same virtual page lands on the
/// same frame with offsets preserved.
#[test]
fn translation_preserves_page_offsets() {
    let mut rng = DeterministicRng::seeded(0x7261_6e64_0001);
    for case in 0..256 {
        let base = rng.below(1 << 32);
        let off = rng.below(PAGE_SIZE as u64);
        let mut m = mem();
        let mut asp = AddressSpace::new();
        let page_base = Addr::new(base).page().base();
        let pa_base = asp.translate(page_base, &mut m).unwrap();
        let pa_off = asp.translate(page_base.offset(off), &mut m).unwrap();
        assert_eq!(
            pa_off.raw() - pa_base.raw(),
            off,
            "case {case}: base {base:#x} off {off}"
        );
        assert_eq!(
            pa_base.frame(),
            pa_off.frame(),
            "case {case}: base {base:#x} off {off}"
        );
    }
}

/// After an arbitrary sequence of mbind calls, every address reports a
/// socket consistent with the *last* bind covering it (or the default).
#[test]
fn mbind_last_writer_wins() {
    let mut rng = DeterministicRng::seeded(0x7261_6e64_0002);
    for case in 0..128 {
        let mut asp = AddressSpace::new();
        // Reference model: per-page socket array.
        let mut reference = [SocketId::DRAM; 96];
        let bind_count = rng.range(1, 12);
        for _ in 0..bind_count {
            let start_page = rng.below(64);
            let pages = rng.range(1, 16);
            let socket = if rng.chance(0.5) {
                SocketId::PCM
            } else {
                SocketId::DRAM
            };
            asp.mbind(
                Addr::new(start_page * PAGE_SIZE as u64),
                ByteSize::new(pages * PAGE_SIZE as u64),
                socket,
            );
            for p in start_page..(start_page + pages).min(96) {
                reference[p as usize] = socket;
            }
        }
        for p in 0..96u64 {
            assert_eq!(
                asp.socket_of(Addr::new(p * PAGE_SIZE as u64)),
                reference[p as usize],
                "case {case}, page {p}"
            );
        }
    }
}

/// Frames are conserved: alloc/free sequences never lose or duplicate a
/// frame, and in-use counts match a reference model.
#[test]
fn frame_conservation() {
    let mut rng = DeterministicRng::seeded(0x7261_6e64_0003);
    for case in 0..64 {
        let mut m = NumaMemory::new(NumaConfig {
            sockets: 2,
            capacity_per_socket: ByteSize::from_mib(1),
        });
        let mut held = Vec::new();
        let ops = rng.range(1, 200);
        for op in 0..ops {
            if rng.chance(0.5) || held.is_empty() {
                if let Ok(f) = m.allocate_frame(SocketId::DRAM) {
                    assert!(
                        !held.contains(&f),
                        "case {case} op {op}: frame {f} handed out twice"
                    );
                    held.push(f);
                }
            } else {
                let f = held.pop().unwrap();
                m.free_frame(f).unwrap();
            }
            assert_eq!(
                m.socket(SocketId::DRAM).frames_in_use(),
                held.len() as u64,
                "case {case} op {op}"
            );
        }
    }
}

/// socket_of_line agrees with the frame partition for any frame handed out
/// by either socket.
#[test]
fn line_routing_matches_frame_owner() {
    let mut rng = DeterministicRng::seeded(0x7261_6e64_0004);
    for case in 0..128 {
        let mut m = mem();
        let socket = if rng.chance(0.5) {
            SocketId::PCM
        } else {
            SocketId::DRAM
        };
        let line_in_page = rng.below(64);
        let f = m.allocate_frame(socket).unwrap();
        let line = hemu_types::LineAddr::new(f.phys_base().line().raw() + line_in_page);
        assert_eq!(m.socket_of_line(line), socket, "case {case}");
    }
}
