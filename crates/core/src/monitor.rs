//! The write-rate monitor: the platform's `pcm-memory` equivalent.
//!
//! The paper samples Intel uncore counters with a modified `pcm-memory`
//! utility running on socket 0. Here the monitor snapshots the simulated
//! controllers' counters at fixed virtual-time intervals, yielding a write
//! rate series per socket plus whole-run averages. Because the counters
//! are exact, the monitor has no sampling noise — one of the advantages of
//! emulating the emulator.

use hemu_machine::Machine;
use hemu_obs::json::{JsonObject, ToJson};
use hemu_obs::TraceEvent;
use hemu_types::{ByteSize, SocketId};

/// One monitor sample: interval rates in MB/s (decimal megabytes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateSample {
    /// Virtual time at the end of the interval, seconds.
    pub t_seconds: f64,
    /// PCM write rate over the interval.
    pub pcm_write_mbs: f64,
    /// DRAM write rate over the interval.
    pub dram_write_mbs: f64,
}

impl ToJson for RateSample {
    fn write_json(&self, out: &mut String) {
        let mut obj = JsonObject::new(out);
        obj.field("t_seconds", &self.t_seconds)
            .field("pcm_write_mbs", &self.pcm_write_mbs)
            .field("dram_write_mbs", &self.dram_write_mbs);
        obj.finish();
    }
}

/// Samples socket write counters over virtual time.
#[derive(Debug, Clone)]
pub struct WriteRateMonitor {
    interval_seconds: f64,
    next_sample_at: f64,
    last_t: f64,
    last_pcm: ByteSize,
    last_dram: ByteSize,
    samples: Vec<RateSample>,
}

impl WriteRateMonitor {
    /// Creates a monitor sampling every `interval_seconds` of virtual time.
    ///
    /// # Panics
    ///
    /// Panics if the interval is not positive.
    pub fn new(interval_seconds: f64) -> Self {
        assert!(interval_seconds > 0.0, "sampling interval must be positive");
        WriteRateMonitor {
            interval_seconds,
            next_sample_at: interval_seconds,
            last_t: 0.0,
            last_pcm: ByteSize::ZERO,
            last_dram: ByteSize::ZERO,
            samples: Vec::new(),
        }
    }

    /// Polls the machine; records a sample if an interval has elapsed.
    /// Call this between workload quanta.
    pub fn poll(&mut self, machine: &Machine) {
        let now = machine.elapsed_seconds();
        while now >= self.next_sample_at {
            self.record(machine, self.next_sample_at.min(now));
            self.next_sample_at += self.interval_seconds;
        }
    }

    /// Forces a final sample at the current time (end of the run).
    pub fn finish(&mut self, machine: &Machine) {
        let now = machine.elapsed_seconds();
        if now > self.last_t {
            self.record(machine, now);
        }
    }

    fn record(&mut self, machine: &Machine, t: f64) {
        let pcm = machine.socket_writes(SocketId::PCM);
        let dram = machine.socket_writes(SocketId::DRAM);
        let dt = t - self.last_t;
        if dt <= 0.0 {
            return;
        }
        let sample = RateSample {
            t_seconds: t,
            pcm_write_mbs: (pcm.bytes() - self.last_pcm.bytes()) as f64 / 1e6 / dt,
            dram_write_mbs: (dram.bytes() - self.last_dram.bytes()) as f64 / 1e6 / dt,
        };
        machine.obs().tracer.record(
            machine.elapsed(),
            TraceEvent::MonitorSample {
                t_seconds: sample.t_seconds,
                pcm_write_mbs: sample.pcm_write_mbs,
                dram_write_mbs: sample.dram_write_mbs,
            },
        );
        machine.publish_metrics();
        self.samples.push(sample);
        self.last_t = t;
        self.last_pcm = pcm;
        self.last_dram = dram;
    }

    /// The recorded samples.
    pub fn samples(&self) -> &[RateSample] {
        &self.samples
    }

    /// Consumes the monitor, returning its samples.
    pub fn into_samples(self) -> Vec<RateSample> {
        self.samples
    }

    /// Peak interval PCM write rate seen so far (MB/s).
    pub fn peak_pcm_rate(&self) -> f64 {
        self.samples
            .iter()
            .map(|s| s.pcm_write_mbs)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hemu_machine::{CtxId, MachineProfile, ProcId};
    use hemu_types::{Addr, MemoryAccess};

    #[test]
    fn monitor_records_interval_rates() {
        let mut m = Machine::new(MachineProfile::emulation());
        let p = m.add_process(SocketId::PCM);
        let mut mon = WriteRateMonitor::new(0.0005);
        // Write 8 MiB (beyond LLC) to the PCM socket.
        m.access(CtxId(0), p, MemoryAccess::write(Addr::new(0), 8 << 20))
            .unwrap();
        m.flush_caches().unwrap();
        mon.poll(&m);
        mon.finish(&m);
        assert!(!mon.samples().is_empty());
        let total: f64 = mon
            .samples()
            .iter()
            .zip(std::iter::once(0.0).chain(mon.samples().iter().map(|s| s.t_seconds)))
            .map(|(s, prev)| s.pcm_write_mbs * (s.t_seconds - prev))
            .sum();
        // Integrated rate ≈ total bytes written.
        let expected = m.socket_writes(SocketId::PCM).bytes() as f64 / 1e6;
        assert!(
            (total - expected).abs() < expected * 0.05,
            "{total} vs {expected}"
        );
    }

    #[test]
    fn finish_samples_the_tail() {
        let mut m = Machine::new(MachineProfile::emulation());
        let p = m.add_process(SocketId::PCM);
        let mut mon = WriteRateMonitor::new(1e9); // never fires on its own
        m.access(CtxId(0), p, MemoryAccess::write(Addr::new(0), 1 << 20))
            .unwrap();
        m.flush_caches().unwrap();
        mon.finish(&m);
        assert_eq!(mon.samples().len(), 1);
        assert!(mon.peak_pcm_rate() > 0.0);
        let _ = ProcId(0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_rejected() {
        let _ = WriteRateMonitor::new(0.0);
    }
}
