//! The emulation platform: configure and run hybrid-memory experiments.
//!
//! This crate is the top of the stack — the equivalent of the paper's
//! measurement harness. An [`Experiment`] names a workload, a collector
//! configuration, an instance count (for multiprogrammed workloads), a
//! machine profile (emulation vs simulation) and a seed; running it:
//!
//! 1. builds the machine and one process + heap + workload per instance;
//! 2. runs a **warm-up iteration** (replay compilation's first iteration);
//! 3. synchronizes all instances at a **barrier**, resets the
//!    memory-controller counters, clocks and cache statistics;
//! 4. runs the **measured iteration**, interleaving instance quanta on the
//!    shared cache hierarchy while the write-rate [`monitor`] samples the
//!    PCM socket's counters;
//! 5. flushes the caches and produces a [`RunReport`].
//!
//! # Examples
//!
//! ```no_run
//! use hemu_core::Experiment;
//! use hemu_heap::CollectorKind;
//! use hemu_workloads::WorkloadSpec;
//!
//! let report = Experiment::new(WorkloadSpec::by_name("lusearch").unwrap())
//!     .collector(CollectorKind::KgW)
//!     .instances(2)
//!     .run()?;
//! println!("PCM writes: {}, rate {:.1} MB/s", report.pcm_writes, report.pcm_write_rate_mbs);
//! # Ok::<(), hemu_types::HemuError>(())
//! ```

#![warn(missing_docs)]

pub mod experiment;
pub mod lifetime;
pub mod monitor;
pub mod report;
pub mod restore;

pub use experiment::{Experiment, RunArtifacts};
pub use lifetime::{lifetime_years, LifetimeModel};
pub use monitor::{RateSample, WriteRateMonitor};
pub use report::{
    ConsolidationSummary, EnduranceSummary, PageWear, ProvenanceSummary, RunReport, TenantShare,
    WearSummary,
};
pub use restore::restore_run_report;
