//! The PCM lifetime model of §VI.G.
//!
//! Lifetime in years before failure, assuming wear-levelling:
//!
//! ```text
//! Y = (S × E) / (B × 2²⁵)
//! ```
//!
//! with `S` the PCM capacity in bytes, `E` the cell endurance in writes,
//! `B` the application write rate in bytes/second, and 2²⁵ ≈ seconds per
//! year. Perfect wear-levelling is unrealistic; the paper assumes hardware
//! wear-levelling within 50 % of the theoretical maximum (Start-Gap), so
//! the default model halves the ideal lifetime.

use hemu_types::ByteSize;

/// The three PCM endurance prototypes of Table III (writes per cell).
pub const ENDURANCE_PROTOTYPES: [u64; 3] = [10_000_000, 30_000_000, 50_000_000];

/// Parameters of the lifetime estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LifetimeModel {
    /// PCM main-memory capacity (32 GB in the paper).
    pub capacity: ByteSize,
    /// Cell endurance in writes.
    pub endurance: u64,
    /// Wear-levelling efficiency in `(0, 1]` (0.5 in the paper).
    pub wear_levelling_efficiency: f64,
}

impl LifetimeModel {
    /// The paper's configuration for one endurance prototype.
    pub fn paper(endurance: u64) -> Self {
        LifetimeModel {
            capacity: ByteSize::from_gib(32),
            endurance,
            wear_levelling_efficiency: 0.5,
        }
    }

    /// Lifetime in years at the given write rate (bytes per second).
    ///
    /// Returns infinity for a zero write rate.
    pub fn years(&self, write_rate_bytes_per_sec: f64) -> f64 {
        lifetime_years(
            self.capacity,
            self.endurance,
            write_rate_bytes_per_sec,
            self.wear_levelling_efficiency,
        )
    }
}

/// Equation 1: `Y = S × E / (B × 2²⁵)`, scaled by the wear-levelling
/// efficiency.
///
/// # Panics
///
/// Panics if `wear_levelling_efficiency` is outside `(0, 1]`.
pub fn lifetime_years(
    capacity: ByteSize,
    endurance_writes_per_cell: u64,
    write_rate_bytes_per_sec: f64,
    wear_levelling_efficiency: f64,
) -> f64 {
    assert!(
        wear_levelling_efficiency > 0.0 && wear_levelling_efficiency <= 1.0,
        "wear-levelling efficiency must be in (0, 1]"
    );
    if write_rate_bytes_per_sec <= 0.0 {
        return f64::INFINITY;
    }
    let ideal = capacity.bytes() as f64 * endurance_writes_per_cell as f64
        / (write_rate_bytes_per_sec * 2f64.powi(25));
    ideal * wear_levelling_efficiency
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_papers_order_of_magnitude() {
        // A 160 MB/s worst-case write rate with 10 M endurance and 50 %
        // wear levelling gives a ~30-year ideal halved to ~15; the paper's
        // Table III single-program worst case is 10 years at a somewhat
        // higher rate.
        let y = lifetime_years(ByteSize::from_gib(32), 10_000_000, 160e6, 0.5);
        assert!((y - 32.0).abs() < 3.0, "y = {y}");
    }

    #[test]
    fn lifetime_scales_linearly_with_endurance_and_inverse_with_rate() {
        let base = lifetime_years(ByteSize::from_gib(32), 10_000_000, 100e6, 0.5);
        let tripled = lifetime_years(ByteSize::from_gib(32), 30_000_000, 100e6, 0.5);
        let faster = lifetime_years(ByteSize::from_gib(32), 10_000_000, 200e6, 0.5);
        assert!((tripled / base - 3.0).abs() < 1e-9);
        assert!((faster / base - 0.5).abs() < 1e-9);
    }

    #[test]
    fn zero_rate_never_wears_out() {
        assert!(lifetime_years(ByteSize::from_gib(32), 10_000_000, 0.0, 0.5).is_infinite());
    }

    #[test]
    fn perfect_wear_levelling_doubles_the_paper_model() {
        let paper = LifetimeModel::paper(10_000_000).years(140e6);
        let perfect = lifetime_years(ByteSize::from_gib(32), 10_000_000, 140e6, 1.0);
        assert!((perfect / paper - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "efficiency")]
    fn efficiency_must_be_positive() {
        let _ = lifetime_years(ByteSize::from_gib(32), 1, 1.0, 0.0);
    }
}
