//! Experiment configuration and the multiprogrammed runner.

use crate::monitor::WriteRateMonitor;
use crate::report::{PageWear, ProvenanceSummary, RunReport};
use hemu_fault::{EnduranceConfig, FaultPlan};
use hemu_heap::chunks::ChunkPolicy;
use hemu_heap::{CollectorKind, GcStats, ManagedHeap};
use hemu_machine::{CtxId, Machine, MachineProfile};
use hemu_malloc::{NativeHeap, NativeStats};
use hemu_obs::{SpanRecord, TraceRecord, Tracer};
use hemu_os::OsPageManager;
use hemu_types::{
    AccessPath, ByteSize, HemuError, OsPagingConfig, Result, SocketId, SpaceTag, SubmitMode,
    WriteCause, CACHE_LINE, PAGE_SIZE,
};
use hemu_workloads::{Language, Memory, StepResult, Workload, WorkloadSpec};

/// Everything one profiled run produces beyond the report: the event
/// trace, the profiler's span records (virtual-time GC phases, OS epochs
/// and the measured iteration), the per-page PCM wear heatmap, and the
/// clock frequency needed to convert span cycles to seconds.
#[derive(Debug, Clone)]
pub struct RunArtifacts {
    /// The measured iteration's report.
    pub report: RunReport,
    /// Captured trace events (empty unless tracing was requested).
    pub trace: Vec<TraceRecord>,
    /// Closed profiler spans, oldest first (empty unless profiling).
    pub spans: Vec<SpanRecord>,
    /// Per-PCM-frame wear rows sorted by frame number (empty unless the
    /// run tracked wear).
    pub heatmap: Vec<PageWear>,
    /// The machine's clock frequency in Hz (for cycle → time conversion).
    pub freq_hz: f64,
    /// The measured iteration's total virtual time in cycles (the run's
    /// extent on an exported timeline).
    pub elapsed: hemu_types::Cycles,
}

/// A configured experiment: workload × collector × instances × machine.
///
/// Built with a fluent API and executed with [`Experiment::run`], which
/// follows the paper's measurement methodology (replay compilation:
/// warm-up iteration, barrier, measured iteration; §IV).
#[derive(Debug, Clone)]
pub struct Experiment {
    spec: WorkloadSpec,
    collector: CollectorKind,
    instances: usize,
    profile: MachineProfile,
    seed: u64,
    chunk_policy: ChunkPolicy,
    warmup: bool,
    monitor_interval: f64,
    nursery_override: Option<ByteSize>,
    track_wear: bool,
    profiling: bool,
    faults: Option<FaultPlan>,
    endurance: Option<EnduranceConfig>,
    os: Option<OsPagingConfig>,
    access_path: AccessPath,
    intra_threads: usize,
    submit_mode: SubmitMode,
}

impl Experiment {
    /// Creates an experiment with the paper's defaults: one instance,
    /// PCM-Only collector, the emulation machine profile.
    pub fn new(spec: WorkloadSpec) -> Self {
        Experiment {
            spec,
            collector: CollectorKind::PcmOnly,
            instances: 1,
            profile: MachineProfile::emulation(),
            seed: 42,
            chunk_policy: ChunkPolicy::TwoLists,
            warmup: true,
            monitor_interval: 0.01,
            nursery_override: None,
            track_wear: false,
            profiling: false,
            faults: None,
            endurance: None,
            os: None,
            access_path: AccessPath::default(),
            intra_threads: 1,
            submit_mode: SubmitMode::default(),
        }
    }

    /// Selects the machine's access-path implementation (scalar reference
    /// loop vs the batched set-sharded pipeline). Both produce identical
    /// reports; the default is [`AccessPath::Batched`].
    pub fn access_path(mut self, path: AccessPath) -> Self {
        self.access_path = path;
        self
    }

    /// Sets the worker-thread count for intra-run batch resolution
    /// (clamped to at least 1). Purely a wall-clock knob: artifacts are
    /// byte-identical at any value.
    pub fn intra_threads(mut self, threads: usize) -> Self {
        self.intra_threads = threads.max(1);
        self
    }

    /// Selects how runtime layers hand traffic to the machine: buffered
    /// deferred submission (the fast default) or immediate per-call
    /// resolution. Both produce byte-identical reports and artifacts; the
    /// scalar mode is the executable specification deferral is verified
    /// against.
    pub fn submit_mode(mut self, mode: SubmitMode) -> Self {
        self.submit_mode = mode;
        self
    }

    /// Enables per-line PCM wear tracking; the report then carries a
    /// measured wear-levelling efficiency instead of the paper's assumed
    /// 50 %.
    pub fn track_wear(mut self) -> Self {
        self.track_wear = true;
        self
    }

    /// Enables the phase-and-provenance profiler: GC-phase and OS-epoch
    /// spans in virtual time, per-cause / per-space write attribution
    /// ([`RunReport::provenance`]), and the per-page wear heatmap (implies
    /// wear tracking). Retrieve the extra artifacts with
    /// [`Experiment::run_full`].
    pub fn profiling(mut self) -> Self {
        self.profiling = true;
        self.track_wear = true;
        self
    }

    /// Installs a deterministic fault-injection plan. An inert plan
    /// ([`FaultPlan::is_inert`]) is not installed at all, so a run with
    /// `FaultPlan::none()` is bit-identical to one without this call.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = if plan.is_inert() { None } else { Some(plan) };
        self
    }

    /// Enables the PCM wear/endurance model: per-line write budgets, cell
    /// failure, page retirement and transparent remapping. Implies wear
    /// tracking.
    pub fn endurance(mut self, cfg: EnduranceConfig) -> Self {
        self.endurance = Some(cfg);
        self
    }

    /// Overrides the suite's base nursery size (nursery-sensitivity
    /// studies; the KG-B configurations still scale it 3×).
    pub fn nursery(mut self, nursery: ByteSize) -> Self {
        self.nursery_override = Some(nursery);
        self
    }

    /// Hands page placement to an OS page manager instead of the GC: the
    /// paper's kernel-side baseline, where first-touch placement and (for
    /// [`hemu_os::OsPolicy::HotCold`]) epoch-driven hot-page migration
    /// decide which socket each page lives on.
    ///
    /// OS-managed runs keep the PCM-Only collector (the heap layout the OS
    /// baseline sees is placement-neutral); combining OS paging with a
    /// write-rationing collector is rejected at [`Experiment::run`].
    pub fn os_paging(mut self, cfg: OsPagingConfig) -> Self {
        self.os = Some(cfg);
        self
    }

    /// Sets the collector configuration.
    pub fn collector(mut self, collector: CollectorKind) -> Self {
        self.collector = collector;
        self
    }

    /// Sets the number of co-running instances (multiprogramming).
    pub fn instances(mut self, instances: usize) -> Self {
        self.instances = instances;
        self
    }

    /// Sets the machine profile (emulation vs simulation, LLC size, …).
    pub fn profile(mut self, profile: MachineProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Sets the random seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the chunk free-list policy (ablation).
    pub fn chunk_policy(mut self, policy: ChunkPolicy) -> Self {
        self.chunk_policy = policy;
        self
    }

    /// Disables the warm-up iteration (quick tests only — measured results
    /// then include cold-start effects).
    pub fn without_warmup(mut self) -> Self {
        self.warmup = false;
        self
    }

    /// Sets the write-rate monitor's sampling interval in virtual seconds.
    pub fn monitor_interval(mut self, seconds: f64) -> Self {
        self.monitor_interval = seconds;
        self
    }

    /// Runs the experiment to completion.
    ///
    /// # Errors
    ///
    /// Returns [`HemuError::InvalidConfig`] for inconsistent
    /// configurations (zero instances, more instances than hardware
    /// contexts, or a C++ workload with a hybrid collector — the paper
    /// evaluates the C++ implementations on the PCM-Only reference
    /// system), and propagates heap or machine exhaustion.
    pub fn run(&self) -> Result<RunReport> {
        self.run_traced(Tracer::disabled()).map(|a| a.report)
    }

    /// Runs the experiment and returns the full artifact bundle: report,
    /// profiler spans and the wear heatmap ([`RunArtifacts`]). Spans and
    /// heatmap are empty unless [`Experiment::profiling`] (or
    /// [`Experiment::track_wear`], for the heatmap) was requested.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Experiment::run`].
    pub fn run_full(&self) -> Result<RunArtifacts> {
        self.run_traced(Tracer::disabled())
    }

    /// Runs the experiment with event tracing enabled for the measured
    /// iteration, returning the report together with the captured trace.
    ///
    /// The tracer is installed at the start of the measured iteration, so
    /// warm-up activity never appears in the trace; `capacity` bounds the
    /// number of retained records (the oldest are dropped beyond it).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Experiment::run`].
    pub fn run_with_trace(&self, capacity: usize) -> Result<(RunReport, Vec<TraceRecord>)> {
        self.run_traced(Tracer::bounded(capacity))
            .map(|a| (a.report, a.trace))
    }

    /// Runs the experiment with an explicit tracer and returns the full
    /// artifact bundle — the general form behind [`Experiment::run`],
    /// [`Experiment::run_full`] and [`Experiment::run_with_trace`], for
    /// callers (like the bench harness) that want both the event trace and
    /// the profiler's artifacts from a single run.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Experiment::run`].
    pub fn run_traced(&self, tracer: Tracer) -> Result<RunArtifacts> {
        if self.instances == 0 {
            return Err(HemuError::InvalidConfig(
                "need at least one instance".into(),
            ));
        }
        if self.instances > self.profile.contexts {
            return Err(HemuError::InvalidConfig(format!(
                "{} instances exceed the profile's {} hardware contexts",
                self.instances, self.profile.contexts
            )));
        }
        if self.spec.language == Language::Cpp && self.collector != CollectorKind::PcmOnly {
            return Err(HemuError::InvalidConfig(
                "C++ workloads run on the PCM-Only reference system".into(),
            ));
        }
        if self.os.is_some() && self.collector != CollectorKind::PcmOnly {
            return Err(HemuError::InvalidConfig(
                "OS-managed placement replaces write-rationing: use the \
                 PCM-Only collector with an OS policy"
                    .into(),
            ));
        }

        let mut machine = Machine::new(self.profile);
        machine.set_access_path(self.access_path);
        machine.set_intra_threads(self.intra_threads);
        machine.set_submit_mode(self.submit_mode);
        // The OS page manager installs before anything touches memory, so
        // even heap metadata is placed (and sampled) under its policy.
        let mut os_mgr = self.os.map(|cfg| OsPageManager::install(&mut machine, cfg));
        if self.track_wear || self.profiling {
            machine.enable_wear_tracking();
        }
        if self.profiling {
            machine.enable_profiling();
        }
        if let Some(cfg) = self.endurance {
            machine.enable_endurance(cfg);
        }
        if let Some(plan) = &self.faults {
            machine.install_faults(plan.clone());
        }
        let mut instances: Vec<(Box<dyn Workload>, Memory)> = Vec::new();
        for i in 0..self.instances {
            let workload = self.spec.instantiate(self.seed);
            let ctx = CtxId(i % machine.contexts());
            let mem = match self.spec.language {
                Language::Java => {
                    let nursery = self.nursery_override.unwrap_or(workload.base_nursery());
                    let cfg = self.collector.config(nursery, workload.heap_size());
                    let proc = machine.add_process(cfg.young_socket());
                    if let Some(os) = &os_mgr {
                        os.attach_process(&mut machine, proc);
                    }
                    Memory::managed(ManagedHeap::with_chunk_policy(
                        &mut machine,
                        proc,
                        ctx,
                        cfg,
                        self.chunk_policy,
                    )?)
                }
                Language::Cpp => {
                    let proc = machine.add_process(SocketId::PCM);
                    if let Some(os) = &os_mgr {
                        os.attach_process(&mut machine, proc);
                    }
                    Memory::native(NativeHeap::new(&mut machine, proc, ctx, SocketId::PCM))
                }
            };
            instances.push((workload, mem));
        }

        // Warm-up iteration (replay compilation's compile iteration). The
        // OS manager is polled here too, so hot pages migrate toward their
        // steady-state placement before measurement starts.
        if self.warmup {
            run_iteration(&mut machine, &mut instances, None, os_mgr.as_mut())?;
            // All instances synchronize at a barrier and start the second
            // iteration at the same time (§IV).
            machine.barrier();
            for (w, _) in &mut instances {
                w.start_iteration();
            }
        }

        // Snapshot per-instance stats, then measure the steady iteration.
        // The tracer goes in only now, so the trace covers exactly the
        // measured iteration (metrics are reset at the same point).
        machine.sync_submissions()?;
        machine.set_tracer(tracer);
        machine.start_measured_iteration();
        let gc_before: Vec<Option<GcStats>> = instances
            .iter()
            .map(|(_, m)| m.gc_stats().copied())
            .collect();
        let native_before: Vec<Option<NativeStats>> = instances
            .iter()
            .map(|(_, m)| m.native_stats().copied())
            .collect();
        let alloc_before: u64 = instances.iter().map(|(_, m)| m.allocated_bytes()).sum();

        let mut monitor = WriteRateMonitor::new(self.monitor_interval);
        // The measured iteration is the root profiler span; clocks were
        // just reset, so it opens at virtual zero.
        let spans = machine.spans();
        spans.begin("iteration", "run", hemu_types::Cycles::ZERO);
        run_iteration(
            &mut machine,
            &mut instances,
            Some(&mut monitor),
            os_mgr.as_mut(),
        )?;
        spans.end(machine.elapsed());
        // No cache flush here: the measured iteration starts with warm,
        // dirty caches (steady state after warm-up) and ends the same way,
        // so eviction traffic during the interval is exactly the
        // steady-state write stream `pcm-memory` samples on the real
        // platform. Flushing would mis-attribute the entire resident dirty
        // set to this iteration.
        monitor.finish(&machine);

        // Aggregate.
        let elapsed = machine.elapsed_seconds();
        let pcm_writes = machine.socket_writes(SocketId::PCM);
        let gc = aggregate_gc(&instances, &gc_before);
        let native = aggregate_native(&instances, &native_before);
        let allocated = instances
            .iter()
            .map(|(_, m)| m.allocated_bytes())
            .sum::<u64>()
            - alloc_before;

        machine.publish_metrics();
        let trace = machine.obs().tracer.drain();
        let gc_pause_histogram = machine
            .obs()
            .metrics
            .histogram_snapshot("gc.pause_cycles")
            .filter(|h| h.count > 0);
        let provenance = machine.profiling_enabled().then(|| {
            let m = &machine.obs().metrics;
            let spans = &machine.obs().spans;
            ProvenanceSummary {
                pcm_by_cause: WriteCause::ALL
                    .map(|c| m.counter_value(&format!("writes.by_cause.{}", c.name()))),
                pcm_by_space: SpaceTag::ALL
                    .map(|s| m.counter_value(&format!("writes.by_space.{}", s.name()))),
                dram_by_cause: WriteCause::ALL
                    .map(|c| m.counter_value(&format!("writes.dram.by_cause.{}", c.name()))),
                dram_by_space: SpaceTag::ALL
                    .map(|s| m.counter_value(&format!("writes.dram.by_space.{}", s.name()))),
                spans_recorded: spans.len() as u64 + spans.dropped(),
                spans_dropped: spans.dropped(),
            }
        });
        let heatmap = build_heatmap(&machine);

        let report = RunReport {
            workload: format!("{}", self.spec),
            // OS-managed runs are keyed by the placement policy: that is
            // the design point being swept, not the (neutral) collector.
            collector: if let Some(cfg) = self.os {
                cfg.policy.name().into()
            } else if self.spec.language == Language::Cpp {
                "malloc".into()
            } else {
                self.collector.name().into()
            },
            profile: self.profile.name.into(),
            instances: self.instances,
            pcm_writes,
            pcm_reads: machine.socket_reads(SocketId::PCM),
            dram_writes: machine.socket_writes(SocketId::DRAM),
            dram_reads: machine.socket_reads(SocketId::DRAM),
            elapsed_seconds: elapsed,
            pcm_write_rate_mbs: if elapsed > 0.0 {
                pcm_writes.bytes() as f64 / 1e6 / elapsed
            } else {
                0.0
            },
            allocated: ByteSize::new(allocated),
            gc,
            native,
            machine: *machine.stats(),
            samples: monitor.into_samples(),
            wear: machine.memory().wear().map(|w| crate::report::WearSummary {
                pcm_lines_touched: w.lines_touched() as u64,
                max_line_writes: w.max_line_writes(),
                levelling_efficiency: w
                    .levelling_efficiency(self.profile.numa.capacity_per_socket.bytes() / 64),
            }),
            endurance: self.endurance.map(|cfg| crate::report::EnduranceSummary {
                budget_writes: cfg.budget_writes,
                failed_lines: machine.memory().failed_lines(),
                retired_pages: machine.memory().retired_pages(SocketId::PCM),
                remapped_pages: machine.pages_remapped(),
                effective_capacity: machine.memory().effective_capacity(SocketId::PCM),
            }),
            gc_pause_histogram,
            os_paging: os_mgr.as_ref().map(OsPageManager::stats),
            provenance,
            consolidation: None,
        };
        Ok(RunArtifacts {
            report,
            trace,
            spans: machine.obs().spans.snapshot(),
            heatmap,
            freq_hz: self.profile.freq_hz as f64,
            elapsed: machine.elapsed(),
        })
    }
}

/// Aggregates the per-line wear tracker into per-frame heatmap rows,
/// sorted by frame number (deterministic regardless of hash-map iteration
/// order). Empty when wear tracking is off.
fn build_heatmap(machine: &Machine) -> Vec<PageWear> {
    let Some(wear) = machine.memory().wear() else {
        return Vec::new();
    };
    let lines_per_page = (PAGE_SIZE / CACHE_LINE) as u64;
    let mut pages: std::collections::BTreeMap<u64, PageWear> = std::collections::BTreeMap::new();
    for (line, count) in wear.histogram() {
        let frame = line.raw() / lines_per_page;
        let row = pages.entry(frame).or_insert(PageWear {
            frame,
            writes: 0,
            lines_touched: 0,
            max_line_writes: 0,
        });
        row.writes += count;
        row.lines_touched += 1;
        row.max_line_writes = row.max_line_writes.max(count);
    }
    pages.into_values().collect()
}

/// Round-robin scheduler: one quantum per running instance per round, so
/// co-running instances interleave in the shared LLC. Instances that
/// finish are not restarted (§IV).
fn run_iteration(
    machine: &mut Machine,
    instances: &mut [(Box<dyn Workload>, Memory)],
    mut monitor: Option<&mut WriteRateMonitor>,
    mut os: Option<&mut OsPageManager>,
) -> Result<()> {
    let mut done = vec![false; instances.len()];
    let mut remaining = instances.len();
    // A generous runaway bound: no experiment needs this many quanta.
    let mut fuel: u64 = 50_000_000;
    while remaining > 0 {
        for (i, (w, mem)) in instances.iter_mut().enumerate() {
            if done[i] {
                continue;
            }
            if w.step(machine, mem)? == StepResult::IterationDone {
                done[i] = true;
                remaining -= 1;
            }
            fuel -= 1;
            if fuel == 0 {
                return Err(HemuError::InvalidConfig(
                    "workload did not terminate within the quantum budget".into(),
                ));
            }
        }
        // A scheduler round edge is a safe point: deferred submissions
        // flush before anything samples clocks or counters, so the
        // monitor and the OS migrator observe exactly the state the
        // scalar submission path would show them.
        machine.sync_submissions()?;
        if let Some(mon) = monitor.as_deref_mut() {
            mon.poll(machine);
        }
        // The OS migrator ticks at scheduler-round granularity, like a
        // kernel balancing pass between time slices.
        if let Some(os) = os.as_deref_mut() {
            os.poll(machine)?;
        }
    }
    Ok(())
}

fn aggregate_gc(
    instances: &[(Box<dyn Workload>, Memory)],
    before: &[Option<GcStats>],
) -> Option<GcStats> {
    let mut any = false;
    let mut total = GcStats::default();
    for ((_, mem), earlier) in instances.iter().zip(before) {
        if let Some(stats) = mem.gc_stats() {
            any = true;
            let delta = diff_gc(stats, earlier.as_ref().unwrap_or(&GcStats::default()));
            total = add_gc(&total, &delta);
        }
    }
    any.then_some(total)
}

fn diff_gc(now: &GcStats, then: &GcStats) -> GcStats {
    GcStats {
        minor_gcs: now.minor_gcs - then.minor_gcs,
        observer_gcs: now.observer_gcs - then.observer_gcs,
        full_gcs: now.full_gcs - then.full_gcs,
        pause_cycles: now.pause_cycles - then.pause_cycles,
        allocated_bytes: now.allocated_bytes - then.allocated_bytes,
        allocated_objects: now.allocated_objects - then.allocated_objects,
        large_allocated_bytes: now.large_allocated_bytes - then.large_allocated_bytes,
        loo_nursery_large: now.loo_nursery_large - then.loo_nursery_large,
        copied_minor_bytes: now.copied_minor_bytes - then.copied_minor_bytes,
        copied_observer_bytes: now.copied_observer_bytes - then.copied_observer_bytes,
        promoted_dram_objects: now.promoted_dram_objects - then.promoted_dram_objects,
        promoted_pcm_objects: now.promoted_pcm_objects - then.promoted_pcm_objects,
        large_rescued: now.large_rescued - then.large_rescued,
        mark_writes: now.mark_writes - then.mark_writes,
        remset_entries: now.remset_entries - then.remset_entries,
        monitor_marks: now.monitor_marks - then.monitor_marks,
    }
}

fn add_gc(a: &GcStats, b: &GcStats) -> GcStats {
    GcStats {
        minor_gcs: a.minor_gcs + b.minor_gcs,
        observer_gcs: a.observer_gcs + b.observer_gcs,
        full_gcs: a.full_gcs + b.full_gcs,
        pause_cycles: a.pause_cycles + b.pause_cycles,
        allocated_bytes: a.allocated_bytes + b.allocated_bytes,
        allocated_objects: a.allocated_objects + b.allocated_objects,
        large_allocated_bytes: a.large_allocated_bytes + b.large_allocated_bytes,
        loo_nursery_large: a.loo_nursery_large + b.loo_nursery_large,
        copied_minor_bytes: a.copied_minor_bytes + b.copied_minor_bytes,
        copied_observer_bytes: a.copied_observer_bytes + b.copied_observer_bytes,
        promoted_dram_objects: a.promoted_dram_objects + b.promoted_dram_objects,
        promoted_pcm_objects: a.promoted_pcm_objects + b.promoted_pcm_objects,
        large_rescued: a.large_rescued + b.large_rescued,
        mark_writes: a.mark_writes + b.mark_writes,
        remset_entries: a.remset_entries + b.remset_entries,
        monitor_marks: a.monitor_marks + b.monitor_marks,
    }
}

fn aggregate_native(
    instances: &[(Box<dyn Workload>, Memory)],
    before: &[Option<NativeStats>],
) -> Option<NativeStats> {
    let mut any = false;
    let mut total = NativeStats::default();
    for ((_, mem), earlier) in instances.iter().zip(before) {
        if let Some(stats) = mem.native_stats() {
            any = true;
            let then = earlier.unwrap_or_default();
            total.allocated_bytes += stats.allocated_bytes - then.allocated_bytes;
            total.allocated_objects += stats.allocated_objects - then.allocated_objects;
            total.freed_bytes += stats.freed_bytes - then.freed_bytes;
            total.in_use += stats.in_use;
            total.peak += stats.peak;
        }
    }
    any.then_some(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_instances_is_invalid() {
        let e = Experiment::new(WorkloadSpec::by_name("avrora").unwrap()).instances(0);
        assert!(matches!(e.run(), Err(HemuError::InvalidConfig(_))));
    }

    #[test]
    fn too_many_instances_is_invalid() {
        let e = Experiment::new(WorkloadSpec::by_name("avrora").unwrap()).instances(64);
        assert!(matches!(e.run(), Err(HemuError::InvalidConfig(_))));
    }

    #[test]
    fn cpp_requires_pcm_only() {
        let spec = WorkloadSpec::by_name("pr")
            .unwrap()
            .with_language(Language::Cpp);
        let e = Experiment::new(spec).collector(CollectorKind::KgN);
        assert!(matches!(e.run(), Err(HemuError::InvalidConfig(_))));
    }
}
