//! Experiment results.

use crate::monitor::RateSample;
use hemu_heap::GcStats;
use hemu_machine::MachineStats;
use hemu_malloc::NativeStats;
use hemu_obs::json::{JsonObject, ToJson};
use hemu_obs::HistogramSnapshot;
use hemu_os::OsStats;
use hemu_types::{ByteSize, SpaceTag, WriteCause};
use std::fmt;

/// Everything measured during one experiment's measured iteration.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Workload display name (`pr.cpp.large`, `lusearch`, …).
    pub workload: String,
    /// Collector name (`KG-W`, `PCM-Only`, …; `malloc` for native runs).
    pub collector: String,
    /// Machine profile name (`emulation` or `simulation`).
    pub profile: String,
    /// Number of co-running instances.
    pub instances: usize,
    /// Bytes written at the PCM socket's controller — the headline metric.
    pub pcm_writes: ByteSize,
    /// Bytes read at the PCM socket.
    pub pcm_reads: ByteSize,
    /// Bytes written at the DRAM socket.
    pub dram_writes: ByteSize,
    /// Bytes read at the DRAM socket.
    pub dram_reads: ByteSize,
    /// Virtual elapsed time of the measured iteration, in seconds.
    pub elapsed_seconds: f64,
    /// Average PCM write rate in MB/s (decimal megabytes, as the paper and
    /// `pcm-memory` report).
    pub pcm_write_rate_mbs: f64,
    /// Total bytes the applications allocated during the measured
    /// iteration.
    pub allocated: ByteSize,
    /// Aggregated GC statistics (managed runs).
    pub gc: Option<GcStats>,
    /// Aggregated native allocator statistics (C++ runs).
    pub native: Option<NativeStats>,
    /// Machine-level statistics.
    pub machine: MachineStats,
    /// Interval samples from the write-rate monitor.
    pub samples: Vec<RateSample>,
    /// Measured PCM wear statistics (present when the experiment enabled
    /// wear tracking).
    pub wear: Option<WearSummary>,
    /// PCM endurance outcome (present when the experiment enabled the
    /// endurance model).
    pub endurance: Option<EnduranceSummary>,
    /// Distribution of stop-the-world GC pauses (virtual cycles) over the
    /// measured iteration, from the `gc.pause_cycles` metric.
    pub gc_pause_histogram: Option<HistogramSnapshot>,
    /// OS page-manager activity (present when the run was placed by an
    /// [`hemu_os::OsPolicy`] instead of a write-rationing collector).
    pub os_paging: Option<OsStats>,
    /// Write-provenance breakdown (present when the experiment enabled
    /// profiling).
    pub provenance: Option<ProvenanceSummary>,
    /// Per-tenant write shares (present when the run co-scheduled
    /// multiple tenants via `hemu-tenant`).
    pub consolidation: Option<ConsolidationSummary>,
}

/// Per-tenant attribution of a consolidated (multi-tenant) run: who wrote
/// how much at each memory controller, plus enough per-tenant GC/OS
/// context to explain the shares.
///
/// Tenant line counts plus the `unattributed_*` buckets sum *exactly* to
/// the global controller counters — they are charged at the same
/// accounting point and reset at the same instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConsolidationSummary {
    /// Workload mix name (`dacapo`, `pjbb`, `graphchi`, `mixed`).
    pub mix: String,
    /// Number of co-scheduled tenants (the consolidation density).
    pub tenants: usize,
    /// Hardware contexts the tenants were multiplexed onto.
    pub contexts: usize,
    /// Scheduler slice length in workload steps.
    pub slice: u64,
    /// PCM line writes that hit a frame no tenant owned (0 in a
    /// well-formed run; the CI smoke greps for exactly that).
    pub unattributed_pcm_lines: u64,
    /// DRAM line writes that hit a frame no tenant owned.
    pub unattributed_dram_lines: u64,
    /// One entry per tenant, in tenant-id order.
    pub per_tenant: Vec<TenantShare>,
}

/// One tenant's slice of a consolidated run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantShare {
    /// Tenant id (0-based).
    pub id: usize,
    /// The tenant's workload display name.
    pub workload: String,
    /// PCM controller line writes charged to this tenant.
    pub pcm_write_lines: u64,
    /// DRAM controller line writes charged to this tenant.
    pub dram_write_lines: u64,
    /// Minor (nursery) collections the tenant ran.
    pub minor_gcs: u64,
    /// Full-heap collections the tenant ran.
    pub full_gcs: u64,
    /// Virtual cycles the tenant spent in stop-the-world pauses.
    pub pause_cycles: u64,
    /// Bytes the tenant allocated during the measured iteration.
    pub allocated_bytes: u64,
    /// Demand page faults the tenant's process took.
    pub page_faults: u64,
}

impl ConsolidationSummary {
    /// Total PCM line writes attributed to tenants (excludes the
    /// unattributed bucket).
    pub fn attributed_pcm_lines(&self) -> u64 {
        self.per_tenant.iter().map(|t| t.pcm_write_lines).sum()
    }

    /// Total DRAM line writes attributed to tenants.
    pub fn attributed_dram_lines(&self) -> u64 {
        self.per_tenant.iter().map(|t| t.dram_write_lines).sum()
    }

    /// Mean PCM line writes per tenant — the consolidation figure's
    /// y-axis before normalization.
    pub fn pcm_lines_per_tenant(&self) -> f64 {
        if self.per_tenant.is_empty() {
            0.0
        } else {
            self.attributed_pcm_lines() as f64 / self.per_tenant.len() as f64
        }
    }
}

/// Per-cause / per-space attribution of the measured iteration's memory
/// writes, in cache lines, from the profiler's `writes.by_cause.*` and
/// `writes.by_space.*` counters. Indices follow [`WriteCause::ALL`] and
/// [`SpaceTag::ALL`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProvenanceSummary {
    /// PCM line writes by cause.
    pub pcm_by_cause: [u64; WriteCause::ALL.len()],
    /// PCM line writes by targeted heap space.
    pub pcm_by_space: [u64; SpaceTag::ALL.len()],
    /// DRAM line writes by cause.
    pub dram_by_cause: [u64; WriteCause::ALL.len()],
    /// DRAM line writes by targeted heap space.
    pub dram_by_space: [u64; SpaceTag::ALL.len()],
    /// Spans captured by the profiler over the measured iteration.
    pub spans_recorded: u64,
    /// Spans overwritten because the bounded recorder filled up.
    pub spans_dropped: u64,
}

impl ProvenanceSummary {
    /// PCM line writes attributed to `cause`.
    pub fn pcm_cause(&self, cause: WriteCause) -> u64 {
        self.pcm_by_cause[cause as usize]
    }

    /// PCM line writes attributed to `space`.
    pub fn pcm_space(&self, space: SpaceTag) -> u64 {
        self.pcm_by_space[space as usize]
    }

    /// Total attributed PCM line writes.
    pub fn pcm_total(&self) -> u64 {
        self.pcm_by_cause.iter().sum()
    }

    /// Fraction of PCM line writes attributed to `cause` (0 when there
    /// were none).
    pub fn pcm_cause_fraction(&self, cause: WriteCause) -> f64 {
        let total = self.pcm_total();
        if total == 0 {
            0.0
        } else {
            self.pcm_cause(cause) as f64 / total as f64
        }
    }
}

/// Aggregated wear of one PCM page frame, a row of the per-page wear
/// heatmap CSV.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageWear {
    /// Physical frame number.
    pub frame: u64,
    /// Total line writes absorbed by the frame.
    pub writes: u64,
    /// Distinct lines of the frame written at least once.
    pub lines_touched: u64,
    /// Writes absorbed by the frame's hottest line.
    pub max_line_writes: u64,
}

/// Per-line PCM wear statistics from the opt-in wear tracker.
#[derive(Debug, Clone, Copy)]
pub struct WearSummary {
    /// Distinct PCM lines written during the measured iteration.
    pub pcm_lines_touched: u64,
    /// Writes absorbed by the hottest line.
    pub max_line_writes: u64,
    /// Estimated rotation-levelling efficiency for this write stream in
    /// `(0, 1]` (the paper assumes 0.5).
    pub levelling_efficiency: f64,
}

/// Outcome of the PCM endurance model: how much of the device wore out
/// during the run and what capacity survived.
#[derive(Debug, Clone, Copy)]
pub struct EnduranceSummary {
    /// Configured mean per-line write budget.
    pub budget_writes: u64,
    /// PCM lines that exhausted their budget and failed.
    pub failed_lines: u64,
    /// PCM pages retired because a line in them failed.
    pub retired_pages: u64,
    /// Virtual pages transparently remapped onto replacement frames.
    pub remapped_pages: u64,
    /// PCM capacity still backed by healthy frames.
    pub effective_capacity: ByteSize,
}

impl RunReport {
    /// Total memory writes (both sockets).
    pub fn total_writes(&self) -> ByteSize {
        self.pcm_writes + self.dram_writes
    }

    /// Percentage reduction of PCM writes relative to `baseline`
    /// (positive = fewer writes than the baseline), the metric of
    /// Table II and Fig. 7.
    pub fn pcm_write_reduction_vs(&self, baseline: &RunReport) -> f64 {
        if baseline.pcm_writes.bytes() == 0 {
            return 0.0;
        }
        100.0 * (1.0 - self.pcm_writes.bytes() as f64 / baseline.pcm_writes.bytes() as f64)
    }

    /// PCM writes normalized to `baseline` (Fig. 3 / Fig. 7 style).
    pub fn pcm_writes_normalized_to(&self, baseline: &RunReport) -> f64 {
        if baseline.pcm_writes.bytes() == 0 {
            return f64::INFINITY;
        }
        self.pcm_writes.bytes() as f64 / baseline.pcm_writes.bytes() as f64
    }
}

impl ToJson for WearSummary {
    fn write_json(&self, out: &mut String) {
        let mut obj = JsonObject::new(out);
        obj.field("pcm_lines_touched", &self.pcm_lines_touched)
            .field("max_line_writes", &self.max_line_writes)
            .field("levelling_efficiency", &self.levelling_efficiency);
        obj.finish();
    }
}

impl ToJson for EnduranceSummary {
    fn write_json(&self, out: &mut String) {
        let mut obj = JsonObject::new(out);
        obj.field("budget_writes", &self.budget_writes)
            .field("failed_lines", &self.failed_lines)
            .field("retired_pages", &self.retired_pages)
            .field("remapped_pages", &self.remapped_pages)
            .field("effective_capacity", &self.effective_capacity);
        obj.finish();
    }
}

impl ToJson for TenantShare {
    fn write_json(&self, out: &mut String) {
        let mut obj = JsonObject::new(out);
        obj.field("id", &self.id)
            .field("workload", &self.workload)
            .field("pcm_write_lines", &self.pcm_write_lines)
            .field("dram_write_lines", &self.dram_write_lines)
            .field("minor_gcs", &self.minor_gcs)
            .field("full_gcs", &self.full_gcs)
            .field("pause_cycles", &self.pause_cycles)
            .field("allocated_bytes", &self.allocated_bytes)
            .field("page_faults", &self.page_faults);
        obj.finish();
    }
}

impl ToJson for ConsolidationSummary {
    fn write_json(&self, out: &mut String) {
        let mut obj = JsonObject::new(out);
        obj.field("mix", &self.mix)
            .field("tenants", &self.tenants)
            .field("contexts", &self.contexts)
            .field("slice", &self.slice)
            .field("unattributed_pcm_lines", &self.unattributed_pcm_lines)
            .field("unattributed_dram_lines", &self.unattributed_dram_lines)
            .field("per_tenant", &self.per_tenant);
        obj.finish();
    }
}

impl ToJson for ProvenanceSummary {
    fn write_json(&self, out: &mut String) {
        fn side(out: &mut String, by_cause: &[u64], by_space: &[u64]) {
            let mut obj = JsonObject::new(out);
            obj.raw_field("by_cause", |o| {
                let mut m = JsonObject::new(o);
                for (cause, v) in WriteCause::ALL.iter().zip(by_cause) {
                    m.field(cause.name(), v);
                }
                m.finish();
            });
            obj.raw_field("by_space", |o| {
                let mut m = JsonObject::new(o);
                for (space, v) in SpaceTag::ALL.iter().zip(by_space) {
                    m.field(space.name(), v);
                }
                m.finish();
            });
            obj.finish();
        }
        let mut obj = JsonObject::new(out);
        obj.raw_field("pcm", |o| side(o, &self.pcm_by_cause, &self.pcm_by_space));
        obj.raw_field("dram", |o| {
            side(o, &self.dram_by_cause, &self.dram_by_space)
        });
        obj.field("spans_recorded", &self.spans_recorded)
            .field("spans_dropped", &self.spans_dropped);
        obj.finish();
    }
}

impl ToJson for RunReport {
    fn write_json(&self, out: &mut String) {
        let mut obj = JsonObject::new(out);
        obj.field("workload", &self.workload)
            .field("collector", &self.collector)
            .field("profile", &self.profile)
            .field("instances", &self.instances)
            .field("pcm_writes", &self.pcm_writes)
            .field("pcm_reads", &self.pcm_reads)
            .field("dram_writes", &self.dram_writes)
            .field("dram_reads", &self.dram_reads)
            .field("elapsed_seconds", &self.elapsed_seconds)
            .field("pcm_write_rate_mbs", &self.pcm_write_rate_mbs)
            .field("allocated", &self.allocated)
            .field("gc", &self.gc)
            .field("native", &self.native)
            .field("machine", &self.machine)
            .field("samples", &self.samples)
            .field("wear", &self.wear)
            .field("endurance", &self.endurance)
            .field("gc_pause_histogram", &self.gc_pause_histogram)
            .field("os_paging", &self.os_paging)
            .field("provenance", &self.provenance)
            .field("consolidation", &self.consolidation);
        obj.finish();
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} × {} [{}] on {}: PCM W {} ({:.1} MB/s), R {}; DRAM W {}; {:.3}s virtual",
            self.instances,
            self.workload,
            self.collector,
            self.profile,
            self.pcm_writes,
            self.pcm_write_rate_mbs,
            self.pcm_reads,
            self.dram_writes,
            self.elapsed_seconds,
        )?;
        if let Some(h) = &self.gc_pause_histogram {
            write!(
                f,
                "; GC pause p50/p95/p99 {}/{}/{} cycles",
                h.p50(),
                h.p95(),
                h.p99()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(pcm: u64) -> RunReport {
        RunReport {
            workload: "x".into(),
            collector: "KG-N".into(),
            profile: "emulation".into(),
            instances: 1,
            pcm_writes: ByteSize::new(pcm),
            pcm_reads: ByteSize::ZERO,
            dram_writes: ByteSize::new(10),
            dram_reads: ByteSize::ZERO,
            elapsed_seconds: 1.0,
            pcm_write_rate_mbs: pcm as f64 / 1e6,
            allocated: ByteSize::ZERO,
            gc: None,
            native: None,
            machine: MachineStats::default(),
            samples: Vec::new(),
            wear: None,
            endurance: None,
            gc_pause_histogram: None,
            os_paging: None,
            provenance: None,
            consolidation: None,
        }
    }

    #[test]
    fn reduction_is_relative_to_baseline() {
        let base = report(1000);
        let better = report(400);
        assert!((better.pcm_write_reduction_vs(&base) - 60.0).abs() < 1e-9);
        assert!((better.pcm_writes_normalized_to(&base) - 0.4).abs() < 1e-9);
    }

    #[test]
    fn zero_baseline_is_handled() {
        let base = report(0);
        let r = report(5);
        assert_eq!(r.pcm_write_reduction_vs(&base), 0.0);
        assert!(r.pcm_writes_normalized_to(&base).is_infinite());
    }

    #[test]
    fn display_has_the_essentials() {
        let s = format!("{}", report(2_000_000));
        assert!(s.contains("KG-N"));
        assert!(s.contains("MB/s"));
    }

    #[test]
    fn display_surfaces_pause_quantiles_when_present() {
        let mut r = report(100);
        let h = {
            let m = hemu_obs::Metrics::new();
            let hist = m.histogram("gc.pause_cycles");
            hist.observe(100);
            hist.observe(200);
            m.histogram_snapshot("gc.pause_cycles").unwrap()
        };
        r.gc_pause_histogram = Some(h);
        let s = format!("{r}");
        assert!(s.contains("GC pause p50/p95/p99"), "quantiles missing: {s}");
    }

    #[test]
    fn provenance_summary_json_uses_stable_names() {
        let mut p = ProvenanceSummary::default();
        p.pcm_by_cause[WriteCause::Mutator as usize] = 10;
        p.pcm_by_space[SpaceTag::Nursery as usize] = 10;
        let json = p.to_json();
        assert!(
            json.starts_with(r#"{"pcm":{"by_cause":{"mutator":10,"nursery_evac":0"#),
            "unexpected JSON prefix: {json}"
        );
        assert!(json.contains(r#""by_space":{"nursery":10"#));
        assert!(json.contains(r#""spans_recorded":0"#));
        assert_eq!(p.pcm_total(), 10);
        assert!((p.pcm_cause_fraction(WriteCause::Mutator) - 1.0).abs() < 1e-12);
        assert_eq!(
            ProvenanceSummary::default().pcm_cause_fraction(WriteCause::Mutator),
            0.0
        );
    }
}
