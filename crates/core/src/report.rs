//! Experiment results.

use crate::monitor::RateSample;
use hemu_heap::GcStats;
use hemu_machine::MachineStats;
use hemu_malloc::NativeStats;
use hemu_obs::json::{JsonObject, ToJson};
use hemu_obs::HistogramSnapshot;
use hemu_os::OsStats;
use hemu_types::ByteSize;
use std::fmt;

/// Everything measured during one experiment's measured iteration.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Workload display name (`pr.cpp.large`, `lusearch`, …).
    pub workload: String,
    /// Collector name (`KG-W`, `PCM-Only`, …; `malloc` for native runs).
    pub collector: String,
    /// Machine profile name (`emulation` or `simulation`).
    pub profile: String,
    /// Number of co-running instances.
    pub instances: usize,
    /// Bytes written at the PCM socket's controller — the headline metric.
    pub pcm_writes: ByteSize,
    /// Bytes read at the PCM socket.
    pub pcm_reads: ByteSize,
    /// Bytes written at the DRAM socket.
    pub dram_writes: ByteSize,
    /// Bytes read at the DRAM socket.
    pub dram_reads: ByteSize,
    /// Virtual elapsed time of the measured iteration, in seconds.
    pub elapsed_seconds: f64,
    /// Average PCM write rate in MB/s (decimal megabytes, as the paper and
    /// `pcm-memory` report).
    pub pcm_write_rate_mbs: f64,
    /// Total bytes the applications allocated during the measured
    /// iteration.
    pub allocated: ByteSize,
    /// Aggregated GC statistics (managed runs).
    pub gc: Option<GcStats>,
    /// Aggregated native allocator statistics (C++ runs).
    pub native: Option<NativeStats>,
    /// Machine-level statistics.
    pub machine: MachineStats,
    /// Interval samples from the write-rate monitor.
    pub samples: Vec<RateSample>,
    /// Measured PCM wear statistics (present when the experiment enabled
    /// wear tracking).
    pub wear: Option<WearSummary>,
    /// PCM endurance outcome (present when the experiment enabled the
    /// endurance model).
    pub endurance: Option<EnduranceSummary>,
    /// Distribution of stop-the-world GC pauses (virtual cycles) over the
    /// measured iteration, from the `gc.pause_cycles` metric.
    pub gc_pause_histogram: Option<HistogramSnapshot>,
    /// OS page-manager activity (present when the run was placed by an
    /// [`hemu_os::OsPolicy`] instead of a write-rationing collector).
    pub os_paging: Option<OsStats>,
}

/// Per-line PCM wear statistics from the opt-in wear tracker.
#[derive(Debug, Clone, Copy)]
pub struct WearSummary {
    /// Distinct PCM lines written during the measured iteration.
    pub pcm_lines_touched: u64,
    /// Writes absorbed by the hottest line.
    pub max_line_writes: u64,
    /// Estimated rotation-levelling efficiency for this write stream in
    /// `(0, 1]` (the paper assumes 0.5).
    pub levelling_efficiency: f64,
}

/// Outcome of the PCM endurance model: how much of the device wore out
/// during the run and what capacity survived.
#[derive(Debug, Clone, Copy)]
pub struct EnduranceSummary {
    /// Configured mean per-line write budget.
    pub budget_writes: u64,
    /// PCM lines that exhausted their budget and failed.
    pub failed_lines: u64,
    /// PCM pages retired because a line in them failed.
    pub retired_pages: u64,
    /// Virtual pages transparently remapped onto replacement frames.
    pub remapped_pages: u64,
    /// PCM capacity still backed by healthy frames.
    pub effective_capacity: ByteSize,
}

impl RunReport {
    /// Total memory writes (both sockets).
    pub fn total_writes(&self) -> ByteSize {
        self.pcm_writes + self.dram_writes
    }

    /// Percentage reduction of PCM writes relative to `baseline`
    /// (positive = fewer writes than the baseline), the metric of
    /// Table II and Fig. 7.
    pub fn pcm_write_reduction_vs(&self, baseline: &RunReport) -> f64 {
        if baseline.pcm_writes.bytes() == 0 {
            return 0.0;
        }
        100.0 * (1.0 - self.pcm_writes.bytes() as f64 / baseline.pcm_writes.bytes() as f64)
    }

    /// PCM writes normalized to `baseline` (Fig. 3 / Fig. 7 style).
    pub fn pcm_writes_normalized_to(&self, baseline: &RunReport) -> f64 {
        if baseline.pcm_writes.bytes() == 0 {
            return f64::INFINITY;
        }
        self.pcm_writes.bytes() as f64 / baseline.pcm_writes.bytes() as f64
    }
}

impl ToJson for WearSummary {
    fn write_json(&self, out: &mut String) {
        let mut obj = JsonObject::new(out);
        obj.field("pcm_lines_touched", &self.pcm_lines_touched)
            .field("max_line_writes", &self.max_line_writes)
            .field("levelling_efficiency", &self.levelling_efficiency);
        obj.finish();
    }
}

impl ToJson for EnduranceSummary {
    fn write_json(&self, out: &mut String) {
        let mut obj = JsonObject::new(out);
        obj.field("budget_writes", &self.budget_writes)
            .field("failed_lines", &self.failed_lines)
            .field("retired_pages", &self.retired_pages)
            .field("remapped_pages", &self.remapped_pages)
            .field("effective_capacity", &self.effective_capacity);
        obj.finish();
    }
}

impl ToJson for RunReport {
    fn write_json(&self, out: &mut String) {
        let mut obj = JsonObject::new(out);
        obj.field("workload", &self.workload)
            .field("collector", &self.collector)
            .field("profile", &self.profile)
            .field("instances", &self.instances)
            .field("pcm_writes", &self.pcm_writes)
            .field("pcm_reads", &self.pcm_reads)
            .field("dram_writes", &self.dram_writes)
            .field("dram_reads", &self.dram_reads)
            .field("elapsed_seconds", &self.elapsed_seconds)
            .field("pcm_write_rate_mbs", &self.pcm_write_rate_mbs)
            .field("allocated", &self.allocated)
            .field("gc", &self.gc)
            .field("native", &self.native)
            .field("machine", &self.machine)
            .field("samples", &self.samples)
            .field("wear", &self.wear)
            .field("endurance", &self.endurance)
            .field("gc_pause_histogram", &self.gc_pause_histogram)
            .field("os_paging", &self.os_paging);
        obj.finish();
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} × {} [{}] on {}: PCM W {} ({:.1} MB/s), R {}; DRAM W {}; {:.3}s virtual",
            self.instances,
            self.workload,
            self.collector,
            self.profile,
            self.pcm_writes,
            self.pcm_write_rate_mbs,
            self.pcm_reads,
            self.dram_writes,
            self.elapsed_seconds,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(pcm: u64) -> RunReport {
        RunReport {
            workload: "x".into(),
            collector: "KG-N".into(),
            profile: "emulation".into(),
            instances: 1,
            pcm_writes: ByteSize::new(pcm),
            pcm_reads: ByteSize::ZERO,
            dram_writes: ByteSize::new(10),
            dram_reads: ByteSize::ZERO,
            elapsed_seconds: 1.0,
            pcm_write_rate_mbs: pcm as f64 / 1e6,
            allocated: ByteSize::ZERO,
            gc: None,
            native: None,
            machine: MachineStats::default(),
            samples: Vec::new(),
            wear: None,
            endurance: None,
            gc_pause_histogram: None,
            os_paging: None,
        }
    }

    #[test]
    fn reduction_is_relative_to_baseline() {
        let base = report(1000);
        let better = report(400);
        assert!((better.pcm_write_reduction_vs(&base) - 60.0).abs() < 1e-9);
        assert!((better.pcm_writes_normalized_to(&base) - 0.4).abs() < 1e-9);
    }

    #[test]
    fn zero_baseline_is_handled() {
        let base = report(0);
        let r = report(5);
        assert_eq!(r.pcm_write_reduction_vs(&base), 0.0);
        assert!(r.pcm_writes_normalized_to(&base).is_infinite());
    }

    #[test]
    fn display_has_the_essentials() {
        let s = format!("{}", report(2_000_000));
        assert!(s.contains("KG-N"));
        assert!(s.contains("MB/s"));
    }
}
