//! Rebuilding a [`RunReport`] from its exported JSON — the read half of
//! crash-safe sweep resume.
//!
//! The export side ([`crate::report`]) renders every field in a fixed
//! order with deterministic formatting, so restoring is strict: this
//! module parses the per-run JSON artifact back into a `RunReport`,
//! re-serializes it, and only returns the report when the round-trip
//! reproduces the input byte-for-byte. Anything else — unknown schema,
//! missing field, formatting drift between binary versions — returns
//! `None`, and the resuming harness simply re-executes the run. Because
//! runs are deterministic, re-execution yields identical artifacts, so
//! the round-trip gate turns any conceivable parser bug into wasted work
//! rather than silently divergent output.

use crate::monitor::RateSample;
use crate::report::{
    ConsolidationSummary, EnduranceSummary, ProvenanceSummary, RunReport, TenantShare, WearSummary,
};
use hemu_heap::GcStats;
use hemu_machine::MachineStats;
use hemu_malloc::NativeStats;
use hemu_obs::metrics::BucketCount;
use hemu_obs::{HistogramSnapshot, JsonValue, ToJson};
use hemu_os::OsStats;
use hemu_types::{ByteSize, OsPolicy, SpaceTag, WriteCause};

/// Parses the JSON text of a per-run report artifact back into a
/// [`RunReport`], verifying the round-trip: the restored report must
/// re-serialize to exactly the input (modulo one optional trailing
/// newline). Returns `None` when the text is not a faithful export of
/// this binary's report schema; the caller re-executes the run instead.
pub fn restore_run_report(text: &str) -> Option<RunReport> {
    let trimmed = text.strip_suffix('\n').unwrap_or(text);
    let v = JsonValue::parse(trimmed).ok()?;
    let report = report_from_value(&v)?;
    if report.to_json() == trimmed {
        Some(report)
    } else {
        None
    }
}

fn get_u64(v: &JsonValue, key: &str) -> Option<u64> {
    v.get(key)?.as_u64()
}

fn get_f64(v: &JsonValue, key: &str) -> Option<f64> {
    v.get(key)?.as_f64()
}

fn get_bytes(v: &JsonValue, key: &str) -> Option<ByteSize> {
    Some(ByteSize::new(get_u64(v, key)?))
}

fn get_str<'a>(v: &'a JsonValue, key: &str) -> Option<&'a str> {
    v.get(key)?.as_str()
}

/// Applies `f` to an optional field: `null` restores to `None`, a present
/// value must parse, a *missing* key is a schema mismatch (fails).
fn optional<T>(
    v: &JsonValue,
    key: &str,
    f: impl FnOnce(&JsonValue) -> Option<T>,
) -> Option<Option<T>> {
    let field = v.get(key)?;
    if field.is_null() {
        Some(None)
    } else {
        Some(Some(f(field)?))
    }
}

fn report_from_value(v: &JsonValue) -> Option<RunReport> {
    Some(RunReport {
        workload: get_str(v, "workload")?.to_string(),
        collector: get_str(v, "collector")?.to_string(),
        profile: get_str(v, "profile")?.to_string(),
        instances: usize::try_from(get_u64(v, "instances")?).ok()?,
        pcm_writes: get_bytes(v, "pcm_writes")?,
        pcm_reads: get_bytes(v, "pcm_reads")?,
        dram_writes: get_bytes(v, "dram_writes")?,
        dram_reads: get_bytes(v, "dram_reads")?,
        elapsed_seconds: get_f64(v, "elapsed_seconds")?,
        pcm_write_rate_mbs: get_f64(v, "pcm_write_rate_mbs")?,
        allocated: get_bytes(v, "allocated")?,
        gc: optional(v, "gc", gc_from_value)?,
        native: optional(v, "native", native_from_value)?,
        machine: machine_from_value(v.get("machine")?)?,
        samples: v
            .get("samples")?
            .as_array()?
            .iter()
            .map(sample_from_value)
            .collect::<Option<Vec<_>>>()?,
        wear: optional(v, "wear", wear_from_value)?,
        endurance: optional(v, "endurance", endurance_from_value)?,
        gc_pause_histogram: optional(v, "gc_pause_histogram", histogram_from_value)?,
        os_paging: optional(v, "os_paging", os_from_value)?,
        provenance: optional(v, "provenance", provenance_from_value)?,
        consolidation: optional(v, "consolidation", consolidation_from_value)?,
    })
}

fn gc_from_value(v: &JsonValue) -> Option<GcStats> {
    Some(GcStats {
        minor_gcs: get_u64(v, "minor_gcs")?,
        observer_gcs: get_u64(v, "observer_gcs")?,
        full_gcs: get_u64(v, "full_gcs")?,
        pause_cycles: get_u64(v, "pause_cycles")?,
        allocated_bytes: get_u64(v, "allocated_bytes")?,
        allocated_objects: get_u64(v, "allocated_objects")?,
        large_allocated_bytes: get_u64(v, "large_allocated_bytes")?,
        loo_nursery_large: get_u64(v, "loo_nursery_large")?,
        copied_minor_bytes: get_u64(v, "copied_minor_bytes")?,
        copied_observer_bytes: get_u64(v, "copied_observer_bytes")?,
        promoted_dram_objects: get_u64(v, "promoted_dram_objects")?,
        promoted_pcm_objects: get_u64(v, "promoted_pcm_objects")?,
        large_rescued: get_u64(v, "large_rescued")?,
        mark_writes: get_u64(v, "mark_writes")?,
        remset_entries: get_u64(v, "remset_entries")?,
        monitor_marks: get_u64(v, "monitor_marks")?,
    })
}

fn native_from_value(v: &JsonValue) -> Option<NativeStats> {
    Some(NativeStats {
        allocated_bytes: get_u64(v, "allocated_bytes")?,
        allocated_objects: get_u64(v, "allocated_objects")?,
        freed_bytes: get_u64(v, "freed_bytes")?,
        in_use: get_u64(v, "in_use")?,
        peak: get_u64(v, "peak")?,
    })
}

fn machine_from_value(v: &JsonValue) -> Option<MachineStats> {
    Some(MachineStats {
        line_accesses: get_u64(v, "line_accesses")?,
        local_fills: get_u64(v, "local_fills")?,
        remote_fills: get_u64(v, "remote_fills")?,
    })
}

fn sample_from_value(v: &JsonValue) -> Option<RateSample> {
    Some(RateSample {
        t_seconds: get_f64(v, "t_seconds")?,
        pcm_write_mbs: get_f64(v, "pcm_write_mbs")?,
        dram_write_mbs: get_f64(v, "dram_write_mbs")?,
    })
}

fn wear_from_value(v: &JsonValue) -> Option<WearSummary> {
    Some(WearSummary {
        pcm_lines_touched: get_u64(v, "pcm_lines_touched")?,
        max_line_writes: get_u64(v, "max_line_writes")?,
        levelling_efficiency: get_f64(v, "levelling_efficiency")?,
    })
}

fn endurance_from_value(v: &JsonValue) -> Option<EnduranceSummary> {
    Some(EnduranceSummary {
        budget_writes: get_u64(v, "budget_writes")?,
        failed_lines: get_u64(v, "failed_lines")?,
        retired_pages: get_u64(v, "retired_pages")?,
        remapped_pages: get_u64(v, "remapped_pages")?,
        effective_capacity: get_bytes(v, "effective_capacity")?,
    })
}

fn histogram_from_value(v: &JsonValue) -> Option<HistogramSnapshot> {
    // mean/p50/p95/p99 are derived from the stored fields at serialization
    // time; parsing skips them and the round-trip gate re-derives them.
    Some(HistogramSnapshot {
        count: get_u64(v, "count")?,
        sum: get_u64(v, "sum")?,
        min: get_u64(v, "min")?,
        max: get_u64(v, "max")?,
        buckets: v
            .get("buckets")?
            .as_array()?
            .iter()
            .map(|b| {
                Some(BucketCount {
                    lo: get_u64(b, "lo")?,
                    hi: get_u64(b, "hi")?,
                    count: get_u64(b, "count")?,
                })
            })
            .collect::<Option<Vec<_>>>()?,
    })
}

fn os_from_value(v: &JsonValue) -> Option<OsStats> {
    let policy_name = get_str(v, "policy")?;
    let policy = OsPolicy::ALL
        .into_iter()
        .find(|p| p.name() == policy_name)?;
    Some(OsStats {
        policy,
        epochs: get_u64(v, "epochs")?,
        migrations: get_u64(v, "migrations")?,
        promotions: get_u64(v, "promotions")?,
        demotions: get_u64(v, "demotions")?,
        migrated_bytes: get_bytes(v, "migrated_bytes")?,
        failed_migrations: get_u64(v, "failed_migrations")?,
    })
}

fn tag_counts<const N: usize>(v: &JsonValue, names: [&str; N]) -> Option<[u64; N]> {
    let mut out = [0u64; N];
    for (slot, name) in out.iter_mut().zip(names) {
        *slot = get_u64(v, name)?;
    }
    Some(out)
}

fn provenance_from_value(v: &JsonValue) -> Option<ProvenanceSummary> {
    let cause_names = WriteCause::ALL.map(WriteCause::name);
    let space_names = SpaceTag::ALL.map(SpaceTag::name);
    let pcm = v.get("pcm")?;
    let dram = v.get("dram")?;
    Some(ProvenanceSummary {
        pcm_by_cause: tag_counts(pcm.get("by_cause")?, cause_names)?,
        pcm_by_space: tag_counts(pcm.get("by_space")?, space_names)?,
        dram_by_cause: tag_counts(dram.get("by_cause")?, cause_names)?,
        dram_by_space: tag_counts(dram.get("by_space")?, space_names)?,
        spans_recorded: get_u64(v, "spans_recorded")?,
        spans_dropped: get_u64(v, "spans_dropped")?,
    })
}

fn tenant_share_from_value(v: &JsonValue) -> Option<TenantShare> {
    Some(TenantShare {
        id: usize::try_from(get_u64(v, "id")?).ok()?,
        workload: get_str(v, "workload")?.to_string(),
        pcm_write_lines: get_u64(v, "pcm_write_lines")?,
        dram_write_lines: get_u64(v, "dram_write_lines")?,
        minor_gcs: get_u64(v, "minor_gcs")?,
        full_gcs: get_u64(v, "full_gcs")?,
        pause_cycles: get_u64(v, "pause_cycles")?,
        allocated_bytes: get_u64(v, "allocated_bytes")?,
        page_faults: get_u64(v, "page_faults")?,
    })
}

fn consolidation_from_value(v: &JsonValue) -> Option<ConsolidationSummary> {
    Some(ConsolidationSummary {
        mix: get_str(v, "mix")?.to_string(),
        tenants: usize::try_from(get_u64(v, "tenants")?).ok()?,
        contexts: usize::try_from(get_u64(v, "contexts")?).ok()?,
        slice: get_u64(v, "slice")?,
        unattributed_pcm_lines: get_u64(v, "unattributed_pcm_lines")?,
        unattributed_dram_lines: get_u64(v, "unattributed_dram_lines")?,
        per_tenant: v
            .get("per_tenant")?
            .as_array()?
            .iter()
            .map(tenant_share_from_value)
            .collect::<Option<Vec<_>>>()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A report with every optional block populated, so the round-trip
    /// covers all nested schemas.
    fn full_report() -> RunReport {
        let gc_pause_histogram = {
            let m = hemu_obs::Metrics::new();
            let h = m.histogram("gc.pause_cycles");
            for v in [120, 450, 451, 9000] {
                h.observe(v);
            }
            m.histogram_snapshot("gc.pause_cycles")
        };
        let mut provenance = ProvenanceSummary::default();
        provenance.pcm_by_cause[WriteCause::Mutator as usize] = 11;
        provenance.pcm_by_space[SpaceTag::Nursery as usize] = 7;
        provenance.dram_by_cause[WriteCause::Mutator as usize] = 4;
        provenance.dram_by_space[SpaceTag::MatureDram as usize] = 4;
        provenance.spans_recorded = 32;
        RunReport {
            workload: "pr.cpp.large".to_string(),
            collector: "KG-W".to_string(),
            profile: "emulation".to_string(),
            instances: 2,
            pcm_writes: ByteSize::new(123_456_789),
            pcm_reads: ByteSize::new(987),
            dram_writes: ByteSize::new(55),
            dram_reads: ByteSize::new(0),
            elapsed_seconds: 12.75,
            pcm_write_rate_mbs: 9.68288,
            allocated: ByteSize::from_kib(8192),
            gc: Some(GcStats {
                minor_gcs: 3,
                observer_gcs: 1,
                full_gcs: 1,
                pause_cycles: 123_456,
                allocated_bytes: 1 << 30,
                allocated_objects: 1_000_000,
                large_allocated_bytes: 1 << 20,
                loo_nursery_large: 2,
                copied_minor_bytes: 4096,
                copied_observer_bytes: 2048,
                promoted_dram_objects: 17,
                promoted_pcm_objects: 13,
                large_rescued: 1,
                mark_writes: 99,
                remset_entries: 7,
                monitor_marks: 21,
            }),
            native: Some(NativeStats {
                allocated_bytes: 1024,
                allocated_objects: 10,
                freed_bytes: 512,
                in_use: 512,
                peak: 768,
            }),
            machine: MachineStats {
                line_accesses: 1 << 40,
                local_fills: 5,
                remote_fills: 6,
            },
            samples: vec![
                RateSample {
                    t_seconds: 0.5,
                    pcm_write_mbs: 1.25,
                    dram_write_mbs: 0.0,
                },
                RateSample {
                    t_seconds: 1.0,
                    pcm_write_mbs: 2.5,
                    dram_write_mbs: 0.125,
                },
            ],
            wear: Some(WearSummary {
                pcm_lines_touched: 42,
                max_line_writes: 9,
                levelling_efficiency: 0.5,
            }),
            endurance: Some(EnduranceSummary {
                budget_writes: 10_000_000,
                failed_lines: 3,
                retired_pages: 1,
                remapped_pages: 1,
                effective_capacity: ByteSize::from_kib(1 << 20),
            }),
            gc_pause_histogram,
            os_paging: Some(OsStats {
                policy: OsPolicy::HotCold,
                epochs: 4,
                migrations: 8,
                promotions: 5,
                demotions: 3,
                migrated_bytes: ByteSize::from_kib(32),
                failed_migrations: 1,
            }),
            provenance: Some(provenance),
            consolidation: Some(ConsolidationSummary {
                mix: "mixed".to_string(),
                tenants: 2,
                contexts: 16,
                slice: 64,
                unattributed_pcm_lines: 0,
                unattributed_dram_lines: 0,
                per_tenant: vec![
                    TenantShare {
                        id: 0,
                        workload: "avrora".to_string(),
                        pcm_write_lines: 1_000,
                        dram_write_lines: 2_000,
                        minor_gcs: 3,
                        full_gcs: 1,
                        pause_cycles: 999,
                        allocated_bytes: 1 << 24,
                        page_faults: 512,
                    },
                    TenantShare {
                        id: 1,
                        workload: "pjbb".to_string(),
                        pcm_write_lines: 929_012,
                        dram_write_lines: 55,
                        minor_gcs: 0,
                        full_gcs: 0,
                        pause_cycles: 0,
                        allocated_bytes: 0,
                        page_faults: 7,
                    },
                ],
            }),
        }
    }

    /// A minimal report: every optional block absent.
    fn sparse_report() -> RunReport {
        RunReport {
            gc: None,
            native: None,
            samples: Vec::new(),
            wear: None,
            endurance: None,
            gc_pause_histogram: None,
            os_paging: None,
            provenance: None,
            consolidation: None,
            ..full_report()
        }
    }

    #[test]
    fn fully_populated_report_round_trips() {
        let original = full_report();
        let json = original.to_json();
        let restored = restore_run_report(&json).expect("restore");
        assert_eq!(restored.to_json(), json);
        // Spot-check a few deep fields survived semantically, not just
        // textually.
        assert_eq!(restored.gc.expect("gc").monitor_marks, 21);
        assert_eq!(restored.os_paging.expect("os").policy, OsPolicy::HotCold);
        assert_eq!(
            restored
                .provenance
                .expect("prov")
                .pcm_cause(WriteCause::Mutator),
            11
        );
        assert_eq!(restored.machine.line_accesses, 1 << 40);
        let c = restored.consolidation.expect("consolidation");
        assert_eq!(c.per_tenant.len(), 2);
        assert_eq!(c.per_tenant[1].pcm_write_lines, 929_012);
        assert_eq!(c.attributed_pcm_lines(), 930_012);
    }

    #[test]
    fn sparse_report_round_trips() {
        let json = sparse_report().to_json();
        let restored = restore_run_report(&json).expect("restore");
        assert_eq!(restored.to_json(), json);
        assert!(restored.gc.is_none());
        assert!(restored.samples.is_empty());
    }

    #[test]
    fn trailing_newline_is_accepted() {
        let mut json = sparse_report().to_json();
        json.push('\n');
        assert!(restore_run_report(&json).is_some());
    }

    #[test]
    fn tampered_or_foreign_text_is_rejected() {
        let json = full_report().to_json();
        // Truncated file (torn write that bypassed the atomic committer).
        assert!(restore_run_report(&json[..json.len() - 2]).is_none());
        // Valid JSON, wrong schema.
        assert!(restore_run_report(r#"{"workload":"x"}"#).is_none());
        assert!(restore_run_report("not json at all").is_none());
        // Unknown OS policy name.
        let bad = json.replace("OS-hot-cold", "OS-mystery");
        assert!(restore_run_report(&bad).is_none());
    }

    #[test]
    fn reformatted_but_equivalent_json_is_rejected() {
        // Same data, different whitespace: the round-trip gate refuses,
        // forcing deterministic re-execution instead of trusting the
        // restore path to reproduce formatting.
        let json = sparse_report().to_json();
        let spaced = json.replacen("\":", "\": ", 1);
        assert!(restore_run_report(&spaced).is_none());
    }
}
