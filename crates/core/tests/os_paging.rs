//! End-to-end OS-paging runs: a workload placed by the kernel-side
//! baseline instead of a write-rationing collector.

use hemu_core::Experiment;
use hemu_heap::CollectorKind;
use hemu_types::{ByteSize, HemuError, OsPagingConfig, OsPolicy};
use hemu_workloads::WorkloadSpec;

fn avrora() -> WorkloadSpec {
    WorkloadSpec::by_name("avrora").unwrap()
}

/// A hot/cold config sized for avrora: DRAM small enough to spill and an
/// epoch short enough to fire several times per iteration.
fn hot_cold() -> OsPagingConfig {
    let mut cfg = OsPagingConfig::new(OsPolicy::HotCold);
    cfg.dram_limit = Some(ByteSize::from_mib(4));
    cfg.epoch_lines = 20_000;
    cfg
}

#[test]
fn os_paging_requires_the_pcm_only_collector() {
    let e = Experiment::new(avrora())
        .collector(CollectorKind::KgN)
        .os_paging(hot_cold());
    assert!(matches!(e.run(), Err(HemuError::InvalidConfig(_))));
}

#[test]
fn os_run_reports_policy_and_migration_activity() {
    let r = Experiment::new(avrora())
        .os_paging(hot_cold())
        .run()
        .unwrap();
    assert_eq!(r.collector, "OS-hot-cold");
    let os = r
        .os_paging
        .expect("OS-managed run carries the paging block");
    assert_eq!(os.policy, OsPolicy::HotCold);
    assert!(os.epochs > 0, "migrator ran during the measured iteration");
    assert_eq!(os.migrations, os.promotions + os.demotions);
    assert_eq!(os.migrated_bytes.bytes(), os.migrations * 4096);
    // A GC-managed run carries no paging block.
    let gc = Experiment::new(avrora()).run().unwrap();
    assert!(gc.os_paging.is_none());
    assert_eq!(gc.collector, "PCM-Only");
}

#[test]
fn placement_policy_decides_where_writes_land() {
    // Unrestricted DRAM: dram-first keeps the whole working set local,
    // pcm-first puts every page on the wear-limited socket.
    let dram_first = Experiment::new(avrora())
        .os_paging(OsPagingConfig::new(OsPolicy::DramFirst))
        .run()
        .unwrap();
    let pcm_first = Experiment::new(avrora())
        .os_paging(OsPagingConfig::new(OsPolicy::PcmFirst))
        .run()
        .unwrap();
    assert_eq!(dram_first.collector, "OS-dram-first");
    assert_eq!(pcm_first.collector, "OS-pcm-first");
    assert!(
        dram_first.pcm_writes < pcm_first.pcm_writes,
        "dram-first {} vs pcm-first {}",
        dram_first.pcm_writes,
        pcm_first.pcm_writes
    );
    assert_eq!(pcm_first.dram_writes, ByteSize::ZERO);
}

#[test]
fn os_runs_are_deterministic() {
    let a = Experiment::new(avrora())
        .os_paging(hot_cold())
        .run()
        .unwrap();
    let b = Experiment::new(avrora())
        .os_paging(hot_cold())
        .run()
        .unwrap();
    assert_eq!(a.pcm_writes, b.pcm_writes);
    assert_eq!(a.os_paging, b.os_paging);
    assert_eq!(a.elapsed_seconds, b.elapsed_seconds);
}
