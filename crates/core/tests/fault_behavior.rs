//! Behavioral contracts of fault injection at the experiment level:
//! zero cost when off (bit-identical reports), deterministic forced OOM,
//! QPI stall bursts that slow the run down, and the endurance summary.

use hemu_core::Experiment;
use hemu_fault::{EnduranceConfig, FaultPlan, QpiBurst};
use hemu_obs::json::ToJson;
use hemu_types::HemuError;
use hemu_workloads::WorkloadSpec;

fn spec() -> WorkloadSpec {
    WorkloadSpec::by_name("avrora").unwrap()
}

/// The acceptance bar for "zero cost when off": a run with an inert fault
/// plan, and even a run with an installed-but-never-firing plan, must be
/// bit-identical to a plain run of the same seed — every counter, every
/// sample, every figure.
#[test]
fn disabled_faults_leave_reports_bit_identical() {
    let plain = Experiment::new(spec()).run().unwrap();
    let inert = Experiment::new(spec())
        .faults(FaultPlan::none())
        .run()
        .unwrap();
    assert_eq!(
        plain.to_json(),
        inert.to_json(),
        "an inert plan must not be installed at all"
    );

    // A plan that is installed but can never fire: the injector sits on the
    // allocation path yet contributes no traffic, no stalls, no RNG-visible
    // perturbation of the machine.
    let armed_but_silent = Experiment::new(spec())
        .faults(FaultPlan {
            oom_at_alloc: Some(u64::MAX),
            ..FaultPlan::none()
        })
        .run()
        .unwrap();
    assert_eq!(
        plain.to_json(),
        armed_but_silent.to_json(),
        "an injector that never fires must cost nothing"
    );
}

/// Forcing an OOM at the first managed allocation fails the run with a
/// persistent `FaultInjected` error (never a panic), deterministically.
#[test]
fn forced_oom_is_a_persistent_injected_fault() {
    let run = || {
        Experiment::new(spec())
            .faults(FaultPlan {
                oom_at_alloc: Some(1),
                ..FaultPlan::none()
            })
            .run()
    };
    let err = run().unwrap_err();
    match err {
        HemuError::FaultInjected { kind, transient } => {
            assert_eq!(kind, "forced-oom");
            assert!(!transient, "a forced OOM must not look retryable");
        }
        other => panic!("expected FaultInjected, got {other}"),
    }
    assert_eq!(run().unwrap_err(), err, "injection must be deterministic");
}

/// A QPI stall burst slows the measured iteration down without changing
/// how many bytes move: the write stream is workload-determined, the extra
/// cycles are pure link stall.
#[test]
fn qpi_bursts_stretch_time_but_not_traffic() {
    let plain = Experiment::new(spec()).run().unwrap();
    let stalled = Experiment::new(spec())
        .faults(FaultPlan {
            qpi_burst: Some(QpiBurst {
                period_lines: 64,
                stall_cycles: 50_000,
            }),
            ..FaultPlan::none()
        })
        .run()
        .unwrap();
    assert!(
        stalled.elapsed_seconds > plain.elapsed_seconds,
        "stall bursts must show up in virtual time ({} vs {})",
        stalled.elapsed_seconds,
        plain.elapsed_seconds
    );
    assert_eq!(stalled.pcm_writes, plain.pcm_writes);
    assert_eq!(stalled.pcm_reads, plain.pcm_reads);
    assert_eq!(stalled.dram_writes, plain.dram_writes);
}

/// Enabling the endurance model populates the report's endurance summary;
/// with a generous budget nothing fails and the effective capacity stays
/// whole.
#[test]
fn endurance_summary_is_reported() {
    let r = Experiment::new(spec())
        .endurance(EnduranceConfig {
            budget_writes: 1_000_000_000,
            variability: 0.1,
            seed: 7,
        })
        .run()
        .unwrap();
    let e = r.endurance.expect("summary must be present when enabled");
    assert_eq!(e.budget_writes, 1_000_000_000);
    assert_eq!(e.failed_lines, 0);
    assert_eq!(e.retired_pages, 0);
    assert_eq!(e.remapped_pages, 0);
    assert!(e.effective_capacity.bytes() > 0);
    // Wear tracking is implied by the endurance model.
    assert!(r.wear.is_some());
}
