//! End-to-end observability tests: the event trace, the metrics registry,
//! and the JSON export must all tell the same story as the aggregate
//! statistics.

use hemu_core::{
    ConsolidationSummary, Experiment, ProvenanceSummary, RunReport, TenantShare, WearSummary,
};
use hemu_heap::{CollectorKind, GcStats};
use hemu_machine::MachineStats;
use hemu_obs::{ToJson, TraceEvent};
use hemu_types::ByteSize;
use hemu_workloads::WorkloadSpec;

const TRACE_CAPACITY: usize = 1 << 16;

/// A traced `lusearch | KG-N` run: the GC events in the trace must be
/// internally consistent and agree with the aggregated [`GcStats`] and the
/// pause histogram in the report.
#[test]
fn trace_gc_events_match_gc_stats() {
    let spec = WorkloadSpec::by_name("lusearch").unwrap();
    let (report, trace) = Experiment::new(spec)
        .collector(CollectorKind::KgN)
        .run_with_trace(TRACE_CAPACITY)
        .unwrap();

    // Nothing was dropped: the ring only overwrites once full.
    assert!(
        trace.len() < TRACE_CAPACITY,
        "trace filled its ring; grow the capacity"
    );

    let gc = report.gc.expect("managed run has GC stats");
    assert!(gc.total_gcs() > 0, "lusearch must collect at least once");

    let mut starts = 0u64;
    let mut ends = 0u64;
    let mut pause_sum = 0u64;
    for record in &trace {
        match record.event {
            TraceEvent::GcStart { .. } => starts += 1,
            TraceEvent::GcEnd { pause_cycles, .. } => {
                ends += 1;
                pause_sum += pause_cycles;
            }
            _ => {}
        }
    }
    assert_eq!(starts, gc.total_gcs(), "one GcStart per collection");
    assert_eq!(ends, gc.total_gcs(), "one GcEnd per collection");
    assert_eq!(
        pause_sum, gc.pause_cycles,
        "summed GcEnd pause cycles must equal the aggregate GcStats"
    );

    let hist = report
        .gc_pause_histogram
        .expect("collections imply a pause histogram");
    assert_eq!(hist.count, gc.total_gcs());
    assert_eq!(hist.sum, gc.pause_cycles);

    // Timestamps never go backwards within the (single-context) trace of
    // GC events for one instance.
    let gc_times: Vec<u64> = trace
        .iter()
        .filter(|r| {
            matches!(
                r.event,
                TraceEvent::GcStart { .. } | TraceEvent::GcEnd { .. }
            )
        })
        .map(|r| r.t.raw())
        .collect();
    assert!(
        gc_times.windows(2).all(|w| w[0] <= w[1]),
        "GC event times must be monotone"
    );
}

/// An untraced run returns byte-identical results to a traced one:
/// observability must not perturb the simulation.
#[test]
fn tracing_does_not_perturb_the_run() {
    let spec = WorkloadSpec::by_name("avrora").unwrap();
    let plain = Experiment::new(spec)
        .collector(CollectorKind::KgN)
        .run()
        .unwrap();
    let (traced, _) = Experiment::new(spec)
        .collector(CollectorKind::KgN)
        .run_with_trace(TRACE_CAPACITY)
        .unwrap();
    assert_eq!(plain.pcm_writes, traced.pcm_writes);
    assert_eq!(plain.elapsed_seconds, traced.elapsed_seconds);
    assert_eq!(plain.gc, traced.gc);
}

/// A profiled run attributes every PCM controller write to a cause, does
/// not perturb the simulation, and captures virtual-time spans.
#[test]
fn profiling_attributes_writes_and_records_spans() {
    use hemu_types::WriteCause;
    let spec = WorkloadSpec::by_name("lusearch").unwrap();
    let plain = Experiment::new(spec)
        .collector(CollectorKind::PcmOnly)
        .run()
        .unwrap();
    let arts = Experiment::new(spec)
        .collector(CollectorKind::PcmOnly)
        .profiling()
        .run_full()
        .unwrap();

    // Zero-perturbation: provenance tags and spans are advisory metadata.
    assert_eq!(plain.pcm_writes, arts.report.pcm_writes);
    assert_eq!(plain.elapsed_seconds, arts.report.elapsed_seconds);
    assert_eq!(plain.gc, arts.report.gc);

    let prov = arts
        .report
        .provenance
        .as_ref()
        .expect("profiled run reports provenance");
    // Attribution is complete: per-cause PCM lines sum to the controller's
    // byte counter (every write-back passes the provenance recorder).
    assert_eq!(prov.pcm_total() * 64, arts.report.pcm_writes.bytes());
    // The paper's point: under PCM-Only the nursery/mutator write stream
    // dominates PCM writes — that is what write rationing later removes.
    let young = prov.pcm_cause_fraction(WriteCause::Mutator)
        + prov.pcm_cause_fraction(WriteCause::NurseryEvac);
    assert!(
        young > 0.5,
        "mutator+nursery-evac should dominate PCM writes, got {young:.3}"
    );

    // Spans: the measured iteration is recorded, and collections appear as
    // gc-category phases nested under it.
    assert!(arts.spans.iter().any(|s| s.name == "iteration"));
    if arts.report.gc.as_ref().is_some_and(|g| g.total_gcs() > 0) {
        assert!(arts.spans.iter().any(|s| s.cat == "gc"));
    }
    // Profiling implies wear tracking, so the heatmap has rows for the
    // touched PCM frames.
    assert!(!arts.heatmap.is_empty());
    assert!(arts.heatmap.windows(2).all(|w| w[0].frame < w[1].frame));
}

/// Golden test of the report's JSON schema: field names, order, and value
/// formatting are part of the export contract (downstream scripts parse
/// this), so any change must be deliberate.
#[test]
fn report_json_schema_golden() {
    let report = RunReport {
        workload: "lusearch".into(),
        collector: "KG-N".into(),
        profile: "emulation".into(),
        instances: 1,
        pcm_writes: ByteSize::new(1000),
        pcm_reads: ByteSize::new(2000),
        dram_writes: ByteSize::new(300),
        dram_reads: ByteSize::new(400),
        elapsed_seconds: 1.5,
        pcm_write_rate_mbs: 0.00066,
        allocated: ByteSize::new(512),
        gc: Some(GcStats {
            minor_gcs: 2,
            pause_cycles: 77,
            ..Default::default()
        }),
        native: None,
        machine: MachineStats::default(),
        samples: Vec::new(),
        wear: Some(WearSummary {
            pcm_lines_touched: 5,
            max_line_writes: 9,
            levelling_efficiency: 0.5,
        }),
        endurance: None,
        gc_pause_histogram: None,
        os_paging: None,
        provenance: Some(ProvenanceSummary {
            pcm_by_cause: [10, 2, 3, 4, 0, 0, 1],
            pcm_by_space: [8, 0, 0, 12, 0, 0, 0],
            dram_by_cause: [0; 7],
            dram_by_space: [0; 7],
            spans_recorded: 6,
            spans_dropped: 0,
        }),
        consolidation: Some(ConsolidationSummary {
            mix: "dacapo".into(),
            tenants: 2,
            contexts: 16,
            slice: 64,
            unattributed_pcm_lines: 0,
            unattributed_dram_lines: 0,
            per_tenant: vec![TenantShare {
                id: 0,
                workload: "avrora".into(),
                pcm_write_lines: 40,
                dram_write_lines: 40,
                minor_gcs: 1,
                full_gcs: 0,
                pause_cycles: 9,
                allocated_bytes: 4096,
                page_faults: 3,
            }],
        }),
    };
    let expected = concat!(
        "{\"workload\":\"lusearch\",\"collector\":\"KG-N\",\"profile\":\"emulation\",",
        "\"instances\":1,\"pcm_writes\":1000,\"pcm_reads\":2000,\"dram_writes\":300,",
        "\"dram_reads\":400,\"elapsed_seconds\":1.5,\"pcm_write_rate_mbs\":0.00066,",
        "\"allocated\":512,",
        "\"gc\":{\"minor_gcs\":2,\"observer_gcs\":0,\"full_gcs\":0,\"pause_cycles\":77,",
        "\"allocated_bytes\":0,\"allocated_objects\":0,\"large_allocated_bytes\":0,",
        "\"loo_nursery_large\":0,\"copied_minor_bytes\":0,\"copied_observer_bytes\":0,",
        "\"promoted_dram_objects\":0,\"promoted_pcm_objects\":0,\"large_rescued\":0,",
        "\"mark_writes\":0,\"remset_entries\":0,\"monitor_marks\":0},",
        "\"native\":null,",
        "\"machine\":{\"line_accesses\":0,\"local_fills\":0,\"remote_fills\":0},",
        "\"samples\":[],",
        "\"wear\":{\"pcm_lines_touched\":5,\"max_line_writes\":9,",
        "\"levelling_efficiency\":0.5},",
        "\"endurance\":null,",
        "\"gc_pause_histogram\":null,",
        "\"os_paging\":null,",
        "\"provenance\":{",
        "\"pcm\":{\"by_cause\":{\"mutator\":10,\"nursery_evac\":2,\"mature_copy\":3,",
        "\"metadata\":4,\"os_migration\":0,\"wear_remap\":0,\"other\":1},",
        "\"by_space\":{\"nursery\":8,\"observer\":0,\"mature_dram\":0,\"mature_pcm\":12,",
        "\"large\":0,\"meta\":0,\"other\":0}},",
        "\"dram\":{\"by_cause\":{\"mutator\":0,\"nursery_evac\":0,\"mature_copy\":0,",
        "\"metadata\":0,\"os_migration\":0,\"wear_remap\":0,\"other\":0},",
        "\"by_space\":{\"nursery\":0,\"observer\":0,\"mature_dram\":0,\"mature_pcm\":0,",
        "\"large\":0,\"meta\":0,\"other\":0}},",
        "\"spans_recorded\":6,\"spans_dropped\":0},",
        "\"consolidation\":{\"mix\":\"dacapo\",\"tenants\":2,\"contexts\":16,",
        "\"slice\":64,\"unattributed_pcm_lines\":0,\"unattributed_dram_lines\":0,",
        "\"per_tenant\":[{\"id\":0,\"workload\":\"avrora\",\"pcm_write_lines\":40,",
        "\"dram_write_lines\":40,\"minor_gcs\":1,\"full_gcs\":0,\"pause_cycles\":9,",
        "\"allocated_bytes\":4096,\"page_faults\":3}]}}",
    );
    assert_eq!(report.to_json(), expected);
}
