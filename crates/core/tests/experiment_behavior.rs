//! Behavioural tests of the experiment runner itself, on the smallest
//! benchmark (avrora) to stay fast.

use hemu_core::Experiment;
use hemu_heap::chunks::ChunkPolicy;
use hemu_heap::CollectorKind;
use hemu_types::ByteSize;
use hemu_workloads::WorkloadSpec;

fn avrora() -> WorkloadSpec {
    WorkloadSpec::by_name("avrora").unwrap()
}

#[test]
fn warmup_changes_the_measured_iteration() {
    // Without warm-up the measured iteration includes cold-start traffic:
    // page faults, cold caches, initial data-structure builds.
    let warm = Experiment::new(avrora()).run().unwrap();
    let cold = Experiment::new(avrora()).without_warmup().run().unwrap();
    assert!(
        cold.pcm_reads > warm.pcm_reads,
        "cold run ({}) should read more from memory than the steady-state run ({})",
        cold.pcm_reads,
        warm.pcm_reads
    );
}

#[test]
fn gc_stats_cover_only_the_measured_iteration() {
    let r = Experiment::new(avrora())
        .collector(CollectorKind::KgN)
        .run()
        .unwrap();
    let gc = r.gc.expect("managed run has GC stats");
    // avrora allocates ~12 MiB per iteration; the delta accounting must
    // not include the warm-up iteration's ~equal allocation volume.
    let mib = gc.allocated_bytes as f64 / (1 << 20) as f64;
    assert!(
        (8.0..20.0).contains(&mib),
        "measured-iteration allocation should be one iteration's worth, got {mib:.1} MiB"
    );
}

#[test]
fn monitor_interval_controls_sample_density() {
    let sparse = Experiment::new(avrora())
        .monitor_interval(0.05)
        .run()
        .unwrap();
    let dense = Experiment::new(avrora())
        .monitor_interval(0.002)
        .run()
        .unwrap();
    assert!(dense.samples.len() > sparse.samples.len());
}

#[test]
fn bigger_nursery_via_override_changes_gc_counts() {
    let small = Experiment::new(avrora())
        .collector(CollectorKind::KgN)
        .nursery(ByteSize::from_mib(1))
        .run()
        .unwrap();
    let big = Experiment::new(avrora())
        .collector(CollectorKind::KgN)
        .nursery(ByteSize::from_mib(8))
        .run()
        .unwrap();
    let (s, b) = (small.gc.unwrap().minor_gcs, big.gc.unwrap().minor_gcs);
    assert!(
        b < s,
        "8 MiB nursery ({b} minor GCs) must collect less often than 1 MiB ({s})"
    );
}

#[test]
fn chunk_policies_produce_similar_writes() {
    // The monolithic free list is a performance pessimisation, not a
    // semantic change: PCM writes should be in the same ballpark.
    let two = Experiment::new(avrora())
        .collector(CollectorKind::KgW)
        .run()
        .unwrap();
    let mono = Experiment::new(avrora())
        .collector(CollectorKind::KgW)
        .chunk_policy(ChunkPolicy::Monolithic)
        .run()
        .unwrap();
    let (a, b) = (
        two.pcm_writes.bytes() as f64,
        mono.pcm_writes.bytes() as f64,
    );
    assert!(
        (a - b).abs() <= a.max(b) * 0.5 + 1e6,
        "two-lists {a} vs monolithic {b}"
    );
}

#[test]
fn instances_scale_total_allocation() {
    let one = Experiment::new(avrora()).run().unwrap();
    let two = Experiment::new(avrora()).instances(2).run().unwrap();
    let ratio = two.allocated.bytes() as f64 / one.allocated.bytes() as f64;
    assert!(
        (1.8..2.2).contains(&ratio),
        "2 instances should allocate ~2x, got {ratio:.2}x"
    );
}
