//! OS-level hybrid-memory page management.
//!
//! The paper's emulation platform supports two owners of the DRAM/PCM
//! split: the language runtime (the Kingsguard write-rationing collectors
//! in `hemu-heap`) and the operating system's virtual-memory layer. This
//! crate models the OS side, the baseline the paper's headline claim —
//! write-rationing GC beats OS paging at protecting PCM from writes — is
//! measured against.
//!
//! An [`OsPageManager`] owns page placement for an experiment instead of
//! the GC:
//!
//! * **first-touch placement** per [`OsPolicy`]: `DramFirst` faults pages
//!   into DRAM and spills to PCM when DRAM fills, `PcmFirst` does the
//!   opposite, and `HotCold` starts DRAM-first;
//! * **epoch-driven migration** (`HotCold` only): every
//!   [`OsPagingConfig::epoch_lines`] machine line accesses, the manager
//!   samples the per-page read/write counters (`hemu_numa::PageHeatTracker`),
//!   promotes write-hot PCM pages to DRAM and demotes cold DRAM pages to
//!   PCM to make room, moving at most
//!   [`OsPagingConfig::migration_budget`] pages per epoch.
//!
//! Moves go through [`Machine::migrate_frame`], which charges the page
//! copy as controller traffic (wearing PCM on demotions), one page of QPI
//! transfer, and a `PageMigrated` trace event. The manager keeps live
//! `os.*` counters/gauges in the machine's metrics registry and exposes an
//! [`OsStats`] snapshot for the run report.
//!
//! # Examples
//!
//! ```
//! use hemu_machine::{CtxId, Machine, MachineProfile};
//! use hemu_os::OsPageManager;
//! use hemu_types::{Addr, ByteSize, MemoryAccess, OsPagingConfig, OsPolicy};
//!
//! let mut machine = Machine::new(MachineProfile::emulation());
//! let mut cfg = OsPagingConfig::new(OsPolicy::DramFirst);
//! cfg.dram_limit = Some(ByteSize::from_kib(16)); // 4 frames of DRAM
//! let mut os = OsPageManager::install(&mut machine, cfg);
//! let proc = machine.add_process(hemu_types::SocketId::DRAM);
//! os.attach_process(&mut machine, proc);
//! machine.access(CtxId(0), proc, MemoryAccess::write(Addr::new(0), 64))?;
//! os.poll(&mut machine)?;
//! # Ok::<(), hemu_types::HemuError>(())
//! ```

#![warn(missing_docs)]

mod manager;

pub use hemu_types::{OsPagingConfig, OsPolicy};
pub use manager::{OsPageManager, OsStats};
