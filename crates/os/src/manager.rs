//! The [`OsPageManager`]: first-touch placement plus the epoch-driven
//! hot/cold page migrator.

use hemu_machine::{Machine, ProcId};
use hemu_obs::json::{JsonObject, ToJson};
use hemu_obs::Counter;
use hemu_types::{
    ByteSize, HemuError, OsPagingConfig, OsPolicy, PageNum, Result, SocketId, PAGE_SIZE,
};

/// OS-side owner of page placement for one experiment.
///
/// Installed on a [`Machine`] before any workload memory is touched, the
/// manager (a) overrides the per-process `mbind` policy with first-touch
/// placement per [`OsPolicy`], and (b) — for [`OsPolicy::HotCold`] — runs a
/// migration epoch every [`OsPagingConfig::epoch_lines`] machine line
/// accesses when polled from the scheduler loop.
///
/// All activity is published as `os.*` counters in the machine's metrics
/// registry (`os.epochs`, `os.migrations`, `os.promotions`, `os.demotions`,
/// `os.migrated_bytes`, `os.failed_migrations`). The handles survive
/// [`Machine::start_measured_iteration`]'s metrics reset, so end-of-run
/// values cover exactly the measured iteration.
#[derive(Debug)]
pub struct OsPageManager {
    cfg: OsPagingConfig,
    /// Machine line-access count at the start of the current epoch.
    epoch_base: u64,
    epochs: Counter,
    migrations: Counter,
    promotions: Counter,
    demotions: Counter,
    migrated_bytes: Counter,
    failed_migrations: Counter,
}

/// Snapshot of a manager's activity, for run reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OsStats {
    /// The placement policy that ran.
    pub policy: OsPolicy,
    /// Migration epochs executed.
    pub epochs: u64,
    /// Pages moved in either direction.
    pub migrations: u64,
    /// PCM pages promoted to DRAM.
    pub promotions: u64,
    /// DRAM pages demoted to PCM.
    pub demotions: u64,
    /// Bytes copied between sockets by migration.
    pub migrated_bytes: ByteSize,
    /// Promotions abandoned because DRAM stayed full within the epoch's
    /// budget.
    pub failed_migrations: u64,
}

impl ToJson for OsStats {
    fn write_json(&self, out: &mut String) {
        let mut obj = JsonObject::new(out);
        obj.field("policy", &self.policy.name())
            .field("epochs", &self.epochs)
            .field("migrations", &self.migrations)
            .field("promotions", &self.promotions)
            .field("demotions", &self.demotions)
            .field("migrated_bytes", &self.migrated_bytes)
            .field("failed_migrations", &self.failed_migrations);
        obj.finish();
    }
}

impl OsPageManager {
    /// Installs OS paging on `machine`: clamps DRAM capacity when
    /// [`OsPagingConfig::dram_limit`] is set, enables per-page heat
    /// sampling for the hot/cold migrator, and registers the `os.*`
    /// metrics. Call before any workload memory is touched, then
    /// [`attach_process`](OsPageManager::attach_process) each process as it
    /// is created.
    pub fn install(machine: &mut Machine, cfg: OsPagingConfig) -> Self {
        if let Some(limit) = cfg.dram_limit {
            machine.restrict_socket_capacity(SocketId::DRAM, limit);
        }
        if cfg.policy == OsPolicy::HotCold {
            machine.enable_page_heat();
        }
        let m = &machine.obs().metrics;
        OsPageManager {
            epoch_base: machine.stats().line_accesses,
            epochs: m.counter("os.epochs"),
            migrations: m.counter("os.migrations"),
            promotions: m.counter("os.promotions"),
            demotions: m.counter("os.demotions"),
            migrated_bytes: m.counter("os.migrated_bytes"),
            failed_migrations: m.counter("os.failed_migrations"),
            cfg,
        }
    }

    /// The config the manager was installed with.
    pub fn config(&self) -> &OsPagingConfig {
        &self.cfg
    }

    /// Hands `proc`'s page placement to this manager: faults ignore
    /// `mbind` and first-touch onto the policy's primary socket, spilling
    /// to the other one under memory pressure.
    pub fn attach_process(&self, machine: &mut Machine, proc: ProcId) {
        let (primary, spill) = match self.cfg.policy {
            OsPolicy::DramFirst | OsPolicy::HotCold => (SocketId::DRAM, SocketId::PCM),
            OsPolicy::PcmFirst => (SocketId::PCM, SocketId::DRAM),
        };
        machine.set_os_placement(proc, primary, Some(spill));
    }

    /// Scheduler hook: runs a migration epoch when
    /// [`OsPagingConfig::epoch_lines`] machine line accesses have elapsed
    /// since the last one. A no-op for the non-migrating policies, so the
    /// driver can poll unconditionally.
    ///
    /// # Errors
    ///
    /// Propagates machine invariant violations from the migration engine;
    /// an epoch that merely cannot find room in DRAM is not an error (it
    /// counts `os.failed_migrations` and moves on).
    pub fn poll(&mut self, machine: &mut Machine) -> Result<()> {
        if self.cfg.policy != OsPolicy::HotCold {
            return Ok(());
        }
        let now = machine.stats().line_accesses;
        if now < self.epoch_base {
            // Counters were reset (measured iteration started); rebase.
            self.epoch_base = now;
        }
        if now - self.epoch_base < self.cfg.epoch_lines {
            return Ok(());
        }
        self.epoch_base = now;
        self.run_epoch(machine)
    }

    /// One migration epoch: sample page heat, promote write-hot PCM pages
    /// to DRAM (demoting cold DRAM pages when DRAM is full), close the
    /// sampling epoch.
    fn run_epoch(&mut self, machine: &mut Machine) -> Result<()> {
        self.epochs.incr();
        let spans = machine.spans();
        spans.begin("os_epoch", "os", machine.elapsed());
        let result = self.run_epoch_inner(machine);
        spans.end(machine.elapsed());
        result
    }

    fn run_epoch_inner(&mut self, machine: &mut Machine) -> Result<()> {
        let (hot, cold) = self.sample(machine);
        let mut cold = cold.into_iter();
        let mut budget = self.cfg.migration_budget;
        for frame in hot {
            if budget == 0 {
                break;
            }
            match machine.migrate_frame(frame, SocketId::DRAM) {
                Ok(Some(_)) => {
                    budget -= 1;
                    self.note_move(&self.promotions);
                }
                Ok(None) => {} // freed or already moved since sampling
                Err(HemuError::OutOfPhysicalMemory { .. }) => {
                    // DRAM is full: demote the coldest remaining DRAM page
                    // to make room, then retry this promotion once. The
                    // pair costs two budget units.
                    if budget < 2 || !self.demote_one(machine, &mut cold)? {
                        self.failed_migrations.incr();
                        break;
                    }
                    budget -= 1;
                    match machine.migrate_frame(frame, SocketId::DRAM) {
                        Ok(Some(_)) => {
                            budget -= 1;
                            self.note_move(&self.promotions);
                        }
                        Ok(None) => {}
                        Err(HemuError::OutOfPhysicalMemory { .. }) => {
                            self.failed_migrations.incr();
                            break;
                        }
                        Err(e) => return Err(e),
                    }
                }
                Err(e) => return Err(e),
            }
        }
        machine.reset_page_heat_epoch();
        Ok(())
    }

    /// Deterministic candidate selection from the heat tracker: write-hot
    /// PCM frames (hottest first) and cold DRAM frames (coldest first),
    /// ties broken by ascending frame number.
    fn sample(&self, machine: &Machine) -> (Vec<PageNum>, Vec<PageNum>) {
        let Some(heat) = machine.page_heat() else {
            return (Vec::new(), Vec::new());
        };
        let mem = machine.memory();
        let mut hot = Vec::new();
        let mut cold = Vec::new();
        for (frame, h) in heat.iter() {
            match mem.socket_of_frame(frame) {
                SocketId::PCM if h.epoch_writes >= self.cfg.hot_write_threshold => {
                    hot.push((frame, *h));
                }
                SocketId::DRAM if h.epoch_writes == 0 => cold.push((frame, *h)),
                _ => {}
            }
        }
        hot.sort_by(|a, b| {
            b.1.epoch_writes
                .cmp(&a.1.epoch_writes)
                .then(a.0.raw().cmp(&b.0.raw()))
        });
        cold.sort_by(|a, b| {
            a.1.epoch_reads
                .cmp(&b.1.epoch_reads)
                .then(a.0.raw().cmp(&b.0.raw()))
        });
        (
            hot.into_iter().map(|(f, _)| f).collect(),
            cold.into_iter().map(|(f, _)| f).collect(),
        )
    }

    /// Demotes the next still-mapped cold candidate to PCM. `Ok(false)`
    /// when no candidate could be moved (DRAM stays full).
    fn demote_one(
        &self,
        machine: &mut Machine,
        cold: &mut impl Iterator<Item = PageNum>,
    ) -> Result<bool> {
        for frame in cold {
            match machine.migrate_frame(frame, SocketId::PCM)? {
                Some(_) => {
                    self.note_move(&self.demotions);
                    return Ok(true);
                }
                None => continue, // freed since sampling; try the next one
            }
        }
        Ok(false)
    }

    /// Accounts one completed migration under `direction` (promotions or
    /// demotions counter).
    fn note_move(&self, direction: &Counter) {
        direction.incr();
        self.migrations.incr();
        self.migrated_bytes.add(PAGE_SIZE as u64);
    }

    /// Snapshot of the manager's activity so far (since the last metrics
    /// reset, i.e. the measured iteration in the standard protocol).
    pub fn stats(&self) -> OsStats {
        OsStats {
            policy: self.cfg.policy,
            epochs: self.epochs.get(),
            migrations: self.migrations.get(),
            promotions: self.promotions.get(),
            demotions: self.demotions.get(),
            migrated_bytes: ByteSize::new(self.migrated_bytes.get()),
            failed_migrations: self.failed_migrations.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hemu_machine::{CtxId, MachineProfile};
    use hemu_types::{Addr, MemoryAccess};

    fn machine() -> Machine {
        Machine::new(MachineProfile::emulation())
    }

    #[test]
    fn non_migrating_policies_never_run_epochs() {
        let mut m = machine();
        let mut os = OsPageManager::install(&mut m, OsPagingConfig::new(OsPolicy::DramFirst));
        let p = m.add_process(SocketId::DRAM);
        os.attach_process(&mut m, p);
        m.access(CtxId(0), p, MemoryAccess::write(Addr::new(0), 1 << 20))
            .unwrap();
        os.poll(&mut m).unwrap();
        assert_eq!(os.stats().epochs, 0);
        assert!(
            m.page_heat().is_none(),
            "no sampling cost without migration"
        );
    }

    #[test]
    fn epoch_fires_once_per_epoch_lines() {
        let mut m = machine();
        let mut cfg = OsPagingConfig::new(OsPolicy::HotCold);
        cfg.epoch_lines = 100;
        let mut os = OsPageManager::install(&mut m, cfg);
        let p = m.add_process(SocketId::DRAM);
        os.attach_process(&mut m, p);
        // 50 lines: below the epoch threshold.
        m.access(CtxId(0), p, MemoryAccess::write(Addr::new(0), 50 * 64))
            .unwrap();
        os.poll(&mut m).unwrap();
        assert_eq!(os.stats().epochs, 0);
        // 60 more lines crosses it exactly once.
        m.access(
            CtxId(0),
            p,
            MemoryAccess::write(Addr::new(1 << 20), 60 * 64),
        )
        .unwrap();
        os.poll(&mut m).unwrap();
        os.poll(&mut m).unwrap();
        assert_eq!(os.stats().epochs, 1, "no work, no second epoch");
        assert_eq!(m.obs().metrics.counter_value("os.epochs"), 1);
    }

    #[test]
    fn poll_rebases_after_measured_iteration_reset() {
        let mut m = machine();
        let mut cfg = OsPagingConfig::new(OsPolicy::HotCold);
        cfg.epoch_lines = 100;
        let mut os = OsPageManager::install(&mut m, cfg);
        let p = m.add_process(SocketId::DRAM);
        os.attach_process(&mut m, p);
        m.access(CtxId(0), p, MemoryAccess::write(Addr::new(0), 90 * 64))
            .unwrap();
        m.start_measured_iteration();
        // line_accesses went 90 -> 0; a naive subtraction would underflow
        // or fire immediately. The rebase means we need a full epoch again.
        os.poll(&mut m).unwrap();
        assert_eq!(os.stats().epochs, 0);
        m.access(
            CtxId(0),
            p,
            MemoryAccess::write(Addr::new(1 << 20), 110 * 64),
        )
        .unwrap();
        os.poll(&mut m).unwrap();
        assert_eq!(os.stats().epochs, 1);
    }

    #[test]
    fn stats_serialize_to_json() {
        let s = OsStats {
            policy: OsPolicy::HotCold,
            epochs: 2,
            migrations: 3,
            promotions: 2,
            demotions: 1,
            migrated_bytes: ByteSize::new(3 * PAGE_SIZE as u64),
            failed_migrations: 0,
        };
        assert_eq!(
            s.to_json(),
            r#"{"policy":"OS-hot-cold","epochs":2,"migrations":3,"promotions":2,"demotions":1,"migrated_bytes":12288,"failed_migrations":0}"#
        );
    }
}
