//! Acceptance tests for OS-level page placement: first-touch order,
//! spill-on-exhaustion, and the hot-page migrator's effect on PCM writes.

use hemu_machine::{CtxId, Machine, MachineProfile, ProcId};
use hemu_os::{OsPageManager, OsPagingConfig, OsPolicy, OsStats};
use hemu_types::{Addr, ByteSize, MemoryAccess, SocketId, PAGE_SIZE};

const PAGE: u64 = PAGE_SIZE as u64;

fn page_addr(i: u64) -> Addr {
    Addr::new(i * PAGE)
}

/// The socket each of the first `n` pages of `proc` landed on.
fn placements(m: &Machine, proc: ProcId, n: u64) -> Vec<SocketId> {
    (0..n)
        .map(|i| {
            let frame = m
                .address_space(proc)
                .translate_existing(page_addr(i))
                .expect("page was touched")
                .frame();
            m.memory().socket_of_frame(frame)
        })
        .collect()
}

#[test]
fn dram_first_fills_dram_then_spills_to_pcm() {
    let mut m = Machine::new(MachineProfile::emulation());
    let mut cfg = OsPagingConfig::new(OsPolicy::DramFirst);
    cfg.dram_limit = Some(ByteSize::new(4 * PAGE));
    let os = OsPageManager::install(&mut m, cfg);
    // Default socket is PCM: first-touch placement must override it.
    let p = m.add_process(SocketId::PCM);
    os.attach_process(&mut m, p);
    for i in 0..6 {
        m.access(CtxId(0), p, MemoryAccess::write(page_addr(i), 64))
            .unwrap();
    }
    let (dram, pcm) = (SocketId::DRAM, SocketId::PCM);
    assert_eq!(
        placements(&m, p, 6),
        vec![dram, dram, dram, dram, pcm, pcm],
        "first 4 pages fill the restricted DRAM, later faults spill to PCM"
    );
}

#[test]
fn pcm_first_places_everything_on_pcm() {
    let mut m = Machine::new(MachineProfile::emulation());
    let os = OsPageManager::install(&mut m, OsPagingConfig::new(OsPolicy::PcmFirst));
    let p = m.add_process(SocketId::DRAM);
    os.attach_process(&mut m, p);
    for i in 0..6 {
        m.access(CtxId(0), p, MemoryAccess::write(page_addr(i), 64))
            .unwrap();
    }
    assert!(placements(&m, p, 6).iter().all(|&s| s == SocketId::PCM));
}

/// A deterministic write-hot synthetic: a 32-page working set touched once,
/// then 4 of the spilled pages hammered with one line write per round. The
/// machine flushes every round so the writes reach a controller, and the
/// manager is polled like the experiment scheduler would.
fn run_synthetic(policy: OsPolicy) -> (u64, OsStats) {
    let mut m = Machine::new(MachineProfile::emulation());
    let mut cfg = OsPagingConfig::new(policy);
    cfg.dram_limit = Some(ByteSize::new(8 * PAGE));
    cfg.epoch_lines = 16;
    cfg.hot_write_threshold = 2;
    cfg.migration_budget = 16;
    let mut os = OsPageManager::install(&mut m, cfg);
    let p = m.add_process(SocketId::DRAM);
    os.attach_process(&mut m, p);
    for i in 0..32 {
        m.access(CtxId(0), p, MemoryAccess::write(page_addr(i), 64))
            .unwrap();
    }
    m.flush_caches().unwrap();
    // Pages 28..32 faulted after DRAM filled, so under dram-first placement
    // they live on PCM when the hot phase starts.
    for _round in 0..200 {
        for i in 28..32 {
            m.access(CtxId(0), p, MemoryAccess::write(page_addr(i), 64))
                .unwrap();
        }
        m.flush_caches().unwrap();
        os.poll(&mut m).unwrap();
    }
    (m.memory().counters(SocketId::PCM).write_lines(), os.stats())
}

#[test]
fn hot_page_promotion_reduces_pcm_writes_vs_pcm_first() {
    let (hot_cold_writes, hot_cold) = run_synthetic(OsPolicy::HotCold);
    let (pcm_first_writes, pcm_first) = run_synthetic(OsPolicy::PcmFirst);
    assert_eq!(pcm_first.migrations, 0, "PcmFirst never migrates");
    assert!(hot_cold.epochs > 0, "the migrator ran: {hot_cold:?}");
    assert!(
        hot_cold.promotions >= 4,
        "all 4 hot pages were promoted: {hot_cold:?}"
    );
    assert!(
        hot_cold.demotions > 0,
        "promotions into a full DRAM demote cold pages: {hot_cold:?}"
    );
    assert_eq!(
        hot_cold.migrated_bytes.bytes(),
        hot_cold.migrations * PAGE,
        "one page copied per migration"
    );
    assert!(
        hot_cold_writes < pcm_first_writes,
        "promoting the write-hot pages must shield PCM: \
         hot-cold {hot_cold_writes} lines vs pcm-first {pcm_first_writes} lines"
    );
}

#[test]
fn hot_cold_migration_is_deterministic() {
    let a = run_synthetic(OsPolicy::HotCold);
    let b = run_synthetic(OsPolicy::HotCold);
    assert_eq!(a, b, "same inputs, same placement decisions, same traffic");
}
