//! The parallel executor's determinism guarantee: every exported artifact
//! — `runs.json`, `samples.csv`, per-run JSON reports, the event trace,
//! and the rendered figure text — is byte-identical at any `--jobs` width,
//! including against the fully sequential `--jobs 1` path, and at any
//! *intra-run* batch-resolution thread count (the sharded cache pipeline
//! inside each machine). Holds with and without an active fault plan, and
//! for sweeps whose later runs are conditional on earlier results (the
//! planning-wave case).

use hemu_bench::{Harness, Profile, RunPolicy, Scale};
use hemu_fault::FaultPlan;
use hemu_heap::CollectorKind;
use hemu_obs::Reporter;
use hemu_types::{ByteSize, OsPagingConfig, OsPolicy, Result, SubmitMode};
use hemu_workloads::WorkloadSpec;
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::time::Duration;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// A miniature figure function with the shapes real figures have: a
/// cross-product sweep via `run_opt`, plus a multiprogrammed run that is
/// demanded only when its single-instance base succeeded (the dependent
/// branch that forces multi-wave planning).
fn sweep(h: &mut Harness) -> Result<String> {
    let mut out = String::new();
    for name in ["avrora", "fop", "luindex"] {
        let spec = WorkloadSpec::by_name(name).expect("workload registry");
        for collector in [CollectorKind::PcmOnly, CollectorKind::KgN] {
            if let Some(r) = h.run_opt(spec, collector, 1, Profile::Emulation) {
                out.push_str(&format!(
                    "{name} {} pcm={} elapsed={:.3}\n",
                    collector.name(),
                    r.pcm_writes,
                    r.elapsed_seconds
                ));
            }
        }
    }
    let fop = WorkloadSpec::by_name("fop").expect("workload registry");
    if h.run_opt(fop, CollectorKind::PcmOnly, 1, Profile::Emulation)
        .is_some()
    {
        if let Some(r) = h.run_opt(fop, CollectorKind::PcmOnly, 2, Profile::Emulation) {
            out.push_str(&format!("fop x2 pcm={}\n", r.pcm_writes));
        }
    }
    Ok(out)
}

/// Runs the sweep end to end at the given jobs width and returns the
/// rendered text plus every artifact, keyed by file name.
fn artifacts(
    dir: &Path,
    jobs: usize,
    faults: Option<FaultPlan>,
) -> (String, BTreeMap<String, String>) {
    artifacts_intra(dir, jobs, 1, faults)
}

/// [`artifacts`] with an explicit intra-run batch-resolution thread count.
fn artifacts_intra(
    dir: &Path,
    jobs: usize,
    intra: usize,
    faults: Option<FaultPlan>,
) -> (String, BTreeMap<String, String>) {
    artifacts_submit(dir, jobs, intra, faults, SubmitMode::default())
}

/// [`artifacts_intra`] with an explicit submission mode (deferred vs
/// per-call scalar).
fn artifacts_submit(
    dir: &Path,
    jobs: usize,
    intra: usize,
    faults: Option<FaultPlan>,
    submit: SubmitMode,
) -> (String, BTreeMap<String, String>) {
    let mut h = Harness::new(Scale::Quick);
    h.set_jobs(jobs);
    h.set_intra_threads(intra);
    h.set_submit_mode(submit);
    h.set_reporter(Reporter::to_writer(Box::new(std::io::sink())));
    h.set_json_dir(dir).expect("create json dir");
    h.set_trace_out(dir.join("trace.jsonl")).expect("trace out");
    h.set_run_policy(RunPolicy {
        backoff: Duration::from_millis(1),
        ..RunPolicy::default()
    });
    if let Some(plan) = faults {
        h.set_fault_plan(plan);
    }
    let text = h.run_planned(sweep).expect("sweep renders");
    h.finalize_exports().expect("finalize");

    let mut files = BTreeMap::new();
    for entry in fs::read_dir(dir).expect("read dir") {
        let entry = entry.expect("dir entry");
        let name = entry.file_name().to_string_lossy().into_owned();
        let content = fs::read_to_string(entry.path()).expect("read artifact");
        files.insert(name, content);
    }
    (text, files)
}

fn assert_identical(
    a: &(String, BTreeMap<String, String>),
    b: &(String, BTreeMap<String, String>),
) {
    assert_eq!(a.0, b.0, "rendered text diverged");
    assert_eq!(
        a.1.keys().collect::<Vec<_>>(),
        b.1.keys().collect::<Vec<_>>(),
        "artifact file sets diverged"
    );
    for (name, content) in &a.1 {
        assert_eq!(content, &b.1[name], "artifact {name} diverged");
    }
}

/// `--jobs 4` must produce byte-identical artifacts to `--jobs 1`.
#[test]
fn parallel_sweep_is_byte_identical_to_sequential() {
    let seq = artifacts(&tmp_dir("det-seq"), 1, None);
    let par = artifacts(&tmp_dir("det-par"), 4, None);
    assert_identical(&seq, &par);
    assert!(
        seq.1["runs.json"].matches("\"key\":").count() >= 7,
        "the sweep includes the dependent multiprogrammed run"
    );
}

/// Same guarantee with a fault plan injecting deterministic failures and
/// retries: failed runs, attempt counts, and partial tables must also be
/// byte-identical across jobs widths.
#[test]
fn faulted_parallel_sweep_is_byte_identical_to_sequential() {
    let plan = FaultPlan {
        seed: 3,
        frame_alloc_p: 0.5,
        only: Some("avrora".into()),
        ..FaultPlan::none()
    };
    let seq = artifacts(&tmp_dir("det-fault-seq"), 1, Some(plan.clone()));
    let par = artifacts(&tmp_dir("det-fault-par"), 4, Some(plan));
    assert_identical(&seq, &par);
}

/// A GC-vs-OS sweep: collectors and OS paging policies side by side, with
/// the hot/cold migrator actively moving pages (small DRAM clamp, short
/// epochs).
fn os_sweep(h: &mut Harness) -> Result<String> {
    let mut out = String::new();
    let spec = WorkloadSpec::by_name("avrora").expect("workload registry");
    for collector in [CollectorKind::PcmOnly, CollectorKind::KgN] {
        if let Some(r) = h.run_opt(spec, collector, 1, Profile::Emulation) {
            out.push_str(&format!("{} pcm={}\n", collector.name(), r.pcm_writes));
        }
    }
    for policy in OsPolicy::ALL {
        if let Some(r) = h.run_opt(spec, policy, 1, Profile::Emulation) {
            let os = r.os_paging.expect("OS-managed run carries stats");
            out.push_str(&format!(
                "{} pcm={} epochs={} promoted={} demoted={}\n",
                policy.name(),
                r.pcm_writes,
                os.epochs,
                os.promotions,
                os.demotions
            ));
        }
    }
    Ok(out)
}

/// Runs the OS-policy sweep at the given jobs width (shares the artifact
/// collection of [`artifacts`], but with migrator tuning installed).
fn os_artifacts(dir: &Path, jobs: usize) -> (String, BTreeMap<String, String>) {
    os_artifacts_submit(dir, jobs, SubmitMode::default())
}

/// [`os_artifacts`] with an explicit submission mode.
fn os_artifacts_submit(
    dir: &Path,
    jobs: usize,
    submit: SubmitMode,
) -> (String, BTreeMap<String, String>) {
    let mut h = Harness::new(Scale::Quick);
    h.set_jobs(jobs);
    h.set_submit_mode(submit);
    h.set_reporter(Reporter::to_writer(Box::new(std::io::sink())));
    h.set_json_dir(dir).expect("create json dir");
    h.set_trace_out(dir.join("trace.jsonl")).expect("trace out");
    let mut tuning = OsPagingConfig::default();
    tuning.dram_limit = Some(ByteSize::from_mib(4));
    tuning.epoch_lines = 20_000;
    h.set_os_tuning(tuning);
    let text = h.run_planned(os_sweep).expect("sweep renders");
    h.finalize_exports().expect("finalize");

    let mut files = BTreeMap::new();
    for entry in fs::read_dir(dir).expect("read dir") {
        let entry = entry.expect("dir entry");
        let name = entry.file_name().to_string_lossy().into_owned();
        let content = fs::read_to_string(entry.path()).expect("read artifact");
        files.insert(name, content);
    }
    (text, files)
}

/// An OS-policy sweep with an active hot/cold migrator exports
/// byte-identical artifacts at `--jobs 1` and `--jobs 4`.
#[test]
fn os_policy_sweep_is_byte_identical_to_sequential() {
    let seq = os_artifacts(&tmp_dir("det-os-seq"), 1);
    let par = os_artifacts(&tmp_dir("det-os-par"), 4);
    assert_identical(&seq, &par);
    assert!(
        seq.0.contains("OS-hot-cold") && seq.0.contains("epochs="),
        "hot/cold migrator ran in the sweep: {}",
        seq.0
    );
    assert!(
        seq.1["runs.json"].contains("\"os_paging\":{\"policy\":\"OS-hot-cold\""),
        "runs.json carries the migration block"
    );
}

/// Runs the sweep with the profiler and its timeline/heatmap exports
/// enabled. The export files land in `dir`, so the generic artifact
/// comparison covers them too.
fn profiled_artifacts(dir: &Path, jobs: usize) -> (String, BTreeMap<String, String>) {
    let mut h = Harness::new(Scale::Quick);
    h.set_jobs(jobs);
    h.set_reporter(Reporter::to_writer(Box::new(std::io::sink())));
    h.set_json_dir(dir).expect("create json dir");
    h.set_timeline_out(dir.join("timeline.json"))
        .expect("timeline out");
    h.set_heatmap_out(dir.join("heatmap.csv"))
        .expect("heatmap out");
    let text = h.run_planned(sweep).expect("sweep renders");
    h.finalize_exports().expect("finalize");

    let mut files = BTreeMap::new();
    for entry in fs::read_dir(dir).expect("read dir") {
        let entry = entry.expect("dir entry");
        let name = entry.file_name().to_string_lossy().into_owned();
        let content = fs::read_to_string(entry.path()).expect("read artifact");
        files.insert(name, content);
    }
    (text, files)
}

/// The profiler's exports — the span timeline and the per-page wear
/// heatmap — are byte-identical at `--jobs 1` and `--jobs 4`, like every
/// other artifact: spans carry only virtual time, and commit order (demand
/// order) decides track and row layout.
#[test]
fn profiled_sweep_artifacts_are_byte_identical() {
    let seq = profiled_artifacts(&tmp_dir("det-prof-seq"), 1);
    let par = profiled_artifacts(&tmp_dir("det-prof-par"), 4);
    assert_identical(&seq, &par);

    let timeline = &seq.1["timeline.json"];
    assert!(
        timeline.contains("\"traceEvents\":[") && timeline.contains("\"name\":\"iteration\""),
        "timeline carries the measured-iteration spans"
    );
    assert!(
        timeline.contains("avrora|PCM-Only|1|Emulation"),
        "runs are labelled by their keys"
    );
    let heatmap = &seq.1["heatmap.csv"];
    assert!(
        heatmap.starts_with("key,frame,writes,lines_touched,max_line_writes\n"),
        "heatmap header is stable"
    );
    assert!(
        heatmap.lines().count() > 1,
        "profiled runs produce wear rows"
    );
    // Profiled reports carry the attribution block.
    assert!(seq.1["runs.json"].contains("\"provenance\":{\"pcm\":{\"by_cause\":{\"mutator\":"));
}

/// The intra-run matrix: artifacts are byte-identical across batch-
/// resolution thread counts {1, 2, 4} crossed with `--jobs` {1, 4}. This
/// is the determinism invariant one level below the executor — shard
/// partitioning fixes every outcome regardless of how many workers resolve
/// the shards, and the merge replays bookkeeping in submission order.
#[test]
fn intra_thread_matrix_is_byte_identical() {
    let base = artifacts_intra(&tmp_dir("det-intra-base"), 1, 1, None);
    for jobs in [1, 4] {
        for intra in [1, 2, 4] {
            if (jobs, intra) == (1, 1) {
                continue;
            }
            let name = format!("det-intra-j{jobs}-t{intra}");
            let got = artifacts_intra(&tmp_dir(&name), jobs, intra, None);
            assert_identical(&base, &got);
        }
    }
}

/// The same matrix with a fault plan injecting deterministic allocation
/// failures and retries: attempt counts, failed runs, and partial tables
/// must not depend on either parallelism axis.
#[test]
fn faulted_intra_thread_matrix_is_byte_identical() {
    let plan = FaultPlan {
        seed: 3,
        frame_alloc_p: 0.5,
        only: Some("avrora".into()),
        ..FaultPlan::none()
    };
    let base = artifacts_intra(&tmp_dir("det-fintra-base"), 1, 1, Some(plan.clone()));
    for jobs in [1, 4] {
        for intra in [2, 4] {
            let name = format!("det-fintra-j{jobs}-t{intra}");
            let got = artifacts_intra(&tmp_dir(&name), jobs, intra, Some(plan.clone()));
            assert_identical(&base, &got);
        }
    }
}

/// The submission-mode axis: deferred submission (mutator/GC traffic
/// buffered and flushed through the batch pipeline at semantic
/// boundaries) produces byte-identical artifacts to per-call scalar
/// submission, across `--jobs` {1, 4} × `--intra-threads` {1, 4}. This is
/// the deferral tentpole's end-to-end invariant — the machine-level
/// equivalence test lives in `hemu-machine`, this one locks every
/// exported artifact.
#[test]
fn deferred_submission_matrix_is_byte_identical_to_scalar() {
    let base = artifacts_submit(&tmp_dir("det-sub-base"), 1, 1, None, SubmitMode::Scalar);
    for jobs in [1, 4] {
        for intra in [1, 4] {
            let name = format!("det-sub-j{jobs}-t{intra}");
            let got = artifacts_submit(&tmp_dir(&name), jobs, intra, None, SubmitMode::Deferred);
            assert_identical(&base, &got);
        }
    }
}

/// The same deferred-vs-scalar guarantee under an active fault plan: the
/// machine gates deferral off when a fault injector observes per-line
/// order, so failed runs, attempt counts, and partial tables must match
/// the scalar reference exactly.
#[test]
fn faulted_deferred_submission_is_byte_identical_to_scalar() {
    let plan = FaultPlan {
        seed: 3,
        frame_alloc_p: 0.5,
        only: Some("avrora".into()),
        ..FaultPlan::none()
    };
    let base = artifacts_submit(
        &tmp_dir("det-fsub-base"),
        1,
        1,
        Some(plan.clone()),
        SubmitMode::Scalar,
    );
    for jobs in [1, 4] {
        for intra in [1, 4] {
            let name = format!("det-fsub-j{jobs}-t{intra}");
            let got = artifacts_submit(
                &tmp_dir(&name),
                jobs,
                intra,
                Some(plan.clone()),
                SubmitMode::Deferred,
            );
            assert_identical(&base, &got);
        }
    }
}

/// Deferred vs scalar across OS paging policies: the hot/cold migrator's
/// heat sampling, migrations, and TLB flushes see identical traffic in
/// either mode.
#[test]
fn os_policy_sweep_deferred_matches_scalar() {
    let scalar = os_artifacts_submit(&tmp_dir("det-os-sub-s"), 1, SubmitMode::Scalar);
    let deferred = os_artifacts_submit(&tmp_dir("det-os-sub-d"), 4, SubmitMode::Deferred);
    assert_identical(&scalar, &deferred);
}

/// A consolidation sweep: two tenant densities of the DaCapo mix
/// co-scheduled on shared hardware, rendering per-density PCM totals and
/// the per-tenant attribution the consolidation block carries.
fn tenant_sweep(h: &mut Harness) -> Result<String> {
    let mut out = String::new();
    for tenants in [2usize, 3] {
        if let Some(r) = h.run_consolidated_opt(
            hemu_tenant::Mix::Dacapo,
            tenants,
            32,
            CollectorKind::PcmOnly,
            Profile::Emulation,
        ) {
            let c = r.consolidation.expect("consolidated run carries the block");
            let shares: Vec<String> = c
                .per_tenant
                .iter()
                .map(|t| format!("{}:{}", t.workload, t.pcm_write_lines))
                .collect();
            out.push_str(&format!(
                "dacapo@{tenants} pcm={} unattributed={} [{}]\n",
                r.pcm_writes,
                c.unattributed_pcm_lines,
                shares.join(" ")
            ));
        }
    }
    Ok(out)
}

/// Runs the tenant sweep end to end and collects every exported artifact.
fn tenant_artifacts(
    dir: &Path,
    jobs: usize,
    intra: usize,
    faults: Option<FaultPlan>,
    submit: SubmitMode,
) -> (String, BTreeMap<String, String>) {
    let mut h = Harness::new(Scale::Quick);
    h.set_jobs(jobs);
    h.set_intra_threads(intra);
    h.set_submit_mode(submit);
    h.set_reporter(Reporter::to_writer(Box::new(std::io::sink())));
    h.set_json_dir(dir).expect("create json dir");
    h.set_trace_out(dir.join("trace.jsonl")).expect("trace out");
    if let Some(plan) = faults {
        h.set_fault_plan(plan);
    }
    let text = h.run_planned(tenant_sweep).expect("sweep renders");
    h.finalize_exports().expect("finalize");

    let mut files = BTreeMap::new();
    for entry in fs::read_dir(dir).expect("read dir") {
        let entry = entry.expect("dir entry");
        let name = entry.file_name().to_string_lossy().into_owned();
        let content = fs::read_to_string(entry.path()).expect("read artifact");
        files.insert(name, content);
    }
    (text, files)
}

/// Consolidated sweeps are byte-identical across `--jobs` {1, 4} ×
/// `--intra-threads` {1, 4}: the slice scheduler runs in virtual time, so
/// neither executor width nor shard-resolution width can reorder tenant
/// turns or write attribution.
#[test]
fn tenant_sweep_is_byte_identical_across_jobs_and_intra() {
    let base = tenant_artifacts(&tmp_dir("det-ten-base"), 1, 1, None, SubmitMode::default());
    for (jobs, intra) in [(1, 4), (4, 1), (4, 4)] {
        let name = format!("det-ten-j{jobs}-t{intra}");
        let got = tenant_artifacts(&tmp_dir(&name), jobs, intra, None, SubmitMode::default());
        assert_identical(&base, &got);
    }
    assert!(
        base.0.contains("dacapo@2") && base.0.contains("dacapo@3"),
        "both densities rendered: {}",
        base.0
    );
    assert!(
        base.1["runs.json"].contains("\"consolidation\":{\"mix\":\"dacapo\""),
        "runs.json carries the consolidation block"
    );
    assert!(
        base.1["runs.json"].contains("\"unattributed_pcm_lines\":0"),
        "per-tenant attribution is complete"
    );
}

/// The same guarantee with a fault plan scoped to the density-2 run:
/// deterministic injected failures, retries, and the surviving density-3
/// run must not depend on either parallelism axis.
#[test]
fn faulted_tenant_sweep_is_byte_identical() {
    let plan = FaultPlan {
        seed: 3,
        frame_alloc_p: 0.5,
        only: Some("dacapo@2".into()),
        ..FaultPlan::none()
    };
    let base = tenant_artifacts(
        &tmp_dir("det-ften-base"),
        1,
        1,
        Some(plan.clone()),
        SubmitMode::default(),
    );
    let par = tenant_artifacts(
        &tmp_dir("det-ften-par"),
        4,
        4,
        Some(plan),
        SubmitMode::default(),
    );
    assert_identical(&base, &par);
}

/// Deferred vs scalar submission for consolidated runs: slice boundaries
/// are semantic flush points, so buffering tenant traffic through the
/// batch pipeline must reproduce the per-call scalar reference exactly.
#[test]
fn tenant_sweep_deferred_matches_scalar() {
    let scalar = tenant_artifacts(&tmp_dir("det-ten-sub-s"), 1, 1, None, SubmitMode::Scalar);
    for (jobs, intra) in [(1, 4), (4, 1)] {
        let name = format!("det-ten-sub-d-j{jobs}-t{intra}");
        let got = tenant_artifacts(&tmp_dir(&name), jobs, intra, None, SubmitMode::Deferred);
        assert_identical(&scalar, &got);
    }
}

/// Widths beyond the job count (and odd widths) change nothing either.
#[test]
fn oversized_pool_is_byte_identical() {
    let seq = artifacts(&tmp_dir("det-seq2"), 1, None);
    let wide = artifacts(&tmp_dir("det-wide"), 32, None);
    assert_identical(&seq, &wide);
}

/// The capped linear backoff: grows linearly, then saturates at
/// `max_backoff` instead of stalling a worker for the full product.
#[test]
fn backoff_is_linear_then_capped() {
    let policy = RunPolicy {
        backoff: Duration::from_millis(40),
        max_backoff: Duration::from_millis(100),
        ..RunPolicy::default()
    };
    assert_eq!(policy.backoff_for(1), Duration::from_millis(40));
    assert_eq!(policy.backoff_for(2), Duration::from_millis(80));
    assert_eq!(policy.backoff_for(3), Duration::from_millis(100), "capped");
    assert_eq!(policy.backoff_for(1000), Duration::from_millis(100));
    // The default policy's cap bounds every sleep at one second.
    let d = RunPolicy::default();
    assert!(d.backoff_for(u32::MAX) <= Duration::from_secs(1));
}
