//! Crash-safe sweeps: a killed `--json-out` sweep leaves a write-ahead
//! `journal.jsonl` plus atomically-written per-run artifacts, and resuming
//! it replays the journaled results and re-executes only what is missing,
//! failed, torn, or unverifiable — ending with artifacts byte-identical to
//! an uninterrupted sweep's, at any `--jobs` width. Locked here both
//! in-process (simulated crash damage) and end-to-end through the `repro`
//! binary's `--chaos-kill-after`/`--resume` flags.

use hemu_bench::{Harness, Profile, RunPolicy, Scale};
use hemu_fault::FaultPlan;
use hemu_heap::CollectorKind;
use hemu_obs::journal::journal_path;
use hemu_obs::Reporter;
use hemu_types::{HemuError, Result};
use hemu_workloads::WorkloadSpec;
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::Duration;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// The determinism suite's miniature figure: a cross-product sweep plus a
/// run demanded only when its base succeeded (forces multi-wave planning).
fn sweep(h: &mut Harness) -> Result<String> {
    let mut out = String::new();
    for name in ["avrora", "fop", "luindex"] {
        let spec = WorkloadSpec::by_name(name).expect("workload registry");
        for collector in [CollectorKind::PcmOnly, CollectorKind::KgN] {
            if let Some(r) = h.run_opt(spec, collector, 1, Profile::Emulation) {
                out.push_str(&format!(
                    "{name} {} pcm={}\n",
                    collector.name(),
                    r.pcm_writes
                ));
            }
        }
    }
    let fop = WorkloadSpec::by_name("fop").expect("workload registry");
    if h.run_opt(fop, CollectorKind::PcmOnly, 1, Profile::Emulation)
        .is_some()
    {
        if let Some(r) = h.run_opt(fop, CollectorKind::PcmOnly, 2, Profile::Emulation) {
            out.push_str(&format!("fop x2 pcm={}\n", r.pcm_writes));
        }
    }
    Ok(out)
}

fn quiet_harness(jobs: usize) -> Harness {
    let mut h = Harness::new(Scale::Quick);
    h.set_jobs(jobs);
    h.set_reporter(Reporter::to_writer(Box::new(std::io::sink())));
    h.set_run_policy(RunPolicy {
        backoff: Duration::from_millis(1),
        ..RunPolicy::default()
    });
    h
}

/// Runs the sweep uninterrupted into `dir` and returns the rendered text.
fn clean_run(dir: &Path, jobs: usize) -> String {
    let mut h = quiet_harness(jobs);
    h.set_json_dir(dir).expect("create json dir");
    let text = h.run_planned(sweep).expect("sweep renders");
    h.finalize_exports().expect("finalize");
    text
}

fn read_dir_bytes(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut files = BTreeMap::new();
    for entry in fs::read_dir(dir).expect("read dir") {
        let entry = entry.expect("dir entry");
        let name = entry.file_name().to_string_lossy().into_owned();
        files.insert(name, fs::read(entry.path()).expect("read artifact"));
    }
    files
}

fn assert_dirs_identical(reference: &Path, resumed: &Path) {
    let a = read_dir_bytes(reference);
    let b = read_dir_bytes(resumed);
    assert_eq!(
        a.keys().collect::<Vec<_>>(),
        b.keys().collect::<Vec<_>>(),
        "artifact file sets diverged"
    );
    for (name, content) in &a {
        assert_eq!(content, &b[name], "artifact {name} diverged after resume");
    }
}

/// Inflicts a realistic mix of crash damage on a completed sweep
/// directory: the journal is cut to its header plus two committed records
/// and a torn trailing fragment; one journaled per-run artifact is
/// corrupted (its content hash no longer matches); one non-journaled
/// artifact is deleted outright; and the combined exports (written only at
/// finalization) are gone.
fn simulate_crash(dir: &Path) {
    let journal = journal_path(dir);
    let text = fs::read_to_string(&journal).expect("read journal");
    let mut lines = text.lines();
    let mut kept = String::new();
    for _ in 0..3 {
        kept.push_str(lines.next().expect("journal has header + 2 records"));
        kept.push('\n');
    }
    kept.push_str("{\"key\":\"torn-mid-wri");
    fs::write(&journal, kept).expect("truncate journal");

    fs::write(
        dir.join("avrora_KG-N_1_Emulation.json"),
        "{\"tampered\":true}\n",
    )
    .expect("corrupt a journaled artifact");
    fs::remove_file(dir.join("luindex_KG-N_1_Emulation.json")).expect("delete an artifact");
    fs::remove_file(dir.join("runs.json")).expect("delete runs.json");
    fs::remove_file(dir.join("samples.csv")).expect("delete samples.csv");
}

/// Resumes the damaged directory and returns the rendered text plus the
/// replay/re-execute split actually used.
fn resumed_run(dir: &Path, jobs: usize) -> (String, usize, usize) {
    let mut h = quiet_harness(jobs);
    h.resume_from(dir).expect("resume accepts the journal");
    let text = h.run_planned(sweep).expect("sweep renders");
    h.finalize_exports().expect("finalize");
    (text, h.runs_restored, h.runs_executed)
}

/// A crash-damaged sweep, resumed, ends byte-identical to an uninterrupted
/// sweep — at the sequential width and on a worker pool.
#[test]
fn resumed_sweep_is_byte_identical_to_uninterrupted() {
    let reference = tmp_dir("resume-ref");
    let ref_text = clean_run(&reference, 2);

    for jobs in [1usize, 4] {
        let crashed = tmp_dir(&format!("resume-crash-j{jobs}"));
        clean_run(&crashed, jobs);
        simulate_crash(&crashed);
        let (text, restored, executed) = resumed_run(&crashed, jobs);
        assert_eq!(text, ref_text, "rendered text diverged at jobs {jobs}");
        // Of the two journaled records, the corrupted one must fall back to
        // re-execution; only the intact one replays.
        assert_eq!(restored, 1, "exactly one journaled run replays");
        assert_eq!(
            executed, 6,
            "the corrupted, missing, and unjournaled runs re-execute"
        );
        assert_dirs_identical(&reference, &crashed);
    }
}

/// A journal written under a different sweep plan (here: a fault plan the
/// resuming harness does not have) is refused with a typed error, not
/// silently replayed into wrong results.
#[test]
fn resume_refuses_a_journal_from_a_different_plan() {
    let dir = tmp_dir("resume-plan-mismatch");
    clean_run(&dir, 1);

    let mut h = quiet_harness(1);
    h.set_fault_plan(FaultPlan {
        seed: 7,
        frame_alloc_p: 0.5,
        ..FaultPlan::none()
    });
    match h.resume_from(&dir) {
        Err(HemuError::JournalMismatch { expected, found }) => {
            assert_ne!(expected, found);
        }
        other => panic!("expected JournalMismatch, got {other:?}"),
    }
}

/// End to end through the binary: run the `smoke` target, kill it after
/// two commits (`--chaos-kill-after`), resume it, and require the resumed
/// directory to match an uninterrupted reference byte for byte — across
/// different `--jobs` widths.
#[test]
fn chaos_killed_cli_sweep_resumes_byte_identical() {
    let repro = env!("CARGO_BIN_EXE_repro");
    let reference = tmp_dir("chaos-cli-ref");
    let crashed = tmp_dir("chaos-cli-crash");

    let run = |args: &[&str]| {
        Command::new(repro)
            .args(args)
            .output()
            .expect("spawn repro")
    };

    let reference_s = reference.to_string_lossy().into_owned();
    let crashed_s = crashed.to_string_lossy().into_owned();
    let out = run(&[
        "smoke",
        "--quick",
        "--jobs",
        "2",
        "--json-out",
        &reference_s,
    ]);
    assert!(out.status.success(), "reference sweep failed: {out:?}");

    // Sequential, so the kill lands after two *executed* runs, leaving a
    // genuinely partial directory (not a fully staged wave).
    let out = run(&[
        "smoke",
        "--quick",
        "--jobs",
        "1",
        "--chaos-kill-after",
        "2",
        "--json-out",
        &crashed_s,
    ]);
    assert_eq!(
        out.status.code(),
        Some(137),
        "chaos kill must exit like a SIGKILL: {out:?}"
    );
    assert!(
        journal_path(&crashed).exists(),
        "the journal survives the kill"
    );
    assert!(
        !crashed.join("runs.json").exists(),
        "the kill precedes export finalization"
    );

    let out = run(&["smoke", "--quick", "--jobs", "4", "--resume", &crashed_s]);
    assert!(out.status.success(), "resume failed: {out:?}");
    assert_dirs_identical(&reference, &crashed);
}
