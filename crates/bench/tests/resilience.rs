//! Resilience contracts of the sweep harness: a faulted run is recorded
//! and skipped, the rest of the sweep completes, the export artifacts
//! carry per-run status, and deadlines/retries behave as configured.

use hemu_bench::{Harness, RunPolicy, RunStatus, Scale};
use hemu_fault::FaultPlan;
use hemu_heap::CollectorKind;
use hemu_workloads::WorkloadSpec;
use std::fs;
use std::path::PathBuf;
use std::time::Duration;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// One workload is forced to OOM; the other runs of the sweep must still
/// complete, the failure must land in `runs.json` with its status and
/// cause, and repeated references to the bad configuration must fail fast
/// without re-running it.
#[test]
fn forced_oom_does_not_abort_the_sweep() {
    let dir = tmp_dir("forced-oom");
    let mut h = Harness::new(Scale::Quick);
    h.set_json_dir(&dir).unwrap();
    h.set_fault_plan(FaultPlan {
        oom_at_alloc: Some(1),
        only: Some("avrora".into()),
        ..FaultPlan::none()
    });

    let victim = WorkloadSpec::by_name("avrora").unwrap();
    let healthy = WorkloadSpec::by_name("lusearch").unwrap();

    assert!(h.run1_opt(victim, CollectorKind::PcmOnly).is_none());
    assert!(h.run1_opt(healthy, CollectorKind::PcmOnly).is_some());
    assert!(h.run1_opt(healthy, CollectorKind::KgN).is_some());

    assert_eq!(h.failed_count(), 1);
    let executed_before = h.runs_executed;
    // Fail-fast memoization: the bad configuration is not executed again.
    assert!(h.run1_opt(victim, CollectorKind::PcmOnly).is_none());
    assert_eq!(h.runs_executed, executed_before);

    let records = h.records();
    assert_eq!(records.len(), 3);
    assert_eq!(records[0].status, RunStatus::Failed);
    assert!(records[0].error.as_deref().unwrap().contains("forced-oom"));
    assert!(records[1..].iter().all(|r| r.status == RunStatus::Ok));

    h.finalize_exports().unwrap();
    let runs = fs::read_to_string(dir.join("runs.json")).unwrap();
    assert_eq!(runs.matches("\"key\":").count(), 3, "every run is recorded");
    assert!(runs.contains("\"status\":\"failed\""));
    assert!(runs.contains("\"status\":\"ok\""));
    assert!(runs.contains("forced-oom"));
    assert!(
        runs.contains("\"report\":null"),
        "failed runs carry no report"
    );
    // The samples CSV only aggregates successful runs.
    let csv = fs::read_to_string(dir.join("samples.csv")).unwrap();
    assert!(!csv.contains("avrora|PCM-Only"));
}

/// A transient fault with probability 1 exhausts the retry budget: the
/// run is attempted exactly `max_attempts` times and recorded as failed
/// with the transient cause.
#[test]
fn transient_faults_consume_the_retry_budget() {
    let mut h = Harness::new(Scale::Quick);
    h.set_run_policy(RunPolicy {
        backoff: Duration::from_millis(1),
        ..RunPolicy::default()
    });
    h.set_fault_plan(FaultPlan {
        frame_alloc_p: 1.0,
        ..FaultPlan::none()
    });
    let spec = WorkloadSpec::by_name("avrora").unwrap();
    assert!(h.run1_opt(spec, CollectorKind::PcmOnly).is_none());
    let rec = &h.records()[0];
    assert_eq!(rec.status, RunStatus::Failed);
    assert_eq!(rec.attempts, RunPolicy::default().max_attempts);
    assert!(rec.error.as_deref().unwrap().contains("frame-alloc"));
    assert!(rec.error.as_deref().unwrap().contains("transient"));
}

/// An absurdly short deadline abandons the run and records a timeout; the
/// sweep carries on.
#[test]
fn expired_deadline_is_recorded_as_timeout() {
    let mut h = Harness::new(Scale::Quick);
    h.set_run_policy(RunPolicy {
        deadline: Some(Duration::from_millis(1)),
        ..RunPolicy::default()
    });
    let spec = WorkloadSpec::by_name("avrora").unwrap();
    assert!(h.run1_opt(spec, CollectorKind::PcmOnly).is_none());
    let rec = &h.records()[0];
    assert_eq!(rec.status, RunStatus::TimedOut);
    assert!(rec.error.as_deref().unwrap().contains("deadline"));
    assert_eq!(h.failed_count(), 1);
}

/// Randomized: whatever a seeded fault plan does to a small sweep, every
/// attempted configuration ends up in `runs.json` with a terminal status,
/// and the failure count matches the records.
#[test]
fn faulted_sweeps_always_emit_complete_records() {
    for seed in 0..4u64 {
        let dir = tmp_dir(&format!("sweep-{seed}"));
        let mut h = Harness::new(Scale::Quick);
        h.set_json_dir(&dir).unwrap();
        h.set_run_policy(RunPolicy {
            backoff: Duration::from_millis(1),
            ..RunPolicy::default()
        });
        h.set_fault_plan(FaultPlan {
            seed,
            frame_alloc_p: 0.5,
            ..FaultPlan::none()
        });
        let configs = [
            ("avrora", CollectorKind::PcmOnly),
            ("avrora", CollectorKind::KgN),
            ("lusearch", CollectorKind::PcmOnly),
        ];
        for (name, collector) in configs {
            let spec = WorkloadSpec::by_name(name).unwrap();
            let _ = h.run1_opt(spec, collector);
        }
        assert_eq!(h.records().len(), configs.len(), "seed {seed}");
        let failed = h
            .records()
            .iter()
            .filter(|r| r.status != RunStatus::Ok)
            .count();
        assert_eq!(h.failed_count(), failed, "seed {seed}");
        h.finalize_exports().unwrap();
        let runs = fs::read_to_string(dir.join("runs.json")).unwrap();
        assert_eq!(
            runs.matches("\"key\":").count(),
            configs.len(),
            "seed {seed}: runs.json must record every attempted run"
        );
        assert!(runs.starts_with('[') && runs.trim_end().ends_with(']'));
    }
}

/// The retry backoff is linear in the attempt number but saturates at
/// `max_backoff` — including for attempt numbers far beyond any plausible
/// retry budget, where the multiplication itself would overflow.
#[test]
fn backoff_saturates_at_max_backoff() {
    let policy = RunPolicy::default();
    assert_eq!(policy.backoff_for(1), policy.backoff);
    assert_eq!(policy.backoff_for(2), policy.backoff * 2);
    // 25ms * 40 = 1s: the cap is reached exactly at attempt 40 ...
    assert_eq!(policy.backoff_for(40), policy.max_backoff);
    // ... and nothing past it exceeds the cap, even where the
    // multiplication saturates.
    for attempt in [41, 1_000, u32::MAX - 1, u32::MAX] {
        assert_eq!(
            policy.backoff_for(attempt),
            policy.max_backoff,
            "attempt {attempt} exceeded max_backoff"
        );
    }
    // A zero max_backoff disables sleeping entirely.
    let eager = RunPolicy {
        max_backoff: Duration::ZERO,
        ..RunPolicy::default()
    };
    assert_eq!(eager.backoff_for(3), Duration::ZERO);
}
