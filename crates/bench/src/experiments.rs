//! One function per table and figure of the paper's evaluation.
//!
//! Every function takes the caching [`Harness`] and returns the rendered
//! text block (plus, where useful, headline aggregates). Shape — who wins,
//! by what rough factor, where crossovers fall — is the reproduction
//! target; absolute counts differ from the paper's because the substrate
//! is a simulator driving synthetic datasets.
//!
//! Figures degrade gracefully under fault injection: a failed experiment
//! (recorded by the harness, see `Harness::records`) renders as a `FAIL`
//! cell or a skipped data point rather than aborting the whole figure, so
//! a sweep with one bad configuration still produces every other result.

use crate::fmt::{ratio, table};
use crate::harness::{Harness, Manager, Profile};
use hemu_core::lifetime::{LifetimeModel, ENDURANCE_PROTOTYPES};
use hemu_heap::{plan, CollectorKind};
use hemu_types::{ByteSize, OsPagingConfig, OsPolicy, Result};
use hemu_workloads::{spec, DatasetSize, Suite, WorkloadSpec};

/// Table I: space-to-socket mapping of KG-N, KG-W and KG-W−MDO, printed
/// from the live plan objects.
pub fn table1() -> String {
    let configs: Vec<_> = [
        CollectorKind::KgN,
        CollectorKind::KgW,
        CollectorKind::KgWMinusMdo,
    ]
    .iter()
    .map(|k| k.config(ByteSize::from_mib(4), ByteSize::from_mib(100)))
    .collect();
    format!(
        "Table I: heap spaces and their socket mapping (S0 = DRAM, S1 = PCM)\n\n{}",
        plan::render_table1(&configs)
    )
}

/// Table II (§V): percentage reduction in PCM writes vs the PCM-Only
/// reference, simulation profile vs emulation profile, plus the §V side
/// findings (KG-B total-write blow-up and the KG-W performance overhead).
///
/// # Errors
///
/// Propagates experiment failures.
pub fn table2(h: &mut Harness) -> Result<String> {
    let benches = spec::dacapo_sim_subset();
    let mut rows = vec![vec![
        "Collector".to_string(),
        "Simulator".to_string(),
        "Emulator".to_string(),
        "(paper sim)".to_string(),
        "(paper emu)".to_string(),
    ]];
    let paper = [
        ("KG-N", 4.0, 8.0),
        ("KG-B", 11.0, 13.0),
        ("KG-W", 64.0, 62.0),
    ];
    let mut per_profile_total_ratio = Vec::new();
    let mut overheads = Vec::new();

    for (ci, collector) in [CollectorKind::KgN, CollectorKind::KgB, CollectorKind::KgW]
        .into_iter()
        .enumerate()
    {
        let mut cells = vec![paper[ci].0.to_string()];
        for profile in [Profile::Simulation, Profile::Emulation] {
            let mut reductions = Vec::new();
            let mut total_ratio = Vec::new();
            let mut overhead = Vec::new();
            for &b in &benches {
                let (Some(base), Some(r)) = (
                    h.run_opt(b, CollectorKind::PcmOnly, 1, profile),
                    h.run_opt(b, collector, 1, profile),
                ) else {
                    continue;
                };
                reductions.push(r.pcm_write_reduction_vs(&base));
                if collector == CollectorKind::KgB {
                    if let Some(kgn) = h.run_opt(b, CollectorKind::KgN, 1, profile) {
                        let t = r.total_writes().bytes() as f64
                            / kgn.total_writes().bytes().max(1) as f64;
                        total_ratio.push(t);
                    }
                }
                if collector == CollectorKind::KgW {
                    if let Some(kgn) = h.run_opt(b, CollectorKind::KgN, 1, profile) {
                        overhead.push(100.0 * (r.elapsed_seconds / kgn.elapsed_seconds - 1.0));
                    }
                }
            }
            cells.push(if reductions.is_empty() {
                "FAIL".into()
            } else {
                format!("{:.0}%", mean(&reductions))
            });
            if !total_ratio.is_empty() {
                per_profile_total_ratio.push((profile, mean(&total_ratio)));
            }
            if !overhead.is_empty() {
                overheads.push((profile, mean(&overhead)));
            }
        }
        cells.push(format!("{:.0}%", paper[ci].1));
        cells.push(format!("{:.0}%", paper[ci].2));
        rows.push(cells);
    }

    let mut out = format!(
        "Table II: average reduction in PCM writes vs PCM-Only ({} DaCapo benchmarks)\n\n{}",
        benches.len(),
        table(&rows)
    );
    for (p, r) in per_profile_total_ratio {
        out.push_str(&format!(
            "\nKG-B vs KG-N total memory writes ({p:?}): {:.2}x (paper: 1.98x sim / 2.2x emu)",
            r
        ));
    }
    for (p, o) in overheads {
        out.push_str(&format!(
            "\nKG-W time overhead vs KG-N ({p:?}): {o:.0}% (paper: 7% sim / 10% emu)"
        ));
    }
    out.push('\n');
    Ok(out)
}

/// Fig. 3: PCM writes of the GraphChi applications normalized to the C++
/// implementation, for C++, Java (PCM-Only), KG-N and KG-W.
///
/// # Errors
///
/// Propagates experiment failures.
pub fn fig3(h: &mut Harness) -> Result<String> {
    let mut rows = vec![vec![
        "App".to_string(),
        "C++".to_string(),
        "Java".to_string(),
        "KG-N".to_string(),
        "KG-W".to_string(),
    ]];
    for name in ["pr", "cc", "als"] {
        let cpp = h.run_cpp(name, DatasetSize::Default).ok();
        let spec = WorkloadSpec::by_name(name).unwrap();
        let java = h.run1_opt(spec, CollectorKind::PcmOnly);
        let kgn = h.run1_opt(spec, CollectorKind::KgN);
        let kgw = h.run1_opt(spec, CollectorKind::KgW);
        let cell = |r: &Option<hemu_core::RunReport>| match (r, &cpp) {
            (Some(r), Some(c)) => ratio(r.pcm_writes_normalized_to(c)),
            _ => "FAIL".into(),
        };
        rows.push(vec![
            name.to_uppercase(),
            if cpp.is_some() {
                "1.00".into()
            } else {
                "FAIL".into()
            },
            cell(&java),
            cell(&kgn),
            cell(&kgw),
        ]);
    }
    Ok(format!(
        "Fig. 3: PCM writes normalized to C++ (PCM-Only system; paper: Java up to 3.2x,\n\
         KG-N below half of C++ on average, KG-W below KG-N)\n\n{}",
        table(&rows)
    ))
}

/// Fig. 4 (a, b): average PCM writes of multiprogrammed workloads relative
/// to one instance, per suite, for PCM-Only and KG-W.
///
/// # Errors
///
/// Propagates experiment failures.
pub fn fig4(h: &mut Harness) -> Result<String> {
    let mut out = String::from(
        "Fig. 4: PCM writes relative to one instance (paper: super-linear growth under\n\
         PCM-Only — avg 2.3x @2, 6.4x @4 — and roughly linear under KG-W)\n",
    );
    for (collector, label) in [
        (CollectorKind::PcmOnly, "(a) PCM-Only"),
        (CollectorKind::KgW, "(b) KG-W"),
    ] {
        let mut rows = vec![vec![
            "Suite".to_string(),
            "N=1".to_string(),
            "N=2".to_string(),
            "N=4".to_string(),
        ]];
        let mut all: Vec<Vec<f64>> = vec![Vec::new(), Vec::new(), Vec::new()];
        for suite in [Suite::DaCapo, Suite::Pjbb, Suite::GraphChi] {
            let apps: Vec<_> = h
                .all_apps()
                .into_iter()
                .filter(|s| s.suite == suite)
                .collect();
            let mut per_n = vec![Vec::new(), Vec::new(), Vec::new()];
            for app in apps {
                let Some(base) = h.run_opt(app, collector, 1, Profile::Emulation) else {
                    continue;
                };
                for (ni, n) in [1usize, 2, 4].into_iter().enumerate() {
                    let r = if n == 1 {
                        base.clone()
                    } else {
                        match h.run_opt(app, collector, n, Profile::Emulation) {
                            Some(r) => r,
                            None => continue,
                        }
                    };
                    let rel = r.pcm_writes.bytes() as f64 / base.pcm_writes.bytes().max(1) as f64;
                    per_n[ni].push(rel);
                    all[ni].push(rel);
                }
            }
            rows.push(vec![
                format!("{suite}"),
                ratio(mean(&per_n[0])),
                ratio(mean(&per_n[1])),
                ratio(mean(&per_n[2])),
            ]);
        }
        rows.push(vec![
            "All".to_string(),
            ratio(mean(&all[0])),
            ratio(mean(&all[1])),
            ratio(mean(&all[2])),
        ]);
        out.push_str(&format!("\n{label}\n{}", table(&rows)));
    }
    Ok(out)
}

/// Fig. 5 (a, b): raw PCM writes and PCM write rates of Pjbb and GraphChi
/// relative to DaCapo, PCM-Only, N ∈ {1, 2, 4}.
///
/// # Errors
///
/// Propagates experiment failures.
pub fn fig5(h: &mut Harness) -> Result<String> {
    let mut writes_rows = vec![vec![
        "Suite".to_string(),
        "N=1".to_string(),
        "N=2".to_string(),
        "N=4".to_string(),
    ]];
    let mut rates_rows = writes_rows.clone();
    let mut suite_stats = Vec::new();
    for suite in [Suite::DaCapo, Suite::Pjbb, Suite::GraphChi] {
        let apps: Vec<_> = h
            .all_apps()
            .into_iter()
            .filter(|s| s.suite == suite)
            .collect();
        let mut writes = [0.0f64; 3];
        let mut rates = [0.0f64; 3];
        for app in &apps {
            for (ni, n) in [1usize, 2, 4].into_iter().enumerate() {
                let Some(r) = h.run_opt(*app, CollectorKind::PcmOnly, n, Profile::Emulation) else {
                    continue;
                };
                writes[ni] += r.pcm_writes.bytes() as f64 / apps.len() as f64;
                rates[ni] += r.pcm_write_rate_mbs / apps.len() as f64;
            }
        }
        suite_stats.push((suite, writes, rates));
    }
    let dacapo = suite_stats[0].clone();
    for (suite, writes, rates) in &suite_stats[1..] {
        writes_rows.push(vec![
            format!("{suite}"),
            ratio(writes[0] / dacapo.1[0]),
            ratio(writes[1] / dacapo.1[1]),
            ratio(writes[2] / dacapo.1[2]),
        ]);
        rates_rows.push(vec![
            format!("{suite}"),
            ratio(rates[0] / dacapo.2[0]),
            ratio(rates[1] / dacapo.2[1]),
            ratio(rates[2] / dacapo.2[2]),
        ]);
    }
    Ok(format!(
        "Fig. 5: Pjbb and GraphChi relative to DaCapo (PCM-Only; paper: Pjbb writes 2x,\n\
         GraphChi 46x at N=1; write rates 1.7x and 4.7x)\n\n(a) PCM writes relative to DaCapo\n{}\n\
         (b) PCM write rates relative to DaCapo\n{}",
        table(&writes_rows),
        table(&rates_rows)
    ))
}

/// Fig. 6: PCM write rates in MB/s per benchmark for PCM-Only, KG-N, KG-B
/// and KG-W, against the 140 MB/s recommended rate.
///
/// # Errors
///
/// Propagates experiment failures.
pub fn fig6(h: &mut Harness) -> Result<String> {
    let mut rows = vec![vec![
        "Benchmark".to_string(),
        "PCM-Only".to_string(),
        "KG-N".to_string(),
        "KG-B".to_string(),
        "KG-W".to_string(),
        ">140?".to_string(),
    ]];
    let mut over = 0;
    for app in h.all_apps() {
        let mut cells = vec![app.to_string()];
        let mut pcm_only_rate = 0.0;
        for collector in [
            CollectorKind::PcmOnly,
            CollectorKind::KgN,
            CollectorKind::KgB,
            CollectorKind::KgW,
        ] {
            match h.run1_opt(app, collector) {
                Some(r) => {
                    if collector == CollectorKind::PcmOnly {
                        pcm_only_rate = r.pcm_write_rate_mbs;
                    }
                    cells.push(format!("{:.1}", r.pcm_write_rate_mbs));
                }
                None => cells.push("FAIL".into()),
            }
        }
        let flag = pcm_only_rate > 140.0;
        if flag {
            over += 1;
        }
        cells.push(if flag { "YES".into() } else { "".into() });
        rows.push(cells);
    }
    Ok(format!(
        "Fig. 6: PCM write rates in MB/s (recommended max 140 MB/s from a 30-DWPD,\n\
         375 GB prototype; paper: graph apps and two DaCapo exceed it under PCM-Only)\n\n{}\n\
         {over} of {} benchmarks exceed the recommended rate under PCM-Only.\n",
        table(&rows),
        h.all_apps().len(),
    ))
}

/// Fig. 7: PCM writes of the seven Kingsguard configurations for the
/// GraphChi applications, normalized to PCM-Only.
///
/// # Errors
///
/// Propagates experiment failures.
pub fn fig7(h: &mut Harness) -> Result<String> {
    let collectors = [
        CollectorKind::KgN,
        CollectorKind::KgB,
        CollectorKind::KgNLoo,
        CollectorKind::KgBLoo,
        CollectorKind::KgW,
        CollectorKind::KgWMinusLoo,
        CollectorKind::KgWMinusMdo,
    ];
    let mut rows = vec![{
        let mut head = vec!["App".to_string()];
        head.extend(collectors.iter().map(|c| c.name().to_string()));
        head
    }];
    for name in ["pr", "cc", "als"] {
        let spec = WorkloadSpec::by_name(name).unwrap();
        let base = h.run1_opt(spec, CollectorKind::PcmOnly);
        let mut cells = vec![name.to_uppercase()];
        for c in collectors {
            cells.push(match (&base, h.run1_opt(spec, c)) {
                (Some(base), Some(r)) => format!("{:.3}", r.pcm_writes_normalized_to(base)),
                _ => "FAIL".into(),
            });
        }
        rows.push(cells);
    }
    Ok(format!(
        "Fig. 7: PCM writes normalized to PCM-Only, GraphChi applications\n\
         (paper: KG-N strong; KG-B ~ KG-N; +LOO helps both; KG-W ~ KG-N+LOO;\n\
         removing LOO from KG-W raises writes 1.5-2.3x; removing MDO ~1.14x)\n\n{}",
        table(&rows)
    ))
}

/// Fig. 8: PCM write rates with the large datasets normalized to the
/// default datasets, for PCM-Only, KG-N and KG-W.
///
/// # Errors
///
/// Propagates experiment failures.
pub fn fig8(h: &mut Harness) -> Result<String> {
    let collectors = [
        CollectorKind::PcmOnly,
        CollectorKind::KgN,
        CollectorKind::KgW,
    ];
    let mut rows = vec![vec![
        "Benchmark".to_string(),
        "PCM-Only".to_string(),
        "KG-N".to_string(),
        "KG-W".to_string(),
    ]];
    let mut write_growth = Vec::new();
    // The 10 M-edge graph runs dominate this figure's runtime; allow
    // time-constrained environments to regenerate the DaCapo/Pjbb part
    // alone (documented in EXPERIMENTS.md when used).
    let skip_graphs = std::env::var_os("HEMU_SKIP_LARGE_GRAPHS").is_some();
    let apps: Vec<_> = h
        .all_apps()
        .into_iter()
        .filter(|a| !(skip_graphs && a.suite == Suite::GraphChi))
        .collect();
    for app in apps {
        let mut cells = vec![format!("{app}")];
        for c in collectors {
            let (Some(small), Some(large)) = (
                h.run1_opt(app, c),
                h.run1_opt(app.with_dataset(DatasetSize::Large), c),
            ) else {
                cells.push("FAIL".into());
                continue;
            };
            if c == CollectorKind::PcmOnly {
                write_growth
                    .push(large.pcm_writes.bytes() as f64 / small.pcm_writes.bytes().max(1) as f64);
            }
            cells.push(ratio(if small.pcm_write_rate_mbs > 0.0 {
                large.pcm_write_rate_mbs / small.pcm_write_rate_mbs
            } else {
                f64::INFINITY
            }));
        }
        rows.push(cells);
    }
    Ok(format!(
        "Fig. 8: PCM write rates with large datasets normalized to default datasets\n\
         (paper: rates stay flat, rise up to 1.5x, or drop up to 80%; raw writes grow\n\
         3.4x on average). Raw PCM-Only write growth here: avg {:.1}x.\n\n{}",
        mean(&write_growth),
        table(&rows)
    ))
}

/// Table III: worst-case PCM lifetime in years across the benchmarks, for
/// single-program and four-program workloads, PCM-Only vs KG-W, across the
/// three endurance prototypes.
///
/// # Errors
///
/// Propagates experiment failures.
pub fn table3(h: &mut Harness) -> Result<String> {
    let mut rows = vec![vec![
        "Workload".to_string(),
        "10M PCM-Only".to_string(),
        "10M KG-W".to_string(),
        "30M PCM-Only".to_string(),
        "30M KG-W".to_string(),
        "50M PCM-Only".to_string(),
        "50M KG-W".to_string(),
    ]];
    for n in [1usize, 4] {
        let mut cells = vec![format!("N={n}")];
        for endurance in ENDURANCE_PROTOTYPES {
            let model = LifetimeModel::paper(endurance);
            for collector in [CollectorKind::PcmOnly, CollectorKind::KgW] {
                let mut worst = f64::INFINITY;
                for app in h.all_apps() {
                    let Some(r) = h.run_opt(app, collector, n, Profile::Emulation) else {
                        continue;
                    };
                    worst = worst.min(model.years(r.pcm_write_rate_mbs * 1e6));
                }
                cells.push(if worst.is_finite() {
                    format!("{worst:.0}")
                } else {
                    "inf".into()
                });
            }
        }
        rows.push(cells);
    }
    Ok(format!(
        "Table III: worst-case PCM lifetime in years (32 GB PCM, 50% wear-levelling;\n\
         paper: N=1 {{10, 31, 52}} PCM-Only / {{18, 54, 90}} KG-W; N=4 {{2, 5, 9}} / {{7, 20, 34}})\n\n{}",
        table(&rows)
    ))
}

/// Ablations of the design choices DESIGN.md calls out: the LLC-size
/// sensitivity behind §V's KG-N result, nursery-size sensitivity, and the
/// two-free-list vs monolithic chunk design of §III.A.
///
/// # Errors
///
/// Propagates experiment failures.
pub fn ablations() -> Result<String> {
    use hemu_core::Experiment;
    use hemu_heap::chunks::ChunkPolicy;
    use hemu_machine::MachineProfile;

    let spec = WorkloadSpec::by_name("lu.Fix").unwrap();
    let mut out = String::from("Ablation studies\n");

    // (1) LLC size: the §V mechanism — a large LLC absorbs nursery writes,
    // shrinking KG-N's benefit (81% reported with a 4 MB L3 vs 4-8% with
    // 20 MB).
    out.push_str("\n(1) KG-N benefit vs LLC size (lu.Fix):\n");
    let mut rows = vec![vec![
        "LLC".to_string(),
        "PCM-Only writes".to_string(),
        "KG-N writes".to_string(),
        "KG-N reduction".to_string(),
    ]];
    for llc_mib in [4u64, 8, 20] {
        let profile = MachineProfile::emulation().with_llc(ByteSize::from_mib(llc_mib));
        let base = Experiment::new(spec).profile(profile).run()?;
        let kgn = Experiment::new(spec)
            .profile(profile)
            .collector(CollectorKind::KgN)
            .run()?;
        rows.push(vec![
            format!("{llc_mib} MiB"),
            format!("{}", base.pcm_writes),
            format!("{}", kgn.pcm_writes),
            format!("{:.0}%", kgn.pcm_write_reduction_vs(&base)),
        ]);
    }
    out.push_str(&table(&rows));

    // (2) Nursery size sweep under KG-N (the KG-N → KG-B axis).
    out.push_str("\n(2) Total memory writes vs nursery size (lu.Fix, KG-N):\n");
    let mut rows = vec![vec![
        "Nursery".to_string(),
        "PCM writes".to_string(),
        "Total writes".to_string(),
    ]];
    for nursery_mib in [2u64, 4, 12, 32] {
        let r = Experiment::new(spec)
            .collector(CollectorKind::KgN)
            .nursery(ByteSize::from_mib(nursery_mib))
            .run()?;
        rows.push(vec![
            format!("{nursery_mib} MiB"),
            format!("{}", r.pcm_writes),
            format!("{}", r.total_writes()),
        ]);
    }
    out.push_str(&table(&rows));

    // (1b) §VI.B's isolation analysis: bind the nursery to one socket and
    // everything else to the other (exactly what KG-N does) and watch the
    // two write streams grow separately with multiprogramming. The paper
    // finds nursery writes grow ~30x from 1 to 4 instances while mature
    // writes grow only ~3x.
    out.push_str("\n(1b) Nursery vs mature write growth, 1 -> 4 instances (lu.Fix, KG-N):\n");
    let mut rows = vec![vec![
        "Instances".to_string(),
        "Nursery-side (DRAM) writes".to_string(),
        "Mature-side (PCM) writes".to_string(),
    ]];
    let mut first: Option<(f64, f64)> = None;
    for n in [1usize, 2, 4] {
        let r = Experiment::new(spec)
            .collector(CollectorKind::KgN)
            .instances(n)
            .run()?;
        let (nur, mat) = (r.dram_writes.bytes() as f64, r.pcm_writes.bytes() as f64);
        let (n0, m0) = *first.get_or_insert((nur.max(1.0), mat.max(1.0)));
        rows.push(vec![
            format!("{n}"),
            format!("{} ({:.1}x)", r.dram_writes, nur / n0),
            format!("{} ({:.1}x)", r.pcm_writes, mat / m0),
        ]);
    }
    out.push_str(&table(&rows));

    // (3) Chunk free-list policy: remapping avoided by the two-list design.
    out.push_str("\n(3) Chunk free-list policy (KG-W, lu.Fix):\n");
    let mut rows = vec![vec![
        "Policy".to_string(),
        "PCM writes".to_string(),
        "Virtual time".to_string(),
    ]];
    for (name, policy) in [
        ("two lists", ChunkPolicy::TwoLists),
        ("monolithic", ChunkPolicy::Monolithic),
    ] {
        let r = Experiment::new(spec)
            .collector(CollectorKind::KgW)
            .chunk_policy(policy)
            .run()?;
        rows.push(vec![
            name.to_string(),
            format!("{}", r.pcm_writes),
            format!("{:.4}s", r.elapsed_seconds),
        ]);
    }
    out.push_str(&table(&rows));
    Ok(out)
}

/// Prints the write-rate monitor's time series for one benchmark under
/// one collector — the data behind a Fig. 6-style plot, at sample
/// granularity.
///
/// # Errors
///
/// Propagates experiment failures, and rejects unknown benchmark names.
pub fn series(name: &str, collector: CollectorKind) -> Result<String> {
    use hemu_core::Experiment;
    let spec = WorkloadSpec::by_name(name).ok_or_else(|| {
        hemu_types::HemuError::InvalidConfig(format!("unknown benchmark `{name}`"))
    })?;
    let r = Experiment::new(spec)
        .collector(collector)
        .monitor_interval(0.005)
        .run()?;
    let mut rows = vec![vec![
        "t (s)".to_string(),
        "PCM MB/s".to_string(),
        "DRAM MB/s".to_string(),
    ]];
    for s in &r.samples {
        rows.push(vec![
            format!("{:.3}", s.t_seconds),
            format!("{:.1}", s.pcm_write_mbs),
            format!("{:.1}", s.dram_write_mbs),
        ]);
    }
    Ok(format!(
        "Write-rate time series: {name} under {} (avg PCM rate {:.1} MB/s)\n\n{}",
        collector.name(),
        r.pcm_write_rate_mbs,
        table(&rows)
    ))
}

/// GC vs OS page management: PCM writes of representative benchmarks under
/// the write-rationing collectors and under OS-level paging policies,
/// normalized to PCM-Only, followed by the migration activity of each OS
/// run. The paper's thesis is that GC-side write rationing beats OS-level
/// hot/cold page migration because the GC sees object lifetimes before
/// pages get hot — so expect the KG columns well below the OS columns.
///
/// # Errors
///
/// Propagates experiment failures.
pub fn os_baseline(h: &mut Harness, policies: &[OsPolicy]) -> Result<String> {
    let benches = [
        WorkloadSpec::by_name("lusearch").unwrap(),
        WorkloadSpec::by_name("avrora").unwrap(),
    ];
    let mut managers: Vec<Manager> = vec![CollectorKind::KgN.into(), CollectorKind::KgW.into()];
    managers.extend(policies.iter().copied().map(Manager::from));

    let mut header = vec!["Benchmark".to_string(), "PCM-Only".to_string()];
    header.extend(managers.iter().map(|m| m.name().to_string()));
    let mut rows = vec![header];
    for &b in &benches {
        let base = h.run_opt(b, CollectorKind::PcmOnly, 1, Profile::Emulation);
        let mut cells = vec![
            b.to_string(),
            if base.is_some() {
                "1.00".into()
            } else {
                "FAIL".into()
            },
        ];
        for &m in &managers {
            cells.push(match (&base, h.run_opt(b, m, 1, Profile::Emulation)) {
                (Some(base), Some(r)) => {
                    format!("{:.2}", r.pcm_writes_normalized_to(base))
                }
                _ => "FAIL".into(),
            });
        }
        rows.push(cells);
    }

    let tuning = h.os_tuning();
    let mut out = format!(
        "GC vs OS baseline: PCM writes normalized to PCM-Only (lower is better)\n\
         OS tuning: epoch {} lines, budget {} pages/epoch, DRAM {}\n\n{}",
        tuning.epoch_lines,
        tuning.migration_budget,
        tuning
            .dram_limit
            .map_or_else(|| "unlimited".to_string(), |b| b.to_string()),
        table(&rows)
    );

    // Migration activity per OS-managed run. Every migrated page moves one
    // 4 KiB page across the QPI interconnect (64 lines each way charged by
    // the machine), and demotions write PCM.
    let mut mrows = vec![vec![
        "Benchmark".to_string(),
        "Policy".to_string(),
        "Epochs".to_string(),
        "Promoted".to_string(),
        "Demoted".to_string(),
        "Migrated".to_string(),
        "QPI lines".to_string(),
        "Failed".to_string(),
    ]];
    for &b in &benches {
        for &p in policies {
            let Some(r) = h.run_opt(b, p, 1, Profile::Emulation) else {
                continue;
            };
            let Some(os) = r.os_paging else { continue };
            mrows.push(vec![
                b.to_string(),
                os.policy.name().to_string(),
                os.epochs.to_string(),
                os.promotions.to_string(),
                os.demotions.to_string(),
                os.migrated_bytes.to_string(),
                (os.migrated_bytes.bytes() / 64).to_string(),
                os.failed_migrations.to_string(),
            ]);
        }
    }
    if mrows.len() > 1 {
        out.push_str("\nOS page-manager activity (measured iteration):\n\n");
        out.push_str(&table(&mrows));
    }
    Ok(out)
}

/// Write-attribution breakdown (the profiler's headline figure): for two
/// representative benchmarks, every PCM controller write-back is attributed
/// to its cause (mutator store, nursery evacuation, mature copy, metadata,
/// OS migration, wear remap) and its heap space, across the collectors and
/// the OS paging policies. The paper's motivating observation drops out of
/// table (a): under generational collectors the nursery/mutator write
/// stream dominates PCM writes — exactly the stream write rationing (KG-N,
/// KG-W) moves to DRAM, and the stream OS-level paging cannot see early
/// enough.
///
/// Runs its (profiled) experiments directly rather than through the
/// harness, so the shared run cache never mixes profiled and unprofiled
/// reports.
///
/// # Errors
///
/// Propagates experiment failures.
pub fn write_breakdown(os_tuning: OsPagingConfig, policies: &[OsPolicy]) -> Result<String> {
    use hemu_core::Experiment;
    use hemu_types::{SpaceTag, WriteCause};

    let benches = [
        WorkloadSpec::by_name("lusearch").expect("workload registry"),
        WorkloadSpec::by_name("avrora").expect("workload registry"),
    ];
    let mut managers: Vec<Manager> = vec![
        CollectorKind::PcmOnly.into(),
        CollectorKind::KgN.into(),
        CollectorKind::KgW.into(),
    ];
    managers.extend(policies.iter().copied().map(Manager::from));

    let mut head = vec![
        "Benchmark".to_string(),
        "Manager".to_string(),
        "PCM writes".to_string(),
    ];
    head.extend(WriteCause::ALL.iter().map(|c| c.name().to_string()));
    let mut cause_rows = vec![head];
    let mut head = vec![
        "Benchmark".to_string(),
        "Manager".to_string(),
        "PCM writes".to_string(),
    ];
    head.extend(SpaceTag::ALL.iter().map(|s| s.name().to_string()));
    let mut space_rows = vec![head];

    let mut young_share: Vec<(&'static str, f64)> = Vec::new();
    for &b in &benches {
        for &m in &managers {
            let mut e = Experiment::new(b).profiling();
            match m {
                Manager::Gc(c) => e = e.collector(c),
                Manager::Os(p) => {
                    let mut cfg = os_tuning;
                    cfg.policy = p;
                    e = e.os_paging(cfg);
                }
            }
            let arts = e.run_full()?;
            let Some(prov) = arts.report.provenance.as_ref() else {
                continue;
            };
            let pct = |lines: u64| 100.0 * lines as f64 / prov.pcm_total().max(1) as f64;

            let mut cells = vec![
                b.to_string(),
                m.name().to_string(),
                format!("{}", arts.report.pcm_writes),
            ];
            cells.extend(
                WriteCause::ALL
                    .iter()
                    .map(|&c| format!("{:.1}%", pct(prov.pcm_cause(c)))),
            );
            cause_rows.push(cells);

            let mut cells = vec![
                b.to_string(),
                m.name().to_string(),
                format!("{}", arts.report.pcm_writes),
            ];
            cells.extend(
                SpaceTag::ALL
                    .iter()
                    .map(|&s| format!("{:.1}%", pct(prov.pcm_space(s)))),
            );
            space_rows.push(cells);

            young_share.push((
                m.name(),
                pct(prov.pcm_cause(WriteCause::Mutator))
                    + pct(prov.pcm_cause(WriteCause::NurseryEvac)),
            ));
        }
    }

    let share_of = |name: &str| {
        let xs: Vec<f64> = young_share
            .iter()
            .filter(|(n, _)| *n == name)
            .map(|(_, s)| *s)
            .collect();
        mean(&xs)
    };
    Ok(format!(
        "Write-attribution breakdown: percent of PCM controller write-backs by cause\n\
         and by heap space (profiler attribution; every write-back carries a tag)\n\n\
         (a) by cause\n{}\n(b) by heap space\n{}\n\
         Mutator+nursery-evac share of PCM writes: {:.0}% under PCM-Only vs {:.0}% under\n\
         KG-W — the dominant young-generation write stream is what write rationing\n\
         moves off PCM, and what an OS pager only sees after the page is already hot.\n",
        table(&cause_rows),
        table(&space_rows),
        share_of("PCM-Only"),
        share_of("KG-W"),
    ))
}

/// `smoke`: a deliberately tiny sweep — three small DaCapo benchmarks
/// crossed with PCM-Only and KG-N on the emulation profile (6 runs) — used
/// by the crash-safety CI smoke (`--chaos-kill-after` + `--resume`) and as
/// a fast end-to-end sanity target. Runs through the harness, so it
/// exercises the full plan/execute/commit/journal/export machinery at a
/// cost of seconds rather than minutes.
///
/// # Errors
///
/// Propagates workload registry lookup failures; individual run failures
/// render as `FAIL` cells instead.
pub fn smoke(h: &mut Harness) -> Result<String> {
    let apps = ["avrora", "fop", "luindex"];
    let mut rows = vec![vec![
        "Benchmark".to_string(),
        "PCM-Only writes".to_string(),
        "KG-N writes".to_string(),
        "KG-N reduction".to_string(),
    ]];
    for name in apps {
        let spec = WorkloadSpec::by_name(name).ok_or_else(|| {
            hemu_types::HemuError::InvalidConfig(format!(
                "smoke workload `{name}` missing from registry"
            ))
        })?;
        let base = h.run_opt(spec, CollectorKind::PcmOnly, 1, Profile::Emulation);
        let kgn = h.run_opt(spec, CollectorKind::KgN, 1, Profile::Emulation);
        let cell = |r: &Option<hemu_core::RunReport>| {
            r.as_ref()
                .map_or_else(|| "FAIL".to_string(), |r| r.pcm_writes.to_string())
        };
        let reduction = match (&base, &kgn) {
            (Some(b), Some(k)) => format!("{:.0}%", k.pcm_write_reduction_vs(b)),
            _ => "FAIL".to_string(),
        };
        rows.push(vec![name.to_string(), cell(&base), cell(&kgn), reduction]);
    }
    Ok(format!(
        "Smoke sweep: PCM writes, PCM-Only vs KG-N (tiny CI/crash-safety target)\n\n{}",
        table(&rows)
    ))
}

/// Consolidation density sweep: N tenants from `mix` co-scheduled onto the
/// shared emulated machine, N doubling from 1 (the normalization baseline)
/// up to `max_tenants`. The figure plots normalized PCM writes *per
/// tenant* against density: flat while the tenants' combined hot sets fit
/// the shared LLC, then super-linear once the LLC saturates and every
/// tenant's evictions start landing on the PCM controller.
///
/// # Errors
///
/// Propagates experiment failures only when *every* density fails; a
/// partially failed sweep renders `FAIL` rows.
pub fn consolidation(
    h: &mut Harness,
    mix: hemu_tenant::Mix,
    slice: u64,
    max_tenants: usize,
) -> Result<String> {
    let mut densities = Vec::new();
    let mut n = 1usize;
    while n < max_tenants {
        densities.push(n);
        n *= 2;
    }
    densities.push(max_tenants.max(1));
    densities.dedup();

    let mut rows = vec![vec![
        "Tenants".to_string(),
        "PCM writes".to_string(),
        "PCM lines/tenant".to_string(),
        "x 1 tenant".to_string(),
        "Unattributed".to_string(),
    ]];
    let mut baseline: Option<f64> = None;
    let mut any_ok = false;
    for &tenants in &densities {
        let report = h.run_consolidated_opt(
            mix,
            tenants,
            slice,
            CollectorKind::PcmOnly,
            Profile::Emulation,
        );
        match report.as_ref().and_then(|r| r.consolidation.as_ref()) {
            Some(c) => {
                any_ok = true;
                let per_tenant = c.pcm_lines_per_tenant();
                if baseline.is_none() && per_tenant > 0.0 {
                    baseline = Some(per_tenant);
                }
                let norm = baseline
                    .map(|b| ratio(per_tenant / b))
                    .unwrap_or_else(|| "-".into());
                rows.push(vec![
                    tenants.to_string(),
                    report
                        .as_ref()
                        .map(|r| r.pcm_writes.to_string())
                        .unwrap_or_default(),
                    format!("{per_tenant:.0}"),
                    norm,
                    (c.unattributed_pcm_lines + c.unattributed_dram_lines).to_string(),
                ]);
            }
            None => rows.push(vec![
                tenants.to_string(),
                "FAIL".into(),
                "FAIL".into(),
                "FAIL".into(),
                "-".into(),
            ]),
        }
    }
    if !any_ok {
        return Err(hemu_types::HemuError::InvalidConfig(format!(
            "every density of the {mix} consolidation sweep failed"
        )));
    }
    Ok(format!(
        "Consolidation: normalized PCM writes per tenant vs density ({mix} mix,\n\
         slice {slice}, PCM-Only; expect ~flat while the combined hot set fits the\n\
         shared LLC, then super-linear growth once it saturates)\n\n{}",
        table(&rows)
    ))
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_needs_no_experiments() {
        let t = table1();
        assert!(t.contains("KG-W-MDO"));
        assert!(t.contains("Nursery"));
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }
}
