//! Plain-text table rendering for the harness output.

/// Renders an aligned text table. The first row is the header.
pub fn table(rows: &[Vec<String>]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = rows.iter().map(|r| r.len()).max().unwrap_or(0);
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    for (ri, row) in rows.iter().enumerate() {
        for (i, cell) in row.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            if i == 0 {
                out.push_str(&format!("{:<width$}", cell, width = widths[i]));
            } else {
                out.push_str(&format!("{:>width$}", cell, width = widths[i]));
            }
        }
        out.push('\n');
        if ri == 0 {
            for (i, w) in widths.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(&"-".repeat(*w));
            }
            out.push('\n');
        }
    }
    out
}

/// Formats a ratio with two decimals, using `-` for non-finite values.
pub fn ratio(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.2}")
    } else {
        "-".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(&[
            vec!["name".into(), "value".into()],
            vec!["a".into(), "1".into()],
            vec!["long-name".into(), "22".into()],
        ]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("----"));
        // Right-aligned numbers line up.
        assert!(lines[2].ends_with("1"));
        assert!(lines[3].ends_with("22"));
    }

    #[test]
    fn ratio_handles_infinities() {
        assert_eq!(ratio(1.234), "1.23");
        assert_eq!(ratio(f64::INFINITY), "-");
    }
}
