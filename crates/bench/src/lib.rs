//! The benchmark harness: regenerates every table and figure of the paper.
//!
//! The [`experiments`] module contains one function per table/figure; the
//! `repro` binary (`cargo run -p hemu-bench --bin repro --release -- all`)
//! prints them, and the criterion benches under `benches/` cover the
//! micro-level and ablation measurements. A [`Harness`] caches experiment
//! results so that figures sharing configurations (e.g. Fig. 4's
//! multiprogrammed PCM-Only runs and Table III's lifetime inputs) run each
//! experiment once.

pub mod executor;
pub mod experiments;
pub mod fmt;
pub mod harness;
pub mod perf;

pub use executor::{ConsolidationJob, ExecCtx, JobSpec, StagedRun};
pub use harness::{Harness, Manager, Profile, RunPolicy, RunRecord, RunStatus, Scale};
