//! `repro --bench`: dependency-free performance microbenchmarks.
//!
//! Two measurements, both wall-clock based (`std::time::Instant`, no
//! external bench framework, so the mode works in the hermetic build):
//!
//! * **Access kernel** — drives the mutator→cache→memory-controller fast
//!   path of a bare [`Machine`] with a deterministic pseudo-random access
//!   stream over a working set larger than the LLC, reporting line
//!   accesses per second. This is the path the fast-path optimizations
//!   (packed cache metadata, page-batched translation, reusable
//!   write-back scratch) target.
//! * **Quick sweep** — a small fixed sweep (three fast DaCapo workloads ×
//!   two collector configurations) through the [`Harness`] at the
//!   requested `--jobs` width, reporting runs per second. This exercises
//!   the parallel executor end to end.
//!
//! Results are written as `BENCH_results.json`; a checked-in copy of that
//! file serves as the CI regression baseline (`--bench-baseline`), which
//! fails the run when access-kernel line throughput or end-to-end sweep
//! run throughput drops below 80% of the baseline.

use crate::harness::{Harness, Profile, RunStatus, Scale};
use hemu_heap::CollectorKind;
use hemu_machine::{CtxId, Machine, MachineProfile, ProcId};
use hemu_obs::json::{JsonObject, ToJson};
use hemu_obs::write_atomic_str;
use hemu_types::{Addr, HemuError, MemoryAccess, Result, SocketId, SubmitMode};
use hemu_workloads::WorkloadSpec;
use std::fs;
use std::path::Path;
use std::time::Instant;

/// Multi-line accesses issued by the kernel benchmark (each touches 4
/// cache lines, so the hierarchy sees 4× this many line accesses).
const KERNEL_OPS: u64 = 1_000_000;

/// Kernel working set; deliberately larger than the 20 MiB LLC so the
/// stream exercises misses, evictions, and write-backs, not just hits.
const KERNEL_REGION: u64 = 32 << 20;

/// Accesses per [`Machine::access_batch`] call in the kernel benchmark —
/// large enough that each shard's queue amortizes pipeline setup, small
/// enough that the staging arrays stay cache-resident.
const KERNEL_BATCH: usize = 4096;

/// Workloads driven by the sweep benchmark: fast DaCapo members, so the
/// mode stays usable as a CI gate.
const SWEEP_APPS: [&str; 3] = ["avrora", "fop", "luindex"];

/// Collector configurations crossed with [`SWEEP_APPS`] (6 runs total).
const SWEEP_COLLECTORS: [CollectorKind; 2] = [CollectorKind::PcmOnly, CollectorKind::KgN];

/// Tenant density of the consolidated run the sweep appends (7th run), so
/// the bench gate also covers the co-scheduling path end to end.
const SWEEP_TENANTS: usize = 2;

/// Access-kernel measurement.
#[derive(Debug, Clone, Copy)]
pub struct KernelResult {
    /// Line-granularity accesses issued to the hierarchy.
    pub line_accesses: u64,
    /// Wall-clock seconds spent issuing them.
    pub seconds: f64,
    /// `line_accesses / seconds`.
    pub accesses_per_sec: f64,
    /// Accesses per `access_batch` call.
    pub batch_size: usize,
    /// Batch-resolution worker threads the kernel machine used.
    pub intra_threads: usize,
}

impl ToJson for KernelResult {
    fn write_json(&self, out: &mut String) {
        let mut obj = JsonObject::new(out);
        obj.field("line_accesses", &self.line_accesses)
            .field("seconds", &self.seconds)
            .field("accesses_per_sec", &self.accesses_per_sec)
            .field("batch_size", &self.batch_size)
            .field("intra_threads", &self.intra_threads);
        obj.finish();
    }
}

/// Quick-sweep measurement.
#[derive(Debug, Clone, Copy)]
pub struct SweepResult {
    /// Submission mode (deferred vs scalar) each run used.
    pub submit_mode: SubmitMode,
    /// Experiments executed.
    pub runs: usize,
    /// Wall-clock seconds for the whole sweep.
    pub seconds: f64,
    /// `runs / seconds`.
    pub runs_per_sec: f64,
    /// Median per-run wall seconds (right-edge quantile over all runs).
    pub run_p50_seconds: f64,
    /// 95th-percentile per-run wall seconds.
    pub run_p95_seconds: f64,
    /// Intra-run batch-resolution threads each run used.
    pub intra_threads: usize,
    /// Tenant density of the sweep's consolidated run.
    pub tenants: usize,
}

impl ToJson for SweepResult {
    fn write_json(&self, out: &mut String) {
        let mut obj = JsonObject::new(out);
        obj.field("runs", &self.runs)
            .field("seconds", &self.seconds)
            .field("runs_per_sec", &self.runs_per_sec)
            .field("run_p50_seconds", &self.run_p50_seconds)
            .field("run_p95_seconds", &self.run_p95_seconds)
            .field("intra_threads", &self.intra_threads)
            .field("submit_mode", self.submit_mode.name())
            .field("tenants", &self.tenants);
        obj.finish();
    }
}

/// Right-edge quantile of an unsorted sample set: the smallest element with
/// at least `q` of the distribution at or below it. Returns 0 for an empty
/// set.
fn quantile(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let idx = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

/// Everything `repro --bench` measured, plus the verdict against an
/// optional baseline.
#[derive(Debug)]
pub struct BenchOutcome {
    /// Human-readable summary for stdout.
    pub summary: String,
    /// `Some(message)` when the access kernel regressed more than 20%
    /// against the baseline file; the caller turns this into a non-zero
    /// exit.
    pub regression: Option<String>,
}

/// Times the access fast path on a bare machine with a deterministic
/// mixed read/write stream (LCG-generated addresses, fixed seed) over a
/// working set that overflows the LLC.
///
/// # Errors
///
/// Propagates machine access failures (none are expected on a healthy
/// machine without fault injection).
pub fn bench_kernel(intra_threads: usize) -> Result<KernelResult> {
    let mut m = Machine::new(MachineProfile::emulation());
    m.set_intra_threads(intra_threads);
    let proc = m.add_process(SocketId::DRAM);
    // Classic 64-bit LCG: deterministic, dependency-free, and cheap
    // enough that the measurement stays dominated by the access path.
    let mut state: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut batch: Vec<(CtxId, ProcId, MemoryAccess)> = Vec::with_capacity(KERNEL_BATCH);
    let t0 = Instant::now();
    let mut i = 0u64;
    while i < KERNEL_OPS {
        batch.clear();
        while i < KERNEL_OPS && batch.len() < KERNEL_BATCH {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            let addr = Addr::new((state >> 16) % (KERNEL_REGION - 256));
            let access = if i % 4 == 0 {
                MemoryAccess::write(addr, 256)
            } else {
                MemoryAccess::read(addr, 256)
            };
            batch.push((CtxId((i % 4) as usize), proc, access));
            i += 1;
        }
        m.access_batch(&batch)?;
    }
    let seconds = t0.elapsed().as_secs_f64();
    let line_accesses = m.stats().line_accesses;
    Ok(KernelResult {
        line_accesses,
        seconds,
        accesses_per_sec: line_accesses as f64 / seconds.max(1e-9),
        batch_size: KERNEL_BATCH,
        intra_threads: m.intra_threads(),
    })
}

/// Times a fixed seven-run sweep through the harness at `jobs` width:
/// [`SWEEP_APPS`] × [`SWEEP_COLLECTORS`] plus one [`SWEEP_TENANTS`]-tenant
/// consolidated run.
///
/// # Errors
///
/// Propagates harness failures (workload registry lookups and any run
/// that terminally fails).
pub fn bench_sweep(
    jobs: usize,
    intra_threads: usize,
    submit_mode: SubmitMode,
) -> Result<SweepResult> {
    let mut h = Harness::new(Scale::Quick);
    h.set_jobs(jobs);
    h.set_intra_threads(intra_threads);
    h.set_submit_mode(submit_mode);
    let t0 = Instant::now();
    // run_opt (not `?`) so a planning pass discovers all six jobs at once
    // instead of aborting at the first deferred run.
    h.run_planned(|h| {
        for name in SWEEP_APPS {
            let spec = WorkloadSpec::by_name(name).ok_or_else(|| {
                HemuError::InvalidConfig(format!("bench workload `{name}` missing from registry"))
            })?;
            for collector in SWEEP_COLLECTORS {
                let _ = h.run_opt(spec, collector, 1, Profile::Emulation);
            }
        }
        let _ = h.run_consolidated_opt(
            hemu_tenant::Mix::Dacapo,
            SWEEP_TENANTS,
            64,
            CollectorKind::PcmOnly,
            Profile::Emulation,
        );
        Ok(String::new())
    })?;
    if h.failed_count() > 0 {
        return Err(HemuError::InvalidConfig(format!(
            "{} bench sweep run(s) failed; throughput would be meaningless",
            h.failed_count()
        )));
    }
    let seconds = t0.elapsed().as_secs_f64();
    let runs = h.runs_executed;
    let wall: Vec<f64> = h
        .records()
        .iter()
        .filter(|r| r.status == RunStatus::Ok)
        .map(|r| r.wall_seconds)
        .collect();
    Ok(SweepResult {
        submit_mode,
        runs,
        seconds,
        runs_per_sec: runs as f64 / seconds.max(1e-9),
        run_p50_seconds: quantile(&wall, 0.50),
        run_p95_seconds: quantile(&wall, 0.95),
        intra_threads: h.intra_threads(),
        tenants: SWEEP_TENANTS,
    })
}

/// Extracts the first `"name":<number>` member from hand-rolled JSON.
/// Enough of a parser for the baseline gate; the platform never parses
/// general JSON.
fn json_number_field(text: &str, name: &str) -> Option<f64> {
    let needle = format!("\"{name}\":");
    let start = text.find(&needle)? + needle.len();
    let rest = &text[start..];
    let end = rest
        .find(|c: char| c == ',' || c == '}')
        .unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Runs both benchmarks, writes `out_path` (`BENCH_results.json`), and
/// compares the access kernel against `baseline` when given.
///
/// # Errors
///
/// Returns [`HemuError::Io`] when the results file or baseline cannot be
/// read/written, otherwise propagates benchmark failures. A throughput
/// regression is NOT an error — it is reported in
/// [`BenchOutcome::regression`] so the caller controls the exit code.
pub fn run_bench(
    jobs: usize,
    intra_threads: usize,
    submit_mode: SubmitMode,
    out_path: &Path,
    baseline: Option<&Path>,
) -> Result<BenchOutcome> {
    let t0 = Instant::now();
    let kernel = bench_kernel(intra_threads)?;
    let sweep = bench_sweep(jobs, intra_threads, submit_mode)?;
    let wall_seconds = t0.elapsed().as_secs_f64();

    // Schema 4 adds sweep.tenants (the consolidated run's density). The
    // gate reads only the first occurrence of accesses_per_sec and
    // runs_per_sec, so older-schema baselines keep gating newer results
    // files (a baseline without `runs_per_sec` simply skips that gate)
    // during transitions.
    let mut text = String::new();
    let mut obj = JsonObject::new(&mut text);
    obj.field("schema", "hemu-bench-results/4")
        .field("jobs", &jobs)
        .field("kernel", &kernel)
        .field("sweep", &sweep)
        .field("wall_seconds", &wall_seconds);
    obj.finish();
    text.push('\n');
    write_atomic_str(out_path, &text)
        .map_err(|e| HemuError::Io(format!("writing {}: {e}", out_path.display())))?;

    let mut regression = None;
    if let Some(base_path) = baseline {
        let base_text = fs::read_to_string(base_path)
            .map_err(|e| HemuError::Io(format!("reading {}: {e}", base_path.display())))?;
        let base = json_number_field(&base_text, "accesses_per_sec").ok_or_else(|| {
            HemuError::Io(format!(
                "no accesses_per_sec field in {}",
                base_path.display()
            ))
        })?;
        if base > 0.0 && kernel.accesses_per_sec < 0.8 * base {
            regression = Some(format!(
                "access kernel regressed: {:.0} accesses/s vs baseline {:.0} (-{:.0}%)",
                kernel.accesses_per_sec,
                base,
                100.0 * (1.0 - kernel.accesses_per_sec / base)
            ));
        }
        // Sweep run-throughput gate: a run-level regression used to sail
        // through CI because only the kernel was gated. Skipped (not an
        // error) for schema-1 baselines that predate `runs_per_sec`.
        if regression.is_none() {
            if let Some(base_rps) = json_number_field(&base_text, "runs_per_sec") {
                if base_rps > 0.0 && sweep.runs_per_sec < 0.8 * base_rps {
                    regression = Some(format!(
                        "sweep run throughput regressed: {:.3} runs/s vs baseline {:.3} (-{:.0}%)",
                        sweep.runs_per_sec,
                        base_rps,
                        100.0 * (1.0 - sweep.runs_per_sec / base_rps)
                    ));
                }
            }
        }
    }

    let summary = format!(
        "access kernel: {} line accesses in {:.2}s ({:.2} M/s, batch {}, intra-threads {})\n\
         quick sweep:   {} runs in {:.2}s at --jobs {} ({:.2} runs/s, {} submission, p50 {:.2}s, p95 {:.2}s)\n\
         results written to {}",
        kernel.line_accesses,
        kernel.seconds,
        kernel.accesses_per_sec / 1e6,
        kernel.batch_size,
        kernel.intra_threads,
        sweep.runs,
        sweep.seconds,
        jobs,
        sweep.runs_per_sec,
        sweep.submit_mode,
        sweep.run_p50_seconds,
        sweep.run_p95_seconds,
        out_path.display()
    );
    Ok(BenchOutcome {
        summary,
        regression,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_takes_right_edge() {
        let s = [3.0, 1.0, 2.0, 4.0];
        assert_eq!(quantile(&s, 0.50), 2.0);
        assert_eq!(quantile(&s, 0.95), 4.0);
        assert_eq!(quantile(&s, 1.0), 4.0);
        assert_eq!(quantile(&[], 0.5), 0.0);
        assert_eq!(quantile(&[7.5], 0.95), 7.5);
    }

    #[test]
    fn json_number_field_parses_nested_output() {
        let text =
            r#"{"schema":"x","kernel":{"line_accesses":4,"accesses_per_sec":1234.5},"jobs":2}"#;
        assert_eq!(json_number_field(text, "accesses_per_sec"), Some(1234.5));
        assert_eq!(json_number_field(text, "jobs"), Some(2.0));
        assert_eq!(json_number_field(text, "absent"), None);
    }
}
