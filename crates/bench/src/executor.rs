//! The parallel sweep executor: a fixed-size worker pool that drains a
//! deterministic job queue of experiment runs.
//!
//! # Determinism contract
//!
//! Parallelism must never change a single exported byte. The harness
//! guarantees that by separating *execution* from *commitment*:
//!
//! 1. A **planning pass** replays a figure function with the harness in
//!    planning mode. Every run the figure demands that is not already
//!    cached, failed, or staged is enqueued as a [`JobSpec`] and answered
//!    with [`HemuError::Deferred`]; the figure's output is discarded.
//! 2. An **execution wave** drains the queue on a pool of `--jobs`
//!    workers. Each worker owns its jobs end to end — experiment
//!    construction, retries, backoff sleeps — and parks only itself while
//!    backing off. Results land in per-job staging slots.
//! 3. Planning and execution repeat until a pass demands nothing new
//!    (figures branch on earlier results, so dependent runs surface only
//!    after their inputs exist).
//! 4. The **real pass** renders the figure again; staged results are
//!    *committed* (recorded, exported, cached) strictly in demand order —
//!    the exact order the sequential path executes in. Speculatively
//!    executed runs that the real pass never demands are never committed
//!    and are invisible in every artifact.
//!
//! `--jobs 1` skips the planning machinery entirely and executes inline at
//! first demand, byte-identical to the historical sequential path — which
//! in turn is byte-identical to any `--jobs N` by the argument above.

use crate::harness::{Manager, Profile, RunPolicy};
use hemu_core::{Experiment, RunArtifacts};
use hemu_fault::{EnduranceConfig, FaultPlan};
use hemu_obs::{Reporter, Tracer};
use hemu_tenant::{ConsolidationRun, Mix};
use hemu_types::{AccessPath, HemuError, OsPagingConfig, SubmitMode};
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Mutex;
use std::thread;
use std::time::Instant;

/// Records retained per traced run; QPI batching keeps even long runs well
/// under this.
pub(crate) const TRACE_CAPACITY: usize = 1 << 16;

/// A multi-tenant payload attached to a [`JobSpec`]: when present, the job
/// runs a [`ConsolidationRun`] of `tenants` workloads from `mix` instead of
/// a single-workload [`Experiment`] (whose `spec` field is then ignored).
#[derive(Debug, Clone, Copy)]
pub struct ConsolidationJob {
    /// Workload mix tenants are drawn from.
    pub mix: Mix,
    /// Consolidation density (tenant count).
    pub tenants: usize,
    /// Scheduler slice length in workload steps.
    pub slice: u64,
}

/// One experiment run awaiting execution, fully described by value so a
/// worker thread needs nothing from the harness.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// The memoization key (`workload|manager|instances|profile`, or
    /// `mix@tenants|manager|sliceN|profile` for consolidated jobs).
    pub key: String,
    /// Workload to run (a roster placeholder for consolidated jobs).
    pub spec: hemu_workloads::WorkloadSpec,
    /// Who places pages: a collector or an OS paging policy.
    pub manager: Manager,
    /// Co-running instance count (the tenant count for consolidated jobs).
    pub instances: usize,
    /// Machine profile.
    pub profile: Profile,
    /// Multi-tenant payload; `None` runs a plain experiment.
    pub consolidation: Option<ConsolidationJob>,
}

/// The outcome of executing one job, parked in staging until the run is
/// demanded (and thereby committed) by the real rendering pass.
#[derive(Debug)]
pub struct StagedRun {
    /// Attempts consumed (1 unless transient faults forced retries).
    pub attempts: u32,
    /// Host wall-clock seconds the job took, all attempts included.
    /// Observability only (bench p50/p95); never exported into run
    /// artifacts, which must stay byte-identical across machines.
    pub wall_seconds: f64,
    /// The full artifact bundle (report, trace, profiler spans, wear
    /// heatmap), or the terminal error.
    pub outcome: Result<RunArtifacts, HemuError>,
}

/// Everything a worker needs to execute jobs: the harness-wide run
/// configuration, cloned once per wave and shared read-only.
pub struct ExecCtx {
    /// Fault plan applied (key-filtered) to every attempt.
    pub fault_plan: Option<FaultPlan>,
    /// Endurance model applied to every experiment.
    pub endurance: Option<EnduranceConfig>,
    /// Deadline/retry policy.
    pub policy: RunPolicy,
    /// Migrator tuning for OS-managed jobs (the job's policy overrides the
    /// `policy` field).
    pub os_tuning: OsPagingConfig,
    /// Whether to capture an event trace of the measured iteration.
    pub want_trace: bool,
    /// Whether to run the phase-and-provenance profiler (virtual-time
    /// spans, write attribution, wear heatmap).
    pub want_profile: bool,
    /// Access-path implementation every experiment's machine uses.
    pub access_path: AccessPath,
    /// Batch-resolution worker threads inside each run (results are
    /// identical at any value).
    pub intra_threads: usize,
    /// How runtime layers hand traffic to the machine (deferred buffered
    /// submission vs immediate per-call resolution; artifacts are
    /// byte-identical either way).
    pub submit_mode: SubmitMode,
    /// Serialized progress sink shared by all workers.
    pub reporter: Reporter,
}

/// Renders a caught panic payload as a [`HemuError::Panicked`].
fn panic_error(payload: &(dyn std::any::Any + Send)) -> HemuError {
    let msg = payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "opaque panic payload".into());
    HemuError::Panicked(msg)
}

/// Builds the experiment for one attempt, applying the endurance model and
/// (when the key matches) the fault plan reseeded for this attempt so a
/// retry does not deterministically re-fail.
fn configure(ctx: &ExecCtx, job: &JobSpec, attempt: u32) -> Experiment {
    let mut e = Experiment::new(job.spec)
        .instances(job.instances)
        .profile(job.profile.machine())
        .access_path(ctx.access_path)
        .intra_threads(ctx.intra_threads)
        .submit_mode(ctx.submit_mode);
    if ctx.want_profile {
        e = e.profiling();
    }
    match job.manager {
        Manager::Gc(collector) => e = e.collector(collector),
        Manager::Os(policy) => {
            let mut cfg = ctx.os_tuning;
            cfg.policy = policy;
            // The default collector is PCM-Only, the only one an OS-managed
            // run accepts.
            e = e.os_paging(cfg);
        }
    }
    if let Some(cfg) = ctx.endurance {
        e = e.endurance(cfg);
    }
    if let Some(plan) = &ctx.fault_plan {
        if plan.applies_to(&job.key) {
            e = e.faults(plan.for_attempt(attempt));
        }
    }
    e
}

/// [`configure`] for consolidated jobs: the same knobs, applied to a
/// [`ConsolidationRun`] instead of an [`Experiment`].
fn configure_consolidation(
    ctx: &ExecCtx,
    job: &JobSpec,
    c: &ConsolidationJob,
    attempt: u32,
) -> ConsolidationRun {
    let mut r = ConsolidationRun::new(c.mix, c.tenants)
        .slice(c.slice)
        .profile(job.profile.machine())
        .access_path(ctx.access_path)
        .intra_threads(ctx.intra_threads)
        .submit_mode(ctx.submit_mode);
    if ctx.want_profile {
        r = r.profiling();
    }
    match job.manager {
        Manager::Gc(collector) => r = r.collector(collector),
        Manager::Os(policy) => {
            let mut cfg = ctx.os_tuning;
            cfg.policy = policy;
            r = r.os_paging(cfg);
        }
    }
    if let Some(cfg) = ctx.endurance {
        r = r.endurance(cfg);
    }
    if let Some(plan) = &ctx.fault_plan {
        if plan.applies_to(&job.key) {
            r = r.faults(plan.for_attempt(attempt));
        }
    }
    r
}

/// Runs one attempt with panic isolation and, when the policy sets a
/// deadline, a watchdog: the run executes on a helper thread and an
/// expired deadline abandons it (the thread is detached; the Machine it
/// owns is dropped when the attempt eventually unwinds or finishes).
/// Generic over the run entry point so single-workload experiments and
/// consolidated runs share the exact same guard machinery.
fn run_guarded<F>(policy: &RunPolicy, want_trace: bool, run: F) -> Result<RunArtifacts, HemuError>
where
    F: FnOnce(Tracer) -> Result<RunArtifacts, HemuError> + Send + 'static,
{
    let body = move || {
        let tracer = if want_trace {
            Tracer::bounded(TRACE_CAPACITY)
        } else {
            Tracer::disabled()
        };
        run(tracer)
    };
    match policy.deadline {
        None => panic::catch_unwind(AssertUnwindSafe(body))
            .unwrap_or_else(|p| Err(panic_error(p.as_ref()))),
        Some(deadline) => {
            let (tx, rx) = mpsc::channel();
            thread::spawn(move || {
                let result = panic::catch_unwind(AssertUnwindSafe(body))
                    .unwrap_or_else(|p| Err(panic_error(p.as_ref())));
                // The receiver may have given up already; that's fine.
                let _ = tx.send(result);
            });
            match rx.recv_timeout(deadline) {
                Ok(result) => result,
                Err(_) => Err(HemuError::Timeout {
                    deadline_ms: deadline.as_millis() as u64,
                }),
            }
        }
    }
}

/// Executes one job under the resilience policy: panics are caught, a
/// deadline (if set) bounds each attempt, and transient injected faults
/// are retried with capped linear backoff. Backoff sleeps park only the
/// calling worker; other workers keep draining the queue.
pub fn run_job(job: &JobSpec, ctx: &ExecCtx) -> StagedRun {
    run_job_inner(job, ctx, true)
}

/// [`run_job`] with explicit progress semantics: `announce = true` opens
/// the job's display with a `running` line; `false` marks a supervised
/// requeue with a `retried` line instead, so a job that crashed its worker
/// never emits a duplicate `begin` and progress output stays parseable as
/// one `running`/`retried*`/final-line sequence per key.
pub(crate) fn run_job_inner(job: &JobSpec, ctx: &ExecCtx, announce: bool) -> StagedRun {
    // begin/finish bracket the run so a failed or retried run always
    // finalizes its display line — `running ...` is never a key's last word.
    if announce {
        ctx.reporter.begin(&job.key);
    } else {
        ctx.reporter.retried(&job.key);
    }
    let t0 = Instant::now();
    let mut attempt = 1u32;
    loop {
        let guarded = match &job.consolidation {
            Some(c) => {
                let run = configure_consolidation(ctx, job, c, attempt);
                run_guarded(&ctx.policy, ctx.want_trace, move |t| run.run_traced(t))
            }
            None => {
                let experiment = configure(ctx, job, attempt);
                run_guarded(&ctx.policy, ctx.want_trace, move |t| {
                    experiment.run_traced(t)
                })
            }
        };
        match guarded {
            Ok(ok) => {
                ctx.reporter.finish(&job.key, &format!("done {}", job.key));
                return StagedRun {
                    attempts: attempt,
                    wall_seconds: t0.elapsed().as_secs_f64(),
                    outcome: Ok(ok),
                };
            }
            Err(e) => {
                let transient = matches!(
                    e,
                    HemuError::FaultInjected {
                        transient: true,
                        ..
                    }
                );
                if transient && attempt < ctx.policy.max_attempts {
                    ctx.reporter
                        .line(&format!("  retrying {} (attempt {attempt}): {e}", job.key));
                    thread::sleep(ctx.policy.backoff_for(attempt));
                    attempt += 1;
                    continue;
                }
                ctx.reporter.finish(
                    &job.key,
                    &format!("FAILED {} after {attempt} attempt(s): {e}", job.key),
                );
                return StagedRun {
                    attempts: attempt,
                    wall_seconds: t0.elapsed().as_secs_f64(),
                    outcome: Err(e),
                };
            }
        }
    }
}

/// Executes `jobs` on a pool of at most `workers` threads and returns the
/// staged results in job order. Workers pull jobs from a shared atomic
/// cursor, so the assignment of jobs to threads is racy — but results are
/// keyed by queue position, and commitment order is decided later by the
/// demand sequence, so scheduling noise cannot reach any artifact.
pub fn execute_wave(jobs: &[JobSpec], workers: usize, ctx: &ExecCtx) -> Vec<StagedRun> {
    execute_wave_with(jobs, workers, ctx, run_job_inner)
}

/// [`execute_wave`] generic over the per-job runner, so the supervision
/// machinery (requeue, bounded retries, `retried` progress lines) can be
/// unit-tested with a runner that misbehaves on demand.
///
/// # Worker supervision
///
/// `run_job_inner` already catches experiment panics, so a panic that
/// *escapes* the runner means the worker machinery itself crashed mid-job.
/// Rather than abort the sweep (or silently lose the job), the pool
/// supervises itself:
///
/// - the panic is caught at the worker loop, so the worker thread survives
///   and keeps draining the queue — the pool never shrinks;
/// - the crashed job is requeued and re-announced with a `retried`
///   progress line (never a duplicate `begin`);
/// - requeues are bounded by the [`RunPolicy`] retry budget; a job that
///   keeps killing workers is staged as [`HemuError::Panicked`] and the
///   sweep carries on.
///
/// Requeued jobs re-execute from scratch; determinism makes the retry
/// invisible in every artifact.
pub(crate) fn execute_wave_with<R>(
    jobs: &[JobSpec],
    workers: usize,
    ctx: &ExecCtx,
    runner: R,
) -> Vec<StagedRun>
where
    R: Fn(&JobSpec, &ExecCtx, bool) -> StagedRun + Sync,
{
    let workers = workers.clamp(1, jobs.len().max(1));
    let slots: Vec<Mutex<Option<StagedRun>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
    let crashes: Vec<AtomicU32> = jobs.iter().map(|_| AtomicU32::new(0)).collect();
    let requeue: Mutex<VecDeque<usize>> = Mutex::new(VecDeque::new());
    let cursor = AtomicUsize::new(0);
    let worker_loop = || loop {
        // Requeued (supervised-crash) jobs take priority over fresh ones so
        // a crash surfaces its retry budget quickly instead of starving
        // behind the tail of the queue.
        let requeued = requeue.lock().map_or(None, |mut q| q.pop_front());
        let i = match requeued {
            Some(i) => i,
            None => {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                i
            }
        };
        let job = &jobs[i];
        let first = crashes[i].load(Ordering::Relaxed) == 0;
        match panic::catch_unwind(AssertUnwindSafe(|| runner(job, ctx, first))) {
            Ok(staged) => {
                if let Ok(mut s) = slots[i].lock() {
                    *s = Some(staged);
                }
            }
            Err(payload) => {
                let err = panic_error(payload.as_ref());
                let crash_count = crashes[i].fetch_add(1, Ordering::Relaxed) + 1;
                if crash_count < ctx.policy.max_attempts {
                    ctx.reporter.line(&format!(
                        "  supervisor: worker crashed on {} ({err}); requeueing (crash {crash_count})",
                        job.key
                    ));
                    if let Ok(mut q) = requeue.lock() {
                        q.push_back(i);
                    }
                } else {
                    ctx.reporter.finish(
                        &job.key,
                        &format!(
                            "FAILED {} after {crash_count} worker crash(es): {err}",
                            job.key
                        ),
                    );
                    if let Ok(mut s) = slots[i].lock() {
                        *s = Some(StagedRun {
                            attempts: crash_count,
                            wall_seconds: 0.0,
                            outcome: Err(err),
                        });
                    }
                }
            }
        }
    };
    if workers == 1 {
        worker_loop();
    } else {
        thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(worker_loop);
            }
        });
    }
    // Replenishment fallback: if every worker somehow died with jobs still
    // queued or requeued (catch_unwind above makes this unreachable in
    // practice), finish the stragglers inline rather than losing them.
    for (i, slot) in slots.iter().enumerate() {
        let empty = slot.lock().map_or(false, |s| s.is_none());
        if empty {
            let staged = panic::catch_unwind(AssertUnwindSafe(|| {
                runner(&jobs[i], ctx, crashes[i].load(Ordering::Relaxed) == 0)
            }))
            .unwrap_or_else(|payload| StagedRun {
                attempts: 1,
                wall_seconds: 0.0,
                outcome: Err(panic_error(payload.as_ref())),
            });
            if let Ok(mut s) = slot.lock() {
                *s = Some(staged);
            }
        }
    }
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .unwrap_or_else(|| StagedRun {
                    attempts: 1,
                    wall_seconds: 0.0,
                    outcome: Err(HemuError::Panicked("worker dropped a staged run".into())),
                })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::sync::Arc;

    /// A writer appending into a shared buffer, for asserting on progress
    /// output.
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if let Ok(mut b) = self.0.lock() {
                b.extend_from_slice(buf);
            }
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn test_ctx(buf: &Arc<Mutex<Vec<u8>>>) -> ExecCtx {
        ExecCtx {
            fault_plan: None,
            endurance: None,
            policy: RunPolicy::default(),
            os_tuning: OsPagingConfig::default(),
            want_trace: false,
            want_profile: false,
            access_path: AccessPath::default(),
            intra_threads: 1,
            submit_mode: SubmitMode::default(),
            reporter: Reporter::to_writer(Box::new(SharedBuf(Arc::clone(buf)))),
        }
    }

    fn test_jobs(keys: &[&str]) -> Vec<JobSpec> {
        let spec = hemu_workloads::WorkloadSpec::by_name("avrora").expect("known workload");
        keys.iter()
            .map(|k| JobSpec {
                key: (*k).to_string(),
                spec,
                manager: Manager::Gc(hemu_heap::CollectorKind::PcmOnly),
                instances: 1,
                profile: Profile::Emulation,
                consolidation: None,
            })
            .collect()
    }

    /// A stub staged result that identifies which job produced it without
    /// having to construct real run artifacts.
    fn stub_result(job: &JobSpec) -> StagedRun {
        StagedRun {
            attempts: 1,
            wall_seconds: 0.0,
            outcome: Err(HemuError::InvalidConfig(format!("stub:{}", job.key))),
        }
    }

    fn drained(buf: &Arc<Mutex<Vec<u8>>>) -> String {
        String::from_utf8(buf.lock().expect("buffer lock").clone()).expect("utf8 progress")
    }

    #[test]
    fn a_worker_crash_requeues_the_job_without_a_duplicate_begin() {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let ctx = test_ctx(&buf);
        let jobs = test_jobs(&["crashy", "steady"]);
        // Record every (key, announce) call; panic exactly once, on the
        // first delivery of `crashy`.
        let calls: Mutex<Vec<(String, bool)>> = Mutex::new(Vec::new());
        let results = execute_wave_with(&jobs, 2, &ctx, |job, _ctx, announce| {
            let first_crashy = {
                let mut c = calls.lock().expect("calls lock");
                c.push((job.key.clone(), announce));
                job.key == "crashy" && c.iter().filter(|(k, _)| k == "crashy").count() == 1
            };
            if first_crashy {
                panic!("simulated worker crash");
            }
            stub_result(job)
        });
        // Both slots hold the stub result, in job order, despite the crash.
        assert_eq!(results.len(), 2);
        for (job, staged) in jobs.iter().zip(&results) {
            match &staged.outcome {
                Err(HemuError::InvalidConfig(msg)) => assert_eq!(msg, &format!("stub:{}", job.key)),
                other => panic!("job {} staged {other:?}", job.key),
            }
        }
        // The requeued delivery was announced as a retry, not a fresh begin.
        let calls = calls.into_inner().expect("calls lock");
        let crashy: Vec<bool> = calls
            .iter()
            .filter(|(k, _)| k == "crashy")
            .map(|(_, announce)| *announce)
            .collect();
        assert_eq!(crashy, [true, false], "requeue must re-announce as retried");
        let text = drained(&buf);
        assert!(
            text.contains("supervisor: worker crashed on crashy"),
            "supervisor line missing from:\n{text}"
        );
    }

    #[test]
    fn repeated_crashes_exhaust_the_retry_budget() {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let ctx = test_ctx(&buf);
        let jobs = test_jobs(&["doomed"]);
        let results = execute_wave_with(&jobs, 1, &ctx, |_job, _ctx, _announce| {
            panic!("crashes every time");
        });
        assert_eq!(results.len(), 1);
        match &results[0].outcome {
            Err(HemuError::Panicked(msg)) => {
                assert!(
                    msg.contains("crashes every time"),
                    "unexpected panic message: {msg}"
                )
            }
            other => panic!("expected a panic error, got {other:?}"),
        }
        assert_eq!(
            results[0].attempts, ctx.policy.max_attempts,
            "the whole retry budget must be consumed before giving up"
        );
        let text = drained(&buf);
        assert!(
            text.contains("FAILED doomed") && text.contains("worker crash"),
            "final FAILED line missing from:\n{text}"
        );
    }
}
