//! The parallel sweep executor: a fixed-size worker pool that drains a
//! deterministic job queue of experiment runs.
//!
//! # Determinism contract
//!
//! Parallelism must never change a single exported byte. The harness
//! guarantees that by separating *execution* from *commitment*:
//!
//! 1. A **planning pass** replays a figure function with the harness in
//!    planning mode. Every run the figure demands that is not already
//!    cached, failed, or staged is enqueued as a [`JobSpec`] and answered
//!    with [`HemuError::Deferred`]; the figure's output is discarded.
//! 2. An **execution wave** drains the queue on a pool of `--jobs`
//!    workers. Each worker owns its jobs end to end — experiment
//!    construction, retries, backoff sleeps — and parks only itself while
//!    backing off. Results land in per-job staging slots.
//! 3. Planning and execution repeat until a pass demands nothing new
//!    (figures branch on earlier results, so dependent runs surface only
//!    after their inputs exist).
//! 4. The **real pass** renders the figure again; staged results are
//!    *committed* (recorded, exported, cached) strictly in demand order —
//!    the exact order the sequential path executes in. Speculatively
//!    executed runs that the real pass never demands are never committed
//!    and are invisible in every artifact.
//!
//! `--jobs 1` skips the planning machinery entirely and executes inline at
//! first demand, byte-identical to the historical sequential path — which
//! in turn is byte-identical to any `--jobs N` by the argument above.

use crate::harness::{Manager, Profile, RunPolicy};
use hemu_core::{Experiment, RunArtifacts};
use hemu_fault::{EnduranceConfig, FaultPlan};
use hemu_obs::{Reporter, Tracer};
use hemu_types::{AccessPath, HemuError, OsPagingConfig};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Mutex;
use std::thread;
use std::time::Instant;

/// Records retained per traced run; QPI batching keeps even long runs well
/// under this.
pub(crate) const TRACE_CAPACITY: usize = 1 << 16;

/// One experiment run awaiting execution, fully described by value so a
/// worker thread needs nothing from the harness.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// The memoization key (`workload|manager|instances|profile`).
    pub key: String,
    /// Workload to run.
    pub spec: hemu_workloads::WorkloadSpec,
    /// Who places pages: a collector or an OS paging policy.
    pub manager: Manager,
    /// Co-running instance count.
    pub instances: usize,
    /// Machine profile.
    pub profile: Profile,
}

/// The outcome of executing one job, parked in staging until the run is
/// demanded (and thereby committed) by the real rendering pass.
#[derive(Debug)]
pub struct StagedRun {
    /// Attempts consumed (1 unless transient faults forced retries).
    pub attempts: u32,
    /// Host wall-clock seconds the job took, all attempts included.
    /// Observability only (bench p50/p95); never exported into run
    /// artifacts, which must stay byte-identical across machines.
    pub wall_seconds: f64,
    /// The full artifact bundle (report, trace, profiler spans, wear
    /// heatmap), or the terminal error.
    pub outcome: Result<RunArtifacts, HemuError>,
}

/// Everything a worker needs to execute jobs: the harness-wide run
/// configuration, cloned once per wave and shared read-only.
pub struct ExecCtx {
    /// Fault plan applied (key-filtered) to every attempt.
    pub fault_plan: Option<FaultPlan>,
    /// Endurance model applied to every experiment.
    pub endurance: Option<EnduranceConfig>,
    /// Deadline/retry policy.
    pub policy: RunPolicy,
    /// Migrator tuning for OS-managed jobs (the job's policy overrides the
    /// `policy` field).
    pub os_tuning: OsPagingConfig,
    /// Whether to capture an event trace of the measured iteration.
    pub want_trace: bool,
    /// Whether to run the phase-and-provenance profiler (virtual-time
    /// spans, write attribution, wear heatmap).
    pub want_profile: bool,
    /// Access-path implementation every experiment's machine uses.
    pub access_path: AccessPath,
    /// Batch-resolution worker threads inside each run (results are
    /// identical at any value).
    pub intra_threads: usize,
    /// Serialized progress sink shared by all workers.
    pub reporter: Reporter,
}

/// Renders a caught panic payload as a [`HemuError::Panicked`].
fn panic_error(payload: &(dyn std::any::Any + Send)) -> HemuError {
    let msg = payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "opaque panic payload".into());
    HemuError::Panicked(msg)
}

/// Builds the experiment for one attempt, applying the endurance model and
/// (when the key matches) the fault plan reseeded for this attempt so a
/// retry does not deterministically re-fail.
fn configure(ctx: &ExecCtx, job: &JobSpec, attempt: u32) -> Experiment {
    let mut e = Experiment::new(job.spec)
        .instances(job.instances)
        .profile(job.profile.machine())
        .access_path(ctx.access_path)
        .intra_threads(ctx.intra_threads);
    if ctx.want_profile {
        e = e.profiling();
    }
    match job.manager {
        Manager::Gc(collector) => e = e.collector(collector),
        Manager::Os(policy) => {
            let mut cfg = ctx.os_tuning;
            cfg.policy = policy;
            // The default collector is PCM-Only, the only one an OS-managed
            // run accepts.
            e = e.os_paging(cfg);
        }
    }
    if let Some(cfg) = ctx.endurance {
        e = e.endurance(cfg);
    }
    if let Some(plan) = &ctx.fault_plan {
        if plan.applies_to(&job.key) {
            e = e.faults(plan.for_attempt(attempt));
        }
    }
    e
}

/// Runs one attempt with panic isolation and, when the policy sets a
/// deadline, a watchdog: the experiment runs on a helper thread and an
/// expired deadline abandons it (the thread is detached; the Machine it
/// owns is dropped when the attempt eventually unwinds or finishes).
fn run_guarded(
    policy: &RunPolicy,
    want_trace: bool,
    experiment: Experiment,
) -> Result<RunArtifacts, HemuError> {
    let body = move || {
        let tracer = if want_trace {
            Tracer::bounded(TRACE_CAPACITY)
        } else {
            Tracer::disabled()
        };
        experiment.run_traced(tracer)
    };
    match policy.deadline {
        None => {
            panic::catch_unwind(AssertUnwindSafe(body)).unwrap_or_else(|p| Err(panic_error(&p)))
        }
        Some(deadline) => {
            let (tx, rx) = mpsc::channel();
            thread::spawn(move || {
                let result = panic::catch_unwind(AssertUnwindSafe(body))
                    .unwrap_or_else(|p| Err(panic_error(&p)));
                // The receiver may have given up already; that's fine.
                let _ = tx.send(result);
            });
            match rx.recv_timeout(deadline) {
                Ok(result) => result,
                Err(_) => Err(HemuError::Timeout {
                    deadline_ms: deadline.as_millis() as u64,
                }),
            }
        }
    }
}

/// Executes one job under the resilience policy: panics are caught, a
/// deadline (if set) bounds each attempt, and transient injected faults
/// are retried with capped linear backoff. Backoff sleeps park only the
/// calling worker; other workers keep draining the queue.
pub fn run_job(job: &JobSpec, ctx: &ExecCtx) -> StagedRun {
    // begin/finish bracket the run so a failed or retried run always
    // finalizes its display line — `running ...` is never a key's last word.
    ctx.reporter.begin(&job.key);
    let t0 = Instant::now();
    let mut attempt = 1u32;
    loop {
        let experiment = configure(ctx, job, attempt);
        match run_guarded(&ctx.policy, ctx.want_trace, experiment) {
            Ok(ok) => {
                ctx.reporter.finish(&job.key, &format!("done {}", job.key));
                return StagedRun {
                    attempts: attempt,
                    wall_seconds: t0.elapsed().as_secs_f64(),
                    outcome: Ok(ok),
                };
            }
            Err(e) => {
                let transient = matches!(
                    e,
                    HemuError::FaultInjected {
                        transient: true,
                        ..
                    }
                );
                if transient && attempt < ctx.policy.max_attempts {
                    ctx.reporter
                        .line(&format!("  retrying {} (attempt {attempt}): {e}", job.key));
                    thread::sleep(ctx.policy.backoff_for(attempt));
                    attempt += 1;
                    continue;
                }
                ctx.reporter.finish(
                    &job.key,
                    &format!("FAILED {} after {attempt} attempt(s): {e}", job.key),
                );
                return StagedRun {
                    attempts: attempt,
                    wall_seconds: t0.elapsed().as_secs_f64(),
                    outcome: Err(e),
                };
            }
        }
    }
}

/// Executes `jobs` on a pool of at most `workers` threads and returns the
/// staged results in job order. Workers pull jobs from a shared atomic
/// cursor, so the assignment of jobs to threads is racy — but results are
/// keyed by queue position, and commitment order is decided later by the
/// demand sequence, so scheduling noise cannot reach any artifact.
pub fn execute_wave(jobs: &[JobSpec], workers: usize, ctx: &ExecCtx) -> Vec<StagedRun> {
    let workers = workers.clamp(1, jobs.len().max(1));
    let slots: Vec<Mutex<Option<StagedRun>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
    if workers == 1 {
        for (job, slot) in jobs.iter().zip(&slots) {
            let staged = run_job(job, ctx);
            if let Ok(mut s) = slot.lock() {
                *s = Some(staged);
            }
        }
    } else {
        let cursor = AtomicUsize::new(0);
        thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(job) = jobs.get(i) else { break };
                    let staged = run_job(job, ctx);
                    if let Ok(mut s) = slots[i].lock() {
                        *s = Some(staged);
                    }
                });
            }
        });
    }
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .unwrap_or_else(|| StagedRun {
                    attempts: 1,
                    wall_seconds: 0.0,
                    outcome: Err(HemuError::Panicked("worker dropped a staged run".into())),
                })
        })
        .collect()
}
