//! `repro`: regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run -p hemu-bench --bin repro --release -- all
//! cargo run -p hemu-bench --bin repro --release -- fig3 fig7 --quick
//! cargo run -p hemu-bench --bin repro --release -- table2 --json-out out/ --trace-out out/trace.jsonl
//! ```
//!
//! Targets: `table1 table2 fig3 fig4 fig5 fig6 fig7 fig8 table3 os
//! consolidate write_breakdown all` (plus `smoke`, a tiny 6-run sanity
//! sweep used by the CI crash-safety smoke).
//! `--quick` (or `--scale quick`) restricts DaCapo to the seven-benchmark
//! §V subset.
//! `--json-out <dir>` writes one `<run>.json` per executed experiment plus
//! the combined `runs.json` and `samples.csv`; `--trace-out <file>` appends
//! every executed run's measured-iteration event trace as JSON Lines.
//!
//! Crash safety (see `docs/fault-injection.md`): `--json-out` sweeps keep
//! a write-ahead `journal.jsonl` in the output directory, fsynced as each
//! run commits, and every artifact is written atomically
//! (temp-file + rename). `--resume <dir>` replays a killed sweep's
//! journaled results and re-executes only what is missing or failed — the
//! resumed directory ends byte-identical to an uninterrupted sweep's at
//! any `--jobs`. `--chaos-kill-after <n>` hard-exits the process (as if
//! SIGKILLed) after the Nth run commit; CI uses it to prove the
//! run→kill→resume→identical-bytes loop.
//!
//! Profiler flags (see `docs/observability.md`): `--profile` runs every
//! harness experiment under the phase-and-provenance profiler (reports gain
//! the per-cause/per-space write-attribution block); `--timeline-out
//! <file>` writes the runs' virtual-time spans as a Chrome trace-event JSON
//! document loadable in Perfetto; `--heatmap-out <file>` writes a per-page
//! PCM wear CSV. The export flags imply `--profile`.
//!
//! Resilience flags (see `docs/fault-injection.md`):
//! `--faults <spec>` installs a deterministic fault plan (`smoke`, `none`,
//! or `k=v` pairs); `--endurance <spec>` enables the PCM wear/endurance
//! model; `--run-deadline <seconds>` bounds each experiment attempt.
//! Failed runs are recorded in `runs.json` with their status and cause
//! while the sweep completes; the exit code is non-zero iff any run
//! ultimately failed.
//!
//! Consolidation flags (the `consolidate` target; see `EXPERIMENTS.md`):
//! `--tenants N` sets the sweep's maximum tenant density (default: 8 at
//! quick scale, 64 at full scale); `--mix dacapo|pjbb|graphchi|mixed`
//! picks the workload roster tenants round-robin over (default: mixed);
//! `--slice N` sets the scheduler's virtual-time slice in workload steps
//! per tenant turn (default: 64). Per-tenant write attribution lands in
//! each report's `consolidation` block and `*.tenant.<id>.*` metrics.
//!
//! OS-baseline flags (the `os` target; see `docs/observability.md` and
//! `EXPERIMENTS.md`): `--os-policy dram-first,pcm-first,hot-cold` selects
//! which paging policies sweep against the collectors (default: all
//! three); `--epoch <lines>` sets the hot/cold migrator's epoch length in
//! cache-line accesses; `--migration-budget <pages>` caps migrations per
//! epoch; `--os-dram <MiB>` clamps the DRAM socket for OS-managed runs
//! (default 4 MiB so migration pressure is visible; `0` = unlimited).
//!
//! Performance flags (see `docs/performance.md`):
//! `--jobs N` runs each target's experiments on an N-worker pool (default:
//! the machine's available parallelism; `--jobs 1` is the sequential
//! path). Every exported artifact is byte-identical at any `--jobs` value.
//! `--bench` skips the figure targets and instead times the access fast
//! path and a fixed quick sweep, writing `BENCH_results.json`
//! (`--bench-out` overrides the path); `--bench-baseline FILE` additionally
//! fails the run when access-kernel throughput drops more than 20% below
//! the baseline file. `--access-path scalar|batched` selects the machine's
//! access implementation (default: batched; both produce byte-identical
//! artifacts) and `--intra-threads N` sets the batch-resolution worker
//! count inside each run (default: the machine's available parallelism;
//! any value is byte-identical, and the value used is recorded in the
//! bench results schema). `--submit deferred|scalar` selects the runtime
//! layers' submission mode (default: deferred; byte-identical artifacts,
//! scalar keeps the per-call reference behavior for verification).

use hemu_bench::{experiments, perf, Harness, RunPolicy, Scale};
use hemu_fault::{EnduranceConfig, FaultPlan};
use hemu_types::{AccessPath, ByteSize, OsPagingConfig, OsPolicy, SubmitMode};
use std::path::Path;
use std::time::{Duration, Instant};

/// Extracts a `--flag VALUE` pair from `args`, removing both elements.
fn take_value_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() || args[i + 1].starts_with("--") {
        eprintln!("{flag} requires a value");
        std::process::exit(2);
    }
    let value = args.remove(i + 1);
    args.remove(i);
    Some(value)
}

/// Removes a boolean `--flag` from `args`, returning whether it was there.
fn take_bool_flag(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|a| a == flag) {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json_out = take_value_flag(&mut args, "--json-out");
    let trace_out = take_value_flag(&mut args, "--trace-out");
    let timeline_out = take_value_flag(&mut args, "--timeline-out");
    let heatmap_out = take_value_flag(&mut args, "--heatmap-out");
    let profile = take_bool_flag(&mut args, "--profile");
    let faults = take_value_flag(&mut args, "--faults");
    let endurance = take_value_flag(&mut args, "--endurance");
    let run_deadline = take_value_flag(&mut args, "--run-deadline");
    let scale_flag = take_value_flag(&mut args, "--scale");
    let jobs_flag = take_value_flag(&mut args, "--jobs");
    let os_policy_flag = take_value_flag(&mut args, "--os-policy");
    let epoch_flag = take_value_flag(&mut args, "--epoch");
    let budget_flag = take_value_flag(&mut args, "--migration-budget");
    let os_dram_flag = take_value_flag(&mut args, "--os-dram");
    let resume = take_value_flag(&mut args, "--resume");
    let chaos_kill_after = take_value_flag(&mut args, "--chaos-kill-after");
    let bench_out = take_value_flag(&mut args, "--bench-out");
    let bench_baseline = take_value_flag(&mut args, "--bench-baseline");
    let bench = take_bool_flag(&mut args, "--bench");
    let tenants_flag = take_value_flag(&mut args, "--tenants");
    let mix_flag = take_value_flag(&mut args, "--mix");
    let slice_flag = take_value_flag(&mut args, "--slice");
    let access_path_flag = take_value_flag(&mut args, "--access-path");
    let intra_threads_flag = take_value_flag(&mut args, "--intra-threads");
    let access_path = match access_path_flag.as_deref() {
        None => AccessPath::default(),
        Some(s) => match AccessPath::parse(s) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("--access-path: {e}");
                std::process::exit(2);
            }
        },
    };
    let submit_flag = take_value_flag(&mut args, "--submit");
    let submit_mode = match submit_flag.as_deref() {
        None => SubmitMode::default(),
        Some(s) => match SubmitMode::parse(s) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("--submit: {e}");
                std::process::exit(2);
            }
        },
    };
    // Safe to default wide: shard resolution is deterministic at any
    // worker count (crates/bench/tests/determinism.rs), and the count used
    // is recorded in the bench schema for reproducibility.
    let intra_threads = match intra_threads_flag.as_deref() {
        None => std::thread::available_parallelism().map_or(1, |n| n.get()),
        Some(s) => match s.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("--intra-threads: expected a positive integer, got `{s}`");
                std::process::exit(2);
            }
        },
    };
    let jobs = match jobs_flag.as_deref() {
        None => std::thread::available_parallelism().map_or(1, |n| n.get()),
        Some(s) => match s.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("--jobs: expected a positive integer, got `{s}`");
                std::process::exit(2);
            }
        },
    };

    if bench {
        let out = bench_out.unwrap_or_else(|| "BENCH_results.json".into());
        match perf::run_bench(
            jobs,
            intra_threads,
            submit_mode,
            Path::new(&out),
            bench_baseline.as_deref().map(Path::new),
        ) {
            Ok(outcome) => {
                println!("{}", outcome.summary);
                if let Some(msg) = outcome.regression {
                    eprintln!("{msg}");
                    std::process::exit(1);
                }
                return;
            }
            Err(e) => {
                eprintln!("--bench failed: {e}");
                std::process::exit(1);
            }
        }
    }
    let quick = match scale_flag.as_deref() {
        None => args.iter().any(|a| a == "--quick"),
        Some("quick") => true,
        Some("full") => false,
        Some(other) => {
            eprintln!("--scale: expected `quick` or `full`, got `{other}`");
            std::process::exit(2);
        }
    };
    let mix = match mix_flag.as_deref() {
        None => hemu_tenant::Mix::Mixed,
        Some(s) => match hemu_tenant::Mix::parse(s) {
            Some(m) => m,
            None => {
                eprintln!("--mix: expected dacapo|pjbb|graphchi|mixed, got `{s}`");
                std::process::exit(2);
            }
        },
    };
    // Full-scale sweeps go past LLC saturation (the interesting knee);
    // quick keeps CI cheap while still showing the contention trend.
    let max_tenants = match tenants_flag.as_deref() {
        None => {
            if quick {
                8
            } else {
                64
            }
        }
        Some(s) => match s.parse::<usize>() {
            Ok(n) if (1..=255).contains(&n) => n,
            _ => {
                eprintln!("--tenants: expected a tenant count in 1..=255, got `{s}`");
                std::process::exit(2);
            }
        },
    };
    let slice = match slice_flag.as_deref() {
        None => 64,
        Some(s) => match s.parse::<u64>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("--slice: expected a positive number of steps, got `{s}`");
                std::process::exit(2);
            }
        },
    };
    let mut targets: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    if targets.is_empty() || targets.contains(&"all") {
        targets = vec![
            "table1",
            "table2",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "table3",
            "fig8",
            "os",
            "consolidate",
            "ablations",
            "write_breakdown",
        ];
    }

    let os_policies: Vec<OsPolicy> = match os_policy_flag.as_deref() {
        None | Some("all") => OsPolicy::ALL.to_vec(),
        Some(list) => list
            .split(',')
            .map(|p| match OsPolicy::parse(p.trim()) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("--os-policy: {e}");
                    std::process::exit(2);
                }
            })
            .collect(),
    };
    let mut os_tuning = OsPagingConfig::default();
    // The emulated sockets are far larger than any workload here, so an
    // unclamped DRAM socket never spills and every policy degenerates to
    // dram-first; a small default clamp makes migration pressure real.
    os_tuning.dram_limit = Some(ByteSize::from_mib(4));
    if let Some(s) = &epoch_flag {
        match s.parse::<u64>() {
            Ok(n) if n > 0 => os_tuning.epoch_lines = n,
            _ => {
                eprintln!("--epoch: expected a positive number of line accesses");
                std::process::exit(2);
            }
        }
    }
    if let Some(s) = &budget_flag {
        match s.parse::<u64>() {
            Ok(n) if n > 0 => os_tuning.migration_budget = n,
            _ => {
                eprintln!("--migration-budget: expected a positive number of pages");
                std::process::exit(2);
            }
        }
    }
    if let Some(s) = &os_dram_flag {
        match s.parse::<u64>() {
            Ok(0) => os_tuning.dram_limit = None,
            Ok(mib) => os_tuning.dram_limit = Some(ByteSize::from_mib(mib)),
            _ => {
                eprintln!("--os-dram: expected a DRAM size in MiB (0 = unlimited)");
                std::process::exit(2);
            }
        }
    }

    let scale = if quick { Scale::Quick } else { Scale::Full };
    let mut h = Harness::new(scale);
    if resume.is_some() && json_out.is_some() {
        eprintln!("--resume DIR implies --json-out DIR; pass only --resume");
        std::process::exit(2);
    }
    if let Some(dir) = &json_out {
        if let Err(e) = h.set_json_dir(dir) {
            eprintln!("--json-out: {e}");
            std::process::exit(1);
        }
    }
    if let Some(path) = &trace_out {
        if let Err(e) = h.set_trace_out(path) {
            eprintln!("--trace-out: {e}");
            std::process::exit(1);
        }
    }
    h.set_profile(profile);
    if let Some(path) = &timeline_out {
        if let Err(e) = h.set_timeline_out(path) {
            eprintln!("--timeline-out: {e}");
            std::process::exit(1);
        }
    }
    if let Some(path) = &heatmap_out {
        if let Err(e) = h.set_heatmap_out(path) {
            eprintln!("--heatmap-out: {e}");
            std::process::exit(1);
        }
    }
    if let Some(spec) = &faults {
        match FaultPlan::parse(spec) {
            Ok(plan) => h.set_fault_plan(plan),
            Err(e) => {
                eprintln!("--faults: {e}");
                std::process::exit(2);
            }
        }
    }
    if let Some(spec) = &endurance {
        match EnduranceConfig::parse(spec) {
            Ok(cfg) => h.set_endurance(cfg),
            Err(e) => {
                eprintln!("--endurance: {e}");
                std::process::exit(2);
            }
        }
    }
    if let Some(secs) = &run_deadline {
        match secs.parse::<f64>() {
            Ok(s) if s > 0.0 && s.is_finite() => h.set_run_policy(RunPolicy {
                deadline: Some(Duration::from_secs_f64(s)),
                ..RunPolicy::default()
            }),
            _ => {
                eprintln!("--run-deadline: expected a positive number of seconds");
                std::process::exit(2);
            }
        }
    }
    h.set_jobs(jobs);
    h.set_access_path(access_path);
    h.set_submit_mode(submit_mode);
    h.set_intra_threads(intra_threads);
    h.set_os_tuning(os_tuning);
    // Resume must come after every plan-affecting flag above: the journal
    // header's plan hash covers scale, faults, endurance, policy and OS
    // tuning, and a mismatch refuses the stale journal.
    if let Some(dir) = &resume {
        if let Err(e) = h.resume_from(dir) {
            eprintln!("--resume: {e}");
            std::process::exit(1);
        }
    }
    if let Some(n) = &chaos_kill_after {
        match n.parse::<u64>() {
            Ok(n) => h.set_chaos_kill_after(n),
            _ => {
                eprintln!("--chaos-kill-after: expected a number of run commits, got `{n}`");
                std::process::exit(2);
            }
        }
    }
    let t0 = Instant::now();
    let mut target_failures = 0usize;

    for target in targets {
        let started = Instant::now();
        // Harness-backed targets render through `run_planned`, which
        // prefetches their experiments on the worker pool when --jobs > 1
        // (artifacts stay byte-identical; see docs/performance.md).
        // Targets that never touch the harness run directly, since a
        // planning pass over them would just repeat their work.
        let result = match target {
            "table1" => Ok(experiments::table1()),
            "smoke" => h.run_planned(experiments::smoke),
            "table2" => h.run_planned(experiments::table2),
            "fig3" => h.run_planned(experiments::fig3),
            "fig4" => h.run_planned(experiments::fig4),
            "fig5" => h.run_planned(experiments::fig5),
            "fig6" => h.run_planned(experiments::fig6),
            "fig7" => h.run_planned(experiments::fig7),
            "fig8" => h.run_planned(experiments::fig8),
            "table3" => h.run_planned(experiments::table3),
            "os" => h.run_planned(|h| experiments::os_baseline(h, &os_policies)),
            "consolidate" => {
                h.run_planned(|h| experiments::consolidation(h, mix, slice, max_tenants))
            }
            "ablations" => experiments::ablations(),
            "write_breakdown" => experiments::write_breakdown(h.os_tuning(), &os_policies),
            s if s.starts_with("series:") => {
                // e.g. `series:lusearch` or `series:pr`.
                experiments::series(&s["series:".len()..], hemu_heap::CollectorKind::PcmOnly)
            }
            other => {
                eprintln!("unknown target `{other}`; see --help in the README");
                std::process::exit(2);
            }
        };
        match result {
            Ok(text) => {
                println!("{}", "=".repeat(78));
                println!("{text}");
                println!(
                    "[{target} done in {:.0?}; {} experiments executed so far]",
                    started.elapsed(),
                    h.runs_executed
                );
            }
            Err(e) => {
                eprintln!("{target} failed: {e}");
                target_failures += 1;
            }
        }
    }
    if let Err(e) = h.finalize_exports() {
        eprintln!("export failed: {e}");
        std::process::exit(1);
    }
    if let Some(dir) = json_out.as_ref().or(resume.as_ref()) {
        println!("[JSON reports written to {dir}]");
    }
    if let Some(path) = &trace_out {
        println!("[event trace written to {path}]");
    }
    if let Some(path) = &timeline_out {
        println!("[Perfetto timeline written to {path}]");
    }
    if let Some(path) = &heatmap_out {
        println!("[wear heatmap written to {path}]");
    }
    println!(
        "\nTotal: {} experiments in {:.0?} ({:?} scale).",
        h.runs_executed,
        t0.elapsed(),
        scale
    );
    if h.failed_count() > 0 || target_failures > 0 {
        eprintln!(
            "{} run(s) and {} target(s) failed; per-run status and cause are in runs.json.",
            h.failed_count(),
            target_failures
        );
        std::process::exit(1);
    }
}
