//! `repro`: regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run -p hemu-bench --bin repro --release -- all
//! cargo run -p hemu-bench --bin repro --release -- fig3 fig7 --quick
//! ```
//!
//! Targets: `table1 table2 fig3 fig4 fig5 fig6 fig7 fig8 table3 all`.
//! `--quick` restricts DaCapo to the seven-benchmark §V subset.

use hemu_bench::{experiments, Harness, Scale};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mut targets: Vec<&str> =
        args.iter().filter(|a| !a.starts_with("--")).map(String::as_str).collect();
    if targets.is_empty() || targets.contains(&"all") {
        targets = vec![
            "table1", "table2", "fig3", "fig4", "fig5", "fig6", "fig7", "table3", "fig8",
            "ablations",
        ];
    }

    let scale = if quick { Scale::Quick } else { Scale::Full };
    let mut h = Harness::new(scale);
    let t0 = Instant::now();

    for target in targets {
        let started = Instant::now();
        let result = match target {
            "table1" => Ok(experiments::table1()),
            "table2" => experiments::table2(&mut h),
            "fig3" => experiments::fig3(&mut h),
            "fig4" => experiments::fig4(&mut h),
            "fig5" => experiments::fig5(&mut h),
            "fig6" => experiments::fig6(&mut h),
            "fig7" => experiments::fig7(&mut h),
            "fig8" => experiments::fig8(&mut h),
            "table3" => experiments::table3(&mut h),
            "ablations" => experiments::ablations(),
            s if s.starts_with("series:") => {
                // e.g. `series:lusearch` or `series:pr`.
                experiments::series(&s["series:".len()..], hemu_heap::CollectorKind::PcmOnly)
            }
            other => {
                eprintln!("unknown target `{other}`; see --help in the README");
                std::process::exit(2);
            }
        };
        match result {
            Ok(text) => {
                println!("{}", "=".repeat(78));
                println!("{text}");
                println!(
                    "[{target} done in {:.0?}; {} experiments executed so far]",
                    started.elapsed(),
                    h.runs_executed
                );
            }
            Err(e) => {
                eprintln!("{target} failed: {e}");
                std::process::exit(1);
            }
        }
    }
    println!(
        "\nTotal: {} experiments in {:.0?} ({:?} scale).",
        h.runs_executed,
        t0.elapsed(),
        scale
    );
}
