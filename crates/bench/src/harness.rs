//! The caching experiment harness.

use hemu_core::{Experiment, RunReport};
use hemu_heap::CollectorKind;
use hemu_machine::MachineProfile;
use hemu_types::Result;
use hemu_workloads::{spec, DatasetSize, Language, WorkloadSpec};
use std::collections::HashMap;

/// How much of the evaluation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// Every benchmark and dataset the paper uses.
    #[default]
    Full,
    /// A representative subset (the §V simulator subset of DaCapo, Pjbb,
    /// and the GraphChi applications) for faster turnaround.
    Quick,
}

/// Which machine profile an experiment runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Profile {
    /// The NUMA emulation platform (16 SMT contexts).
    Emulation,
    /// The Sniper-like simulation reference (8 cores, no SMT).
    Simulation,
}

impl Profile {
    fn machine(self) -> MachineProfile {
        match self {
            Profile::Emulation => MachineProfile::emulation(),
            Profile::Simulation => MachineProfile::simulation(),
        }
    }
}

/// Runs experiments, memoizing results by configuration so figures that
/// share runs do not repeat them.
#[derive(Default)]
pub struct Harness {
    scale: Scale,
    cache: HashMap<String, RunReport>,
    /// Experiments executed (cache misses) — visible in the harness output
    /// so a reader can see how much work a figure took.
    pub runs_executed: usize,
}

impl Harness {
    /// Creates a harness at the given scale.
    pub fn new(scale: Scale) -> Self {
        Harness { scale, ..Self::default() }
    }

    /// The configured scale.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// The DaCapo benchmarks in scope at this scale.
    pub fn dacapo(&self) -> Vec<WorkloadSpec> {
        match self.scale {
            Scale::Full => spec::dacapo_all(),
            Scale::Quick => spec::dacapo_sim_subset(),
        }
    }

    /// All applications in scope at this scale (DaCapo + Pjbb + GraphChi).
    pub fn all_apps(&self) -> Vec<WorkloadSpec> {
        let mut v = self.dacapo();
        v.push(spec::pjbb());
        v.extend(spec::graphchi_all());
        v
    }

    /// Runs (or fetches) one experiment.
    ///
    /// # Errors
    ///
    /// Propagates experiment failures.
    pub fn run(
        &mut self,
        spec: WorkloadSpec,
        collector: CollectorKind,
        instances: usize,
        profile: Profile,
    ) -> Result<RunReport> {
        let key = format!("{spec}|{}|{instances}|{profile:?}", collector.name());
        if let Some(r) = self.cache.get(&key) {
            return Ok(r.clone());
        }
        eprintln!("  running {key} ...");
        let report = Experiment::new(spec)
            .collector(collector)
            .instances(instances)
            .profile(profile.machine())
            .run()?;
        self.cache.insert(key, report.clone());
        self.runs_executed += 1;
        Ok(report)
    }

    /// Convenience: single instance on the emulation profile.
    ///
    /// # Errors
    ///
    /// Propagates experiment failures.
    pub fn run1(&mut self, spec: WorkloadSpec, collector: CollectorKind) -> Result<RunReport> {
        self.run(spec, collector, 1, Profile::Emulation)
    }

    /// Convenience: the C++ implementation of a GraphChi app (PCM-Only).
    ///
    /// # Errors
    ///
    /// Propagates experiment failures.
    pub fn run_cpp(&mut self, name: &str, dataset: DatasetSize) -> Result<RunReport> {
        let spec = WorkloadSpec::by_name(name)
            .expect("unknown GraphChi app")
            .with_language(Language::Cpp)
            .with_dataset(dataset);
        self.run1(spec, CollectorKind::PcmOnly)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_narrows_dacapo() {
        let h = Harness::new(Scale::Quick);
        assert_eq!(h.dacapo().len(), 7);
        assert_eq!(h.all_apps().len(), 11);
        let f = Harness::new(Scale::Full);
        assert_eq!(f.dacapo().len(), 11);
        assert_eq!(f.all_apps().len(), 15);
    }

    #[test]
    fn cache_avoids_rerunning() {
        let mut h = Harness::new(Scale::Quick);
        let spec = WorkloadSpec::by_name("avrora").unwrap();
        let a = h.run1(spec, CollectorKind::KgN).unwrap();
        assert_eq!(h.runs_executed, 1);
        let b = h.run1(spec, CollectorKind::KgN).unwrap();
        assert_eq!(h.runs_executed, 1, "second call must hit the cache");
        assert_eq!(a.pcm_writes, b.pcm_writes);
    }
}
