//! The caching experiment harness.

use hemu_core::{Experiment, RunReport};
use hemu_heap::CollectorKind;
use hemu_machine::MachineProfile;
use hemu_obs::json::{JsonObject, ToJson};
use hemu_obs::{to_json_lines, Csv};
use hemu_types::{HemuError, Result};
use hemu_workloads::{spec, DatasetSize, Language, WorkloadSpec};
use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};

/// How much of the evaluation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// Every benchmark and dataset the paper uses.
    #[default]
    Full,
    /// A representative subset (the §V simulator subset of DaCapo, Pjbb,
    /// and the GraphChi applications) for faster turnaround.
    Quick,
}

/// Which machine profile an experiment runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Profile {
    /// The NUMA emulation platform (16 SMT contexts).
    Emulation,
    /// The Sniper-like simulation reference (8 cores, no SMT).
    Simulation,
}

impl Profile {
    fn machine(self) -> MachineProfile {
        match self {
            Profile::Emulation => MachineProfile::emulation(),
            Profile::Simulation => MachineProfile::simulation(),
        }
    }
}

/// Runs experiments, memoizing results by configuration so figures that
/// share runs do not repeat them.
#[derive(Default)]
pub struct Harness {
    scale: Scale,
    cache: HashMap<String, RunReport>,
    /// Experiments executed (cache misses) — visible in the harness output
    /// so a reader can see how much work a figure took.
    pub runs_executed: usize,
    /// When set, every executed run writes `<dir>/<key>.json` and
    /// [`Harness::finalize_exports`] writes the combined artifacts.
    json_dir: Option<PathBuf>,
    /// When set, every executed run captures a bounded event trace and
    /// appends it (JSONL) to this file.
    trace_out: Option<PathBuf>,
    /// Keys in execution order, for the combined `runs.json`.
    run_order: Vec<String>,
}

/// Records retained per traced run; QPI batching keeps even long runs well
/// under this.
const TRACE_CAPACITY: usize = 1 << 16;

fn io_err(context: &str, path: &Path, e: &std::io::Error) -> HemuError {
    HemuError::Io(format!("{context} {}: {e}", path.display()))
}

/// Turns a run key (`lusearch.small|KG-N|1|Emulation`) into a file stem.
fn slug(key: &str) -> String {
    key.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '.' || c == '-' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

impl Harness {
    /// Creates a harness at the given scale.
    pub fn new(scale: Scale) -> Self {
        Harness {
            scale,
            ..Self::default()
        }
    }

    /// The configured scale.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// Enables JSON export: every executed run writes
    /// `<dir>/<key>.json`, and [`Harness::finalize_exports`] adds the
    /// combined `runs.json` and `samples.csv`.
    ///
    /// # Errors
    ///
    /// Returns [`HemuError::Io`] if the directory cannot be created.
    pub fn set_json_dir(&mut self, dir: impl Into<PathBuf>) -> Result<()> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| io_err("creating", &dir, &e))?;
        self.json_dir = Some(dir);
        Ok(())
    }

    /// Enables event tracing: every executed run captures a bounded trace
    /// of its measured iteration and appends it as JSON Lines to `path`
    /// (each run preceded by a `{"run": "<key>"}` marker record).
    ///
    /// # Errors
    ///
    /// Returns [`HemuError::Io`] if the file cannot be truncated.
    pub fn set_trace_out(&mut self, path: impl Into<PathBuf>) -> Result<()> {
        let path = path.into();
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            fs::create_dir_all(parent).map_err(|e| io_err("creating", parent, &e))?;
        }
        fs::write(&path, "").map_err(|e| io_err("truncating", &path, &e))?;
        self.trace_out = Some(path);
        Ok(())
    }

    /// The DaCapo benchmarks in scope at this scale.
    pub fn dacapo(&self) -> Vec<WorkloadSpec> {
        match self.scale {
            Scale::Full => spec::dacapo_all(),
            Scale::Quick => spec::dacapo_sim_subset(),
        }
    }

    /// All applications in scope at this scale (DaCapo + Pjbb + GraphChi).
    pub fn all_apps(&self) -> Vec<WorkloadSpec> {
        let mut v = self.dacapo();
        v.push(spec::pjbb());
        v.extend(spec::graphchi_all());
        v
    }

    /// Runs (or fetches) one experiment.
    ///
    /// # Errors
    ///
    /// Propagates experiment failures.
    pub fn run(
        &mut self,
        spec: WorkloadSpec,
        collector: CollectorKind,
        instances: usize,
        profile: Profile,
    ) -> Result<RunReport> {
        let key = format!("{spec}|{}|{instances}|{profile:?}", collector.name());
        if let Some(r) = self.cache.get(&key) {
            return Ok(r.clone());
        }
        eprintln!("  running {key} ...");
        let experiment = Experiment::new(spec)
            .collector(collector)
            .instances(instances)
            .profile(profile.machine());
        let report = if self.trace_out.is_some() {
            let (report, trace) = experiment.run_with_trace(TRACE_CAPACITY)?;
            self.append_trace(&key, &trace)?;
            report
        } else {
            experiment.run()?
        };
        if self.json_dir.is_some() {
            self.write_run_json(&key, &report)?;
        }
        self.cache.insert(key.clone(), report.clone());
        self.run_order.push(key);
        self.runs_executed += 1;
        Ok(report)
    }

    fn append_trace(&self, key: &str, trace: &[hemu_obs::TraceRecord]) -> Result<()> {
        let path = self
            .trace_out
            .as_ref()
            .expect("trace_out checked by caller");
        let mut text = String::from("{\"run\":");
        hemu_obs::json::push_json_str(&mut text, key);
        text.push_str("}\n");
        text.push_str(&to_json_lines(trace));
        let existing = fs::read_to_string(path).map_err(|e| io_err("reading", path, &e))?;
        fs::write(path, existing + &text).map_err(|e| io_err("writing", path, &e))
    }

    fn write_run_json(&self, key: &str, report: &RunReport) -> Result<()> {
        let dir = self.json_dir.as_ref().expect("json_dir checked by caller");
        let path = dir.join(format!("{}.json", slug(key)));
        let mut text = report.to_json();
        text.push('\n');
        fs::write(&path, text).map_err(|e| io_err("writing", &path, &e))
    }

    /// Writes the combined export artifacts: `runs.json` (array of
    /// `{"key", "report"}` objects in execution order) and `samples.csv`
    /// (all monitor samples, one row per interval per run). A no-op unless
    /// [`Harness::set_json_dir`] was called.
    ///
    /// # Errors
    ///
    /// Returns [`HemuError::Io`] on write failure.
    pub fn finalize_exports(&self) -> Result<()> {
        let Some(dir) = self.json_dir.as_ref() else {
            return Ok(());
        };
        let mut combined = String::from("[");
        for (i, key) in self.run_order.iter().enumerate() {
            if i > 0 {
                combined.push(',');
            }
            let report = &self.cache[key];
            let mut obj = JsonObject::new(&mut combined);
            obj.field("key", &key.as_str()).field("report", report);
            obj.finish();
        }
        combined.push_str("]\n");
        let path = dir.join("runs.json");
        fs::write(&path, combined).map_err(|e| io_err("writing", &path, &e))?;

        let mut csv = Csv::new(&["key", "t_seconds", "pcm_write_mbs", "dram_write_mbs"]);
        for key in &self.run_order {
            for s in &self.cache[key].samples {
                csv.row(&[
                    key as &dyn std::fmt::Display,
                    &s.t_seconds,
                    &s.pcm_write_mbs,
                    &s.dram_write_mbs,
                ]);
            }
        }
        let path = dir.join("samples.csv");
        fs::write(&path, csv.finish()).map_err(|e| io_err("writing", &path, &e))
    }

    /// Convenience: single instance on the emulation profile.
    ///
    /// # Errors
    ///
    /// Propagates experiment failures.
    pub fn run1(&mut self, spec: WorkloadSpec, collector: CollectorKind) -> Result<RunReport> {
        self.run(spec, collector, 1, Profile::Emulation)
    }

    /// Convenience: the C++ implementation of a GraphChi app (PCM-Only).
    ///
    /// # Errors
    ///
    /// Propagates experiment failures.
    pub fn run_cpp(&mut self, name: &str, dataset: DatasetSize) -> Result<RunReport> {
        let spec = WorkloadSpec::by_name(name)
            .expect("unknown GraphChi app")
            .with_language(Language::Cpp)
            .with_dataset(dataset);
        self.run1(spec, CollectorKind::PcmOnly)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_narrows_dacapo() {
        let h = Harness::new(Scale::Quick);
        assert_eq!(h.dacapo().len(), 7);
        assert_eq!(h.all_apps().len(), 11);
        let f = Harness::new(Scale::Full);
        assert_eq!(f.dacapo().len(), 11);
        assert_eq!(f.all_apps().len(), 15);
    }

    #[test]
    fn cache_avoids_rerunning() {
        let mut h = Harness::new(Scale::Quick);
        let spec = WorkloadSpec::by_name("avrora").unwrap();
        let a = h.run1(spec, CollectorKind::KgN).unwrap();
        assert_eq!(h.runs_executed, 1);
        let b = h.run1(spec, CollectorKind::KgN).unwrap();
        assert_eq!(h.runs_executed, 1, "second call must hit the cache");
        assert_eq!(a.pcm_writes, b.pcm_writes);
    }
}
