//! The caching, fault-tolerant experiment harness.

use crate::executor::{self, ExecCtx, JobSpec, StagedRun};
use hemu_core::{restore_run_report, PageWear, RunReport};
use hemu_fault::{ChaosKill, EnduranceConfig, FaultPlan, CHAOS_EXIT_CODE};
use hemu_heap::CollectorKind;
use hemu_machine::MachineProfile;
use hemu_obs::journal::{read_journal, JournalReadError, JournalRecord, JournalWriter};
use hemu_obs::json::{JsonObject, ToJson};
use hemu_obs::{fnv1a64, hash_hex, to_json_lines, write_atomic_str, Csv, Reporter, Timeline};
use hemu_types::{AccessPath, HemuError, OsPagingConfig, OsPolicy, Result, SubmitMode};
use hemu_workloads::{spec, DatasetSize, Language, WorkloadSpec};
use std::collections::{HashMap, HashSet};
use std::fs;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// How much of the evaluation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// Every benchmark and dataset the paper uses.
    #[default]
    Full,
    /// A representative subset (the §V simulator subset of DaCapo, Pjbb,
    /// and the GraphChi applications) for faster turnaround.
    Quick,
}

/// Which machine profile an experiment runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Profile {
    /// The NUMA emulation platform (16 SMT contexts).
    Emulation,
    /// The Sniper-like simulation reference (8 cores, no SMT).
    Simulation,
}

impl Profile {
    pub(crate) fn machine(self) -> MachineProfile {
        match self {
            Profile::Emulation => MachineProfile::emulation(),
            Profile::Simulation => MachineProfile::simulation(),
        }
    }
}

/// Who owns page placement for a run: a write-rationing collector (the
/// paper's Kingsguard family) or an OS paging policy (the kernel-side
/// baseline). Both sides of that comparison sweep through the same
/// harness, so a figure can put `KG-W` and `OS-hot-cold` in adjacent
/// columns.
///
/// `From` impls let every call site keep passing a bare [`CollectorKind`]
/// or [`OsPolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Manager {
    /// GC-managed placement under this collector configuration.
    Gc(CollectorKind),
    /// OS-managed placement under this policy (the collector underneath is
    /// the placement-neutral PCM-Only configuration).
    Os(OsPolicy),
}

impl Manager {
    /// Stable display name used in run keys, reports and figure columns.
    pub fn name(self) -> &'static str {
        match self {
            Manager::Gc(c) => c.name(),
            Manager::Os(p) => p.name(),
        }
    }
}

impl From<CollectorKind> for Manager {
    fn from(c: CollectorKind) -> Self {
        Manager::Gc(c)
    }
}

impl From<OsPolicy> for Manager {
    fn from(p: OsPolicy) -> Self {
        Manager::Os(p)
    }
}

/// Per-run resilience policy: how long an experiment may take and how
/// transient injected faults are retried.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunPolicy {
    /// Wall-clock deadline per attempt. `None` runs inline with no
    /// watchdog; `Some` runs each attempt on a helper thread and abandons
    /// it on expiry.
    pub deadline: Option<Duration>,
    /// Attempts per run; only transient faults consume extra attempts.
    pub max_attempts: u32,
    /// Base backoff between retries (attempt `n` sleeps `n × backoff`,
    /// capped at [`RunPolicy::max_backoff`]).
    pub backoff: Duration,
    /// Upper bound on any single backoff sleep, so a generous `backoff`
    /// combined with a deep retry budget cannot stall a worker for long
    /// stretches.
    pub max_backoff: Duration,
}

impl RunPolicy {
    /// The capped linear backoff before retrying after `attempt` failed
    /// attempts: `min(attempt × backoff, max_backoff)`.
    pub fn backoff_for(&self, attempt: u32) -> Duration {
        self.backoff.saturating_mul(attempt).min(self.max_backoff)
    }
}

impl Default for RunPolicy {
    fn default() -> Self {
        RunPolicy {
            deadline: None,
            max_attempts: 3,
            backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(1),
        }
    }
}

/// Terminal outcome of one experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStatus {
    /// The run produced a report.
    Ok,
    /// The run failed after exhausting its retry budget.
    Failed,
    /// The run exceeded the policy deadline and was abandoned.
    TimedOut,
}

impl RunStatus {
    /// Stable lower-case name used in `runs.json`.
    pub fn as_str(self) -> &'static str {
        match self {
            RunStatus::Ok => "ok",
            RunStatus::Failed => "failed",
            RunStatus::TimedOut => "timed-out",
        }
    }
}

/// One executed run (successful or not), in execution order.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// The memoization key (`workload|manager|instances|profile`, where
    /// the manager is a collector or OS-policy name).
    pub key: String,
    /// Terminal outcome.
    pub status: RunStatus,
    /// Attempts consumed (1 unless transient faults forced retries).
    pub attempts: u32,
    /// The final error rendered as text, for failed runs.
    pub error: Option<String>,
    /// Host wall-clock seconds the run took (all attempts). Observability
    /// only — deliberately excluded from `runs.json` and every other
    /// exported artifact, which must stay byte-identical across hosts and
    /// `--jobs`/intra-thread widths; the bench mode reads it for its
    /// per-run p50/p95.
    pub wall_seconds: f64,
}

/// Runs experiments, memoizing results by configuration so figures that
/// share runs do not repeat them. Failures are memoized too: a sweep
/// carries on past a failed configuration, later references to it fail
/// fast, and [`Harness::finalize_exports`] records every outcome.
#[derive(Default)]
pub struct Harness {
    scale: Scale,
    cache: HashMap<String, RunReport>,
    /// Failed configurations and their terminal error, so repeated figure
    /// references do not re-run a known-bad experiment.
    failed: HashMap<String, HemuError>,
    /// Experiments executed (cache misses) — visible in the harness output
    /// so a reader can see how much work a figure took.
    pub runs_executed: usize,
    /// When set, every executed run writes `<dir>/<key>.json` and
    /// [`Harness::finalize_exports`] writes the combined artifacts.
    json_dir: Option<PathBuf>,
    /// When set, every executed run captures a bounded event trace and
    /// appends it (JSONL) to this file.
    trace_out: Option<PathBuf>,
    /// When true, every executed run enables the phase-and-provenance
    /// profiler (write attribution in reports, spans, wear heatmaps).
    profile_runs: bool,
    /// When set, [`Harness::finalize_exports`] writes the committed runs'
    /// spans as one Chrome trace-event timeline (implies profiling).
    timeline_out: Option<PathBuf>,
    /// When set, [`Harness::finalize_exports`] writes the committed runs'
    /// per-page PCM wear rows as CSV (implies profiling).
    heatmap_out: Option<PathBuf>,
    /// Timeline of committed profiled runs, appended in demand order.
    timeline: Timeline,
    /// Wear-heatmap rows of committed profiled runs, in demand order.
    heatmap_rows: Vec<(String, Vec<PageWear>)>,
    /// Executed runs in execution order, for the combined `runs.json`.
    records: Vec<RunRecord>,
    /// Fault plan applied (key-filtered) to every executed experiment.
    fault_plan: Option<FaultPlan>,
    /// Endurance model applied to every executed experiment.
    endurance: Option<EnduranceConfig>,
    /// Migrator tuning (epoch length, budget, DRAM clamp) applied to every
    /// OS-managed run; the policy field is overwritten per run.
    os_tuning: OsPagingConfig,
    policy: RunPolicy,
    /// Worker-pool width for planned sweeps; 0 or 1 means fully inline
    /// sequential execution (the historical path).
    jobs: usize,
    /// Access-path implementation for every run's machine.
    access_path: AccessPath,
    /// Submission mode for every run's machine (deferred vs scalar).
    submit_mode: SubmitMode,
    /// Intra-run batch-resolution threads; 0 and 1 both mean sequential.
    intra_threads: usize,
    /// When true, [`Harness::run`] defers execution: unknown runs are
    /// enqueued as pending jobs and answered with [`HemuError::Deferred`].
    planning: bool,
    /// Jobs discovered by planning passes, in discovery order.
    pending: Vec<JobSpec>,
    /// Keys already in `pending`, to keep the queue duplicate-free.
    pending_set: HashSet<String>,
    /// Executed-but-uncommitted results. A staged run becomes visible in
    /// artifacts only when a real (non-planning) pass demands it; runs
    /// executed speculatively but never demanded stay here and are
    /// invisible in every export.
    staged: HashMap<String, StagedRun>,
    /// Serialized progress sink shared with pool workers.
    reporter: Reporter,
    /// Journaled results loaded by [`Harness::resume_from`], replayed into
    /// the memo table (and re-journaled) at first real demand instead of
    /// re-executing. Like `staged`, entries the sweep never demands are
    /// invisible in every export.
    restored: HashMap<String, RestoredRun>,
    /// Runs replayed from a resume journal instead of executed — visible
    /// like [`Harness::runs_executed`] so a reader can see how much work a
    /// resume saved.
    pub runs_restored: usize,
    /// Write-ahead journal of committed runs, created lazily in the
    /// [`Harness::set_json_dir`] directory at first commit (or eagerly by
    /// [`Harness::resume_from`]).
    journal: Option<JournalWriter>,
    /// Abrupt-exit hook for crash-safety self-tests, armed by
    /// [`Harness::set_chaos_kill_after`].
    chaos: ChaosKill,
}

/// One run replayed from a resume journal: the restored report plus the
/// journal metadata needed to re-journal it identically on commit.
struct RestoredRun {
    report: RunReport,
    attempts: u32,
}

fn io_err(context: &str, path: &Path, e: &std::io::Error) -> HemuError {
    HemuError::Io(format!("{context} {}: {e}", path.display()))
}

/// Turns a run key (`lusearch.small|KG-N|1|Emulation`) into a file stem.
fn slug(key: &str) -> String {
    key.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '.' || c == '-' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

impl Harness {
    /// Creates a harness at the given scale.
    pub fn new(scale: Scale) -> Self {
        Harness {
            scale,
            ..Self::default()
        }
    }

    /// The configured scale.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// Installs a fault plan applied to every subsequent run whose key
    /// matches the plan's `only` filter. An inert plan clears it.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_plan = if plan.is_inert() { None } else { Some(plan) };
    }

    /// Enables the PCM endurance model for every subsequent run.
    pub fn set_endurance(&mut self, cfg: EnduranceConfig) {
        self.endurance = Some(cfg);
    }

    /// Sets the per-run deadline/retry policy.
    pub fn set_run_policy(&mut self, policy: RunPolicy) {
        self.policy = policy;
    }

    /// Sets the migrator tuning (epoch length, migration budget, DRAM
    /// clamp) applied to every subsequent OS-managed run. The `policy`
    /// field of `cfg` is ignored — each run's [`Manager::Os`] value decides
    /// the policy.
    pub fn set_os_tuning(&mut self, cfg: OsPagingConfig) {
        self.os_tuning = cfg;
    }

    /// The migrator tuning applied to OS-managed runs.
    pub fn os_tuning(&self) -> OsPagingConfig {
        self.os_tuning
    }

    /// Sets the worker-pool width for planned sweeps. `0` and `1` both
    /// select the fully inline sequential path.
    pub fn set_jobs(&mut self, jobs: usize) {
        self.jobs = jobs;
    }

    /// The configured worker-pool width (0/1 = sequential).
    pub fn jobs(&self) -> usize {
        self.jobs.max(1)
    }

    /// Selects the access-path implementation for every subsequent run.
    pub fn set_access_path(&mut self, path: AccessPath) {
        self.access_path = path;
    }

    /// Selects the submission mode for every subsequent run. Artifacts
    /// are byte-identical in either mode; `scalar` keeps the reference
    /// per-call behavior for verification, `deferred` is the fast
    /// default. Excluded from the sweep's plan fingerprint, like the
    /// other pure-wall-clock knobs, so a journal resumes in any mode.
    pub fn set_submit_mode(&mut self, mode: SubmitMode) {
        self.submit_mode = mode;
    }

    /// The submission mode runs execute with.
    pub fn submit_mode(&self) -> SubmitMode {
        self.submit_mode
    }

    /// The access path runs execute with.
    pub fn access_path(&self) -> AccessPath {
        self.access_path
    }

    /// Sets the intra-run batch-resolution thread count for every
    /// subsequent run. Artifacts are byte-identical at any value; only
    /// wall-clock time changes.
    pub fn set_intra_threads(&mut self, threads: usize) {
        self.intra_threads = threads;
    }

    /// The configured intra-run thread count (0/1 = sequential).
    pub fn intra_threads(&self) -> usize {
        self.intra_threads.max(1)
    }

    /// Replaces the progress sink (stderr by default).
    pub fn set_reporter(&mut self, reporter: Reporter) {
        self.reporter = reporter;
    }

    /// Configurations that terminally failed so far.
    pub fn failed_count(&self) -> usize {
        self.failed.len()
    }

    /// Executed runs (successful and failed) in execution order.
    pub fn records(&self) -> &[RunRecord] {
        &self.records
    }

    /// Enables JSON export: every executed run writes
    /// `<dir>/<key>.json`, and [`Harness::finalize_exports`] adds the
    /// combined `runs.json` and `samples.csv`.
    ///
    /// # Errors
    ///
    /// Returns [`HemuError::Io`] if the directory cannot be created.
    pub fn set_json_dir(&mut self, dir: impl Into<PathBuf>) -> Result<()> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| io_err("creating", &dir, &e))?;
        self.json_dir = Some(dir);
        Ok(())
    }

    /// Enables event tracing: every executed run captures a bounded trace
    /// of its measured iteration and appends it as JSON Lines to `path`
    /// (each run preceded by a `{"run": "<key>"}` marker record).
    ///
    /// # Errors
    ///
    /// Returns [`HemuError::Io`] if the file cannot be truncated.
    pub fn set_trace_out(&mut self, path: impl Into<PathBuf>) -> Result<()> {
        let path = path.into();
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            fs::create_dir_all(parent).map_err(|e| io_err("creating", parent, &e))?;
        }
        write_atomic_str(&path, "").map_err(|e| io_err("truncating", &path, &e))?;
        self.trace_out = Some(path);
        Ok(())
    }

    /// Enables the phase-and-provenance profiler for every subsequent run:
    /// reports carry a [`hemu_core::ProvenanceSummary`], and runs record
    /// virtual-time spans and a per-page wear heatmap (exported when
    /// [`Harness::set_timeline_out`] / [`Harness::set_heatmap_out`] are
    /// set). Off by default — an unprofiled sweep stores no tags.
    pub fn set_profile(&mut self, enabled: bool) {
        self.profile_runs = enabled;
    }

    /// Whether runs execute under the profiler (enabled explicitly or
    /// implied by a timeline/heatmap export path).
    pub fn profiling(&self) -> bool {
        self.profile_runs || self.timeline_out.is_some() || self.heatmap_out.is_some()
    }

    /// Enables timeline export: [`Harness::finalize_exports`] writes every
    /// committed run's spans, in demand order, as one Chrome trace-event
    /// JSON document loadable in Perfetto. Implies profiling.
    ///
    /// # Errors
    ///
    /// Returns [`HemuError::Io`] if the parent directory cannot be created.
    pub fn set_timeline_out(&mut self, path: impl Into<PathBuf>) -> Result<()> {
        let path = path.into();
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            fs::create_dir_all(parent).map_err(|e| io_err("creating", parent, &e))?;
        }
        self.timeline_out = Some(path);
        Ok(())
    }

    /// Enables wear-heatmap export: [`Harness::finalize_exports`] writes
    /// one CSV row per touched PCM frame per committed run. Implies
    /// profiling.
    ///
    /// # Errors
    ///
    /// Returns [`HemuError::Io`] if the parent directory cannot be created.
    pub fn set_heatmap_out(&mut self, path: impl Into<PathBuf>) -> Result<()> {
        let path = path.into();
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            fs::create_dir_all(parent).map_err(|e| io_err("creating", parent, &e))?;
        }
        self.heatmap_out = Some(path);
        Ok(())
    }

    /// The DaCapo benchmarks in scope at this scale.
    pub fn dacapo(&self) -> Vec<WorkloadSpec> {
        match self.scale {
            Scale::Full => spec::dacapo_all(),
            Scale::Quick => spec::dacapo_sim_subset(),
        }
    }

    /// All applications in scope at this scale (DaCapo + Pjbb + GraphChi).
    pub fn all_apps(&self) -> Vec<WorkloadSpec> {
        let mut v = self.dacapo();
        v.push(spec::pjbb());
        v.extend(spec::graphchi_all());
        v
    }

    /// Runs (or fetches) one experiment under the resilience policy:
    /// panics are caught, a deadline (if set) bounds each attempt, and
    /// transient injected faults are retried with linear backoff. A
    /// terminal failure is memoized and recorded — subsequent figures that
    /// reference the same configuration fail fast instead of re-running it.
    ///
    /// # Errors
    ///
    /// Returns the run's terminal error ([`HemuError::Timeout`] when the
    /// deadline expired, [`HemuError::Panicked`] when the experiment
    /// panicked, otherwise whatever the experiment reported).
    pub fn run(
        &mut self,
        spec: WorkloadSpec,
        manager: impl Into<Manager>,
        instances: usize,
        profile: Profile,
    ) -> Result<RunReport> {
        let manager = manager.into();
        let key = format!("{spec}|{}|{instances}|{profile:?}", manager.name());
        if let Some(r) = self.cache.get(&key) {
            return Ok(r.clone());
        }
        if let Some(e) = self.failed.get(&key) {
            return Err(e.clone());
        }
        if self.planning {
            // Peek a restored or staged result so the planning pass follows
            // the same branches the real pass will — but do NOT commit it;
            // commit order must be demand order of the real pass.
            if let Some(rr) = self.restored.get(&key) {
                return Ok(rr.report.clone());
            }
            if let Some(sr) = self.staged.get(&key) {
                return match &sr.outcome {
                    Ok(arts) => Ok(arts.report.clone()),
                    Err(e) => Err(e.clone()),
                };
            }
            if self.pending_set.insert(key.clone()) {
                self.pending.push(JobSpec {
                    key: key.clone(),
                    spec,
                    manager,
                    instances,
                    profile,
                    consolidation: None,
                });
            }
            return Err(HemuError::Deferred { key });
        }
        if let Some(rr) = self.restored.remove(&key) {
            return self.commit_restored(key, rr);
        }
        if let Some(sr) = self.staged.remove(&key) {
            return self.commit(key, sr);
        }
        // Inline execution: the sequential path (and the fallback should a
        // planned sweep demand a run no planning pass discovered).
        let ctx = self.exec_ctx();
        let job = JobSpec {
            key: key.clone(),
            spec,
            manager,
            instances,
            profile,
            consolidation: None,
        };
        let sr = executor::run_job(&job, &ctx);
        self.commit(key, sr)
    }

    /// Runs (or fetches) one multi-tenant consolidation: `tenants`
    /// workloads from `mix`, slice-scheduled onto the profile's hardware
    /// contexts. Rides the exact same memoization, planning, staging,
    /// journaling, and export machinery as [`Harness::run`] — the run key
    /// (`mix@tenants|manager|sliceN|profile`) doubles as the progress
    /// label, so consolidated runs report as `mixed@16`-style entries.
    ///
    /// # Errors
    ///
    /// Returns the run's terminal error, exactly like [`Harness::run`].
    pub fn run_consolidated(
        &mut self,
        mix: hemu_tenant::Mix,
        tenants: usize,
        slice: u64,
        manager: impl Into<Manager>,
        profile: Profile,
    ) -> Result<RunReport> {
        let manager = manager.into();
        let key = format!(
            "{mix}@{tenants}|{}|slice{slice}|{profile:?}",
            manager.name()
        );
        if let Some(r) = self.cache.get(&key) {
            return Ok(r.clone());
        }
        if let Some(e) = self.failed.get(&key) {
            return Err(e.clone());
        }
        // The spec field is a roster placeholder: consolidated jobs build
        // their workloads from the mix, never from it.
        let spec = WorkloadSpec::by_name(mix.roster()[0]).expect("mix rosters resolve");
        let consolidation = Some(crate::executor::ConsolidationJob {
            mix,
            tenants,
            slice,
        });
        if self.planning {
            if let Some(rr) = self.restored.get(&key) {
                return Ok(rr.report.clone());
            }
            if let Some(sr) = self.staged.get(&key) {
                return match &sr.outcome {
                    Ok(arts) => Ok(arts.report.clone()),
                    Err(e) => Err(e.clone()),
                };
            }
            if self.pending_set.insert(key.clone()) {
                self.pending.push(JobSpec {
                    key: key.clone(),
                    spec,
                    manager,
                    instances: tenants,
                    profile,
                    consolidation,
                });
            }
            return Err(HemuError::Deferred { key });
        }
        if let Some(rr) = self.restored.remove(&key) {
            return self.commit_restored(key, rr);
        }
        if let Some(sr) = self.staged.remove(&key) {
            return self.commit(key, sr);
        }
        let ctx = self.exec_ctx();
        let job = JobSpec {
            key: key.clone(),
            spec,
            manager,
            instances: tenants,
            profile,
            consolidation,
        };
        let sr = executor::run_job(&job, &ctx);
        self.commit(key, sr)
    }

    /// Like [`Harness::run_consolidated`], but a terminal failure yields
    /// `None` so density sweeps degrade to partial figures.
    pub fn run_consolidated_opt(
        &mut self,
        mix: hemu_tenant::Mix,
        tenants: usize,
        slice: u64,
        manager: impl Into<Manager>,
        profile: Profile,
    ) -> Option<RunReport> {
        self.run_consolidated(mix, tenants, slice, manager, profile)
            .ok()
    }

    /// Renders a figure with parallel prefetching when `--jobs N > 1`:
    /// planning passes of `render` (output discarded) discover runnable
    /// jobs, execution waves drain them on the worker pool, and the final
    /// pass renders for real, committing results strictly in demand order.
    /// With `jobs <= 1` this is exactly `render(self)`.
    ///
    /// Byte-for-byte equivalence with the sequential path is guaranteed
    /// for deterministic `render` functions (see `executor` module docs)
    /// and locked in by the `determinism` integration tests.
    ///
    /// # Errors
    ///
    /// Whatever the final `render` pass returns.
    pub fn run_planned<F>(&mut self, render: F) -> Result<String>
    where
        F: Fn(&mut Harness) -> Result<String>,
    {
        if self.jobs > 1 {
            loop {
                self.planning = true;
                let _ = render(self);
                self.planning = false;
                if self.pending.is_empty() {
                    break;
                }
                self.execute_pending();
            }
        }
        render(self)
    }

    /// Drains the pending queue on the worker pool, staging every result.
    fn execute_pending(&mut self) {
        let jobs = std::mem::take(&mut self.pending);
        self.pending_set.clear();
        if jobs.is_empty() {
            return;
        }
        let ctx = self.exec_ctx();
        let staged = executor::execute_wave(&jobs, self.jobs, &ctx);
        for (job, sr) in jobs.into_iter().zip(staged) {
            self.staged.insert(job.key, sr);
        }
    }

    /// The read-only execution context handed to workers (and to the
    /// inline path, so both paths run the exact same code).
    fn exec_ctx(&self) -> ExecCtx {
        ExecCtx {
            fault_plan: self.fault_plan.clone(),
            endurance: self.endurance,
            policy: self.policy,
            os_tuning: self.os_tuning,
            want_trace: self.trace_out.is_some(),
            want_profile: self.profiling(),
            access_path: self.access_path,
            intra_threads: self.intra_threads(),
            submit_mode: self.submit_mode,
            reporter: self.reporter.clone(),
        }
    }

    /// Commits one executed run: exports its artifacts, memoizes the
    /// outcome, appends the run record, and journals the commit. Called in
    /// demand order only.
    fn commit(&mut self, key: String, sr: StagedRun) -> Result<RunReport> {
        match sr.outcome {
            Ok(arts) => {
                let report = arts.report;
                if self.trace_out.is_some() {
                    self.append_trace(&key, &arts.trace)?;
                }
                let content_hash = if self.json_dir.is_some() {
                    Some(self.write_run_json(&key, &report)?)
                } else {
                    None
                };
                if self.profiling() {
                    // Demand order decides track layout and row order, so
                    // the exported documents are byte-identical at any
                    // `--jobs` width.
                    self.timeline
                        .add_run(&key, arts.freq_hz, arts.elapsed, arts.spans);
                    self.heatmap_rows.push((key.clone(), arts.heatmap));
                }
                self.cache.insert(key.clone(), report.clone());
                self.journal_append(&key, RunStatus::Ok, sr.attempts, None, content_hash)?;
                self.records.push(RunRecord {
                    key,
                    status: RunStatus::Ok,
                    attempts: sr.attempts,
                    error: None,
                    wall_seconds: sr.wall_seconds,
                });
                self.runs_executed += 1;
                self.chaos_checkpoint();
                Ok(report)
            }
            Err(e) => {
                let status = if matches!(e, HemuError::Timeout { .. }) {
                    RunStatus::TimedOut
                } else {
                    RunStatus::Failed
                };
                self.journal_append(&key, status, sr.attempts, Some(e.to_string()), None)?;
                self.records.push(RunRecord {
                    key: key.clone(),
                    status,
                    attempts: sr.attempts,
                    error: Some(e.to_string()),
                    wall_seconds: sr.wall_seconds,
                });
                self.failed.insert(key, e.clone());
                self.runs_executed += 1;
                self.chaos_checkpoint();
                Err(e)
            }
        }
    }

    /// Commits one run replayed from a resume journal: rewrites its per-run
    /// artifact (byte-identical, via the atomic helper), memoizes it, and
    /// re-journals it so the resumed journal ends byte-identical to an
    /// uninterrupted run's. Called in demand order only, interleaved with
    /// executed commits exactly where the uninterrupted sweep would have
    /// committed this run.
    fn commit_restored(&mut self, key: String, rr: RestoredRun) -> Result<RunReport> {
        let report = rr.report;
        let content_hash = Some(self.write_run_json(&key, &report)?);
        self.cache.insert(key.clone(), report.clone());
        self.journal_append(&key, RunStatus::Ok, rr.attempts, None, content_hash)?;
        self.records.push(RunRecord {
            key,
            status: RunStatus::Ok,
            attempts: rr.attempts,
            error: None,
            wall_seconds: 0.0,
        });
        self.runs_restored += 1;
        self.chaos_checkpoint();
        Ok(report)
    }

    /// Appends one commit to the write-ahead journal (creating the journal
    /// on first use), recording the attempt count, the effective fault seed
    /// of the final attempt, and the per-run artifact's content hash. The
    /// append is fsync'd: once this returns, a kill at any later instant
    /// leaves a journal from which this run resumes.
    fn journal_append(
        &mut self,
        key: &str,
        status: RunStatus,
        attempts: u32,
        error: Option<String>,
        hash: Option<String>,
    ) -> Result<()> {
        let Some(dir) = self.json_dir.as_ref() else {
            return Ok(());
        };
        if self.journal.is_none() {
            let w = JournalWriter::create(dir, &self.plan_hash())
                .map_err(|e| io_err("creating journal in", dir, &e))?;
            self.journal = Some(w);
        }
        let seed = self
            .fault_plan
            .as_ref()
            .filter(|p| p.applies_to(key))
            .map(|p| p.for_attempt(attempts).seed);
        let record = JournalRecord {
            key: key.to_string(),
            status: status.as_str().to_string(),
            attempts,
            seed,
            error,
            hash,
        };
        let path = dir.clone();
        self.journal
            .as_mut()
            .expect("journal created above")
            .append(&record)
            .map_err(|e| io_err("appending journal in", &path, &e))
    }

    /// Counts one commit against the chaos-kill budget and, when it fires,
    /// terminates the process abruptly — no export finalization, no
    /// destructors — emulating a SIGKILL for the crash-safety self-test.
    fn chaos_checkpoint(&mut self) {
        if self.chaos.on_commit() {
            self.reporter
                .line("  chaos: killing the process after this commit");
            std::process::exit(CHAOS_EXIT_CODE);
        }
    }

    fn append_trace(&self, key: &str, trace: &[hemu_obs::TraceRecord]) -> Result<()> {
        let path = self
            .trace_out
            .as_ref()
            .expect("trace_out checked by caller");
        let mut text = String::from("{\"run\":");
        hemu_obs::json::push_json_str(&mut text, key);
        text.push_str("}\n");
        text.push_str(&to_json_lines(trace));
        let existing = fs::read_to_string(path).map_err(|e| io_err("reading", path, &e))?;
        write_atomic_str(path, &(existing + &text)).map_err(|e| io_err("writing", path, &e))
    }

    /// Writes the per-run JSON artifact atomically and returns its content
    /// hash (hex), which the journal records so resume can verify the file
    /// on disk is the one that was committed.
    fn write_run_json(&self, key: &str, report: &RunReport) -> Result<String> {
        let dir = self.json_dir.as_ref().expect("json_dir checked by caller");
        let path = dir.join(format!("{}.json", slug(key)));
        let mut text = report.to_json();
        text.push('\n');
        write_atomic_str(&path, &text).map_err(|e| io_err("writing", &path, &e))?;
        Ok(hash_hex(fnv1a64(text.as_bytes())))
    }

    /// Fingerprint of everything that decides what a sweep's runs compute:
    /// the crate version plus every configuration knob that changes run
    /// *results*. Deliberately excludes pure execution-shape knobs
    /// (`--jobs`, `--intra-threads`, the access path) and export toggles —
    /// artifacts are byte-identical across those, so a journal written at
    /// one setting resumes cleanly at another.
    fn plan_hash(&self) -> String {
        let fingerprint = format!(
            "hemu-bench={}|scale={:?}|faults={:?}|endurance={:?}|policy={:?}|os={:?}",
            env!("CARGO_PKG_VERSION"),
            self.scale,
            self.fault_plan,
            self.endurance,
            self.policy,
            self.os_tuning,
        );
        hash_hex(fnv1a64(fingerprint.as_bytes()))
    }

    /// Arms the kill-chaos self-test: the process exits abruptly (exit code
    /// [`CHAOS_EXIT_CODE`], like a SIGKILL) right after the `n`-th commit.
    pub fn set_chaos_kill_after(&mut self, n: u64) {
        self.chaos = ChaosKill::after(n);
    }

    /// Resumes an interrupted sweep from the journal in `dir`: journaled
    /// successful runs are loaded into a replay table and committed — with
    /// byte-identical artifacts and journal records — at the exact point
    /// the sweep demands them; everything else (failed, missing, torn, or
    /// unverifiable records) is re-executed. Because runs are
    /// deterministic, the resumed sweep's artifacts are byte-identical to
    /// an uninterrupted run's at any `--jobs`/`--intra-threads`.
    ///
    /// Call after all other configuration (scale, faults, endurance,
    /// policy, OS tuning): the journal header is validated against a
    /// fingerprint of that configuration, and a journal written by a
    /// different plan or binary version is refused. Also sets `dir` as the
    /// JSON export directory and recreates the journal, so the resumed
    /// journal ends byte-identical to a clean run's.
    ///
    /// Replay is skipped (everything re-executes) when event tracing or
    /// profiling is enabled — those artifacts are rebuilt run by run and
    /// cannot be recovered from per-run JSON alone.
    ///
    /// # Errors
    ///
    /// - [`HemuError::JournalMismatch`] when the journal belongs to a
    ///   different sweep plan;
    /// - [`HemuError::InvalidConfig`] when the journal header is malformed;
    /// - [`HemuError::Io`] when `dir` has no readable journal.
    pub fn resume_from(&mut self, dir: impl Into<PathBuf>) -> Result<()> {
        let dir = dir.into();
        let plan_hash = self.plan_hash();
        let contents = read_journal(&dir, &plan_hash).map_err(|e| match e {
            JournalReadError::PlanMismatch { expected, found } => {
                HemuError::JournalMismatch { expected, found }
            }
            JournalReadError::BadHeader(why) => {
                HemuError::InvalidConfig(format!("resume journal in {}: {why}", dir.display()))
            }
            JournalReadError::Io(err) => io_err("reading journal in", &dir, &err),
        })?;
        if contents.dropped_lines > 0 {
            self.reporter.line(&format!(
                "  resume: dropped {} torn trailing journal line(s)",
                contents.dropped_lines
            ));
        }
        // Tracing and profiling rebuild per-run side artifacts (trace
        // JSONL, timeline tracks, heatmap rows) that the journal does not
        // capture; re-execute everything to regenerate them. Determinism
        // makes that a pure wall-clock cost.
        let replayable = self.trace_out.is_none() && !self.profiling();
        let mut replayed = 0usize;
        let mut requeued = 0usize;
        if replayable {
            for rec in &contents.records {
                let (Some(expected_hash), "ok") = (&rec.hash, rec.status.as_str()) else {
                    requeued += 1;
                    continue;
                };
                let path = dir.join(format!("{}.json", slug(&rec.key)));
                let Ok(text) = fs::read_to_string(&path) else {
                    requeued += 1;
                    continue;
                };
                if &hash_hex(fnv1a64(text.as_bytes())) != expected_hash {
                    requeued += 1;
                    continue;
                }
                // The round-trip gate inside `restore_run_report` refuses
                // anything this binary would not re-export byte-identically.
                let Some(report) = restore_run_report(&text) else {
                    requeued += 1;
                    continue;
                };
                self.restored.insert(
                    rec.key.clone(),
                    RestoredRun {
                        report,
                        attempts: rec.attempts,
                    },
                );
                replayed += 1;
            }
        } else {
            requeued = contents.records.len();
        }
        self.reporter.line(&format!(
            "  resume: replaying {replayed} journaled run(s), re-executing {requeued}"
        ));
        self.set_json_dir(&dir)?;
        let w = JournalWriter::create(&dir, &plan_hash)
            .map_err(|e| io_err("recreating journal in", &dir, &e))?;
        self.journal = Some(w);
        Ok(())
    }

    /// Writes the combined export artifacts: `runs.json` (array of
    /// `{"key", "status", "attempts", "error", "report"}` objects in
    /// execution order — `report` is `null` and `error` a message for
    /// failed runs) and `samples.csv` (all monitor samples of successful
    /// runs, one row per interval per run) under the
    /// [`Harness::set_json_dir`] directory, plus — independently of it —
    /// the profiler's timeline JSON ([`Harness::set_timeline_out`]) and
    /// wear-heatmap CSV ([`Harness::set_heatmap_out`]).
    ///
    /// # Errors
    ///
    /// Returns [`HemuError::Io`] on write failure.
    pub fn finalize_exports(&self) -> Result<()> {
        if let Some(path) = self.timeline_out.as_ref() {
            let mut doc = self.timeline.render();
            doc.push('\n');
            write_atomic_str(path, &doc).map_err(|e| io_err("writing", path, &e))?;
        }
        if let Some(path) = self.heatmap_out.as_ref() {
            let mut csv = Csv::new(&["key", "frame", "writes", "lines_touched", "max_line_writes"]);
            for (key, rows) in &self.heatmap_rows {
                for r in rows {
                    csv.row(&[
                        key as &dyn std::fmt::Display,
                        &r.frame,
                        &r.writes,
                        &r.lines_touched,
                        &r.max_line_writes,
                    ]);
                }
            }
            write_atomic_str(path, &csv.finish()).map_err(|e| io_err("writing", path, &e))?;
        }
        let Some(dir) = self.json_dir.as_ref() else {
            return Ok(());
        };
        let mut combined = String::from("[");
        for (i, rec) in self.records.iter().enumerate() {
            if i > 0 {
                combined.push(',');
            }
            let mut obj = JsonObject::new(&mut combined);
            obj.field("key", &rec.key)
                .field("status", rec.status.as_str())
                .field("attempts", &rec.attempts)
                .field("error", &rec.error)
                .field("report", &self.cache.get(&rec.key));
            obj.finish();
        }
        combined.push_str("]\n");
        let path = dir.join("runs.json");
        write_atomic_str(&path, &combined).map_err(|e| io_err("writing", &path, &e))?;

        let mut csv = Csv::new(&["key", "t_seconds", "pcm_write_mbs", "dram_write_mbs"]);
        for rec in &self.records {
            let Some(report) = self.cache.get(&rec.key) else {
                continue;
            };
            for s in &report.samples {
                csv.row(&[
                    &rec.key as &dyn std::fmt::Display,
                    &s.t_seconds,
                    &s.pcm_write_mbs,
                    &s.dram_write_mbs,
                ]);
            }
        }
        let path = dir.join("samples.csv");
        write_atomic_str(&path, &csv.finish()).map_err(|e| io_err("writing", &path, &e))
    }

    /// Convenience: single instance on the emulation profile.
    ///
    /// # Errors
    ///
    /// Propagates experiment failures.
    pub fn run1(&mut self, spec: WorkloadSpec, manager: impl Into<Manager>) -> Result<RunReport> {
        self.run(spec, manager, 1, Profile::Emulation)
    }

    /// Like [`Harness::run`], but a terminal failure (already recorded and
    /// memoized by `run`) yields `None` so figure loops degrade to partial
    /// tables instead of aborting the sweep.
    pub fn run_opt(
        &mut self,
        spec: WorkloadSpec,
        manager: impl Into<Manager>,
        instances: usize,
        profile: Profile,
    ) -> Option<RunReport> {
        self.run(spec, manager, instances, profile).ok()
    }

    /// [`Harness::run_opt`] for a single instance on the emulation profile.
    pub fn run1_opt(
        &mut self,
        spec: WorkloadSpec,
        manager: impl Into<Manager>,
    ) -> Option<RunReport> {
        self.run_opt(spec, manager, 1, Profile::Emulation)
    }

    /// Convenience: the C++ implementation of a GraphChi app (PCM-Only).
    ///
    /// # Errors
    ///
    /// Propagates experiment failures.
    pub fn run_cpp(&mut self, name: &str, dataset: DatasetSize) -> Result<RunReport> {
        let spec = WorkloadSpec::by_name(name)
            .expect("unknown GraphChi app")
            .with_language(Language::Cpp)
            .with_dataset(dataset);
        self.run1(spec, CollectorKind::PcmOnly)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_narrows_dacapo() {
        let h = Harness::new(Scale::Quick);
        assert_eq!(h.dacapo().len(), 7);
        assert_eq!(h.all_apps().len(), 11);
        let f = Harness::new(Scale::Full);
        assert_eq!(f.dacapo().len(), 11);
        assert_eq!(f.all_apps().len(), 15);
    }

    #[test]
    fn cache_avoids_rerunning() {
        let mut h = Harness::new(Scale::Quick);
        let spec = WorkloadSpec::by_name("avrora").unwrap();
        let a = h.run1(spec, CollectorKind::KgN).unwrap();
        assert_eq!(h.runs_executed, 1);
        let b = h.run1(spec, CollectorKind::KgN).unwrap();
        assert_eq!(h.runs_executed, 1, "second call must hit the cache");
        assert_eq!(a.pcm_writes, b.pcm_writes);
    }
}
