//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! Timing side of the ablations; the PCM-write side is produced by
//! `repro ablations`, which sweeps LLC and nursery sizes and reports
//! socket write counts.

use criterion::{criterion_group, criterion_main, Criterion};
use hemu_heap::chunks::{ChunkManager, ChunkPolicy, Side, SideSockets};
use hemu_heap::{CollectorKind, ManagedHeap};
use hemu_machine::{CtxId, Machine, MachineProfile};
use hemu_types::{ByteSize, SocketId};

/// Two free lists vs one monolithic list under alternating-technology
/// chunk churn: the monolithic list pays an unmap + re-bind per recycled
/// cross-technology chunk (the paper's §III.A argument).
fn chunk_policy(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_chunk_policy");
    for (name, policy) in [
        ("two_lists", ChunkPolicy::TwoLists),
        ("monolithic", ChunkPolicy::Monolithic),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut m = Machine::new(MachineProfile::emulation());
                let proc = m.add_process(SocketId::DRAM);
                let mut cm = ChunkManager::new(policy, SideSockets::hybrid(), proc);
                // Alternate PCM and DRAM requests over a recycled pool.
                for round in 0..64 {
                    let side = if round % 2 == 0 {
                        Side::Pcm
                    } else {
                        Side::Dram
                    };
                    let a = cm.acquire(&mut m, side, "bench").unwrap();
                    let b2 = cm.acquire(&mut m, side, "bench").unwrap();
                    cm.release(a);
                    cm.release(b2);
                }
                std::hint::black_box(cm.stats())
            })
        });
    }
    group.finish();
}

/// The write barrier's cost relative to a barrier-free store: the fast
/// path (no logging) vs the logging slow path.
fn barrier_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_barrier");
    group.bench_function("young_to_young_fast_path", |b| {
        let (mut m, mut heap) = heap();
        let src = heap.alloc(&mut m, 1, 8).unwrap();
        let dst = heap.alloc(&mut m, 0, 8).unwrap();
        let _r = heap.new_root(Some(src));
        let _r2 = heap.new_root(Some(dst));
        b.iter(|| {
            for _ in 0..256 {
                heap.write_ref(&mut m, src, 0, Some(dst)).unwrap();
            }
        })
    });
    group.bench_function("data_store_no_barrier", |b| {
        let (mut m, mut heap) = heap();
        let src = heap.alloc(&mut m, 0, 64).unwrap();
        let _r = heap.new_root(Some(src));
        b.iter(|| {
            for _ in 0..256 {
                heap.write_data(&mut m, src, 0, 8).unwrap();
            }
        })
    });
    group.finish();
}

fn heap() -> (Machine, ManagedHeap) {
    let mut m = Machine::new(MachineProfile::emulation());
    let proc = m.add_process(SocketId::DRAM);
    let cfg = CollectorKind::KgN.config(ByteSize::from_mib(4), ByteSize::from_mib(64));
    let heap = ManagedHeap::new(&mut m, proc, CtxId(0), cfg).unwrap();
    (m, heap)
}

criterion_group!(benches, chunk_policy, barrier_paths);
criterion_main!(benches);
