//! Microbenchmarks of the platform's hot paths: the cache hierarchy, page
//! translation, allocation on both memory managers, and the write barrier.
//!
//! These measure the *simulator's* throughput (how fast it can emulate),
//! complementing the `repro` harness which measures the *emulated system*.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hemu_cache::{Hierarchy, HierarchyConfig};
use hemu_heap::{CollectorKind, ManagedHeap};
use hemu_machine::{CtxId, Machine, MachineProfile};
use hemu_malloc::NativeHeap;
use hemu_numa::{AddressSpace, NumaConfig, NumaMemory};
use hemu_types::{AccessKind, Addr, ByteSize, DeterministicRng, LineAddr, MemoryAccess, SocketId};

fn cache_hierarchy(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache");
    group.throughput(Throughput::Elements(4096));
    group.bench_function("hierarchy_access_stream", |b| {
        let mut h = Hierarchy::new(HierarchyConfig::e5_2650l(4));
        let mut i = 0u64;
        b.iter(|| {
            for _ in 0..4096 {
                i = i.wrapping_add(1);
                let line = LineAddr::new(i % 500_000);
                std::hint::black_box(h.access((i % 4) as usize, line, AccessKind::Write));
            }
        })
    });
    group.finish();
}

fn page_translation(c: &mut Criterion) {
    let mut group = c.benchmark_group("numa");
    group.throughput(Throughput::Elements(4096));
    group.bench_function("translate_warm", |b| {
        let mut mem = NumaMemory::new(NumaConfig::default());
        let mut asp = AddressSpace::new();
        // Pre-fault 4096 pages.
        for p in 0..4096u64 {
            asp.translate(Addr::new(p * 4096), &mut mem).unwrap();
        }
        let mut i = 0u64;
        b.iter(|| {
            for _ in 0..4096 {
                i = i.wrapping_add(2654435761);
                let a = Addr::new((i % 4096) * 4096 + (i % 64) * 64);
                std::hint::black_box(asp.translate(a, &mut mem).unwrap());
            }
        })
    });
    group.finish();
}

fn managed_allocation(c: &mut Criterion) {
    let mut group = c.benchmark_group("heap");
    group.throughput(Throughput::Elements(256));
    group.bench_function("managed_alloc_256B_objects", |b| {
        let mut m = Machine::new(MachineProfile::emulation());
        let proc = m.add_process(SocketId::DRAM);
        let cfg = CollectorKind::KgN.config(ByteSize::from_mib(4), ByteSize::from_mib(64));
        let mut heap = ManagedHeap::new(&mut m, proc, CtxId(0), cfg).unwrap();
        b.iter(|| {
            for _ in 0..256 {
                std::hint::black_box(heap.alloc(&mut m, 0, 240).unwrap());
            }
        })
    });
    group.bench_function("write_barrier_old_to_young", |b| {
        let mut m = Machine::new(MachineProfile::emulation());
        let proc = m.add_process(SocketId::DRAM);
        let cfg = CollectorKind::KgN.config(ByteSize::from_mib(4), ByteSize::from_mib(64));
        let mut heap = ManagedHeap::new(&mut m, proc, CtxId(0), cfg).unwrap();
        // Promote a holder object to the mature space.
        let holder = heap.alloc(&mut m, 1, 8).unwrap();
        let _r = heap.new_root(Some(holder));
        for _ in 0..32_768 {
            heap.alloc(&mut m, 0, 248).unwrap();
        }
        let young = heap.alloc(&mut m, 0, 8).unwrap();
        let _r2 = heap.new_root(Some(young));
        b.iter(|| {
            for _ in 0..256 {
                heap.write_ref(&mut m, holder, 0, Some(young)).unwrap();
            }
        })
    });
    group.finish();
}

fn native_allocation(c: &mut Criterion) {
    let mut group = c.benchmark_group("malloc");
    group.throughput(Throughput::Elements(256));
    group.bench_function("native_alloc_free_cycle", |b| {
        let mut m = Machine::new(MachineProfile::emulation());
        let proc = m.add_process(SocketId::PCM);
        let mut heap = NativeHeap::new(&mut m, proc, CtxId(0), SocketId::PCM);
        b.iter(|| {
            let mut objs = Vec::with_capacity(256);
            for _ in 0..256 {
                objs.push(heap.alloc(&mut m, 240).unwrap());
            }
            for o in objs {
                heap.free(o);
            }
        })
    });
    group.finish();
}

fn generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("workloads");
    group.throughput(Throughput::Elements(4096));
    group.bench_function("zipf_draws", |b| {
        let mut rng = DeterministicRng::seeded(7);
        b.iter(|| {
            for _ in 0..4096 {
                std::hint::black_box(rng.zipf(1 << 22, 0.8));
            }
        })
    });
    group.finish();
}

fn machine_access(c: &mut Criterion) {
    let mut group = c.benchmark_group("machine");
    group.throughput(Throughput::Bytes(64 * 4096));
    group.bench_function("access_64B_stream", |b| {
        let mut m = Machine::new(MachineProfile::emulation());
        let proc = m.add_process(SocketId::DRAM);
        let mut i = 0u64;
        b.iter(|| {
            for _ in 0..4096 {
                i = i.wrapping_add(1);
                let a = Addr::new((i % 1_000_000) * 64);
                m.access(CtxId(0), proc, MemoryAccess::write(a, 64))
                    .unwrap();
            }
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    cache_hierarchy,
    page_translation,
    managed_allocation,
    native_allocation,
    generators,
    machine_access
);
criterion_main!(benches);
