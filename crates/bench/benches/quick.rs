//! Dependency-free microbenchmarks of the platform's hot paths.
//!
//! A plain `harness = false` binary timed with `std::time::Instant`, so
//! `cargo bench` works in the hermetic offline build. Each benchmark is
//! calibrated to a target wall time and reports ns/op and throughput. The
//! legacy criterion suites (`micro`, `ablations`) remain available behind
//! the `bench-criterion` feature for environments that vendor criterion.

use hemu_cache::{Hierarchy, HierarchyConfig};
use hemu_heap::{CollectorKind, ManagedHeap};
use hemu_machine::{CtxId, Machine, MachineProfile};
use hemu_malloc::NativeHeap;
use hemu_numa::{AddressSpace, NumaConfig, NumaMemory};
use hemu_types::{AccessKind, Addr, ByteSize, DeterministicRng, LineAddr, MemoryAccess, SocketId};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Runs `f` (which performs `batch` operations per call) until roughly
/// `target` wall time has elapsed, then reports ns/op and Mops/s.
fn bench(name: &str, batch: u64, target: Duration, mut f: impl FnMut()) {
    // Warm up and estimate the per-call cost.
    f();
    let t0 = Instant::now();
    f();
    let per_call = t0.elapsed().max(Duration::from_nanos(1));
    let calls = (target.as_nanos() / per_call.as_nanos()).clamp(1, 1_000_000) as u64;

    let t0 = Instant::now();
    for _ in 0..calls {
        f();
    }
    let elapsed = t0.elapsed();
    let ops = calls * batch;
    let ns_per_op = elapsed.as_nanos() as f64 / ops as f64;
    let mops = ops as f64 / elapsed.as_secs_f64() / 1e6;
    println!("{name:<32} {ns_per_op:>9.1} ns/op {mops:>9.2} Mops/s  ({ops} ops)");
}

fn main() {
    // `cargo bench -- <filter>` runs only matching benchmarks.
    let filter: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with("--"))
        .collect();
    let wants = |name: &str| filter.is_empty() || filter.iter().any(|f| name.contains(f.as_str()));
    let target = Duration::from_millis(300);

    if wants("cache.hierarchy_access_stream") {
        let mut h = Hierarchy::new(HierarchyConfig::e5_2650l(4));
        let mut i = 0u64;
        bench("cache.hierarchy_access_stream", 4096, target, || {
            for _ in 0..4096 {
                i = i.wrapping_add(1);
                let line = LineAddr::new(i % 500_000);
                black_box(h.access((i % 4) as usize, line, AccessKind::Write));
            }
        });
    }

    if wants("numa.translate_warm") {
        let mut mem = NumaMemory::new(NumaConfig::default());
        let mut asp = AddressSpace::new();
        for p in 0..4096u64 {
            asp.translate(Addr::new(p * 4096), &mut mem).unwrap();
        }
        let mut i = 0u64;
        bench("numa.translate_warm", 4096, target, || {
            for _ in 0..4096 {
                i = i.wrapping_add(2654435761);
                let a = Addr::new((i % 4096) * 4096 + (i % 64) * 64);
                black_box(asp.translate(a, &mut mem).unwrap());
            }
        });
    }

    if wants("heap.managed_alloc_256B") {
        let mut m = Machine::new(MachineProfile::emulation());
        let proc = m.add_process(SocketId::DRAM);
        let cfg = CollectorKind::KgN.config(ByteSize::from_mib(4), ByteSize::from_mib(64));
        let mut heap = ManagedHeap::new(&mut m, proc, CtxId(0), cfg).unwrap();
        bench("heap.managed_alloc_256B", 256, target, || {
            for _ in 0..256 {
                black_box(heap.alloc(&mut m, 0, 240).unwrap());
            }
        });
    }

    if wants("heap.write_barrier_old_to_young") {
        let mut m = Machine::new(MachineProfile::emulation());
        let proc = m.add_process(SocketId::DRAM);
        let cfg = CollectorKind::KgN.config(ByteSize::from_mib(4), ByteSize::from_mib(64));
        let mut heap = ManagedHeap::new(&mut m, proc, CtxId(0), cfg).unwrap();
        // Promote a holder object to the mature space.
        let holder = heap.alloc(&mut m, 1, 8).unwrap();
        let _r = heap.new_root(Some(holder));
        for _ in 0..32_768 {
            heap.alloc(&mut m, 0, 248).unwrap();
        }
        let young = heap.alloc(&mut m, 0, 8).unwrap();
        let _r2 = heap.new_root(Some(young));
        bench("heap.write_barrier_old_to_young", 256, target, || {
            for _ in 0..256 {
                heap.write_ref(&mut m, holder, 0, Some(young)).unwrap();
            }
        });
    }

    if wants("malloc.native_alloc_free_cycle") {
        let mut m = Machine::new(MachineProfile::emulation());
        let proc = m.add_process(SocketId::PCM);
        let mut heap = NativeHeap::new(&mut m, proc, CtxId(0), SocketId::PCM);
        bench("malloc.native_alloc_free_cycle", 256, target, || {
            let mut objs = Vec::with_capacity(256);
            for _ in 0..256 {
                objs.push(heap.alloc(&mut m, 240).unwrap());
            }
            for o in objs {
                heap.free(o);
            }
        });
    }

    if wants("workloads.zipf_draws") {
        let mut rng = DeterministicRng::seeded(7);
        bench("workloads.zipf_draws", 4096, target, || {
            for _ in 0..4096 {
                black_box(rng.zipf(1 << 22, 0.8));
            }
        });
    }

    if wants("machine.access_64B_stream") {
        let mut m = Machine::new(MachineProfile::emulation());
        let proc = m.add_process(SocketId::DRAM);
        let mut i = 0u64;
        bench("machine.access_64B_stream", 4096, target, || {
            for _ in 0..4096 {
                i = i.wrapping_add(1);
                let a = Addr::new((i % 1_000_000) * 64);
                m.access(CtxId(0), proc, MemoryAccess::write(a, 64))
                    .unwrap();
            }
        });
    }
}
