//! Structured event tracing: a bounded ring buffer of timestamped events.
//!
//! The tracer is the platform's flight recorder. Layers that observe
//! something notable — a GC pause, a chunk being mapped or re-bound, a burst
//! of QPI traffic, a write-rate sample — record a [`TraceEvent`] with a
//! virtual-time stamp. The buffer is bounded: when full, the oldest record
//! is overwritten and a drop counter advances, so tracing can stay on for
//! arbitrarily long runs without unbounded memory.
//!
//! A disabled tracer (the default) records nothing and costs one branch per
//! call, so instrumentation points do not need to be conditionally compiled.

use crate::json::{JsonObject, ToJson};
use hemu_types::{Addr, Cycles, SocketId};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// Which collection a GC event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GcKind {
    /// Nursery-only minor collection.
    Minor,
    /// Minor collection that also evacuated the observer space.
    MinorObserver,
    /// Full-heap collection.
    Full,
}

impl GcKind {
    /// Stable lowercase name used in exported JSON.
    pub fn name(self) -> &'static str {
        match self {
            GcKind::Minor => "minor",
            GcKind::MinorObserver => "minor_observer",
            GcKind::Full => "full",
        }
    }
}

/// One observable occurrence inside the emulated platform.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A collection pause began.
    GcStart {
        /// Nursery, nursery+observer, or full-heap.
        kind: GcKind,
        /// Why the collector ran (e.g. `nursery_full`, `old_gen_pressure`).
        reason: &'static str,
    },
    /// A collection pause ended.
    GcEnd {
        /// Nursery, nursery+observer, or full-heap.
        kind: GcKind,
        /// Virtual cycles spent paused.
        pause_cycles: u64,
    },
    /// A heap chunk was mapped (freshly carved or recycled) onto a socket.
    ChunkMap {
        /// Chunk base address.
        addr: Addr,
        /// Socket the chunk's pages live on.
        socket: SocketId,
        /// `true` when the chunk came off a free list rather than being
        /// freshly carved from the reservation.
        recycled: bool,
    },
    /// A heap chunk's pages were unmapped (monolithic-list cross-technology
    /// recycling).
    ChunkUnmap {
        /// Chunk base address.
        addr: Addr,
    },
    /// A heap chunk was re-bound to a different socket after an unmap.
    ChunkRebind {
        /// Chunk base address.
        addr: Addr,
        /// New owning socket.
        socket: SocketId,
    },
    /// The OS page manager (or wear-out retirement) moved a physical page
    /// between sockets; the copy traffic is charged at both controllers.
    PageMigrated {
        /// The physical frame that was vacated.
        frame: u64,
        /// Socket the page lived on.
        from: SocketId,
        /// Socket the page now lives on.
        to: SocketId,
    },
    /// A batch of cache lines crossed the inter-socket QPI link.
    ///
    /// Individual remote fills are far too frequent to trace one-by-one;
    /// the machine coalesces them and emits one aggregate event per batch.
    QpiTransfer {
        /// Number of cache lines in the batch.
        lines: u64,
    },
    /// One write-rate monitor sample (the emulator's `pcm-memory` analog).
    MonitorSample {
        /// Virtual seconds since the measured iteration began.
        t_seconds: f64,
        /// PCM-socket write bandwidth, MB/s.
        pcm_write_mbs: f64,
        /// DRAM-socket write bandwidth, MB/s.
        dram_write_mbs: f64,
    },
    /// A named phase boundary (e.g. `measured_iteration`).
    Phase {
        /// Phase name.
        name: &'static str,
    },
}

impl TraceEvent {
    /// Stable snake_case tag used as the `"event"` member in exported JSON.
    pub fn tag(&self) -> &'static str {
        match self {
            TraceEvent::GcStart { .. } => "gc_start",
            TraceEvent::GcEnd { .. } => "gc_end",
            TraceEvent::ChunkMap { .. } => "chunk_map",
            TraceEvent::ChunkUnmap { .. } => "chunk_unmap",
            TraceEvent::ChunkRebind { .. } => "chunk_rebind",
            TraceEvent::PageMigrated { .. } => "page_migrated",
            TraceEvent::QpiTransfer { .. } => "qpi_transfer",
            TraceEvent::MonitorSample { .. } => "monitor_sample",
            TraceEvent::Phase { .. } => "phase",
        }
    }
}

/// A [`TraceEvent`] plus the virtual time it was recorded at.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Virtual timestamp (machine cycles).
    pub t: Cycles,
    /// The event.
    pub event: TraceEvent,
}

impl ToJson for TraceRecord {
    fn write_json(&self, out: &mut String) {
        let mut obj = JsonObject::new(out);
        obj.field("t_cycles", &self.t)
            .field("event", self.event.tag());
        match &self.event {
            TraceEvent::GcStart { kind, reason } => {
                obj.field("kind", kind.name()).field("reason", *reason);
            }
            TraceEvent::GcEnd { kind, pause_cycles } => {
                obj.field("kind", kind.name())
                    .field("pause_cycles", pause_cycles);
            }
            TraceEvent::ChunkMap {
                addr,
                socket,
                recycled,
            } => {
                obj.field("addr", addr)
                    .field("socket", socket)
                    .field("recycled", recycled);
            }
            TraceEvent::ChunkUnmap { addr } => {
                obj.field("addr", addr);
            }
            TraceEvent::ChunkRebind { addr, socket } => {
                obj.field("addr", addr).field("socket", socket);
            }
            TraceEvent::PageMigrated { frame, from, to } => {
                obj.field("frame", frame)
                    .field("from", from)
                    .field("to", to);
            }
            TraceEvent::QpiTransfer { lines } => {
                obj.field("lines", lines);
            }
            TraceEvent::MonitorSample {
                t_seconds,
                pcm_write_mbs,
                dram_write_mbs,
            } => {
                obj.field("t_seconds", t_seconds)
                    .field("pcm_write_mbs", pcm_write_mbs)
                    .field("dram_write_mbs", dram_write_mbs);
            }
            TraceEvent::Phase { name } => {
                obj.field("name", *name);
            }
        }
        obj.finish();
    }
}

#[derive(Debug)]
struct Ring {
    buf: VecDeque<TraceRecord>,
    capacity: usize,
    dropped: u64,
}

/// Cheaply cloneable handle onto a shared, bounded event buffer.
///
/// The default tracer is disabled: [`Tracer::record`] is a no-op and
/// [`Tracer::enabled`] is `false`. [`Tracer::bounded`] creates a live one.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    ring: Option<Rc<RefCell<Ring>>>,
}

impl Tracer {
    /// A tracer that records nothing.
    pub fn disabled() -> Self {
        Tracer { ring: None }
    }

    /// A tracer keeping the most recent `capacity` events (capacity is
    /// clamped to at least 1).
    pub fn bounded(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Tracer {
            ring: Some(Rc::new(RefCell::new(Ring {
                buf: VecDeque::with_capacity(capacity.min(1 << 16)),
                capacity,
                dropped: 0,
            }))),
        }
    }

    /// Whether events are being kept.
    pub fn enabled(&self) -> bool {
        self.ring.is_some()
    }

    /// Records `event` at virtual time `t`. No-op when disabled.
    pub fn record(&self, t: Cycles, event: TraceEvent) {
        if let Some(ring) = &self.ring {
            let mut ring = ring.borrow_mut();
            if ring.buf.len() == ring.capacity {
                ring.buf.pop_front();
                ring.dropped += 1;
            }
            ring.buf.push_back(TraceRecord { t, event });
        }
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.ring.as_ref().map_or(0, |r| r.borrow().buf.len())
    }

    /// Whether the buffer is empty (always `true` when disabled).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of events overwritten because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.ring.as_ref().map_or(0, |r| r.borrow().dropped)
    }

    /// Maximum number of buffered events (0 when disabled).
    pub fn capacity(&self) -> usize {
        self.ring.as_ref().map_or(0, |r| r.borrow().capacity)
    }

    /// Copies out the buffered records, oldest first, leaving them in place.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        self.ring
            .as_ref()
            .map_or_else(Vec::new, |r| r.borrow().buf.iter().cloned().collect())
    }

    /// Removes and returns the buffered records, oldest first, and resets
    /// the drop counter.
    pub fn drain(&self) -> Vec<TraceRecord> {
        match &self.ring {
            None => Vec::new(),
            Some(r) => {
                let mut ring = r.borrow_mut();
                ring.dropped = 0;
                ring.buf.drain(..).collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(t: u64) -> Cycles {
        Cycles::new(t)
    }

    #[test]
    fn disabled_tracer_is_a_no_op() {
        let t = Tracer::disabled();
        t.record(at(1), TraceEvent::Phase { name: "x" });
        assert!(!t.enabled());
        assert_eq!(t.len(), 0);
        assert_eq!(t.dropped(), 0);
        assert!(t.snapshot().is_empty());
    }

    #[test]
    fn ring_keeps_most_recent_and_counts_drops() {
        let t = Tracer::bounded(3);
        for i in 0..5 {
            t.record(at(i), TraceEvent::QpiTransfer { lines: i });
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let kept: Vec<u64> = t.snapshot().iter().map(|r| r.t.raw()).collect();
        assert_eq!(kept, vec![2, 3, 4]);
    }

    #[test]
    fn drain_empties_and_resets() {
        let t = Tracer::bounded(2);
        t.record(at(0), TraceEvent::Phase { name: "a" });
        t.record(at(1), TraceEvent::Phase { name: "b" });
        t.record(at(2), TraceEvent::Phase { name: "c" });
        let drained = t.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(t.len(), 0);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn records_serialize_with_event_tags() {
        let rec = TraceRecord {
            t: at(9),
            event: TraceEvent::GcStart {
                kind: GcKind::Minor,
                reason: "nursery_full",
            },
        };
        assert_eq!(
            rec.to_json(),
            r#"{"t_cycles":9,"event":"gc_start","kind":"minor","reason":"nursery_full"}"#
        );
        let rec = TraceRecord {
            t: at(10),
            event: TraceEvent::ChunkMap {
                addr: Addr::new(4096),
                socket: SocketId::PCM,
                recycled: true,
            },
        };
        assert_eq!(
            rec.to_json(),
            r#"{"t_cycles":10,"event":"chunk_map","addr":4096,"socket":1,"recycled":true}"#
        );
    }

    #[test]
    fn page_migrated_serializes_with_both_sockets() {
        let rec = TraceRecord {
            t: at(7),
            event: TraceEvent::PageMigrated {
                frame: 123,
                from: SocketId::PCM,
                to: SocketId::DRAM,
            },
        };
        assert_eq!(
            rec.to_json(),
            r#"{"t_cycles":7,"event":"page_migrated","frame":123,"from":1,"to":0}"#
        );
    }

    #[test]
    fn clones_share_the_ring() {
        let a = Tracer::bounded(4);
        let b = a.clone();
        b.record(at(1), TraceEvent::Phase { name: "shared" });
        assert_eq!(a.len(), 1);
    }
}
