//! A serialized progress reporter for concurrent sweeps.
//!
//! When the bench harness runs experiments on a worker pool, every worker
//! wants to announce what it is doing. Writing to stderr directly from
//! many threads interleaves partial lines; a [`Reporter`] funnels all
//! progress output through one mutex so each line lands whole, in the
//! order it was emitted.
//!
//! The reporter is the *only* piece of `hemu-obs` that is shared between
//! threads. Everything else in this crate (tracer ring, metrics registry)
//! is deliberately single-threaded (`Rc`-based) and scoped to one run: a
//! parallel sweep gives every run its own `Obs` bundle and merges the
//! exported artifacts deterministically afterwards, so the hot recording
//! paths never pay for synchronization.

use std::collections::BTreeSet;
use std::io::Write;
use std::sync::{Arc, Mutex};

/// Where reporter lines go.
enum Sink {
    /// Process stderr (the default).
    Stderr,
    /// An arbitrary writer, e.g. a buffer in tests.
    Writer(Box<dyn Write + Send>),
}

/// A cheaply cloneable, thread-safe, line-oriented progress sink.
///
/// Clones share the same underlying sink and lock, so handing a clone to
/// each worker thread serializes their output.
///
/// # Examples
///
/// ```
/// use hemu_obs::progress::Reporter;
/// let r = Reporter::stderr();
/// let clone = r.clone();
/// clone.line("  running lusearch|KG-N|1|Emulation ...");
/// ```
#[derive(Clone)]
pub struct Reporter {
    sink: Arc<Mutex<Sink>>,
    /// Labels announced via [`Reporter::begin`] but not yet finalized via
    /// [`Reporter::finish`]. A well-behaved runner leaves this empty: every
    /// run — successful, failed, or retried — must finalize its line so a
    /// FAIL never leaves a stale `running ...` as the label's last word.
    open: Arc<Mutex<BTreeSet<String>>>,
}

impl Reporter {
    /// A reporter that writes lines to process stderr.
    pub fn stderr() -> Self {
        Reporter {
            sink: Arc::new(Mutex::new(Sink::Stderr)),
            open: Arc::new(Mutex::new(BTreeSet::new())),
        }
    }

    /// A reporter that writes lines to an arbitrary sink (tests, files).
    pub fn to_writer(w: Box<dyn Write + Send>) -> Self {
        Reporter {
            sink: Arc::new(Mutex::new(Sink::Writer(w))),
            open: Arc::new(Mutex::new(BTreeSet::new())),
        }
    }

    /// Announces that work on `label` started (`  running <label> ...`) and
    /// marks the label in-progress until [`Reporter::finish`] is called
    /// with it.
    pub fn begin(&self, label: &str) {
        if let Ok(mut open) = self.open.lock() {
            open.insert(label.to_string());
        }
        self.line(&format!("  running {label} ..."));
    }

    /// Announces that `label` was requeued after a supervised failure
    /// (`  retried <label> ...`). Unlike [`Reporter::begin`] this never
    /// inserts a duplicate in-progress mark — the label is already open
    /// from its original `begin`, so progress output stays parseable as
    /// one `running`/`retried*`/final-line sequence per label.
    pub fn retried(&self, label: &str) {
        if let Ok(mut open) = self.open.lock() {
            open.insert(label.to_string());
        }
        self.line(&format!("  retried {label} ..."));
    }

    /// Finalizes `label`'s display with `msg` (emitted two-space indented,
    /// like [`Reporter::begin`]) and clears its in-progress mark. Safe to
    /// call for a label that was never begun — the message still lands.
    pub fn finish(&self, label: &str, msg: &str) {
        if let Ok(mut open) = self.open.lock() {
            open.remove(label);
        }
        self.line(&format!("  {msg}"));
    }

    /// Labels begun but not yet finished. Empty for a well-behaved runner
    /// at the end of a sweep.
    pub fn open_labels(&self) -> Vec<String> {
        self.open
            .lock()
            .map_or_else(|_| Vec::new(), |open| open.iter().cloned().collect())
    }

    /// Emits one line (a newline is appended). Lines from concurrent
    /// callers never interleave; I/O errors are ignored, as with
    /// `eprintln!`.
    pub fn line(&self, msg: &str) {
        // A poisoned lock just means another worker panicked mid-line;
        // keep reporting.
        let mut guard = match self.sink.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        match &mut *guard {
            Sink::Stderr => {
                let mut err = std::io::stderr().lock();
                let _ = writeln!(err, "{msg}");
            }
            Sink::Writer(w) => {
                let _ = writeln!(w, "{msg}");
            }
        }
    }
}

impl Default for Reporter {
    fn default() -> Self {
        Reporter::stderr()
    }
}

impl std::fmt::Debug for Reporter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Reporter")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    /// A writer appending into a shared buffer.
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if let Ok(mut b) = self.0.lock() {
                b.extend_from_slice(buf);
            }
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn concurrent_lines_arrive_whole() {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let r = Reporter::to_writer(Box::new(SharedBuf(Arc::clone(&buf))));
        thread::scope(|s| {
            for t in 0..4 {
                let r = r.clone();
                s.spawn(move || {
                    for i in 0..50 {
                        r.line(&format!("worker-{t} line-{i} end"));
                    }
                });
            }
        });
        let text = String::from_utf8(buf.lock().expect("buffer lock").clone()).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 200);
        assert!(lines
            .iter()
            .all(|l| l.starts_with("worker-") && l.ends_with(" end")));
    }

    #[test]
    fn begin_finish_pairs_leave_no_stale_labels() {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let r = Reporter::to_writer(Box::new(SharedBuf(Arc::clone(&buf))));
        r.begin("a|KG-N|1|Emulation");
        r.begin("b|KG-W|1|Emulation");
        assert_eq!(r.open_labels().len(), 2);
        r.finish("a|KG-N|1|Emulation", "done a|KG-N|1|Emulation");
        r.finish(
            "b|KG-W|1|Emulation",
            "FAILED b|KG-W|1|Emulation after 3 attempt(s): timeout",
        );
        assert!(r.open_labels().is_empty(), "every begin must be finalized");
        let text = String::from_utf8(buf.lock().expect("lock").clone()).expect("utf8");
        // The failed run's last word is its FAIL line, not `running ...`.
        let last_b = text
            .lines()
            .filter(|l| l.contains("b|KG-W"))
            .next_back()
            .expect("b lines");
        assert!(last_b.contains("FAILED"), "stale in-progress display");
    }

    #[test]
    fn retried_emits_one_line_without_duplicate_begin() {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let r = Reporter::to_writer(Box::new(SharedBuf(Arc::clone(&buf))));
        r.begin("a|KG-N|1|None");
        r.retried("a|KG-N|1|None");
        assert_eq!(r.open_labels(), vec!["a|KG-N|1|None".to_string()]);
        r.finish("a|KG-N|1|None", "done a|KG-N|1|None");
        assert!(r.open_labels().is_empty());
        let text = String::from_utf8(buf.lock().expect("lock").clone()).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("  running "));
        assert!(lines[1].starts_with("  retried "));
        assert!(lines[2].starts_with("  done "));
        // Exactly one `running` line even though the job ran twice.
        assert_eq!(text.matches("running").count(), 1);
    }

    #[test]
    fn finish_without_begin_still_lands() {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let r = Reporter::to_writer(Box::new(SharedBuf(Arc::clone(&buf))));
        r.finish("never-begun", "done never-begun");
        assert!(r.open_labels().is_empty());
        let text = String::from_utf8(buf.lock().expect("lock").clone()).expect("utf8");
        assert!(text.contains("done never-begun"));
    }
}
