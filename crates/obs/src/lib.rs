//! Observability for the hemu platform: tracing, metrics, and export.
//!
//! This crate is the platform's telemetry layer, playing the role the
//! modified `pcm-memory` plays in the paper's methodology (§IV): everything
//! the emulator learns about a run flows out through here. It depends only
//! on `hemu-types` and the standard library — serialization, bucketing, and
//! buffering are all implemented in-tree so the workspace builds with an
//! empty cargo registry.
//!
//! Three pieces:
//!
//! * [`trace`] — a bounded ring buffer of timestamped [`TraceEvent`]s (GC
//!   pauses, chunk map/unmap/rebind, QPI transfers, monitor samples),
//!   recorded through a cheaply cloneable [`Tracer`] handle.
//! * [`metrics`] — a registry of named [`Counter`]s, [`Gauge`]s, and
//!   log₂-bucketed [`Histogram`]s, queryable mid-run.
//! * [`span`] — hierarchical execution spans (GC phases, OS epochs,
//!   measured iterations) in virtual time, recorded through a bounded
//!   [`SpanRecorder`] and exportable as a Chrome trace-event timeline.
//! * [`json`] / [`csv`] — a hand-rolled JSON/JSONL and CSV emitter built
//!   around the [`ToJson`] trait.
//! * [`progress`] — a thread-safe, line-serialized progress [`Reporter`]
//!   for concurrent sweeps (the only thread-shared piece; tracer and
//!   metrics stay per-run and unsynchronized).
//!
//! The [`Obs`] bundle groups one tracer and one metrics registry; the
//! emulated machine owns one and the runtime layers above it (heap, GC,
//! experiment driver) record into it.

#![warn(missing_docs)]

pub mod artifact;
pub mod csv;
pub mod journal;
pub mod json;
pub mod metrics;
pub mod progress;
pub mod span;
pub mod timeline;
pub mod trace;
pub mod value;

pub use artifact::{fnv1a64, hash_hex, write_atomic, write_atomic_str};
pub use csv::Csv;
pub use journal::{read_journal, JournalContents, JournalReadError, JournalRecord, JournalWriter};
pub use json::{to_json_lines, ToJson};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, Metrics, MetricsSnapshot};
pub use progress::Reporter;
pub use span::{SpanRecord, SpanRecorder};
pub use timeline::Timeline;
pub use trace::{GcKind, TraceEvent, TraceRecord, Tracer};
pub use value::{JsonParseError, JsonValue};

/// The observability bundle a machine carries: one event tracer plus one
/// metrics registry.
///
/// Cloning is cheap (both members are reference handles); clones observe the
/// same underlying buffers, so a handle can be stashed anywhere on the hot
/// path without threading `&mut` references around.
#[derive(Debug, Clone, Default)]
pub struct Obs {
    /// Structured event tracer. Disabled (a no-op) by default.
    pub tracer: Tracer,
    /// Metrics registry. Always active; recording is cheap.
    pub metrics: Metrics,
    /// Hierarchical span recorder. Disabled (a no-op) by default; the
    /// profiler enables it.
    pub spans: SpanRecorder,
}

impl Obs {
    /// A bundle with a disabled tracer and a fresh metrics registry.
    pub fn new() -> Self {
        Obs::default()
    }

    /// A bundle whose tracer keeps the most recent `capacity` events.
    pub fn with_trace_capacity(capacity: usize) -> Self {
        Obs {
            tracer: Tracer::bounded(capacity),
            metrics: Metrics::new(),
            spans: SpanRecorder::disabled(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_bundle_has_disabled_tracer() {
        let obs = Obs::new();
        assert!(!obs.tracer.enabled());
        obs.tracer
            .record(hemu_types::Cycles::ZERO, TraceEvent::Phase { name: "x" });
        assert_eq!(obs.tracer.len(), 0);
    }

    #[test]
    fn clones_share_state() {
        let obs = Obs::with_trace_capacity(8);
        let clone = obs.clone();
        clone.tracer.record(
            hemu_types::Cycles::new(1),
            TraceEvent::Phase { name: "warmup" },
        );
        clone.metrics.counter("x").add(3);
        assert_eq!(obs.tracer.len(), 1);
        assert_eq!(obs.metrics.counter_value("x"), 3);
    }
}
