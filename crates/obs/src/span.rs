//! Hierarchical execution spans in virtual and wall time.
//!
//! A span is a named interval of execution — a GC phase, an OS epoch, a
//! measured iteration — with a begin and end stamp in *virtual* time
//! (machine cycles) plus a wall-clock duration measured on the host. The
//! recorder keeps a bounded buffer of closed spans, exactly like the event
//! [`Tracer`](crate::Tracer): when full, the oldest span is overwritten and
//! a drop counter advances.
//!
//! Virtual stamps are deterministic (they replay bit-identically across
//! runs and worker counts); wall durations are host noise and therefore
//! never exported into deterministic artifacts — they exist for interactive
//! progress display and ad-hoc host-side profiling only. The JSON form of a
//! [`SpanRecord`] deliberately omits them.
//!
//! A disabled recorder (the default) records nothing and costs one branch
//! per call, so instrumentation points stay unconditional.

use crate::json::{JsonObject, ToJson};
use hemu_types::Cycles;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;
use std::time::Instant;

/// One closed span: a named interval in virtual time plus its nesting
/// depth at the time it was opened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (e.g. `minor`, `evacuate`, `os_epoch`).
    pub name: &'static str,
    /// Category the span belongs to (`gc`, `os`, `run`), used as the
    /// Chrome trace-event `cat` field.
    pub cat: &'static str,
    /// Virtual time the span opened.
    pub begin: Cycles,
    /// Virtual time the span closed.
    pub end: Cycles,
    /// Nesting depth when opened (0 = outermost).
    pub depth: u32,
    /// Host wall-clock nanoseconds between open and close. Excluded from
    /// the JSON form: wall time is nondeterministic.
    pub wall_nanos: u64,
}

impl SpanRecord {
    /// Virtual cycles the span covered.
    pub fn cycles(&self) -> u64 {
        self.end.raw().saturating_sub(self.begin.raw())
    }
}

impl ToJson for SpanRecord {
    fn write_json(&self, out: &mut String) {
        let mut obj = JsonObject::new(out);
        obj.field("name", self.name)
            .field("cat", self.cat)
            .field("begin_cycles", &self.begin)
            .field("end_cycles", &self.end)
            .field("depth", &self.depth);
        obj.finish();
    }
}

#[derive(Debug)]
struct OpenSpan {
    name: &'static str,
    cat: &'static str,
    begin: Cycles,
    opened: Instant,
}

#[derive(Debug)]
struct SpanRing {
    buf: VecDeque<SpanRecord>,
    capacity: usize,
    dropped: u64,
    stack: Vec<OpenSpan>,
    /// Spans force-closed by [`SpanRecorder::reset`] while still open.
    truncated: u64,
}

/// Cheaply cloneable handle onto a shared, bounded buffer of closed spans.
///
/// The default recorder is disabled: [`SpanRecorder::begin`] and
/// [`SpanRecorder::end`] are no-ops. [`SpanRecorder::bounded`] creates a
/// live one.
#[derive(Debug, Clone, Default)]
pub struct SpanRecorder {
    ring: Option<Rc<RefCell<SpanRing>>>,
}

impl SpanRecorder {
    /// A recorder that records nothing.
    pub fn disabled() -> Self {
        SpanRecorder { ring: None }
    }

    /// A recorder keeping the most recent `capacity` closed spans
    /// (clamped to at least 1).
    pub fn bounded(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        SpanRecorder {
            ring: Some(Rc::new(RefCell::new(SpanRing {
                buf: VecDeque::with_capacity(capacity.min(1 << 16)),
                capacity,
                dropped: 0,
                stack: Vec::new(),
                truncated: 0,
            }))),
        }
    }

    /// Whether spans are being kept.
    pub fn enabled(&self) -> bool {
        self.ring.is_some()
    }

    /// Opens a span at virtual time `t`. No-op when disabled.
    pub fn begin(&self, name: &'static str, cat: &'static str, t: Cycles) {
        if let Some(ring) = &self.ring {
            ring.borrow_mut().stack.push(OpenSpan {
                name,
                cat,
                begin: t,
                opened: Instant::now(),
            });
        }
    }

    /// Closes the innermost open span at virtual time `t` and records it.
    /// No-op when disabled or when no span is open.
    pub fn end(&self, t: Cycles) {
        if let Some(ring) = &self.ring {
            let mut ring = ring.borrow_mut();
            let Some(open) = ring.stack.pop() else {
                return;
            };
            let record = SpanRecord {
                name: open.name,
                cat: open.cat,
                begin: open.begin,
                end: t,
                depth: ring.stack.len() as u32,
                wall_nanos: open.opened.elapsed().as_nanos() as u64,
            };
            if ring.buf.len() == ring.capacity {
                ring.buf.pop_front();
                ring.dropped += 1;
            }
            ring.buf.push_back(record);
        }
    }

    /// Number of currently open (unclosed) spans.
    pub fn open_depth(&self) -> usize {
        self.ring.as_ref().map_or(0, |r| r.borrow().stack.len())
    }

    /// Number of closed spans currently buffered.
    pub fn len(&self) -> usize {
        self.ring.as_ref().map_or(0, |r| r.borrow().buf.len())
    }

    /// Whether the buffer is empty (always `true` when disabled).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of closed spans overwritten because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.ring.as_ref().map_or(0, |r| r.borrow().dropped)
    }

    /// Maximum number of buffered spans (0 when disabled).
    pub fn capacity(&self) -> usize {
        self.ring.as_ref().map_or(0, |r| r.borrow().capacity)
    }

    /// Discards every buffered and open span (start of a measured
    /// iteration) and resets the drop counter. Counts abandoned open spans
    /// so instrumentation imbalances are visible.
    pub fn reset(&self) {
        if let Some(ring) = &self.ring {
            let mut ring = ring.borrow_mut();
            ring.truncated += ring.stack.len() as u64;
            ring.stack.clear();
            ring.buf.clear();
            ring.dropped = 0;
        }
    }

    /// Copies out the buffered spans, oldest first, leaving them in place.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        self.ring
            .as_ref()
            .map_or_else(Vec::new, |r| r.borrow().buf.iter().cloned().collect())
    }

    /// Removes and returns the buffered spans, oldest first, and resets
    /// the drop counter.
    pub fn drain(&self) -> Vec<SpanRecord> {
        match &self.ring {
            None => Vec::new(),
            Some(r) => {
                let mut ring = r.borrow_mut();
                ring.dropped = 0;
                ring.buf.drain(..).collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(t: u64) -> Cycles {
        Cycles::new(t)
    }

    #[test]
    fn disabled_recorder_is_a_no_op() {
        let s = SpanRecorder::disabled();
        s.begin("x", "gc", at(1));
        s.end(at(2));
        assert!(!s.enabled());
        assert_eq!(s.len(), 0);
        assert_eq!(s.open_depth(), 0);
    }

    #[test]
    fn nesting_records_depth_and_orders_by_close() {
        let s = SpanRecorder::bounded(8);
        s.begin("outer", "run", at(0));
        s.begin("inner", "gc", at(10));
        s.end(at(20)); // inner
        s.end(at(30)); // outer
        let spans = s.drain();
        assert_eq!(spans.len(), 2);
        assert_eq!((spans[0].name, spans[0].depth), ("inner", 1));
        assert_eq!((spans[1].name, spans[1].depth), ("outer", 0));
        assert_eq!(spans[0].cycles(), 10);
        assert_eq!(spans[1].cycles(), 30);
    }

    #[test]
    fn ring_keeps_most_recent_and_counts_drops() {
        let s = SpanRecorder::bounded(2);
        for i in 0..4u64 {
            s.begin("p", "gc", at(i));
            s.end(at(i + 1));
        }
        assert_eq!(s.len(), 2);
        assert_eq!(s.dropped(), 2);
        let kept: Vec<u64> = s.snapshot().iter().map(|r| r.begin.raw()).collect();
        assert_eq!(kept, vec![2, 3]);
    }

    #[test]
    fn unmatched_end_is_ignored() {
        let s = SpanRecorder::bounded(2);
        s.end(at(5));
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn reset_discards_open_and_closed_spans() {
        let s = SpanRecorder::bounded(4);
        s.begin("a", "gc", at(0));
        s.end(at(1));
        s.begin("open", "gc", at(2));
        s.reset();
        assert_eq!(s.len(), 0);
        assert_eq!(s.open_depth(), 0);
        s.begin("b", "gc", at(3));
        s.end(at(4));
        assert_eq!(s.drain().len(), 1);
    }

    #[test]
    fn json_form_omits_wall_time() {
        let rec = SpanRecord {
            name: "minor",
            cat: "gc",
            begin: at(100),
            end: at(250),
            depth: 2,
            wall_nanos: 999,
        };
        assert_eq!(
            rec.to_json(),
            r#"{"name":"minor","cat":"gc","begin_cycles":100,"end_cycles":250,"depth":2}"#
        );
    }

    #[test]
    fn clones_share_the_ring() {
        let a = SpanRecorder::bounded(4);
        let b = a.clone();
        b.begin("shared", "run", at(0));
        b.end(at(1));
        assert_eq!(a.len(), 1);
    }
}
